#!/usr/bin/env bash
# Tier-1 verification plus the LP kernel microbenchmarks.
#
# Usage: scripts/bench.sh [--baseline <json>]
#
# Runs the workspace build + tests (the tier-1 gate), then the LP kernel
# benchmark with --emit-json, which rewrites BENCH_lp.json at the repo
# root. With --baseline, diffs the fresh numbers against a saved copy so
# perf regressions show up next to the speedup column.
set -euo pipefail
cd "$(dirname "$0")/.."

BASELINE=""
if [[ "${1:-}" == "--baseline" ]]; then
    BASELINE="${2:?--baseline needs a path}"
fi

echo "== tier-1: build =="
cargo build --release --offline

echo "== tier-1: lints =="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== tier-1: tests =="
cargo test -q --offline

echo "== lp kernel benchmarks =="
cargo bench -q --offline -p bate-bench --bench lp -- --emit-json

echo "== BENCH_lp.json =="
cat BENCH_lp.json

# The churn benchmark inside the lp bench already asserts the bar (the
# bench aborts below 10x); re-check the emitted JSON here so a stale or
# hand-edited BENCH_lp.json can't slip past the gate.
echo "== churn warm-start gate (DESIGN.md §5e) =="
CHURN_SPEEDUP=$(sed -n 's/.*"churn_warm".*"speedup": \([0-9.]*\).*/\1/p' BENCH_lp.json)
if [[ -z "$CHURN_SPEEDUP" ]]; then
    echo "FAILED: BENCH_lp.json has no churn_warm speedup"
    exit 1
fi
if awk -v s="$CHURN_SPEEDUP" 'BEGIN { exit !(s >= 10.0) }'; then
    echo "churn warm-start speedup ${CHURN_SPEEDUP}x >= 10x: OK"
else
    echo "FAILED: churn warm-start speedup ${CHURN_SPEEDUP}x below the 10x bar"
    exit 1
fi

if [[ -n "$BASELINE" ]]; then
    echo "== diff vs $BASELINE =="
    diff -u "$BASELINE" BENCH_lp.json && echo "(no change)" || true
fi
