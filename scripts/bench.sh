#!/usr/bin/env bash
# Tier-1 verification plus the LP kernel microbenchmarks.
#
# Usage: scripts/bench.sh [--baseline <json>]
#
# Runs the workspace build + tests (the tier-1 gate), then the LP kernel
# benchmark with --emit-json, which rewrites BENCH_lp.json at the repo
# root. With --baseline, diffs the fresh numbers against a saved copy so
# perf regressions show up next to the speedup column.
set -euo pipefail
cd "$(dirname "$0")/.."

BASELINE=""
if [[ "${1:-}" == "--baseline" ]]; then
    BASELINE="${2:?--baseline needs a path}"
fi

echo "== tier-1: build =="
cargo build --release --offline

echo "== tier-1: lints =="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== tier-1: tests =="
cargo test -q --offline

echo "== lp kernel benchmarks =="
cargo bench -q --offline -p bate-bench --bench lp -- --emit-json

echo "== BENCH_lp.json =="
cat BENCH_lp.json

if [[ -n "$BASELINE" ]]; then
    echo "== diff vs $BASELINE =="
    diff -u "$BASELINE" BENCH_lp.json && echo "(no change)" || true
fi
