#!/usr/bin/env bash
# Fan-in gate: a scaled-down seeded load-generator run through real
# sockets against the event-driven controller plane.
#
# Usage: scripts/loadcheck.sh [--full]
#
# The deterministic schedule (bate_sim::loadgen, seed 7) drives a steady +
# bursty submission mix through pipelined clients; the bench itself
# asserts the throughput floor, that every submission landed one
# observation in the bate_admission_latency_us histogram, and that
# batched admission actually engaged (multi-submit batches formed).
#
# The default scaled run (30k/min offered over a 2s schedule, 20k/min
# floor) finishes in seconds and is deterministic in the schedule it
# offers; the wall-clock side (and so the exact achieved rate) is real
# time, which is why the floor sits well under the offered rate.
#
# --full additionally runs the full-scale bench (120k/min target, 100k
# floor) and rewrites BENCH_load.json at the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== loadgen: scaled seeded run (floor 20k/min) =="
cargo bench -q --offline -p bate-bench --bench loadgen -- \
    --per-min 30000 --secs 2 --floor 20000

if [[ "${1:-}" == "--full" ]]; then
    echo "== loadgen: full-scale run (floor 100k/min) =="
    cargo bench -q --offline -p bate-bench --bench loadgen -- --emit-json
    echo "== BENCH_load.json =="
    cat BENCH_load.json
fi

echo "OK: load-generator floors held"
