#!/usr/bin/env bash
# Differential-fuzzing gate: the seeded exact-oracle campaign plus the
# certificate-bearing golden corpora, at a larger-than-tier-1 budget.
#
# Usage: scripts/fuzzcheck.sh [--fast] [BUDGET]
#
# Every instance is generated from a fixed per-family seed sequence, so a
# run is deterministic for a given budget: a failure prints a
# `family:seed` tag that reproduces the instance bit for bit (append it
# to the matching REGRESSION_SEEDS array — see DESIGN.md §7).
#
# --fast keeps the tier-1 default budgets (quick smoke of the harness
# itself); the default sweeps FUZZ_BUDGET=2000 cases per family. An
# explicit BUDGET argument overrides either.
set -uo pipefail
cd "$(dirname "$0")/.."

BUDGET=2000
if [[ "${1:-}" == "--fast" ]]; then
    BUDGET=""
    shift
fi
if [[ -n "${1:-}" ]]; then
    BUDGET="$1"
fi

STATUS=0

run() {
    echo "== ${FUZZ_BUDGET:+FUZZ_BUDGET=$FUZZ_BUDGET }$* =="
    "$@" || STATUS=$?
}

if [[ -n "$BUDGET" ]]; then
    export FUZZ_BUDGET="$BUDGET"
fi

# The differential campaign: synthetic LP/MILP families (including the
# SRLG-shaped correlated scheduling/admission models), the
# stale_batch_mates gadget, scheduling/admission models across all solve
# modes, the certified independent-vs-correlated divergence case, and
# the recovery-storm MILP certification — each float-vs-exact
# differenced and certificate-checked.
run cargo test -q --offline -p bate-bench --test fuzz_campaign

# Correlated-scenario properties (joint-mass conservation, generator
# determinism, SRLG/link-state consistency) and the pinned storm/demand
# golden traces (budget-independent, bitwise).
run cargo test -q --offline -p bate-net --test property
run cargo test -q --offline -p bate-sim --test golden_traces

# LP text round-trip property + one-byte mutation fuzzing.
run cargo test -q --offline -p bate-lp --test export_roundtrip

# Certificate-bearing golden corpora (budget-independent, pinned).
run cargo test -q --offline -p bate-lp --test golden
run cargo test -q --offline -p bate-core --test rowgen_golden
run cargo test -q --offline -p bate-core --test ba_invariant
run cargo test -q --offline -p bate-baselines --test golden

if [[ "$STATUS" -ne 0 ]]; then
    echo "FAIL: differential fuzzing gate exited with status $STATUS" >&2
    exit "$STATUS"
fi

echo "OK: differential campaign, round-trip fuzz, and certified goldens passed"
