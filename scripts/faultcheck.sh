#!/usr/bin/env bash
# Fault-injection gate: the seeded faultline suite plus the full workspace
# tests, with a panic leak detector.
#
# Usage: scripts/faultcheck.sh [--fast]
#
# `cargo test` already fails on assertion failures, but a panic in a
# *detached* thread (a controller connection loop, a broker reader, a
# proxy pump) does not fail the owning test — it leaks a "thread ...
# panicked" line to stderr while the suite stays green. This script fails
# on any such leak: the control plane must degrade with typed errors, not
# panics, no matter what the fault proxy injects.
#
# --fast runs only the faultline suite (seconds); the default also runs
# the full workspace tests.
set -uo pipefail
cd "$(dirname "$0")/.."

STDERR_LOG="$(mktemp)"
trap 'rm -f "$STDERR_LOG"' EXIT

run() {
    echo "== $* =="
    # Tee stderr so panics are both visible and inspectable afterwards.
    "$@" 2> >(tee -a "$STDERR_LOG" >&2)
}

STATUS=0

run cargo test -q --offline -p faultline || STATUS=$?

# Flake detector: the e2e suite is condvar/poll-until driven (no blind
# sleeps), so three serialized back-to-back runs must all pass. A test
# that only passes when the scheduler cooperates fails here long before
# it starts flaking in CI.
for i in 1 2 3; do
    echo "== e2e flake detector: run $i/3 (--test-threads=1) =="
    run cargo test -q --offline -p bate-system --test end_to_end -- --test-threads=1 \
        || { STATUS=$?; break; }
done

if [[ "${1:-}" != "--fast" ]]; then
    run cargo test -q --offline --workspace || STATUS=$?
fi

if grep -E "panicked at|stack backtrace" "$STDERR_LOG" >/dev/null; then
    echo "FAIL: panics leaked to stderr (a detached thread died):" >&2
    grep -E "panicked at" "$STDERR_LOG" | sort -u >&2
    exit 1
fi

if [[ "$STATUS" -ne 0 ]]; then
    echo "FAIL: test suite exited with status $STATUS" >&2
    exit "$STATUS"
fi

echo "OK: all fault-injection and workspace tests passed, no panic leaks"
