#!/usr/bin/env bash
# Telemetry determinism check: run the seeded obs_trace example twice (two
# separate processes, so the global registry starts from zero each time) and
# require the JSONL trace and the counter-only metrics snapshot to be
# byte-identical. Then sanity-check that the expected metric families and
# event names actually appeared — an empty-but-identical pair of files
# would otherwise pass.
#
# Usage: scripts/obscheck.sh [seed]
set -uo pipefail
cd "$(dirname "$0")/.."

SEED="${1:-42}"
OUT_DIR="$(mktemp -d)"
trap 'rm -rf "$OUT_DIR"' EXIT
STATUS=0

run() {
    echo "+ $*"
    "$@"
    local rc=$?
    if [ $rc -ne 0 ]; then
        echo "FAILED (exit $rc): $*"
        STATUS=1
    fi
    return $rc
}

run cargo build --release --offline --example obs_trace || exit 1
BIN=target/release/examples/obs_trace

# The three extra outputs exercise the causal-tracing layer: the e2e
# admission slice, the forced cert-fallback flight dump, and the SLO
# burn-rate report. The binary itself validates tree well-formedness
# (flight::validate_tree) and required span names, and exits nonzero on
# violation — the diffs below add the cross-run determinism contract.
run "$BIN" "$OUT_DIR/trace1.jsonl" "$OUT_DIR/metrics1.jsonl" "$SEED" \
    "$OUT_DIR/e2e1.jsonl" "$OUT_DIR/flight1.jsonl" "$OUT_DIR/slo1.txt" || exit 1
run "$BIN" "$OUT_DIR/trace2.jsonl" "$OUT_DIR/metrics2.jsonl" "$SEED" \
    "$OUT_DIR/e2e2.jsonl" "$OUT_DIR/flight2.jsonl" "$OUT_DIR/slo2.txt" || exit 1

for pair in trace:jsonl metrics:jsonl e2e:jsonl flight:jsonl slo:txt; do
    name="${pair%%:*}"
    ext="${pair##*:}"
    if diff -q "$OUT_DIR/${name}1.$ext" "$OUT_DIR/${name}2.$ext" >/dev/null; then
        echo "$name: byte-identical across runs (seed $SEED)"
    else
        echo "FAILED: $name differs between same-seed runs"
        diff "$OUT_DIR/${name}1.$ext" "$OUT_DIR/${name}2.$ext" | head -20
        STATUS=1
    fi
done

# Content sanity: the trace must contain the core event names and the
# snapshot must contain the solver/admission counter families.
for name in admission.verdict sched.round sim.round; do
    if ! grep -q "\"name\":\"$name\"" "$OUT_DIR/trace1.jsonl"; then
        echo "FAILED: trace missing event $name"
        STATUS=1
    fi
done
for family in bate_solver_ bate_admission_ bate_sched_ bate_warm_ bate_storm_; do
    if ! grep -q "\"metric\":\"$family" "$OUT_DIR/metrics1.jsonl"; then
        echo "FAILED: metrics snapshot missing family $family*"
        STATUS=1
    fi
done

# Causal artifacts: the e2e slice must link the whole flow under one
# trace id, and the flight dump must be the cert-fallback slice.
for name in client.submit admission.pipeline lp.solve broker.install; do
    if ! grep -q "\"name\":\"$name\"" "$OUT_DIR/e2e1.jsonl"; then
        echo "FAILED: e2e slice missing span $name"
        STATUS=1
    fi
done
E2E_TRACES=$(grep -o '"trace":"[0-9a-f]*"' "$OUT_DIR/e2e1.jsonl" | sort -u | wc -l)
if [ "$E2E_TRACES" -ne 1 ]; then
    echo "FAILED: e2e slice spans $E2E_TRACES trace ids (want exactly 1)"
    STATUS=1
fi
if ! head -1 "$OUT_DIR/flight1.jsonl" | grep -q '"flight":"cert_cold_fallback"'; then
    echo "FAILED: flight artifact is not the cert-fallback dump"
    STATUS=1
fi
for slo in warm_hit_rate ba_guarantee_rate; do
    if ! grep -q "slo $slo:" "$OUT_DIR/slo1.txt"; then
        echo "FAILED: SLO report missing spec $slo"
        STATUS=1
    fi
done

# METRICS.md drift: every metric the deterministic harness exports must
# be documented in the inventory.
if [ -f METRICS.md ]; then
    MISSING=0
    for metric in $(grep -o '"metric":"[a-z_]*"' "$OUT_DIR/metrics1.jsonl" \
                    | sed 's/"metric":"\([a-z_]*\)"/\1/' | sort -u); do
        if ! grep -q "\`$metric\`" METRICS.md; then
            echo "FAILED: $metric exported but not documented in METRICS.md"
            MISSING=1
        fi
    done
    [ $MISSING -eq 0 ] && echo "METRICS.md: inventory covers the exported snapshot"
    STATUS=$((STATUS | MISSING))
else
    echo "FAILED: METRICS.md missing"
    STATUS=1
fi

if [ $STATUS -eq 0 ]; then
    echo "obscheck: OK"
else
    echo "obscheck: FAILED"
fi
exit $STATUS
