#!/usr/bin/env bash
# Telemetry determinism check: run the seeded obs_trace example twice (two
# separate processes, so the global registry starts from zero each time) and
# require the JSONL trace and the counter-only metrics snapshot to be
# byte-identical. Then sanity-check that the expected metric families and
# event names actually appeared — an empty-but-identical pair of files
# would otherwise pass.
#
# Usage: scripts/obscheck.sh [seed]
set -uo pipefail
cd "$(dirname "$0")/.."

SEED="${1:-42}"
OUT_DIR="$(mktemp -d)"
trap 'rm -rf "$OUT_DIR"' EXIT
STATUS=0

run() {
    echo "+ $*"
    "$@"
    local rc=$?
    if [ $rc -ne 0 ]; then
        echo "FAILED (exit $rc): $*"
        STATUS=1
    fi
    return $rc
}

run cargo build --release --offline --example obs_trace || exit 1
BIN=target/release/examples/obs_trace

run "$BIN" "$OUT_DIR/trace1.jsonl" "$OUT_DIR/metrics1.jsonl" "$SEED" || exit 1
run "$BIN" "$OUT_DIR/trace2.jsonl" "$OUT_DIR/metrics2.jsonl" "$SEED" || exit 1

if diff -q "$OUT_DIR/trace1.jsonl" "$OUT_DIR/trace2.jsonl" >/dev/null; then
    echo "trace: byte-identical across runs (seed $SEED)"
else
    echo "FAILED: trace JSONL differs between same-seed runs"
    diff "$OUT_DIR/trace1.jsonl" "$OUT_DIR/trace2.jsonl" | head -20
    STATUS=1
fi

if diff -q "$OUT_DIR/metrics1.jsonl" "$OUT_DIR/metrics2.jsonl" >/dev/null; then
    echo "metrics: byte-identical across runs (seed $SEED)"
else
    echo "FAILED: metrics snapshot differs between same-seed runs"
    diff "$OUT_DIR/metrics1.jsonl" "$OUT_DIR/metrics2.jsonl" | head -20
    STATUS=1
fi

# Content sanity: the trace must contain the core event names and the
# snapshot must contain the solver/admission counter families.
for name in admission.verdict sched.round sim.round; do
    if ! grep -q "\"name\":\"$name\"" "$OUT_DIR/trace1.jsonl"; then
        echo "FAILED: trace missing event $name"
        STATUS=1
    fi
done
for family in bate_solver_ bate_admission_ bate_sched_ bate_warm_ bate_storm_; do
    if ! grep -q "\"metric\":\"$family" "$OUT_DIR/metrics1.jsonl"; then
        echo "FAILED: metrics snapshot missing family $family*"
        STATUS=1
    fi
done

if [ $STATUS -eq 0 ]; then
    echo "obscheck: OK"
else
    echo "obscheck: FAILED"
fi
exit $STATUS
