//! Cross-crate integration: the full BATE pipeline from topology to
//! recovery, exercised through the facade crate.

use bate::core::recovery::backup::BackupPlan;
use bate::core::recovery::greedy::greedy_recovery;
use bate::core::{admission, scheduling, Allocation, BaDemand, TeContext};
use bate::net::{topologies, Scenario, ScenarioSet};
use bate::routing::{RoutingScheme, TunnelSet};

/// Admit a stream of demands, schedule, fail the worst link, recover, and
/// verify every invariant along the way.
#[test]
fn full_lifecycle() {
    // 1. Network + tunnels + scenarios.
    let topo = topologies::testbed6();
    let tunnels = TunnelSet::compute(&topo, RoutingScheme::default_ksp4());
    let scenarios = ScenarioSet::enumerate(&topo, 2);
    let ctx = TeContext::new(&topo, &tunnels, &scenarios);
    let n = |s: &str| topo.find_node(s).unwrap();

    // 2. Admission of a demand stream.
    let requests: Vec<BaDemand> = vec![
        BaDemand::single(
            1,
            tunnels.pair_index(n("DC1"), n("DC3")).unwrap(),
            400.0,
            0.999,
        )
        .with_refund(0.25),
        BaDemand::single(
            2,
            tunnels.pair_index(n("DC1"), n("DC4")).unwrap(),
            300.0,
            0.99,
        )
        .with_refund(0.10),
        BaDemand::single(
            3,
            tunnels.pair_index(n("DC2"), n("DC6")).unwrap(),
            500.0,
            0.95,
        )
        .with_refund(0.10),
        BaDemand::single(
            4,
            tunnels.pair_index(n("DC1"), n("DC3")).unwrap(),
            350.0,
            0.99,
        )
        .with_refund(0.25),
    ];
    let mut admitted = Vec::new();
    let mut current = Allocation::new();
    for d in requests {
        if let admission::AdmissionOutcome::Admitted { allocation, .. } =
            admission::admit(&ctx, &admitted, &current, &d)
        {
            for (t, f) in allocation.flows_of(d.id) {
                current.set(d.id, t, f);
            }
            admitted.push(d);
        }
    }
    assert!(admitted.len() >= 3, "most demands fit: {}", admitted.len());

    // 3. Scheduling: targets met, capacity respected, bandwidth minimal.
    let result = scheduling::schedule(&ctx, &admitted).expect("schedulable");
    let alloc = &result.allocation;
    assert!(alloc.respects_capacity(&ctx, 1e-6));
    for d in &admitted {
        assert!(alloc.meets_target(&ctx, d), "target missed for {:?}", d.id);
    }
    let demanded: f64 = admitted.iter().map(|d| d.total_bandwidth()).sum();
    assert!(result.total_bandwidth >= demanded - 1e-6);

    // 4. Backup precomputation covers every fate group.
    let plan = BackupPlan::compute(&ctx, &admitted);
    assert_eq!(plan.len(), topo.num_groups());

    // 5. An actual failure of the riskiest link (L4).
    let l4 = topo.find_link(n("DC4"), n("DC5")).unwrap();
    let scenario = Scenario::with_failures(&topo, &[topo.link(l4).group]);
    let recovery = greedy_recovery(&ctx, &admitted, &scenario);
    // Nothing may ride the dead link, and profit accounting is sane.
    let loads = recovery.allocation.link_loads(&ctx);
    for &l in &topo.group(topo.link(l4).group).links {
        assert_eq!(loads[l.index()], 0.0);
    }
    let baseline: f64 = admitted.iter().map(|d| d.price).sum();
    assert!(recovery.profit <= baseline + 1e-9);
    assert!(recovery.profit > 0.0);

    // The precomputed plan for L4 gives the same outcome (it was computed
    // by the same algorithm over the same state).
    let planned = plan.lookup(&[topo.link(l4).group]).unwrap();
    assert_eq!(planned.satisfied.len(), recovery.satisfied.len());
}

/// The pruning knob: deeper enumeration covers more probability, never
/// *increases* the scheduled bandwidth, and never breaks guarantees.
#[test]
fn pruning_depth_tradeoff() {
    let topo = topologies::testbed6();
    let tunnels = TunnelSet::compute(&topo, RoutingScheme::default_ksp4());
    let n = |s: &str| topo.find_node(s).unwrap();
    let d = BaDemand::single(
        1,
        tunnels.pair_index(n("DC1"), n("DC4")).unwrap(),
        800.0,
        0.999,
    );

    let mut prev_bw = f64::INFINITY;
    let mut prev_cover = 0.0;
    for y in 1..=4 {
        let scenarios = ScenarioSet::enumerate(&topo, y);
        assert!(scenarios.covered_probability() >= prev_cover);
        prev_cover = scenarios.covered_probability();
        let ctx = TeContext::new(&topo, &tunnels, &scenarios);
        let res = scheduling::schedule(&ctx, std::slice::from_ref(&d)).expect("feasible at all depths");
        assert!(res.total_bandwidth <= prev_bw + 1e-6, "y={y}");
        prev_bw = res.total_bandwidth;
        assert!(res.allocation.meets_target(&ctx, &d));
    }
}

/// Multi-pair demands work end to end (the b_d vector of §3.1).
#[test]
fn multi_pair_demand() {
    let topo = topologies::testbed6();
    let tunnels = TunnelSet::compute(&topo, RoutingScheme::default_ksp4());
    let scenarios = ScenarioSet::enumerate(&topo, 2);
    let ctx = TeContext::new(&topo, &tunnels, &scenarios);
    let n = |s: &str| topo.find_node(s).unwrap();
    let d = BaDemand {
        id: bate::core::DemandId(1),
        bandwidth: vec![
            (tunnels.pair_index(n("DC1"), n("DC3")).unwrap(), 300.0),
            (tunnels.pair_index(n("DC2"), n("DC5")).unwrap(), 200.0),
        ],
        beta: 0.99,
        price: 500.0,
        refund_ratio: 0.1,
    };
    let res = scheduling::schedule(&ctx, std::slice::from_ref(&d)).expect("feasible");
    assert!(res.allocation.meets_target(&ctx, &d));
    // A scenario killing one pair's only used tunnels must disqualify the
    // whole demand (availability is per-demand, not per-pair).
    let achieved = res.allocation.achieved_availability(&ctx, &d);
    assert!((0.99..=1.0).contains(&achieved));
}
