//! Cross-crate integration: every TE algorithm against every topology,
//! plus the headline BATE-vs-baselines comparisons.

use bate::baselines::{paper_baselines, traits::Bate, TeAlgorithm};
use bate::core::{BaDemand, TeContext};
use bate::net::{topologies, ScenarioSet};
use bate::routing::{RoutingScheme, TunnelSet};
use bate::sim::analysis::{evaluate_te, satisfaction_fraction};

fn snapshot(tunnels: &TunnelSet, count: usize, seed: u64) -> Vec<BaDemand> {
    // Small deterministic LCG so the test needs no rand dependency wiring.
    let mut x = seed;
    let mut next = move || {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (x >> 33) as usize
    };
    let betas = [0.0, 0.9, 0.95, 0.99, 0.999];
    let pairs: Vec<usize> = (0..tunnels.num_pairs())
        .filter(|&p| tunnels.tunnels(p).len() >= 2)
        .collect();
    (0..count)
        .map(|i| {
            let pair = pairs[next() % pairs.len()];
            let bw = 20.0 + (next() % 200) as f64;
            BaDemand::single(i as u64 + 1, pair, bw, betas[next() % betas.len()])
        })
        .collect()
}

/// Every algorithm produces a capacity-respecting allocation on every
/// simulation topology (Table 4).
#[test]
fn all_algorithms_respect_capacity_on_all_topologies() {
    for topo in topologies::simulation_topologies() {
        let tunnels = TunnelSet::compute(&topo, RoutingScheme::default_ksp4());
        let scenarios = ScenarioSet::enumerate(&topo, 1);
        let ctx = TeContext::new(&topo, &tunnels, &scenarios);
        let demands = snapshot(&tunnels, 10, 7);
        let mut algos: Vec<Box<dyn TeAlgorithm>> = vec![Box::new(Bate)];
        algos.extend(paper_baselines());
        for algo in &algos {
            if let Ok(alloc) = algo.allocate(&ctx, &demands) {
                assert!(
                    alloc.respects_capacity(&ctx, 1e-4),
                    "{} on {}",
                    algo.name(),
                    topo.name()
                );
            }
            // BATE may legitimately return Infeasible for a random
            // snapshot; baselines never do.
            if algo.name() != "BATE" {
                assert!(
                    algo.allocate(&ctx, &demands).is_ok(),
                    "{} must be best-effort",
                    algo.name()
                );
            }
        }
    }
}

/// Headline claim (§1): under normal load BATE satisfies substantially
/// more BA demands than the baselines. Checked analytically on the
/// testbed with a BATE-admitted demand set.
#[test]
fn bate_leads_satisfaction() {
    let topo = topologies::testbed6();
    let tunnels = TunnelSet::compute(&topo, RoutingScheme::default_ksp4());
    let scenarios = ScenarioSet::enumerate(&topo, 3);
    let ctx = TeContext::new(&topo, &tunnels, &scenarios);

    // Demand set that BATE's admission accepts in full.
    let all = snapshot(&tunnels, 14, 3);
    let mut admitted = Vec::new();
    let mut current = bate::core::Allocation::new();
    for d in &all {
        if let bate::core::admission::AdmissionOutcome::Admitted { allocation, .. } =
            bate::core::admission::admit(&ctx, &admitted, &current, d)
        {
            for (t, f) in allocation.flows_of(d.id) {
                current.set(d.id, t, f);
            }
            admitted.push(d.clone());
        }
    }
    assert!(admitted.len() >= 8, "admitted {}", admitted.len());

    let bate_sat = satisfaction_fraction(&evaluate_te(&ctx, &Bate, &admitted));
    assert!(
        (bate_sat - 1.0).abs() < 1e-9,
        "BATE guarantees every admitted demand: {bate_sat}"
    );
    for baseline in paper_baselines() {
        let sat = satisfaction_fraction(&evaluate_te(&ctx, baseline.as_ref(), &admitted));
        assert!(
            bate_sat >= sat - 1e-9,
            "{} ({sat}) beat BATE ({bate_sat})",
            baseline.name()
        );
    }
}

/// FFC's conservatism: on the same demand set, FFC allocates no *more*
/// usable (demand-capped) bandwidth than BATE guarantees, and satisfies
/// fewer high-availability demands (the 23–60 % gap of Fig. 13).
#[test]
fn ffc_is_conservative() {
    let topo = topologies::testbed6();
    let tunnels = TunnelSet::compute(&topo, RoutingScheme::default_ksp4());
    let scenarios = ScenarioSet::enumerate(&topo, 3);
    let ctx = TeContext::new(&topo, &tunnels, &scenarios);
    // Moderately loaded: high-β demands that need smart placement.
    let n = |s: &str| topo.find_node(s).unwrap();
    let demands: Vec<BaDemand> = (0..6)
        .map(|i| {
            BaDemand::single(
                i + 1,
                tunnels.pair_index(n("DC1"), n("DC3")).unwrap(),
                250.0,
                0.999,
            )
        })
        .collect();
    let ffc = bate::baselines::Ffc::new(1);
    let ffc_sat = satisfaction_fraction(&evaluate_te(&ctx, &ffc, &demands));
    let bate_sat = satisfaction_fraction(&evaluate_te(&ctx, &Bate, &demands));
    assert!(
        bate_sat > ffc_sat,
        "BATE {bate_sat} must beat FFC {ffc_sat} on contended 99.9% demands"
    );
}
