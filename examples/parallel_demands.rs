//! The §5.1 "parallel demands" case study (Table 3 / Fig. 9): three
//! concurrent demands with different availability targets, allocated by
//! BATE, TEAVAR, and FFC.
//!
//! ```text
//! cargo run --example parallel_demands
//! ```

use bate::baselines::{traits::Bate, Ffc, TeAlgorithm, Teavar};
use bate::core::{Allocation, BaDemand, TeContext};
use bate::net::{topologies, ScenarioSet};
use bate::routing::{RoutingScheme, TunnelSet};

fn main() {
    let topo = topologies::testbed6();
    let tunnels = TunnelSet::compute(&topo, RoutingScheme::default_ksp4());
    let scenarios = ScenarioSet::enumerate(&topo, topo.num_groups());
    let ctx = TeContext::new(&topo, &tunnels, &scenarios);

    let n = |s: &str| topo.find_node(s).unwrap();
    // Table 3: demand-1 1000 Mbps DC1→DC3 @ 99.5 %, demand-2 500 Mbps
    // DC1→DC4 @ 99.9 %, demand-3 1500 Mbps DC1→DC5 @ 95 %.
    let demands = vec![
        BaDemand::single(
            1,
            tunnels.pair_index(n("DC1"), n("DC3")).unwrap(),
            1000.0,
            0.995,
        ),
        BaDemand::single(
            2,
            tunnels.pair_index(n("DC1"), n("DC4")).unwrap(),
            500.0,
            0.999,
        ),
        BaDemand::single(
            3,
            tunnels.pair_index(n("DC1"), n("DC5")).unwrap(),
            1500.0,
            0.95,
        ),
    ];

    let bate = Bate;
    let teavar = Teavar::new(0.999);
    let ffc = Ffc::new(1);
    let algorithms: Vec<&dyn TeAlgorithm> = vec![&bate, &teavar, &ffc];

    println!("Scheduled results (cf. Table 3):");
    for algo in algorithms {
        println!("\n=== {} ===", algo.name());
        let alloc = algo
            .allocate(&ctx, &demands)
            .unwrap_or_else(|_| Allocation::new());
        for d in &demands {
            println!(
                "demand-{} ({} Mbps @ {}%):",
                d.id.0,
                d.total_bandwidth(),
                d.beta * 100.0
            );
            let mut any = false;
            for (t, f) in alloc.flows_of(d.id) {
                println!("  {:<42} {:>8.1} Mbps", tunnels.path(t).format(&topo), f);
                any = true;
            }
            if !any {
                println!("  (nothing allocated)");
            }
            let achieved = alloc.achieved_availability(&ctx, d);
            println!(
                "  achieved availability {:.5}% → {}",
                achieved * 100.0,
                if achieved >= d.beta {
                    "meets target ✓"
                } else {
                    "misses target ✗"
                }
            );
        }
    }

    println!(
        "\nNote how BATE keeps demand-2 (99.9%) off L4 (DC4-DC5, 1% failure)\n\
         while TEAVAR routes part of it across L4 — the mismatch §5.1 calls out."
    );
}
