//! Quickstart: build a WAN, admit demands with availability targets,
//! schedule them, and inspect the guarantees.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use bate::core::{admission, scheduling, Allocation, BaDemand, TeContext};
use bate::net::{topologies, ScenarioSet};
use bate::routing::{RoutingScheme, TunnelSet};

fn main() {
    // 1. The network: the paper's 6-DC testbed (Fig. 6). 1 Gbps links,
    //    heterogeneous failure probabilities (L4 = DC4-DC5 fails 1%).
    let topo = topologies::testbed6();
    println!("topology: {topo}");

    // 2. Offline routing: 4-shortest-path tunnels for every DC pair.
    let tunnels = TunnelSet::compute(&topo, RoutingScheme::default_ksp4());
    println!(
        "tunnels:  {} across {} pairs",
        tunnels.total_tunnels(),
        tunnels.num_pairs()
    );

    // 3. Failure scenarios, pruned at 2 concurrent failures (§3.3).
    let scenarios = ScenarioSet::enumerate(&topo, 2);
    println!(
        "scenarios: {} enumerated, {:.6}% probability mass covered",
        scenarios.len(),
        scenarios.covered_probability() * 100.0
    );
    let ctx = TeContext::new(&topo, &tunnels, &scenarios);

    // 4. Demands with heterogeneous bandwidth-availability targets.
    let n = |s: &str| topo.find_node(s).unwrap();
    let pair = |a: &str, b: &str| tunnels.pair_index(n(a), n(b)).unwrap();
    let requests = vec![
        BaDemand::single(1, pair("DC1", "DC3"), 400.0, 0.9999), // DNS-class
        BaDemand::single(2, pair("DC1", "DC4"), 300.0, 0.999),  // replication
        BaDemand::single(3, pair("DC2", "DC6"), 600.0, 0.95),   // logs
        BaDemand::single(4, pair("DC1", "DC3"), 5000.0, 0.99),  // too big!
    ];

    // 5. Online admission (§3.2): fixed check, then the Algorithm-1
    //    conjecture, then reject.
    let mut admitted: Vec<BaDemand> = Vec::new();
    let mut current = Allocation::new();
    for d in requests {
        match admission::admit(&ctx, &admitted, &current, &d) {
            admission::AdmissionOutcome::Admitted { path, allocation } => {
                println!(
                    "demand {} ({} Mbps @ {}%): ADMITTED via {:?}",
                    d.id.0,
                    d.total_bandwidth(),
                    d.beta * 100.0,
                    path
                );
                for (t, f) in allocation.flows_of(d.id) {
                    current.set(d.id, t, f);
                }
                admitted.push(d);
            }
            admission::AdmissionOutcome::Rejected => {
                println!(
                    "demand {} ({} Mbps @ {}%): rejected",
                    d.id.0,
                    d.total_bandwidth(),
                    d.beta * 100.0
                );
            }
        }
    }

    // 6. Periodic traffic scheduling (§3.3): re-optimize everyone with the
    //    minimum bandwidth that still meets every target.
    let result = scheduling::schedule(&ctx, &admitted).expect("admitted demands must schedule");
    println!(
        "\nscheduled {} demands with {:.1} Mbps total allocated",
        admitted.len(),
        result.total_bandwidth
    );
    for d in &admitted {
        let achieved = result.allocation.achieved_availability(&ctx, d);
        println!(
            "  demand {}: target {:>8.4}%  guaranteed {:>9.5}%",
            d.id.0,
            d.beta * 100.0,
            achieved * 100.0
        );
        for (t, f) in result.allocation.flows_of(d.id) {
            println!("    {:>7.1} Mbps on {}", f, tunnels.path(t).format(&topo));
        }
    }
}
