//! The §2.2 motivating example (Fig. 2): why FFC and TEAVAR cannot satisfy
//! heterogeneous bandwidth-availability demands, and how BATE does.
//!
//! ```text
//! cargo run --example motivating_example
//! ```

use bate::baselines::{traits::Bate, Ffc, TeAlgorithm, Teavar};
use bate::core::{Allocation, BaDemand, TeContext};
use bate::net::{topologies, ScenarioSet};
use bate::routing::{RoutingScheme, TunnelSet};

fn main() {
    let topo = topologies::toy4();
    let tunnels = TunnelSet::compute(&topo, RoutingScheme::Ksp(2));
    // Full enumeration (2^4 scenarios) so availabilities are exact.
    let scenarios = ScenarioSet::enumerate(&topo, topo.num_groups());
    let ctx = TeContext::new(&topo, &tunnels, &scenarios);

    let n = |s: &str| topo.find_node(s).unwrap();
    let pair = tunnels.pair_index(n("DC1"), n("DC4")).unwrap();
    println!("Two paths DC1→DC4:");
    for p in tunnels.tunnels(pair) {
        println!(
            "  {:<18} availability {:.7}%",
            p.format(&topo),
            p.availability(&topo) * 100.0
        );
    }

    // user1 (solid): 6 Gbps at 99 %; user2 (dash): 12 Gbps at 90 %.
    let user1 = BaDemand::single(1, pair, 6000.0, 0.99);
    let user2 = BaDemand::single(2, pair, 12_000.0, 0.90);
    let demands = vec![user1.clone(), user2.clone()];

    let bate = Bate;
    let teavar = Teavar::new(0.999);
    let ffc = Ffc::new(1);
    let algorithms: Vec<&dyn TeAlgorithm> = vec![&ffc, &teavar, &bate];

    for algo in algorithms {
        println!("\n=== {} ===", algo.name());
        let alloc = algo
            .allocate(&ctx, &demands)
            .unwrap_or_else(|_| Allocation::new());
        for d in &demands {
            println!(
                "  user{} ({} Gbps @ {}%):",
                d.id.0,
                d.total_bandwidth() / 1000.0,
                d.beta * 100.0
            );
            for (t, f) in alloc.flows_of(d.id) {
                println!(
                    "    {:>7.2} Gbps on {}",
                    f / 1000.0,
                    tunnels.path(t).format(&topo)
                );
            }
            let achieved = alloc.achieved_availability(&ctx, d);
            let verdict = if achieved >= d.beta {
                "satisfied ✓"
            } else {
                "VIOLATED ✗"
            };
            println!(
                "    achieved availability {:.6}% → {}",
                achieved * 100.0,
                verdict
            );
        }
    }

    println!(
        "\nBATE matches user1 (99%) to the reliable path and gives user2 both\n\
         paths — exactly Fig. 2(d); FFC over-protects and TEAVAR's single β\n\
         cannot distinguish the two users."
    );
}
