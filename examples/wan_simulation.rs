//! Trace-driven WAN simulation (the §5.2 methodology, scaled down): Poisson
//! demand arrivals on the B4 topology, probabilistic link failures, BATE
//! admission + scheduling + backup-based recovery.
//!
//! ```text
//! cargo run --release --example wan_simulation [minutes] [rate/min]
//! ```

use bate::baselines::traits::Bate;
use bate::core::TeContext;
use bate::net::{topologies, ScenarioSet};
use bate::routing::{RoutingScheme, TunnelSet};
use bate::sim::workload::{generate, WorkloadConfig};
use bate::sim::{AdmissionStrategy, RecoveryPolicy, SimConfig, Simulation};

fn main() {
    let mut args = std::env::args().skip(1);
    let minutes: f64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(20.0);
    let rate: f64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(3.0);

    let topo = topologies::b4();
    println!("simulating {minutes} min on {topo}, {rate} arrivals/min");
    let tunnels = TunnelSet::compute(&topo, RoutingScheme::default_ksp4());
    let scenarios = ScenarioSet::enumerate(&topo, 2);
    let ctx = TeContext::new(&topo, &tunnels, &scenarios);

    // Demands between six hot DC pairs (gravity-model style subset).
    let pairs: Vec<usize> = (0..tunnels.num_pairs())
        .filter(|&p| tunnels.tunnels(p).len() >= 3)
        .step_by(7)
        .take(6)
        .collect();
    let wl = WorkloadConfig::simulation(pairs, rate, 42);
    let horizon = minutes * 60.0;
    let workload = generate(&wl, &tunnels, horizon);
    println!("workload: {} demand arrivals", workload.len());

    let mut cfg = SimConfig::testbed(horizon, 42);
    cfg.admission = AdmissionStrategy::Bate;
    cfg.recovery = RecoveryPolicy::Backup;
    cfg.schedule_interval_secs = 60.0;

    let te = Bate;
    let report = Simulation {
        ctx,
        te: &te,
        config: cfg,
        workload: &workload,
    }
    .run();

    println!("\n--- results ---");
    println!("arrived:            {}", report.arrived);
    println!("admitted:           {}", report.admitted);
    println!(
        "rejection ratio:    {:.1}%",
        report.rejection_ratio() * 100.0
    );
    println!(
        "admission latency:  {:.2} ms mean",
        report.mean_admission_delay_ms()
    );
    println!(
        "satisfaction:       {:.1}% of admitted demands met their BA target",
        report.satisfaction_fraction() * 100.0
    );
    println!(
        "link utilization:   {:.1}% mean",
        report.mean_link_utilization * 100.0
    );
    println!("data loss ratio:    {:.4}%", report.data_loss_ratio * 100.0);
    let failures: usize = report.failure_counts.iter().sum();
    println!("link failures:      {failures}");
    let pool = bate::core::pricing::azure_services();
    println!(
        "profit after SLA:   {:.1}% of the no-violation baseline",
        report.profit_gain(&pool) * 100.0
    );
}
