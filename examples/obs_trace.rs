//! Deterministic telemetry capture: run a seeded testbed simulation with
//! the JSONL trace subscriber installed and dump a filtered registry
//! snapshot — the harness behind `scripts/obscheck.sh`, which runs this
//! twice and diffs the outputs byte for byte.
//!
//! ```text
//! cargo run --release --example obs_trace -- <trace_out> <metrics_out> [seed]
//! ```
//!
//! Determinism contract:
//! * the installed trace clock is a [`SimClock`] that is never advanced,
//!   so event `t_ns` stamps are constant; real timing lives in the events'
//!   explicit `sim_time` fields, which come from the (seed-deterministic)
//!   event queue;
//! * the run uses `TimingMode::Fixed`, so the event schedule itself is a
//!   pure function of the seed;
//! * the metrics snapshot keeps counters only — histograms hold wall-clock
//!   latencies, the one thing that legitimately differs between runs.

use bate_net::{topologies, GroupId, ScenarioSet};
use bate_obs::{JsonlSubscriber, MetricKind, Registry, SimClock};
use bate_routing::{RoutingScheme, TunnelSet};
use bate_sim::workload::generate;
use bate_sim::{churn, storm};
use bate_sim::{AdmissionStrategy, RecoveryPolicy, SimConfig, Simulation, WorkloadConfig};
use std::path::Path;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [trace_out, metrics_out] = &args[..2] else {
        eprintln!("usage: obs_trace <trace_out> <metrics_out> [seed]");
        std::process::exit(2);
    };
    let seed: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(42);

    let subscriber = JsonlSubscriber::to_file(Path::new(trace_out), "obs_trace")
        .expect("create trace file");
    bate_obs::trace::install(subscriber, SimClock::shared());

    let topo = topologies::testbed6();
    let tunnels = TunnelSet::compute(&topo, RoutingScheme::Ksp(3));
    let scenarios = ScenarioSet::enumerate(&topo, 2);
    let ctx = bate_core::TeContext::new(&topo, &tunnels, &scenarios);
    let n = |s: &str| topo.find_node(s).unwrap();
    let pairs = vec![
        tunnels.pair_index(n("DC1"), n("DC3")).unwrap(),
        tunnels.pair_index(n("DC1"), n("DC4")).unwrap(),
        tunnels.pair_index(n("DC2"), n("DC6")).unwrap(),
    ];
    let horizon = 15.0 * 60.0;
    let workload = generate(&WorkloadConfig::testbed(pairs, seed), &tunnels, horizon);
    let mut cfg = SimConfig::testbed(horizon, seed);
    cfg.admission = AdmissionStrategy::Bate;
    cfg.recovery = RecoveryPolicy::Greedy;
    let te = bate_baselines::traits::Bate;

    let report = Simulation {
        ctx,
        te: &te,
        config: cfg,
        workload: &workload,
    }
    .run();

    // Drive a seeded churn sequence through the incremental warm-start
    // scheduler so the `bate_warm_*` counter families (DESIGN.md §5e)
    // appear with nonzero, seed-deterministic values in the snapshot
    // (the wall-clock resolve latency lands in a histogram, which the
    // counter-only filter below excludes).
    let churn_ctx = bate_core::TeContext::new(&topo, &tunnels, &scenarios);
    let live_pairs: Vec<usize> = (0..tunnels.num_pairs())
        .filter(|&p| !tunnels.tunnels(p).is_empty())
        .take(4)
        .collect();
    let churn_cfg = churn::ChurnConfig::steady(live_pairs, 6, 4, seed);
    let churn_report =
        churn::run(&churn_ctx, &churn::generate(&churn_cfg)).expect("churn run");

    // Drive a seeded recovery storm (DESIGN.md §6x) so the `bate_storm_*`
    // counter family also lands in the snapshot with seed-deterministic
    // values. Same region cut the golden timeline pins: all three DC1
    // uplinks severed together. Latencies stay pinned to zero
    // (`measure_time = false`) — and land in a histogram the counter-only
    // filter excludes anyway.
    let storm_tunnels = TunnelSet::compute(&topo, RoutingScheme::Ksp(2));
    let storm_scenarios = ScenarioSet::enumerate(&topo, 1);
    let storm_ctx = bate_core::TeContext::new(&topo, &storm_tunnels, &storm_scenarios);
    let storm_pairs: Vec<usize> = (0..storm_tunnels.num_pairs())
        .filter(|&p| !storm_tunnels.tunnels(p).is_empty())
        .take(4)
        .collect();
    let storm_cfg = storm::StormConfig::regional(
        storm_pairs,
        6,
        vec![GroupId(0), GroupId(5), GroupId(7)],
        seed,
    );
    let storm_report = storm::run(&storm_ctx, &storm_cfg).expect("storm run");

    // Flush the trace before snapshotting (uninstall flushes the writer).
    bate_obs::trace::uninstall();

    let snapshot = Registry::global()
        .snapshot_jsonl_filtered(|_, kind| kind == MetricKind::Counter);
    std::fs::write(metrics_out, snapshot).expect("write metrics snapshot");

    println!(
        "seed {seed}: {} arrived, {} admitted, {} rejected; churn {} rounds ({} warm); \
         storm {} rounds (greedy retains {:.1}%) -> {trace_out} + {metrics_out}",
        report.arrived,
        report.admitted,
        report.rejected,
        churn_report.rounds.len(),
        churn_report.stats.warm_rounds,
        storm_report.rounds.len(),
        storm_report.greedy_profit_retention() * 100.0
    );
}
