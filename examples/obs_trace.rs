//! Deterministic telemetry capture: run a seeded testbed simulation with
//! the JSONL trace subscriber installed and dump a filtered registry
//! snapshot — the harness behind `scripts/obscheck.sh`, which runs this
//! twice and diffs the outputs byte for byte.
//!
//! ```text
//! cargo run --release --example obs_trace -- <trace_out> <metrics_out> \
//!     [seed] [e2e_out] [flight_out] [slo_out]
//! ```
//!
//! The three optional outputs exercise the causal-tracing layer:
//! * `e2e_out` — the canonical causal slice of one admission flow driven
//!   through real sockets (client → controller → LP solve → broker push),
//!   all under the single deterministic trace id of `("submit", 7)`;
//! * `flight_out` — the flight-recorder artifact dumped by a forced
//!   cert-gate cold fallback, causally sliced on the triggering trace;
//! * `slo_out` — the deterministic-spec SLO burn-rate report.
//!
//! Determinism contract:
//! * the installed trace clock is a [`SimClock`] that is never advanced,
//!   so event `t_ns` stamps are constant; real timing lives in the events'
//!   explicit `sim_time` fields, which come from the (seed-deterministic)
//!   event queue;
//! * the run uses `TimingMode::Fixed`, so the event schedule itself is a
//!   pure function of the seed;
//! * the metrics snapshot keeps counters only — histograms hold wall-clock
//!   latencies, the one thing that legitimately differs between runs.

use bate_net::{topologies, GroupId, ScenarioSet};
use bate_obs::{JsonlSubscriber, MetricKind, Registry, SimClock};
use bate_routing::{RoutingScheme, TunnelSet};
use bate_sim::workload::generate;
use bate_sim::{churn, storm};
use bate_sim::{AdmissionStrategy, RecoveryPolicy, SimConfig, Simulation, WorkloadConfig};
use std::path::Path;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [trace_out, metrics_out] = &args[..2] else {
        eprintln!("usage: obs_trace <trace_out> <metrics_out> [seed]");
        std::process::exit(2);
    };
    let seed: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(42);

    let subscriber = JsonlSubscriber::to_file(Path::new(trace_out), "obs_trace")
        .expect("create trace file");
    bate_obs::trace::install(subscriber, SimClock::shared());

    let topo = topologies::testbed6();
    let tunnels = TunnelSet::compute(&topo, RoutingScheme::Ksp(3));
    let scenarios = ScenarioSet::enumerate(&topo, 2);
    let ctx = bate_core::TeContext::new(&topo, &tunnels, &scenarios);
    let n = |s: &str| topo.find_node(s).unwrap();
    let pairs = vec![
        tunnels.pair_index(n("DC1"), n("DC3")).unwrap(),
        tunnels.pair_index(n("DC1"), n("DC4")).unwrap(),
        tunnels.pair_index(n("DC2"), n("DC6")).unwrap(),
    ];
    let horizon = 15.0 * 60.0;
    let workload = generate(&WorkloadConfig::testbed(pairs, seed), &tunnels, horizon);
    let mut cfg = SimConfig::testbed(horizon, seed);
    cfg.admission = AdmissionStrategy::Bate;
    cfg.recovery = RecoveryPolicy::Greedy;
    let te = bate_baselines::traits::Bate;

    let report = Simulation {
        ctx,
        te: &te,
        config: cfg,
        workload: &workload,
    }
    .run();

    // Drive a seeded churn sequence through the incremental warm-start
    // scheduler so the `bate_warm_*` counter families (DESIGN.md §5e)
    // appear with nonzero, seed-deterministic values in the snapshot
    // (the wall-clock resolve latency lands in a histogram, which the
    // counter-only filter below excludes).
    let churn_ctx = bate_core::TeContext::new(&topo, &tunnels, &scenarios);
    let live_pairs: Vec<usize> = (0..tunnels.num_pairs())
        .filter(|&p| !tunnels.tunnels(p).is_empty())
        .take(4)
        .collect();
    let churn_cfg = churn::ChurnConfig::steady(live_pairs, 6, 4, seed);
    let churn_report =
        churn::run(&churn_ctx, &churn::generate(&churn_cfg)).expect("churn run");

    // Drive a seeded recovery storm (DESIGN.md §6x) so the `bate_storm_*`
    // counter family also lands in the snapshot with seed-deterministic
    // values. Same region cut the golden timeline pins: all three DC1
    // uplinks severed together. Latencies stay pinned to zero
    // (`measure_time = false`) — and land in a histogram the counter-only
    // filter excludes anyway.
    let storm_tunnels = TunnelSet::compute(&topo, RoutingScheme::Ksp(2));
    let storm_scenarios = ScenarioSet::enumerate(&topo, 1);
    let storm_ctx = bate_core::TeContext::new(&topo, &storm_tunnels, &storm_scenarios);
    let storm_pairs: Vec<usize> = (0..storm_tunnels.num_pairs())
        .filter(|&p| !storm_tunnels.tunnels(p).is_empty())
        .take(4)
        .collect();
    let storm_cfg = storm::StormConfig::regional(
        storm_pairs,
        6,
        vec![GroupId(0), GroupId(5), GroupId(7)],
        seed,
    );
    let storm_report = storm::run(&storm_ctx, &storm_cfg).expect("storm run");

    // Flush the trace before snapshotting (uninstall flushes the writer).
    bate_obs::trace::uninstall();

    let snapshot = Registry::global()
        .snapshot_jsonl_filtered(|_, kind| kind == MetricKind::Counter);
    std::fs::write(metrics_out, snapshot).expect("write metrics snapshot");

    // --- Causal-tracing artifacts (optional outputs 4–6) ---------------
    if let (Some(e2e_out), Some(flight_out), Some(slo_out)) =
        (args.get(3), args.get(4), args.get(5))
    {
        causal_artifacts(&topo, e2e_out, flight_out, slo_out, seed);
    }

    println!(
        "seed {seed}: {} arrived, {} admitted, {} rejected; churn {} rounds ({} warm); \
         storm {} rounds (greedy retains {:.1}%) -> {trace_out} + {metrics_out}",
        report.arrived,
        report.admitted,
        report.rejected,
        churn_report.rounds.len(),
        churn_report.stats.warm_rounds,
        storm_report.rounds.len(),
        storm_report.greedy_profit_retention() * 100.0
    );
}

/// Produce the three causal-tracing artifacts. Runs under a fresh
/// [`RingBufferSubscriber`] on a pinned [`SimClock`], so every event's
/// `t_ns` and `dur_ns` are constant and the outputs are byte-identical
/// across same-seed runs.
fn causal_artifacts(
    topo: &bate_net::Topology,
    e2e_out: &str,
    flight_out: &str,
    slo_out: &str,
    seed: u64,
) {
    use bate_core::incremental::{DemandDelta, IncrementalScheduler};
    use bate_core::BaDemand;
    use bate_obs::{flight, RingBufferSubscriber, SloEngine};
    use bate_system::client::DemandRequest;
    use bate_system::{Broker, Client, Controller, ControllerConfig};
    use std::time::Duration;

    let ring = RingBufferSubscriber::new(65_536);
    bate_obs::trace::install(ring.clone(), SimClock::shared());

    // --- E2E admission: one traced flow across real sockets ----------
    // No scheduling-interval thread: every event of this section is
    // caused by the one submit, so the causal slice is closed.
    {
        let controller = Controller::start(ControllerConfig {
            topo: topo.clone(),
            routing: RoutingScheme::Ksp(3),
            max_failures: 2,
            schedule_interval: None,
            clock: bate_core::clock::SystemClock::shared(),
            legacy_duplicate_handling: false,
            idle_timeout: Some(Duration::from_secs(30)),
        })
        .expect("controller start");
        let broker = Broker::connect(controller.addr(), "DC1").expect("broker connect");
        let mut client = Client::connect(controller.addr()).expect("client connect");

        let req = DemandRequest::new(7, "DC1", "DC3", 200.0, 0.95);
        let admitted = client.submit(&req).expect("submit");
        assert!(admitted, "seeded e2e demand must be admitted");
        assert!(
            broker.wait_for_demand(7, Duration::from_secs(5)),
            "broker must receive the install push"
        );

        let tid = bate_obs::context::trace_id("submit", 7);
        let events = ring.take();
        let slice = flight::causal_slice(&events, tid);
        flight::validate_tree(&slice).expect("e2e trace tree well-formed");
        for required in ["client.submit", "admission.pipeline", "lp.solve", "broker.install"] {
            assert!(
                slice.iter().any(|e| e.name == required),
                "e2e slice missing {required}"
            );
        }
        let mut artifact = format!(
            "{{\"e2e\":\"admission\",\"trace\":\"{}\",\"events\":{}}}\n",
            bate_obs::context::hex(tid),
            slice.len()
        );
        for e in &slice {
            artifact.push_str(&e.to_json());
            artifact.push('\n');
        }
        std::fs::write(e2e_out, artifact).expect("write e2e artifact");
    }

    // --- Forced cert-gate cold fallback: flight-recorder dump ---------
    // Fresh flight ring so the dump is a pure function of this section's
    // single-threaded (deterministic) event stream.
    flight::enable(8192);
    flight::set_dump_dir(None);
    let slo = SloEngine::new(bate_obs::slo::deterministic_specs());
    {
        let tunnels = TunnelSet::compute(topo, RoutingScheme::Ksp(2));
        let scenarios = ScenarioSet::enumerate(topo, 1);
        let ctx = bate_core::TeContext::new(topo, &tunnels, &scenarios);
        let pairs: Vec<usize> = (0..tunnels.num_pairs())
            .filter(|&p| !tunnels.tunnels(p).is_empty())
            .take(3)
            .collect();

        let _root = bate_obs::context::root("cert-demo", seed);
        let mut sched = IncrementalScheduler::new(&ctx);
        let fill: Vec<DemandDelta> = pairs
            .iter()
            .enumerate()
            .map(|(i, &p)| DemandDelta::Add(BaDemand::single(i as u64, p, 120.0, 0.9)))
            .collect();
        sched.apply(&ctx, &fill).expect("initial fill");
        slo.record_sample(Registry::global());

        // A few warm churn rounds feed the SLO history...
        for round in 0..4u64 {
            let delta = DemandDelta::Resize {
                id: bate_core::DemandId(round % pairs.len() as u64),
                factor: 1.05,
            };
            sched.apply(&ctx, &[delta]).expect("churn round");
            slo.record_sample(Registry::global());
        }
        // ...then the gate is forced open: the next warm answer fails
        // certification, falls back cold, and trips the flight trigger
        // with this trace's id.
        sched.force_cert_failure_once();
        let delta = DemandDelta::Resize {
            id: bate_core::DemandId(0),
            factor: 1.1,
        };
        sched.apply(&ctx, &[delta]).expect("forced-fallback round");
        slo.record_sample(Registry::global());
    }
    let dumps = flight::take_dumps();
    let dump = dumps
        .iter()
        .find(|d| d.reason == "cert_cold_fallback")
        .expect("forced cert fallback must dump a flight artifact");
    flight::validate_tree(&dump.events).expect("flight dump tree well-formed");
    assert!(
        dump.events.iter().any(|e| e.name == "lp.solve"),
        "flight dump must contain the triggering solve's phase spans"
    );
    std::fs::write(flight_out, dump.render_jsonl()).expect("write flight artifact");
    flight::disable();

    // --- SLO burn-rate report (deterministic counter-ratio specs) -----
    std::fs::write(slo_out, slo.render_report()).expect("write slo report");

    bate_obs::trace::uninstall();
}
