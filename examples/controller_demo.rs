//! The BATE system (§4) live: a controller and per-DC brokers over real
//! TCP sockets. Submits demands, fails a link, and watches the controller
//! reroute.
//!
//! ```text
//! cargo run --example controller_demo
//! ```

use bate::net::topologies;
use bate::routing::RoutingScheme;
use bate::system::client::DemandRequest;
use bate::system::{Broker, Client, Controller, ControllerConfig};
use bate_core::clock::SystemClock;
use std::time::Duration;

fn main() {
    let topo = topologies::testbed6();
    // The Online Scheduler reschedules every 2 s in this demo (the paper
    // uses minutes in production).
    let controller = Controller::start(ControllerConfig {
        topo: topologies::testbed6(),
        routing: RoutingScheme::default_ksp4(),
        max_failures: 2,
        schedule_interval: Some(Duration::from_secs(2)),
        clock: SystemClock::shared(),
        legacy_duplicate_handling: false,
        idle_timeout: Some(Duration::from_secs(30)),
    })
    .expect("controller start");
    println!("controller listening on {}", controller.addr());

    // One broker per data center, like the paper's deployment.
    let brokers: Vec<Broker> = (1..=6)
        .map(|i| Broker::connect(controller.addr(), &format!("DC{i}")).expect("broker connect"))
        .collect();
    controller.wait_for_brokers(brokers.len(), Duration::from_secs(2));
    println!("{} brokers registered", controller.broker_count());

    let mut client = Client::connect(controller.addr()).expect("client connect");
    println!("client RTT: {:?}", client.ping().unwrap());

    // Submit BA demands with Table-1-style availability classes.
    let requests = vec![
        DemandRequest::new(1, "DC1", "DC3", 400.0, 0.9999),
        DemandRequest::new(2, "DC1", "DC4", 500.0, 0.999),
        DemandRequest::new(3, "DC2", "DC6", 700.0, 0.95),
        DemandRequest::new(4, "DC1", "DC3", 5000.0, 0.99), // oversized
    ];
    for req in &requests {
        let admitted = client.submit(req).expect("submit");
        println!(
            "demand {} ({} Mbps {}→{} @ {}%): {}",
            req.id,
            req.bandwidth,
            req.src,
            req.dst,
            req.beta * 100.0,
            if admitted { "ADMITTED" } else { "rejected" }
        );
    }

    // Brokers received the allocations.
    let dc1 = &brokers[0];
    for id in [1u64, 2] {
        dc1.wait_for_demand(id, Duration::from_secs(2));
        println!(
            "broker DC1: demand {id} installed at {:.1} Mbps over {} tunnels",
            dc1.installed_rate(id),
            dc1.entries(id).len()
        );
    }

    // Fail the direct DC1-DC4 link and watch demand 2 reroute.
    let n = |s: &str| topo.find_node(s).unwrap();
    let l8 = topo.find_link(n("DC1"), n("DC4")).unwrap();
    let group = topo.link(l8).group.index() as u32;
    println!("\n!! link DC1-DC4 (L8) fails — broker reports it");
    dc1.report_link(group, false).expect("report");
    dc1.wait_for_rate(2, Duration::from_secs(2), |r| r >= 500.0 - 1e-6);
    println!("controller rerouted demand 2:");
    for e in dc1.entries(2) {
        println!(
            "  pair {} tunnel {} at {:.1} Mbps",
            e.pair, e.tunnel, e.rate
        );
    }

    println!("\n!! link repaired");
    dc1.report_link(group, true).expect("report");
    dc1.wait_for_rate(2, Duration::from_secs(2), |r| r >= 500.0 - 1e-6);
    println!(
        "demand 2 back on its scheduled allocation at {:.1} Mbps",
        dc1.installed_rate(2)
    );
}
