//! # bate — facade crate
//!
//! Re-exports the full BATE workspace: the traffic-engineering core, its
//! substrates (LP solver, WAN model, routing), the baseline TE algorithms,
//! the discrete-event simulator, and the controller/broker system.
//!
//! See the repository README for a tour, `DESIGN.md` for the system
//! inventory, and `examples/` for runnable entry points.

pub use bate_baselines as baselines;
pub use bate_core as core;
pub use bate_lp as lp;
pub use bate_net as net;
pub use bate_routing as routing;
pub use bate_sim as sim;
pub use bate_system as system;
