//! Regression demonstrations of the pre-hardening bugs: each test pins a
//! failure mode that existed before the hardening pass (no retry policy,
//! no idempotent request ids, no CRC framing, no broker reconnect) and
//! shows the hardened path surviving it.

use bate_core::clock::SystemClock;
use bate_net::topologies;
use bate_routing::RoutingScheme;
use bate_system::client::DemandRequest;
use bate_system::wire::Transport;
use bate_system::{Broker, Client, Controller, ControllerConfig, RetryPolicy};
use faultline::harness::harness_policy;
use faultline::plan::Direction;
use faultline::{FaultPlan, FaultProxy};
use std::io::Write;
use std::net::TcpStream;
use std::time::{Duration, Instant};

fn start_controller() -> Controller {
    Controller::start(ControllerConfig::manual(
        topologies::testbed6(),
        RoutingScheme::default_ksp4(),
        2,
    ))
    .unwrap()
}

fn proxied_client(proxy: &FaultProxy, policy: RetryPolicy) -> Client {
    let addr = proxy.addr();
    Client::connect_with(
        Box::new(move || {
            let stream = TcpStream::connect(addr)?;
            stream.set_nodelay(true)?;
            Ok(Box::new(stream) as Box<dyn Transport>)
        }),
        SystemClock::shared(),
        policy,
    )
    .unwrap()
}

/// THE retry bug: the first AdmissionReply is dropped on the wire. The
/// pre-hardening client (no retries, no deadline — `RetryPolicy::none()`
/// preserves it) never learns its demand was admitted; the hardened
/// client retries, the controller replays the verdict idempotently, and
/// the demand is counted exactly once.
#[test]
fn dropped_admission_reply_is_retried_not_double_counted() {
    let plan = FaultPlan::seeded(42).drop_first(Some(Direction::S2C), 1);
    let req = DemandRequest::new(1, "DC1", "DC4", 100.0, 0.9);

    // Pre-hardening behavior: one attempt, reply lost ⇒ the operation
    // fails (bounded here by a short timeout so the test doesn't hang the
    // way the old blocking read did) — yet the controller HAS admitted
    // the demand. The client is billed for capacity it thinks it never
    // got: the bug.
    {
        let controller = start_controller();
        let proxy = FaultProxy::start(controller.addr(), plan.clone()).unwrap();
        let mut policy = RetryPolicy::none();
        policy.request_timeout = Duration::from_millis(200);
        let mut client = proxied_client(&proxy, policy);
        assert!(
            client.submit(&req).is_err(),
            "pre-hardening path must fail when the reply is dropped"
        );
        assert_eq!(
            controller.admitted_count(),
            1,
            "the demand IS admitted — the old client just never learns it"
        );
    }

    // Hardened behavior: the retry gets the replayed verdict; exactly one
    // admission.
    {
        let controller = start_controller();
        let proxy = FaultProxy::start(controller.addr(), plan.clone()).unwrap();
        let mut client = proxied_client(&proxy, harness_policy(&plan));
        assert!(client.submit(&req).unwrap());
        assert_eq!(controller.admitted_count(), 1, "never double-counted");
        // The trace shows the drop actually happened.
        assert!(
            proxy.trace_jsonl().contains("\"action\":\"drop\""),
            "trace: {}",
            proxy.trace_jsonl()
        );
    }
}

/// Garbage and corrupt frames must not take the controller down (the
/// pre-hardening decode path `unwrap()`ed and panicked the connection
/// thread; worse, a truncated length header could hang the read loop).
#[test]
fn garbage_and_corrupt_frames_do_not_kill_the_controller() {
    let controller = start_controller();

    // Raw garbage: not even a valid header.
    let mut raw = TcpStream::connect(controller.addr()).unwrap();
    raw.write_all(&[0xFF; 64]).unwrap();
    raw.flush().unwrap();
    drop(raw);

    // A plausible header claiming a huge frame.
    let mut raw = TcpStream::connect(controller.addr()).unwrap();
    raw.write_all(&(u32::MAX).to_be_bytes()).unwrap();
    raw.write_all(&0u32.to_be_bytes()).unwrap();
    raw.flush().unwrap();
    drop(raw);

    // A frame severed mid-payload.
    let mut raw = TcpStream::connect(controller.addr()).unwrap();
    raw.write_all(&100u32.to_be_bytes()).unwrap();
    raw.write_all(&0u32.to_be_bytes()).unwrap();
    raw.write_all(&[1, 2, 3]).unwrap();
    raw.flush().unwrap();
    drop(raw);

    // Every c2s frame corrupted through a proxy.
    let proxy = FaultProxy::start(controller.addr(), FaultPlan::seeded(9).corrupt(1.0)).unwrap();
    let policy = RetryPolicy {
        max_attempts: 2,
        request_timeout: Duration::from_millis(100),
        ..Default::default()
    };
    let mut bad_client = proxied_client(&proxy, policy);
    let _ = bad_client.submit(&DemandRequest::new(50, "DC1", "DC3", 10.0, 0.5));

    // The controller is still alive and serving.
    let mut client = Client::connect(controller.addr()).unwrap();
    assert!(client
        .submit(&DemandRequest::new(1, "DC1", "DC3", 100.0, 0.9))
        .unwrap());
    assert_eq!(controller.admitted_count(), 1);
}

/// Truncation floods must fail fast with a typed error, not hang: the
/// pre-hardening read path blocked forever waiting for bytes that never
/// come.
#[test]
fn truncated_requests_fail_fast_not_hang() {
    let controller = start_controller();
    let proxy = FaultProxy::start(controller.addr(), FaultPlan::seeded(5).truncate(1.0)).unwrap();
    let plan = proxy.plan().clone();
    let mut client = proxied_client(&proxy, harness_policy(&plan));

    let start = Instant::now();
    let result = client.submit(&DemandRequest::new(1, "DC1", "DC3", 100.0, 0.9));
    assert!(result.is_err(), "every request truncated ⇒ must error");
    assert!(
        start.elapsed() < Duration::from_secs(5),
        "bounded retries must fail fast, took {:?}",
        start.elapsed()
    );
    // Controller unharmed.
    let mut direct = Client::connect(controller.addr()).unwrap();
    assert!(direct
        .submit(&DemandRequest::new(2, "DC1", "DC3", 100.0, 0.9))
        .unwrap());
}

/// A severed broker connection self-heals: the broker redials through its
/// dialer, re-registers, and the controller re-syncs every live
/// allocation — including ones from before the cut.
#[test]
fn broker_reconnects_and_reconverges_after_sever() {
    let controller = start_controller();
    let proxy = FaultProxy::start(controller.addr(), FaultPlan::seeded(77)).unwrap();

    let proxy_addr = proxy.addr();
    let broker = Broker::connect_via(
        Box::new(move || {
            let stream = TcpStream::connect(proxy_addr)?;
            stream.set_nodelay(true)?;
            Ok(Box::new(stream) as Box<dyn Transport>)
        }),
        "DC1",
        SystemClock::shared(),
    )
    .unwrap();
    assert!(controller.wait_for_brokers(1, Duration::from_secs(2)));

    let mut client = Client::connect(controller.addr()).unwrap();
    assert!(client
        .submit(&DemandRequest::new(1, "DC1", "DC3", 200.0, 0.9))
        .unwrap());
    assert!(broker.wait_for_demand(1, Duration::from_secs(2)));

    // Cut every proxied connection: the broker's controller link dies.
    proxy.sever_all();

    // The broker must reconnect (through the same dialer) by itself.
    let deadline = Instant::now() + Duration::from_secs(3);
    while broker.reconnect_count() == 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(broker.reconnect_count() >= 1, "broker never reconnected");

    // New installs flow again over the re-established link.
    assert!(client
        .submit(&DemandRequest::new(2, "DC1", "DC4", 100.0, 0.9))
        .unwrap());
    assert!(
        broker.wait_for_demand(2, Duration::from_secs(3)),
        "install after reconnect never arrived"
    );

    // Register-time re-sync: a broker joining late receives allocations
    // that predate it, with no new submit needed.
    let late = Broker::connect(controller.addr(), "DC2").unwrap();
    assert!(
        late.wait_for_demand(1, Duration::from_secs(2)),
        "late broker was not re-synced with pre-existing allocations"
    );
    assert!(late.wait_for_demand(2, Duration::from_secs(2)));
}
