//! The seeded fault-plan suite: the full control-plane pipeline under 20+
//! fault schedules, asserting the hardening invariants for every one —
//! no admitted demand silently dropped, no double-counted retries, and
//! bounded-time recovery convergence — plus trace determinism (same seed
//! ⇒ byte-identical JSONL) and trace replay from the header line.

use faultline::harness::{run_pipeline, standard_demands, standard_suite, trace_golden_path};
use faultline::trace::parse_plan_line;
use faultline::FaultPlan;
use std::sync::Mutex;

/// Pipeline runs are serialized across this binary's tests: the plans are
/// deterministic, but running 20+ controller/broker/client stacks
/// concurrently loads the host enough that request timeouts fire
/// spuriously, adding retries (and frames) that perturb the traces the
/// determinism tests pin.
static PIPELINE_LOCK: Mutex<()> = Mutex::new(());

fn serialized() -> std::sync::MutexGuard<'static, ()> {
    PIPELINE_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// The suite: 21 seeded plans from clean through compound chaos (shared
/// with the golden-trace pin below via the library).
fn suite() -> Vec<FaultPlan> {
    standard_suite()
}

/// Compare one plan's trace against its checked-in golden, or bless the
/// golden when `FAULTLINE_BLESS=1` (used once per controller-plane
/// generation to capture the reference traces).
fn check_golden(plan: &FaultPlan, trace: &str) {
    let path = trace_golden_path(plan);
    if std::env::var("FAULTLINE_BLESS").as_deref() == Ok("1") {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, trace).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {} ({e}); run with FAULTLINE_BLESS=1", path.display()));
    assert_eq!(
        trace,
        golden,
        "plan [{plan}]: trace diverged from the pinned threaded-plane golden \
         ({})",
        path.display()
    );
}

#[test]
fn invariants_hold_under_every_seeded_plan() {
    let _guard = serialized();
    let demands = standard_demands();
    let plans = suite();
    assert!(plans.len() >= 20, "suite must cover at least 20 plans");
    for plan in &plans {
        let report = run_pipeline(plan, &demands);
        check_golden(plan, &report.trace);
        assert!(
            report.violations.is_empty(),
            "plan [{plan}] violated invariants:\n  {}\ntrace:\n{}",
            report.violations.join("\n  "),
            report.trace
        );
        // The oversized demand (id 6) must never be admitted, faults or
        // not: admission correctness is not relaxed under failure.
        assert_ne!(
            report
                .outcomes
                .iter()
                .find(|o| o.id == 6)
                .and_then(|o| o.verdict),
            Some(true),
            "plan [{plan}]: oversized demand admitted"
        );
    }
}

/// The clean plan must admit everything admissible: with no faults the
/// harness is just the end-to-end pipeline, so any Err here is a harness
/// bug, not an acceptable outcome.
#[test]
fn clean_plan_admits_all_admissible_demands() {
    let _guard = serialized();
    let report = run_pipeline(&FaultPlan::seeded(100), &standard_demands());
    assert!(report.violations.is_empty(), "{:?}", report.violations);
    for outcome in &report.outcomes {
        let expected = outcome.id != 6;
        assert_eq!(
            outcome.observed.as_ref().ok(),
            Some(&expected),
            "demand {}: {:?}",
            outcome.id,
            outcome.observed
        );
    }
    assert_eq!(report.admitted_at_controller, 5);
    assert_eq!(report.recovery_converged, Some(true));
}

/// Slow-loris plans: dribbled frames are slowness, not loss — every frame
/// still arrives intact, one byte at a time, exercising the controller's
/// resumable frame assembly under real sockets. Invariants must hold and
/// admission correctness is not relaxed. (No golden pin: dribble-induced
/// latency can legitimately trip client retry timers, so the frame
/// sequence is not a pure function of the plan.)
#[test]
fn dribble_plans_preserve_invariants() {
    let _guard = serialized();
    let demands = standard_demands();
    for plan in [
        FaultPlan::seeded(400).dribble(0.25, 1),
        FaultPlan::seeded(401).dribble(0.4, 1).drop(0.1),
    ] {
        let report = run_pipeline(&plan, &demands);
        assert!(
            report.violations.is_empty(),
            "plan [{plan}] violated invariants:\n  {}\ntrace:\n{}",
            report.violations.join("\n  "),
            report.trace
        );
        assert_ne!(
            report
                .outcomes
                .iter()
                .find(|o| o.id == 6)
                .and_then(|o| o.verdict),
            Some(true),
            "plan [{plan}]: oversized demand admitted"
        );
        assert!(
            report.trace.contains("\"action\":\"dribble\""),
            "plan [{plan}]: no dribble was recorded"
        );
    }
}

/// Same seed ⇒ byte-identical trace, for representative plans across the
/// fault vocabulary. This is the determinism contract: a plan is a
/// schedule, not a dice roll, and thread interleaving must not leak into
/// the recorded bytes.
#[test]
fn same_seed_produces_byte_identical_traces() {
    let _guard = serialized();
    let demands = standard_demands();
    for plan in [
        FaultPlan::seeded(200).drop(0.2),
        FaultPlan::seeded(201).sever_after(3),
        FaultPlan::seeded(202).corrupt(0.15).duplicate(0.2),
    ] {
        let first = run_pipeline(&plan, &demands);
        let second = run_pipeline(&plan, &demands);
        assert_eq!(
            first.trace, second.trace,
            "plan [{plan}]: traces diverged between runs"
        );
        assert!(!first.trace.lines().nth(1).unwrap_or("").is_empty());
    }
}

/// A trace is replayable: its header line parses back to the exact plan,
/// and re-running that parsed plan reproduces the trace bytes.
#[test]
fn trace_header_replays_the_plan() {
    let _guard = serialized();
    let demands = standard_demands();
    let plan = FaultPlan::seeded(300).drop(0.1).sever_after(4);
    let report = run_pipeline(&plan, &demands);

    // Persist + reload, as an operator replaying a failure would.
    let dir = std::path::Path::new(env!("CARGO_TARGET_TMPDIR"));
    std::fs::create_dir_all(dir).unwrap();
    let path = dir.join("faultline-trace.jsonl");
    std::fs::write(&path, &report.trace).unwrap();
    let loaded = std::fs::read_to_string(&path).unwrap();

    let replay_plan = parse_plan_line(&loaded).expect("trace header must parse");
    assert_eq!(replay_plan, plan);
    let replay = run_pipeline(&replay_plan, &demands);
    assert_eq!(replay.trace, report.trace, "replay must reproduce the trace");
}
