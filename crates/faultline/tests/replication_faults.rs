//! Replication (Paxos master election) under injected network faults:
//! the single-decree safety property — at most one master is ever chosen,
//! and everyone who learns a value learns the same one — must survive
//! lossy links and partitions.

use bate_core::clock::SystemClock;
use bate_system::replication::{ElectError, Replica, ReplicaConfig};
use faultline::{FaultPlan, FaultProxy};
use parking_lot::Mutex;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration;

/// Short deadlines so lost frames cost milliseconds, not the defaults'
/// half-second.
fn fast_config() -> ReplicaConfig {
    ReplicaConfig {
        connect_timeout: Duration::from_millis(100),
        read_timeout: Duration::from_millis(100),
        retry_base: Duration::from_millis(2),
        retry_max: Duration::from_millis(20),
        max_attempts: 10,
        lease: Duration::from_secs(10),
    }
}

fn cluster(n: usize) -> (Vec<Replica>, Vec<SocketAddr>) {
    let replicas: Vec<Replica> = (0..n as u64)
        .map(|i| Replica::start_with(i, fast_config(), SystemClock::shared()).unwrap())
        .collect();
    let addrs: Vec<SocketAddr> = replicas.iter().map(|r| r.addr()).collect();
    (replicas, addrs)
}

/// Put a lossy proxy in front of every acceptor, one set per proposer
/// (each proposer experiences its own independent packet loss).
fn lossy_view(acceptors: &[SocketAddr], seed: u64, p: f64) -> (Vec<FaultProxy>, Vec<SocketAddr>) {
    let proxies: Vec<FaultProxy> = acceptors
        .iter()
        .enumerate()
        .map(|(i, &addr)| {
            FaultProxy::start(addr, FaultPlan::seeded(seed + i as u64).drop(p)).unwrap()
        })
        .collect();
    let addrs = proxies.iter().map(|p| p.addr()).collect();
    (proxies, addrs)
}

/// Master uniqueness under loss: two proposers campaign concurrently,
/// each through its own independently lossy view of the acceptors. Paxos
/// quorum intersection must still force a single agreed master, and every
/// acceptor that learned a value must have learned that master.
#[test]
fn master_uniqueness_under_lossy_concurrent_elections() {
    let (replicas, addrs) = cluster(5);
    let replicas = Arc::new(replicas);

    let (_proxies_a, view_a) = lossy_view(&addrs, 9000, 0.1);
    let (_proxies_b, view_b) = lossy_view(&addrs, 9100, 0.1);

    let results: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
    let mut handles = Vec::new();
    for (proposer, view) in [(0usize, view_a), (4usize, view_b)] {
        let replicas = Arc::clone(&replicas);
        let results = Arc::clone(&results);
        handles.push(std::thread::spawn(move || {
            if let Ok(v) = replicas[proposer].propose_master(&view, proposer as u64) {
                results.lock().push(v);
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }

    let results = results.lock();
    assert!(
        !results.is_empty(),
        "with only 10% loss at least one election must succeed"
    );
    let master = results[0];
    assert!(
        results.iter().all(|&v| v == master),
        "two masters elected: {results:?}"
    );
    // Acceptors that learned anything all learned the same master.
    for addr in &addrs {
        if let Some(learned) = Replica::query(*addr) {
            assert_eq!(learned, master, "acceptor diverged");
        }
    }
}

/// A minority partition cannot elect: a proposer that can only reach 2 of
/// 5 acceptors (the rest drop every frame) must fail with NoQuorum, not
/// declare itself master.
#[test]
fn minority_partition_cannot_elect_a_master() {
    let (replicas, addrs) = cluster(5);

    // Proxies for acceptors 2..5 drop everything; 0 and 1 are clean.
    let mut view = Vec::new();
    let mut proxies = Vec::new();
    for (i, &addr) in addrs.iter().enumerate() {
        if i < 2 {
            view.push(addr);
        } else {
            let proxy =
                FaultProxy::start(addr, FaultPlan::seeded(50 + i as u64).drop(1.0)).unwrap();
            view.push(proxy.addr());
            proxies.push(proxy);
        }
    }

    assert_eq!(
        replicas[0].propose_master(&view, 0),
        Err(ElectError::NoQuorum),
        "2 of 5 reachable must not produce a master"
    );
    // Nothing was chosen anywhere.
    for addr in &addrs {
        assert_eq!(Replica::query(*addr), None);
    }
}

/// Partition heals: the same proposer that failed against a minority view
/// succeeds once the partition lifts (fresh clean proxies), and the late
/// second proposer adopts the already-chosen master rather than electing
/// itself.
#[test]
fn healed_partition_elects_exactly_one_master() {
    let (replicas, addrs) = cluster(3);

    // During the partition: all acceptors unreachable through dead drops.
    let (_dead, dead_view) = {
        let proxies: Vec<FaultProxy> = addrs
            .iter()
            .map(|&a| FaultProxy::start(a, FaultPlan::seeded(1).drop(1.0)).unwrap())
            .collect();
        let view: Vec<SocketAddr> = proxies.iter().map(|p| p.addr()).collect();
        (proxies, view)
    };
    assert!(replicas[0].propose_master(&dead_view, 0).is_err());

    // Partition lifts: direct addresses, election succeeds.
    let master = replicas[0].propose_master(&addrs, 0).unwrap();
    assert_eq!(master, 0);
    // A later campaigner through a (mildly lossy) proxy view adopts it.
    let (_proxies, lossy) = lossy_view(&addrs, 700, 0.05);
    let second = replicas[2].propose_master(&lossy, 2).unwrap();
    assert_eq!(second, 0, "already-chosen master must stick");
}
