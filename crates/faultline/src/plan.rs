//! The fault-plan DSL: a seed plus an ordered list of rules, deciding per
//! frame what the proxy does to it.
//!
//! Decisions are a pure function of `(plan.seed, conn, dir, seq)` — no
//! global RNG state, no wall clock — so the same plan over the same
//! traffic produces the same decision sequence regardless of thread
//! interleaving. That is what makes traces byte-identical across runs.
//!
//! ```
//! use faultline::plan::FaultPlan;
//! let plan = FaultPlan::seeded(42).drop(0.1).sever_after(3);
//! assert_eq!(plan.to_string(), "seed=42: drop(0.1) + sever_after(3)");
//! assert_eq!(FaultPlan::parse(&plan.to_string()).unwrap(), plan);
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;

/// Traffic direction through the proxy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Direction {
    /// Downstream (client/broker) → upstream (controller/acceptor).
    C2S,
    /// Upstream → downstream.
    S2C,
}

impl Direction {
    pub fn label(self) -> &'static str {
        match self {
            Direction::C2S => "c2s",
            Direction::S2C => "s2c",
        }
    }
}

/// What the proxy does with one observed frame.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Action {
    /// Pass through unchanged.
    Forward,
    /// Swallow the frame; the connection stays up.
    Drop,
    /// Forward after sleeping (head-of-line: later frames wait too).
    Delay { ms: u64 },
    /// Forward the frame twice.
    Duplicate,
    /// Write the header and half the payload, then sever the connection
    /// (a mid-frame cut: the receiver sees EOF inside the payload).
    Truncate,
    /// Flip one payload byte but keep the original CRC, so the receiver's
    /// CRC check fires.
    Corrupt,
    /// Sever the connection without forwarding.
    Sever,
    /// Forward the frame one byte at a time, sleeping `ms` between bytes
    /// (a slow-loris peer: each byte is progress, so only an unrefreshed
    /// frame-assembly deadline catches it). Head-of-line: later frames on
    /// the connection wait behind the dribble.
    Dribble { ms: u64 },
}

impl Action {
    pub fn label(self) -> &'static str {
        match self {
            Action::Forward => "forward",
            Action::Drop => "drop",
            Action::Delay { .. } => "delay",
            Action::Duplicate => "duplicate",
            Action::Truncate => "truncate",
            Action::Corrupt => "corrupt",
            Action::Sever => "sever",
            Action::Dribble { .. } => "dribble",
        }
    }
}

/// One rule. Rules are evaluated in order; the first that fires decides
/// the frame's fate. Each probabilistic rule draws exactly one value from
/// the per-frame RNG whether or not it fires, so adding a rule never
/// perturbs the draws of rules before it.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultRule {
    Drop { p: f64 },
    Delay { p: f64, ms: u64 },
    Duplicate { p: f64 },
    Truncate { p: f64 },
    Corrupt { p: f64 },
    /// Byte-dribble the frame (`ms` per byte) with probability `p`.
    Dribble { p: f64, ms: u64 },
    /// Sever the connection at the `msgs`-th frame of each direction.
    SeverAfter { msgs: u64 },
    /// Deterministically drop the first `n` frames in one direction
    /// (`None` = both) **of the first connection only**. The precision
    /// tool for regression tests — "exactly the first AdmissionReply is
    /// lost" — scoped to conn 0 so a reconnecting peer's retry is not
    /// swallowed again on the fresh connection.
    DropFirst { dir: Option<Direction>, n: u64 },
}

impl fmt::Display for FaultRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultRule::Drop { p } => write!(f, "drop({p})"),
            FaultRule::Delay { p, ms } => write!(f, "delay({p},{ms}ms)"),
            FaultRule::Duplicate { p } => write!(f, "duplicate({p})"),
            FaultRule::Truncate { p } => write!(f, "truncate({p})"),
            FaultRule::Corrupt { p } => write!(f, "corrupt({p})"),
            FaultRule::Dribble { p, ms } => write!(f, "dribble({p},{ms}ms)"),
            FaultRule::SeverAfter { msgs } => write!(f, "sever_after({msgs})"),
            FaultRule::DropFirst { dir: None, n } => write!(f, "drop_first({n})"),
            FaultRule::DropFirst { dir: Some(d), n } => {
                write!(f, "drop_first_{}({n})", d.label())
            }
        }
    }
}

/// A seeded fault schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    pub seed: u64,
    pub rules: Vec<FaultRule>,
}

impl FaultPlan {
    /// An empty (all-forward) plan under `seed`.
    pub fn seeded(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            rules: Vec::new(),
        }
    }

    fn with(mut self, rule: FaultRule) -> FaultPlan {
        self.rules.push(rule);
        self
    }

    /// Drop each frame with probability `p`.
    #[allow(clippy::should_implement_trait)]
    pub fn drop(self, p: f64) -> FaultPlan {
        self.with(FaultRule::Drop { p })
    }

    /// Delay each frame `ms` milliseconds with probability `p`.
    pub fn delay(self, p: f64, ms: u64) -> FaultPlan {
        self.with(FaultRule::Delay { p, ms })
    }

    /// Forward each frame twice with probability `p`.
    pub fn duplicate(self, p: f64) -> FaultPlan {
        self.with(FaultRule::Duplicate { p })
    }

    /// Cut each frame in half (and the connection with it) with
    /// probability `p`.
    pub fn truncate(self, p: f64) -> FaultPlan {
        self.with(FaultRule::Truncate { p })
    }

    /// Flip a payload byte (CRC kept stale) with probability `p`.
    pub fn corrupt(self, p: f64) -> FaultPlan {
        self.with(FaultRule::Corrupt { p })
    }

    /// Forward each frame one byte at a time (`ms` per byte) with
    /// probability `p` — the slow-loris fault.
    pub fn dribble(self, p: f64, ms: u64) -> FaultPlan {
        self.with(FaultRule::Dribble { p, ms })
    }

    /// Sever every connection at its `msgs`-th frame per direction.
    pub fn sever_after(self, msgs: u64) -> FaultPlan {
        self.with(FaultRule::SeverAfter { msgs })
    }

    /// Deterministically drop the first `n` frames in `dir` (both
    /// directions if `None`).
    pub fn drop_first(self, dir: Option<Direction>, n: u64) -> FaultPlan {
        self.with(FaultRule::DropFirst { dir, n })
    }

    /// The fate of frame number `seq` (0-based, per connection and
    /// direction). Pure in `(seed, conn, dir, seq)`.
    pub fn decide(&self, conn: u64, dir: Direction, seq: u64) -> Action {
        let mix = splitmix(
            self.seed
                ^ conn.wrapping_mul(0x9E37_79B9_7F4A_7C15)
                ^ ((dir as u64) << 62)
                ^ seq.wrapping_mul(0xC2B2_AE3D_27D4_EB4F),
        );
        let mut rng = StdRng::seed_from_u64(mix);
        for rule in &self.rules {
            match *rule {
                FaultRule::Drop { p } => {
                    if rng.gen_bool(p) {
                        return Action::Drop;
                    }
                }
                FaultRule::Delay { p, ms } => {
                    if rng.gen_bool(p) {
                        return Action::Delay { ms };
                    }
                }
                FaultRule::Duplicate { p } => {
                    if rng.gen_bool(p) {
                        return Action::Duplicate;
                    }
                }
                FaultRule::Truncate { p } => {
                    if rng.gen_bool(p) {
                        return Action::Truncate;
                    }
                }
                FaultRule::Corrupt { p } => {
                    if rng.gen_bool(p) {
                        return Action::Corrupt;
                    }
                }
                FaultRule::Dribble { p, ms } => {
                    if rng.gen_bool(p) {
                        return Action::Dribble { ms };
                    }
                }
                FaultRule::SeverAfter { msgs } => {
                    if seq >= msgs {
                        return Action::Sever;
                    }
                }
                FaultRule::DropFirst { dir: d, n } => {
                    if conn == 0 && (d.is_none() || d == Some(dir)) && seq < n {
                        return Action::Drop;
                    }
                }
            }
        }
        Action::Forward
    }

    /// Parse the [`fmt::Display`] form back:
    /// `seed=42: drop(0.1) + sever_after(3)`.
    pub fn parse(s: &str) -> Result<FaultPlan, String> {
        let s = s.trim();
        let rest = s
            .strip_prefix("seed=")
            .ok_or_else(|| format!("expected 'seed=N: ...', got {s:?}"))?;
        let (seed_str, rules_str) = match rest.split_once(':') {
            Some((a, b)) => (a.trim(), b.trim()),
            None => (rest.trim(), ""),
        };
        let seed: u64 = seed_str
            .parse()
            .map_err(|e| format!("bad seed {seed_str:?}: {e}"))?;
        let mut plan = FaultPlan::seeded(seed);
        if rules_str.is_empty() {
            return Ok(plan);
        }
        for part in rules_str.split('+') {
            let part = part.trim();
            let (name, args) = part
                .split_once('(')
                .and_then(|(n, a)| a.strip_suffix(')').map(|a| (n, a)))
                .ok_or_else(|| format!("bad rule syntax {part:?}"))?;
            let args: Vec<&str> = args.split(',').map(str::trim).collect();
            let p = |i: usize| -> Result<f64, String> {
                args.get(i)
                    .ok_or_else(|| format!("{name}: missing arg {i}"))?
                    .parse()
                    .map_err(|e| format!("{name}: bad float: {e}"))
            };
            let n = |i: usize| -> Result<u64, String> {
                args.get(i)
                    .ok_or_else(|| format!("{name}: missing arg {i}"))?
                    .trim_end_matches("ms")
                    .trim_end_matches(" msgs")
                    .parse()
                    .map_err(|e| format!("{name}: bad int: {e}"))
            };
            plan = match name {
                "drop" => plan.drop(p(0)?),
                "delay" => plan.delay(p(0)?, n(1)?),
                "duplicate" => plan.duplicate(p(0)?),
                "truncate" => plan.truncate(p(0)?),
                "corrupt" => plan.corrupt(p(0)?),
                "dribble" => plan.dribble(p(0)?, n(1)?),
                "sever_after" => plan.sever_after(n(0)?),
                "drop_first" => plan.drop_first(None, n(0)?),
                "drop_first_c2s" => plan.drop_first(Some(Direction::C2S), n(0)?),
                "drop_first_s2c" => plan.drop_first(Some(Direction::S2C), n(0)?),
                other => return Err(format!("unknown rule {other:?}")),
            };
        }
        Ok(plan)
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "seed={}", self.seed)?;
        if self.rules.is_empty() {
            return Ok(());
        }
        write!(f, ": ")?;
        for (i, rule) in self.rules.iter().enumerate() {
            if i > 0 {
                write!(f, " + ")?;
            }
            write!(f, "{rule}")?;
        }
        Ok(())
    }
}

/// SplitMix64 finalizer: a strong bit mix for combining seed components.
fn splitmix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_pure_functions_of_coordinates() {
        let plan = FaultPlan::seeded(7).drop(0.3).delay(0.3, 10).corrupt(0.1);
        for conn in 0..4 {
            for dir in [Direction::C2S, Direction::S2C] {
                for seq in 0..64 {
                    assert_eq!(
                        plan.decide(conn, dir, seq),
                        plan.decide(conn, dir, seq),
                        "decision must be reproducible"
                    );
                }
            }
        }
    }

    #[test]
    fn different_seeds_give_different_schedules() {
        let a = FaultPlan::seeded(1).drop(0.5);
        let b = FaultPlan::seeded(2).drop(0.5);
        let da: Vec<Action> = (0..64).map(|s| a.decide(0, Direction::C2S, s)).collect();
        let db: Vec<Action> = (0..64).map(|s| b.decide(0, Direction::C2S, s)).collect();
        assert_ne!(da, db);
    }

    #[test]
    fn sever_after_fires_exactly_at_the_threshold() {
        let plan = FaultPlan::seeded(0).sever_after(3);
        for seq in 0..3 {
            assert_eq!(plan.decide(0, Direction::C2S, seq), Action::Forward);
        }
        assert_eq!(plan.decide(0, Direction::C2S, 3), Action::Sever);
        assert_eq!(plan.decide(5, Direction::S2C, 9), Action::Sever);
    }

    #[test]
    fn drop_first_is_directional_and_first_connection_only() {
        let plan = FaultPlan::seeded(0).drop_first(Some(Direction::S2C), 2);
        assert_eq!(plan.decide(0, Direction::S2C, 0), Action::Drop);
        assert_eq!(plan.decide(0, Direction::S2C, 1), Action::Drop);
        assert_eq!(plan.decide(0, Direction::S2C, 2), Action::Forward);
        assert_eq!(plan.decide(0, Direction::C2S, 0), Action::Forward);
        // A reconnecting peer's retry (conn 1) is not swallowed again.
        assert_eq!(plan.decide(1, Direction::S2C, 0), Action::Forward);
    }

    #[test]
    fn display_parse_roundtrip() {
        let plans = [
            FaultPlan::seeded(42),
            FaultPlan::seeded(42).drop(0.1).sever_after(3),
            FaultPlan::seeded(7).delay(0.25, 15).duplicate(0.5).corrupt(0.05),
            FaultPlan::seeded(9).truncate(0.2).drop_first(Some(Direction::S2C), 1),
            FaultPlan::seeded(11).drop_first(None, 2),
            FaultPlan::seeded(13).dribble(0.5, 2).sever_after(9),
        ];
        for plan in plans {
            let s = plan.to_string();
            assert_eq!(FaultPlan::parse(&s).unwrap(), plan, "via {s:?}");
        }
    }

    #[test]
    fn probabilities_roughly_respected() {
        let plan = FaultPlan::seeded(3).drop(0.25);
        let drops = (0..4000)
            .filter(|&s| plan.decide(0, Direction::C2S, s) == Action::Drop)
            .count();
        let frac = drops as f64 / 4000.0;
        assert!((frac - 0.25).abs() < 0.04, "drop fraction {frac}");
    }
}
