//! Replayable JSONL traces of proxy decisions.
//!
//! Records are keyed `(conn, dir, seq)` — coordinates that are
//! deterministic for a given plan and workload — and the serialized trace
//! is sorted by that key, so pump-thread interleaving cannot change the
//! output bytes. The first line carries the plan in its parseable DSL
//! form; [`parse_plan_line`] recovers it for replay.

use crate::plan::{Action, Direction, FaultPlan};
use parking_lot::Mutex;

/// One decision the proxy took.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRecord {
    pub conn: u64,
    pub dir: Direction,
    pub seq: u64,
    /// The action's DSL label (`forward`, `drop`, …).
    pub action: String,
    /// Payload length of the observed frame.
    pub len: usize,
    /// Trace id of the perturbed frame, when it carried a wire context
    /// and the action was a fault (not a clean forward) — links an
    /// injected fault to the end-to-end causal trace it landed on.
    pub trace: Option<u64>,
}

impl TraceRecord {
    fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"conn\":{},\"dir\":\"{}\",\"seq\":{},\"action\":\"{}\",\"len\":{}",
            self.conn,
            self.dir.label(),
            self.seq,
            self.action,
            self.len
        );
        // Emitted only when present so legacy (context-free) traces stay
        // byte-identical to the pre-tracing goldens.
        if let Some(t) = self.trace {
            out.push_str(&format!(",\"trace\":\"{t:016x}\""));
        }
        out.push('}');
        out
    }
}

/// Thread-safe decision log shared by all pump threads of one proxy.
pub struct Trace {
    records: Mutex<Vec<TraceRecord>>,
}

impl Trace {
    pub fn new() -> Trace {
        Trace {
            records: Mutex::new(Vec::new()),
        }
    }

    pub fn record(
        &self,
        conn: u64,
        dir: Direction,
        seq: u64,
        action: Action,
        len: usize,
        trace: Option<u64>,
    ) {
        self.records.lock().push(TraceRecord {
            conn,
            dir,
            seq,
            action: action.label().to_string(),
            len,
            trace,
        });
    }

    /// All records, sorted by `(conn, dir, seq)` (the deterministic order).
    pub fn sorted(&self) -> Vec<TraceRecord> {
        let mut records = self.records.lock().clone();
        records.sort_by_key(|r| (r.conn, r.dir, r.seq));
        records
    }

    /// The full JSONL document: a plan header line, then one record per
    /// line in `(conn, dir, seq)` order. Byte-identical across runs of the
    /// same plan over the same workload.
    pub fn to_jsonl(&self, plan: &FaultPlan) -> String {
        let mut out = format!("{{\"plan\":\"{plan}\"}}\n");
        for record in self.sorted() {
            out.push_str(&record.to_json());
            out.push('\n');
        }
        out
    }
}

impl Default for Trace {
    fn default() -> Self {
        Trace::new()
    }
}

/// Recover the plan from a trace's header line (the first line of
/// [`Trace::to_jsonl`] output), for replay.
pub fn parse_plan_line(jsonl: &str) -> Result<FaultPlan, String> {
    let first = jsonl.lines().next().ok_or("empty trace")?;
    let plan_str = first
        .strip_prefix("{\"plan\":\"")
        .and_then(|s| s.strip_suffix("\"}"))
        .ok_or_else(|| format!("bad trace header {first:?}"))?;
    FaultPlan::parse(plan_str)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jsonl_is_sorted_and_replayable() {
        let plan = FaultPlan::seeded(42).drop(0.1).sever_after(3);
        let trace = Trace::new();
        // Record out of order, as racing pump threads would.
        trace.record(1, Direction::S2C, 0, Action::Forward, 10, None);
        trace.record(0, Direction::C2S, 1, Action::Drop, 20, Some(0xAB));
        trace.record(0, Direction::C2S, 0, Action::Forward, 20, None);
        let jsonl = trace.to_jsonl(&plan);
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[1].contains("\"conn\":0") && lines[1].contains("\"seq\":0"));
        assert!(lines[2].contains("\"seq\":1") && lines[2].contains("\"action\":\"drop\""));
        // Faulted frames that carried a wire context name their trace;
        // context-free records omit the field entirely.
        assert!(lines[2].contains("\"trace\":\"00000000000000ab\""));
        assert!(!lines[1].contains("\"trace\""));
        assert!(lines[3].contains("\"conn\":1"));
        // The header recovers the plan for replay.
        assert_eq!(parse_plan_line(&jsonl).unwrap(), plan);
    }
}
