//! # faultline — deterministic fault injection for the BATE control plane
//!
//! The control plane (`bate-system`) speaks length-prefixed, CRC-protected
//! frames over TCP between clients, the controller, per-DC brokers, and
//! Paxos replicas. This crate injects faults *between* those endpoints and
//! checks that the hardening holds:
//!
//! * [`plan`] — the `FaultPlan` DSL: `FaultPlan::seeded(42).drop(0.1)
//!   .sever_after(3)`. Per-frame decisions are a pure function of
//!   `(seed, conn, dir, seq)`, so a plan is a *schedule*, not a dice roll.
//! * [`proxy`] — a frame-aware TCP man-in-the-middle applying the plan:
//!   drop, delay, duplicate, truncate mid-frame, corrupt (stale CRC), or
//!   sever. Endpoints dial the proxy instead of each other — no code in
//!   `bate-system` knows it is being faulted.
//! * [`trace`] — every decision recorded as JSONL, sorted by
//!   `(conn, dir, seq)`: the same seed yields a byte-identical trace, and
//!   the header line replays the plan.
//! * [`harness`] — the end-to-end pipeline (submit → admit → push →
//!   enforce → fail → recover) under a plan, with invariant checking: no
//!   admitted demand silently dropped, no double-counted retries, and
//!   bounded-time recovery convergence.
//!
//! Run the seeded suite with `cargo test -p faultline`.

pub mod harness;
pub mod plan;
pub mod proxy;
pub mod trace;

pub use harness::{run_pipeline, standard_demands, standard_suite, trace_golden_path, PipelineReport};
pub use plan::{Action, Direction, FaultPlan, FaultRule};
pub use proxy::FaultProxy;
pub use trace::{parse_plan_line, Trace, TraceRecord};
