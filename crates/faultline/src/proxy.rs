//! The in-process fault proxy: a frame-aware TCP man-in-the-middle.
//!
//! Sits between a control-plane endpoint and its peers, parses the wire
//! framing (so faults land on *message* boundaries, not arbitrary byte
//! offsets), and applies the plan's per-frame decision: forward, drop,
//! delay, duplicate, truncate mid-frame, corrupt (payload flipped, CRC
//! left stale), or sever. Every decision is recorded to the shared
//! [`Trace`].
//!
//! Connection ids are assigned in accept order; with the harness's
//! sequential dialing this makes `(conn, dir, seq)` coordinates — and
//! therefore traces — deterministic.

use crate::plan::{Action, Direction, FaultPlan};
use crate::trace::{Trace, TraceRecord};
use bate_system::wire::{encode_raw_frame, frame_crc, read_raw_frame, FrameCtx};
use parking_lot::Mutex;
use std::io::{self, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// A running fault proxy. All live proxied connections are severed when
/// it is dropped.
pub struct FaultProxy {
    addr: SocketAddr,
    plan: FaultPlan,
    trace: Arc<Trace>,
    conns: Arc<Mutex<Vec<TcpStream>>>,
    conn_counter: Arc<AtomicU64>,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl FaultProxy {
    /// Listen on an ephemeral localhost port, forwarding every accepted
    /// connection to `upstream` under `plan`.
    pub fn start(upstream: SocketAddr, plan: FaultPlan) -> io::Result<FaultProxy> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;

        let trace = Arc::new(Trace::new());
        let conns: Arc<Mutex<Vec<TcpStream>>> = Arc::new(Mutex::new(Vec::new()));
        let conn_counter = Arc::new(AtomicU64::new(0));
        let shutdown = Arc::new(AtomicBool::new(false));

        let t = Arc::clone(&trace);
        let c = Arc::clone(&conns);
        let counter = Arc::clone(&conn_counter);
        let sd = Arc::clone(&shutdown);
        let accept_plan = plan.clone();
        let accept_thread = std::thread::spawn(move || {
            while !sd.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((down, _)) => {
                        down.set_nodelay(true).ok();
                        let conn = counter.fetch_add(1, Ordering::Relaxed);
                        let Ok(up) = TcpStream::connect(upstream) else {
                            down.shutdown(Shutdown::Both).ok();
                            continue;
                        };
                        up.set_nodelay(true).ok();
                        {
                            let mut reg = c.lock();
                            if let (Ok(d), Ok(u)) = (down.try_clone(), up.try_clone()) {
                                reg.push(d);
                                reg.push(u);
                            }
                        }
                        spawn_pumps(conn, down, up, accept_plan.clone(), Arc::clone(&t));
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(2));
                    }
                    Err(_) => break,
                }
            }
        });

        Ok(FaultProxy {
            addr,
            plan,
            trace,
            conns,
            conn_counter,
            shutdown,
            accept_thread: Some(accept_thread),
        })
    }

    /// The address peers dial instead of the real endpoint.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The plan in effect.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// How many connections have been accepted so far.
    pub fn connections(&self) -> u64 {
        self.conn_counter.load(Ordering::Relaxed)
    }

    /// All recorded decisions, in deterministic `(conn, dir, seq)` order.
    pub fn records(&self) -> Vec<TraceRecord> {
        self.trace.sorted()
    }

    /// The replayable JSONL trace (header line = the plan's DSL form).
    pub fn trace_jsonl(&self) -> String {
        self.trace.to_jsonl(&self.plan)
    }

    /// Sever every live proxied connection now (a manual full partition).
    /// New connections are still accepted — this models a transient cut,
    /// not proxy shutdown.
    pub fn sever_all(&self) {
        let mut conns = self.conns.lock();
        for stream in conns.drain(..) {
            stream.shutdown(Shutdown::Both).ok();
        }
    }
}

impl Drop for FaultProxy {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        self.sever_all();
        if let Some(t) = self.accept_thread.take() {
            t.join().ok();
        }
    }
}

fn spawn_pumps(conn: u64, down: TcpStream, up: TcpStream, plan: FaultPlan, trace: Arc<Trace>) {
    let (Ok(down_r), Ok(up_r)) = (down.try_clone(), up.try_clone()) else {
        return;
    };
    let plan2 = plan.clone();
    let trace2 = Arc::clone(&trace);
    std::thread::spawn(move || pump(conn, Direction::C2S, down_r, up, plan, trace));
    std::thread::spawn(move || pump(conn, Direction::S2C, up_r, down, plan2, trace2));
}

/// Forward frames from `src` to `dst`, applying the plan per frame. Runs
/// until the source closes or a plan-decided fault severs the connection.
///
/// Half-close semantics keep traces deterministic: when the source closes
/// (or the destination dies mid-write), this pump does NOT kill the
/// opposite direction's sockets — it propagates EOF by shutting down only
/// its own destination's write half, and keeps *reading* (and recording)
/// until the source itself closes. Each direction's record set is then
/// exactly "every frame the source wrote before closing", independent of
/// how the teardown of the two directions interleaves. Only plan-decided
/// `Sever`/`Truncate` (an injected abrupt cut) take down both sockets.
fn pump(
    conn: u64,
    dir: Direction,
    mut src: TcpStream,
    mut dst: TcpStream,
    plan: FaultPlan,
    trace: Arc<Trace>,
) {
    let mut seq = 0u64;
    let mut dst_alive = true;
    let sever = |src: &TcpStream, dst: &TcpStream| {
        src.shutdown(Shutdown::Both).ok();
        dst.shutdown(Shutdown::Both).ok();
    };
    loop {
        let (ctx, payload) = match read_raw_frame(&mut src) {
            Ok(f) => f,
            // Source closed (cleanly or not): propagate EOF downstream and
            // stop. The sibling pump keeps draining its own source.
            Err(_) => {
                dst.shutdown(Shutdown::Write).ok();
                return;
            }
        };
        let action = plan.decide(conn, dir, seq);
        // Injected faults are stamped with the perturbed frame's trace id
        // (clean forwards are not, keeping legacy traces byte-stable).
        let fault_trace = (action != Action::Forward)
            .then(|| ctx.map(|c| c.trace_id))
            .flatten();
        trace.record(conn, dir, seq, action, payload.len(), fault_trace);
        seq += 1;

        let result = match action {
            Action::Forward if dst_alive => forward_frame(&mut dst, ctx, &payload),
            Action::Drop => Ok(()),
            Action::Delay { ms } => {
                std::thread::sleep(Duration::from_millis(ms));
                if dst_alive {
                    forward_frame(&mut dst, ctx, &payload)
                } else {
                    Ok(())
                }
            }
            Action::Duplicate if dst_alive => forward_frame(&mut dst, ctx, &payload)
                .and_then(|()| forward_frame(&mut dst, ctx, &payload)),
            Action::Truncate => {
                // Full-length header (+ any context), half the payload,
                // then a hard cut: the receiver hits EOF inside the
                // payload.
                if dst_alive {
                    let frame = encode_raw_frame(ctx, &payload, frame_crc(ctx, &payload));
                    let cut = frame.len() - payload.len() + payload.len() / 2;
                    let _ = dst.write_all(&frame[..cut]).and_then(|()| dst.flush());
                }
                sever(&src, &dst);
                return;
            }
            Action::Corrupt if dst_alive => {
                // Damage the payload but keep the stale CRC, so this is
                // detected by the receiver's CRC check, not by parsing.
                let stale_crc = frame_crc(ctx, &payload);
                let mut bad = payload.to_vec();
                if bad.is_empty() {
                    // Nothing to flip: corrupt the CRC itself instead.
                    write_raw(&mut dst, encode_raw_frame(ctx, &bad, stale_crc ^ 1))
                } else {
                    let mid = bad.len() / 2;
                    bad[mid] ^= 0xFF;
                    write_raw(&mut dst, encode_raw_frame(ctx, &bad, stale_crc))
                }
            }
            Action::Dribble { ms } if dst_alive => {
                // Slow-loris the frame: one byte per `ms`, each flushed, so
                // the receiver sees steady single-byte progress mid-frame.
                // The frame does arrive intact — a dribble is slowness, not
                // damage — which exercises resumable frame assembly (and,
                // on the event plane, the unrefreshed assembly deadline).
                let frame = encode_raw_frame(ctx, &payload, frame_crc(ctx, &payload));
                frame
                    .iter()
                    .try_for_each(|b| {
                        dst.write_all(std::slice::from_ref(b))?;
                        dst.flush()?;
                        std::thread::sleep(Duration::from_millis(ms));
                        Ok(())
                    })
            }
            Action::Sever => {
                sever(&src, &dst);
                return;
            }
            // dst already dead: decisions are still made and recorded so
            // the trace stays a pure function of what the source sent.
            _ => Ok(()),
        };
        if result.is_err() {
            // The destination died (peer closed/reset). Keep draining and
            // recording the source; just stop forwarding.
            dst.shutdown(Shutdown::Write).ok();
            dst_alive = false;
        }
    }
}

/// Re-frame and forward one observed frame, preserving its trace context
/// so causality survives the proxy hop.
fn forward_frame(dst: &mut TcpStream, ctx: Option<FrameCtx>, payload: &[u8]) -> io::Result<()> {
    write_raw(dst, encode_raw_frame(ctx, payload, frame_crc(ctx, payload)))
}

fn write_raw(dst: &mut TcpStream, frame: Vec<u8>) -> io::Result<()> {
    dst.write_all(&frame)?;
    dst.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bate_system::wire::{read_frame, write_frame, WireError};

    /// An echo server speaking the frame protocol (u64 payloads).
    fn echo_server() -> (SocketAddr, JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = std::thread::spawn(move || {
            // Serve a handful of connections then exit.
            for _ in 0..8 {
                let Ok((mut conn, _)) = listener.accept() else {
                    return;
                };
                std::thread::spawn(move || loop {
                    match read_frame::<u64, _>(&mut conn) {
                        Ok(v) => {
                            if write_frame(&mut conn, &v).is_err() {
                                return;
                            }
                        }
                        Err(_) => return,
                    }
                });
            }
        });
        (addr, handle)
    }

    #[test]
    fn clean_plan_forwards_transparently() {
        let (addr, _server) = echo_server();
        let proxy = FaultProxy::start(addr, FaultPlan::seeded(1)).unwrap();
        let mut stream = TcpStream::connect(proxy.addr()).unwrap();
        for v in [1u64, 2, 3] {
            write_frame(&mut stream, &v).unwrap();
            assert_eq!(read_frame::<u64, _>(&mut stream).unwrap(), v);
        }
        let records = proxy.records();
        // 3 frames each way, all forwarded.
        assert_eq!(records.len(), 6);
        assert!(records.iter().all(|r| r.action == "forward"));
    }

    #[test]
    fn ctx_frames_survive_the_proxy_and_faults_stamp_the_trace_id() {
        use bate_system::wire::{read_frame_ctx, write_frame_ctx};
        let (addr, _server) = echo_server();
        let proxy = FaultProxy::start(addr, FaultPlan::seeded(1)).unwrap();
        let mut stream = TcpStream::connect(proxy.addr()).unwrap();
        let ctx = FrameCtx {
            trace_id: 0x1234,
            span_id: 0x5678,
        };
        write_frame_ctx(&mut stream, &9u64, Some(ctx)).unwrap();
        // The echo server reads via read_frame (ctx discarded) and replies
        // context-free; the *request* hop is what must keep the context, so
        // check it via the proxy's own re-framing on a loopback echo that
        // preserves nothing — instead assert the reply decodes (CRC held)
        // and that a faulted traced frame is stamped in the record.
        assert_eq!(read_frame::<u64, _>(&mut stream).unwrap(), 9);
        drop(stream);

        // Everything dropped: the c2s record must carry the trace id.
        let proxy2 = FaultProxy::start(addr, FaultPlan::seeded(1).drop(1.0)).unwrap();
        let mut stream = TcpStream::connect(proxy2.addr()).unwrap();
        write_frame_ctx(&mut stream, &9u64, Some(ctx)).unwrap();
        std::thread::sleep(Duration::from_millis(50));
        let records = proxy2.records();
        assert!(!records.is_empty());
        assert_eq!(records[0].action, "drop");
        assert_eq!(records[0].trace, Some(0x1234));

        // A direct pipe: proxy in front of a frame-level tee that echoes
        // raw frames back verbatim is overkill here — instead verify the
        // forwarded bytes parse as a ctx frame by dialing the proxy with a
        // second proxy-free listener.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let sink_addr = listener.local_addr().unwrap();
        let sink = std::thread::spawn(move || {
            let (mut conn, _) = listener.accept().unwrap();
            read_frame_ctx::<u64, _>(&mut conn).unwrap()
        });
        let proxy3 = FaultProxy::start(sink_addr, FaultPlan::seeded(1)).unwrap();
        let mut stream = TcpStream::connect(proxy3.addr()).unwrap();
        write_frame_ctx(&mut stream, &11u64, Some(ctx)).unwrap();
        let (rctx, v) = sink.join().unwrap();
        assert_eq!(v, 11);
        assert_eq!(rctx, Some(ctx), "proxy re-framing must keep the context");
    }

    #[test]
    fn corrupt_frames_fail_the_receiver_crc_check() {
        let (addr, _server) = echo_server();
        let plan = FaultPlan::seeded(1).corrupt(1.0);
        let proxy = FaultProxy::start(addr, plan).unwrap();
        let mut stream = TcpStream::connect(proxy.addr()).unwrap();
        write_frame(&mut stream, &7u64).unwrap();
        // The c2s frame was corrupted; the echo server kills the
        // connection, so we see Closed/Malformed — never a wrong value.
        match read_frame::<u64, _>(&mut stream) {
            Ok(v) => panic!("corrupt frame decoded to {v}"),
            Err(WireError::Corrupt { .. } | WireError::Closed | WireError::Malformed(_)) => {}
            Err(e) => panic!("unexpected error {e}"),
        }
    }

    #[test]
    fn sever_after_cuts_the_connection() {
        let (addr, _server) = echo_server();
        let plan = FaultPlan::seeded(1).sever_after(2);
        let proxy = FaultProxy::start(addr, plan).unwrap();
        let mut stream = TcpStream::connect(proxy.addr()).unwrap();
        for v in [10u64, 20] {
            write_frame(&mut stream, &v).unwrap();
            assert_eq!(read_frame::<u64, _>(&mut stream).unwrap(), v);
        }
        // Third frame hits the sever threshold.
        write_frame(&mut stream, &30u64).ok();
        assert!(read_frame::<u64, _>(&mut stream).is_err());
        // A fresh connection works again (seq resets per connection).
        let mut stream2 = TcpStream::connect(proxy.addr()).unwrap();
        write_frame(&mut stream2, &40u64).unwrap();
        assert_eq!(read_frame::<u64, _>(&mut stream2).unwrap(), 40);
    }

    #[test]
    fn duplicate_doubles_the_frame() {
        let (addr, _server) = echo_server();
        // Duplicate only server->client so the echo count is unambiguous.
        let plan = FaultPlan::seeded(1); // clean c2s
        let proxy = FaultProxy::start(addr, plan).unwrap();
        let mut stream = TcpStream::connect(proxy.addr()).unwrap();
        write_frame(&mut stream, &5u64).unwrap();
        assert_eq!(read_frame::<u64, _>(&mut stream).unwrap(), 5);
        drop(stream);
        // Now with duplication both ways: one request echoes twice (the
        // duplicated request echoes once each, the duplicated replies
        // double again — at least 2 replies arrive for 1 send).
        let proxy2 = FaultProxy::start(addr, FaultPlan::seeded(1).duplicate(1.0)).unwrap();
        let mut stream = TcpStream::connect(proxy2.addr()).unwrap();
        write_frame(&mut stream, &5u64).unwrap();
        assert_eq!(read_frame::<u64, _>(&mut stream).unwrap(), 5);
        assert_eq!(read_frame::<u64, _>(&mut stream).unwrap(), 5);
    }

    #[test]
    fn dribble_delivers_the_frame_intact_one_byte_at_a_time() {
        let (addr, _server) = echo_server();
        // Dribble everything both ways at 1 ms/byte: slow, not lossy.
        let plan = FaultPlan::seeded(1).dribble(1.0, 1);
        let proxy = FaultProxy::start(addr, plan).unwrap();
        let mut stream = TcpStream::connect(proxy.addr()).unwrap();
        let t0 = std::time::Instant::now();
        write_frame(&mut stream, &42u64).unwrap();
        assert_eq!(read_frame::<u64, _>(&mut stream).unwrap(), 42);
        // A u64 frame is ~16 bytes; dribbled both ways it cannot arrive
        // instantly — the per-byte pacing really happened.
        assert!(t0.elapsed() >= Duration::from_millis(20));
        let records = proxy.records();
        assert!(records.iter().all(|r| r.action == "dribble"));
    }
}
