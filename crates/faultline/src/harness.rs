//! End-to-end pipeline harness: a real controller, a real broker, and a
//! real client whose controller channel runs through the fault proxy.
//!
//! [`run_pipeline`] drives submit → admit → push → enforce under one
//! fault plan, then exercises a link-failure/repair cycle, and returns a
//! [`PipelineReport`] with the observed outcomes, the decision trace, and
//! any invariant violations:
//!
//! 1. **No admitted demand silently dropped** — every demand the client
//!    believes admitted is admitted at the controller and fully installed
//!    at the broker within the deadline.
//! 2. **No double-counting** — the controller's admitted count equals the
//!    number of distinct ids it recorded as admitted, retries included.
//! 3. **Bounded-time recovery** — after a link failure report the reroute
//!    converges at the broker within the deadline, and again after repair.

use crate::plan::FaultPlan;
use crate::proxy::FaultProxy;
use bate_core::clock::SystemClock;
use bate_net::topologies;
use bate_routing::RoutingScheme;
use bate_system::client::DemandRequest;
use bate_system::wire::Transport;
use bate_system::{Broker, Client, Controller, ControllerConfig, RetryPolicy};
use std::net::TcpStream;
use std::time::Duration;

/// How long an install/reroute may take to converge at the broker.
const CONVERGE: Duration = Duration::from_secs(3);

/// What happened to one submitted demand.
#[derive(Debug)]
pub struct SubmitOutcome {
    pub id: u64,
    pub bandwidth: f64,
    /// What the client observed: the admission verdict, or the transport
    /// error that exhausted its retries.
    pub observed: Result<bool, String>,
    /// The controller's idempotency record for the id.
    pub verdict: Option<bool>,
}

/// The result of one pipeline run under a fault plan.
#[derive(Debug)]
pub struct PipelineReport {
    pub outcomes: Vec<SubmitOutcome>,
    pub admitted_at_controller: usize,
    /// Whether the failure → reroute → repair cycle converged in time
    /// (`None` if no rerouteable demand was admitted).
    pub recovery_converged: Option<bool>,
    /// The proxy's replayable JSONL decision trace.
    pub trace: String,
    /// Human-readable invariant violations; empty means all held.
    pub violations: Vec<String>,
}

/// The standard seeded suite: 21 plans from clean through compound chaos.
/// Each seed is distinct so schedules don't correlate across plans. This
/// is the set the fault-suite tests run and whose traces are pinned as
/// goldens under `goldens/` (see `trace_golden_path`).
pub fn standard_suite() -> Vec<FaultPlan> {
    vec![
        FaultPlan::seeded(100),
        FaultPlan::seeded(101).drop(0.05),
        FaultPlan::seeded(102).drop(0.15),
        FaultPlan::seeded(103).drop(0.3),
        FaultPlan::seeded(104).delay(0.3, 10),
        FaultPlan::seeded(105).delay(0.5, 20),
        FaultPlan::seeded(106).duplicate(0.2),
        FaultPlan::seeded(107).duplicate(0.5),
        FaultPlan::seeded(108).truncate(0.1),
        FaultPlan::seeded(109).corrupt(0.1),
        FaultPlan::seeded(110).corrupt(0.3),
        FaultPlan::seeded(111).sever_after(2),
        FaultPlan::seeded(112).sever_after(5),
        FaultPlan::seeded(113).drop_first(Some(crate::plan::Direction::S2C), 1),
        FaultPlan::seeded(114).drop(0.1).delay(0.2, 10),
        FaultPlan::seeded(115).drop(0.1).duplicate(0.2),
        FaultPlan::seeded(116).drop(0.1).corrupt(0.1),
        FaultPlan::seeded(117).truncate(0.05).delay(0.3, 5),
        FaultPlan::seeded(118).drop(0.2).sever_after(6),
        FaultPlan::seeded(119).corrupt(0.05).duplicate(0.1).drop(0.05),
        FaultPlan::seeded(120).delay(0.2, 15).sever_after(8),
    ]
}

/// Where a plan's pinned golden trace lives (checked in under the crate's
/// `goldens/` directory, one JSONL file per plan seed). The goldens were
/// captured from the pre-event-loop *threaded* controller plane; the
/// event-driven plane must reproduce them byte-identically, which pins
/// that the wire-visible behavior (frame counts, ordering per connection,
/// verdicts, retries) survived the concurrency-model change.
pub fn trace_golden_path(plan: &FaultPlan) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("goldens")
        .join(format!("plan_{}.jsonl", plan.seed))
}

/// The standard workload: five admissible demands across three s-d pairs
/// plus one oversized demand that must be rejected. Ids are fixed so
/// traces are comparable across runs.
pub fn standard_demands() -> Vec<DemandRequest> {
    vec![
        DemandRequest::new(1, "DC1", "DC3", 200.0, 0.95),
        DemandRequest::new(2, "DC1", "DC4", 300.0, 0.9),
        DemandRequest::new(3, "DC2", "DC6", 150.0, 0.99),
        DemandRequest::new(4, "DC1", "DC3", 100.0, 0.9),
        DemandRequest::new(5, "DC2", "DC6", 50.0, 0.95),
        // DC1's egress cut is 3 Gbps: this can never be admitted.
        DemandRequest::new(6, "DC1", "DC3", 10_000.0, 0.5),
    ]
}

/// The retry policy the harness's client runs under: tight deadlines so
/// fault plans resolve quickly, attempts bounded so nothing hangs, jitter
/// seeded from the plan for reproducibility.
///
/// The request timeout is the one knob that couples the *trace* to host
/// speed: a timeout that fires because the machine stalled (not because
/// the plan dropped anything) adds a retry and thus extra frames. 250 ms
/// keeps spurious fires out of reach of test-suite load while still
/// resolving a genuinely dropped reply in well under a second.
pub fn harness_policy(plan: &FaultPlan) -> RetryPolicy {
    RetryPolicy {
        max_attempts: 6,
        base_delay: Duration::from_millis(5),
        max_delay: Duration::from_millis(30),
        request_timeout: Duration::from_millis(250),
        jitter_seed: plan.seed,
    }
}

/// Run the full pipeline under `plan` with the given demands.
pub fn run_pipeline(plan: &FaultPlan, demands: &[DemandRequest]) -> PipelineReport {
    let topo = topologies::testbed6();
    let controller = Controller::start(ControllerConfig::manual(
        topo.clone(),
        RoutingScheme::default_ksp4(),
        2,
    ))
    .expect("controller start");

    // The broker's channel is direct: install delivery is the *oracle* the
    // invariants check against, so only the client channel is faulted.
    // (Broker-channel faults are exercised by the dedicated regression
    // tests, where reconnection itself is the subject.)
    let broker = Broker::connect(controller.addr(), "DC1").expect("broker connect");
    assert!(controller.wait_for_brokers(1, Duration::from_secs(2)));

    let proxy = FaultProxy::start(controller.addr(), plan.clone()).expect("proxy start");

    let proxy_addr = proxy.addr();
    let mut client = Client::connect_with(
        Box::new(move || {
            let stream = TcpStream::connect(proxy_addr)?;
            stream.set_nodelay(true)?;
            Ok(Box::new(stream) as Box<dyn Transport>)
        }),
        SystemClock::shared(),
        harness_policy(plan),
    )
    .expect("client connect");

    // Phase 1: submit everything through the faulty channel.
    let mut outcomes = Vec::new();
    for req in demands {
        let observed = client.submit(req).map_err(|e| e.to_string());
        outcomes.push(SubmitOutcome {
            id: req.id,
            bandwidth: req.bandwidth,
            observed,
            verdict: None,
        });
    }
    for outcome in &mut outcomes {
        outcome.verdict = controller.admission_verdict(outcome.id);
    }

    // Phase 2: invariants.
    let mut violations = Vec::new();
    for outcome in &outcomes {
        match &outcome.observed {
            Ok(true) => {
                if outcome.verdict != Some(true) {
                    violations.push(format!(
                        "demand {}: client believes admitted but controller verdict is {:?} \
                         (admitted demand silently dropped)",
                        outcome.id, outcome.verdict
                    ));
                } else if !broker.wait_for_rate(outcome.id, CONVERGE, |r| {
                    r >= outcome.bandwidth - 1e-6
                }) {
                    violations.push(format!(
                        "demand {}: admitted but never fully installed at the broker \
                         ({} of {} Mbps)",
                        outcome.id,
                        broker.installed_rate(outcome.id),
                        outcome.bandwidth
                    ));
                }
            }
            Ok(false) => {
                if outcome.verdict == Some(true) {
                    violations.push(format!(
                        "demand {}: client was told rejected but the controller admitted it",
                        outcome.id
                    ));
                }
            }
            // Retries exhausted: the client doesn't know. Either terminal
            // state is consistent; the count check below still applies.
            Err(_) => {}
        }
    }
    let verdict_true = outcomes
        .iter()
        .filter(|o| o.verdict == Some(true))
        .count();
    let admitted_at_controller = controller.admitted_count();
    if admitted_at_controller != verdict_true {
        violations.push(format!(
            "controller holds {admitted_at_controller} demands but recorded \
             {verdict_true} admitted verdicts (double-count or leak)"
        ));
    }

    // Phase 3: failure → reroute → repair, if a rerouteable demand made it
    // in. Demand 2 (DC1→DC4) rides the direct L8 link by default.
    let recovery_converged = outcomes
        .iter()
        .find(|o| o.id == 2 && o.verdict == Some(true))
        .map(|o| {
            let n = |s: &str| topo.find_node(s).unwrap();
            let l8 = topo.find_link(n("DC1"), n("DC4")).unwrap();
            let group = topo.link(l8).group.index() as u32;
            if broker.report_link(group, false).is_err() {
                return false;
            }
            let tunnels =
                bate_routing::TunnelSet::compute(&topo, RoutingScheme::default_ksp4());
            let pair = tunnels.pair_index(n("DC1"), n("DC4")).unwrap() as u32;
            let rerouted = broker.wait_for_entries(2, CONVERGE, |entries| {
                let direct = entries
                    .iter()
                    .any(|e| e.pair == pair && e.tunnel == 0 && e.rate > 1e-6);
                let total: f64 = entries.iter().map(|e| e.rate).sum();
                !direct && total >= o.bandwidth - 1e-6
            });
            if broker.report_link(group, true).is_err() {
                return false;
            }
            let repaired =
                broker.wait_for_rate(2, CONVERGE, |r| r >= o.bandwidth - 1e-6);
            rerouted && repaired
        });
    if recovery_converged == Some(false) {
        violations.push("recovery did not converge within the deadline".to_string());
    }

    PipelineReport {
        outcomes,
        admitted_at_controller,
        recovery_converged,
        trace: proxy.trace_jsonl(),
        violations,
    }
}
