//! Property-based validation of the routing algorithms against brute-force
//! path enumeration on small random topologies.

use bate_net::{NodeId, Topology};
use bate_routing::{ksp, RoutingScheme, TunnelSet};
use proptest::prelude::*;

fn random_topology() -> impl Strategy<Value = Topology> {
    (
        4usize..7,
        prop::collection::vec((0usize..8, 0usize..8), 0..8),
    )
        .prop_map(|(n, chords)| {
            let mut t = Topology::new("prop");
            let ids: Vec<_> = (0..n).map(|i| t.add_node(&format!("N{i}"))).collect();
            for i in 0..n {
                t.add_duplex_link(ids[i], ids[(i + 1) % n], 100.0, 0.001);
            }
            for (a, b) in chords {
                let (a, b) = (a % n, b % n);
                if a != b && t.find_link(ids[a], ids[b]).is_none() {
                    t.add_duplex_link(ids[a], ids[b], 100.0, 0.001);
                }
            }
            t
        })
}

/// All simple paths from src to dst, by DFS; returns sorted hop counts.
fn all_simple_path_lengths(topo: &Topology, src: NodeId, dst: NodeId) -> Vec<usize> {
    fn dfs(
        topo: &Topology,
        cur: NodeId,
        dst: NodeId,
        visited: &mut Vec<NodeId>,
        depth: usize,
        out: &mut Vec<usize>,
    ) {
        if cur == dst {
            out.push(depth);
            return;
        }
        for &l in topo.out_links(cur) {
            let next = topo.link(l).dst;
            if !visited.contains(&next) {
                visited.push(next);
                dfs(topo, next, dst, visited, depth + 1, out);
                visited.pop();
            }
        }
    }
    let mut out = Vec::new();
    dfs(topo, src, dst, &mut vec![src], 0, &mut out);
    out.sort_unstable();
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Yen's KSP returns exactly the k shortest loopless path lengths.
    #[test]
    fn ksp_matches_bruteforce(topo in random_topology(), s in 0usize..8, d in 0usize..8, k in 1usize..6) {
        let s = NodeId(s % topo.num_nodes());
        let d = NodeId(d % topo.num_nodes());
        prop_assume!(s != d);
        let expected = all_simple_path_lengths(&topo, s, d);
        let paths = ksp::k_shortest_paths(&topo, s, d, k);
        prop_assert_eq!(paths.len(), k.min(expected.len()));
        for (p, &len) in paths.iter().zip(expected.iter()) {
            prop_assert_eq!(p.len(), len);
            prop_assert!(p.is_simple(&topo));
            prop_assert_eq!(p.src(&topo), s);
            prop_assert_eq!(p.dst(&topo), d);
        }
        // Distinct paths.
        let mut seen = std::collections::HashSet::new();
        for p in &paths {
            prop_assert!(seen.insert(p.links.clone()));
        }
    }

    /// Every routing scheme yields valid, simple, distinct paths.
    #[test]
    fn all_schemes_yield_valid_tunnels(topo in random_topology(), k in 1usize..5) {
        for scheme in [
            RoutingScheme::Ksp(k),
            RoutingScheme::EdgeDisjoint(k),
            RoutingScheme::Oblivious(k),
        ] {
            let set = TunnelSet::compute(&topo, scheme);
            for pair in 0..set.num_pairs() {
                let (s, d) = set.pair(pair);
                let mut seen = std::collections::HashSet::new();
                for p in set.tunnels(pair) {
                    prop_assert!(p.is_simple(&topo), "{}", scheme.name());
                    prop_assert_eq!(p.src(&topo), s);
                    prop_assert_eq!(p.dst(&topo), d);
                    prop_assert!(seen.insert(p.links.clone()), "{}", scheme.name());
                    // A simple path never exceeds n-1 hops.
                    prop_assert!(p.len() < topo.num_nodes());
                }
            }
        }
    }

    /// Edge-disjoint paths never share a fate group.
    #[test]
    fn disjoint_paths_share_nothing(topo in random_topology(), k in 2usize..5) {
        let set = TunnelSet::compute(&topo, RoutingScheme::EdgeDisjoint(k));
        for pair in 0..set.num_pairs() {
            let paths = set.tunnels(pair);
            for i in 0..paths.len() {
                for j in i + 1..paths.len() {
                    let gi = paths[i].groups(&topo);
                    for g in paths[j].groups(&topo) {
                        prop_assert!(!gi.contains(&g));
                    }
                }
            }
        }
    }

    /// Path availability equals the product over distinct fate groups and
    /// is consistent with scenario-based evaluation.
    #[test]
    fn availability_consistency(topo in random_topology()) {
        prop_assume!(topo.num_groups() <= 10);
        let full = bate_net::ScenarioSet::enumerate(&topo, topo.num_groups());
        let set = TunnelSet::compute(&topo, RoutingScheme::Ksp(2));
        for pair in 0..set.num_pairs().min(6) {
            for p in set.tunnels(pair) {
                let analytic = p.availability(&topo);
                let summed: f64 = full
                    .iter()
                    .filter(|z| p.available_under(&topo, z))
                    .map(|z| z.probability)
                    .sum();
                prop_assert!((analytic - summed).abs() < 1e-9,
                    "analytic {analytic} vs summed {summed}");
            }
        }
    }
}
