//! Dijkstra shortest path and Yen's k-shortest loopless paths.
//!
//! Link weight is hop count with a tiny inverse-capacity tiebreak, which
//! prefers fat links among equally short paths — the behaviour you want when
//! the tunnels will carry bulk bandwidth.

use crate::path::Path;
use bate_net::{LinkId, NodeId, Topology};
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};

/// Weight of a link for path selection.
fn link_weight(topo: &Topology, l: LinkId) -> f64 {
    1.0 + 1e-6 / topo.link(l).capacity.max(1e-9)
}

#[derive(PartialEq)]
struct HeapEntry {
    dist: f64,
    node: usize,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on dist; ties on node index for determinism.
        other
            .dist
            .partial_cmp(&self.dist)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.node.cmp(&self.node))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Dijkstra from `src` to `dst`, avoiding `banned_links` and `banned_nodes`.
///
/// Returns the shortest path or `None` if `dst` is unreachable.
pub fn shortest_path_avoiding(
    topo: &Topology,
    src: NodeId,
    dst: NodeId,
    banned_links: &HashSet<LinkId>,
    banned_nodes: &HashSet<NodeId>,
) -> Option<Path> {
    if src == dst || banned_nodes.contains(&src) || banned_nodes.contains(&dst) {
        return None;
    }
    let n = topo.num_nodes();
    let mut dist = vec![f64::INFINITY; n];
    let mut prev: Vec<Option<LinkId>> = vec![None; n];
    let mut heap = BinaryHeap::new();
    dist[src.index()] = 0.0;
    heap.push(HeapEntry {
        dist: 0.0,
        node: src.index(),
    });

    while let Some(HeapEntry { dist: d, node: u }) = heap.pop() {
        if d > dist[u] {
            continue;
        }
        if u == dst.index() {
            break;
        }
        for &l in topo.out_links(NodeId(u)) {
            if banned_links.contains(&l) {
                continue;
            }
            let v = topo.link(l).dst;
            if banned_nodes.contains(&v) {
                continue;
            }
            let nd = d + link_weight(topo, l);
            if nd < dist[v.index()] {
                dist[v.index()] = nd;
                prev[v.index()] = Some(l);
                heap.push(HeapEntry {
                    dist: nd,
                    node: v.index(),
                });
            }
        }
    }

    if dist[dst.index()].is_infinite() {
        return None;
    }
    let mut links = Vec::new();
    let mut cur = dst;
    while cur != src {
        let l = prev[cur.index()]?;
        links.push(l);
        cur = topo.link(l).src;
    }
    links.reverse();
    Some(Path { links })
}

/// Plain shortest path.
pub fn shortest_path(topo: &Topology, src: NodeId, dst: NodeId) -> Option<Path> {
    shortest_path_avoiding(topo, src, dst, &HashSet::new(), &HashSet::new())
}

fn path_weight(topo: &Topology, p: &Path) -> f64 {
    p.links.iter().map(|&l| link_weight(topo, l)).sum()
}

/// Yen's algorithm: up to `k` shortest loopless paths from `src` to `dst`,
/// in non-decreasing weight order.
pub fn k_shortest_paths(topo: &Topology, src: NodeId, dst: NodeId, k: usize) -> Vec<Path> {
    let mut result: Vec<Path> = Vec::new();
    let Some(first) = shortest_path(topo, src, dst) else {
        return result;
    };
    result.push(first);

    // Candidate pool: (weight, path); paths deduplicated.
    let mut candidates: Vec<(f64, Path)> = Vec::new();
    let mut seen: HashSet<Vec<LinkId>> = HashSet::new();
    seen.insert(result[0].links.clone());

    while result.len() < k {
        let last = result.last().unwrap().clone();
        let last_nodes = last.nodes(topo);

        for i in 0..last.links.len() {
            // Spur node is node i of the previous path; root path is its
            // prefix up to (not including) the spur link.
            let spur_node = last_nodes[i];
            let root_links = &last.links[..i];

            // Ban links that would recreate any already-found path sharing
            // this root.
            let mut banned_links: HashSet<LinkId> = HashSet::new();
            for p in result.iter().map(|p| &p.links) {
                if p.len() > i && p[..i] == *root_links {
                    banned_links.insert(p[i]);
                }
            }
            // Ban the root path's interior nodes to keep paths loopless.
            let banned_nodes: HashSet<NodeId> = last_nodes[..i].iter().copied().collect();

            if let Some(spur) =
                shortest_path_avoiding(topo, spur_node, dst, &banned_links, &banned_nodes)
            {
                let mut links = root_links.to_vec();
                links.extend(spur.links);
                if seen.insert(links.clone()) {
                    let p = Path { links };
                    let w = path_weight(topo, &p);
                    candidates.push((w, p));
                }
            }
        }

        if candidates.is_empty() {
            break;
        }
        // Pop the lightest candidate (stable tiebreak on link ids).
        let best = candidates
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| {
                a.0.partial_cmp(&b.0)
                    .unwrap_or(Ordering::Equal)
                    .then_with(|| a.1.links.cmp(&b.1.links))
            })
            .map(|(i, _)| i)
            .unwrap();
        let (_, path) = candidates.swap_remove(best);
        result.push(path);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use bate_net::topologies;

    #[test]
    fn shortest_path_on_toy4() {
        let t = topologies::toy4();
        let n = |s: &str| t.find_node(s).unwrap();
        let p = shortest_path(&t, n("DC1"), n("DC4")).unwrap();
        assert_eq!(p.len(), 2); // both 2-hop options tie; either is fine
        assert_eq!(p.src(&t), n("DC1"));
        assert_eq!(p.dst(&t), n("DC4"));
    }

    #[test]
    fn ksp_finds_both_toy4_paths() {
        let t = topologies::toy4();
        let n = |s: &str| t.find_node(s).unwrap();
        let ps = k_shortest_paths(&t, n("DC1"), n("DC4"), 4);
        // Only 2 simple 2-hop paths exist; longer detours through duplex
        // reverse links are loopless too, but the two 2-hop ones come first.
        assert!(ps.len() >= 2);
        assert_eq!(ps[0].len(), 2);
        assert_eq!(ps[1].len(), 2);
        assert_ne!(ps[0], ps[1]);
        for p in &ps {
            assert!(p.is_simple(&t), "{}", p.format(&t));
            assert_eq!(p.src(&t), n("DC1"));
            assert_eq!(p.dst(&t), n("DC4"));
        }
    }

    #[test]
    fn ksp_orders_by_length() {
        let t = topologies::testbed6();
        let n = |s: &str| t.find_node(s).unwrap();
        let ps = k_shortest_paths(&t, n("DC1"), n("DC3"), 4);
        assert_eq!(ps.len(), 4);
        for w in ps.windows(2) {
            assert!(w[0].len() <= w[1].len());
        }
    }

    #[test]
    fn ksp_paths_are_distinct_and_simple() {
        let t = topologies::b4();
        let nodes: Vec<_> = t.nodes().collect();
        let ps = k_shortest_paths(&t, nodes[0], nodes[7], 6);
        let mut seen = std::collections::HashSet::new();
        for p in &ps {
            assert!(p.is_simple(&t));
            assert!(seen.insert(p.links.clone()), "duplicate path");
        }
    }

    #[test]
    fn unreachable_returns_empty() {
        let mut t = bate_net::Topology::new("t");
        let a = t.add_node("A");
        let b = t.add_node("B");
        let c = t.add_node("C");
        t.add_link(a, b, 1.0, 0.0);
        assert!(shortest_path(&t, a, c).is_none());
        assert!(k_shortest_paths(&t, a, c, 3).is_empty());
        assert!(shortest_path(&t, a, a).is_none());
    }

    #[test]
    fn ksp_matches_bruteforce_enumeration() {
        // Brute-force all simple paths on the testbed and compare the top-k
        // hop counts.
        let t = topologies::testbed6();
        let n = |s: &str| t.find_node(s).unwrap();
        let (src, dst) = (n("DC1"), n("DC5"));

        fn dfs(
            t: &bate_net::Topology,
            cur: bate_net::NodeId,
            dst: bate_net::NodeId,
            visited: &mut Vec<bate_net::NodeId>,
            links: &mut Vec<bate_net::LinkId>,
            out: &mut Vec<usize>,
        ) {
            if cur == dst {
                out.push(links.len());
                return;
            }
            for &l in t.out_links(cur) {
                let next = t.link(l).dst;
                if !visited.contains(&next) {
                    visited.push(next);
                    links.push(l);
                    dfs(t, next, dst, visited, links, out);
                    links.pop();
                    visited.pop();
                }
            }
        }

        let mut all = Vec::new();
        dfs(&t, src, dst, &mut vec![src], &mut Vec::new(), &mut all);
        all.sort_unstable();

        let k = 6;
        let ps = k_shortest_paths(&t, src, dst, k);
        assert_eq!(ps.len(), k.min(all.len()));
        for (p, expected) in ps.iter().zip(all.iter()) {
            assert_eq!(p.len(), *expected);
        }
    }
}
