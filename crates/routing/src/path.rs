//! Paths (tunnels) through the WAN: a sequence of directed links.

use bate_net::{GroupId, LinkId, NodeId, Scenario, Topology};

/// A simple directed path, stored as its link sequence.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Path {
    pub links: Vec<LinkId>,
}

impl Path {
    /// Build a path and check it is contiguous.
    ///
    /// # Panics
    ///
    /// Panics if consecutive links do not connect or the path is empty.
    pub fn new(topo: &Topology, links: Vec<LinkId>) -> Path {
        assert!(!links.is_empty(), "empty path");
        for w in links.windows(2) {
            assert_eq!(
                topo.link(w[0]).dst,
                topo.link(w[1]).src,
                "links are not contiguous"
            );
        }
        Path { links }
    }

    /// Build a path from a node sequence; every consecutive pair must be
    /// directly linked.
    pub fn from_nodes(topo: &Topology, nodes: &[NodeId]) -> Option<Path> {
        if nodes.len() < 2 {
            return None;
        }
        let mut links = Vec::with_capacity(nodes.len() - 1);
        for w in nodes.windows(2) {
            links.push(topo.find_link(w[0], w[1])?);
        }
        Some(Path { links })
    }

    /// Source node.
    pub fn src(&self, topo: &Topology) -> NodeId {
        topo.link(self.links[0]).src
    }

    /// Destination node.
    pub fn dst(&self, topo: &Topology) -> NodeId {
        topo.link(*self.links.last().unwrap()).dst
    }

    /// Node sequence, source first.
    pub fn nodes(&self, topo: &Topology) -> Vec<NodeId> {
        let mut out = vec![self.src(topo)];
        for &l in &self.links {
            out.push(topo.link(l).dst);
        }
        out
    }

    /// Hop count.
    pub fn len(&self) -> usize {
        self.links.len()
    }

    pub fn is_empty(&self) -> bool {
        self.links.is_empty()
    }

    /// Does the path traverse this directed link (`u_t^e`)?
    pub fn uses_link(&self, l: LinkId) -> bool {
        self.links.contains(&l)
    }

    /// Does the path traverse any link of this fate group?
    pub fn uses_group(&self, topo: &Topology, g: GroupId) -> bool {
        self.links.iter().any(|&l| topo.link(l).group == g)
    }

    /// Fate groups traversed, deduplicated in traversal order.
    pub fn groups(&self, topo: &Topology) -> Vec<GroupId> {
        let mut out: Vec<GroupId> = Vec::with_capacity(self.links.len());
        for &l in &self.links {
            let g = topo.link(l).group;
            if !out.contains(&g) {
                out.push(g);
            }
        }
        out
    }

    /// No repeated nodes?
    pub fn is_simple(&self, topo: &Topology) -> bool {
        let nodes = self.nodes(topo);
        let mut seen = std::collections::HashSet::new();
        nodes.iter().all(|n| seen.insert(*n))
    }

    /// Steady-state availability `p_t = Π (1 - x_i)` over traversed fate
    /// groups (§2.2 computes exactly this for the two DC1→DC4 paths).
    pub fn availability(&self, topo: &Topology) -> f64 {
        self.groups(topo)
            .iter()
            .map(|&g| 1.0 - topo.group(g).failure_prob)
            .product()
    }

    /// Is the whole path up under a failure scenario (`v_t^z`)?
    pub fn available_under(&self, topo: &Topology, scenario: &Scenario) -> bool {
        self.links.iter().all(|&l| scenario.link_up(topo, l))
    }

    /// Bottleneck capacity along the path.
    pub fn min_capacity(&self, topo: &Topology) -> f64 {
        self.links
            .iter()
            .map(|&l| topo.link(l).capacity)
            .fold(f64::INFINITY, f64::min)
    }

    /// Render as "DC1→DC2→DC4".
    pub fn format(&self, topo: &Topology) -> String {
        self.nodes(topo)
            .iter()
            .map(|&n| topo.node_name(n).to_string())
            .collect::<Vec<_>>()
            .join("→")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bate_net::topologies;

    #[test]
    fn from_nodes_and_accessors() {
        let t = topologies::toy4();
        let n = |s: &str| t.find_node(s).unwrap();
        let p = Path::from_nodes(&t, &[n("DC1"), n("DC2"), n("DC4")]).unwrap();
        assert_eq!(p.len(), 2);
        assert_eq!(p.src(&t), n("DC1"));
        assert_eq!(p.dst(&t), n("DC4"));
        assert_eq!(p.format(&t), "DC1→DC2→DC4");
        assert!(p.is_simple(&t));
    }

    #[test]
    fn from_nodes_rejects_missing_links() {
        let t = topologies::toy4();
        let n = |s: &str| t.find_node(s).unwrap();
        assert!(Path::from_nodes(&t, &[n("DC2"), n("DC3")]).is_none());
    }

    #[test]
    fn availability_matches_motivating_example() {
        let t = topologies::toy4();
        let n = |s: &str| t.find_node(s).unwrap();
        let upper = Path::from_nodes(&t, &[n("DC1"), n("DC2"), n("DC4")]).unwrap();
        let lower = Path::from_nodes(&t, &[n("DC1"), n("DC3"), n("DC4")]).unwrap();
        assert!((upper.availability(&t) - 0.95999904).abs() < 1e-9);
        assert!((lower.availability(&t) - 0.998999001).abs() < 1e-9);
    }

    #[test]
    fn availability_under_scenario() {
        let t = topologies::toy4();
        let n = |s: &str| t.find_node(s).unwrap();
        let p = Path::from_nodes(&t, &[n("DC1"), n("DC2"), n("DC4")]).unwrap();
        let all_up = Scenario::all_up(&t);
        assert!(p.available_under(&t, &all_up));
        let g = t.link(t.find_link(n("DC1"), n("DC2")).unwrap()).group;
        let down = Scenario::with_failures(&t, &[g]);
        assert!(!p.available_under(&t, &down));
        assert!(p.uses_group(&t, g));
    }

    #[test]
    fn min_capacity_is_bottleneck() {
        let mut t = Topology::new("t");
        let a = t.add_node("A");
        let b = t.add_node("B");
        let c = t.add_node("C");
        let l1 = t.add_link(a, b, 10.0, 0.0);
        let l2 = t.add_link(b, c, 3.0, 0.0);
        let p = Path::new(&t, vec![l1, l2]);
        assert_eq!(p.min_capacity(&t), 3.0);
    }

    #[test]
    #[should_panic(expected = "not contiguous")]
    fn new_rejects_broken_chain() {
        let t = topologies::toy4();
        let n = |s: &str| t.find_node(s).unwrap();
        let l1 = t.find_link(n("DC1"), n("DC2")).unwrap();
        let l2 = t.find_link(n("DC3"), n("DC4")).unwrap();
        Path::new(&t, vec![l1, l2]);
    }

    use bate_net::Topology;
}
