//! Tunnel sets: the pre-computed `T_k` for every source-destination pair.

use crate::disjoint::edge_disjoint_paths;
use crate::ksp::k_shortest_paths;
use crate::oblivious::oblivious_paths;
use crate::path::Path;
use bate_net::{NodeId, Scenario, Topology};
use std::collections::HashMap;

/// Which offline routing algorithm computes the tunnels (§4, Offline
/// Routing; compared in Fig. 18).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoutingScheme {
    /// Yen's k-shortest paths (the paper's default is `Ksp(4)`).
    Ksp(usize),
    /// Fate-disjoint paths.
    EdgeDisjoint(usize),
    /// Diverse low-stretch (oblivious-style) paths.
    Oblivious(usize),
}

impl RoutingScheme {
    /// The paper's default: 4-shortest paths.
    pub fn default_ksp4() -> Self {
        RoutingScheme::Ksp(4)
    }

    pub fn name(&self) -> &'static str {
        match self {
            RoutingScheme::Ksp(_) => "KSP",
            RoutingScheme::EdgeDisjoint(_) => "Edge-disjoint",
            RoutingScheme::Oblivious(_) => "Oblivious",
        }
    }
}

/// Identifies one tunnel: the s-d pair index and the tunnel's position in
/// that pair's list.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TunnelId {
    pub pair: usize,
    pub tunnel: usize,
}

/// All tunnels of a topology, indexed by s-d pair.
#[derive(Debug, Clone)]
pub struct TunnelSet {
    pairs: Vec<(NodeId, NodeId)>,
    pair_index: HashMap<(NodeId, NodeId), usize>,
    tunnels: Vec<Vec<Path>>,
    /// `p_t` per tunnel, parallel to `tunnels`. `Path::availability`
    /// allocates a group vector on every call, which is too expensive for
    /// the sort comparators in admission and hardening; the product only
    /// depends on the topology the set was computed from, so it is cached
    /// here once at build time.
    avail: Vec<Vec<f64>>,
}

impl TunnelSet {
    /// Compute tunnels for every ordered s-d pair of `topo`.
    pub fn compute(topo: &Topology, scheme: RoutingScheme) -> TunnelSet {
        Self::compute_for_pairs(topo, &topo.sd_pairs(), scheme)
    }

    /// Compute tunnels for a subset of pairs (cheaper when the demand set
    /// touches few pairs).
    pub fn compute_for_pairs(
        topo: &Topology,
        pairs: &[(NodeId, NodeId)],
        scheme: RoutingScheme,
    ) -> TunnelSet {
        let mut set = TunnelSet {
            pairs: Vec::with_capacity(pairs.len()),
            pair_index: HashMap::new(),
            tunnels: Vec::with_capacity(pairs.len()),
            avail: Vec::with_capacity(pairs.len()),
        };
        for &(s, d) in pairs {
            let paths = match scheme {
                RoutingScheme::Ksp(k) => k_shortest_paths(topo, s, d, k),
                RoutingScheme::EdgeDisjoint(k) => edge_disjoint_paths(topo, s, d, k),
                RoutingScheme::Oblivious(k) => oblivious_paths(topo, s, d, k),
            };
            set.pair_index.insert((s, d), set.pairs.len());
            set.pairs.push((s, d));
            set.avail.push(paths.iter().map(|p| p.availability(topo)).collect());
            set.tunnels.push(paths);
        }
        set
    }

    /// Number of s-d pairs.
    pub fn num_pairs(&self) -> usize {
        self.pairs.len()
    }

    /// The s-d pair at `index`.
    pub fn pair(&self, index: usize) -> (NodeId, NodeId) {
        self.pairs[index]
    }

    /// Index of an s-d pair.
    pub fn pair_index(&self, s: NodeId, d: NodeId) -> Option<usize> {
        self.pair_index.get(&(s, d)).copied()
    }

    /// Tunnels of a pair by index.
    pub fn tunnels(&self, pair: usize) -> &[Path] {
        &self.tunnels[pair]
    }

    /// Tunnels between two nodes (empty if the pair wasn't computed).
    pub fn tunnels_between(&self, s: NodeId, d: NodeId) -> &[Path] {
        match self.pair_index(s, d) {
            Some(i) => &self.tunnels[i],
            None => &[],
        }
    }

    /// The path behind a [`TunnelId`].
    pub fn path(&self, id: TunnelId) -> &Path {
        &self.tunnels[id.pair][id.tunnel]
    }

    /// Cached `p_t` of every tunnel of a pair, parallel to
    /// [`TunnelSet::tunnels`]. Equals `Path::availability` against the
    /// topology the set was computed from, without the per-call group
    /// allocation.
    pub fn availabilities(&self, pair: usize) -> &[f64] {
        &self.avail[pair]
    }

    /// Cached `p_t` of one tunnel (see [`TunnelSet::availabilities`]).
    pub fn availability(&self, id: TunnelId) -> f64 {
        self.avail[id.pair][id.tunnel]
    }

    /// Iterate every tunnel as `(TunnelId, &Path)`.
    pub fn iter(&self) -> impl Iterator<Item = (TunnelId, &Path)> {
        self.tunnels.iter().enumerate().flat_map(|(pi, ts)| {
            ts.iter().enumerate().map(move |(ti, p)| {
                (
                    TunnelId {
                        pair: pi,
                        tunnel: ti,
                    },
                    p,
                )
            })
        })
    }

    /// `v_t^z` for every tunnel of a pair under a scenario.
    pub fn availability_under(
        &self,
        topo: &Topology,
        pair: usize,
        scenario: &Scenario,
    ) -> Vec<bool> {
        self.tunnels[pair]
            .iter()
            .map(|p| p.available_under(topo, scenario))
            .collect()
    }

    /// Total number of tunnels across all pairs.
    pub fn total_tunnels(&self) -> usize {
        self.tunnels.iter().map(|t| t.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bate_net::topologies;

    #[test]
    fn computes_all_pairs() {
        let t = topologies::toy4();
        let set = TunnelSet::compute(&t, RoutingScheme::Ksp(2));
        assert_eq!(set.num_pairs(), 12);
        assert!(set.total_tunnels() >= 12);
    }

    #[test]
    fn pair_lookup_roundtrip() {
        let t = topologies::testbed6();
        let set = TunnelSet::compute(&t, RoutingScheme::default_ksp4());
        let n = |s: &str| t.find_node(s).unwrap();
        let i = set.pair_index(n("DC1"), n("DC3")).unwrap();
        assert_eq!(set.pair(i), (n("DC1"), n("DC3")));
        assert_eq!(set.tunnels(i).len(), 4);
        assert_eq!(set.tunnels_between(n("DC1"), n("DC3")).len(), 4);
    }

    #[test]
    fn subset_of_pairs() {
        let t = topologies::testbed6();
        let n = |s: &str| t.find_node(s).unwrap();
        let pairs = vec![(n("DC1"), n("DC4"))];
        let set = TunnelSet::compute_for_pairs(&t, &pairs, RoutingScheme::Ksp(3));
        assert_eq!(set.num_pairs(), 1);
        assert!(set.tunnels_between(n("DC4"), n("DC1")).is_empty());
    }

    #[test]
    fn availability_vector_matches_paths() {
        let t = topologies::toy4();
        let n = |s: &str| t.find_node(s).unwrap();
        let set = TunnelSet::compute_for_pairs(&t, &[(n("DC1"), n("DC4"))], RoutingScheme::Ksp(2));
        // Fail DC1-DC2: the path through DC2 dies, the one through DC3
        // survives.
        let g = t.link(t.find_link(n("DC1"), n("DC2")).unwrap()).group;
        let sc = Scenario::with_failures(&t, &[g]);
        let avail = set.availability_under(&t, 0, &sc);
        assert_eq!(avail.len(), 2);
        assert_eq!(avail.iter().filter(|&&b| b).count(), 1);
    }

    #[test]
    fn iter_yields_every_tunnel() {
        let t = topologies::toy4();
        let set = TunnelSet::compute(&t, RoutingScheme::Ksp(2));
        assert_eq!(set.iter().count(), set.total_tunnels());
        for (id, p) in set.iter() {
            assert_eq!(set.path(id).links, p.links);
        }
    }

    #[test]
    fn cached_availability_matches_path() {
        let t = topologies::testbed6();
        let set = TunnelSet::compute(&t, RoutingScheme::default_ksp4());
        for (id, p) in set.iter() {
            assert!(
                (set.availability(id) - p.availability(&t)).abs() < 1e-12,
                "cache diverged for {id:?}"
            );
        }
        for pair in 0..set.num_pairs() {
            assert_eq!(set.availabilities(pair).len(), set.tunnels(pair).len());
        }
    }

    #[test]
    fn all_schemes_produce_tunnels_on_b4() {
        let t = topologies::b4();
        for scheme in [
            RoutingScheme::Ksp(4),
            RoutingScheme::EdgeDisjoint(4),
            RoutingScheme::Oblivious(4),
        ] {
            let nodes: Vec<_> = t.nodes().collect();
            let set = TunnelSet::compute_for_pairs(&t, &[(nodes[0], nodes[6])], scheme);
            assert!(!set.tunnels(0).is_empty(), "{}", scheme.name());
        }
    }
}
