//! # bate-routing — tunnel computation for BATE
//!
//! BATE (like SWAN, FFC and TEAVAR) forwards traffic over pre-computed
//! tunnels (§3.1). The Offline Routing module of the controller computes a
//! tunnel set `T_k` for every source-destination pair `k` using one of three
//! schemes the paper evaluates (Fig. 18):
//!
//! * [`ksp`] — Yen's k-shortest loopless paths (the paper's default, KSP-4),
//! * [`disjoint`] — edge-disjoint paths (greedy shortest-path peeling over
//!   fate groups, so the paths share no physical link),
//! * [`oblivious`] — diverse low-stretch paths via iterative link-penalty
//!   re-weighting, approximating the oblivious/semi-oblivious path sets of
//!   SMORE (Räcke trees are overkill at inter-DC scale; what the evaluation
//!   needs is path diversity with bounded stretch, which penalty-based
//!   selection provides).
//!
//! [`tunnel::TunnelSet`] bundles the per-pair tunnel lists together with the
//! `u_t^e` (link membership) and `v_t^z` (availability under a scenario)
//! queries used by every optimization model.

pub mod disjoint;
pub mod ksp;
pub mod oblivious;
pub mod path;
pub mod tunnel;

pub use path::Path;
pub use tunnel::{RoutingScheme, TunnelId, TunnelSet};
