//! Edge-disjoint path computation (§3.1 cites risk-aware OSPF routing [49]).
//!
//! Greedy shortest-path peeling: find the shortest path, remove every link
//! of every fate group it traverses (so subsequent paths share no *physical*
//! link, not merely no directed link), repeat. Greedy peeling can find fewer
//! paths than a max-flow formulation in adversarial graphs, but on WAN
//! topologies with ring-plus-chord structure it recovers the full disjoint
//! set and is what operators deploy.

use crate::ksp::shortest_path_avoiding;
use crate::path::Path;
use bate_net::{LinkId, NodeId, Topology};
use std::collections::HashSet;

/// Up to `k` pairwise fate-disjoint paths from `src` to `dst`, shortest
/// first.
pub fn edge_disjoint_paths(topo: &Topology, src: NodeId, dst: NodeId, k: usize) -> Vec<Path> {
    let mut banned: HashSet<LinkId> = HashSet::new();
    let mut out = Vec::new();
    while out.len() < k {
        let Some(p) = shortest_path_avoiding(topo, src, dst, &banned, &HashSet::new()) else {
            break;
        };
        for g in p.groups(topo) {
            for &l in &topo.group(g).links {
                banned.insert(l);
            }
        }
        out.push(p);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use bate_net::topologies;

    /// No two returned paths share a fate group.
    fn assert_disjoint(topo: &Topology, paths: &[Path]) {
        for i in 0..paths.len() {
            for j in i + 1..paths.len() {
                let gi = paths[i].groups(topo);
                for g in paths[j].groups(topo) {
                    assert!(!gi.contains(&g), "paths {i} and {j} share group {g:?}");
                }
            }
        }
    }

    #[test]
    fn toy4_has_two_disjoint_paths() {
        let t = topologies::toy4();
        let n = |s: &str| t.find_node(s).unwrap();
        let ps = edge_disjoint_paths(&t, n("DC1"), n("DC4"), 4);
        assert_eq!(ps.len(), 2);
        assert_disjoint(&t, &ps);
    }

    #[test]
    fn testbed6_disjointness() {
        let t = topologies::testbed6();
        let n = |s: &str| t.find_node(s).unwrap();
        let ps = edge_disjoint_paths(&t, n("DC1"), n("DC4"), 4);
        assert!(ps.len() >= 2);
        assert_disjoint(&t, &ps);
        // First path is the direct L8 link.
        assert_eq!(ps[0].len(), 1);
    }

    #[test]
    fn disjoint_on_all_simulation_topologies() {
        for t in topologies::simulation_topologies() {
            let nodes: Vec<_> = t.nodes().collect();
            let ps = edge_disjoint_paths(&t, nodes[0], nodes[nodes.len() / 2], 4);
            assert!(!ps.is_empty(), "{}", t.name());
            assert_disjoint(&t, &ps);
        }
    }

    #[test]
    fn k_limits_path_count() {
        let t = topologies::testbed6();
        let n = |s: &str| t.find_node(s).unwrap();
        let ps = edge_disjoint_paths(&t, n("DC1"), n("DC4"), 1);
        assert_eq!(ps.len(), 1);
    }
}
