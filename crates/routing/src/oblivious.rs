//! Oblivious-style diverse low-stretch path selection.
//!
//! SMORE's oblivious routing builds Räcke decomposition trees; what the BATE
//! evaluation actually exploits (Fig. 18: "it finds diverse and low-stretch
//! paths and avoids link over-utilization") is the *diversity* of the
//! resulting path set. We reproduce that with iterative penalty re-weighting:
//! each round computes a shortest path under weights inflated on fate groups
//! already used by earlier selections, so later paths spread across the
//! topology while staying short.

use crate::path::Path;
use bate_net::{NodeId, Topology};
use std::collections::HashSet;

/// Multiplicative penalty applied to a fate group each time a selected path
/// uses it.
const PENALTY: f64 = 4.0;

/// Up to `k` diverse paths from `src` to `dst`.
pub fn oblivious_paths(topo: &Topology, src: NodeId, dst: NodeId, k: usize) -> Vec<Path> {
    let mut usage = vec![0u32; topo.num_groups()];
    let mut out: Vec<Path> = Vec::new();
    let mut seen: HashSet<Vec<bate_net::LinkId>> = HashSet::new();

    for _ in 0..k * 3 {
        if out.len() >= k {
            break;
        }
        let p = penalized_shortest(topo, src, dst, &usage);
        let Some(p) = p else { break };
        for g in p.groups(topo) {
            usage[g.index()] += 1;
        }
        if seen.insert(p.links.clone()) {
            out.push(p);
        }
    }
    out
}

/// Dijkstra under penalty-inflated fate-group weights.
fn penalized_shortest(topo: &Topology, src: NodeId, dst: NodeId, usage: &[u32]) -> Option<Path> {
    use std::cmp::Ordering;
    use std::collections::BinaryHeap;

    #[derive(PartialEq)]
    struct E {
        d: f64,
        n: usize,
    }
    impl Eq for E {}
    impl Ord for E {
        fn cmp(&self, o: &Self) -> Ordering {
            o.d.partial_cmp(&self.d)
                .unwrap_or(Ordering::Equal)
                .then_with(|| o.n.cmp(&self.n))
        }
    }
    impl PartialOrd for E {
        fn partial_cmp(&self, o: &Self) -> Option<Ordering> {
            Some(self.cmp(o))
        }
    }

    if src == dst {
        return None;
    }
    let n = topo.num_nodes();
    let mut dist = vec![f64::INFINITY; n];
    let mut prev = vec![None; n];
    let mut heap = BinaryHeap::new();
    dist[src.index()] = 0.0;
    heap.push(E {
        d: 0.0,
        n: src.index(),
    });
    while let Some(E { d, n: u }) = heap.pop() {
        if d > dist[u] {
            continue;
        }
        for &l in topo.out_links(NodeId(u)) {
            let g = topo.link(l).group;
            let w = 1.0 * PENALTY.powi(usage[g.index()] as i32)
                + 1e-6 / topo.link(l).capacity.max(1e-9);
            let v = topo.link(l).dst.index();
            let nd = d + w;
            if nd < dist[v] {
                dist[v] = nd;
                prev[v] = Some(l);
                heap.push(E { d: nd, n: v });
            }
        }
    }
    if dist[dst.index()].is_infinite() {
        return None;
    }
    let mut links = Vec::new();
    let mut cur = dst;
    while cur != src {
        let l = prev[cur.index()]?;
        links.push(l);
        cur = topo.link(l).src;
    }
    links.reverse();
    Some(Path { links })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bate_net::topologies;

    #[test]
    fn toy4_diverse_paths() {
        let t = topologies::toy4();
        let n = |s: &str| t.find_node(s).unwrap();
        let ps = oblivious_paths(&t, n("DC1"), n("DC4"), 2);
        assert_eq!(ps.len(), 2);
        // The two 2-hop paths must both be selected (diversity).
        assert!(ps.iter().all(|p| p.len() == 2));
        assert_ne!(ps[0], ps[1]);
    }

    #[test]
    fn paths_are_valid_and_distinct() {
        for t in topologies::simulation_topologies() {
            let nodes: Vec<_> = t.nodes().collect();
            let ps = oblivious_paths(&t, nodes[1], nodes[nodes.len() - 2], 4);
            assert!(!ps.is_empty(), "{}", t.name());
            let mut seen = std::collections::HashSet::new();
            for p in &ps {
                assert_eq!(p.src(&t), nodes[1]);
                assert_eq!(p.dst(&t), nodes[nodes.len() - 2]);
                assert!(seen.insert(p.links.clone()));
            }
        }
    }

    #[test]
    fn diversity_spreads_over_groups() {
        // On the testbed, 3 oblivious paths DC1→DC5 should cover more
        // distinct fate groups than 3x the shortest path would.
        let t = topologies::testbed6();
        let n = |s: &str| t.find_node(s).unwrap();
        let ps = oblivious_paths(&t, n("DC1"), n("DC5"), 3);
        let mut groups = std::collections::HashSet::new();
        for p in &ps {
            for g in p.groups(&t) {
                groups.insert(g);
            }
        }
        assert!(groups.len() >= 4, "only {} groups covered", groups.len());
    }
}
