//! Advance reservations: the time dimension of BA demands.
//!
//! §3.1 defines a demand as `d = (b_d, β_d, t_s, t_e)` and then "omits the
//! start and end time, but they will be implicitly considered in our online
//! admission and traffic scheduling" (footnote 4). This module makes the
//! time dimension explicit: a [`ReservationBook`] tracks which demands are
//! active in which interval and answers admission for *future* windows —
//! the "calendaring" capability of SWAN/Tempus-style systems, built on
//! BATE's own admission machinery.
//!
//! The key observation: a demand set is admissible over a time window iff
//! it is admissible at every *event point* (start/end instants) inside the
//! window, because the active set only changes there.

use crate::admission::greedy::conjecture;
use crate::demand::{BaDemand, DemandId};
use crate::TeContext;
use std::collections::BTreeMap;

/// A demand with its reservation window `[start, end)` (seconds or any
/// monotone unit).
#[derive(Debug, Clone)]
pub struct Reservation {
    pub demand: BaDemand,
    pub start: f64,
    pub end: f64,
}

impl Reservation {
    pub fn new(demand: BaDemand, start: f64, end: f64) -> Reservation {
        assert!(start < end, "empty reservation window");
        Reservation { demand, start, end }
    }

    fn overlaps(&self, start: f64, end: f64) -> bool {
        self.start < end && start < self.end
    }
}

/// The controller's forward calendar of accepted reservations.
#[derive(Debug, Default)]
pub struct ReservationBook {
    reservations: BTreeMap<u64, Reservation>,
}

impl ReservationBook {
    pub fn new() -> ReservationBook {
        ReservationBook::default()
    }

    /// Demands active at time `t`.
    pub fn active_at(&self, t: f64) -> Vec<BaDemand> {
        self.reservations
            .values()
            .filter(|r| r.start <= t && t < r.end)
            .map(|r| r.demand.clone())
            .collect()
    }

    /// All reservations overlapping a window.
    pub fn overlapping(&self, start: f64, end: f64) -> Vec<&Reservation> {
        self.reservations
            .values()
            .filter(|r| r.overlaps(start, end))
            .collect()
    }

    /// The event points (reservation starts/ends) strictly inside a
    /// window, plus the window start itself — the instants where the
    /// active set changes.
    fn event_points(&self, start: f64, end: f64) -> Vec<f64> {
        let mut points = vec![start];
        for r in self.reservations.values() {
            if r.start > start && r.start < end {
                points.push(r.start);
            }
            if r.end > start && r.end < end {
                points.push(r.end);
            }
        }
        points.sort_by(|a, b| a.partial_cmp(b).unwrap());
        points.dedup();
        points
    }

    /// Can `reservation` be admitted? Checks Algorithm-1 admissibility of
    /// the combined active set at every event point of its window; admits
    /// (books) it if every point passes.
    pub fn try_admit(&mut self, ctx: &TeContext, reservation: Reservation) -> bool {
        if self.reservations.contains_key(&reservation.demand.id.0) {
            return false; // duplicate id
        }
        for t in self.event_points(reservation.start, reservation.end) {
            let mut active = self.active_at(t);
            active.push(reservation.demand.clone());
            if !conjecture(ctx, &active) {
                return false;
            }
        }
        self.reservations
            .insert(reservation.demand.id.0, reservation);
        true
    }

    /// Cancel a reservation.
    pub fn cancel(&mut self, id: DemandId) -> Option<Reservation> {
        self.reservations.remove(&id.0)
    }

    /// Drop every reservation that ended at or before `t` (housekeeping).
    pub fn expire_before(&mut self, t: f64) -> usize {
        let before = self.reservations.len();
        self.reservations.retain(|_, r| r.end > t);
        before - self.reservations.len()
    }

    pub fn len(&self) -> usize {
        self.reservations.len()
    }

    pub fn is_empty(&self) -> bool {
        self.reservations.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bate_net::{topologies, ScenarioSet};
    use bate_routing::{RoutingScheme, TunnelSet};

    fn setup() -> (bate_net::Topology, TunnelSet, ScenarioSet) {
        let topo = topologies::testbed6();
        let tunnels = TunnelSet::compute(&topo, RoutingScheme::default_ksp4());
        let scenarios = ScenarioSet::enumerate(&topo, 2);
        (topo, tunnels, scenarios)
    }

    fn demand(id: u64, pair: usize, bw: f64) -> BaDemand {
        BaDemand::single(id, pair, bw, 0.9)
    }

    #[test]
    fn disjoint_windows_share_capacity() {
        let (topo, tunnels, scenarios) = setup();
        let ctx = TeContext::new(&topo, &tunnels, &scenarios);
        let n = |s: &str| topo.find_node(s).unwrap();
        let pair = tunnels.pair_index(n("DC1"), n("DC3")).unwrap();
        let mut book = ReservationBook::new();
        // DC1→DC3's cut is 2000 Mbps. Two 1500 Mbps reservations cannot
        // overlap — but back-to-back they both fit.
        assert!(book.try_admit(&ctx, Reservation::new(demand(1, pair, 1500.0), 0.0, 100.0)));
        assert!(
            !book.try_admit(&ctx, Reservation::new(demand(2, pair, 1500.0), 50.0, 150.0)),
            "overlapping window must be refused"
        );
        assert!(
            book.try_admit(&ctx, Reservation::new(demand(2, pair, 1500.0), 100.0, 200.0)),
            "disjoint window must fit"
        );
        assert_eq!(book.len(), 2);
    }

    #[test]
    fn event_point_coverage_catches_mid_window_contention() {
        let (topo, tunnels, scenarios) = setup();
        let ctx = TeContext::new(&topo, &tunnels, &scenarios);
        let n = |s: &str| topo.find_node(s).unwrap();
        let pair = tunnels.pair_index(n("DC1"), n("DC3")).unwrap();
        let mut book = ReservationBook::new();
        // Existing short reservation in the middle of a long candidate's
        // window: the candidate must be checked against it even though the
        // candidate starts when the network is empty.
        assert!(book.try_admit(&ctx, Reservation::new(demand(1, pair, 1500.0), 40.0, 60.0)));
        assert!(
            !book.try_admit(&ctx, Reservation::new(demand(2, pair, 1500.0), 0.0, 100.0)),
            "mid-window contention must be detected"
        );
        // A small demand coexists fine.
        assert!(book.try_admit(&ctx, Reservation::new(demand(3, pair, 100.0), 0.0, 100.0)));
    }

    #[test]
    fn cancel_and_expire() {
        let (topo, tunnels, scenarios) = setup();
        let ctx = TeContext::new(&topo, &tunnels, &scenarios);
        let n = |s: &str| topo.find_node(s).unwrap();
        let pair = tunnels.pair_index(n("DC2"), n("DC6")).unwrap();
        let mut book = ReservationBook::new();
        assert!(book.try_admit(&ctx, Reservation::new(demand(1, pair, 200.0), 0.0, 10.0)));
        assert!(book.try_admit(&ctx, Reservation::new(demand(2, pair, 200.0), 5.0, 20.0)));
        assert_eq!(book.active_at(7.0).len(), 2);
        book.cancel(DemandId(1));
        assert_eq!(book.active_at(7.0).len(), 1);
        assert_eq!(book.expire_before(25.0), 1);
        assert!(book.is_empty());
    }

    #[test]
    fn duplicate_ids_rejected() {
        let (topo, tunnels, scenarios) = setup();
        let ctx = TeContext::new(&topo, &tunnels, &scenarios);
        let n = |s: &str| topo.find_node(s).unwrap();
        let pair = tunnels.pair_index(n("DC2"), n("DC6")).unwrap();
        let mut book = ReservationBook::new();
        assert!(book.try_admit(&ctx, Reservation::new(demand(1, pair, 10.0), 0.0, 10.0)));
        assert!(!book.try_admit(&ctx, Reservation::new(demand(1, pair, 10.0), 20.0, 30.0)));
    }
}
