//! BA traffic scheduling — the periodic LP of §3.3 (Eq. 1–7).
//!
//! For the admitted demands, find tunnel allocations `{f_d^t}` that
//! guarantee every availability target while using the least total
//! bandwidth:
//!
//! ```text
//! minimize   Σ f_d^t
//! subject to Σ_t f_d^t           >= b_d^k                  (Eq. 1)
//!            B_d^z <= (Σ_t f_d^t v_t^z) / b_d^k  ∀k        (Eq. 2–3)
//!            Σ_z B_d^z p_z       >= β_d                    (Eq. 4)
//!            f >= 0, capacity                              (Eq. 5–6)
//! ```
//!
//! `B_d^z` is clamped to `[0, 1]` so one over-provisioned scenario cannot
//! pay for a missing one. Scenarios are collapsed per demand
//! ([`crate::profile`]), which is exact and keeps the LP size independent
//! of the scenario count. The pruned residual mass never contributes to
//! Eq. 4, so a feasible schedule guarantees *at least* `β_d` even if every
//! pruned scenario fails the demand.

use crate::allocation::Allocation;
use crate::demand::BaDemand;
use crate::profile::MaskedProfile;
use crate::TeContext;
use bate_lp::{Problem, Relation, Sense, SolveError, SolveStats, VarId};
use bate_obs::{Counter, Histogram, Registry};
use bate_routing::TunnelId;
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// How [`schedule_with_capacities_mode`] builds and solves the LP.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveMode {
    /// Pick [`SolveMode::RowGen`] (with [`ROWGEN_SEED_SINGLES`] seeds)
    /// when the full formulation would carry more than
    /// [`ROWGEN_AUTO_THRESHOLD`] qualification rows; the full build
    /// otherwise. This is what every production entry point uses.
    Auto,
    /// Build every qualification row upfront — the reference formulation.
    Full,
    /// Cutting-plane row generation: the master LP starts with the
    /// qualification rows of the all-up state plus the states of the
    /// `seed_singles` most probable single-failure scenarios, and grows
    /// by exactly the rows a separation oracle finds violated.
    RowGen { seed_singles: usize },
}

/// Single-failure seeds the Auto mode hands to [`SolveMode::RowGen`].
pub const ROWGEN_SEED_SINGLES: usize = 4;

/// Auto switches to row generation above this many full-formulation
/// qualification rows. Sized so every pinned test instance (toy4,
/// testbed6 at the depths the goldens use) keeps the byte-identical Full
/// path, while Table-4-scale instances (B4/IBM/ATT/FITI with tens of
/// demands) go lazy.
pub const ROWGEN_AUTO_THRESHOLD: usize = 512;

/// Per-round instrumentation from a row-generation solve.
///
/// Everything except `separation_ns` is deterministic for a given
/// `(problem, mode)` input; `separation_ns` is wall clock and excluded
/// from determinism comparisons.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RowGenStats {
    /// Master solves performed (final round included, so always ≥ 1).
    pub rounds: u32,
    /// Qualification rows appended by the oracle across all rounds
    /// (seed rows excluded).
    pub rows_added: u64,
    /// Rows appended per round, in round order. The last entry is always
    /// 0 — the clean separation pass that proves optimality. An interior
    /// 0 marks a cold verification re-solve (see `cold_verifies`).
    pub rows_per_round: Vec<u32>,
    /// Warm-started master solves that were redone from a cold workspace:
    /// either separation came back clean on a warm optimum (warm installs
    /// repair violated rows through phase-1 tolerances; the accepted
    /// vertex must come from the same exact path the full build uses) or
    /// the warm solve itself failed (a warm install can degenerate-cycle
    /// into the simplex guards on an LP that solves cleanly from scratch).
    pub cold_verifies: u32,
    /// Constraint rows in the final master LP.
    pub master_rows: u32,
    /// Constraint rows the full formulation would have carried.
    pub full_rows: u32,
    /// Wall-clock nanoseconds spent in the separation oracle
    /// (informational; nondeterministic).
    pub separation_ns: u64,
    /// Master solves that reused a saved basis. Always 0 for the batch
    /// rowgen path above (it re-verifies optima cold); filled by the
    /// incremental scheduler ([`crate::incremental`]), whose warm answers
    /// are gated by the float KKT certificate instead.
    pub warm_rounds: u32,
    /// Dual-simplex repair pivots across the warm master solves.
    pub dual_repair_pivots: u64,
    /// Warm answers that failed the KKT gate and were redone cold.
    pub cert_fallbacks: u32,
}

/// Result of a scheduling round.
#[derive(Debug, Clone)]
pub struct ScheduleResult {
    pub allocation: Allocation,
    /// The LP objective: total allocated bandwidth.
    pub total_bandwidth: f64,
    /// Shadow price per directed link: the marginal reduction in total
    /// allocated bandwidth per extra unit of that link's capacity (from
    /// the LP duals). Zero for uncongested links; reset to zeros by
    /// [`harden`] (the repaired allocation is no longer an LP vertex).
    pub link_prices: Vec<f64>,
    /// Kernel counters from the scheduling LP solve that produced this
    /// result. Hardening re-placements are separate single-demand solves
    /// and are not reflected here, so the counts are pinnable goldens for
    /// the round's main LP. Under row generation these are the counters
    /// of the *final* warm re-solve (the one whose vertex is returned);
    /// the per-round history lives in [`ScheduleResult::rowgen`].
    pub solve_stats: SolveStats,
    /// Row-generation instrumentation; `None` when the full formulation
    /// was built directly.
    pub rowgen: Option<RowGenStats>,
}

/// Registry handles for the solver/scheduling metric family, registered
/// once and shared by every solve (including parallel hardening
/// speculation — counter adds commute, so totals stay deterministic).
struct SchedMetrics {
    solves: Arc<Counter>,
    solve_errors: Arc<Counter>,
    lp_iterations: Arc<Counter>,
    lp_pivots: Arc<Counter>,
    solve_ms: Arc<Histogram>,
    rounds: Arc<Counter>,
    round_violations: Arc<Counter>,
    round_ms: Arc<Histogram>,
    rowgen_rounds: Arc<Counter>,
    rowgen_rows: Arc<Counter>,
    rowgen_separation_ns: Arc<Histogram>,
    /// Phase-attribution alias of `rowgen_separation_ns` in the
    /// `bate_solve_phase_*` family (registered by `bate-lp`, observed
    /// here — separation is a solver phase that happens to live in the
    /// scheduler).
    solve_phase_separation_ns: Arc<Histogram>,
}

fn sched_metrics() -> &'static SchedMetrics {
    static M: OnceLock<SchedMetrics> = OnceLock::new();
    M.get_or_init(|| {
        let r = Registry::global();
        SchedMetrics {
            solves: r.counter("bate_solver_solves_total"),
            solve_errors: r.counter("bate_solver_errors_total"),
            lp_iterations: r.counter("bate_solver_iterations_total"),
            lp_pivots: r.counter("bate_solver_pivots_total"),
            solve_ms: r.histogram("bate_solver_solve_ms"),
            rounds: r.counter("bate_sched_rounds_total"),
            round_violations: r.counter("bate_sched_hard_violations_total"),
            round_ms: r.histogram("bate_sched_round_ms"),
            rowgen_rounds: r.counter("bate_rowgen_rounds_total"),
            rowgen_rows: r.counter("bate_rowgen_rows_added_total"),
            rowgen_separation_ns: r.histogram("bate_rowgen_separation_ns"),
            solve_phase_separation_ns: r.histogram("bate_solve_phase_separation_ns"),
        }
    })
}

/// Force-register the solver/scheduling/row-generation metric families
/// with the global registry so they render (at zero) in Prometheus
/// expositions before the first solve — the controller calls this at
/// startup so `batectl stats` always shows the full family set.
pub fn register_metrics() {
    let _ = sched_metrics();
    // The rest of the phase-attribution family lives in the solver.
    bate_lp::register_phase_metrics();
}

/// Schedule all demands on the full link capacities.
pub fn schedule(ctx: &TeContext, demands: &[BaDemand]) -> Result<ScheduleResult, SolveError> {
    let caps: Vec<f64> = ctx.topo.links().map(|(_, l)| l.capacity).collect();
    schedule_with_capacities(ctx, demands, &caps)
}

/// [`schedule`] followed by a hardening pass.
///
/// The LP guarantees the *relaxed* availability of Eq. 4; when its optimum
/// splits a demand's flow, the hard (all-or-nothing) availability can fall
/// below β. Hardening walks the violating demands (highest β first), lifts
/// each one out of the allocation, and re-places it alone on the residual
/// capacity — the single-demand LP concentrates flow on reliable tunnels
/// and its result is verified against the hard criterion before adoption.
/// Demands that cannot be repaired keep their LP flows (still
/// relaxed-guaranteed).
pub fn schedule_hardened(
    ctx: &TeContext,
    demands: &[BaDemand],
) -> Result<ScheduleResult, SolveError> {
    let m = sched_metrics();
    // Traced rounds get a span so the master solve and the hardening
    // sweep's fan-out solves all parent under one node.
    let traced = bate_obs::context::current().is_some();
    let _sp = traced.then(|| bate_obs::span!("sched.harden", demands = demands.len()));
    let t0 = std::time::Instant::now();
    let mut result = schedule(ctx, demands)?;
    let violations = harden(ctx, demands, &mut result);
    m.rounds.inc();
    m.round_violations.add(violations as u64);
    m.round_ms.observe_ms(t0.elapsed());
    // Trace contract: this event fires from the caller's (sequential)
    // context; the parallel hardening internals above record only to the
    // registry. Fields carry deterministic values only.
    bate_obs::info!(
        "sched.round",
        demands = demands.len(),
        violations = violations,
        total_bandwidth = result.total_bandwidth,
        lp_iterations = result.solve_stats.iterations(),
        lp_pivots = result.solve_stats.pivots,
    );
    Ok(result)
}

/// Place a single demand with a **hard** availability guarantee on the
/// given residual capacities.
///
/// Step 1 solves the single-demand LP and verifies its allocation against
/// the hard criterion. When the LP vertex falls short (the minimum-
/// bandwidth objective avoids paying for protection), step 2 falls back to
/// n+1-style replication: carry the full rate on each of the `k` most
/// available tunnels of every pair, growing `k` until the joint hard
/// availability reaches β or tunnels run out. Returns `None` when no hard
/// placement exists within the residual capacity.
pub fn place_single_hard(
    ctx: &TeContext,
    demand: &BaDemand,
    capacities: &[f64],
) -> Option<Allocation> {
    if let Ok(res) = schedule_with_capacities(ctx, std::slice::from_ref(demand), capacities) {
        if res.allocation.meets_target(ctx, demand) {
            return Some(res.allocation);
        }
    }
    // Replication fallback: k copies on the k most-available tunnels.
    let max_tunnels = demand
        .bandwidth
        .iter()
        .map(|&(pair, _)| ctx.tunnels.tunnels(pair).len())
        .max()
        .unwrap_or(0);
    for k in 1..=max_tunnels {
        let mut alloc = Allocation::new();
        let mut residual = capacities.to_vec();
        let mut feasible = true;
        for &(pair, b) in &demand.bandwidth {
            let tunnels = ctx.tunnels.tunnels(pair);
            let avail = ctx.tunnels.availabilities(pair);
            let mut order: Vec<usize> = (0..tunnels.len()).collect();
            order.sort_by(|&a, &c| avail[c].partial_cmp(&avail[a]).unwrap().then(a.cmp(&c)));
            let mut placed = 0usize;
            for &t in &order {
                if placed == k.min(tunnels.len()) {
                    break;
                }
                let cap = tunnels[t]
                    .links
                    .iter()
                    .map(|l| residual[l.index()])
                    .fold(f64::INFINITY, f64::min);
                if cap + 1e-9 < b {
                    continue; // this tunnel can't carry a full copy
                }
                alloc.set(demand.id, TunnelId { pair, tunnel: t }, b);
                for &l in &tunnels[t].links {
                    residual[l.index()] -= b;
                }
                placed += 1;
            }
            if placed == 0 {
                feasible = false;
                break;
            }
        }
        if feasible && alloc.meets_target(ctx, demand) {
            return Some(alloc);
        }
    }
    None
}

/// In-place hardening pass (see [`schedule_hardened`]). Returns how many
/// demands still violate their hard target afterwards.
///
/// Parallelized speculatively while staying **deterministic for any thread
/// count**: the violation scan and the single-demand re-placements (each an
/// independent LP against the pre-hardening snapshot) fan out over
/// [`bate_lp::par_map`] for *every* violating demand; adoption then walks
/// the fixed order (highest β first) sequentially, revalidating each
/// speculative placement against the live residual capacity — an earlier
/// adoption may have consumed capacity the speculation assumed — and
/// re-solving inline only when the speculation no longer fits. Both the
/// speculation set and every adoption decision are functions of the demand
/// order alone, never of worker scheduling.
pub fn harden(ctx: &TeContext, demands: &[BaDemand], result: &mut ScheduleResult) -> usize {
    let mut order: Vec<&BaDemand> = demands.iter().collect();
    order.sort_by(|a, b| {
        b.beta
            .partial_cmp(&a.beta)
            .unwrap()
            .then_with(|| a.id.cmp(&b.id))
    });

    // Parallel violation scan (read-only; a demand's hard availability
    // depends only on its own flows, so adoption below cannot change
    // another demand's violation status).
    let snapshot = &result.allocation;
    let flags = bate_lp::par_map(&order, |demand| !snapshot.meets_target(ctx, demand));
    let violating: Vec<&BaDemand> = order
        .iter()
        .zip(&flags)
        .filter(|(_, &v)| v)
        .map(|(&d, _)| d)
        .collect();

    // Speculative re-placement of every violating demand against the
    // snapshot residual (lift the demand out, place it alone). Inside a
    // trace, each worker slot carries an explicit context handoff —
    // derived on this (parent) thread, so span identities are functions
    // of the slot index, never of worker scheduling; outside a trace the
    // handoffs are inert and the workers stay silent.
    let handoffs = bate_obs::context::fan_out(violating.len(), "harden.place");
    let spec_inputs: Vec<(&BaDemand, bate_obs::Handoff)> =
        violating.iter().copied().zip(handoffs).collect();
    let speculative: Vec<Option<Allocation>> = bate_lp::par_map(&spec_inputs, |(demand, h)| {
        let _g = h.enter();
        let mut without = snapshot.clone();
        without.remove_demand(demand.id);
        let residual = without.residual_capacities(ctx);
        place_single_hard(ctx, demand, &residual)
    });
    // Materialize each handoff span with one close-event, emitted *here*
    // on the parent thread after the join — sequential slot order, so the
    // trace stays deterministic while the tree stays connected (the
    // workers' lp.solve spans parent on these).
    for (slot, (demand, h)) in spec_inputs.iter().enumerate() {
        if h.ctx().is_some() {
            bate_obs::trace::emit_with_ctx(
                bate_obs::trace::Level::Debug,
                module_path!(),
                "harden.place",
                h.ctx(),
                vec![
                    ("slot", bate_obs::trace::Value::from(slot)),
                    ("demand", bate_obs::trace::Value::from(demand.id.0)),
                ],
            );
        }
    }

    // Sequential fixed-order adoption with revalidation.
    let mut violations = 0;
    for (demand, spec) in violating.into_iter().zip(speculative) {
        let mut without = result.allocation.clone();
        without.remove_demand(demand.id);
        let residual = without.residual_capacities(ctx);
        // The hard-availability check inside `place_single_hard` is
        // residual-independent, so a speculation that still fits the live
        // residual is exactly what a fresh solve would be allowed to
        // return; only the capacity side needs rechecking.
        let chosen = match spec {
            Some(single) if single.respects_capacity_with(ctx, &residual) => Some(single),
            _ => place_single_hard(ctx, demand, &residual),
        };
        match chosen {
            Some(single) => {
                without.adopt_demand(demand.id, &single);
                result.allocation = without;
            }
            None => violations += 1,
        }
    }
    result.total_bandwidth = result.allocation.total_allocated();
    // The repaired allocation is no longer the LP vertex the duals priced.
    result.link_prices = vec![0.0; ctx.topo.num_links()];
    violations
}

/// Schedule all demands against explicit per-link capacities (used by the
/// fixed admission check, which schedules a newcomer on residual capacity).
/// Mode is [`SolveMode::Auto`]: large instances solve by row generation,
/// small ones build the full formulation.
pub fn schedule_with_capacities(
    ctx: &TeContext,
    demands: &[BaDemand],
    capacities: &[f64],
) -> Result<ScheduleResult, SolveError> {
    schedule_with_capacities_mode(ctx, demands, capacities, SolveMode::Auto)
}

/// [`schedule`] with an explicit [`SolveMode`] (goldens pin Full-vs-RowGen
/// equivalence through this).
pub fn schedule_mode(
    ctx: &TeContext,
    demands: &[BaDemand],
    mode: SolveMode,
) -> Result<ScheduleResult, SolveError> {
    let caps: Vec<f64> = ctx.topo.links().map(|(_, l)| l.capacity).collect();
    schedule_with_capacities_mode(ctx, demands, &caps, mode)
}

/// Build the full scheduling LP of Eq. 1–7 without solving it.
///
/// This is the entry point for the exact certifying oracle and the
/// differential harness (DESIGN.md §5d): they re-solve or certify the
/// very same [`Problem`] the float path solves, so the model must come
/// from the same builder. Row order matches `SolveMode::Full` exactly.
pub fn scheduling_lp(
    ctx: &TeContext,
    demands: &[BaDemand],
    capacities: &[f64],
) -> Result<Problem, SolveError> {
    assert_eq!(capacities.len(), ctx.topo.num_links());
    let tracked = ctx.scenarios.most_probable_singles(ROWGEN_SEED_SINGLES);
    let profiles: Vec<MaskedProfile> =
        bate_lp::par_map(demands, |d| MaskedProfile::collapse(ctx, d, &tracked));
    Ok(build_lp(ctx, demands, capacities, &profiles, None)?.p)
}

/// The LP under construction, with the variable/row handles the solve
/// loop and the extraction code need.
struct BuiltLp {
    p: Problem,
    /// `f[d][local pair][tunnel]`.
    f_vars: Vec<Vec<Vec<VarId>>>,
    /// `B[d][collapsed state]`.
    b_vars: Vec<Vec<VarId>>,
    /// Row index of each link's capacity constraint (None: link unused).
    capacity_row: Vec<Option<usize>>,
}

/// Build the scheduling LP of Eq. 1–7. With `seeded = None` every
/// qualification row is emitted (the full formulation, row order
/// unchanged from the original builder); with `seeded = Some(flags)` only
/// the flagged states' qualification rows are — the row-generation master.
fn build_lp(
    ctx: &TeContext,
    demands: &[BaDemand],
    capacities: &[f64],
    profiles: &[MaskedProfile],
    seeded: Option<&[Vec<bool>]>,
) -> Result<BuiltLp, SolveError> {
    let mut p = Problem::new(Sense::Minimize);

    // f[d][local pair][tunnel]
    let mut f_vars: Vec<Vec<Vec<VarId>>> = Vec::with_capacity(demands.len());
    for demand in demands {
        let mut per_demand = Vec::with_capacity(demand.bandwidth.len());
        for &(pair, _) in &demand.bandwidth {
            let tunnels = ctx.tunnels.tunnels(pair);
            let vars: Vec<VarId> = (0..tunnels.len())
                .map(|t| {
                    let v = p.add_var(&format!("f[{}][{pair}][{t}]", demand.id.0));
                    p.set_objective(v, 1.0);
                    v
                })
                .collect();
            per_demand.push(vars);
        }
        f_vars.push(per_demand);
    }

    let mut b_vars: Vec<Vec<VarId>> = Vec::with_capacity(demands.len());
    for (di, demand) in demands.iter().enumerate() {
        // Eq. 1: demand coverage in the no-failure case.
        for (ki, &(_, b)) in demand.bandwidth.iter().enumerate() {
            let terms: Vec<(VarId, f64)> = f_vars[di][ki].iter().map(|&v| (v, 1.0)).collect();
            if terms.is_empty() {
                return Err(SolveError::BadModel(format!(
                    "demand {} requests a pair with no tunnels",
                    demand.id.0
                )));
            }
            p.add_constraint(&terms, Relation::Ge, b);
        }

        // Eq. 2–4 over collapsed states. Every B variable exists up front
        // regardless of mode (rows can be appended later, columns cannot).
        let profile = &profiles[di];
        let bv: Vec<VarId> = (0..profile.len())
            .map(|s| p.add_bounded_var(&format!("B[{}][{s}]", demand.id.0), 1.0))
            .collect();
        for (si, state) in profile.states.iter().enumerate() {
            if let Some(flags) = seeded {
                if !flags[di][si] {
                    continue;
                }
            }
            for (ki, &(_, b)) in demand.bandwidth.iter().enumerate() {
                // b * B_d^s - Σ_t f v <= 0
                let mut terms: Vec<(VarId, f64)> = vec![(bv[si], b)];
                for (ti, &fv) in f_vars[di][ki].iter().enumerate() {
                    if state.masks[ki] >> ti & 1 == 1 {
                        terms.push((fv, -1.0));
                    }
                }
                p.add_constraint(&terms, Relation::Le, 0.0);
            }
        }
        let avail_terms: Vec<(VarId, f64)> = bv
            .iter()
            .zip(&profile.states)
            .map(|(&v, s)| (v, s.probability))
            .collect();
        p.add_constraint(&avail_terms, Relation::Ge, demand.beta);
        b_vars.push(bv);
    }

    // Eq. 6: link capacity.
    let mut per_link_terms: Vec<Vec<(VarId, f64)>> = vec![Vec::new(); ctx.topo.num_links()];
    for (di, demand) in demands.iter().enumerate() {
        for (ki, &(pair, _)) in demand.bandwidth.iter().enumerate() {
            for (ti, &fv) in f_vars[di][ki].iter().enumerate() {
                let path = ctx.tunnels.path(TunnelId { pair, tunnel: ti });
                for &l in &path.links {
                    per_link_terms[l.index()].push((fv, 1.0));
                }
            }
        }
    }
    let mut capacity_row: Vec<Option<usize>> = vec![None; ctx.topo.num_links()];
    for (li, terms) in per_link_terms.iter().enumerate() {
        if !terms.is_empty() {
            capacity_row[li] = Some(p.add_constraint(terms, Relation::Le, capacities[li]));
        }
    }
    Ok(BuiltLp {
        p,
        f_vars,
        b_vars,
        capacity_row,
    })
}

/// Sum the flow values of the tunnels whose mask bit is set — the
/// bitset sweep at the heart of the separation oracle. Bits are consumed
/// lowest-first, so the summation order matches the full formulation's
/// tunnel-index walk exactly (bit-identical accumulation).
fn masked_flow_sum(mut mask: u64, f: &[f64]) -> f64 {
    let mut sum = 0.0;
    while mask != 0 {
        sum += f[mask.trailing_zeros() as usize];
        mask &= mask - 1;
    }
    sum
}

/// Separation oracle for one demand: evaluate every not-yet-added
/// qualification row `b·B_s − Σ_{t up} f_t ≤ 0` of Eq. 2–3 at the
/// candidate point and return the `(state, pair)` indices violated beyond
/// `1e-9 · (1 + b)` — the same relative scale the golden equivalence
/// bound uses, so a clean pass certifies full-formulation optimality.
///
/// `f_vals[ki][ti]` are the demand's tunnel flows, `b_vals[si]` its
/// delivered-fraction variables, and `added[si * pairs + ki]` flags rows
/// already in the master (skipped — the LP enforces them already, and
/// skipping guarantees the cutting-plane loop terminates).
pub fn separate_demand(
    demand: &BaDemand,
    profile: &MaskedProfile,
    f_vals: &[Vec<f64>],
    b_vals: &[f64],
    added: &[bool],
) -> Vec<(usize, usize)> {
    let pairs = demand.bandwidth.len();
    let mut out = Vec::new();
    for (si, state) in profile.states.iter().enumerate() {
        for (ki, &(_, b)) in demand.bandwidth.iter().enumerate() {
            if added[si * pairs + ki] {
                continue;
            }
            let lhs = b * b_vals[si] - masked_flow_sum(state.masks[ki], &f_vals[ki]);
            if lhs > 1e-9 * (1.0 + b.abs()) {
                out.push((si, ki));
            }
        }
    }
    out
}

/// Schedule with an explicit capacity vector and [`SolveMode`].
///
/// The row-generation path is *exactly equivalent* to the full build: the
/// master LP's feasible set is a superset (fewer rows), so its optimum
/// can only be lower; the loop stops only when the separation oracle
/// finds no violated row, i.e. the master optimum is feasible for — and
/// therefore optimal in — the full formulation. An infeasible master
/// means the full LP (a subset of its points) is infeasible too, so
/// `Err(Infeasible)` needs no further rows.
pub fn schedule_with_capacities_mode(
    ctx: &TeContext,
    demands: &[BaDemand],
    capacities: &[f64],
    mode: SolveMode,
) -> Result<ScheduleResult, SolveError> {
    assert_eq!(capacities.len(), ctx.topo.num_links());

    let seed_singles = match mode {
        SolveMode::RowGen { seed_singles } => seed_singles,
        _ => ROWGEN_SEED_SINGLES,
    };
    let tracked = ctx.scenarios.most_probable_singles(seed_singles);
    // Collapsing sweeps every enumerated scenario per demand; profiles are
    // independent, so fan the sweep out (deterministic fork-join).
    let profiles: Vec<MaskedProfile> =
        bate_lp::par_map(demands, |d| MaskedProfile::collapse(ctx, d, &tracked));

    let full_qual_rows: usize = profiles
        .iter()
        .zip(demands)
        .map(|(pr, d)| pr.len() * d.bandwidth.len())
        .sum();
    let use_rowgen = match mode {
        SolveMode::Full => false,
        SolveMode::RowGen { .. } => true,
        SolveMode::Auto => full_qual_rows > ROWGEN_AUTO_THRESHOLD,
    };

    let m = sched_metrics();
    if !use_rowgen {
        let built = build_lp(ctx, demands, capacities, &profiles, None)?;
        let t0 = Instant::now();
        let sol = match built.p.solve() {
            Ok(sol) => sol,
            Err(e) => {
                m.solve_errors.inc();
                return Err(e);
            }
        };
        m.solves.inc();
        m.lp_iterations.add(sol.stats.iterations());
        m.lp_pivots.add(sol.stats.pivots);
        m.solve_ms.observe_ms(t0.elapsed());
        return Ok(extract_result(ctx, demands, &built, sol, None));
    }

    // --- Cutting-plane row generation ---------------------------------
    // Seed states: the all-up state plus wherever the tracked most-likely
    // single-failure scenarios collapsed to.
    let seeded: Vec<Vec<bool>> = profiles
        .iter()
        .map(|pr| {
            let mut flags = vec![false; pr.len()];
            if !flags.is_empty() {
                flags[0] = true; // scenario 0 (all-up) is always state 0
            }
            for &si in &pr.tracked_states {
                flags[si] = true;
            }
            flags
        })
        .collect();

    let mut built = build_lp(ctx, demands, capacities, &profiles, Some(&seeded))?;
    let seed_qual_rows: usize = seeded
        .iter()
        .zip(demands)
        .map(|(flags, d)| flags.iter().filter(|&&f| f).count() * d.bandwidth.len())
        .sum();
    let mut rg = RowGenStats {
        full_rows: (built.p.num_constraints() + full_qual_rows - seed_qual_rows) as u32,
        ..RowGenStats::default()
    };

    // Row-presence flags, `added[di][si * pairs + ki]`.
    let mut added: Vec<Vec<bool>> = demands
        .iter()
        .enumerate()
        .map(|(di, d)| {
            let pairs = d.bandwidth.len();
            let mut flags = vec![false; profiles[di].len() * pairs];
            for (si, &s) in seeded[di].iter().enumerate() {
                if s {
                    for ki in 0..pairs {
                        flags[si * pairs + ki] = true;
                    }
                }
            }
            flags
        })
        .collect();

    let order: Vec<usize> = (0..demands.len()).collect();
    let mut ws = bate_lp::Workspace::new();
    // Whether `ws` is a fresh workspace (no warm basis to install). A
    // warm-started master can degenerate-cycle into the simplex guards
    // (IterationLimit) even when the identical LP solves cleanly from
    // scratch — the warm install's tolerance repairs can drop phase 1
    // into a stalled near-feasible corner. Any error on a warm attempt is
    // therefore retried cold once before being propagated, so the rowgen
    // path never fails on an instance the full formulation would solve.
    let mut ws_cold = true;
    let sol = loop {
        let t0 = Instant::now();
        let sol = match bate_lp::simplex::solve_with(&built.p, &[], &mut ws) {
            Ok(sol) => sol,
            Err(_) if !ws_cold => {
                rg.cold_verifies += 1;
                ws = bate_lp::Workspace::new();
                match bate_lp::simplex::solve_with(&built.p, &[], &mut ws) {
                    Ok(sol) => sol,
                    Err(e) => {
                        m.solve_errors.inc();
                        return Err(e);
                    }
                }
            }
            Err(e) => {
                m.solve_errors.inc();
                return Err(e);
            }
        };
        ws_cold = false;
        m.solves.inc();
        m.lp_iterations.add(sol.stats.iterations());
        m.lp_pivots.add(sol.stats.pivots);
        m.solve_ms.observe_ms(t0.elapsed());
        rg.rounds += 1;

        // Parallel bitset sweep over every demand's collapsed states.
        let t_sep = Instant::now();
        let violated: Vec<Vec<(usize, usize)>> = bate_lp::par_map(&order, |&di| {
            let f_vals: Vec<Vec<f64>> = built.f_vars[di]
                .iter()
                .map(|per_pair| per_pair.iter().map(|&v| sol[v]).collect())
                .collect();
            let b_vals: Vec<f64> = built.b_vars[di].iter().map(|&v| sol[v]).collect();
            separate_demand(&demands[di], &profiles[di], &f_vals, &b_vals, &added[di])
        });
        rg.separation_ns += t_sep.elapsed().as_nanos() as u64;

        let fresh: usize = violated.iter().map(|v| v.len()).sum();
        rg.rows_per_round.push(fresh as u32);
        if fresh == 0 {
            // Clean separation — but only accept a *cold-solved* optimum.
            // A warm install repairs violated appended rows through
            // `PHASE1_TOL`-scale tolerances, and on ill-conditioned
            // instances (availability rows mix ~1e3 bandwidths with
            // ~1e-12 scenario probabilities) that perturbation moves the
            // claimed optimum by far more than the golden equivalence
            // bound, in either direction. Re-solving the final master
            // from scratch routes the accepted vertex through the exact
            // same code path the full formulation uses.
            if !sol.stats.warm_start {
                break sol; // cold-verified: optimal for the full LP
            }
            rg.cold_verifies += 1;
            ws = bate_lp::Workspace::new();
            ws_cold = true;
            continue;
        }
        rg.rows_added += fresh as u64;
        for (di, rows) in violated.iter().enumerate() {
            let pairs = demands[di].bandwidth.len();
            for &(si, ki) in rows {
                let b = demands[di].bandwidth[ki].1;
                let mut terms: Vec<(VarId, f64)> = vec![(built.b_vars[di][si], b)];
                for (ti, &fv) in built.f_vars[di][ki].iter().enumerate() {
                    if profiles[di].states[si].masks[ki] >> ti & 1 == 1 {
                        terms.push((fv, -1.0));
                    }
                }
                built.p.add_constraint(&terms, Relation::Le, 0.0);
                added[di][si * pairs + ki] = true;
            }
        }
        // O(nnz of the new rows): extend the prepared layout and re-arm
        // the warm basis instead of rebuilding. The guard cannot fire on
        // this loop's problem (same vars, appended rows only), but fall
        // back to a cold workspace rather than trust that.
        if !ws.append_rows(&built.p) {
            ws = bate_lp::Workspace::new();
        }
    };
    rg.master_rows = built.p.num_constraints() as u32;
    m.rowgen_rounds.add(rg.rounds as u64);
    m.rowgen_rows.add(rg.rows_added);
    m.rowgen_separation_ns
        .observe_ns(std::time::Duration::from_nanos(rg.separation_ns));
    m.solve_phase_separation_ns
        .observe_ns(std::time::Duration::from_nanos(rg.separation_ns));

    Ok(extract_result(ctx, demands, &built, sol, Some(rg)))
}

/// Turn the final LP vertex into a [`ScheduleResult`]: link shadow prices
/// from the duals, then the sparse tunnel allocation.
fn extract_result(
    ctx: &TeContext,
    demands: &[BaDemand],
    built: &BuiltLp,
    sol: bate_lp::Solution,
    rowgen: Option<RowGenStats>,
) -> ScheduleResult {
    // Link shadow prices from the LP duals. For this minimization the dual
    // of a Le capacity row is ≤ 0 (more capacity can only reduce the total
    // bandwidth needed); report the magnitude as the link's price.
    let link_prices: Vec<f64> = match &sol.duals {
        Some(duals) => built
            .capacity_row
            .iter()
            .map(|row| row.map(|r| duals[r].abs()).unwrap_or(0.0))
            .collect(),
        None => vec![0.0; ctx.topo.num_links()],
    };

    let mut allocation = Allocation::new();
    for (di, demand) in demands.iter().enumerate() {
        for (ki, &(pair, _)) in demand.bandwidth.iter().enumerate() {
            for (ti, &fv) in built.f_vars[di][ki].iter().enumerate() {
                let f = sol[fv];
                if f > 1e-9 {
                    allocation.set(demand.id, TunnelId { pair, tunnel: ti }, f);
                }
            }
        }
    }
    ScheduleResult {
        total_bandwidth: sol.objective,
        allocation,
        link_prices,
        solve_stats: sol.stats,
        rowgen,
    }
}

impl Allocation {
    /// Capacity check against explicit capacities. Used by the hardening
    /// pass to revalidate speculative placements against the live residual,
    /// and by tests of the residual-capacity scheduling path.
    pub fn respects_capacity_with(&self, ctx: &TeContext, capacities: &[f64]) -> bool {
        let loads = self.link_loads(ctx);
        loads
            .iter()
            .zip(capacities)
            .all(|(load, cap)| *load <= cap + 1e-6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::demand::BaDemand;
    use bate_net::{topologies, ScenarioSet};
    use bate_routing::{RoutingScheme, TunnelSet};

    fn ctx_toy4(max_failures: usize) -> (bate_net::Topology, TunnelSet, ScenarioSet) {
        let topo = topologies::toy4();
        let tunnels = TunnelSet::compute(&topo, RoutingScheme::Ksp(2));
        let scenarios = ScenarioSet::enumerate(&topo, max_failures);
        (topo, tunnels, scenarios)
    }

    /// The motivating example (Fig. 2(d)): user1 6 Gbps @ 99 % must go on
    /// the reliable DC1→DC3→DC4 path; user2 12 Gbps @ 90 % can use both.
    #[test]
    fn motivating_example_allocation() {
        let (topo, tunnels, scenarios) = ctx_toy4(4);
        let ctx = TeContext::new(&topo, &tunnels, &scenarios);
        let n = |s: &str| topo.find_node(s).unwrap();
        let pair = tunnels.pair_index(n("DC1"), n("DC4")).unwrap();
        let user1 = BaDemand::single(1, pair, 6000.0, 0.99);
        let user2 = BaDemand::single(2, pair, 12_000.0, 0.90);

        let res = schedule(&ctx, &[user1.clone(), user2.clone()]).unwrap();
        let a = &res.allocation;
        assert!(a.respects_capacity(&ctx, 1e-6));
        // Both demands' hard availability targets are met.
        assert!(a.meets_target(&ctx, &user1), "user1 availability not met");
        assert!(a.meets_target(&ctx, &user2), "user2 availability not met");

        // user1 must avoid the risky DC1→DC2→DC4 path: the flow it carries
        // on the risky tunnel cannot be essential. Check user1 survives the
        // DC1-DC2 failure.
        let g = topo.link(topo.find_link(n("DC1"), n("DC2")).unwrap()).group;
        let sc = bate_net::Scenario::with_failures(&topo, &[g]);
        assert!(
            a.delivered(&ctx, user1.id, pair, &sc) >= 6000.0 * 0.999,
            "user1 must survive the 4% link failing"
        );
    }

    #[test]
    fn infeasible_when_capacity_exceeded() {
        let (topo, tunnels, scenarios) = ctx_toy4(2);
        let ctx = TeContext::new(&topo, &tunnels, &scenarios);
        let n = |s: &str| topo.find_node(s).unwrap();
        let pair = tunnels.pair_index(n("DC1"), n("DC4")).unwrap();
        // 30 Gbps through a 20 Gbps cut.
        let d = BaDemand::single(1, pair, 30_000.0, 0.5);
        assert_eq!(schedule(&ctx, &[d]).unwrap_err(), SolveError::Infeasible);
    }

    #[test]
    fn infeasible_when_availability_unreachable() {
        let (topo, tunnels, scenarios) = ctx_toy4(4);
        let ctx = TeContext::new(&topo, &tunnels, &scenarios);
        let n = |s: &str| topo.find_node(s).unwrap();
        let pair = tunnels.pair_index(n("DC1"), n("DC4")).unwrap();
        // 15 Gbps needs both paths, but the combined availability of
        // "both paths up" is below 0.9999.
        let d = BaDemand::single(1, pair, 15_000.0, 0.9999);
        assert_eq!(schedule(&ctx, &[d]).unwrap_err(), SolveError::Infeasible);
    }

    #[test]
    fn scheduling_minimizes_bandwidth() {
        let (topo, tunnels, scenarios) = ctx_toy4(2);
        let ctx = TeContext::new(&topo, &tunnels, &scenarios);
        let n = |s: &str| topo.find_node(s).unwrap();
        let pair = tunnels.pair_index(n("DC1"), n("DC4")).unwrap();
        // A lax target is satisfiable with exactly the demanded bandwidth.
        let d = BaDemand::single(1, pair, 1000.0, 0.5);
        let res = schedule(&ctx, &[d]).unwrap();
        assert!((res.total_bandwidth - 1000.0).abs() < 1e-6);
    }

    #[test]
    fn high_availability_costs_more_bandwidth() {
        let (topo, tunnels, scenarios) = ctx_toy4(4);
        let ctx = TeContext::new(&topo, &tunnels, &scenarios);
        let n = |s: &str| topo.find_node(s).unwrap();
        let pair = tunnels.pair_index(n("DC1"), n("DC4")).unwrap();
        let lax = schedule(&ctx, &[BaDemand::single(1, pair, 5000.0, 0.5)])
            .unwrap()
            .total_bandwidth;
        let strict = schedule(&ctx, &[BaDemand::single(1, pair, 5000.0, 0.9999)])
            .unwrap()
            .total_bandwidth;
        assert!(
            strict > lax,
            "99.99% target should need protection bandwidth ({strict} vs {lax})"
        );
    }

    #[test]
    fn harden_is_deterministic_across_thread_counts() {
        let (topo, tunnels, scenarios) = ctx_toy4(4);
        let ctx = TeContext::new(&topo, &tunnels, &scenarios);
        let n = |s: &str| topo.find_node(s).unwrap();
        let pair = tunnels.pair_index(n("DC1"), n("DC4")).unwrap();
        // 12 Gbps @ 99%: no single tunnel can carry it, so the LP must
        // split the flow and the hard availability of the split falls
        // short — the hardening pass has real work to do. A second,
        // repairable demand rides along.
        let demands = vec![
            BaDemand::single(1, pair, 12_000.0, 0.99),
            BaDemand::single(2, pair, 6_000.0, 0.95),
        ];

        // Non-vacuity: at least one demand must violate pre-harden, or
        // this test would not exercise the speculative parallel path.
        let pre = schedule(&ctx, &demands).unwrap();
        assert!(
            demands.iter().any(|d| !pre.allocation.meets_target(&ctx, d)),
            "test instance no longer triggers hardening"
        );

        let run = |threads: usize| {
            bate_lp::par::with_thread_count(threads, || {
                let mut result = schedule(&ctx, &demands).unwrap();
                let violations = harden(&ctx, &demands, &mut result);
                (violations, result)
            })
        };
        let (v1, r1) = run(1);
        for threads in [2, 3, 8] {
            let (v, r) = run(threads);
            assert_eq!(v1, v, "violation count differs at {threads} threads");
            assert_eq!(
                r1.total_bandwidth.to_bits(),
                r.total_bandwidth.to_bits(),
                "total bandwidth differs at {threads} threads"
            );
            for d in &demands {
                let a: Vec<_> = r1.allocation.flows_of(d.id).collect();
                let b: Vec<_> = r.allocation.flows_of(d.id).collect();
                assert_eq!(a.len(), b.len(), "flow count differs at {threads} threads");
                for ((ta, fa), (tb, fb)) in a.iter().zip(&b) {
                    assert_eq!(ta, tb, "tunnel differs at {threads} threads");
                    assert_eq!(
                        fa.to_bits(),
                        fb.to_bits(),
                        "flow differs at {threads} threads"
                    );
                }
            }
        }
    }

    #[test]
    fn harden_fan_out_produces_a_well_formed_span_tree() {
        let (topo, tunnels, scenarios) = ctx_toy4(4);
        let ctx = TeContext::new(&topo, &tunnels, &scenarios);
        let n = |s: &str| topo.find_node(s).unwrap();
        let pair = tunnels.pair_index(n("DC1"), n("DC4")).unwrap();
        // Same violating instance as the determinism test: hardening has
        // real speculative fan-out work to do.
        let demands = vec![
            BaDemand::single(1, pair, 12_000.0, 0.99),
            BaDemand::single(2, pair, 6_000.0, 0.95),
        ];

        let ring = bate_obs::trace::RingBufferSubscriber::new(4096);
        bate_obs::trace::install(ring.clone(), bate_obs::SimClock::shared());
        let root_trace;
        {
            let root = bate_obs::context::root("harden-test", 9);
            root_trace = root.ctx.trace_id;
            schedule_hardened(&ctx, &demands).unwrap();
        }
        // The thread-local span stack fully unwound with the guards.
        assert!(!bate_obs::context::current().is_some());
        bate_obs::trace::uninstall();

        // Filter to this trace: concurrent tests' events are untraced
        // (trace 0) and other traces never share this root id.
        let events: Vec<bate_obs::Event> = ring
            .events()
            .into_iter()
            .filter(|e| e.ctx.trace_id == root_trace)
            .collect();
        bate_obs::flight::validate_tree(&events).expect("span tree well-formed");

        let harden_span = events
            .iter()
            .find(|e| e.name == "sched.harden")
            .expect("sched.harden span closed");
        let places: Vec<&bate_obs::Event> =
            events.iter().filter(|e| e.name == "harden.place").collect();
        assert!(!places.is_empty(), "fan-out must materialize handoff spans");
        for p in &places {
            assert_eq!(
                p.ctx.parent_span_id, harden_span.ctx.span_id,
                "every handoff span parents on sched.harden"
            );
        }
        // Slot identities are distinct: no cross-thread leakage between
        // worker slots.
        let place_ids: std::collections::BTreeSet<u64> =
            places.iter().map(|e| e.ctx.span_id).collect();
        assert_eq!(place_ids.len(), places.len(), "handoff span ids collide");
        // The workers' speculative solves parent on their own slot's
        // handoff span (cross-thread propagation via Handoff::enter).
        assert!(
            events
                .iter()
                .any(|e| e.name == "lp.solve" && place_ids.contains(&e.ctx.parent_span_id)),
            "speculative lp.solve spans must parent on handoff spans"
        );
    }

    #[test]
    fn residual_capacity_scheduling() {
        let (topo, tunnels, scenarios) = ctx_toy4(2);
        let ctx = TeContext::new(&topo, &tunnels, &scenarios);
        let n = |s: &str| topo.find_node(s).unwrap();
        let pair = tunnels.pair_index(n("DC1"), n("DC4")).unwrap();
        let d = BaDemand::single(1, pair, 8000.0, 0.5);
        // Leave only 4 Gbps on every link: the 8 Gbps demand splits, but if
        // we zero one path's capacity it becomes infeasible at 0.9 target.
        let caps: Vec<f64> = ctx.topo.links().map(|_| 4000.0).collect();
        let res = schedule_with_capacities(&ctx, std::slice::from_ref(&d), &caps).unwrap();
        assert!(res.allocation.respects_capacity_with(&ctx, &caps));
    }

    #[test]
    fn pruned_schedule_never_underestimates_needed_bandwidth() {
        // Fig. 16's premise: pruning trades bandwidth for speed — the
        // pruned schedule allocates at least as much as the full one.
        let topo = topologies::toy4();
        let tunnels = TunnelSet::compute(&topo, RoutingScheme::Ksp(2));
        let n = |s: &str| topo.find_node(s).unwrap();
        let pair = tunnels.pair_index(n("DC1"), n("DC4")).unwrap();
        let d = BaDemand::single(1, pair, 5000.0, 0.99);
        let mut totals = Vec::new();
        for y in 1..=4 {
            let scenarios = ScenarioSet::enumerate(&topo, y);
            let ctx = TeContext::new(&topo, &tunnels, &scenarios);
            totals.push(schedule(&ctx, std::slice::from_ref(&d)).unwrap().total_bandwidth);
        }
        for w in totals.windows(2) {
            assert!(
                w[0] >= w[1] - 1e-6,
                "deeper pruning must not cost more: {totals:?}"
            );
        }
    }
}
