//! # bate-core — the BATE traffic-engineering framework (§3)
//!
//! The paper's primary contribution: traffic engineering with per-demand
//! **bandwidth availability** (BA) provision over an inter-DC WAN. A demand
//! `d = (b_d, β_d)` asks that bandwidth `b_d` (a vector over s-d pairs) be
//! deliverable in a set of failure scenarios whose total probability is at
//! least `β_d`.
//!
//! Three components (§3):
//!
//! * [`admission`] — decide, in near-real-time, whether a newly arrived
//!   demand can be admitted: the *fixed* check (step 1), the greedy
//!   *conjecture* of Algorithm 1 (step 2, no false positives — Theorem 1),
//!   and the *optimal* MILP of Appendix A as the baseline.
//! * [`scheduling`] — the periodic LP (Eq. 1–7) that re-optimizes all
//!   admitted demands, guaranteeing every availability target while
//!   minimizing total allocated bandwidth, over the pruned scenario set.
//! * [`recovery`] — when a failure actually occurs: the profit-maximizing
//!   MILP (Eq. 8–12) with SLA refunds, its 2-approximation greedy
//!   (Algorithm 2 / Appendix D), and proactive backup-allocation
//!   precomputation (§3.4).
//!
//! Supporting models: [`reservation`] (the explicit time dimension of
//! footnote 4: advance-reservation admission over windows),
//! [`demand`] (BA demands, Table 1 availability classes),
//! [`pricing`] (Azure-style SLA refund schedules), [`allocation`] (tunnel
//! bandwidth assignments and their achieved availability), and
//! [`profile`] (the per-demand scenario-collapsing device that keeps the
//! LPs small — see module docs).
//!
//! ## Example
//!
//! ```
//! use bate_core::{admission, scheduling, Allocation, BaDemand, TeContext};
//! use bate_net::{topologies, ScenarioSet};
//! use bate_routing::{RoutingScheme, TunnelSet};
//!
//! // The Fig. 2 motivating topology, 2-shortest-path tunnels, failure
//! // scenarios pruned at two concurrent failures.
//! let topo = topologies::toy4();
//! let tunnels = TunnelSet::compute(&topo, RoutingScheme::Ksp(2));
//! let scenarios = ScenarioSet::enumerate(&topo, 2);
//! let ctx = TeContext::new(&topo, &tunnels, &scenarios);
//!
//! // 6 Gbps DC1→DC4 at 99% availability (user1 of §2.2).
//! let pair = tunnels
//!     .pair_index(topo.find_node("DC1").unwrap(), topo.find_node("DC4").unwrap())
//!     .unwrap();
//! let demand = BaDemand::single(1, pair, 6000.0, 0.99);
//!
//! // Admit, then schedule with a hard guarantee.
//! let outcome = admission::admit(&ctx, &[], &Allocation::new(), &demand);
//! assert!(outcome.is_admitted());
//! let result = scheduling::schedule_hardened(&ctx, &[demand.clone()]).unwrap();
//! assert!(result.allocation.meets_target(&ctx, &demand));
//! ```

pub mod admission;
pub mod allocation;
pub mod demand;
pub mod incremental;
pub mod pricing;
pub mod profile;
pub mod recovery;
pub mod reservation;
pub mod scheduling;

/// Time as a capability. The implementation moved to `bate-obs` (the
/// workspace's dependency-free bottom layer) so telemetry timestamps can
/// share the components' time source; this re-export keeps the original
/// `bate_core::clock` paths working.
pub use bate_obs::clock;

pub use allocation::Allocation;
pub use clock::{Clock, SimClock, SystemClock};
pub use demand::{AvailabilityClass, BaDemand, DemandId};
pub use incremental::{DemandDelta, IncrementalScheduler, IncrementalStats};
pub use pricing::SlaSchedule;

/// The solver error type, re-exported so downstream crates (sim, system)
/// can name the errors our scheduling/admission APIs return without
/// depending on `bate-lp` directly.
pub use bate_lp::SolveError;

use bate_net::{ScenarioSet, Topology};
use bate_routing::TunnelSet;

/// Everything the optimization models need about the network: the topology,
/// the pre-computed tunnels, and the pruned failure-scenario set.
#[derive(Debug, Clone, Copy)]
pub struct TeContext<'a> {
    pub topo: &'a Topology,
    pub tunnels: &'a TunnelSet,
    pub scenarios: &'a ScenarioSet,
}

impl<'a> TeContext<'a> {
    pub fn new(topo: &'a Topology, tunnels: &'a TunnelSet, scenarios: &'a ScenarioSet) -> Self {
        TeContext {
            topo,
            tunnels,
            scenarios,
        }
    }
}
