//! Step 1 of admission: the *fixed* check.
//!
//! Keep the bandwidth allocation of every admitted demand fixed and ask
//! whether the newcomer alone can be scheduled on the remaining capacity
//! with its availability target met. This is cheap (one small LP over one
//! demand) but conservative — the paper's "Fixed" baseline in Fig. 7(a)
//! and Fig. 12 runs *only* this step, which is why it rejects 10–20 % more
//! demands than BATE.

use crate::allocation::Allocation;
use crate::demand::BaDemand;
use crate::TeContext;

/// Try to admit `new` without touching existing allocations. Returns the
/// newcomer's allocation on success.
///
/// The scheduling LP relaxes availability (continuous `B` variables), so a
/// feasible LP does not by itself prove the *hard* target is reachable; the
/// check therefore verifies the returned allocation against the scenario
/// set before admitting ("check whether d can be satisfied by the remaining
/// network capacity and failure probability", §3.2 step 1).
pub fn fixed_admission(
    ctx: &TeContext,
    current: &Allocation,
    new: &BaDemand,
) -> Option<Allocation> {
    let residual = current.residual_capacities(ctx);
    crate::scheduling::place_single_hard(ctx, new, &residual)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bate_net::{topologies, ScenarioSet};
    use bate_routing::{RoutingScheme, TunnelSet};

    #[test]
    fn admits_into_empty_network() {
        let topo = topologies::toy4();
        let tunnels = TunnelSet::compute(&topo, RoutingScheme::Ksp(2));
        let scenarios = ScenarioSet::enumerate(&topo, 2);
        let ctx = TeContext::new(&topo, &tunnels, &scenarios);
        let n = |s: &str| topo.find_node(s).unwrap();
        let pair = tunnels.pair_index(n("DC1"), n("DC4")).unwrap();
        let d = BaDemand::single(1, pair, 1000.0, 0.95);
        let alloc = fixed_admission(&ctx, &Allocation::new(), &d).unwrap();
        assert!(alloc.meets_target(&ctx, &d));
    }

    #[test]
    fn rejects_when_residual_is_insufficient() {
        let topo = topologies::toy4();
        let tunnels = TunnelSet::compute(&topo, RoutingScheme::Ksp(2));
        let scenarios = ScenarioSet::enumerate(&topo, 2);
        let ctx = TeContext::new(&topo, &tunnels, &scenarios);
        let n = |s: &str| topo.find_node(s).unwrap();
        let pair = tunnels.pair_index(n("DC1"), n("DC4")).unwrap();

        // Fill both paths almost completely with an existing demand.
        let hog = BaDemand::single(1, pair, 19_000.0, 0.0);
        let res = crate::scheduling::schedule(&ctx, &[hog]).unwrap();
        let d = BaDemand::single(2, pair, 5000.0, 0.5);
        assert!(fixed_admission(&ctx, &res.allocation, &d).is_none());
    }

    #[test]
    fn fixed_is_more_conservative_than_reschedule() {
        // A demand pinned to a bad path blocks the fixed check even though
        // a full reschedule would fit both demands.
        let topo = topologies::toy4();
        let tunnels = TunnelSet::compute(&topo, RoutingScheme::Ksp(2));
        let scenarios = ScenarioSet::enumerate(&topo, 4);
        let ctx = TeContext::new(&topo, &tunnels, &scenarios);
        let n = |s: &str| topo.find_node(s).unwrap();
        let pair = tunnels.pair_index(n("DC1"), n("DC4")).unwrap();

        // Manually park an 8 Gbps demand HALF on each path (4+4), leaving
        // 6 Gbps free per path.
        let mut current = Allocation::new();
        let d1 = BaDemand::single(1, pair, 8000.0, 0.5);
        current.set(d1.id, bate_routing::TunnelId { pair, tunnel: 0 }, 4000.0);
        current.set(d1.id, bate_routing::TunnelId { pair, tunnel: 1 }, 4000.0);

        // A 99.9%-availability 6 Gbps demand needs ~6 Gbps on the reliable
        // path *plus* protection on the other; with only 6 Gbps residual per
        // path, protection is impossible at full size.
        let d2 = BaDemand::single(2, pair, 7000.0, 0.999);
        assert!(fixed_admission(&ctx, &current, &d2).is_none());
        // But rescheduling both demands together fits.
        assert!(crate::scheduling::schedule(&ctx, &[d1, d2]).is_ok());
    }
}
