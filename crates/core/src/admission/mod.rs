//! Admission control (§3.2).
//!
//! Demands are served first-come-first-served without preemption. When a
//! demand arrives, BATE runs a three-step strategy:
//!
//! 1. [`fixed`] — keep every admitted demand's allocation untouched and try
//!    to schedule only the newcomer on the residual capacity.
//! 2. [`greedy`] — Algorithm 1: a fast conjecture on whether *rescheduling
//!    everyone* could accommodate the newcomer. No false positives
//!    (Theorem 1): a conjectured "yes" always has a witnessing allocation.
//! 3. Reject.
//!
//! [`optimal`] implements the Appendix-A MILP the paper uses as the
//! admission baseline ("OPT" in Fig. 7(a)/12).

pub mod fixed;
pub mod greedy;
pub mod optimal;
pub mod stats;

use crate::allocation::Allocation;
use crate::demand::BaDemand;
use crate::TeContext;
use bate_obs::{Counter, Histogram, Registry};
use std::sync::{Arc, OnceLock};

/// How a demand was admitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmitPath {
    /// Step 1: fitted into residual capacity without touching anyone.
    Fixed,
    /// Step 2: Algorithm 1 conjectured a full reschedule would fit.
    Conjecture,
}

/// Outcome of BATE's admission pipeline for one arriving demand.
#[derive(Debug, Clone)]
pub enum AdmissionOutcome {
    /// Admitted; `allocation` holds the newcomer's (possibly temporary)
    /// flows. On the [`AdmitPath::Conjecture`] path the temporary
    /// allocation may fall short of the demanded bandwidth until the next
    /// scheduling round (footnote 5 of the paper).
    Admitted {
        path: AdmitPath,
        allocation: Allocation,
    },
    Rejected,
}

impl AdmissionOutcome {
    pub fn is_admitted(&self) -> bool {
        matches!(self, AdmissionOutcome::Admitted { .. })
    }
}

/// Registry handles for the admission metric family.
struct AdmissionMetrics {
    checks: Arc<Counter>,
    admitted: Arc<Counter>,
    rejected: Arc<Counter>,
    via_fixed: Arc<Counter>,
    via_conjecture: Arc<Counter>,
    latency_ms: Arc<Histogram>,
}

fn admission_metrics() -> &'static AdmissionMetrics {
    static M: OnceLock<AdmissionMetrics> = OnceLock::new();
    M.get_or_init(|| {
        let r = Registry::global();
        AdmissionMetrics {
            checks: r.counter("bate_admission_checks_total"),
            admitted: r.counter("bate_admission_admitted_total"),
            rejected: r.counter("bate_admission_rejected_total"),
            via_fixed: r.counter("bate_admission_via_fixed_total"),
            via_conjecture: r.counter("bate_admission_via_conjecture_total"),
            latency_ms: r.histogram("bate_admission_latency_ms"),
        }
    })
}

/// BATE's full admission pipeline (§3.2 steps 1–3).
///
/// `admitted` are the currently admitted demands with their current
/// allocation `current`; `new` is the arriving demand.
pub fn admit(
    ctx: &TeContext,
    admitted: &[BaDemand],
    current: &Allocation,
    new: &BaDemand,
) -> AdmissionOutcome {
    let m = admission_metrics();
    // Inside an active trace (a controller handling a submit), the whole
    // pipeline gets a span so the LP solves under it parent correctly;
    // untraced callers (sim loops) keep the legacy event-only shape.
    let traced = bate_obs::context::current().is_some();
    let _sp = traced.then(|| bate_obs::span!("admission.pipeline", demand = new.id.0));
    let t0 = std::time::Instant::now();
    let outcome = admit_inner(ctx, admitted, current, new);
    m.checks.inc();
    m.latency_ms.observe_ms(t0.elapsed());
    let verdict = match &outcome {
        AdmissionOutcome::Admitted {
            path: AdmitPath::Fixed,
            ..
        } => {
            m.admitted.inc();
            m.via_fixed.inc();
            "fixed"
        }
        AdmissionOutcome::Admitted {
            path: AdmitPath::Conjecture,
            ..
        } => {
            m.admitted.inc();
            m.via_conjecture.inc();
            "conjecture"
        }
        AdmissionOutcome::Rejected => {
            m.rejected.inc();
            "rejected"
        }
    };
    // Deterministic fields only (verdict latency goes to the histogram,
    // never into the trace).
    bate_obs::info!(
        "admission.verdict",
        demand = new.id.0,
        beta = new.beta,
        pool = admitted.len(),
        verdict = verdict,
    );
    outcome
}

/// One FCFS fold step over an evolving pool: run the pipeline for
/// `new` and, on admission, apply its flows to `current` and append it
/// to `admitted`. This is the exact per-demand sequence the controller's
/// threaded plane ran; batching builds on it below.
pub fn admit_and_apply(
    ctx: &TeContext,
    admitted: &mut Vec<BaDemand>,
    current: &mut Allocation,
    new: &BaDemand,
) -> bool {
    match admit(ctx, admitted, current, new) {
        AdmissionOutcome::Admitted { allocation, .. } => {
            for (t, f) in allocation.flows_of(new.id) {
                current.set(new.id, t, f);
            }
            admitted.push(new.clone());
            true
        }
        AdmissionOutcome::Rejected => false,
    }
}

/// Batched admission: decide `batch` first-come-first-served against the
/// evolving pool, returning one verdict per entry in order.
///
/// Verdicts are *by construction* identical to submitting the same
/// demands sequentially: each entry is decided by the same three-step
/// pipeline against the pool state left by its predecessors. Batching
/// changes only *when* the pool is re-optimized — the caller amortizes
/// one warm scheduling solve across the whole batch instead of paying a
/// scheduling round per arrival — never *what* is admitted. (The
/// batched-admission equivalence test in `bate-system` pins this against
/// the exact LP oracle.)
pub fn admit_batch(
    ctx: &TeContext,
    admitted: &mut Vec<BaDemand>,
    current: &mut Allocation,
    batch: &[BaDemand],
) -> Vec<bool> {
    batch
        .iter()
        .map(|d| admit_and_apply(ctx, admitted, current, d))
        .collect()
}

fn admit_inner(
    ctx: &TeContext,
    admitted: &[BaDemand],
    current: &Allocation,
    new: &BaDemand,
) -> AdmissionOutcome {
    // Step 1: fixed check.
    if let Some(allocation) = fixed::fixed_admission(ctx, current, new) {
        return AdmissionOutcome::Admitted {
            path: AdmitPath::Fixed,
            allocation,
        };
    }
    // Step 2: greedy conjecture over everyone.
    let mut all: Vec<BaDemand> = admitted.to_vec();
    all.push(new.clone());
    if greedy::conjecture(ctx, &all) {
        let allocation = greedy::best_effort_allocation(ctx, current, new);
        return AdmissionOutcome::Admitted {
            path: AdmitPath::Conjecture,
            allocation,
        };
    }
    AdmissionOutcome::Rejected
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduling::schedule;
    use bate_net::{topologies, ScenarioSet};
    use bate_routing::{RoutingScheme, TunnelSet};

    #[test]
    fn pipeline_admits_then_rejects_as_capacity_fills() {
        let topo = topologies::testbed6();
        let tunnels = TunnelSet::compute(&topo, RoutingScheme::default_ksp4());
        let scenarios = ScenarioSet::enumerate(&topo, 2);
        let ctx = TeContext::new(&topo, &tunnels, &scenarios);
        let n = |s: &str| topo.find_node(s).unwrap();
        let pair = tunnels.pair_index(n("DC1"), n("DC3")).unwrap();

        let mut admitted: Vec<BaDemand> = Vec::new();
        let mut current = Allocation::new();
        let mut rejected = 0;
        for i in 0..20 {
            let d = BaDemand::single(i, pair, 400.0, 0.95);
            match admit(&ctx, &admitted, &current, &d) {
                AdmissionOutcome::Admitted { allocation, .. } => {
                    for (t, f) in allocation.flows_of(d.id) {
                        current.set(d.id, t, f);
                    }
                    admitted.push(d);
                    // Periodic rescheduling keeps the pool compact.
                    if let Ok(res) = schedule(&ctx, &admitted) {
                        current = res.allocation;
                    }
                }
                AdmissionOutcome::Rejected => rejected += 1,
            }
        }
        assert!(!admitted.is_empty(), "some demands must fit");
        assert!(rejected > 0, "the pool must eventually fill");
        // Each admitted demand's target holds after the final reschedule.
        for d in &admitted {
            assert!(current.meets_target(&ctx, d), "demand {:?}", d.id);
        }
    }

    /// Batched admission must be verdict-for-verdict the sequential
    /// pipeline: same demands, same order, same pool evolution.
    #[test]
    fn batched_verdicts_match_sequential_fold() {
        let topo = topologies::testbed6();
        let tunnels = TunnelSet::compute(&topo, RoutingScheme::default_ksp4());
        let scenarios = ScenarioSet::enumerate(&topo, 2);
        let ctx = TeContext::new(&topo, &tunnels, &scenarios);
        let n = |s: &str| topo.find_node(s).unwrap();
        let p13 = tunnels.pair_index(n("DC1"), n("DC3")).unwrap();
        let p26 = tunnels.pair_index(n("DC2"), n("DC6")).unwrap();
        // A mix that exercises admit and reject: the 10 Gbps entry can
        // never fit (DC1's egress cut is 3 Gbps).
        let batch: Vec<BaDemand> = vec![
            BaDemand::single(1, p13, 400.0, 0.95),
            BaDemand::single(2, p26, 300.0, 0.9),
            BaDemand::single(3, p13, 10_000.0, 0.5),
            BaDemand::single(4, p13, 250.0, 0.99),
            BaDemand::single(5, p26, 150.0, 0.95),
        ];

        let mut seq_pool = Vec::new();
        let mut seq_alloc = Allocation::new();
        let seq: Vec<bool> = batch
            .iter()
            .map(|d| admit_and_apply(&ctx, &mut seq_pool, &mut seq_alloc, d))
            .collect();

        let mut bat_pool = Vec::new();
        let mut bat_alloc = Allocation::new();
        let bat = admit_batch(&ctx, &mut bat_pool, &mut bat_alloc, &batch);

        assert_eq!(seq, bat, "batched verdicts diverged from sequential");
        assert_eq!(seq.iter().filter(|&&a| a).count(), 4, "only the 10G entry rejects");
        assert_eq!(
            seq_pool.iter().map(|d| d.id).collect::<Vec<_>>(),
            bat_pool.iter().map(|d| d.id).collect::<Vec<_>>(),
        );
    }
}
