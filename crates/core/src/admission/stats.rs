//! Admission bookkeeping shared by the controller and the simulator:
//! which pipeline step admitted each demand and how long decisions took —
//! the raw data behind Fig. 12(c)/(d).

use crate::admission::AdmitPath;
use std::time::Duration;

/// One admission decision.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Decision {
    Admitted(AdmitPath),
    Rejected,
}

/// Running tallies over a stream of decisions.
#[derive(Debug, Clone, Default)]
pub struct AdmissionStats {
    pub arrived: usize,
    pub admitted_fixed: usize,
    pub admitted_conjecture: usize,
    pub rejected: usize,
    total_latency: Duration,
    max_latency: Duration,
}

impl AdmissionStats {
    pub fn new() -> AdmissionStats {
        AdmissionStats::default()
    }

    /// Record one decision with its measured latency.
    pub fn record(&mut self, decision: Decision, latency: Duration) {
        self.arrived += 1;
        match decision {
            Decision::Admitted(AdmitPath::Fixed) => self.admitted_fixed += 1,
            Decision::Admitted(AdmitPath::Conjecture) => self.admitted_conjecture += 1,
            Decision::Rejected => self.rejected += 1,
        }
        self.total_latency += latency;
        self.max_latency = self.max_latency.max(latency);
    }

    pub fn admitted(&self) -> usize {
        self.admitted_fixed + self.admitted_conjecture
    }

    /// Fraction of arrivals rejected.
    pub fn rejection_ratio(&self) -> f64 {
        if self.arrived == 0 {
            0.0
        } else {
            self.rejected as f64 / self.arrived as f64
        }
    }

    /// Share of admissions that needed the Algorithm-1 conjecture (step 2)
    /// rather than the cheap fixed check — how often rescheduling headroom
    /// actually mattered.
    pub fn conjecture_share(&self) -> f64 {
        let a = self.admitted();
        if a == 0 {
            0.0
        } else {
            self.admitted_conjecture as f64 / a as f64
        }
    }

    pub fn mean_latency(&self) -> Duration {
        if self.arrived == 0 {
            Duration::ZERO
        } else {
            self.total_latency / self.arrived as u32
        }
    }

    pub fn max_latency(&self) -> Duration {
        self.max_latency
    }

    /// Merge another tally into this one (per-worker stats aggregation).
    pub fn merge(&mut self, other: &AdmissionStats) {
        self.arrived += other.arrived;
        self.admitted_fixed += other.admitted_fixed;
        self.admitted_conjecture += other.admitted_conjecture;
        self.rejected += other.rejected;
        self.total_latency += other.total_latency;
        self.max_latency = self.max_latency.max(other.max_latency);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tallies_and_ratios() {
        let mut s = AdmissionStats::new();
        s.record(Decision::Admitted(AdmitPath::Fixed), Duration::from_millis(2));
        s.record(
            Decision::Admitted(AdmitPath::Conjecture),
            Duration::from_millis(6),
        );
        s.record(Decision::Rejected, Duration::from_millis(4));
        assert_eq!(s.arrived, 3);
        assert_eq!(s.admitted(), 2);
        assert!((s.rejection_ratio() - 1.0 / 3.0).abs() < 1e-12);
        assert!((s.conjecture_share() - 0.5).abs() < 1e-12);
        assert_eq!(s.mean_latency(), Duration::from_millis(4));
        assert_eq!(s.max_latency(), Duration::from_millis(6));
    }

    #[test]
    fn merge_combines() {
        let mut a = AdmissionStats::new();
        a.record(Decision::Rejected, Duration::from_millis(1));
        let mut b = AdmissionStats::new();
        b.record(Decision::Admitted(AdmitPath::Fixed), Duration::from_millis(3));
        a.merge(&b);
        assert_eq!(a.arrived, 2);
        assert_eq!(a.admitted(), 1);
        assert_eq!(a.max_latency(), Duration::from_millis(3));
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = AdmissionStats::new();
        assert_eq!(s.rejection_ratio(), 0.0);
        assert_eq!(s.conjecture_share(), 0.0);
        assert_eq!(s.mean_latency(), Duration::ZERO);
    }
}
