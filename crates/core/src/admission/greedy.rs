//! Step 2 of admission: the greedy conjecture of **Algorithm 1**.
//!
//! The conjecture asks whether some full reschedule could satisfy every
//! demand including the newcomer — without solving the (NP-hard) optimal
//! admission problem. It iterates demands in ascending `Σ_k b_d^k · β_d`
//! order and, per s-d pair, fills tunnels by ascending `c_t · p_t`
//! (remaining capacity × availability): cheap/unreliable tunnels are burned
//! first so that reliable headroom survives for the high-availability
//! demands that come later.
//!
//! The availability estimate `s_d` is the product of the availabilities of
//! every tunnel the demand touches. Tunnels can only be positively
//! correlated (they share fate groups), so `Π p_t ≤ P(all used tunnels up)`
//! and the estimate is conservative: a conjectured *yes* implies a real
//! allocation exists (Theorem 1).

use crate::allocation::Allocation;
use crate::demand::BaDemand;
use crate::TeContext;
use bate_routing::TunnelId;

/// Algorithm 1: can all of `demands` be satisfied simultaneously?
pub fn conjecture(ctx: &TeContext, demands: &[BaDemand]) -> bool {
    conjecture_with_allocation(ctx, demands).is_some()
}

/// Algorithm 1, additionally returning the allocation it constructed while
/// conjecturing. The allocation is a *witness*: callers can verify it
/// against the scenario set (e.g. the optimal-admission fast path does) to
/// upgrade the conjecture into an exact feasibility certificate.
pub fn conjecture_with_allocation(ctx: &TeContext, demands: &[BaDemand]) -> Option<Allocation> {
    let mut residual: Vec<f64> = ctx.topo.links().map(|(_, l)| l.capacity).collect();
    let mut alloc = Allocation::new();

    // Process demands by ascending admission key (line 2).
    let mut order: Vec<&BaDemand> = demands.iter().collect();
    order.sort_by(|a, b| {
        a.admission_key()
            .partial_cmp(&b.admission_key())
            .unwrap()
            .then_with(|| a.id.cmp(&b.id))
    });

    for demand in order {
        let mut s_d = 1.0f64;
        for &(pair, b) in &demand.bandwidth {
            let tunnels = ctx.tunnels.tunnels(pair);
            let avail = ctx.tunnels.availabilities(pair);
            // Remaining capacity of the whole pair (line 4): sum of tunnel
            // residual capacities.
            let tunnel_cap = |t: usize, residual: &[f64]| -> f64 {
                tunnels[t]
                    .links
                    .iter()
                    .map(|l| residual[l.index()])
                    .fold(f64::INFINITY, f64::min)
            };
            let pair_capacity: f64 = (0..tunnels.len()).map(|t| tunnel_cap(t, &residual)).sum();
            if b > pair_capacity + 1e-9 {
                return None; // line 5
            }

            // Lines 7–13: fill tunnels by ascending c_t · p_t.
            let mut remaining = b;
            let mut available: Vec<usize> = (0..tunnels.len()).collect();
            while remaining > 1e-9 {
                // Drop tunnels with no residual capacity; they cannot carry
                // bandwidth and should not poison s_d.
                available.retain(|&t| tunnel_cap(t, &residual) > 1e-9);
                let Some(&t) = available.iter().min_by(|&&a, &&b| {
                    let ka = tunnel_cap(a, &residual) * avail[a];
                    let kb = tunnel_cap(b, &residual) * avail[b];
                    ka.partial_cmp(&kb).unwrap().then(a.cmp(&b))
                }) else {
                    return None; // tunnels exhausted mid-fill
                };
                let cap = tunnel_cap(t, &residual);
                let f = cap.min(remaining);
                s_d *= avail[t]; // line 11
                remaining -= f;
                for l in &tunnels[t].links {
                    residual[l.index()] -= f;
                }
                if f > 1e-9 {
                    alloc.add(demand.id, TunnelId { pair, tunnel: t }, f);
                }
                available.retain(|&x| x != t); // line 10
            }
        }
        if s_d < demand.beta {
            return None; // lines 14–15
        }
    }
    Some(alloc)
}

/// The temporary allocation given to a newly conjectured-in demand
/// (step 2's "temporary bandwidth allocation ... using the remaining
/// network capacity as far as needed", footnote 5): best-effort greedy fill
/// on residual capacity, highest-availability tunnels first. May fall short
/// of the demanded bandwidth; the next scheduling round fixes that.
pub fn best_effort_allocation(ctx: &TeContext, current: &Allocation, new: &BaDemand) -> Allocation {
    let mut residual = current.residual_capacities(ctx);
    let mut alloc = Allocation::new();
    for &(pair, b) in &new.bandwidth {
        let tunnels = ctx.tunnels.tunnels(pair);
        let avail = ctx.tunnels.availabilities(pair);
        // Highest availability first: the temporary allocation should be as
        // reliable as the residual allows.
        let mut order: Vec<usize> = (0..tunnels.len()).collect();
        order.sort_by(|&a, &b| avail[b].partial_cmp(&avail[a]).unwrap().then(a.cmp(&b)));
        let mut remaining = b;
        for t in order {
            if remaining <= 1e-9 {
                break;
            }
            let cap = tunnels[t]
                .links
                .iter()
                .map(|l| residual[l.index()])
                .fold(f64::INFINITY, f64::min);
            let f = cap.min(remaining);
            if f > 1e-9 {
                alloc.set(new.id, TunnelId { pair, tunnel: t }, f);
                for l in &tunnels[t].links {
                    residual[l.index()] -= f;
                }
                remaining -= f;
            }
        }
    }
    alloc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduling::schedule;
    use bate_net::{topologies, ScenarioSet};
    use bate_routing::{RoutingScheme, TunnelSet};

    fn testbed_ctx() -> (bate_net::Topology, TunnelSet, ScenarioSet) {
        let topo = topologies::testbed6();
        let tunnels = TunnelSet::compute(&topo, RoutingScheme::default_ksp4());
        let scenarios = ScenarioSet::enumerate(&topo, topo.num_groups().min(3));
        (topo, tunnels, scenarios)
    }

    #[test]
    fn conjecture_accepts_feasible_sets() {
        let (topo, tunnels, scenarios) = testbed_ctx();
        let ctx = TeContext::new(&topo, &tunnels, &scenarios);
        let n = |s: &str| topo.find_node(s).unwrap();
        let p13 = tunnels.pair_index(n("DC1"), n("DC3")).unwrap();
        let p14 = tunnels.pair_index(n("DC1"), n("DC4")).unwrap();
        let demands = vec![
            BaDemand::single(1, p13, 300.0, 0.95),
            BaDemand::single(2, p14, 200.0, 0.95),
        ];
        assert!(conjecture(&ctx, &demands));
    }

    /// Algorithm 1 is deliberately conservative: it burns the worst
    /// (lowest `c_t · p_t`) tunnel first, so a high-β demand whose worst
    /// tunnel crosses the 1%-failure link L4 gets conjectured out even
    /// though a real schedule exists. These conservative rejections are
    /// exactly the "false rejections" the paper quantifies at < 4 %
    /// (they are rare because the fixed check of step 1 admits most such
    /// demands before the conjecture ever runs).
    #[test]
    fn conjecture_is_conservative_for_high_availability() {
        let (topo, tunnels, scenarios) = testbed_ctx();
        let ctx = TeContext::new(&topo, &tunnels, &scenarios);
        let n = |s: &str| topo.find_node(s).unwrap();
        let p14 = tunnels.pair_index(n("DC1"), n("DC4")).unwrap();
        let d = BaDemand::single(1, p14, 200.0, 0.99);
        assert!(!conjecture(&ctx, std::slice::from_ref(&d)), "worst tunnel crosses L4");
        // ... but the LP schedules it fine — a false rejection.
        assert!(schedule(&ctx, &[d]).is_ok());
    }

    #[test]
    fn conjecture_rejects_capacity_overflow() {
        let (topo, tunnels, scenarios) = testbed_ctx();
        let ctx = TeContext::new(&topo, &tunnels, &scenarios);
        let n = |s: &str| topo.find_node(s).unwrap();
        let pair = tunnels.pair_index(n("DC1"), n("DC3")).unwrap();
        // Way beyond the DC1 egress cut (3 links × 1000).
        let d = BaDemand::single(1, pair, 10_000.0, 0.5);
        assert!(!conjecture(&ctx, &[d]));
    }

    #[test]
    fn conjecture_rejects_unreachable_availability() {
        let (topo, tunnels, scenarios) = testbed_ctx();
        let ctx = TeContext::new(&topo, &tunnels, &scenarios);
        let n = |s: &str| topo.find_node(s).unwrap();
        let pair = tunnels.pair_index(n("DC1"), n("DC4")).unwrap();
        // Forcing traffic across several tunnels multiplies their
        // availabilities: a 2.5 Gbps demand over ~1 Gbps tunnels needs at
        // least 3 tunnels, and Π p_t cannot reach 0.99999 on this topology.
        let d = BaDemand::single(1, pair, 2500.0, 0.99999);
        assert!(!conjecture(&ctx, &[d]));
    }

    /// Theorem 1 (no false positives), checked constructively: whenever the
    /// conjecture admits a demand set, the scheduling LP finds an
    /// allocation meeting every target.
    #[test]
    fn theorem1_no_false_positives() {
        let topo = topologies::testbed6();
        let tunnels = TunnelSet::compute(&topo, RoutingScheme::default_ksp4());
        // Full enumeration keeps the availability arithmetic exact.
        let scenarios = ScenarioSet::enumerate(&topo, topo.num_groups());
        let ctx = TeContext::new(&topo, &tunnels, &scenarios);
        let n = |s: &str| topo.find_node(s).unwrap();
        let pairs = [
            tunnels.pair_index(n("DC1"), n("DC3")).unwrap(),
            tunnels.pair_index(n("DC1"), n("DC4")).unwrap(),
            tunnels.pair_index(n("DC2"), n("DC6")).unwrap(),
        ];
        let betas = [0.9, 0.95, 0.99, 0.999];
        let mut checked = 0;
        for trial in 0..40u64 {
            // Small deterministic pseudo-random demand sets.
            let mut x = trial.wrapping_mul(6364136223846793005).wrapping_add(1);
            let mut next = || {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (x >> 33) as usize
            };
            let k = 1 + next() % 4;
            let demands: Vec<BaDemand> = (0..k)
                .map(|i| {
                    BaDemand::single(
                        trial * 10 + i as u64,
                        pairs[next() % pairs.len()],
                        100.0 + (next() % 8) as f64 * 150.0,
                        betas[next() % betas.len()],
                    )
                })
                .collect();
            if conjecture(&ctx, &demands) {
                checked += 1;
                let res = schedule(&ctx, &demands)
                    .unwrap_or_else(|e| panic!("Theorem 1 violated: {e} for {demands:?}"));
                for d in &demands {
                    assert!(
                        res.allocation.meets_target(&ctx, d),
                        "availability target missed for {demands:?}"
                    );
                }
            }
        }
        assert!(
            checked > 5,
            "too few admitted sets ({checked}) to be meaningful"
        );
    }

    #[test]
    fn best_effort_allocation_respects_residual() {
        let (topo, tunnels, scenarios) = testbed_ctx();
        let ctx = TeContext::new(&topo, &tunnels, &scenarios);
        let n = |s: &str| topo.find_node(s).unwrap();
        let pair = tunnels.pair_index(n("DC1"), n("DC4")).unwrap();
        let d = BaDemand::single(1, pair, 1500.0, 0.9);
        let alloc = best_effort_allocation(&ctx, &Allocation::new(), &d);
        assert!(alloc.respects_capacity(&ctx, 1e-9));
        let total: f64 = alloc.flows_of(d.id).map(|(_, f)| f).sum();
        assert!(total > 0.0 && total <= 1500.0 + 1e-9);
    }
}
