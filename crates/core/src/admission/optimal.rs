//! The optimal admission baseline — the 0-1 MILP of Appendix A.
//!
//! The paper proves this problem NP-hard (reduction from all-or-nothing
//! multicommodity flow) and uses it, solved exactly, as the "OPT" baseline
//! that BATE's greedy admission is compared against (Fig. 7(a), Fig. 12).
//!
//! Two model simplifications that preserve the optimum:
//!
//! * Scenarios are collapsed per demand ([`crate::profile`]), making the
//!   binary count `Σ_d (#states of d)` instead of `|D| · |Z|`.
//! * The big-M upper linkages (Eq. 14's `R < M q + 1 - q` and Eq. 16's
//!   `s < β(1-a) + a`) only force indicators *down* when ratios fall short;
//!   under maximization of `Σ a_d` the solver never *wants* an indicator at
//!   0 when it could be 1, so the lower linkages (`R ≥ q`-style) suffice
//!   and the model needs no M constant at all.

use crate::allocation::Allocation;
use crate::demand::BaDemand;
use crate::profile::MaskedProfile;
use crate::scheduling::{SolveMode, ROWGEN_AUTO_THRESHOLD, ROWGEN_SEED_SINGLES};
use crate::TeContext;
use bate_lp::{milp, LazyRow, Problem, Relation, Sense, SolveError, VarId};
use bate_routing::TunnelId;

/// Result of the optimal admission MILP.
#[derive(Debug, Clone)]
pub struct OptimalAdmission {
    /// Which demands (by position in the input slice) were satisfiable.
    pub accepted: Vec<bool>,
    /// An allocation witnessing the accepted set.
    pub allocation: Allocation,
}

/// Exact feasibility: can *every* demand in `demands` be satisfied
/// simultaneously? This is the optimal admission decision for one arriving
/// demand (admitted demands are committed, so the newcomer is accepted iff
/// all of them remain satisfiable together).
///
/// Two exact fast paths keep this tractable online:
///
/// 1. If the scheduling LP (the `B ∈ [0,1]` relaxation) is infeasible, the
///    MILP is too — reject without branching.
/// 2. If Algorithm 1's witness allocation verifiably meets every target
///    against the scenario set, the MILP is feasible — accept without
///    branching.
///
/// Only the gray zone between them runs branch-and-bound.
pub fn optimal_feasible(ctx: &TeContext, demands: &[BaDemand]) -> Result<bool, SolveError> {
    optimal_feasible_mode(ctx, demands, SolveMode::Auto)
}

/// [`optimal_feasible`] with an explicit [`SolveMode`] for the MILP stage
/// (the LP fast paths always use their own Auto gate). Goldens pin
/// Full-vs-RowGen verdict equivalence through this.
pub fn optimal_feasible_mode(
    ctx: &TeContext,
    demands: &[BaDemand],
    mode: SolveMode,
) -> Result<bool, SolveError> {
    // Fast reject: the continuous relaxation can't even cover everyone.
    match crate::scheduling::schedule(ctx, demands) {
        Err(SolveError::Infeasible) => return Ok(false),
        Err(e) => return Err(e),
        Ok(res) => {
            // Fast accept: the LP allocation itself may already be a hard
            // witness (B variables at extreme points often are).
            if demands.iter().all(|d| res.allocation.meets_target(ctx, d)) {
                return Ok(true);
            }
        }
    }
    // Fast accept via the Algorithm-1 witness.
    if let Some(witness) = crate::admission::greedy::conjecture_with_allocation(ctx, demands) {
        if demands.iter().all(|d| witness.meets_target(ctx, d)) {
            return Ok(true);
        }
    }
    // Fast accept via sequential constructive placement: hard-place each
    // demand (highest β first) on the residual left by the previous ones;
    // success is a feasibility certificate.
    {
        let mut order: Vec<&BaDemand> = demands.iter().collect();
        order.sort_by(|a, b| {
            b.beta
                .partial_cmp(&a.beta)
                .unwrap()
                .then_with(|| a.id.cmp(&b.id))
        });
        let mut acc = Allocation::new();
        let mut all_placed = true;
        for d in order {
            let residual = acc.residual_capacities(ctx);
            match crate::scheduling::place_single_hard(ctx, d, &residual) {
                Some(placed) => acc.adopt_demand(d.id, &placed),
                None => {
                    all_placed = false;
                    break;
                }
            }
        }
        if all_placed {
            return Ok(true);
        }
    }
    match solve_admission(ctx, demands, true, mode) {
        Ok(res) => Ok(res.accepted.iter().all(|&a| a)),
        Err(SolveError::Infeasible) => Ok(false),
        // A blown node budget means we could not *prove* feasibility;
        // treat as a (conservative) rejection rather than an error so long
        // online runs keep going.
        Err(SolveError::NodeLimit) => Ok(false),
        Err(e) => Err(e),
    }
}

/// The full Appendix-A objective: maximize the number of accepted demands.
pub fn maximize_admissions(
    ctx: &TeContext,
    demands: &[BaDemand],
) -> Result<OptimalAdmission, SolveError> {
    solve_admission(ctx, demands, false, SolveMode::Auto)
}

/// [`maximize_admissions`] with an explicit [`SolveMode`] — the direct
/// MILP entry the row-generation goldens compare through (no LP fast
/// paths in front).
pub fn maximize_admissions_mode(
    ctx: &TeContext,
    demands: &[BaDemand],
    mode: SolveMode,
) -> Result<OptimalAdmission, SolveError> {
    solve_admission(ctx, demands, false, mode)
}

/// Build the full Appendix-A admission MILP without solving it.
///
/// Like [`crate::scheduling::scheduling_lp`], this is the entry point for
/// the exact certifying oracle and differential harness (DESIGN.md §5d):
/// the model is the one `SolveMode::Full` solves (every qualification row
/// present), built by the same code path as the production solve.
pub fn admission_milp(
    ctx: &TeContext,
    demands: &[BaDemand],
    force_all: bool,
) -> Result<Problem, SolveError> {
    let tracked = ctx.scenarios.most_probable_singles(ROWGEN_SEED_SINGLES);
    let profiles: Vec<MaskedProfile> =
        bate_lp::par_map(demands, |d| MaskedProfile::collapse(ctx, d, &tracked));
    Ok(build_admission_milp(ctx, demands, &profiles, force_all, None)?.p)
}

/// The admission MILP under construction, with the variable handles the
/// solve loop and extraction code need.
struct BuiltMilp {
    p: Problem,
    /// `f[d][local pair][tunnel]`.
    f_vars: Vec<Vec<Vec<VarId>>>,
    /// `q[d][collapsed state]` binaries.
    q_vars_all: Vec<Vec<VarId>>,
    /// Acceptance binary per demand (`None` under `force_all`).
    a_vars: Vec<Option<VarId>>,
}

/// Build the Appendix-A MILP. With `seeded = None` every qualification
/// row of Eq. 14 is emitted (the full formulation); with
/// `seeded = Some(flags)` only the flagged states' rows are — the
/// branch-and-cut master.
fn build_admission_milp(
    ctx: &TeContext,
    demands: &[BaDemand],
    profiles: &[MaskedProfile],
    force_all: bool,
    seeded: Option<&[Vec<bool>]>,
) -> Result<BuiltMilp, SolveError> {
    let mut p = Problem::new(Sense::Maximize);

    // Flow variables per demand / local pair / tunnel.
    let mut f_vars: Vec<Vec<Vec<VarId>>> = Vec::with_capacity(demands.len());
    for demand in demands {
        let mut per = Vec::new();
        for &(pair, _) in &demand.bandwidth {
            let vars: Vec<VarId> = (0..ctx.tunnels.tunnels(pair).len())
                .map(|t| p.add_var(&format!("f[{}][{pair}][{t}]", demand.id.0)))
                .collect();
            if vars.is_empty() {
                return Err(SolveError::BadModel(format!(
                    "demand {} requests a pair with no tunnels",
                    demand.id.0
                )));
            }
            per.push(vars);
        }
        f_vars.push(per);
    }

    // Per demand: q[state] binaries (Eq. 14 lower linkage), acceptance a_d.
    // All binaries exist up front in every mode — the lazy path appends
    // rows, never columns.
    let mut a_vars: Vec<Option<VarId>> = Vec::with_capacity(demands.len());
    let mut q_vars_all: Vec<Vec<VarId>> = Vec::with_capacity(demands.len());
    for (di, demand) in demands.iter().enumerate() {
        let profile = &profiles[di];
        let q_vars: Vec<VarId> = (0..profile.len())
            .map(|s| p.add_binary_var(&format!("q[{}][{s}]", demand.id.0)))
            .collect();

        for (si, state) in profile.states.iter().enumerate() {
            if let Some(flags) = seeded {
                if !flags[di][si] {
                    continue;
                }
            }
            for (ki, &(_, b)) in demand.bandwidth.iter().enumerate() {
                // Σ_t f v >= b q  (qualified scenarios deliver in full)
                let mut terms: Vec<(VarId, f64)> = vec![(q_vars[si], -b)];
                for (ti, &fv) in f_vars[di][ki].iter().enumerate() {
                    if state.masks[ki] >> ti & 1 == 1 {
                        terms.push((fv, 1.0));
                    }
                }
                p.add_constraint(&terms, Relation::Ge, 0.0);
            }
        }

        // Achieved availability s_d = Σ q p (Eq. 15), linked to acceptance.
        let s_terms: Vec<(VarId, f64)> = q_vars
            .iter()
            .zip(&profile.states)
            .map(|(&q, st)| (q, st.probability))
            .collect();
        if force_all {
            p.add_constraint(&s_terms, Relation::Ge, demand.beta);
            a_vars.push(None);
        } else {
            let a = p.add_binary_var(&format!("a[{}]", demand.id.0));
            p.set_objective(a, 1.0);
            // s_d >= β a_d (Eq. 16 lower linkage).
            let mut terms = s_terms;
            terms.push((a, -demand.beta));
            p.add_constraint(&terms, Relation::Ge, 0.0);
            a_vars.push(Some(a));
        }
        q_vars_all.push(q_vars);
    }

    // Capacity (Eq. 18).
    let mut per_link: Vec<Vec<(VarId, f64)>> = vec![Vec::new(); ctx.topo.num_links()];
    for (di, demand) in demands.iter().enumerate() {
        for (ki, &(pair, _)) in demand.bandwidth.iter().enumerate() {
            for (ti, &fv) in f_vars[di][ki].iter().enumerate() {
                for &l in &ctx.tunnels.path(TunnelId { pair, tunnel: ti }).links {
                    per_link[l.index()].push((fv, 1.0));
                }
            }
        }
    }
    for (li, terms) in per_link.iter().enumerate() {
        if !terms.is_empty() {
            p.add_constraint(
                terms,
                Relation::Le,
                ctx.topo.link(bate_net::LinkId(li)).capacity,
            );
        }
    }

    Ok(BuiltMilp {
        p,
        f_vars,
        q_vars_all,
        a_vars,
    })
}

/// Build and solve the Appendix-A MILP.
///
/// Under [`SolveMode::RowGen`] (or Auto above the threshold) the
/// per-(state, pair) qualification rows of Eq. 14 are generated lazily by
/// branch-and-cut ([`milp::solve_lazy`]): the master starts with the
/// seeded states' rows, a bitset separation oracle checks every candidate
/// relaxation against all collapsed states, and violated rows join a
/// global row pool every node inherits. Exactness argument mirrors the
/// scheduling LP's: node relaxations are row-subset relaxations (pruning
/// stays valid) and incumbents are only accepted after clean separation.
fn solve_admission(
    ctx: &TeContext,
    demands: &[BaDemand],
    force_all: bool,
    mode: SolveMode,
) -> Result<OptimalAdmission, SolveError> {
    let seed_singles = match mode {
        SolveMode::RowGen { seed_singles } => seed_singles,
        _ => ROWGEN_SEED_SINGLES,
    };
    let tracked = ctx.scenarios.most_probable_singles(seed_singles);
    let profiles: Vec<MaskedProfile> =
        bate_lp::par_map(demands, |d| MaskedProfile::collapse(ctx, d, &tracked));
    let full_qual_rows: usize = profiles
        .iter()
        .zip(demands)
        .map(|(pr, d)| pr.len() * d.bandwidth.len())
        .sum();
    let use_rowgen = match mode {
        SolveMode::Full => false,
        SolveMode::RowGen { .. } => true,
        SolveMode::Auto => full_qual_rows > ROWGEN_AUTO_THRESHOLD,
    };
    // Seed states for the lazy master: all-up plus the tracked singles.
    let seeded: Option<Vec<Vec<bool>>> = use_rowgen.then(|| {
        profiles
            .iter()
            .map(|pr| {
                let mut flags = vec![false; pr.len()];
                if !flags.is_empty() {
                    flags[0] = true;
                }
                for &si in &pr.tracked_states {
                    flags[si] = true;
                }
                flags
            })
            .collect()
    });

    let BuiltMilp {
        mut p,
        f_vars,
        q_vars_all,
        a_vars,
    } = build_admission_milp(ctx, demands, &profiles, force_all, seeded.as_deref())?;

    // Each node costs a simplex solve; the fast paths above mean the MILP
    // only sees genuinely ambiguous instances, where a moderate budget
    // almost always suffices (NodeLimit is treated as a rejection by
    // `optimal_feasible`). The batch-parallel branch-and-bound can
    // speculate up to a batch of nodes past where sequential DFS would
    // have pruned, so the budget is scaled accordingly — the extra nodes
    // run concurrently, so wall-clock stays comparable.
    let cfg = milp::BnbConfig {
        max_nodes: 400,
        gap: 1e-6,
    };
    let sol = match seeded {
        None => milp::solve(&p, cfg)?,
        Some(flags) => {
            // Branch-and-cut: `added[di][si*pairs + ki]` tracks which
            // qualification rows are in the master (seeded or appended),
            // so no row is ever generated twice.
            let mut added: Vec<Vec<bool>> = demands
                .iter()
                .enumerate()
                .map(|(di, d)| {
                    let pairs = d.bandwidth.len();
                    let mut a = vec![false; profiles[di].len() * pairs];
                    for (si, &on) in flags[di].iter().enumerate() {
                        if on {
                            for ki in 0..pairs {
                                a[si * pairs + ki] = true;
                            }
                        }
                    }
                    a
                })
                .collect();
            milp::solve_lazy(&mut p, cfg, |relax| {
                // Bitset sweep over every collapsed state of every demand —
                // exactly the full Eq. 14 row set. Parallel fan-out is safe:
                // each demand reads only its own slice of `added`.
                let per_demand: Vec<Vec<(usize, usize)>> =
                    bate_lp::par_map(&(0..demands.len()).collect::<Vec<_>>(), |&di| {
                        let demand = &demands[di];
                        let pairs = demand.bandwidth.len();
                        let mut viol = Vec::new();
                        for (si, state) in profiles[di].states.iter().enumerate() {
                            let q = relax[q_vars_all[di][si]];
                            for (ki, &(_, b)) in demand.bandwidth.iter().enumerate() {
                                if added[di][si * pairs + ki] {
                                    continue;
                                }
                                let mut mask = state.masks[ki];
                                let mut flow = 0.0;
                                while mask != 0 {
                                    let ti = mask.trailing_zeros() as usize;
                                    flow += relax[f_vars[di][ki][ti]];
                                    mask &= mask - 1;
                                }
                                if flow - b * q < -1e-9 * (1.0 + b.abs()) {
                                    viol.push((si, ki));
                                }
                            }
                        }
                        viol
                    });
                let mut cuts = Vec::new();
                for (di, viol) in per_demand.iter().enumerate() {
                    let demand = &demands[di];
                    let pairs = demand.bandwidth.len();
                    for &(si, ki) in viol {
                        let b = demand.bandwidth[ki].1;
                        let mut terms: Vec<(VarId, f64)> = vec![(q_vars_all[di][si], -b)];
                        let mut mask = profiles[di].states[si].masks[ki];
                        while mask != 0 {
                            let ti = mask.trailing_zeros() as usize;
                            terms.push((f_vars[di][ki][ti], 1.0));
                            mask &= mask - 1;
                        }
                        cuts.push(LazyRow {
                            terms,
                            relation: Relation::Ge,
                            rhs: 0.0,
                        });
                        added[di][si * pairs + ki] = true;
                    }
                }
                cuts
            })?
        }
    };

    let mut allocation = Allocation::new();
    for (di, demand) in demands.iter().enumerate() {
        for (ki, &(pair, _)) in demand.bandwidth.iter().enumerate() {
            for (ti, &fv) in f_vars[di][ki].iter().enumerate() {
                let f = sol[fv];
                if f > 1e-9 {
                    allocation.set(demand.id, TunnelId { pair, tunnel: ti }, f);
                }
            }
        }
    }
    let accepted = a_vars
        .iter()
        .map(|a| match a {
            Some(v) => sol.int_value(*v) == 1,
            None => true,
        })
        .collect();
    Ok(OptimalAdmission {
        accepted,
        allocation,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bate_net::{topologies, ScenarioSet};
    use bate_routing::{RoutingScheme, TunnelSet};

    fn ctx_toy() -> (bate_net::Topology, TunnelSet, ScenarioSet) {
        let topo = topologies::toy4();
        let tunnels = TunnelSet::compute(&topo, RoutingScheme::Ksp(2));
        let scenarios = ScenarioSet::enumerate(&topo, topo.num_groups());
        (topo, tunnels, scenarios)
    }

    #[test]
    fn motivating_example_is_feasible_optimally() {
        let (topo, tunnels, scenarios) = ctx_toy();
        let ctx = TeContext::new(&topo, &tunnels, &scenarios);
        let n = |s: &str| topo.find_node(s).unwrap();
        let pair = tunnels.pair_index(n("DC1"), n("DC4")).unwrap();
        let demands = vec![
            BaDemand::single(1, pair, 6000.0, 0.99),
            BaDemand::single(2, pair, 12_000.0, 0.90),
        ];
        assert!(optimal_feasible(&ctx, &demands).unwrap());
    }

    #[test]
    fn overload_is_rejected_and_maximization_picks_a_subset() {
        let (topo, tunnels, scenarios) = ctx_toy();
        let ctx = TeContext::new(&topo, &tunnels, &scenarios);
        let n = |s: &str| topo.find_node(s).unwrap();
        let pair = tunnels.pair_index(n("DC1"), n("DC4")).unwrap();
        // Three 9 Gbps demands cannot all fit through a 20 Gbps cut.
        let demands: Vec<BaDemand> = (0..3)
            .map(|i| BaDemand::single(i, pair, 9000.0, 0.5))
            .collect();
        assert!(!optimal_feasible(&ctx, &demands).unwrap());
        let res = maximize_admissions(&ctx, &demands).unwrap();
        let count = res.accepted.iter().filter(|&&a| a).count();
        assert_eq!(count, 2, "exactly two 9 Gbps demands fit");
    }

    #[test]
    fn optimal_beats_or_matches_greedy_conjecture() {
        // The greedy conjecture has no false positives, so anything it
        // admits the optimal check must also admit.
        let topo = topologies::testbed6();
        let tunnels = TunnelSet::compute(&topo, RoutingScheme::Ksp(3));
        let scenarios = ScenarioSet::enumerate(&topo, topo.num_groups());
        let ctx = TeContext::new(&topo, &tunnels, &scenarios);
        let n = |s: &str| topo.find_node(s).unwrap();
        let pair = tunnels.pair_index(n("DC1"), n("DC3")).unwrap();
        let demands = vec![
            BaDemand::single(1, pair, 500.0, 0.99),
            BaDemand::single(2, pair, 400.0, 0.95),
        ];
        if crate::admission::greedy::conjecture(&ctx, &demands) {
            assert!(optimal_feasible(&ctx, &demands).unwrap());
        }
    }
}
