//! Bandwidth-availability demands (§3.1) and the B4 availability classes of
//! Table 1.

use serde::{Deserialize, Serialize};

/// Unique demand identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct DemandId(pub u64);

/// A bandwidth-availability demand `d = (b_d, β_d)` with the pricing fields
/// the failure-recovery model needs.
///
/// `bandwidth` is the vector `<b_d^1, b_d^2, ...>` over s-d pairs, stored
/// sparsely as `(pair index, rate)` where the pair index refers to a
/// [`bate_routing::TunnelSet`]. Start/end times are carried by the simulator
/// (the demand itself is timeless, matching footnote 4 of the paper).
#[derive(Debug, Clone)]
pub struct BaDemand {
    pub id: DemandId,
    /// Per s-d pair bandwidth requests; pair indices must be distinct.
    pub bandwidth: Vec<(usize, f64)>,
    /// Availability target `β_d` in `[0, 1]` (e.g. 0.9999).
    pub beta: f64,
    /// Charge `g_d` for serving the demand (unit price × Mbps per §5.1).
    pub price: f64,
    /// Refund fraction `μ_d` returned to the customer when the BA target is
    /// violated.
    pub refund_ratio: f64,
}

impl BaDemand {
    /// Single-pair demand with pricing of one unit per Mbps and no refund.
    pub fn single(id: u64, pair: usize, bandwidth: f64, beta: f64) -> BaDemand {
        assert!(bandwidth > 0.0, "bandwidth must be positive");
        assert!((0.0..=1.0).contains(&beta), "beta must be in [0, 1]");
        BaDemand {
            id: DemandId(id),
            bandwidth: vec![(pair, bandwidth)],
            beta,
            price: bandwidth,
            refund_ratio: 0.0,
        }
    }

    /// Builder-style: set the charge `g_d`.
    pub fn with_price(mut self, price: f64) -> BaDemand {
        self.price = price;
        self
    }

    /// Builder-style: set the refund fraction `μ_d`.
    pub fn with_refund(mut self, refund_ratio: f64) -> BaDemand {
        assert!((0.0..=1.0).contains(&refund_ratio));
        self.refund_ratio = refund_ratio;
        self
    }

    /// Total requested bandwidth `Σ_k b_d^k`.
    pub fn total_bandwidth(&self) -> f64 {
        self.bandwidth.iter().map(|(_, b)| b).sum()
    }

    /// The admission-ordering key of Algorithm 1: `Σ_k b_d^k × β_d`.
    pub fn admission_key(&self) -> f64 {
        self.total_bandwidth() * self.beta
    }

    /// Profit density used by recovery Algorithm 2: `g_d / Σ_k b_d^k`.
    pub fn profit_density(&self) -> f64 {
        self.price / self.total_bandwidth().max(f64::MIN_POSITIVE)
    }

    /// Requested bandwidth on a pair (zero if the pair is not requested).
    pub fn bandwidth_on(&self, pair: usize) -> f64 {
        self.bandwidth
            .iter()
            .find(|(p, _)| *p == pair)
            .map(|(_, b)| *b)
            .unwrap_or(0.0)
    }
}

/// The availability classes Google publishes for B4 services (Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AvailabilityClass {
    /// Search ads, DNS, WWW — 99.99 %.
    Critical,
    /// Photo service backend, Email — 99.95 %.
    High,
    /// Ads database replication — 99.9 %.
    Medium,
    /// Search-index copies, logs — 99 %.
    Low,
    /// Bulk transfer — no availability target.
    BestEffort,
}

impl AvailabilityClass {
    /// The availability target as a fraction.
    pub fn target(self) -> f64 {
        match self {
            AvailabilityClass::Critical => 0.9999,
            AvailabilityClass::High => 0.9995,
            AvailabilityClass::Medium => 0.999,
            AvailabilityClass::Low => 0.99,
            AvailabilityClass::BestEffort => 0.0,
        }
    }

    /// Example services in each class, from Table 1.
    pub fn example_services(self) -> &'static str {
        match self {
            AvailabilityClass::Critical => "Search ads, DNS, WWW",
            AvailabilityClass::High => "Photo service, backend, Email",
            AvailabilityClass::Medium => "Ads database replication",
            AvailabilityClass::Low => "Search index copies, logs",
            AvailabilityClass::BestEffort => "Bulk transfer",
        }
    }

    /// All classes, highest availability first (Table 1 order).
    pub fn all() -> [AvailabilityClass; 5] {
        [
            AvailabilityClass::Critical,
            AvailabilityClass::High,
            AvailabilityClass::Medium,
            AvailabilityClass::Low,
            AvailabilityClass::BestEffort,
        ]
    }

    /// The availability-target pool §5.1 draws from on the testbed.
    pub fn testbed_targets() -> [f64; 5] {
        [0.95, 0.99, 0.999, 0.9995, 0.9999]
    }

    /// The availability-target pool §5.2 draws from in simulations.
    pub fn simulation_targets() -> [f64; 7] {
        [0.0, 0.90, 0.95, 0.99, 0.999, 0.9995, 0.9999]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_demand_defaults() {
        let d = BaDemand::single(1, 0, 100.0, 0.99);
        assert_eq!(d.total_bandwidth(), 100.0);
        assert_eq!(d.price, 100.0); // unit price per Mbps
        assert_eq!(d.refund_ratio, 0.0);
        assert!((d.admission_key() - 99.0).abs() < 1e-12);
    }

    #[test]
    fn multi_pair_totals() {
        let d = BaDemand {
            id: DemandId(2),
            bandwidth: vec![(0, 10.0), (3, 30.0)],
            beta: 0.9,
            price: 80.0,
            refund_ratio: 0.25,
        };
        assert_eq!(d.total_bandwidth(), 40.0);
        assert_eq!(d.bandwidth_on(3), 30.0);
        assert_eq!(d.bandwidth_on(1), 0.0);
        assert!((d.profit_density() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn table1_targets() {
        assert_eq!(AvailabilityClass::Critical.target(), 0.9999);
        assert_eq!(AvailabilityClass::Low.target(), 0.99);
        assert_eq!(AvailabilityClass::BestEffort.target(), 0.0);
        assert_eq!(AvailabilityClass::all().len(), 5);
        // Classes are ordered by decreasing availability.
        let targets: Vec<f64> = AvailabilityClass::all()
            .iter()
            .map(|c| c.target())
            .collect();
        for w in targets.windows(2) {
            assert!(w[0] >= w[1]);
        }
    }

    #[test]
    #[should_panic(expected = "beta")]
    fn rejects_bad_beta() {
        BaDemand::single(1, 0, 1.0, 1.5);
    }
}
