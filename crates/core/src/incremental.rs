//! Incremental TE: warm-start scheduling and admission across rounds
//! (DESIGN.md §5e).
//!
//! The batch path ([`crate::scheduling`]) rebuilds its master LP from
//! scratch every round, even when the demand set changed by a few percent.
//! [`IncrementalScheduler`] keeps the row-generation master *alive*
//! between rounds inside a [`WarmState`]: demand churn arrives as
//! [`DemandDelta`]s, each delta edits the master in place under the
//! warm-start mutation contract, and the next solve repairs the saved
//! simplex basis (dual simplex for retired/tightened work, priced-in
//! columns for new demands) instead of running cold.
//!
//! Delta semantics:
//!
//! * **Add** — append the demand's `f`/`B` columns, its Eq. 1 / seeded
//!   qualification / Eq. 4 rows, and splice the new flow columns into the
//!   existing capacity rows.
//! * **Remove** — retire in place: every column's upper bound drops to
//!   zero and the demand's `≥` rows drop to a zero rhs. Rows stay in the
//!   master (structurally unchanged ⇒ the basis survives); the dead
//!   columns are reclaimed by a periodic compaction once they exceed
//!   [`COMPACT_DEAD_FRACTION`] of the master.
//! * **Resize** — remove + re-add under the same id (the bandwidth `b`
//!   appears as a *coefficient* of the qualification rows, which in-place
//!   edits cannot touch).
//!
//! Correctness never rests on the warm path: every warm answer must pass
//! the float KKT gate ([`bate_lp::quick_check`]) or the round is redone
//! cold (the PR-4 cold-retry pattern), and separation always finishes
//! with a clean pass over **all** live demands — the delta-touched fast
//! path only decides which rows to look at first. The differential fuzz
//! campaign certifies warm optima against the exact rational oracle.

use crate::allocation::Allocation;
use crate::demand::{BaDemand, DemandId};
use crate::profile::MaskedProfile;
use crate::scheduling::{separate_demand, RowGenStats, ScheduleResult, ROWGEN_SEED_SINGLES};
use crate::TeContext;
use bate_lp::{quick_check, Relation, Sense, Solution, SolveError, VarId, WarmState};
use bate_obs::{Counter, Histogram, Registry};
use bate_routing::TunnelId;
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// Tolerance of the float KKT gate on warm answers.
const CERT_TOL: f64 = 1e-6;

/// Compact (rebuild the master from the live demands) once retired
/// columns exceed this fraction of all columns…
pub const COMPACT_DEAD_FRACTION: f64 = 0.3;
/// …and at least this many columns are dead (small masters never compact;
/// the rebuild would cost more than the dead weight).
pub const COMPACT_DEAD_FLOOR: usize = 64;

/// One demand-churn edit between scheduling rounds.
#[derive(Debug, Clone)]
pub enum DemandDelta {
    /// A new demand enters the pool.
    Add(BaDemand),
    /// An admitted demand leaves the pool.
    Remove(DemandId),
    /// An admitted demand rescales every pair bandwidth by `factor`
    /// (price rescales with it; β is unchanged).
    Resize { id: DemandId, factor: f64 },
}

/// Counters the scheduler accumulates across its lifetime (survive
/// compaction rebuilds).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IncrementalStats {
    /// Deltas applied.
    pub deltas: u64,
    /// Master solves that reused a saved basis.
    pub warm_rounds: u64,
    /// Master solves that ran cold.
    pub cold_rounds: u64,
    /// Dual-simplex repair pivots across all warm solves.
    pub dual_pivots: u64,
    /// Warm answers that failed the KKT gate and were redone cold.
    pub cert_fallbacks: u64,
    /// Warm solves that errored and were retried from a cold workspace.
    pub cold_retries: u64,
    /// Full master rebuilds triggered by the dead-column threshold.
    pub compactions: u64,
}

/// Registry handles for the incremental warm-start metric family.
struct WarmMetrics {
    rounds: Arc<Counter>,
    cold_rounds: Arc<Counter>,
    cert_fallbacks: Arc<Counter>,
    dual_pivots: Arc<Counter>,
    deltas: Arc<Counter>,
    compactions: Arc<Counter>,
    resolve_ms: Arc<Histogram>,
    cert_check_ns: Arc<Histogram>,
}

fn warm_metrics() -> &'static WarmMetrics {
    static M: OnceLock<WarmMetrics> = OnceLock::new();
    M.get_or_init(|| {
        let r = Registry::global();
        WarmMetrics {
            rounds: r.counter("bate_warm_rounds_total"),
            cold_rounds: r.counter("bate_warm_cold_rounds_total"),
            cert_fallbacks: r.counter("bate_warm_cert_fallbacks_total"),
            dual_pivots: r.counter("bate_warm_dual_pivots_total"),
            deltas: r.counter("bate_warm_deltas_total"),
            compactions: r.counter("bate_warm_compactions_total"),
            resolve_ms: r.histogram("bate_warm_resolve_ms"),
            cert_check_ns: r.histogram("bate_solve_phase_cert_check_ns"),
        }
    })
}

/// Force-register the incremental warm-start metric family so it renders
/// (at zero) before the first delta round — the controller calls this at
/// startup alongside the solver/admission families.
pub fn register_metrics() {
    let _ = warm_metrics();
}

/// Master-problem bookkeeping for one demand, live or retired.
#[derive(Debug)]
struct Slot {
    demand: BaDemand,
    profile: MaskedProfile,
    /// `f[local pair][tunnel]`.
    f_vars: Vec<Vec<VarId>>,
    /// `B[collapsed state]`.
    b_vars: Vec<VarId>,
    /// Eq. 1 coverage rows, one per pair.
    eq1_rows: Vec<usize>,
    /// Eq. 4 availability row.
    avail_row: usize,
    /// Qualification rows present in the master, `[si * pairs + ki]`.
    added: Vec<bool>,
    alive: bool,
    /// Touched by a delta since the last clean separation pass.
    dirty: bool,
}

/// A row-generation scheduling master that survives demand churn.
///
/// All methods take the same [`TeContext`] the scheduler was created
/// with; the context is borrowed per call because it borrows the
/// topology/tunnels/scenarios (handing in a different context is a logic
/// error and yields unspecified allocations).
#[derive(Debug)]
pub struct IncrementalScheduler {
    warm: WarmState,
    slots: Vec<Slot>,
    capacities: Vec<f64>,
    /// Row index of each link's capacity constraint (None: link unused
    /// by any demand seen so far).
    capacity_row: Vec<Option<usize>>,
    /// Seed scenarios (most probable singles), fixed at construction.
    tracked: Vec<usize>,
    /// Columns retired by Remove/Resize, pending compaction.
    dead_cols: usize,
    stats: IncrementalStats,
    last_solution: Option<Solution>,
    ever_solved: bool,
    force_cert_failure: bool,
}

impl IncrementalScheduler {
    /// Empty scheduler over the full link capacities.
    pub fn new(ctx: &TeContext) -> Self {
        let caps: Vec<f64> = ctx.topo.links().map(|(_, l)| l.capacity).collect();
        Self::with_capacities(ctx, caps)
    }

    /// Empty scheduler over explicit per-link capacities.
    pub fn with_capacities(ctx: &TeContext, capacities: Vec<f64>) -> Self {
        assert_eq!(capacities.len(), ctx.topo.num_links());
        let tracked = ctx.scenarios.most_probable_singles(ROWGEN_SEED_SINGLES);
        let capacity_row = vec![None; ctx.topo.num_links()];
        IncrementalScheduler {
            warm: WarmState::new(bate_lp::Problem::new(Sense::Minimize)),
            slots: Vec::new(),
            capacities,
            capacity_row,
            tracked,
            dead_cols: 0,
            stats: IncrementalStats::default(),
            last_solution: None,
            ever_solved: false,
            force_cert_failure: false,
        }
    }

    /// Lifetime counters (survive compactions).
    pub fn stats(&self) -> IncrementalStats {
        self.stats
    }

    /// The live demands, in admission order.
    pub fn demands(&self) -> Vec<&BaDemand> {
        self.slots
            .iter()
            .filter(|s| s.alive)
            .map(|s| &s.demand)
            .collect()
    }

    /// The current master problem — what the exact rational oracle
    /// certifies the warm optimum against.
    pub fn problem(&self) -> &bate_lp::Problem {
        self.warm.problem()
    }

    /// The most recent accepted master optimum.
    pub fn last_solution(&self) -> Option<&Solution> {
        self.last_solution.as_ref()
    }

    /// Make the next warm-accepted answer fail its KKT gate, forcing the
    /// cold-fallback path. Test hook for the fallback regression suite.
    #[doc(hidden)]
    pub fn force_cert_failure_once(&mut self) {
        self.force_cert_failure = true;
    }

    /// Apply a batch of churn deltas and re-solve. Returns the new
    /// schedule for the live demand set; the master, basis, and
    /// separation state persist for the next call.
    pub fn apply(
        &mut self,
        ctx: &TeContext,
        deltas: &[DemandDelta],
    ) -> Result<ScheduleResult, SolveError> {
        let m = warm_metrics();
        let t0 = Instant::now();
        self.stats.deltas += deltas.len() as u64;
        m.deltas.add(deltas.len() as u64);
        for delta in deltas {
            match delta {
                DemandDelta::Add(d) => self.add_demand(ctx, d.clone(), None)?,
                DemandDelta::Remove(id) => self.remove_demand(*id),
                DemandDelta::Resize { id, factor } => self.resize_demand(ctx, *id, *factor)?,
            }
        }
        if self.should_compact() {
            self.compact(ctx)?;
        }
        let result = self.resolve(ctx);
        m.resolve_ms.observe_ms(t0.elapsed());
        result
    }

    /// Incremental admission: tentatively add `demand` and re-solve. On
    /// success the demand stays admitted and its schedule is returned; if
    /// the pool cannot carry it the tentative add is rolled back (the
    /// demand is retired in place) and `Ok(None)` comes back with the
    /// previous pool intact.
    pub fn try_admit(
        &mut self,
        ctx: &TeContext,
        demand: &BaDemand,
    ) -> Result<Option<ScheduleResult>, SolveError> {
        let id = demand.id;
        match self.apply(ctx, std::slice::from_ref(&DemandDelta::Add(demand.clone()))) {
            Ok(res) => Ok(Some(res)),
            Err(SolveError::Infeasible) => {
                // Roll back: retire the newcomer and restore the pool's
                // schedule (the pre-add master was feasible, so this
                // re-solve succeeds unless the pool itself was broken).
                self.apply(ctx, &[DemandDelta::Remove(id)])?;
                Ok(None)
            }
            Err(e) => Err(e),
        }
    }

    // --- delta application -------------------------------------------

    /// `carry` is the previous incarnation's qualification bitmap (resize
    /// and compaction): rows the separation oracle already paid to
    /// discover are regenerated up front instead of being re-discovered
    /// one master solve at a time. The collapse depends only on the
    /// demand's pairs and the tracked set — both unchanged across a
    /// resize/compaction — so the bitmap shape is guaranteed to match.
    fn add_demand(
        &mut self,
        ctx: &TeContext,
        demand: BaDemand,
        carry: Option<Vec<bool>>,
    ) -> Result<(), SolveError> {
        assert!(
            !self
                .slots
                .iter()
                .any(|s| s.alive && s.demand.id == demand.id),
            "demand {:?} is already admitted",
            demand.id
        );
        let profile = MaskedProfile::collapse(ctx, &demand, &self.tracked);
        let p = self.warm.problem_mut();

        // Flow columns, objective 1.0 (minimize total bandwidth).
        let mut f_vars: Vec<Vec<VarId>> = Vec::with_capacity(demand.bandwidth.len());
        for &(pair, _) in &demand.bandwidth {
            let tunnels = ctx.tunnels.tunnels(pair);
            if tunnels.is_empty() {
                return Err(SolveError::BadModel(format!(
                    "demand {} requests a pair with no tunnels",
                    demand.id.0
                )));
            }
            let vars: Vec<VarId> = (0..tunnels.len())
                .map(|t| {
                    let v = p.add_var(&format!("f[{}][{pair}][{t}]", demand.id.0));
                    p.set_objective(v, 1.0);
                    v
                })
                .collect();
            f_vars.push(vars);
        }

        // Eq. 1 coverage rows.
        let mut eq1_rows = Vec::with_capacity(demand.bandwidth.len());
        for (ki, &(_, b)) in demand.bandwidth.iter().enumerate() {
            let terms: Vec<(VarId, f64)> = f_vars[ki].iter().map(|&v| (v, 1.0)).collect();
            eq1_rows.push(p.add_constraint(&terms, Relation::Ge, b));
        }

        // Delivered-fraction columns and the seeded qualification rows
        // (all-up state plus wherever the tracked singles collapsed to).
        let b_vars: Vec<VarId> = (0..profile.len())
            .map(|s| p.add_bounded_var(&format!("B[{}][{s}]", demand.id.0), 1.0))
            .collect();
        let pairs = demand.bandwidth.len();
        let mut seeded = vec![false; profile.len()];
        if !seeded.is_empty() {
            seeded[0] = true;
        }
        for &si in &profile.tracked_states {
            seeded[si] = true;
        }
        let carry = carry.filter(|c| c.len() == profile.len() * pairs);
        let mut added = vec![false; profile.len() * pairs];
        for (si, state) in profile.states.iter().enumerate() {
            for (ki, &(_, b)) in demand.bandwidth.iter().enumerate() {
                if !seeded[si] && !carry.as_ref().is_some_and(|c| c[si * pairs + ki]) {
                    continue;
                }
                let mut terms: Vec<(VarId, f64)> = vec![(b_vars[si], b)];
                for (ti, &fv) in f_vars[ki].iter().enumerate() {
                    if state.masks[ki] >> ti & 1 == 1 {
                        terms.push((fv, -1.0));
                    }
                }
                p.add_constraint(&terms, Relation::Le, 0.0);
                added[si * pairs + ki] = true;
            }
        }

        // Eq. 4 availability row.
        let avail_terms: Vec<(VarId, f64)> = b_vars
            .iter()
            .zip(&profile.states)
            .map(|(&v, s)| (v, s.probability))
            .collect();
        let avail_row = p.add_constraint(&avail_terms, Relation::Ge, demand.beta);

        // Splice the new flow columns into the capacity rows (Eq. 6);
        // links no admitted demand has used yet get a fresh row.
        let mut per_link: Vec<Vec<(VarId, f64)>> = vec![Vec::new(); self.capacity_row.len()];
        for (ki, &(pair, _)) in demand.bandwidth.iter().enumerate() {
            for (ti, &fv) in f_vars[ki].iter().enumerate() {
                let path = ctx.tunnels.path(TunnelId { pair, tunnel: ti });
                for &l in &path.links {
                    per_link[l.index()].push((fv, 1.0));
                }
            }
        }
        for (li, terms) in per_link.iter().enumerate() {
            if terms.is_empty() {
                continue;
            }
            match self.capacity_row[li] {
                Some(row) => p.extend_constraint(row, terms),
                None => {
                    self.capacity_row[li] =
                        Some(p.add_constraint(terms, Relation::Le, self.capacities[li]));
                }
            }
        }

        self.slots.push(Slot {
            demand,
            profile,
            f_vars,
            b_vars,
            eq1_rows,
            avail_row,
            added,
            alive: true,
            dirty: true,
        });
        Ok(())
    }

    fn remove_demand(&mut self, id: DemandId) {
        let Some(slot) = self.slots.iter_mut().find(|s| s.alive && s.demand.id == id) else {
            return; // removing an unknown demand is a no-op
        };
        let p = self.warm.problem_mut();
        let mut retired = 0usize;
        for per_pair in &slot.f_vars {
            for &v in per_pair {
                p.set_var_upper(v, 0.0);
                retired += 1;
            }
        }
        for &v in &slot.b_vars {
            p.set_var_upper(v, 0.0);
            retired += 1;
        }
        // The `≥` rows must release (Σf ≥ 0 and Σ p·B ≥ 0 are vacuous);
        // the `≤` qualification rows hold trivially at zero and stay.
        for &row in &slot.eq1_rows {
            p.set_rhs(row, 0.0);
        }
        p.set_rhs(slot.avail_row, 0.0);
        slot.alive = false;
        slot.dirty = false;
        self.dead_cols += retired;
    }

    fn resize_demand(
        &mut self,
        ctx: &TeContext,
        id: DemandId,
        factor: f64,
    ) -> Result<(), SolveError> {
        assert!(factor > 0.0, "resize factor must be positive");
        let Some(slot) = self.slots.iter().find(|s| s.alive && s.demand.id == id) else {
            return Ok(()); // resizing an unknown demand is a no-op
        };
        // `b` is a coefficient of every qualification row, so a resize is
        // remove + re-add under the same id (the in-place contract only
        // covers rhs and bound edits). The qualification rows already
        // generated for the old incarnation carry over — which rows bind
        // depends on the availability patterns, not the magnitude of `b`.
        let mut demand = slot.demand.clone();
        let carried = slot.added.clone();
        for (_, b) in &mut demand.bandwidth {
            *b *= factor;
        }
        demand.price *= factor;
        self.remove_demand(id);
        self.add_demand(ctx, demand, Some(carried))
    }

    // --- compaction ---------------------------------------------------

    fn should_compact(&self) -> bool {
        let total = self.warm.problem().num_vars();
        self.dead_cols >= COMPACT_DEAD_FLOOR
            && total > 0
            && (self.dead_cols as f64) > COMPACT_DEAD_FRACTION * (total as f64)
    }

    /// Rebuild the master from the live demands only. Loses the basis
    /// (the next solve is cold) but sheds every retired column and row.
    fn compact(&mut self, ctx: &TeContext) -> Result<(), SolveError> {
        let live: Vec<(BaDemand, Vec<bool>)> = self
            .slots
            .iter()
            .filter(|s| s.alive)
            .map(|s| (s.demand.clone(), s.added.clone()))
            .collect();
        let mut fresh = IncrementalScheduler::with_capacities(ctx, self.capacities.clone());
        for (d, added) in live {
            // The discovered cut pool survives the rebuild; only the
            // basis is lost (the next solve is cold).
            fresh.add_demand(ctx, d, Some(added))?;
        }
        fresh.stats = self.stats;
        fresh.stats.compactions += 1;
        warm_metrics().compactions.inc();
        *self = fresh;
        Ok(())
    }

    // --- the warm solve loop ------------------------------------------

    /// One master solve, with the cold-retry pattern: a failed solve on an
    /// armed workspace is retried once from scratch before the error
    /// propagates (a warm install can degenerate-cycle into the simplex
    /// guards on an LP that solves cleanly cold).
    fn solve_master(&mut self) -> Result<Solution, SolveError> {
        match self.warm.solve() {
            Ok(sol) => Ok(sol),
            Err(_) if self.ever_solved => {
                self.stats.cold_retries += 1;
                self.warm.rebuild_cold();
                self.warm.solve()
            }
            Err(e) => Err(e),
        }
    }

    /// Gate a warm answer behind the float KKT certificate; fall back to
    /// a cold re-solve when it fails (or when the test hook forces it).
    fn certify(&mut self, sol: Solution) -> Result<Solution, SolveError> {
        if !sol.stats.warm_start {
            return Ok(sol);
        }
        let forced = std::mem::take(&mut self.force_cert_failure);
        let t_cert = Instant::now();
        let pass = !forced && quick_check(self.warm.problem(), &sol, CERT_TOL);
        warm_metrics()
            .cert_check_ns
            .observe(t_cert.elapsed().as_nanos() as f64);
        if pass {
            return Ok(sol);
        }
        self.stats.cert_fallbacks += 1;
        warm_metrics().cert_fallbacks.inc();
        // A cert-gate cold fallback is a flight-recorder trigger: dump the
        // causal slice of the trace whose solve tripped the gate (trace 0 —
        // untraced callers — dumps the whole ring in canonical order).
        let cur = bate_obs::context::current();
        if cur.is_some() {
            bate_obs::warn!("warm.cert_fallback", forced = forced);
        }
        bate_obs::flight::trigger("cert_cold_fallback", cur.trace_id);
        self.warm.rebuild_cold();
        self.warm.solve()
    }

    /// Separation sweep. `dirty_only` restricts the sweep to the slots a
    /// delta touched (the fast path); the certifying pass that ends every
    /// round always covers the full live set.
    fn separate(&self, sol: &Solution, dirty_only: bool) -> Vec<(usize, Vec<(usize, usize)>)> {
        let idx: Vec<usize> = self
            .slots
            .iter()
            .enumerate()
            .filter(|(_, s)| s.alive && (!dirty_only || s.dirty))
            .map(|(i, _)| i)
            .collect();
        let hits: Vec<Vec<(usize, usize)>> = bate_lp::par_map(&idx, |&i| {
            let slot = &self.slots[i];
            let f_vals: Vec<Vec<f64>> = slot
                .f_vars
                .iter()
                .map(|per_pair| per_pair.iter().map(|&v| sol[v]).collect())
                .collect();
            let b_vals: Vec<f64> = slot.b_vars.iter().map(|&v| sol[v]).collect();
            separate_demand(&slot.demand, &slot.profile, &f_vals, &b_vals, &slot.added)
        });
        idx.into_iter()
            .zip(hits)
            .filter(|(_, v)| !v.is_empty())
            .collect()
    }

    fn append_cuts(&mut self, violated: &[(usize, Vec<(usize, usize)>)]) -> u64 {
        let mut fresh = 0u64;
        for &(i, ref rows) in violated {
            let slot = &mut self.slots[i];
            let pairs = slot.demand.bandwidth.len();
            for &(si, ki) in rows {
                let b = slot.demand.bandwidth[ki].1;
                let mut terms: Vec<(VarId, f64)> = vec![(slot.b_vars[si], b)];
                for (ti, &fv) in slot.f_vars[ki].iter().enumerate() {
                    if slot.profile.states[si].masks[ki] >> ti & 1 == 1 {
                        terms.push((fv, -1.0));
                    }
                }
                self.warm.problem_mut().add_constraint(&terms, Relation::Le, 0.0);
                slot.added[si * pairs + ki] = true;
                fresh += 1;
            }
        }
        fresh
    }

    /// The warm row-generation loop: solve, gate, separate (delta-touched
    /// slots first, then the certifying full pass), cut, repeat.
    fn resolve(&mut self, ctx: &TeContext) -> Result<ScheduleResult, SolveError> {
        let m = warm_metrics();
        let mut rg = RowGenStats::default();
        let fallbacks_before = self.stats.cert_fallbacks;
        let sol = loop {
            let sol = match self.solve_master().and_then(|s| self.certify(s)) {
                Ok(sol) => sol,
                Err(e) => {
                    // A dirty master must not poison the next round: the
                    // workspace already dropped its basis on the error
                    // path, so the next apply() starts cold.
                    self.last_solution = None;
                    return Err(e);
                }
            };
            self.ever_solved = true;
            rg.rounds += 1;
            if sol.stats.warm_start {
                self.stats.warm_rounds += 1;
                rg.warm_rounds += 1;
                m.rounds.inc();
            } else {
                self.stats.cold_rounds += 1;
                m.rounds.inc();
                m.cold_rounds.inc();
            }
            self.stats.dual_pivots += sol.stats.dual_pivots;
            rg.dual_repair_pivots += sol.stats.dual_pivots;
            m.dual_pivots.add(sol.stats.dual_pivots);

            let t_sep = Instant::now();
            let mut violated = self.separate(&sol, true);
            if violated.is_empty() {
                violated = self.separate(&sol, false);
            }
            rg.separation_ns += t_sep.elapsed().as_nanos() as u64;
            let fresh = self.append_cuts(&violated);
            rg.rows_per_round.push(fresh as u32);
            if fresh == 0 {
                break sol;
            }
            rg.rows_added += fresh;
        };
        for slot in &mut self.slots {
            slot.dirty = false;
        }
        rg.cert_fallbacks = (self.stats.cert_fallbacks - fallbacks_before) as u32;
        rg.master_rows = self.warm.problem().num_constraints() as u32;
        rg.full_rows = self.full_formulation_rows() as u32;

        let result = self.extract(ctx, &sol, rg);
        self.last_solution = Some(sol);
        Ok(result)
    }

    /// Rows the batch full formulation would carry for the live set.
    fn full_formulation_rows(&self) -> usize {
        let qual: usize = self
            .slots
            .iter()
            .filter(|s| s.alive)
            .map(|s| s.profile.len() * s.demand.bandwidth.len() + s.eq1_rows.len() + 1)
            .sum();
        qual + self.capacity_row.iter().filter(|r| r.is_some()).count()
    }

    fn extract(&self, ctx: &TeContext, sol: &Solution, rg: RowGenStats) -> ScheduleResult {
        let link_prices: Vec<f64> = match &sol.duals {
            Some(duals) => self
                .capacity_row
                .iter()
                .map(|row| row.map(|r| duals[r].abs()).unwrap_or(0.0))
                .collect(),
            None => vec![0.0; ctx.topo.num_links()],
        };
        let mut allocation = Allocation::new();
        for slot in self.slots.iter().filter(|s| s.alive) {
            for (ki, &(pair, _)) in slot.demand.bandwidth.iter().enumerate() {
                for (ti, &fv) in slot.f_vars[ki].iter().enumerate() {
                    let f = sol[fv];
                    if f > 1e-9 {
                        allocation.set(slot.demand.id, TunnelId { pair, tunnel: ti }, f);
                    }
                }
            }
        }
        ScheduleResult {
            total_bandwidth: sol.objective,
            allocation,
            link_prices,
            solve_stats: sol.stats.clone(),
            rowgen: Some(rg),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduling::{schedule_with_capacities_mode, SolveMode};
    use bate_net::{topologies, ScenarioSet};
    use bate_routing::{RoutingScheme, TunnelSet};

    fn ctx_parts() -> (bate_net::Topology, TunnelSet, ScenarioSet) {
        let topo = topologies::toy4();
        let tunnels = TunnelSet::compute(&topo, RoutingScheme::Ksp(2));
        let scenarios = ScenarioSet::enumerate(&topo, 3);
        (topo, tunnels, scenarios)
    }

    fn cold_objective(ctx: &TeContext, demands: &[BaDemand]) -> f64 {
        let caps: Vec<f64> = ctx.topo.links().map(|(_, l)| l.capacity).collect();
        schedule_with_capacities_mode(ctx, demands, &caps, SolveMode::Full)
            .unwrap()
            .total_bandwidth
    }

    fn approx(a: f64, b: f64) {
        assert!((a - b).abs() <= 1e-6 * (1.0 + a.abs()), "{a} != {b}");
    }

    #[test]
    fn incremental_add_matches_batch_cold() {
        let (topo, tunnels, scenarios) = ctx_parts();
        let ctx = TeContext::new(&topo, &tunnels, &scenarios);
        let n = |s: &str| topo.find_node(s).unwrap();
        let pair = tunnels.pair_index(n("DC1"), n("DC4")).unwrap();
        let d1 = BaDemand::single(1, pair, 4000.0, 0.99);
        let d2 = BaDemand::single(2, pair, 6000.0, 0.9);

        let mut inc = IncrementalScheduler::new(&ctx);
        let r1 = inc
            .apply(&ctx, &[DemandDelta::Add(d1.clone())])
            .unwrap();
        approx(r1.total_bandwidth, cold_objective(&ctx, std::slice::from_ref(&d1)));

        let r2 = inc
            .apply(&ctx, &[DemandDelta::Add(d2.clone())])
            .unwrap();
        approx(r2.total_bandwidth, cold_objective(&ctx, &[d1, d2]));
        // The second round rides the saved basis.
        let rg = r2.rowgen.unwrap();
        assert!(rg.warm_rounds > 0, "second round should warm-start: {rg:?}");
        assert!(inc.stats().warm_rounds > 0);
    }

    #[test]
    fn remove_releases_capacity_and_matches_cold() {
        let (topo, tunnels, scenarios) = ctx_parts();
        let ctx = TeContext::new(&topo, &tunnels, &scenarios);
        let n = |s: &str| topo.find_node(s).unwrap();
        let pair = tunnels.pair_index(n("DC1"), n("DC4")).unwrap();
        let d1 = BaDemand::single(1, pair, 4000.0, 0.99);
        let d2 = BaDemand::single(2, pair, 6000.0, 0.9);

        let mut inc = IncrementalScheduler::new(&ctx);
        inc.apply(
            &ctx,
            &[DemandDelta::Add(d1.clone()), DemandDelta::Add(d2.clone())],
        )
        .unwrap();
        let r = inc
            .apply(&ctx, &[DemandDelta::Remove(d1.id)])
            .unwrap();
        approx(r.total_bandwidth, cold_objective(&ctx, std::slice::from_ref(&d2)));
        assert_eq!(inc.demands().len(), 1);
        // The retired demand carries no flow.
        assert_eq!(r.allocation.flows_of(d1.id).count(), 0);
    }

    #[test]
    fn resize_matches_cold_at_new_rate() {
        let (topo, tunnels, scenarios) = ctx_parts();
        let ctx = TeContext::new(&topo, &tunnels, &scenarios);
        let n = |s: &str| topo.find_node(s).unwrap();
        let pair = tunnels.pair_index(n("DC1"), n("DC4")).unwrap();
        let d = BaDemand::single(1, pair, 4000.0, 0.99);

        let mut inc = IncrementalScheduler::new(&ctx);
        inc.apply(&ctx, &[DemandDelta::Add(d.clone())]).unwrap();
        let r = inc
            .apply(&ctx, &[DemandDelta::Resize { id: d.id, factor: 1.5 }])
            .unwrap();
        let resized = BaDemand::single(1, pair, 6000.0, 0.99);
        approx(r.total_bandwidth, cold_objective(&ctx, &[resized]));
    }

    #[test]
    fn try_admit_rolls_back_on_infeasible() {
        let (topo, tunnels, scenarios) = ctx_parts();
        let ctx = TeContext::new(&topo, &tunnels, &scenarios);
        let n = |s: &str| topo.find_node(s).unwrap();
        let pair = tunnels.pair_index(n("DC1"), n("DC4")).unwrap();
        let d1 = BaDemand::single(1, pair, 4000.0, 0.9);
        // 30 Gbps through a 20 Gbps cut — infeasible.
        let hog = BaDemand::single(2, pair, 30_000.0, 0.5);
        let d3 = BaDemand::single(3, pair, 2000.0, 0.9);

        let mut inc = IncrementalScheduler::new(&ctx);
        inc.apply(&ctx, &[DemandDelta::Add(d1.clone())]).unwrap();
        assert!(inc.try_admit(&ctx, &hog).unwrap().is_none());
        assert_eq!(inc.demands().len(), 1, "rejected demand must not linger");
        // The pool still works after the rollback.
        let r = inc.try_admit(&ctx, &d3).unwrap().unwrap();
        approx(r.total_bandwidth, cold_objective(&ctx, &[d1, d3]));
    }

    #[test]
    fn forced_cert_failure_falls_back_cold_and_stays_correct() {
        let (topo, tunnels, scenarios) = ctx_parts();
        let ctx = TeContext::new(&topo, &tunnels, &scenarios);
        let n = |s: &str| topo.find_node(s).unwrap();
        let pair = tunnels.pair_index(n("DC1"), n("DC4")).unwrap();
        let d = BaDemand::single(1, pair, 4000.0, 0.99);

        let mut inc = IncrementalScheduler::new(&ctx);
        inc.apply(&ctx, &[DemandDelta::Add(d.clone())]).unwrap();
        inc.force_cert_failure_once();
        // An empty delta round re-solves warm; the forced gate failure
        // must reroute it through the cold path without changing the
        // answer.
        let r = inc.apply(&ctx, &[]).unwrap();
        assert_eq!(inc.stats().cert_fallbacks, 1);
        assert!(!r.solve_stats.warm_start, "fallback answer must be cold");
        approx(r.total_bandwidth, cold_objective(&ctx, &[d]));
    }

    #[test]
    fn churned_master_compacts_past_dead_threshold() {
        let (topo, tunnels, scenarios) = ctx_parts();
        let ctx = TeContext::new(&topo, &tunnels, &scenarios);
        let n = |s: &str| topo.find_node(s).unwrap();
        let pair = tunnels.pair_index(n("DC1"), n("DC4")).unwrap();

        let mut inc = IncrementalScheduler::new(&ctx);
        let keeper = BaDemand::single(0, pair, 1000.0, 0.9);
        inc.apply(&ctx, &[DemandDelta::Add(keeper.clone())]).unwrap();
        // Churn enough transient demands through to cross the dead-column
        // threshold and trigger at least one compaction.
        for i in 1..=40u64 {
            let d = BaDemand::single(i, pair, 500.0, 0.9);
            inc.apply(&ctx, &[DemandDelta::Add(d)]).unwrap();
            let r = inc
                .apply(&ctx, &[DemandDelta::Remove(DemandId(i))])
                .unwrap();
            approx(r.total_bandwidth, 1000.0);
        }
        assert!(inc.stats().compactions > 0, "{:?}", inc.stats());
        let r = inc.apply(&ctx, &[]).unwrap();
        approx(r.total_bandwidth, cold_objective(&ctx, &[keeper]));
    }

    #[test]
    fn warm_optimum_passes_exact_certificate() {
        let (topo, tunnels, scenarios) = ctx_parts();
        let ctx = TeContext::new(&topo, &tunnels, &scenarios);
        let n = |s: &str| topo.find_node(s).unwrap();
        let pair = tunnels.pair_index(n("DC1"), n("DC4")).unwrap();
        let mut inc = IncrementalScheduler::new(&ctx);
        inc.apply(&ctx, &[DemandDelta::Add(BaDemand::single(1, pair, 4000.0, 0.99))])
            .unwrap();
        inc.apply(&ctx, &[DemandDelta::Add(BaDemand::single(2, pair, 3000.0, 0.9))])
            .unwrap();
        assert!(inc.stats().warm_rounds > 0);
        let sol = inc.last_solution().unwrap();
        bate_lp::exact::verify_certificate(inc.problem(), sol).unwrap();
    }
}
