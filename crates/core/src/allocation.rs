//! Bandwidth allocations `{f_d^t}` and the satisfaction/availability
//! calculus on top of them (§3.1).

use crate::demand::{BaDemand, DemandId};
use crate::TeContext;
use bate_net::Scenario;
use bate_routing::TunnelId;
use std::collections::BTreeMap;

/// Relative tolerance when checking whether delivered bandwidth covers a
/// demand; the testbed methodology (§5.1) counts a slot as satisfied when
/// the downward deviation is below 1 %, we use a tight numerical tolerance
/// for the analytical checks.
pub const SATISFY_TOL: f64 = 1e-6;

/// An allocation of tunnel bandwidth per demand.
#[derive(Debug, Clone, Default)]
pub struct Allocation {
    flows: BTreeMap<DemandId, BTreeMap<TunnelId, f64>>,
}

impl Allocation {
    pub fn new() -> Allocation {
        Allocation::default()
    }

    /// Set `f_d^t` (values below 1e-12 clear the entry).
    pub fn set(&mut self, d: DemandId, t: TunnelId, f: f64) {
        assert!(f >= -1e-9, "negative flow {f}");
        let per = self.flows.entry(d).or_default();
        if f > 1e-12 {
            per.insert(t, f);
        } else {
            per.remove(&t);
        }
    }

    /// Add to `f_d^t`.
    pub fn add(&mut self, d: DemandId, t: TunnelId, f: f64) {
        let cur = self.get(d, t);
        self.set(d, t, cur + f);
    }

    /// `f_d^t` (zero when unset).
    pub fn get(&self, d: DemandId, t: TunnelId) -> f64 {
        self.flows
            .get(&d)
            .and_then(|per| per.get(&t))
            .copied()
            .unwrap_or(0.0)
    }

    /// All flows of one demand.
    pub fn flows_of(&self, d: DemandId) -> impl Iterator<Item = (TunnelId, f64)> + '_ {
        self.flows
            .get(&d)
            .into_iter()
            .flat_map(|per| per.iter().map(|(&t, &f)| (t, f)))
    }

    /// Demands with any allocation.
    pub fn demands(&self) -> impl Iterator<Item = DemandId> + '_ {
        self.flows.keys().copied()
    }

    /// Drop a demand's allocation entirely (used when a demand departs).
    pub fn remove_demand(&mut self, d: DemandId) {
        self.flows.remove(&d);
    }

    /// Replace one demand's allocation with the flows from `other`.
    pub fn adopt_demand(&mut self, d: DemandId, other: &Allocation) {
        self.remove_demand(d);
        for (t, f) in other.flows_of(d) {
            self.set(d, t, f);
        }
    }

    /// Total allocated bandwidth `Σ f_d^t` (the scheduling objective).
    pub fn total_allocated(&self) -> f64 {
        self.flows.values().flat_map(|per| per.values()).sum()
    }

    /// Bandwidth delivered to demand `d` on pair `k` under `scenario`:
    /// `Σ_{t ∈ T_k} f_d^t · v_t^z`.
    pub fn delivered(&self, ctx: &TeContext, d: DemandId, pair: usize, scenario: &Scenario) -> f64 {
        self.flows_of(d)
            .filter(|(t, _)| t.pair == pair)
            .filter(|(t, _)| ctx.tunnels.path(*t).available_under(ctx.topo, scenario))
            .map(|(_, f)| f)
            .sum()
    }

    /// Is `scenario` qualified for this demand (`z ∝ <d, {f_d^t}>`)?
    pub fn satisfied_under(&self, ctx: &TeContext, demand: &BaDemand, scenario: &Scenario) -> bool {
        demand.bandwidth.iter().all(|&(pair, b)| {
            self.delivered(ctx, demand.id, pair, scenario) >= b * (1.0 - SATISFY_TOL)
        })
    }

    /// Achieved availability: total probability of qualified scenarios in
    /// the pruned set. The residual mass is conservatively unqualified, so
    /// this is a lower bound on the demand's true availability.
    pub fn achieved_availability(&self, ctx: &TeContext, demand: &BaDemand) -> f64 {
        ctx.scenarios
            .iter()
            .filter(|z| self.satisfied_under(ctx, demand, z))
            .map(|z| z.probability)
            .sum()
    }

    /// Does the allocation meet the demand's BA target?
    pub fn meets_target(&self, ctx: &TeContext, demand: &BaDemand) -> bool {
        self.achieved_availability(ctx, demand) >= demand.beta - SATISFY_TOL
    }

    /// The *relaxed* availability of Eq. 4: scenarios earn fractional
    /// credit `min_k min(1, delivered/b)` instead of all-or-nothing
    /// qualification. This is exactly what the scheduling LP guarantees to
    /// be ≥ β (the paper explicitly relaxes the MILP, §3.3); the hard
    /// [`Self::achieved_availability`] can be lower when flow is split.
    pub fn relaxed_availability(&self, ctx: &TeContext, demand: &BaDemand) -> f64 {
        ctx.scenarios
            .iter()
            .map(|z| {
                let credit = demand
                    .bandwidth
                    .iter()
                    .map(|&(pair, b)| {
                        (self.delivered(ctx, demand.id, pair, z) / b).min(1.0)
                    })
                    .fold(1.0f64, f64::min);
                z.probability * credit.max(0.0)
            })
            .sum()
    }

    /// Aggregate load per directed link.
    pub fn link_loads(&self, ctx: &TeContext) -> Vec<f64> {
        let mut loads = vec![0.0f64; ctx.topo.num_links()];
        for per in self.flows.values() {
            for (&t, &f) in per {
                for &l in &ctx.tunnels.path(t).links {
                    loads[l.index()] += f;
                }
            }
        }
        loads
    }

    /// Residual capacity per directed link after this allocation.
    pub fn residual_capacities(&self, ctx: &TeContext) -> Vec<f64> {
        let loads = self.link_loads(ctx);
        ctx.topo
            .links()
            .map(|(l, def)| (def.capacity - loads[l.index()]).max(0.0))
            .collect()
    }

    /// Does every link load fit its capacity (within `tol` relative slack)?
    pub fn respects_capacity(&self, ctx: &TeContext, tol: f64) -> bool {
        let loads = self.link_loads(ctx);
        ctx.topo
            .links()
            .all(|(l, def)| loads[l.index()] <= def.capacity * (1.0 + tol) + 1e-9)
    }

    /// Mean link utilization (Fig. 12(b)).
    pub fn mean_utilization(&self, ctx: &TeContext) -> f64 {
        let loads = self.link_loads(ctx);
        let mut total = 0.0;
        let mut n = 0usize;
        for (l, def) in ctx.topo.links() {
            total += loads[l.index()] / def.capacity;
            n += 1;
        }
        if n == 0 {
            0.0
        } else {
            total / n as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bate_net::{topologies, Scenario, ScenarioSet};
    use bate_routing::{RoutingScheme, TunnelSet};

    fn toy_ctx() -> (bate_net::Topology, TunnelSet, ScenarioSet) {
        let topo = topologies::toy4();
        let tunnels = TunnelSet::compute(&topo, RoutingScheme::Ksp(2));
        let scenarios = ScenarioSet::enumerate(&topo, 2);
        (topo, tunnels, scenarios)
    }

    #[test]
    fn set_get_add_remove() {
        let (topo, tunnels, scenarios) = toy_ctx();
        let _ctx = TeContext::new(&topo, &tunnels, &scenarios);
        let mut a = Allocation::new();
        let t = TunnelId { pair: 0, tunnel: 0 };
        let d = DemandId(1);
        a.set(d, t, 5.0);
        assert_eq!(a.get(d, t), 5.0);
        a.add(d, t, 2.5);
        assert_eq!(a.get(d, t), 7.5);
        a.set(d, t, 0.0);
        assert_eq!(a.get(d, t), 0.0);
        a.set(d, t, 1.0);
        a.remove_demand(d);
        assert_eq!(a.total_allocated(), 0.0);
    }

    #[test]
    fn delivered_respects_scenarios() {
        let (topo, tunnels, scenarios) = toy_ctx();
        let ctx = TeContext::new(&topo, &tunnels, &scenarios);
        let n = |s: &str| topo.find_node(s).unwrap();
        let pair = tunnels.pair_index(n("DC1"), n("DC4")).unwrap();
        let d = BaDemand::single(1, pair, 6000.0, 0.99);

        let mut a = Allocation::new();
        // Put everything on the first tunnel of the pair.
        a.set(d.id, TunnelId { pair, tunnel: 0 }, 6000.0);

        let all_up = Scenario::all_up(&topo);
        assert!((a.delivered(&ctx, d.id, pair, &all_up) - 6000.0).abs() < 1e-9);
        assert!(a.satisfied_under(&ctx, &d, &all_up));

        // Kill the first tunnel's first link: delivery drops to zero.
        let first_link = tunnels.path(TunnelId { pair, tunnel: 0 }).links[0];
        let sc = Scenario::with_failures(&topo, &[topo.link(first_link).group]);
        assert_eq!(a.delivered(&ctx, d.id, pair, &sc), 0.0);
        assert!(!a.satisfied_under(&ctx, &d, &sc));
    }

    #[test]
    fn achieved_availability_single_tunnel() {
        let (topo, tunnels, _) = toy_ctx();
        // Full enumeration so availability is exact.
        let scenarios = ScenarioSet::enumerate(&topo, topo.num_groups());
        let ctx = TeContext::new(&topo, &tunnels, &scenarios);
        let n = |s: &str| topo.find_node(s).unwrap();
        let pair = tunnels.pair_index(n("DC1"), n("DC4")).unwrap();
        let d = BaDemand::single(1, pair, 1000.0, 0.99);

        // Find the tunnel through DC3 (the reliable one).
        let reliable = (0..tunnels.tunnels(pair).len())
            .map(|i| TunnelId { pair, tunnel: i })
            .find(|&t| tunnels.path(t).nodes(&topo).contains(&n("DC3")))
            .unwrap();
        let mut a = Allocation::new();
        a.set(d.id, reliable, 1000.0);
        let achieved = a.achieved_availability(&ctx, &d);
        // Availability of the DC1→DC3→DC4 path is 0.998999001 (§2.2).
        assert!((achieved - 0.998999001).abs() < 1e-6, "{achieved}");
        assert!(a.meets_target(&ctx, &d));
    }

    #[test]
    fn link_loads_and_capacity() {
        let (topo, tunnels, scenarios) = toy_ctx();
        let ctx = TeContext::new(&topo, &tunnels, &scenarios);
        let n = |s: &str| topo.find_node(s).unwrap();
        let pair = tunnels.pair_index(n("DC1"), n("DC2")).unwrap();
        let mut a = Allocation::new();
        let t = TunnelId { pair, tunnel: 0 };
        a.set(DemandId(1), t, 9000.0);
        assert!(a.respects_capacity(&ctx, 0.0));
        a.set(DemandId(2), t, 2000.0);
        assert!(!a.respects_capacity(&ctx, 0.0)); // 11000 > 10000
        let loads = a.link_loads(&ctx);
        let l = tunnels.path(t).links[0];
        assert!((loads[l.index()] - 11000.0).abs() < 1e-9);
        assert!(a.mean_utilization(&ctx) > 0.0);
    }

    #[test]
    fn adopt_demand_replaces_flows() {
        let (topo, tunnels, scenarios) = toy_ctx();
        let _ctx = TeContext::new(&topo, &tunnels, &scenarios);
        let d = DemandId(5);
        let t0 = TunnelId { pair: 0, tunnel: 0 };
        let t1 = TunnelId { pair: 0, tunnel: 1 };
        let mut a = Allocation::new();
        a.set(d, t0, 3.0);
        let mut b = Allocation::new();
        b.set(d, t1, 7.0);
        a.adopt_demand(d, &b);
        assert_eq!(a.get(d, t0), 0.0);
        assert_eq!(a.get(d, t1), 7.0);
    }
}
