//! Pricing and SLA-refund model (§3.4, §5).
//!
//! The paper borrows the refund idea from public cloud SLAs: a demand is
//! charged `g_d` (unit price per Mbps in the evaluation) and, when its BA
//! target is violated, a fraction `μ_d` of `g_d` is refunded. The refund
//! ratios are "randomly chosen from 10 Azure cloud services" (§5.2) / "3
//! cloud services" on the testbed (§5.1). This module encodes tiered
//! service-credit schedules in the style those SLA pages publish
//! (10 % / 25 % / 100 % credits at decreasing uptime thresholds).

/// One tiered SLA refund schedule.
#[derive(Debug, Clone)]
pub struct SlaSchedule {
    /// Service name as cited in the paper.
    pub name: &'static str,
    /// Promised monthly uptime (fraction).
    pub target: f64,
    /// `(uptime threshold, refund fraction)` tiers: achieving *less* than a
    /// threshold earns at least that refund. Sorted by decreasing threshold.
    pub tiers: Vec<(f64, f64)>,
}

impl SlaSchedule {
    /// Refund fraction owed for an achieved availability.
    ///
    /// Zero when the target is met; otherwise the refund of the deepest
    /// violated tier (tiers are cumulative in severity, as in the Azure
    /// credit tables).
    pub fn refund_fraction(&self, achieved: f64) -> f64 {
        if achieved >= self.target {
            return 0.0;
        }
        let mut refund = 0.0;
        for &(threshold, r) in &self.tiers {
            if achieved < threshold {
                refund = r;
            }
        }
        refund
    }

    /// The refund fraction for a bare violation (just below target) — the
    /// single `μ_d` used by the recovery MILP.
    pub fn violation_ratio(&self) -> f64 {
        self.tiers.first().map(|&(_, r)| r).unwrap_or(0.0)
    }
}

fn schedule(name: &'static str, target: f64, tiers: &[(f64, f64)]) -> SlaSchedule {
    SlaSchedule {
        name,
        target,
        tiers: tiers.to_vec(),
    }
}

/// The 10 Azure services the simulations draw refund ratios from
/// (§5.2, footnote 8).
pub fn azure_services() -> Vec<SlaSchedule> {
    vec![
        schedule(
            "API Management",
            0.9995,
            &[(0.9995, 0.10), (0.99, 0.25), (0.95, 1.00)],
        ),
        schedule("App Configuration", 0.999, &[(0.999, 0.10), (0.99, 0.25)]),
        schedule(
            "Application Gateway",
            0.9995,
            &[(0.9995, 0.10), (0.99, 0.25)],
        ),
        schedule(
            "Application Insights",
            0.999,
            &[(0.999, 0.10), (0.99, 0.25)],
        ),
        schedule("Automation", 0.999, &[(0.999, 0.10), (0.99, 0.25)]),
        schedule(
            "Virtual Machines",
            0.9999,
            &[(0.9999, 0.10), (0.99, 0.25), (0.95, 1.00)],
        ),
        schedule(
            "BareMetal Infrastructure",
            0.999,
            &[(0.999, 0.10), (0.99, 0.25)],
        ),
        schedule(
            "Azure Cache for Redis",
            0.999,
            &[(0.999, 0.10), (0.99, 0.25), (0.95, 1.00)],
        ),
        schedule(
            "Content Delivery Network",
            0.999,
            &[(0.999, 0.10), (0.99, 0.25)],
        ),
        schedule(
            "Storage Accounts",
            0.999,
            &[(0.999, 0.10), (0.99, 0.25), (0.95, 1.00)],
        ),
    ]
}

/// The 3 services the testbed evaluation draws from (§5.1): Redis, CDN, VMs.
pub fn testbed_services() -> Vec<SlaSchedule> {
    azure_services()
        .into_iter()
        .filter(|s| {
            matches!(
                s.name,
                "Azure Cache for Redis" | "Content Delivery Network" | "Virtual Machines"
            )
        })
        .collect()
}

/// Profit retained from a demand: full price when no violation, otherwise
/// price minus the tiered refund.
pub fn profit(price: f64, schedule: &SlaSchedule, achieved: f64) -> f64 {
    price * (1.0 - schedule.refund_fraction(achieved))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ten_azure_services() {
        let s = azure_services();
        assert_eq!(s.len(), 10);
        for svc in &s {
            assert!(!svc.tiers.is_empty());
            // Tiers sorted by decreasing threshold.
            for w in svc.tiers.windows(2) {
                assert!(w[0].0 > w[1].0);
            }
        }
    }

    #[test]
    fn testbed_pool_is_three_services() {
        let s = testbed_services();
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn vm_schedule_tiers() {
        let vms = azure_services()
            .into_iter()
            .find(|s| s.name == "Virtual Machines")
            .unwrap();
        assert_eq!(vms.refund_fraction(1.0), 0.0);
        assert_eq!(vms.refund_fraction(0.9999), 0.0);
        assert_eq!(vms.refund_fraction(0.9995), 0.10);
        assert_eq!(vms.refund_fraction(0.98), 0.25);
        assert_eq!(vms.refund_fraction(0.90), 1.00);
        assert_eq!(vms.violation_ratio(), 0.10);
    }

    #[test]
    fn profit_accounting() {
        let vms = azure_services()
            .into_iter()
            .find(|s| s.name == "Virtual Machines")
            .unwrap();
        assert_eq!(profit(100.0, &vms, 1.0), 100.0);
        assert_eq!(profit(100.0, &vms, 0.995), 90.0);
        assert_eq!(profit(100.0, &vms, 0.5), 0.0);
    }
}
