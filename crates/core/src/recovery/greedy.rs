//! **Algorithm 2**: the greedy 2-approximation for failure recovery
//! (Appendix D).
//!
//! Demands are visited in non-increasing *profit density* `g_d / Σ_k b_d^k`
//! (the appendix's knapsack-style argument is built on this order; the
//! pseudo-code's "non-decreasing" is a typo — its own Eq. 21 sorts
//! descending). Each demand is fully allocated on surviving tunnels if the
//! residual capacity allows. On the first demand that does not fit, the
//! classic 2-approximation fallback applies: if that single demand is worth
//! more than everything packed so far *and* fits the empty network, take it
//! alone instead. Either way the loop stops, giving
//! `max{Σ g_i, g_{n+1}} ≥ OPT/2` (Lemma 2).

use super::RecoveryOutcome;
use crate::allocation::Allocation;
use crate::demand::BaDemand;
use crate::TeContext;
use bate_net::Scenario;
use bate_routing::TunnelId;

/// Registry handles for the recovery metric family. Metrics only, no
/// trace events: recovery runs fan out in parallel when backup plans are
/// precomputed, and counter adds commute.
struct RecoveryMetrics {
    runs: std::sync::Arc<bate_obs::Counter>,
    satisfied: std::sync::Arc<bate_obs::Counter>,
    forfeited: std::sync::Arc<bate_obs::Counter>,
    run_ms: std::sync::Arc<bate_obs::Histogram>,
}

fn recovery_metrics() -> &'static RecoveryMetrics {
    static M: std::sync::OnceLock<RecoveryMetrics> = std::sync::OnceLock::new();
    M.get_or_init(|| {
        let r = bate_obs::Registry::global();
        RecoveryMetrics {
            runs: r.counter("bate_recovery_greedy_runs_total"),
            satisfied: r.counter("bate_recovery_satisfied_total"),
            forfeited: r.counter("bate_recovery_forfeited_total"),
            run_ms: r.histogram("bate_recovery_greedy_ms"),
        }
    })
}

/// Run Algorithm 2 for the given failure scenario.
pub fn greedy_recovery(
    ctx: &TeContext,
    demands: &[BaDemand],
    scenario: &Scenario,
) -> RecoveryOutcome {
    let m = recovery_metrics();
    let t0 = std::time::Instant::now();
    let outcome = greedy_recovery_inner(ctx, demands, scenario);
    m.runs.inc();
    m.satisfied.add(outcome.satisfied.len() as u64);
    m.forfeited
        .add(demands.len().saturating_sub(outcome.satisfied.len()) as u64);
    m.run_ms.observe_ms(t0.elapsed());
    outcome
}

fn greedy_recovery_inner(
    ctx: &TeContext,
    demands: &[BaDemand],
    scenario: &Scenario,
) -> RecoveryOutcome {
    // Surviving capacity: failed fate groups contribute zero (Eq. 11's
    // `c_e · w_e^z`).
    let surviving: Vec<f64> = ctx
        .topo
        .links()
        .map(|(l, def)| {
            if scenario.link_up(ctx.topo, l) {
                def.capacity
            } else {
                0.0
            }
        })
        .collect();

    // Line 1: sort by profit density, descending.
    let mut order: Vec<&BaDemand> = demands.iter().collect();
    order.sort_by(|a, b| {
        b.profit_density()
            .partial_cmp(&a.profit_density())
            .unwrap()
            .then_with(|| a.id.cmp(&b.id))
    });

    let mut residual = surviving.clone();
    let mut allocation = Allocation::new();
    let mut satisfied = Vec::new();
    let mut packed_profit = 0.0;

    for demand in order {
        match try_allocate(ctx, demand, scenario, &residual) {
            Some(flows) => {
                for (t, f) in flows {
                    allocation.set(demand.id, t, f);
                    for &l in &ctx.tunnels.path(t).links {
                        residual[l.index()] -= f;
                    }
                }
                satisfied.push(demand.id);
                packed_profit += demand.price;
            }
            None => {
                // Lines 10–19: the swap test, then stop either way.
                if packed_profit < demand.price {
                    if let Some(flows) = try_allocate(ctx, demand, scenario, &surviving) {
                        allocation = Allocation::new();
                        satisfied.clear();
                        for (t, f) in flows {
                            allocation.set(demand.id, t, f);
                        }
                        satisfied.push(demand.id);
                    }
                }
                break;
            }
        }
    }

    let profit = RecoveryOutcome::compute_profit(demands, &satisfied);
    RecoveryOutcome {
        allocation,
        satisfied,
        profit,
    }
}

/// Try to fully allocate `demand` on tunnels surviving `scenario` within
/// `residual` capacities. Returns the flows on success, `None` if any pair
/// cannot be covered.
fn try_allocate(
    ctx: &TeContext,
    demand: &BaDemand,
    scenario: &Scenario,
    residual: &[f64],
) -> Option<Vec<(TunnelId, f64)>> {
    let mut local = residual.to_vec();
    let mut flows = Vec::new();
    for &(pair, b) in &demand.bandwidth {
        let tunnels = ctx.tunnels.tunnels(pair);
        let mut remaining = b;
        // Fill the fattest surviving tunnel first.
        let mut order: Vec<usize> = (0..tunnels.len())
            .filter(|&t| tunnels[t].available_under(ctx.topo, scenario))
            .collect();
        order.sort_by(|&a, &b| {
            let ca = tunnel_cap(ctx, pair, a, &local);
            let cb = tunnel_cap(ctx, pair, b, &local);
            cb.partial_cmp(&ca).unwrap().then(a.cmp(&b))
        });
        for t in order {
            if remaining <= 1e-9 {
                break;
            }
            let cap = tunnel_cap(ctx, pair, t, &local);
            let f = cap.min(remaining);
            if f > 1e-9 {
                let tid = TunnelId { pair, tunnel: t };
                flows.push((tid, f));
                for &l in &ctx.tunnels.path(tid).links {
                    local[l.index()] -= f;
                }
                remaining -= f;
            }
        }
        if remaining > 1e-9 {
            return None;
        }
    }
    Some(flows)
}

fn tunnel_cap(ctx: &TeContext, pair: usize, t: usize, residual: &[f64]) -> f64 {
    ctx.tunnels.tunnels(pair)[t]
        .links
        .iter()
        .map(|l| residual[l.index()])
        .fold(f64::INFINITY, f64::min)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bate_net::{topologies, Scenario, ScenarioSet};
    use bate_routing::{RoutingScheme, TunnelSet};

    fn ctx_testbed() -> (bate_net::Topology, TunnelSet, ScenarioSet) {
        let topo = topologies::testbed6();
        let tunnels = TunnelSet::compute(&topo, RoutingScheme::default_ksp4());
        let scenarios = ScenarioSet::enumerate(&topo, 2);
        (topo, tunnels, scenarios)
    }

    #[test]
    fn no_failure_satisfies_everyone_that_fits() {
        let (topo, tunnels, scenarios) = ctx_testbed();
        let ctx = TeContext::new(&topo, &tunnels, &scenarios);
        let n = |s: &str| topo.find_node(s).unwrap();
        let p13 = tunnels.pair_index(n("DC1"), n("DC3")).unwrap();
        let demands = vec![
            BaDemand::single(1, p13, 300.0, 0.9).with_refund(0.25),
            BaDemand::single(2, p13, 400.0, 0.9).with_refund(0.10),
        ];
        let out = greedy_recovery(&ctx, &demands, &Scenario::all_up(&topo));
        assert_eq!(out.satisfied.len(), 2);
        assert!((out.profit - RecoveryOutcome::baseline_profit(&demands)).abs() < 1e-9);
        assert!(out.allocation.respects_capacity(&ctx, 1e-9));
    }

    #[test]
    fn failure_forces_refunds() {
        let (topo, tunnels, scenarios) = ctx_testbed();
        let ctx = TeContext::new(&topo, &tunnels, &scenarios);
        let n = |s: &str| topo.find_node(s).unwrap();
        let p14 = tunnels.pair_index(n("DC1"), n("DC4")).unwrap();
        // Two 1500 Mbps demands DC1→DC4: with all links up, the cut allows
        // both (direct 1000 + detours). Fail the direct DC1-DC4 link (L8):
        // at most ~2000 Mbps survives, so one demand must take a refund.
        let demands = vec![
            BaDemand::single(1, p14, 1500.0, 0.9).with_refund(0.5),
            BaDemand::single(2, p14, 1500.0, 0.9).with_refund(0.5),
        ];
        let l8 = topo.find_link(n("DC1"), n("DC4")).unwrap();
        let sc = Scenario::with_failures(&topo, &[topo.link(l8).group]);
        let out = greedy_recovery(&ctx, &demands, &sc);
        assert!(out.satisfied.len() <= 1, "both cannot survive L8 down");
        assert!(out.profit < RecoveryOutcome::baseline_profit(&demands));
        // Allocation must not touch the failed link.
        let loads = out.allocation.link_loads(&ctx);
        for (l, _) in topo.links() {
            if !sc.link_up(&topo, l) {
                assert_eq!(loads[l.index()], 0.0);
            }
        }
    }

    #[test]
    fn swap_prefers_single_expensive_demand() {
        let (topo, tunnels, scenarios) = ctx_testbed();
        let ctx = TeContext::new(&topo, &tunnels, &scenarios);
        let n = |s: &str| topo.find_node(s).unwrap();
        let p14 = tunnels.pair_index(n("DC1"), n("DC4")).unwrap();
        // A cheap dense demand fills the pair first; the huge demand can't
        // fit beside it but is worth more than the packed set and fits the
        // empty network — Algorithm 2 must swap.
        let cheap = BaDemand::single(1, p14, 800.0, 0.9)
            .with_price(80.0)
            .with_refund(1.0);
        let whale = BaDemand::single(2, p14, 2500.0, 0.9)
            .with_price(1000.0)
            .with_refund(1.0);
        let out = greedy_recovery(&ctx, &demands_vec(&cheap, &whale), &Scenario::all_up(&topo));
        assert_eq!(out.satisfied, vec![whale.id]);
    }

    fn demands_vec(a: &BaDemand, b: &BaDemand) -> Vec<BaDemand> {
        vec![a.clone(), b.clone()]
    }

    #[test]
    fn profit_never_below_half_of_greedy_upper_bound() {
        // Lemma 2 sanity: greedy profit ≥ (Σ all prices)/2 is NOT the
        // claim; the claim is vs OPT. Here we check the weaker invariant
        // that greedy keeps at least the refund floor.
        let (topo, tunnels, scenarios) = ctx_testbed();
        let ctx = TeContext::new(&topo, &tunnels, &scenarios);
        let n = |s: &str| topo.find_node(s).unwrap();
        let p = tunnels.pair_index(n("DC2"), n("DC6")).unwrap();
        let demands: Vec<BaDemand> = (0..5)
            .map(|i| {
                BaDemand::single(i, p, 400.0 + 100.0 * i as f64, 0.9)
                    .with_refund(0.2 * (i % 3) as f64 / 2.0 + 0.1)
            })
            .collect();
        let floor: f64 = demands
            .iter()
            .map(|d| (1.0 - d.refund_ratio) * d.price)
            .sum();
        let out = greedy_recovery(&ctx, &demands, &Scenario::all_up(&topo));
        assert!(out.profit >= floor - 1e-9);
    }
}
