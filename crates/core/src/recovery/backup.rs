//! Proactive backup allocations (§3.4, Fig. 4).
//!
//! "BATE proactively computes backup allocation strategies for potential
//! failure scenarios, so that the surviving tunnels can be used immediately
//! and packet loss can be mitigated." Like the paper, the precomputation
//! covers every *single* fate-group failure (footnote 6: the scheme extends
//! to concurrent failures, which [`BackupPlan::compute_with_depth`]
//! implements for pairs).

use super::greedy::greedy_recovery;
use super::RecoveryOutcome;
use crate::demand::BaDemand;
use crate::TeContext;
use bate_net::{GroupId, Scenario};
use std::collections::HashMap;

/// Precomputed backup allocations, keyed by the failed fate-group set.
#[derive(Debug, Clone)]
pub struct BackupPlan {
    /// Single-failure plans: group index → outcome.
    single: HashMap<usize, RecoveryOutcome>,
    /// Optional two-failure plans: (low group, high group) → outcome.
    pairs: HashMap<(usize, usize), RecoveryOutcome>,
}

impl BackupPlan {
    /// Precompute a backup allocation for every single fate-group failure.
    pub fn compute(ctx: &TeContext, demands: &[BaDemand]) -> BackupPlan {
        Self::compute_with_depth(ctx, demands, 1)
    }

    /// Precompute plans for up to `depth` (1 or 2) concurrent failures.
    pub fn compute_with_depth(ctx: &TeContext, demands: &[BaDemand], depth: usize) -> BackupPlan {
        assert!((1..=2).contains(&depth), "backup depth must be 1 or 2");
        let mut single = HashMap::new();
        let n = ctx.topo.num_groups();
        for g in 0..n {
            let sc = Scenario::with_failures(ctx.topo, &[GroupId(g)]);
            single.insert(g, greedy_recovery(ctx, demands, &sc));
        }
        let mut pairs = HashMap::new();
        if depth >= 2 {
            for a in 0..n {
                for b in a + 1..n {
                    let sc = Scenario::with_failures(ctx.topo, &[GroupId(a), GroupId(b)]);
                    pairs.insert((a, b), greedy_recovery(ctx, demands, &sc));
                }
            }
        }
        BackupPlan { single, pairs }
    }

    /// The precomputed plan for a failure of exactly these groups, if one
    /// was computed.
    pub fn lookup(&self, failed: &[GroupId]) -> Option<&RecoveryOutcome> {
        match failed {
            [g] => self.single.get(&g.index()),
            [a, b] => {
                let key = (a.index().min(b.index()), a.index().max(b.index()));
                self.pairs.get(&key)
            }
            _ => None,
        }
    }

    /// Number of precomputed plans.
    pub fn len(&self) -> usize {
        self.single.len() + self.pairs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bate_net::{topologies, ScenarioSet};
    use bate_routing::{RoutingScheme, TunnelSet};

    #[test]
    fn single_failure_plans_cover_all_groups() {
        let topo = topologies::testbed6();
        let tunnels = TunnelSet::compute(&topo, RoutingScheme::default_ksp4());
        let scenarios = ScenarioSet::enumerate(&topo, 1);
        let ctx = TeContext::new(&topo, &tunnels, &scenarios);
        let n = |s: &str| topo.find_node(s).unwrap();
        let p = tunnels.pair_index(n("DC1"), n("DC3")).unwrap();
        let demands = vec![BaDemand::single(1, p, 500.0, 0.9).with_refund(0.2)];
        let plan = BackupPlan::compute(&ctx, &demands);
        assert_eq!(plan.len(), topo.num_groups());
        for (g, _) in topo.groups() {
            let out = plan.lookup(&[g]).unwrap();
            // The plan never routes over the failed group.
            let loads = out.allocation.link_loads(&ctx);
            for &l in &topo.group(g).links {
                assert_eq!(loads[l.index()], 0.0);
            }
        }
    }

    #[test]
    fn fig4_style_backup_reroutes() {
        // Fig. 4: after DC2→DC4 fails, the DC1→DC4 flow shifts to the
        // surviving path. On toy4: fail DC2-DC4, demand DC1→DC4 must land
        // entirely on DC1→DC3→DC4.
        let topo = topologies::toy4();
        let tunnels = TunnelSet::compute(&topo, RoutingScheme::Ksp(2));
        let scenarios = ScenarioSet::enumerate(&topo, 1);
        let ctx = TeContext::new(&topo, &tunnels, &scenarios);
        let n = |s: &str| topo.find_node(s).unwrap();
        let pair = tunnels.pair_index(n("DC1"), n("DC4")).unwrap();
        let demands = vec![BaDemand::single(1, pair, 5000.0, 0.9).with_refund(0.5)];
        let plan = BackupPlan::compute(&ctx, &demands);
        let g = topo.link(topo.find_link(n("DC2"), n("DC4")).unwrap()).group;
        let out = plan.lookup(&[g]).unwrap();
        assert_eq!(out.satisfied.len(), 1);
        let delivered: f64 = out.allocation.flows_of(demands[0].id).map(|(_, f)| f).sum();
        assert!((delivered - 5000.0).abs() < 1e-6);
    }

    #[test]
    fn depth_two_covers_pairs() {
        let topo = topologies::toy4();
        let tunnels = TunnelSet::compute(&topo, RoutingScheme::Ksp(2));
        let scenarios = ScenarioSet::enumerate(&topo, 2);
        let ctx = TeContext::new(&topo, &tunnels, &scenarios);
        let n = |s: &str| topo.find_node(s).unwrap();
        let pair = tunnels.pair_index(n("DC1"), n("DC4")).unwrap();
        let demands = vec![BaDemand::single(1, pair, 1000.0, 0.9)];
        let plan = BackupPlan::compute_with_depth(&ctx, &demands, 2);
        let g = topo.num_groups();
        assert_eq!(plan.len(), g + g * (g - 1) / 2);
        let g0 = topo.groups().next().unwrap().0;
        let g1 = topo.groups().nth(1).unwrap().0;
        assert!(plan.lookup(&[g0, g1]).is_some());
        assert!(plan.lookup(&[g1, g0]).is_some(), "order-insensitive lookup");
        assert!(plan.lookup(&[]).is_none());
    }
}
