//! The exact failure-recovery MILP (Eq. 8–12).
//!
//! Under a concrete failure scenario `z`, recompute `{f_d^t}` to maximize
//! total profit after refunds:
//!
//! ```text
//! maximize  Σ_d g_d (y_d + (1-μ_d)(1-y_d))  =  const + Σ_d g_d μ_d y_d
//! s.t.      R_dk = Σ_t f v_t^z / b_d^k,  R_dk ≥ y_d          (Eq. 8–9)
//!           Σ f u_t^e ≤ c_e w_e^z                            (Eq. 10–11)
//! ```
//!
//! The Eq. 9 big-M *upper* linkage (`R < M y + 1 - y`) only matters when
//! something would push `y_d` up illegitimately; maximization already wants
//! `y_d = 1`, and `R ≥ y` blocks it whenever the demand isn't fully
//! delivered — so the model drops the big-M row entirely (and with it any
//! numerical M-tuning).

use super::RecoveryOutcome;
use crate::allocation::Allocation;
use crate::demand::BaDemand;
use crate::TeContext;
use bate_lp::{milp, Problem, Relation, Sense, SolveError, VarId};
use bate_net::Scenario;
use bate_routing::TunnelId;

/// The built Eq. 8–12 model plus the variable handles needed to read a
/// solution back out.
struct RecoveryModel {
    p: Problem,
    y_vars: Vec<VarId>,
    f_vars: Vec<Vec<Vec<Option<VarId>>>>,
}

/// Build the Eq. 8–12 recovery MILP for `scenario` without solving it.
/// Exposed so the differential fuzzing campaign can certify storm-round
/// recovery models against the exact rational oracle.
pub fn recovery_milp(ctx: &TeContext, demands: &[BaDemand], scenario: &Scenario) -> Problem {
    build_model(ctx, demands, scenario).p
}

/// Solve the recovery MILP exactly. This is the "optimal" line of Fig. 19
/// and the slow side of the 50× speedup in Fig. 21.
pub fn optimal_recovery(
    ctx: &TeContext,
    demands: &[BaDemand],
    scenario: &Scenario,
) -> Result<RecoveryOutcome, SolveError> {
    let RecoveryModel { p, y_vars, f_vars } = build_model(ctx, demands, scenario);

    let cfg = milp::BnbConfig {
        max_nodes: 100_000,
        gap: 1e-6,
    };
    let sol = milp::solve(&p, cfg)?;

    let mut allocation = Allocation::new();
    let mut satisfied = Vec::new();
    for (di, demand) in demands.iter().enumerate() {
        if sol.int_value(y_vars[di]) == 1 {
            satisfied.push(demand.id);
        }
        for (ki, &(pair, _)) in demand.bandwidth.iter().enumerate() {
            for (ti, v) in f_vars[di][ki].iter().enumerate() {
                if let Some(v) = v {
                    let f = sol[*v];
                    if f > 1e-9 {
                        allocation.set(demand.id, TunnelId { pair, tunnel: ti }, f);
                    }
                }
            }
        }
    }
    let profit = RecoveryOutcome::compute_profit(demands, &satisfied);
    Ok(RecoveryOutcome {
        allocation,
        satisfied,
        profit,
    })
}

fn build_model(ctx: &TeContext, demands: &[BaDemand], scenario: &Scenario) -> RecoveryModel {
    let mut p = Problem::new(Sense::Maximize);

    let mut f_vars: Vec<Vec<Vec<Option<VarId>>>> = Vec::with_capacity(demands.len());
    let mut y_vars: Vec<VarId> = Vec::with_capacity(demands.len());

    for demand in demands {
        let y = p.add_binary_var(&format!("y[{}]", demand.id.0));
        // Objective: g_d μ_d y_d (the refund saved by satisfying d).
        p.set_objective(y, demand.price * demand.refund_ratio);
        y_vars.push(y);

        let mut per = Vec::new();
        for &(pair, b) in &demand.bandwidth {
            let tunnels = ctx.tunnels.tunnels(pair);
            // Only surviving tunnels get flow variables (v_t^z = 0 tunnels
            // can't deliver anything).
            let vars: Vec<Option<VarId>> = tunnels
                .iter()
                .enumerate()
                .map(|(t, path)| {
                    if path.available_under(ctx.topo, scenario) {
                        Some(p.add_var(&format!("f[{}][{pair}][{t}]", demand.id.0)))
                    } else {
                        None
                    }
                })
                .collect();
            // R_dk >= y_d  ⇔  Σ f v >= b y.
            let mut terms: Vec<(VarId, f64)> = vec![(y, -b)];
            for v in vars.iter().flatten() {
                terms.push((*v, 1.0));
            }
            p.add_constraint(&terms, Relation::Ge, 0.0);
            per.push(vars);
        }
        f_vars.push(per);
    }

    // Capacity on surviving links; failed links carry no flow variables for
    // surviving tunnels by construction, but shared links still need caps.
    let mut per_link: Vec<Vec<(VarId, f64)>> = vec![Vec::new(); ctx.topo.num_links()];
    for (di, demand) in demands.iter().enumerate() {
        for (ki, &(pair, _)) in demand.bandwidth.iter().enumerate() {
            for (ti, v) in f_vars[di][ki].iter().enumerate() {
                if let Some(v) = v {
                    for &l in &ctx.tunnels.path(TunnelId { pair, tunnel: ti }).links {
                        per_link[l.index()].push((*v, 1.0));
                    }
                }
            }
        }
    }
    for (li, terms) in per_link.iter().enumerate() {
        if !terms.is_empty() {
            let l = bate_net::LinkId(li);
            let cap = if scenario.link_up(ctx.topo, l) {
                ctx.topo.link(l).capacity
            } else {
                0.0
            };
            p.add_constraint(terms, Relation::Le, cap);
        }
    }

    RecoveryModel { p, y_vars, f_vars }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recovery::greedy::greedy_recovery;
    use bate_net::{topologies, Scenario, ScenarioSet};
    use bate_routing::{RoutingScheme, TunnelSet};

    fn ctx_testbed() -> (bate_net::Topology, TunnelSet, ScenarioSet) {
        let topo = topologies::testbed6();
        let tunnels = TunnelSet::compute(&topo, RoutingScheme::default_ksp4());
        let scenarios = ScenarioSet::enumerate(&topo, 1);
        (topo, tunnels, scenarios)
    }

    #[test]
    fn optimal_satisfies_all_when_capacity_allows() {
        let (topo, tunnels, scenarios) = ctx_testbed();
        let ctx = TeContext::new(&topo, &tunnels, &scenarios);
        let n = |s: &str| topo.find_node(s).unwrap();
        let p13 = tunnels.pair_index(n("DC1"), n("DC3")).unwrap();
        let demands = vec![
            BaDemand::single(1, p13, 500.0, 0.9).with_refund(0.3),
            BaDemand::single(2, p13, 600.0, 0.9).with_refund(0.3),
        ];
        let out = optimal_recovery(&ctx, &demands, &Scenario::all_up(&topo)).unwrap();
        assert_eq!(out.satisfied.len(), 2);
        assert!(out.allocation.respects_capacity(&ctx, 1e-6));
    }

    /// Lemma 2's 2-approximation argument is knapsack-style: it assumes
    /// the demands contend for one bottleneck (greedy packs by density and
    /// stops at the break demand). We check it on exactly that instance
    /// class — all demands share one s-d pair.
    #[test]
    fn greedy_is_within_factor_two_on_single_pair_instances() {
        let (topo, tunnels, scenarios) = ctx_testbed();
        let ctx = TeContext::new(&topo, &tunnels, &scenarios);
        let n = |s: &str| topo.find_node(s).unwrap();
        let pair = tunnels.pair_index(n("DC1"), n("DC3")).unwrap();
        let l4 = topo.find_link(n("DC4"), n("DC5")).unwrap();
        let sc = Scenario::with_failures(&topo, &[topo.link(l4).group]);

        let mut x = 12345u64;
        let mut next = || {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (x >> 33) as usize
        };
        for trial in 0..10u64 {
            let k = 2 + next() % 4;
            let demands: Vec<BaDemand> = (0..k)
                .map(|i| {
                    BaDemand::single(
                        trial * 10 + i as u64,
                        pair,
                        200.0 + (next() % 10) as f64 * 150.0,
                        0.9,
                    )
                    .with_price(100.0 + (next() % 9) as f64 * 100.0)
                    // A uniform refund ratio keeps the density order g/b
                    // aligned with the objective gains (Lemma 2 argues in
                    // terms of g_i, i.e. implicitly uniform μ).
                    .with_refund(0.5)
                })
                .collect();
            let opt = optimal_recovery(&ctx, &demands, &sc).unwrap();
            let grd = greedy_recovery(&ctx, &demands, &sc);
            // Compare the *recoverable* profit component (Σ g μ y): the
            // constant floor Σ g(1-μ) is shared.
            let floor: f64 = demands
                .iter()
                .map(|d| (1.0 - d.refund_ratio) * d.price)
                .sum();
            let opt_gain = opt.profit - floor;
            let grd_gain = grd.profit - floor;
            assert!(
                grd_gain >= opt_gain / 2.0 - 1e-6,
                "trial {trial}: greedy gain {grd_gain} < half of optimal {opt_gain}"
            );
            assert!(
                grd.profit <= opt.profit + 1e-6,
                "greedy cannot beat optimal"
            );
        }
    }

    /// On general multi-pair instances the published Algorithm 2 stops at
    /// the first unservable demand, so it can fall below OPT/2 (demands on
    /// untouched pairs are forfeited). The invariants that always hold:
    /// greedy never beats the optimum and never drops below the full-refund
    /// floor. Fig. 19 measures the empirical ratio (≤ 1.25 in the paper).
    #[test]
    fn greedy_bounded_by_optimal_on_multi_pair_instances() {
        let (topo, tunnels, scenarios) = ctx_testbed();
        let ctx = TeContext::new(&topo, &tunnels, &scenarios);
        let n = |s: &str| topo.find_node(s).unwrap();
        let pairs = [
            tunnels.pair_index(n("DC1"), n("DC3")).unwrap(),
            tunnels.pair_index(n("DC1"), n("DC4")).unwrap(),
            tunnels.pair_index(n("DC2"), n("DC5")).unwrap(),
        ];
        let l4 = topo.find_link(n("DC4"), n("DC5")).unwrap();
        let sc = Scenario::with_failures(&topo, &[topo.link(l4).group]);
        let mut x = 999u64;
        let mut next = || {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (x >> 33) as usize
        };
        for trial in 0..8u64 {
            let k = 2 + next() % 3;
            let demands: Vec<BaDemand> = (0..k)
                .map(|i| {
                    BaDemand::single(
                        trial * 10 + i as u64,
                        pairs[next() % pairs.len()],
                        200.0 + (next() % 10) as f64 * 150.0,
                        0.9,
                    )
                    .with_price(100.0 + (next() % 9) as f64 * 100.0)
                    .with_refund(0.1 + 0.2 * (next() % 4) as f64)
                })
                .collect();
            let opt = optimal_recovery(&ctx, &demands, &sc).unwrap();
            let grd = greedy_recovery(&ctx, &demands, &sc);
            let floor: f64 = demands
                .iter()
                .map(|d| (1.0 - d.refund_ratio) * d.price)
                .sum();
            assert!(grd.profit <= opt.profit + 1e-6);
            assert!(grd.profit >= floor - 1e-9);
        }
    }

    #[test]
    fn failed_links_carry_no_flow() {
        let (topo, tunnels, scenarios) = ctx_testbed();
        let ctx = TeContext::new(&topo, &tunnels, &scenarios);
        let n = |s: &str| topo.find_node(s).unwrap();
        let p14 = tunnels.pair_index(n("DC1"), n("DC4")).unwrap();
        let demands = vec![BaDemand::single(1, p14, 900.0, 0.9).with_refund(0.5)];
        let l8 = topo.find_link(n("DC1"), n("DC4")).unwrap();
        let sc = Scenario::with_failures(&topo, &[topo.link(l8).group]);
        let out = optimal_recovery(&ctx, &demands, &sc).unwrap();
        let loads = out.allocation.link_loads(&ctx);
        for (l, _) in topo.links() {
            if !sc.link_up(&topo, l) {
                assert_eq!(loads[l.index()], 0.0, "flow on failed link");
            }
        }
        // The demand reroutes and stays satisfied.
        assert_eq!(out.satisfied.len(), 1);
    }
}
