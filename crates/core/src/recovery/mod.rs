//! Failure recovery (§3.4): reroute around actual failures while minimizing
//! revenue loss from SLA refunds.
//!
//! * [`milp`] — the exact profit-maximizing MILP (Eq. 8–12), NP-hard by
//!   reduction from all-or-nothing multicommodity flow (Appendix C).
//! * [`greedy`] — Algorithm 2, the 2-approximation used online
//!   (Appendix D), ~50× faster than brute force (Fig. 21).
//! * [`backup`] — proactive precomputation of backup allocations for every
//!   single-fate-group failure so the brokers can switch instantly.

pub mod backup;
pub mod greedy;
pub mod milp;

use crate::allocation::Allocation;
use crate::demand::{BaDemand, DemandId};

/// Registry handles for the recovery-storm metric family (`bate_storm_*`).
///
/// Recorded by the storm workload driver in `bate-sim` (which layers an
/// SRLG cut over concurrent demand churn); defined here so the controller
/// can pre-register the family before any storm runs — exposition then
/// renders every series at zero from the first scrape (the same contract
/// as `bate_warm_*`). Counters only commute; the latency histogram is
/// excluded from determinism-checked snapshots.
pub struct StormMetrics {
    /// SRLG cut events driven through the failure process.
    pub events: std::sync::Arc<bate_obs::Counter>,
    /// Recovery computations (greedy or MILP) triggered by storms.
    pub recovery_runs: std::sync::Arc<bate_obs::Counter>,
    /// Demands whose full bandwidth survived a storm-round recovery.
    pub recovered: std::sync::Arc<bate_obs::Counter>,
    /// Demands forfeited (refunded) in a storm-round recovery.
    pub forfeited: std::sync::Arc<bate_obs::Counter>,
    /// Churn deltas applied while a storm was active.
    pub churn_deltas: std::sync::Arc<bate_obs::Counter>,
    /// Wall-clock of each storm recovery computation.
    pub recovery_ms: std::sync::Arc<bate_obs::Histogram>,
}

/// Global handles for the `bate_storm_*` family.
pub fn storm_metrics() -> &'static StormMetrics {
    static M: std::sync::OnceLock<StormMetrics> = std::sync::OnceLock::new();
    M.get_or_init(|| {
        let r = bate_obs::Registry::global();
        StormMetrics {
            events: r.counter("bate_storm_events_total"),
            recovery_runs: r.counter("bate_storm_recovery_runs_total"),
            recovered: r.counter("bate_storm_demands_recovered_total"),
            forfeited: r.counter("bate_storm_demands_forfeited_total"),
            churn_deltas: r.counter("bate_storm_churn_deltas_total"),
            recovery_ms: r.histogram("bate_storm_recovery_ms"),
        }
    })
}

/// Pre-register the `bate_storm_*` family (controller startup).
pub fn register_storm_metrics() {
    let _ = storm_metrics();
}

/// Result of a recovery computation for one failure scenario.
#[derive(Debug, Clone)]
pub struct RecoveryOutcome {
    /// Post-failure allocation over surviving tunnels.
    pub allocation: Allocation,
    /// Demands whose full bandwidth survives (they keep full profit).
    pub satisfied: Vec<DemandId>,
    /// Total profit after refunds: `Σ_{satisfied} g_d + Σ_{violated}
    /// (1-μ_d) g_d`.
    pub profit: f64,
}

impl RecoveryOutcome {
    /// Profit accounting shared by both solvers.
    pub(crate) fn compute_profit(demands: &[BaDemand], satisfied: &[DemandId]) -> f64 {
        demands
            .iter()
            .map(|d| {
                if satisfied.contains(&d.id) {
                    d.price
                } else {
                    (1.0 - d.refund_ratio) * d.price
                }
            })
            .sum()
    }

    /// The profit had no failure occurred (every demand satisfied).
    pub fn baseline_profit(demands: &[BaDemand]) -> f64 {
        demands.iter().map(|d| d.price).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::demand::BaDemand;

    #[test]
    fn profit_accounting() {
        let demands = vec![
            BaDemand::single(1, 0, 100.0, 0.9).with_refund(0.25),
            BaDemand::single(2, 0, 200.0, 0.9).with_refund(0.10),
        ];
        let profit = RecoveryOutcome::compute_profit(&demands, &[DemandId(1)]);
        // d1 full (100) + d2 refunded 10% (180).
        assert!((profit - 280.0).abs() < 1e-12);
        assert!((RecoveryOutcome::baseline_profit(&demands) - 300.0).abs() < 1e-12);
    }
}
