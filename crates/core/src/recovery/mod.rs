//! Failure recovery (§3.4): reroute around actual failures while minimizing
//! revenue loss from SLA refunds.
//!
//! * [`milp`] — the exact profit-maximizing MILP (Eq. 8–12), NP-hard by
//!   reduction from all-or-nothing multicommodity flow (Appendix C).
//! * [`greedy`] — Algorithm 2, the 2-approximation used online
//!   (Appendix D), ~50× faster than brute force (Fig. 21).
//! * [`backup`] — proactive precomputation of backup allocations for every
//!   single-fate-group failure so the brokers can switch instantly.

pub mod backup;
pub mod greedy;
pub mod milp;

use crate::allocation::Allocation;
use crate::demand::{BaDemand, DemandId};

/// Result of a recovery computation for one failure scenario.
#[derive(Debug, Clone)]
pub struct RecoveryOutcome {
    /// Post-failure allocation over surviving tunnels.
    pub allocation: Allocation,
    /// Demands whose full bandwidth survives (they keep full profit).
    pub satisfied: Vec<DemandId>,
    /// Total profit after refunds: `Σ_{satisfied} g_d + Σ_{violated}
    /// (1-μ_d) g_d`.
    pub profit: f64,
}

impl RecoveryOutcome {
    /// Profit accounting shared by both solvers.
    pub(crate) fn compute_profit(demands: &[BaDemand], satisfied: &[DemandId]) -> f64 {
        demands
            .iter()
            .map(|d| {
                if satisfied.contains(&d.id) {
                    d.price
                } else {
                    (1.0 - d.refund_ratio) * d.price
                }
            })
            .sum()
    }

    /// The profit had no failure occurred (every demand satisfied).
    pub fn baseline_profit(demands: &[BaDemand]) -> f64 {
        demands.iter().map(|d| d.price).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::demand::BaDemand;

    #[test]
    fn profit_accounting() {
        let demands = vec![
            BaDemand::single(1, 0, 100.0, 0.9).with_refund(0.25),
            BaDemand::single(2, 0, 200.0, 0.9).with_refund(0.10),
        ];
        let profit = RecoveryOutcome::compute_profit(&demands, &[DemandId(1)]);
        // d1 full (100) + d2 refunded 10% (180).
        assert!((profit - 280.0).abs() < 1e-12);
        assert!((RecoveryOutcome::baseline_profit(&demands) - 300.0).abs() < 1e-12);
    }
}
