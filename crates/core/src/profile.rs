//! Per-demand scenario collapsing.
//!
//! The scheduling LP (Eq. 7) has one `B_d^z` variable per demand and
//! scenario, which explodes even with pruning (B4 at `y = 2` already yields
//! 742 scenarios). But the LP only observes a scenario through the tunnel
//! availabilities `v_t^z` of *that demand's* tunnels: two scenarios that
//! leave the same subset of a demand's tunnels alive are interchangeable,
//! so their probabilities can be summed into a single collapsed **state**.
//! A demand with 4 tunnels has at most 16 distinct states regardless of the
//! scenario count, which is what keeps the LPs small. The collapse is exact
//! — it changes nothing about the optimum, only the model size.

use crate::demand::BaDemand;
use crate::TeContext;
use bate_net::LinkSet;
use std::collections::HashMap;

/// One collapsed failure state as seen by a single demand.
#[derive(Debug, Clone)]
pub struct ProfileState {
    /// `avail[i][j]`: is tunnel `j` of the demand's `i`-th pair up?
    /// Pairs are indexed in the order they appear in `demand.bandwidth`.
    pub avail: Vec<Vec<bool>>,
    /// Total probability of all scenarios collapsing to this state.
    pub probability: f64,
}

impl ProfileState {
    /// True if every tunnel of every pair is up.
    pub fn all_up(&self) -> bool {
        self.avail.iter().all(|pair| pair.iter().all(|&b| b))
    }
}

/// The collapsed scenario profile of one demand.
#[derive(Debug, Clone)]
pub struct DemandProfile {
    /// Distinct states, first-seen order (the all-up state of scenario 0 is
    /// always index 0).
    pub states: Vec<ProfileState>,
}

impl DemandProfile {
    /// Collapse the context's scenario set against one demand.
    pub fn collapse(ctx: &TeContext, demand: &BaDemand) -> DemandProfile {
        // Pre-compute the fate groups of each tunnel of each requested pair.
        let groups_per_tunnel: Vec<Vec<LinkSet>> = demand
            .bandwidth
            .iter()
            .map(|&(pair, _)| {
                ctx.tunnels
                    .tunnels(pair)
                    .iter()
                    .map(|path| {
                        let mut set = LinkSet::new(ctx.topo.num_groups());
                        for g in path.groups(ctx.topo) {
                            set.insert(g.index());
                        }
                        set
                    })
                    .collect()
            })
            .collect();

        let mut index: HashMap<Vec<bool>, usize> = HashMap::new();
        let mut states: Vec<ProfileState> = Vec::new();

        for scenario in ctx.scenarios.iter() {
            // Flattened availability mask over all (pair, tunnel).
            let mut mask = Vec::new();
            let mut avail = Vec::with_capacity(groups_per_tunnel.len());
            for per_pair in &groups_per_tunnel {
                let v: Vec<bool> = per_pair
                    .iter()
                    .map(|groups| !groups.intersects(&scenario.failed))
                    .collect();
                mask.extend_from_slice(&v);
                avail.push(v);
            }
            match index.get(&mask) {
                Some(&i) => states[i].probability += scenario.probability,
                None => {
                    index.insert(mask, states.len());
                    states.push(ProfileState {
                        avail,
                        probability: scenario.probability,
                    });
                }
            }
        }
        DemandProfile { states }
    }

    /// Number of collapsed states.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// Total covered probability (equals the scenario set's coverage).
    pub fn covered_probability(&self) -> f64 {
        self.states.iter().map(|s| s.probability).sum()
    }
}

/// One collapsed state in bitmask form: one `u64` of tunnel-availability
/// bits per requested pair.
#[derive(Debug, Clone)]
pub struct MaskedState {
    /// `masks[i] >> t & 1`: is tunnel `t` of the demand's `i`-th pair up?
    pub masks: Vec<u64>,
    /// Total probability of all scenarios collapsing to this state.
    pub probability: f64,
}

/// Bitmask form of [`DemandProfile`], built for the row-generation path:
/// the separation oracle evaluates a qualification row with one masked
/// popcount-style sweep per pair instead of a bool-matrix walk, and the
/// mask vectors double as the dedup keys during collapsing.
///
/// States appear in the same first-seen order as [`DemandProfile::collapse`]
/// produces (the two collapse walks visit scenarios identically and the
/// masks encode exactly the per-tunnel availability booleans), so state
/// indices are interchangeable between the two representations.
#[derive(Debug, Clone)]
pub struct MaskedProfile {
    /// Distinct states, first-seen order (scenario 0's all-up state is
    /// always index 0).
    pub states: Vec<MaskedState>,
    /// For each scenario index in the `tracked` argument of
    /// [`MaskedProfile::collapse`], the collapsed state it landed in —
    /// how the row-generation seed scenarios map to master-LP rows.
    pub tracked_states: Vec<usize>,
}

impl MaskedProfile {
    /// Collapse the context's scenario set against one demand, recording
    /// where each scenario index in `tracked` ends up.
    ///
    /// # Panics
    ///
    /// Panics if any requested pair has more than 64 tunnels (the paper's
    /// routing uses KSP-4; the `u64` masks cap far above that).
    pub fn collapse(ctx: &TeContext, demand: &BaDemand, tracked: &[usize]) -> MaskedProfile {
        let groups_per_tunnel: Vec<Vec<LinkSet>> = demand
            .bandwidth
            .iter()
            .map(|&(pair, _)| {
                let tunnels = ctx.tunnels.tunnels(pair);
                assert!(
                    tunnels.len() <= 64,
                    "pair {pair} has {} tunnels; masks hold at most 64",
                    tunnels.len()
                );
                tunnels
                    .iter()
                    .map(|path| {
                        let mut set = LinkSet::new(ctx.topo.num_groups());
                        for g in path.groups(ctx.topo) {
                            set.insert(g.index());
                        }
                        set
                    })
                    .collect()
            })
            .collect();

        let mut index: HashMap<Vec<u64>, usize> = HashMap::new();
        let mut states: Vec<MaskedState> = Vec::new();
        let mut tracked_states = vec![0usize; tracked.len()];

        for (zi, scenario) in ctx.scenarios.iter().enumerate() {
            let masks: Vec<u64> = groups_per_tunnel
                .iter()
                .map(|per_pair| {
                    let mut m = 0u64;
                    for (t, groups) in per_pair.iter().enumerate() {
                        if !groups.intersects(&scenario.failed) {
                            m |= 1 << t;
                        }
                    }
                    m
                })
                .collect();
            let si = match index.get(&masks) {
                Some(&i) => {
                    states[i].probability += scenario.probability;
                    i
                }
                None => {
                    let i = states.len();
                    index.insert(masks.clone(), i);
                    states.push(MaskedState {
                        masks,
                        probability: scenario.probability,
                    });
                    i
                }
            };
            for (pos, &tz) in tracked.iter().enumerate() {
                if tz == zi {
                    tracked_states[pos] = si;
                }
            }
        }
        MaskedProfile {
            states,
            tracked_states,
        }
    }

    /// Is tunnel `ti` of pair `ki` up in state `si`?
    pub fn avail(&self, si: usize, ki: usize, ti: usize) -> bool {
        self.states[si].masks[ki] >> ti & 1 == 1
    }

    /// Number of collapsed states.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// Total covered probability (equals the scenario set's coverage).
    pub fn covered_probability(&self) -> f64 {
        self.states.iter().map(|s| s.probability).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bate_net::{topologies, ScenarioSet};
    use bate_routing::{RoutingScheme, TunnelSet};

    #[test]
    fn collapse_is_probability_preserving() {
        let topo = topologies::testbed6();
        let tunnels = TunnelSet::compute(&topo, RoutingScheme::default_ksp4());
        let scenarios = ScenarioSet::enumerate(&topo, 2);
        let ctx = TeContext::new(&topo, &tunnels, &scenarios);
        let n = |s: &str| topo.find_node(s).unwrap();
        let pair = tunnels.pair_index(n("DC1"), n("DC3")).unwrap();
        let d = BaDemand::single(1, pair, 100.0, 0.99);
        let profile = DemandProfile::collapse(&ctx, &d);
        assert!((profile.covered_probability() - scenarios.covered_probability()).abs() < 1e-12);
        // Collapsing must shrink the 37-scenario set dramatically: a pair
        // with 4 tunnels has at most 16 states.
        assert!(profile.len() <= 16, "{} states", profile.len());
        assert!(profile.len() < scenarios.len());
        assert!(profile.states[0].all_up());
    }

    #[test]
    fn states_are_distinct() {
        let topo = topologies::toy4();
        let tunnels = TunnelSet::compute(&topo, RoutingScheme::Ksp(2));
        let scenarios = ScenarioSet::enumerate(&topo, topo.num_groups());
        let ctx = TeContext::new(&topo, &tunnels, &scenarios);
        let n = |s: &str| topo.find_node(s).unwrap();
        let pair = tunnels.pair_index(n("DC1"), n("DC4")).unwrap();
        let d = BaDemand::single(1, pair, 100.0, 0.99);
        let profile = DemandProfile::collapse(&ctx, &d);
        let mut seen = std::collections::HashSet::new();
        for s in &profile.states {
            let key: Vec<bool> = s.avail.iter().flatten().copied().collect();
            assert!(seen.insert(key), "duplicate state");
            assert!(s.probability > 0.0);
        }
        // 2 tunnels -> at most 4 states.
        assert!(profile.len() <= 4);
    }

    #[test]
    fn masked_profile_matches_bool_profile() {
        // The masked collapse must reproduce the bool collapse exactly:
        // same states in the same order, bit-identical probabilities.
        let topo = topologies::testbed6();
        let tunnels = TunnelSet::compute(&topo, RoutingScheme::default_ksp4());
        let scenarios = ScenarioSet::enumerate(&topo, 2);
        let ctx = TeContext::new(&topo, &tunnels, &scenarios);
        let n = |s: &str| topo.find_node(s).unwrap();
        let p1 = tunnels.pair_index(n("DC1"), n("DC3")).unwrap();
        let p2 = tunnels.pair_index(n("DC2"), n("DC6")).unwrap();
        let d = BaDemand {
            id: crate::DemandId(3),
            bandwidth: vec![(p1, 10.0), (p2, 20.0)],
            beta: 0.95,
            price: 30.0,
            refund_ratio: 0.1,
        };
        let bools = DemandProfile::collapse(&ctx, &d);
        let masked = MaskedProfile::collapse(&ctx, &d, &[]);
        assert_eq!(bools.len(), masked.len());
        for (si, (bs, ms)) in bools.states.iter().zip(&masked.states).enumerate() {
            assert_eq!(bs.probability.to_bits(), ms.probability.to_bits());
            for (ki, pair_avail) in bs.avail.iter().enumerate() {
                for (ti, &up) in pair_avail.iter().enumerate() {
                    assert_eq!(up, masked.avail(si, ki, ti), "state {si} pair {ki} tunnel {ti}");
                }
            }
        }
    }

    #[test]
    fn masked_profile_tracks_seed_scenarios() {
        let topo = topologies::toy4();
        let tunnels = TunnelSet::compute(&topo, RoutingScheme::Ksp(2));
        let scenarios = ScenarioSet::enumerate(&topo, 2);
        let ctx = TeContext::new(&topo, &tunnels, &scenarios);
        let n = |s: &str| topo.find_node(s).unwrap();
        let pair = tunnels.pair_index(n("DC1"), n("DC4")).unwrap();
        let d = BaDemand::single(1, pair, 100.0, 0.99);
        let tracked = scenarios.most_probable_singles(3);
        let masked = MaskedProfile::collapse(&ctx, &d, &tracked);
        assert_eq!(masked.tracked_states.len(), tracked.len());
        // Scenario 0 (all-up) always collapses to state 0; every tracked
        // single-failure scenario must land on the state whose masks match
        // its own availability pattern.
        assert_eq!(masked.states[0].masks, vec![u64::MAX >> (64 - tunnels.tunnels(pair).len())]);
        let bools = DemandProfile::collapse(&ctx, &d);
        for (pos, &zi) in tracked.iter().enumerate() {
            let si = masked.tracked_states[pos];
            let scenario = &scenarios.scenarios[zi];
            for (ti, _) in tunnels.tunnels(pair).iter().enumerate() {
                let up_direct = bools.states[si].avail[0][ti];
                assert_eq!(masked.avail(si, 0, ti), up_direct, "scenario {scenario:?}");
            }
        }
    }

    #[test]
    fn multi_pair_demand_profiles_pairs_in_order() {
        let topo = topologies::testbed6();
        let tunnels = TunnelSet::compute(&topo, RoutingScheme::Ksp(2));
        let scenarios = ScenarioSet::enumerate(&topo, 1);
        let ctx = TeContext::new(&topo, &tunnels, &scenarios);
        let n = |s: &str| topo.find_node(s).unwrap();
        let p1 = tunnels.pair_index(n("DC1"), n("DC3")).unwrap();
        let p2 = tunnels.pair_index(n("DC2"), n("DC6")).unwrap();
        let d = BaDemand {
            id: crate::DemandId(9),
            bandwidth: vec![(p1, 10.0), (p2, 20.0)],
            beta: 0.9,
            price: 30.0,
            refund_ratio: 0.1,
        };
        let profile = DemandProfile::collapse(&ctx, &d);
        for s in &profile.states {
            assert_eq!(s.avail.len(), 2);
            assert_eq!(s.avail[0].len(), tunnels.tunnels(p1).len());
            assert_eq!(s.avail[1].len(), tunnels.tunnels(p2).len());
        }
    }
}
