//! Property-based validation of the BATE core invariants on the testbed
//! topology: Theorem 1, scheduling guarantees, pruning monotonicity, and
//! recovery bounds.

use bate_core::admission::greedy::{best_effort_allocation, conjecture_with_allocation};
use bate_core::profile::{DemandProfile, MaskedProfile};
use bate_core::recovery::greedy::greedy_recovery;
use bate_core::scheduling::{schedule, schedule_hardened, separate_demand};
use bate_core::{Allocation, BaDemand, DemandId, TeContext};
use bate_net::{topologies, GroupId, Scenario, ScenarioSet};
use bate_routing::{RoutingScheme, TunnelSet};
use proptest::prelude::*;

fn demand_strategy(num_pairs: usize, max: usize) -> impl Strategy<Value = Vec<BaDemand>> {
    prop::collection::vec(
        (
            0usize..num_pairs,
            50.0f64..600.0,
            prop::sample::select(vec![0.0, 0.9, 0.95, 0.99, 0.999]),
            10.0f64..500.0,
            0.0f64..1.0,
        ),
        1..=max,
    )
    .prop_map(|specs| {
        specs
            .into_iter()
            .enumerate()
            .map(|(i, (pair, bw, beta, price, refund))| BaDemand {
                id: DemandId(i as u64 + 1),
                bandwidth: vec![(pair, bw)],
                beta,
                price,
                refund_ratio: refund,
            })
            .collect()
    })
}

fn testbed() -> (bate_net::Topology, TunnelSet, ScenarioSet) {
    let topo = topologies::testbed6();
    let tunnels = TunnelSet::compute(&topo, RoutingScheme::default_ksp4());
    let scenarios = ScenarioSet::enumerate(&topo, topo.num_groups());
    (topo, tunnels, scenarios)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Theorem 1: a conjectured *yes* always has a feasible schedule whose
    /// allocation meets every availability target.
    #[test]
    fn theorem1_holds(demands in demand_strategy(30, 5)) {
        let (topo, tunnels, scenarios) = testbed();
        let ctx = TeContext::new(&topo, &tunnels, &scenarios);
        if conjecture_with_allocation(&ctx, &demands).is_some() {
            let res = schedule_hardened(&ctx, &demands);
            prop_assert!(res.is_ok(), "conjecture admitted an unschedulable set");
            let alloc = res.unwrap().allocation;
            prop_assert!(alloc.respects_capacity(&ctx, 1e-6));
            for d in &demands {
                prop_assert!(alloc.meets_target(&ctx, d), "target missed: {d:?}");
            }
        }
    }

    /// Whenever scheduling succeeds, the result is capacity-feasible,
    /// allocates at least the demanded bandwidth, and guarantees every
    /// demand's *relaxed* availability (Eq. 4 — the criterion the paper's
    /// LP actually enforces). The hardened variant additionally repairs
    /// hard-availability violations without breaking anything else.
    #[test]
    fn scheduling_postconditions(demands in demand_strategy(30, 5)) {
        let (topo, tunnels, scenarios) = testbed();
        let ctx = TeContext::new(&topo, &tunnels, &scenarios);
        if let Ok(res) = schedule(&ctx, &demands) {
            prop_assert!(res.allocation.respects_capacity(&ctx, 1e-6));
            let demanded: f64 = demands.iter().map(|d| d.total_bandwidth()).sum();
            prop_assert!(res.total_bandwidth >= demanded - 1e-6);
            for d in &demands {
                let relaxed = res.allocation.relaxed_availability(&ctx, d);
                prop_assert!(relaxed >= d.beta - 1e-6,
                    "relaxed availability {relaxed} < {}", d.beta);
            }
            // Hardening preserves capacity feasibility and the relaxed
            // guarantee, and never *worsens* hard satisfaction.
            let before: usize = demands
                .iter()
                .filter(|d| res.allocation.meets_target(&ctx, d))
                .count();
            let hard = schedule_hardened(&ctx, &demands).unwrap();
            prop_assert!(hard.allocation.respects_capacity(&ctx, 1e-6));
            let after: usize = demands
                .iter()
                .filter(|d| hard.allocation.meets_target(&ctx, d))
                .count();
            prop_assert!(after >= before, "hardening lost guarantees: {after} < {before}");
        }
    }

    /// Recovery invariants for an arbitrary single failure: no flow on dead
    /// links, capacity respected, profit within [refund floor, baseline],
    /// and satisfied demands really are fully delivered.
    #[test]
    fn recovery_invariants(demands in demand_strategy(30, 6), g in 0usize..8) {
        let (topo, tunnels, scenarios) = testbed();
        let ctx = TeContext::new(&topo, &tunnels, &scenarios);
        let scenario = Scenario::with_failures(&topo, &[GroupId(g % topo.num_groups())]);
        let out = greedy_recovery(&ctx, &demands, &scenario);

        let loads = out.allocation.link_loads(&ctx);
        for (l, _) in topo.links() {
            if !scenario.link_up(&topo, l) {
                prop_assert_eq!(loads[l.index()], 0.0);
            }
        }
        prop_assert!(out.allocation.respects_capacity(&ctx, 1e-6));

        let baseline: f64 = demands.iter().map(|d| d.price).sum();
        let floor: f64 = demands.iter().map(|d| (1.0 - d.refund_ratio) * d.price).sum();
        prop_assert!(out.profit <= baseline + 1e-9);
        prop_assert!(out.profit >= floor - 1e-9);

        for id in &out.satisfied {
            let d = demands.iter().find(|d| d.id == *id).unwrap();
            prop_assert!(out.allocation.satisfied_under(&ctx, d, &scenario));
        }
    }

    /// Best-effort allocation never exceeds residual capacity or the
    /// demand itself.
    #[test]
    fn best_effort_is_bounded(demands in demand_strategy(30, 4)) {
        let (topo, tunnels, scenarios) = testbed();
        let ctx = TeContext::new(&topo, &tunnels, &scenarios);
        let mut current = Allocation::new();
        for d in &demands {
            let extra = best_effort_allocation(&ctx, &current, d);
            let got: f64 = extra.flows_of(d.id).map(|(_, f)| f).sum();
            prop_assert!(got <= d.total_bandwidth() + 1e-9);
            for (t, f) in extra.flows_of(d.id) {
                current.set(d.id, t, f);
            }
            prop_assert!(current.respects_capacity(&ctx, 1e-6));
        }
    }

    /// The bitset separation oracle flags *exactly* the rows a brute-force
    /// walk of the bool-profile qualification constraints flags, for
    /// arbitrary candidate points — same set, same order, bit-identical
    /// left-hand sides (the masked sweep consumes bits lowest-first, the
    /// same accumulation order as the tunnel-index walk).
    #[test]
    fn separation_oracle_matches_brute_force(
        bw in prop::collection::vec((0usize..30, 50.0f64..600.0), 1..=3),
        f_pool in prop::collection::vec(0.0f64..800.0, 64),
        b_pool in prop::collection::vec(0.0f64..1.0, 64),
        added_pool in prop::collection::vec(0usize..2, 64),
    ) {
        let (topo, tunnels, scenarios) = testbed();
        let ctx = TeContext::new(&topo, &tunnels, &scenarios);
        let demand = BaDemand {
            id: DemandId(1),
            bandwidth: bw,
            beta: 0.99,
            price: 0.0,
            refund_ratio: 0.0,
        };
        let masked = MaskedProfile::collapse(&ctx, &demand, &[]);
        let bools = DemandProfile::collapse(&ctx, &demand);
        prop_assert_eq!(masked.len(), bools.len());
        let pairs = demand.bandwidth.len();

        // Random candidate point and random already-added row set, drawn
        // from fixed-size pools (sizes depend on the generated demand).
        let f_vals: Vec<Vec<f64>> = demand
            .bandwidth
            .iter()
            .enumerate()
            .map(|(ki, &(pair, _))| {
                (0..tunnels.tunnels(pair).len())
                    .map(|ti| f_pool[(ki * 7 + ti) % f_pool.len()])
                    .collect()
            })
            .collect();
        let b_vals: Vec<f64> = (0..masked.len()).map(|si| b_pool[si % b_pool.len()]).collect();
        let added: Vec<bool> = (0..masked.len() * pairs)
            .map(|i| added_pool[i % added_pool.len()] != 0)
            .collect();

        let oracle = separate_demand(&demand, &masked, &f_vals, &b_vals, &added);

        let mut brute = Vec::new();
        for (si, state) in bools.states.iter().enumerate() {
            for (ki, &(_, b)) in demand.bandwidth.iter().enumerate() {
                if added[si * pairs + ki] {
                    continue;
                }
                let mut flow = 0.0;
                for (ti, &up) in state.avail[ki].iter().enumerate() {
                    if up {
                        flow += f_vals[ki][ti];
                    }
                }
                if b * b_vals[si] - flow > 1e-9 * (1.0 + b.abs()) {
                    brute.push((si, ki));
                }
            }
        }
        prop_assert_eq!(oracle, brute);
    }

    /// Row generation and the full formulation agree on feasibility and
    /// (when feasible) the optimal objective, for arbitrary demand sets.
    #[test]
    fn rowgen_equals_full_on_random_demands(demands in demand_strategy(30, 4)) {
        use bate_core::scheduling::{schedule_mode, SolveMode};
        let (topo, tunnels, scenarios) = testbed();
        let ctx = TeContext::new(&topo, &tunnels, &scenarios);
        let full = schedule_mode(&ctx, &demands, SolveMode::Full);
        let lazy = schedule_mode(&ctx, &demands, SolveMode::RowGen { seed_singles: 4 });
        match (full, lazy) {
            (Ok(f), Ok(l)) => {
                let scale = 1.0 + f.total_bandwidth.abs().max(l.total_bandwidth.abs());
                prop_assert!(
                    (f.total_bandwidth - l.total_bandwidth).abs() <= 1e-9 * scale,
                    "objective mismatch: {} vs {}", f.total_bandwidth, l.total_bandwidth
                );
            }
            (Err(_), Err(_)) => {}
            (f, l) => {
                prop_assert!(
                    false,
                    "paths disagree on feasibility: full={:?} rowgen={:?}",
                    f.map(|r| r.total_bandwidth),
                    l.map(|r| r.total_bandwidth)
                );
            }
        }
    }

    /// Achieved availability is monotone in the scenario-set depth and
    /// always within [0, 1].
    #[test]
    fn availability_monotone_in_depth(demands in demand_strategy(30, 3)) {
        let topo = topologies::testbed6();
        let tunnels = TunnelSet::compute(&topo, RoutingScheme::default_ksp4());
        let deep = ScenarioSet::enumerate(&topo, 4);
        let ctx_deep = TeContext::new(&topo, &tunnels, &deep);
        if let Ok(res) = schedule(&ctx_deep, &demands) {
            let mut prev = vec![0.0f64; demands.len()];
            for y in 1..=4 {
                let set = ScenarioSet::enumerate(&topo, y);
                let ctx = TeContext::new(&topo, &tunnels, &set);
                for (i, d) in demands.iter().enumerate() {
                    let a = res.allocation.achieved_availability(&ctx, d);
                    prop_assert!((0.0..=1.0 + 1e-12).contains(&a));
                    prop_assert!(a >= prev[i] - 1e-12, "availability must grow with depth");
                    prev[i] = a;
                }
            }
        }
    }
}
