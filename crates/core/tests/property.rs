//! Property-based validation of the BATE core invariants on the testbed
//! topology: Theorem 1, scheduling guarantees, pruning monotonicity, and
//! recovery bounds.

use bate_core::admission::greedy::{best_effort_allocation, conjecture_with_allocation};
use bate_core::recovery::greedy::greedy_recovery;
use bate_core::scheduling::{schedule, schedule_hardened};
use bate_core::{Allocation, BaDemand, DemandId, TeContext};
use bate_net::{topologies, GroupId, Scenario, ScenarioSet};
use bate_routing::{RoutingScheme, TunnelSet};
use proptest::prelude::*;

fn demand_strategy(num_pairs: usize, max: usize) -> impl Strategy<Value = Vec<BaDemand>> {
    prop::collection::vec(
        (
            0usize..num_pairs,
            50.0f64..600.0,
            prop::sample::select(vec![0.0, 0.9, 0.95, 0.99, 0.999]),
            10.0f64..500.0,
            0.0f64..1.0,
        ),
        1..=max,
    )
    .prop_map(|specs| {
        specs
            .into_iter()
            .enumerate()
            .map(|(i, (pair, bw, beta, price, refund))| BaDemand {
                id: DemandId(i as u64 + 1),
                bandwidth: vec![(pair, bw)],
                beta,
                price,
                refund_ratio: refund,
            })
            .collect()
    })
}

fn testbed() -> (bate_net::Topology, TunnelSet, ScenarioSet) {
    let topo = topologies::testbed6();
    let tunnels = TunnelSet::compute(&topo, RoutingScheme::default_ksp4());
    let scenarios = ScenarioSet::enumerate(&topo, topo.num_groups());
    (topo, tunnels, scenarios)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Theorem 1: a conjectured *yes* always has a feasible schedule whose
    /// allocation meets every availability target.
    #[test]
    fn theorem1_holds(demands in demand_strategy(30, 5)) {
        let (topo, tunnels, scenarios) = testbed();
        let ctx = TeContext::new(&topo, &tunnels, &scenarios);
        if conjecture_with_allocation(&ctx, &demands).is_some() {
            let res = schedule_hardened(&ctx, &demands);
            prop_assert!(res.is_ok(), "conjecture admitted an unschedulable set");
            let alloc = res.unwrap().allocation;
            prop_assert!(alloc.respects_capacity(&ctx, 1e-6));
            for d in &demands {
                prop_assert!(alloc.meets_target(&ctx, d), "target missed: {d:?}");
            }
        }
    }

    /// Whenever scheduling succeeds, the result is capacity-feasible,
    /// allocates at least the demanded bandwidth, and guarantees every
    /// demand's *relaxed* availability (Eq. 4 — the criterion the paper's
    /// LP actually enforces). The hardened variant additionally repairs
    /// hard-availability violations without breaking anything else.
    #[test]
    fn scheduling_postconditions(demands in demand_strategy(30, 5)) {
        let (topo, tunnels, scenarios) = testbed();
        let ctx = TeContext::new(&topo, &tunnels, &scenarios);
        if let Ok(res) = schedule(&ctx, &demands) {
            prop_assert!(res.allocation.respects_capacity(&ctx, 1e-6));
            let demanded: f64 = demands.iter().map(|d| d.total_bandwidth()).sum();
            prop_assert!(res.total_bandwidth >= demanded - 1e-6);
            for d in &demands {
                let relaxed = res.allocation.relaxed_availability(&ctx, d);
                prop_assert!(relaxed >= d.beta - 1e-6,
                    "relaxed availability {relaxed} < {}", d.beta);
            }
            // Hardening preserves capacity feasibility and the relaxed
            // guarantee, and never *worsens* hard satisfaction.
            let before: usize = demands
                .iter()
                .filter(|d| res.allocation.meets_target(&ctx, d))
                .count();
            let hard = schedule_hardened(&ctx, &demands).unwrap();
            prop_assert!(hard.allocation.respects_capacity(&ctx, 1e-6));
            let after: usize = demands
                .iter()
                .filter(|d| hard.allocation.meets_target(&ctx, d))
                .count();
            prop_assert!(after >= before, "hardening lost guarantees: {after} < {before}");
        }
    }

    /// Recovery invariants for an arbitrary single failure: no flow on dead
    /// links, capacity respected, profit within [refund floor, baseline],
    /// and satisfied demands really are fully delivered.
    #[test]
    fn recovery_invariants(demands in demand_strategy(30, 6), g in 0usize..8) {
        let (topo, tunnels, scenarios) = testbed();
        let ctx = TeContext::new(&topo, &tunnels, &scenarios);
        let scenario = Scenario::with_failures(&topo, &[GroupId(g % topo.num_groups())]);
        let out = greedy_recovery(&ctx, &demands, &scenario);

        let loads = out.allocation.link_loads(&ctx);
        for (l, _) in topo.links() {
            if !scenario.link_up(&topo, l) {
                prop_assert_eq!(loads[l.index()], 0.0);
            }
        }
        prop_assert!(out.allocation.respects_capacity(&ctx, 1e-6));

        let baseline: f64 = demands.iter().map(|d| d.price).sum();
        let floor: f64 = demands.iter().map(|d| (1.0 - d.refund_ratio) * d.price).sum();
        prop_assert!(out.profit <= baseline + 1e-9);
        prop_assert!(out.profit >= floor - 1e-9);

        for id in &out.satisfied {
            let d = demands.iter().find(|d| d.id == *id).unwrap();
            prop_assert!(out.allocation.satisfied_under(&ctx, d, &scenario));
        }
    }

    /// Best-effort allocation never exceeds residual capacity or the
    /// demand itself.
    #[test]
    fn best_effort_is_bounded(demands in demand_strategy(30, 4)) {
        let (topo, tunnels, scenarios) = testbed();
        let ctx = TeContext::new(&topo, &tunnels, &scenarios);
        let mut current = Allocation::new();
        for d in &demands {
            let extra = best_effort_allocation(&ctx, &current, d);
            let got: f64 = extra.flows_of(d.id).map(|(_, f)| f).sum();
            prop_assert!(got <= d.total_bandwidth() + 1e-9);
            for (t, f) in extra.flows_of(d.id) {
                current.set(d.id, t, f);
            }
            prop_assert!(current.respects_capacity(&ctx, 1e-6));
        }
    }

    /// Achieved availability is monotone in the scenario-set depth and
    /// always within [0, 1].
    #[test]
    fn availability_monotone_in_depth(demands in demand_strategy(30, 3)) {
        let topo = topologies::testbed6();
        let tunnels = TunnelSet::compute(&topo, RoutingScheme::default_ksp4());
        let deep = ScenarioSet::enumerate(&topo, 4);
        let ctx_deep = TeContext::new(&topo, &tunnels, &deep);
        if let Ok(res) = schedule(&ctx_deep, &demands) {
            let mut prev = vec![0.0f64; demands.len()];
            for y in 1..=4 {
                let set = ScenarioSet::enumerate(&topo, y);
                let ctx = TeContext::new(&topo, &tunnels, &set);
                for (i, d) in demands.iter().enumerate() {
                    let a = res.allocation.achieved_availability(&ctx, d);
                    prop_assert!((0.0..=1.0 + 1e-12).contains(&a));
                    prop_assert!(a >= prev[i] - 1e-12, "availability must grow with depth");
                    prev[i] = a;
                }
            }
        }
    }
}
