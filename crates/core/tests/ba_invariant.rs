//! End-to-end bandwidth-availability invariant checker (DESIGN.md §5d).
//!
//! Independently of the production availability calculus
//! (`Allocation::achieved_availability` and friends), this test
//! brute-forces the pruned scenario set from first principles — tunnel
//! paths, fate groups, scenario probabilities — and verifies that for
//! every admitted demand the allocation delivers `b_d` in at least
//! `β_d` of the enumerated probability mass:
//!
//! * the plain scheduling LP guarantees the *relaxed* credit of Eq. 4
//!   (`Σ_z p_z · min_k min(1, delivered/b) ≥ β`),
//! * the hardened schedule and the admission MILP guarantee the hard
//!   all-or-nothing form (`Σ_{z qualified} p_z ≥ β`),
//!
//! on toy4 with pruning depth y = 2 and testbed6 with y = 1. A final
//! test corrupts a passing allocation and shows the checker rejects it,
//! so a silent regression in the scheduler cannot pass by vacuity.
//!
//! The correlated family repeats the exercise with a fiber-cut SRLG over
//! toy4's two disjoint DC1→DC4 paths: the scenario probabilities are
//! audited against an in-test brute force over *all* event subsets
//! (residual per-group failures plus the SRLG, independent of
//! `SrlgSet`'s pruned enumeration), coverage is re-verified under the
//! joint distribution, the correlated model provably rejects a demand the
//! independent-marginal model admits, and a tampered joint probability is
//! caught by the audit.

use bate_core::admission::optimal::{maximize_admissions, optimal_feasible};
use bate_core::scheduling::{harden, schedule};
use bate_core::{Allocation, BaDemand, TeContext};
use bate_net::{topologies, GroupId, Scenario, ScenarioSet, SrlgSet, Topology};
use bate_routing::{RoutingScheme, TunnelId, TunnelSet};
use std::collections::HashMap;

/// Relative slack for float LP output (mirrors the production
/// SATISFY_TOL, restated here so the checker stays independent).
const TOL: f64 = 1e-6;

/// Bandwidth reaching `pair` for demand `id` under `scenario`, computed
/// from raw tunnel paths and fate groups only.
fn delivered_brute(
    ctx: &TeContext,
    alloc: &Allocation,
    id: bate_core::DemandId,
    pair: usize,
    scenario: &Scenario,
) -> f64 {
    let num_tunnels = ctx.tunnels.tunnels(pair).len();
    (0..num_tunnels)
        .map(|ti| {
            let t = TunnelId { pair, tunnel: ti };
            let f = alloc.get(id, t);
            if f == 0.0 {
                return 0.0;
            }
            let all_up = ctx
                .tunnels
                .path(t)
                .links
                .iter()
                .all(|&l| scenario.group_up(ctx.topo.link(l).group));
            if all_up {
                f
            } else {
                0.0
            }
        })
        .sum()
}

/// Probability mass of enumerated scenarios in which *every* pair of the
/// demand receives its full `b_d` (hard, all-or-nothing qualification).
fn hard_coverage(ctx: &TeContext, alloc: &Allocation, demand: &BaDemand) -> f64 {
    ctx.scenarios
        .iter()
        .filter(|z| {
            demand.bandwidth.iter().all(|&(pair, b)| {
                delivered_brute(ctx, alloc, demand.id, pair, z) >= b * (1.0 - TOL)
            })
        })
        .map(|z| z.probability)
        .sum()
}

/// Eq. 4's relaxed credit: scenarios earn `min_k min(1, delivered/b)`.
fn relaxed_coverage(ctx: &TeContext, alloc: &Allocation, demand: &BaDemand) -> f64 {
    ctx.scenarios
        .iter()
        .map(|z| {
            let credit = demand
                .bandwidth
                .iter()
                .map(|&(pair, b)| (delivered_brute(ctx, alloc, demand.id, pair, z) / b).min(1.0))
                .fold(1.0f64, f64::min);
            z.probability * credit.max(0.0)
        })
        .sum()
}

/// Independent capacity audit: per-link loads recomputed from paths.
fn respects_capacity_brute(ctx: &TeContext, alloc: &Allocation, demands: &[BaDemand]) -> bool {
    let mut loads = vec![0.0f64; ctx.topo.num_links()];
    for d in demands {
        for &(pair, _) in &d.bandwidth {
            for ti in 0..ctx.tunnels.tunnels(pair).len() {
                let t = TunnelId { pair, tunnel: ti };
                let f = alloc.get(d.id, t);
                for &l in &ctx.tunnels.path(t).links {
                    loads[l.index()] += f;
                }
            }
        }
    }
    ctx.topo
        .links()
        .all(|(l, def)| loads[l.index()] <= def.capacity * (1.0 + TOL) + TOL)
}

fn toy4_setup() -> (Topology, TunnelSet, ScenarioSet) {
    let topo = topologies::toy4();
    let tunnels = TunnelSet::compute(&topo, RoutingScheme::Ksp(2));
    let scenarios = ScenarioSet::enumerate(&topo, 2);
    (topo, tunnels, scenarios)
}

fn toy4_demands(topo: &Topology, tunnels: &TunnelSet) -> Vec<BaDemand> {
    let n = |s: &str| topo.find_node(s).unwrap();
    let pair = tunnels.pair_index(n("DC1"), n("DC4")).unwrap();
    vec![
        BaDemand::single(1, pair, 6000.0, 0.99),
        BaDemand::single(2, pair, 12_000.0, 0.90),
    ]
}

#[test]
fn toy4_schedule_meets_ba_targets_depth2() {
    let (topo, tunnels, scenarios) = toy4_setup();
    let ctx = TeContext::new(&topo, &tunnels, &scenarios);
    let demands = toy4_demands(&topo, &tunnels);

    // The LP alone guarantees the relaxed form for every demand.
    let lp = schedule(&ctx, &demands).unwrap();
    assert!(respects_capacity_brute(&ctx, &lp.allocation, &demands));
    for d in &demands {
        let cov = relaxed_coverage(&ctx, &lp.allocation, d);
        assert!(
            cov >= d.beta - TOL,
            "demand {} relaxed coverage {cov} < β {}",
            d.id.0,
            d.beta
        );
    }

    // Hardening upgrades the motivating example to the hard form.
    let mut hardened = lp;
    let violations = harden(&ctx, &demands, &mut hardened);
    assert_eq!(violations, 0, "motivating example must harden cleanly");
    assert!(respects_capacity_brute(&ctx, &hardened.allocation, &demands));
    for d in &demands {
        let cov = hard_coverage(&ctx, &hardened.allocation, d);
        assert!(
            cov >= d.beta - TOL,
            "demand {} hard coverage {cov} < β {}",
            d.id.0,
            d.beta
        );
    }
}

#[test]
fn testbed6_admitted_demands_are_covered_depth1() {
    let topo = topologies::testbed6();
    let tunnels = TunnelSet::compute(&topo, RoutingScheme::Ksp(3));
    let scenarios = ScenarioSet::enumerate(&topo, 1);
    let ctx = TeContext::new(&topo, &tunnels, &scenarios);
    let n = |s: &str| topo.find_node(s).unwrap();
    let p13 = tunnels.pair_index(n("DC1"), n("DC3")).unwrap();
    let p12 = tunnels.pair_index(n("DC1"), n("DC2")).unwrap();
    let demands = vec![
        BaDemand::single(1, p13, 500.0, 0.99),
        BaDemand::single(2, p13, 400.0, 0.95),
        BaDemand::single(3, p12, 300.0, 0.99),
        // Deliberately unservable: forces a rejection so the invariant
        // is exercised on a strict subset, not vacuously on everyone.
        BaDemand::single(4, p13, 1e7, 0.999),
    ];

    let res = maximize_admissions(&ctx, &demands).unwrap();
    assert!(
        !res.accepted[3],
        "the 10 Tbps demand cannot be admitted on testbed6"
    );
    let admitted: Vec<&BaDemand> = demands
        .iter()
        .zip(&res.accepted)
        .filter(|(_, &a)| a)
        .map(|(d, _)| d)
        .collect();
    assert!(!admitted.is_empty(), "some demand must be admissible");

    assert!(respects_capacity_brute(&ctx, &res.allocation, &demands));
    for d in admitted {
        let cov = hard_coverage(&ctx, &res.allocation, d);
        assert!(
            cov >= d.beta - TOL,
            "admitted demand {} hard coverage {cov} < β {}",
            d.id.0,
            d.beta
        );
    }
}

/// The correlated event model of toy4 plus one fiber-cut SRLG over the
/// two low-failure links (e2, e4 — one per disjoint DC1→DC4 path),
/// restated from first principles: each fate group fails on its own with
/// the topology's probability, and the conduit cut takes both paths down
/// together with probability `q`.
fn toy4_fiber_cut_events(topo: &Topology, q: f64) -> Vec<(f64, Vec<usize>)> {
    let mut events: Vec<(f64, Vec<usize>)> = topo
        .groups()
        .map(|(g, def)| (def.failure_prob, vec![g.0]))
        .collect();
    events.push((q, vec![1, 3]));
    events
}

/// Exact probability mass of every down-set, brute-forced over all 2^n
/// independent-event subsets (the ground truth the pruned correlated
/// enumeration must never exceed).
fn brute_down_masses(events: &[(f64, Vec<usize>)]) -> HashMap<Vec<usize>, f64> {
    let n = events.len();
    assert!(n <= 16, "brute force is 2^n");
    let mut masses: HashMap<Vec<usize>, f64> = HashMap::new();
    for mask in 0u32..(1 << n) {
        let mut p = 1.0;
        let mut down: Vec<usize> = Vec::new();
        for (i, (q, cover)) in events.iter().enumerate() {
            if mask & (1 << i) != 0 {
                p *= q;
                for &g in cover {
                    if !down.contains(&g) {
                        down.push(g);
                    }
                }
            } else {
                p *= 1.0 - q;
            }
        }
        down.sort_unstable();
        *masses.entry(down).or_insert(0.0) += p;
    }
    masses
}

/// Audit a scenario set's joint probabilities against the exact masses:
/// no scenario may claim more than its state's true mass (pruning only
/// ever under-counts), and enumerated + residual mass must be exactly 1.
fn audit_joint_probabilities(
    scenarios: &ScenarioSet,
    exact: &HashMap<Vec<usize>, f64>,
) -> Result<(), String> {
    let mut total = 0.0;
    for z in scenarios.iter() {
        let key: Vec<usize> = z.failed.iter().collect();
        let mass = exact.get(&key).copied().unwrap_or(0.0);
        if z.probability > mass + 1e-9 {
            return Err(format!(
                "scenario {key:?} claims probability {} > exact mass {mass}",
                z.probability
            ));
        }
        total += z.probability;
    }
    if (total + scenarios.residual_probability - 1.0).abs() > 1e-9 {
        return Err(format!(
            "mass not conserved: covered {total} + residual {} != 1",
            scenarios.residual_probability
        ));
    }
    Ok(())
}

fn toy4_correlated_setup(q: f64) -> (Topology, TunnelSet, ScenarioSet) {
    let topo = topologies::toy4();
    let tunnels = TunnelSet::compute(&topo, RoutingScheme::Ksp(2));
    let mut srlgs = SrlgSet::new(&topo);
    srlgs.add("fiber-cut", q, &[GroupId(1), GroupId(3)]);
    let scenarios = srlgs.enumerate(&topo, 2);
    (topo, tunnels, scenarios)
}

#[test]
fn toy4_correlated_fiber_cut_meets_ba_targets_depth2() {
    let (topo, tunnels, scenarios) = toy4_correlated_setup(0.02);
    audit_joint_probabilities(&scenarios, &brute_down_masses(&toy4_fiber_cut_events(&topo, 0.02)))
        .expect("genuine correlated enumeration must pass the audit");

    // The SRLG scenario (both paths down, mass ≈ 2%) is enumerated and
    // never qualified, so targets must sit below ~98% here; under
    // independence the same β-values from `toy4_demands` would clear.
    let ctx = TeContext::new(&topo, &tunnels, &scenarios);
    let n = |s: &str| topo.find_node(s).unwrap();
    let pair = tunnels.pair_index(n("DC1"), n("DC4")).unwrap();
    let demands = vec![
        BaDemand::single(1, pair, 6000.0, 0.95),
        BaDemand::single(2, pair, 12_000.0, 0.90),
    ];

    let lp = schedule(&ctx, &demands).unwrap();
    assert!(respects_capacity_brute(&ctx, &lp.allocation, &demands));
    for d in &demands {
        let cov = relaxed_coverage(&ctx, &lp.allocation, d);
        assert!(
            cov >= d.beta - TOL,
            "demand {} correlated relaxed coverage {cov} < β {}",
            d.id.0,
            d.beta
        );
    }

    let mut hardened = lp;
    let violations = harden(&ctx, &demands, &mut hardened);
    assert_eq!(violations, 0, "correlated toy4 must harden cleanly");
    assert!(respects_capacity_brute(&ctx, &hardened.allocation, &demands));
    for d in &demands {
        let cov = hard_coverage(&ctx, &hardened.allocation, d);
        assert!(
            cov >= d.beta - TOL,
            "demand {} correlated hard coverage {cov} < β {}",
            d.id.0,
            d.beta
        );
        // The joint model really bites: the fiber cut caps achievable
        // coverage strictly below what per-link independence promises.
        assert!(
            cov < 1.0 - 0.015,
            "demand {} coverage {cov} ignores the 2% fiber cut",
            d.id.0
        );
    }
}

#[test]
fn correlated_model_rejects_what_independent_marginals_admit() {
    let topo = topologies::toy4();
    let tunnels = TunnelSet::compute(&topo, RoutingScheme::Ksp(2));
    let mut srlgs = SrlgSet::new(&topo);
    srlgs.add("fiber-cut", 0.01, &[GroupId(1), GroupId(3)]);

    let n = |s: &str| topo.find_node(s).unwrap();
    let pair = tunnels.pair_index(n("DC1"), n("DC4")).unwrap();
    // Small enough to ride either path alone; β = 99.9% is exactly the
    // kind of target two "independent" 1% paths appear to clear.
    let probe = vec![BaDemand::single(7, pair, 1000.0, 0.999)];

    // Correlation-blind observer: same marginal failure rates, no joint
    // structure. Admission accepts.
    let marginal = srlgs.marginal_topology(&topo);
    let indep = ScenarioSet::enumerate(&marginal, 2);
    let ctx_indep = TeContext::new(&marginal, &tunnels, &indep);
    assert!(
        optimal_feasible(&ctx_indep, &probe).unwrap(),
        "independent marginals must admit the 99.9% demand"
    );

    // Joint model: the conduit takes both paths down together with mass
    // ≈ 1% > 0.1%, so no allocation can reach β. Admission rejects.
    let corr = srlgs.enumerate(&topo, 2);
    let ctx_corr = TeContext::new(&topo, &tunnels, &corr);
    assert!(
        !optimal_feasible(&ctx_corr, &probe).unwrap(),
        "the correlated model must reject what independence admits"
    );
}

#[test]
fn corrupted_joint_probability_fails_the_audit() {
    let (topo, tunnels, scenarios) = toy4_correlated_setup(0.01);
    let exact = brute_down_masses(&toy4_fiber_cut_events(&topo, 0.01));
    audit_joint_probabilities(&scenarios, &exact).expect("genuine set passes");

    // Launder the fiber-cut mass back into the all-up scenario — the
    // classic way to make an unservable 99.9% demand look coverable.
    let mut corrupted = scenarios.clone();
    assert!(corrupted.scenarios[0].failed.is_empty());
    corrupted.scenarios[0].probability += 0.01;

    let err = audit_joint_probabilities(&corrupted, &exact)
        .expect_err("inflated all-up probability must fail the audit");
    assert!(err.contains("claims probability"), "unexpected audit error: {err}");

    // The tamper is not cosmetic: under the corrupted probabilities a
    // hardened allocation appears to clear a β the true joint
    // distribution cannot reach.
    let ctx = TeContext::new(&topo, &tunnels, &scenarios);
    let n = |s: &str| topo.find_node(s).unwrap();
    let pair = tunnels.pair_index(n("DC1"), n("DC4")).unwrap();
    let demands = vec![BaDemand::single(1, pair, 1000.0, 0.95)];
    let mut result = schedule(&ctx, &demands).unwrap();
    assert_eq!(harden(&ctx, &demands, &mut result), 0);

    let honest = hard_coverage(&ctx, &result.allocation, &demands[0]);
    let ctx_bad = TeContext::new(&topo, &tunnels, &corrupted);
    let laundered = hard_coverage(&ctx_bad, &result.allocation, &demands[0]);
    assert!(
        laundered > honest + 0.008,
        "tamper should inflate coverage: honest {honest}, laundered {laundered}"
    );
    let beta_star = honest + 0.005;
    assert!(honest < beta_star && laundered >= beta_star);
}

#[test]
fn corrupted_allocation_fails_the_checker() {
    let (topo, tunnels, scenarios) = toy4_setup();
    let ctx = TeContext::new(&topo, &tunnels, &scenarios);
    let demands = toy4_demands(&topo, &tunnels);

    let mut result = schedule(&ctx, &demands).unwrap();
    let violations = harden(&ctx, &demands, &mut result);
    assert_eq!(violations, 0);
    let victim = &demands[0];
    assert!(hard_coverage(&ctx, &result.allocation, victim) >= victim.beta - TOL);

    // Halve the victim's flows: every scenario now under-delivers, so
    // both the hard and the relaxed form must detect the shortfall.
    let mut corrupted = result.allocation.clone();
    let flows: Vec<(TunnelId, f64)> = corrupted.flows_of(victim.id).collect();
    assert!(!flows.is_empty());
    for (t, f) in flows {
        corrupted.set(victim.id, t, f * 0.5);
    }
    assert!(
        hard_coverage(&ctx, &corrupted, victim) < victim.beta - TOL,
        "checker failed to flag a corrupted allocation (hard form)"
    );
    assert!(
        relaxed_coverage(&ctx, &corrupted, victim) < victim.beta - TOL,
        "checker failed to flag a corrupted allocation (relaxed form)"
    );
}
