//! Golden pins for the scheduling LP's kernel counters (ISSUE 3
//! satellite).
//!
//! The simplex pivot sequence is fully deterministic for a given problem,
//! so iteration/pivot counts are stable facts about the kernel. Pinning
//! them here makes pivot-behavior changes (pricing rules, tie-breaks,
//! tableau construction order) *explicit*: a legitimate solver change
//! updates these numbers in the same commit, with the diff showing
//! exactly how much the pivot path moved. Objective-value equality alone
//! would hide such changes entirely.
//!
//! If this test fails after an intentional solver change: verify the
//! golden equivalence suite (`crates/lp/tests/golden.rs`) still passes,
//! then update the pinned tuples below to the new counts.

use bate_core::{scheduling, BaDemand, TeContext};
use bate_net::{topologies, ScenarioSet};
use bate_routing::{RoutingScheme, TunnelSet};

/// The pinnable subset of `SolveStats`: everything deterministic.
/// (Wall-clock phase timings are excluded by construction.)
fn pin(stats: &bate_lp::SolveStats) -> (u32, u32, u64, u64, u64, u64, u64, u64, bool) {
    (
        stats.rows,
        stats.cols,
        stats.phase1_iterations,
        stats.phase2_iterations,
        stats.pivots,
        stats.bound_flips,
        stats.bland_iterations,
        stats.full_price_scans,
        stats.warm_start,
    )
}

#[test]
fn toy4_scheduling_lp_pivot_counts_are_pinned() {
    // The Fig. 2 motivating instance: toy 4-DC topology, 2-shortest-path
    // tunnels, scenarios pruned at two concurrent failures, the two
    // motivating demands (6 Gbps @ 99%, 12 Gbps @ 90%).
    let topo = topologies::toy4();
    let tunnels = TunnelSet::compute(&topo, RoutingScheme::Ksp(2));
    let scenarios = ScenarioSet::enumerate(&topo, 2);
    let ctx = TeContext::new(&topo, &tunnels, &scenarios);
    let n = |s: &str| topo.find_node(s).unwrap();
    let pair = tunnels.pair_index(n("DC1"), n("DC4")).unwrap();
    let demands = vec![
        BaDemand::single(1, pair, 6000.0, 0.99),
        BaDemand::single(2, pair, 12_000.0, 0.90),
    ];

    let res = scheduling::schedule(&ctx, &demands).unwrap();
    assert_eq!(
        pin(&res.solve_stats),
        (16, 44, 7, 0, 7, 0, 0, 9, false),
        "toy4 scheduling LP pivot counts changed — if the solver change \
         is intentional, update this pin (see module docs)"
    );
}

#[test]
fn testbed6_scheduling_lp_pivot_counts_are_pinned() {
    // The §5 testbed: 6 DCs, default 4-shortest-path tunnels, single-
    // failure scenarios, a three-demand mix across availability classes.
    let topo = topologies::testbed6();
    let tunnels = TunnelSet::compute(&topo, RoutingScheme::default_ksp4());
    let scenarios = ScenarioSet::enumerate(&topo, 1);
    let ctx = TeContext::new(&topo, &tunnels, &scenarios);
    let n = |s: &str| topo.find_node(s).unwrap();
    let p13 = tunnels.pair_index(n("DC1"), n("DC3")).unwrap();
    let p25 = tunnels.pair_index(n("DC2"), n("DC5")).unwrap();
    let p46 = tunnels.pair_index(n("DC4"), n("DC6")).unwrap();
    let demands = vec![
        BaDemand::single(1, p13, 900.0, 0.99),
        BaDemand::single(2, p25, 1500.0, 0.95),
        BaDemand::single(3, p46, 600.0, 0.999),
    ];

    let res = scheduling::schedule(&ctx, &demands).unwrap();
    assert_eq!(
        pin(&res.solve_stats),
        (44, 123, 9, 0, 9, 0, 0, 11, false),
        "testbed6 scheduling LP pivot counts changed — if the solver \
         change is intentional, update this pin (see module docs)"
    );
}
