//! Golden tests for failure recovery: the exact MILP (Eq. 8–12) vs the
//! greedy 2-approximation (Algorithm 2), pinned per enumerated failure
//! scenario on the paper's two small topologies — toy4 (Fig. 2) under
//! ≤ 2 concurrent fate-group failures and testbed6 (Fig. 6) under ≤ 1.
//!
//! Each golden line fixes, for one scenario: the failed groups, which
//! demands the optimal solver satisfies and its profit, and the same for
//! greedy. Any change to tunnel selection, solver pivoting, density
//! ordering, or profit accounting shows up as a diff here with the exact
//! scenario that moved.

use bate_core::demand::BaDemand;
use bate_core::recovery::greedy::greedy_recovery;
use bate_core::recovery::milp::optimal_recovery;
use bate_core::recovery::RecoveryOutcome;
use bate_core::TeContext;
use bate_net::{topologies, ScenarioSet, Topology};
use bate_routing::{RoutingScheme, TunnelSet};

/// One line per scenario: `z=[failed] opt=[ids]@profit grd=[ids]@profit`.
fn recovery_table(topo: &Topology, demands: &[BaDemand], max_failures: usize) -> Vec<String> {
    let tunnels = TunnelSet::compute(topo, RoutingScheme::default_ksp4());
    let scenarios = ScenarioSet::enumerate(topo, max_failures);
    let ctx = TeContext::new(topo, &tunnels, &scenarios);

    let mut lines = Vec::new();
    for sc in scenarios.iter() {
        let failed: Vec<usize> = topo
            .groups()
            .map(|(g, _)| g)
            .filter(|&g| !sc.group_up(g))
            .map(|g| g.0)
            .collect();

        let opt = optimal_recovery(&ctx, demands, sc).expect("MILP must solve");
        let grd = greedy_recovery(&ctx, demands, sc);

        // Structural invariants that hold on every scenario, golden aside.
        assert!(
            grd.profit <= opt.profit + 1e-6,
            "greedy beat the optimum on z={failed:?}"
        );
        let baseline = RecoveryOutcome::baseline_profit(demands);
        assert!(opt.profit <= baseline + 1e-9);
        assert!(opt.allocation.respects_capacity(&ctx, 1e-6));
        assert!(grd.allocation.respects_capacity(&ctx, 1e-6));
        for out in [&opt, &grd] {
            let loads = out.allocation.link_loads(&ctx);
            for (l, _) in topo.links() {
                if !sc.link_up(topo, l) {
                    assert_eq!(loads[l.index()], 0.0, "flow on failed link, z={failed:?}");
                }
            }
        }

        let ids = |o: &RecoveryOutcome| {
            let mut v: Vec<u64> = o.satisfied.iter().map(|d| d.0).collect();
            v.sort_unstable();
            v.iter()
                .map(|i| i.to_string())
                .collect::<Vec<_>>()
                .join(",")
        };
        lines.push(format!(
            "z=[{}] opt=[{}]@{:.2} grd=[{}]@{:.2}",
            failed
                .iter()
                .map(|g| g.to_string())
                .collect::<Vec<_>>()
                .join(","),
            ids(&opt),
            opt.profit,
            ids(&grd),
            grd.profit,
        ));
    }
    lines
}

fn assert_golden(actual: &[String], golden: &[&str], what: &str) {
    assert_eq!(
        actual,
        golden,
        "{what} recovery table diverged from golden.\nActual:\n{}",
        actual.join("\n")
    );
}

/// toy4 (Fig. 2): 10 Gbps links, two DC1→DC4 demands contending for the
/// two disjoint paths plus a DC2→DC4 demand. Under any single failure on
/// the DC1 side one of the big demands must take its refund; the golden
/// pins which one each solver sacrifices.
#[test]
fn toy4_golden_under_two_failures() {
    let topo = topologies::toy4();
    let tunnels = TunnelSet::compute(&topo, RoutingScheme::default_ksp4());
    let n = |s: &str| topo.find_node(s).unwrap();
    let p14 = tunnels.pair_index(n("DC1"), n("DC4")).unwrap();
    let p24 = tunnels.pair_index(n("DC2"), n("DC4")).unwrap();
    let demands = vec![
        BaDemand::single(1, p14, 8000.0, 0.9)
            .with_price(800.0)
            .with_refund(0.5),
        BaDemand::single(2, p14, 8000.0, 0.9)
            .with_price(400.0)
            .with_refund(0.5),
        BaDemand::single(3, p24, 3000.0, 0.9)
            .with_price(600.0)
            .with_refund(0.25),
    ];

    let actual = recovery_table(&topo, &demands, 2);
    // Notable pins: under z=[0,1] (DC1-DC2 and DC2-DC4 both down, DC2
    // isolated) the published Algorithm 2 stops at the first unservable
    // demand — the densest demand 3 — and forfeits everything (1050 =
    // pure refund floor), while the MILP still saves demand 1 via DC3
    // (1450). That gap is the Fig. 19 optimal-vs-greedy story in
    // miniature, pinned.
    let golden = [
        "z=[] opt=[1,2,3]@1800.00 grd=[1,2,3]@1800.00",
        "z=[0] opt=[1,3]@1600.00 grd=[1,3]@1600.00",
        "z=[0,1] opt=[1]@1450.00 grd=[]@1050.00",
        "z=[0,2] opt=[3]@1200.00 grd=[3]@1200.00",
        "z=[0,3] opt=[3]@1200.00 grd=[3]@1200.00",
        "z=[1] opt=[1]@1450.00 grd=[1]@1450.00",
        "z=[1,2] opt=[]@1050.00 grd=[]@1050.00",
        "z=[1,3] opt=[]@1050.00 grd=[]@1050.00",
        "z=[2] opt=[1]@1450.00 grd=[1]@1450.00",
        "z=[2,3] opt=[1]@1450.00 grd=[1]@1450.00",
        "z=[3] opt=[1]@1450.00 grd=[1]@1450.00",
    ];
    assert_golden(&actual, &golden, "toy4");
}

/// testbed6 (Fig. 6): 1 Gbps links, four demands spread over the pairs
/// the evaluation keys on; y = 1 enumerates the all-up scenario plus each
/// single fate-group failure (L1..L8).
#[test]
fn testbed6_golden_under_single_failures() {
    let topo = topologies::testbed6();
    let tunnels = TunnelSet::compute(&topo, RoutingScheme::default_ksp4());
    let n = |s: &str| topo.find_node(s).unwrap();
    let pair = |a: &str, b: &str| tunnels.pair_index(n(a), n(b)).unwrap();
    let demands = vec![
        BaDemand::single(1, pair("DC1", "DC3"), 800.0, 0.9)
            .with_price(400.0)
            .with_refund(0.5),
        BaDemand::single(2, pair("DC1", "DC4"), 900.0, 0.9)
            .with_price(350.0)
            .with_refund(0.4),
        BaDemand::single(3, pair("DC2", "DC6"), 700.0, 0.9)
            .with_price(500.0)
            .with_refund(0.2),
        BaDemand::single(4, pair("DC4", "DC5"), 900.0, 0.9)
            .with_price(300.0)
            .with_refund(1.0),
    ];

    let actual = recovery_table(&topo, &demands, 1);
    let golden = [
        "z=[] opt=[1,2,3,4]@1550.00 grd=[1,2,3,4]@1550.00",
        "z=[0] opt=[1,2,3,4]@1550.00 grd=[1,2,3,4]@1550.00",
        "z=[1] opt=[1,2,3,4]@1550.00 grd=[1,2,3,4]@1550.00",
        "z=[2] opt=[1,2,3,4]@1550.00 grd=[1,2,3,4]@1550.00",
        "z=[3] opt=[1,2,3,4]@1550.00 grd=[1,2,3,4]@1550.00",
        "z=[4] opt=[1,2,3,4]@1550.00 grd=[1,2,3,4]@1550.00",
        "z=[5] opt=[1,2,3,4]@1550.00 grd=[1,2,3,4]@1550.00",
        "z=[6] opt=[1,2,3,4]@1550.00 grd=[1,2,3,4]@1550.00",
        // L8 (DC1-DC4) down: the optimum reroutes everything, but greedy
        // commits dense demands first, starves demand 2's detour, stops at
        // the break demand, and drops 2 and 4 — the Fig. 19 gap pinned on
        // the testbed.
        "z=[7] opt=[1,2,3,4]@1550.00 grd=[1,3]@1110.00",
    ];
    assert_golden(&actual, &golden, "testbed6");
}
