//! Row-generation equivalence goldens (ISSUE 4 satellite).
//!
//! The cutting-plane solve path (`SolveMode::RowGen`) must be *exactly*
//! equivalent to building the full formulation: same optimal objective,
//! same feasible/infeasible verdict, same admission decisions, same
//! hardening behavior. These tests sweep the pinned instances — toy4 at
//! pruning depths 2 and 4, testbed6 at 1 and 2, B4 at 2 — across five
//! gravity-model traffic seeds and compare the two paths end to end.
//!
//! The rowgen path is additionally required to be byte-identical across
//! thread counts (the separation fan-out is a deterministic fork-join, so
//! worker scheduling must never leak into results).

use bate_core::admission::optimal::{maximize_admissions_mode, optimal_feasible_mode};
use bate_core::scheduling::{self, SolveMode, ROWGEN_SEED_SINGLES};
use bate_core::{BaDemand, TeContext};
use bate_lp::SolveError;
use bate_net::{topologies, traffic, ScenarioSet, Topology};
use bate_routing::{RoutingScheme, TunnelSet};

const SEEDS: [u64; 5] = [11, 22, 33, 44, 55];

fn rowgen_mode() -> SolveMode {
    SolveMode::RowGen {
        seed_singles: ROWGEN_SEED_SINGLES,
    }
}

/// Relative-tolerance equality for objectives.
fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-9 * (1.0 + a.abs().max(b.abs()))
}

/// Top-`n` gravity-matrix entries as single-pair BA demands, betas cycling
/// through the availability classes. Deterministic in `seed`.
fn gravity_demands(
    topo: &Topology,
    tunnels: &TunnelSet,
    n: usize,
    mean_total: f64,
    seed: u64,
) -> Vec<BaDemand> {
    let matrix = &traffic::generate_matrices(topo, 1, mean_total, seed)[0];
    let mut entries: Vec<(usize, f64)> = matrix
        .entries()
        .filter_map(|(s, d, v)| tunnels.pair_index(s, d).map(|pair| (pair, v)))
        .filter(|&(pair, _)| !tunnels.tunnels(pair).is_empty())
        .collect();
    entries.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
    entries.truncate(n);
    let betas = [0.9, 0.99, 0.95, 0.999];
    entries
        .iter()
        .enumerate()
        .map(|(i, &(pair, v))| BaDemand::single(i as u64 + 1, pair, v, betas[i % betas.len()]))
        .collect()
}

/// The five pinned instances: (topology, ksp, pruning depth, #demands,
/// gravity mean total).
fn instances() -> Vec<(Topology, RoutingScheme, usize, usize, f64)> {
    vec![
        (topologies::toy4(), RoutingScheme::Ksp(2), 2, 6, 12_000.0),
        (topologies::toy4(), RoutingScheme::Ksp(2), 4, 6, 12_000.0),
        (
            topologies::testbed6(),
            RoutingScheme::default_ksp4(),
            1,
            6,
            2000.0,
        ),
        (
            topologies::testbed6(),
            RoutingScheme::default_ksp4(),
            2,
            6,
            2000.0,
        ),
        (topologies::b4(), RoutingScheme::default_ksp4(), 2, 6, 4000.0),
    ]
}

#[test]
fn rowgen_matches_full_objective_and_hardening() {
    for (topo, routing, y, n, total) in instances() {
        let tunnels = TunnelSet::compute(&topo, routing);
        let scenarios = ScenarioSet::enumerate(&topo, y);
        let ctx = TeContext::new(&topo, &tunnels, &scenarios);
        for seed in SEEDS {
            let demands = gravity_demands(&topo, &tunnels, n, total, seed);
            let tag = format!("{} y={y} seed={seed}", topo.name());

            let full = scheduling::schedule_mode(&ctx, &demands, SolveMode::Full);
            let lazy = scheduling::schedule_mode(&ctx, &demands, rowgen_mode());
            match (full, lazy) {
                (Ok(mut f), Ok(mut l)) => {
                    assert!(
                        close(f.total_bandwidth, l.total_bandwidth),
                        "{tag}: objective {} (full) vs {} (rowgen)",
                        f.total_bandwidth,
                        l.total_bandwidth
                    );
                    assert!(f.rowgen.is_none(), "{tag}: full path reported rowgen stats");
                    let rg = l.rowgen.as_ref().unwrap_or_else(|| {
                        panic!("{tag}: rowgen path did not report rowgen stats")
                    });
                    assert!(rg.rounds >= 1, "{tag}");
                    assert_eq!(
                        *rg.rows_per_round.last().unwrap(),
                        0,
                        "{tag}: final round must be a clean separation pass"
                    );
                    assert!(rg.master_rows <= rg.full_rows, "{tag}");
                    // Every appended row is accounted for.
                    let appended: u32 = rg.rows_per_round.iter().sum();
                    assert_eq!(appended as u64, rg.rows_added, "{tag}");

                    // Hardening must behave identically on both vertices.
                    let vf = scheduling::harden(&ctx, &demands, &mut f);
                    let vl = scheduling::harden(&ctx, &demands, &mut l);
                    assert_eq!(vf, vl, "{tag}: hardening violation counts differ");
                    assert!(
                        close(f.total_bandwidth, l.total_bandwidth),
                        "{tag}: post-hardening totals differ: {} vs {}",
                        f.total_bandwidth,
                        l.total_bandwidth
                    );
                }
                (Err(SolveError::Infeasible), Err(SolveError::Infeasible)) => {}
                (f, l) => panic!(
                    "{tag}: paths disagree: full={:?} rowgen={:?}",
                    f.map(|r| r.total_bandwidth),
                    l.map(|r| r.total_bandwidth)
                ),
            }
        }
    }
}

#[test]
fn rowgen_matches_full_admission_verdicts() {
    // MILP instances kept small (4 demands) so branch-and-bound stays far
    // from the node budget on both paths — a NodeLimit hit on one path
    // only would be a budget artifact, not an equivalence failure.
    for (topo, routing, y, _, total) in instances() {
        let tunnels = TunnelSet::compute(&topo, routing);
        let scenarios = ScenarioSet::enumerate(&topo, y);
        let ctx = TeContext::new(&topo, &tunnels, &scenarios);
        for seed in SEEDS {
            let demands = gravity_demands(&topo, &tunnels, 4, total, seed);
            let tag = format!("{} y={y} seed={seed}", topo.name());

            let vf = optimal_feasible_mode(&ctx, &demands, SolveMode::Full).unwrap();
            let vl = optimal_feasible_mode(&ctx, &demands, rowgen_mode()).unwrap();
            assert_eq!(vf, vl, "{tag}: optimal_feasible verdicts differ");

            let mf = maximize_admissions_mode(&ctx, &demands, SolveMode::Full).unwrap();
            let ml = maximize_admissions_mode(&ctx, &demands, rowgen_mode()).unwrap();
            let cf = mf.accepted.iter().filter(|&&a| a).count();
            let cl = ml.accepted.iter().filter(|&&a| a).count();
            assert_eq!(cf, cl, "{tag}: maximize_admissions counts differ");
        }
    }
}

/// The pinned instances' scheduling LPs, re-derived through the public
/// model builder and run through the exact certificate layer: every
/// float optimum must carry a valid KKT certificate, and on the small
/// instances the exact rational oracle must reproduce the objective.
#[test]
fn scheduling_lps_certify_and_match_exact_oracle() {
    use bate_lp::exact::{solve_exact, verify_certificate};
    for (topo, routing, y, _, total) in instances() {
        let tunnels = TunnelSet::compute(&topo, routing);
        let scenarios = ScenarioSet::enumerate(&topo, y);
        let ctx = TeContext::new(&topo, &tunnels, &scenarios);
        let caps: Vec<f64> = topo.links().map(|(_, l)| l.capacity).collect();
        // Exact re-solve only where the rational tableau stays small;
        // certificates are cheap and run everywhere.
        let resolve_exactly =
            (topo.name() == "toy4" && y == 2) || (topo.name() == "testbed6" && y == 1);
        for seed in SEEDS {
            let demands = gravity_demands(&topo, &tunnels, 4, total, seed);
            let tag = format!("{} y={y} seed={seed}", topo.name());
            let p = scheduling::scheduling_lp(&ctx, &demands, &caps).unwrap();
            match p.solve() {
                Ok(sol) => {
                    verify_certificate(&p, &sol)
                        .unwrap_or_else(|e| panic!("{tag}: certificate rejected: {e}"));
                    if resolve_exactly {
                        let ex = solve_exact(&p)
                            .unwrap_or_else(|e| panic!("{tag}: exact oracle failed: {e:?}"));
                        assert!(
                            close(ex.objective.to_f64(), sol.objective),
                            "{tag}: exact {} vs float {}",
                            ex.objective.to_f64(),
                            sol.objective
                        );
                    }
                }
                Err(SolveError::Infeasible) => {
                    if resolve_exactly {
                        assert!(
                            matches!(solve_exact(&p), Err(SolveError::Infeasible)),
                            "{tag}: float says infeasible, exact oracle disagrees"
                        );
                    }
                }
                Err(e) => panic!("{tag}: solve failed: {e:?}"),
            }
        }
    }
}

/// Admission MILP incumbents certified against an exact relaxation
/// bound: integrality, exact feasibility, objective consistency, and a
/// branch-and-bound optimality proof `incumbent ≤ exact root bound`.
#[test]
fn admission_milps_certify_against_exact_relaxation_bounds() {
    use bate_core::admission::optimal::admission_milp;
    use bate_lp::exact::{solve_exact, verify_milp_certificate};
    for (topo, routing, y, _, total) in instances() {
        let small = (topo.name() == "toy4" && y == 2) || (topo.name() == "testbed6" && y == 1);
        if !small {
            continue; // exact relaxation solves stay debug-build fast
        }
        let tunnels = TunnelSet::compute(&topo, routing);
        let scenarios = ScenarioSet::enumerate(&topo, y);
        let ctx = TeContext::new(&topo, &tunnels, &scenarios);
        for seed in SEEDS {
            let demands = gravity_demands(&topo, &tunnels, 4, total, seed);
            let tag = format!("{} y={y} seed={seed}", topo.name());
            let p = admission_milp(&ctx, &demands, false).unwrap();
            let sol = match p.solve() {
                Ok(s) => s,
                Err(SolveError::Infeasible) => continue,
                Err(e) => panic!("{tag}: admission MILP failed: {e:?}"),
            };
            let root = solve_exact(&p)
                .unwrap_or_else(|e| panic!("{tag}: exact relaxation failed: {e:?}"));
            verify_milp_certificate(&p, &sol, Some(root.objective.to_f64()))
                .unwrap_or_else(|e| panic!("{tag}: MILP certificate rejected: {e}"));
        }
    }
}

#[test]
fn rowgen_path_is_deterministic_across_thread_counts() {
    // B4 at y=2 with enough demands to force several separation rounds;
    // every deterministic field of the result must be byte-identical for
    // any worker count.
    let topo = topologies::b4();
    let tunnels = TunnelSet::compute(&topo, RoutingScheme::default_ksp4());
    let scenarios = ScenarioSet::enumerate(&topo, 2);
    let ctx = TeContext::new(&topo, &tunnels, &scenarios);
    let demands = gravity_demands(&topo, &tunnels, 8, 4000.0, 7);

    #[derive(PartialEq, Debug)]
    struct Fingerprint {
        objective: u64,
        flows: Vec<(u64, usize, usize, u64)>,
        prices: Vec<u64>,
        rounds: u32,
        rows_added: u64,
        rows_per_round: Vec<u32>,
        master_rows: u32,
        full_rows: u32,
    }

    let run = |threads: usize| -> Fingerprint {
        bate_lp::par::with_thread_count(threads, || {
            let res = scheduling::schedule_mode(&ctx, &demands, rowgen_mode()).unwrap();
            let mut flows: Vec<(u64, usize, usize, u64)> = Vec::new();
            for d in &demands {
                for (tid, f) in res.allocation.flows_of(d.id) {
                    flows.push((d.id.0, tid.pair, tid.tunnel, f.to_bits()));
                }
            }
            flows.sort();
            let rg = res.rowgen.unwrap();
            Fingerprint {
                objective: res.total_bandwidth.to_bits(),
                flows,
                prices: res.link_prices.iter().map(|p| p.to_bits()).collect(),
                rounds: rg.rounds,
                rows_added: rg.rows_added,
                rows_per_round: rg.rows_per_round,
                master_rows: rg.master_rows,
                full_rows: rg.full_rows,
            }
        })
    };

    let baseline = run(1);
    assert!(baseline.rounds >= 1);
    for threads in [2, 3, 8] {
        let got = run(threads);
        assert_eq!(
            got, baseline,
            "rowgen schedule diverged at {threads} threads"
        );
    }
}
