//! Property-based validation of the LP/MILP solvers.
//!
//! Strategy: generate small random problems whose variables are box-bounded
//! (so they are never unbounded), solve them, and check that
//!
//! 1. the reported point is feasible,
//! 2. the reported objective matches the reported point, and
//! 3. no randomly sampled feasible point (or, for MILPs, no point of the
//!    exhaustively enumerated integer lattice) beats the reported optimum.

use bate_lp::{Problem, Relation, Sense, SolveError};
use proptest::prelude::*;

const TOL: f64 = 1e-5;

#[derive(Debug, Clone)]
struct RandomLp {
    nvars: usize,
    upper: Vec<f64>,
    objective: Vec<f64>,
    /// Each constraint: coefficients per var, relation selector, rhs.
    rows: Vec<(Vec<f64>, u8, f64)>,
}

fn random_lp(max_vars: usize, max_rows: usize) -> impl Strategy<Value = RandomLp> {
    (1..=max_vars).prop_flat_map(move |nvars| {
        let upper = prop::collection::vec(0.5f64..10.0, nvars);
        let objective = prop::collection::vec(-5.0f64..5.0, nvars);
        let rows = prop::collection::vec(
            (
                prop::collection::vec(-3.0f64..3.0, nvars),
                0u8..2, // Le or Ge only: equalities over random data are
                // usually infeasible and tested separately.
                -5.0f64..15.0,
            ),
            0..=max_rows,
        );
        (upper, objective, rows).prop_map(move |(upper, objective, rows)| RandomLp {
            nvars,
            upper,
            objective,
            rows,
        })
    })
}

fn build(lp: &RandomLp, integral: bool) -> (Problem, Vec<bate_lp::VarId>) {
    let mut p = Problem::new(Sense::Maximize);
    let vars: Vec<_> = (0..lp.nvars)
        .map(|i| {
            if integral {
                p.add_integer_var(&format!("x{i}"), lp.upper[i].floor().max(0.0))
            } else {
                p.add_bounded_var(&format!("x{i}"), lp.upper[i])
            }
        })
        .collect();
    for (i, &v) in vars.iter().enumerate() {
        p.set_objective(v, lp.objective[i]);
    }
    for (coeffs, rel, rhs) in &lp.rows {
        let terms: Vec<_> = vars.iter().copied().zip(coeffs.iter().copied()).collect();
        let relation = if *rel == 0 {
            Relation::Le
        } else {
            Relation::Ge
        };
        p.add_constraint(&terms, relation, *rhs);
    }
    (p, vars)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The LP optimum is feasible and dominates random feasible samples.
    #[test]
    fn lp_optimum_is_feasible_and_dominant(
        lp in random_lp(4, 4),
        samples in prop::collection::vec(prop::collection::vec(0.0f64..1.0, 4), 32),
    ) {
        let (p, _) = build(&lp, false);
        match p.solve() {
            Ok(sol) => {
                prop_assert!(p.is_feasible(&sol.values, TOL),
                    "solver returned infeasible point {:?}", sol.values);
                prop_assert!((p.objective_value(&sol.values) - sol.objective).abs() < TOL);
                for s in &samples {
                    let candidate: Vec<f64> = (0..lp.nvars)
                        .map(|i| s[i] * lp.upper[i])
                        .collect();
                    if p.is_feasible(&candidate, 0.0) {
                        prop_assert!(
                            p.objective_value(&candidate) <= sol.objective + TOL,
                            "random feasible point beats 'optimum': {} > {}",
                            p.objective_value(&candidate), sol.objective
                        );
                    }
                }
            }
            Err(SolveError::Infeasible) => {
                // Spot-check: none of the random samples may be feasible.
                for s in &samples {
                    let candidate: Vec<f64> = (0..lp.nvars)
                        .map(|i| s[i] * lp.upper[i])
                        .collect();
                    prop_assert!(!p.is_feasible(&candidate, 0.0),
                        "solver said infeasible but {candidate:?} is feasible");
                }
            }
            Err(e) => prop_assert!(false, "unexpected solver error: {e}"),
        }
    }

    /// MILP optimum equals exhaustive enumeration over the integer lattice.
    #[test]
    fn milp_matches_exhaustive_enumeration(lp in random_lp(3, 3)) {
        let (p, _) = build(&lp, true);
        // Enumerate every integer point in the box.
        let dims: Vec<i64> = (0..lp.nvars)
            .map(|i| lp.upper[i].floor().max(0.0) as i64)
            .collect();
        let mut best: Option<f64> = None;
        let mut point = vec![0i64; lp.nvars];
        loop {
            let candidate: Vec<f64> = point.iter().map(|&v| v as f64).collect();
            if p.is_feasible(&candidate, 1e-9) {
                let obj = p.objective_value(&candidate);
                best = Some(best.map_or(obj, |b: f64| b.max(obj)));
            }
            // Odometer increment.
            let mut k = 0;
            loop {
                if k == lp.nvars {
                    break;
                }
                point[k] += 1;
                if point[k] <= dims[k] {
                    break;
                }
                point[k] = 0;
                k += 1;
            }
            if k == lp.nvars {
                break;
            }
        }

        match (p.solve(), best) {
            (Ok(sol), Some(b)) => {
                prop_assert!((sol.objective - b).abs() < TOL,
                    "milp={} exhaustive={}", sol.objective, b);
                prop_assert!(p.is_feasible(&sol.values, TOL));
            }
            (Err(SolveError::Infeasible), None) => {}
            (Ok(sol), None) => prop_assert!(false,
                "solver found {:?} but enumeration found nothing", sol.values),
            (Err(e), Some(b)) => prop_assert!(false,
                "solver failed with {e} but enumeration found optimum {b}"),
            (Err(e), None) => prop_assert!(false, "unexpected error: {e}"),
        }
    }

    /// The MILP optimum can never beat its own LP relaxation.
    #[test]
    fn relaxation_bounds_milp(lp in random_lp(3, 3)) {
        let (p, _) = build(&lp, true);
        if let (Ok(milp), Ok(relax)) = (p.solve(), p.solve_relaxation()) {
            prop_assert!(milp.objective <= relax.objective + TOL,
                "milp {} exceeds relaxation {}", milp.objective, relax.objective);
        }
    }
}
