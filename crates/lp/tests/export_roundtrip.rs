//! Round-trip and mutation-fuzz tests for the LP-format exporter/parser
//! (`crates/lp/src/export.rs`).
//!
//! Two campaigns:
//!
//! * **Round trip** — random `Problem`s are exported, reparsed, and
//!   re-exported; the re-export must reproduce the original text byte
//!   for byte (which pins sense, variable order, kinds, bounds,
//!   objective and every row), and the reparse must solve to the same
//!   objective.
//! * **One-byte mutations** — a single byte of valid LP text is
//!   replaced, inserted, or deleted; the parser must return `Ok` or a
//!   typed [`bate_lp::LpParseError`], never panic.
//!
//! Both honor the `FUZZ_BUDGET` environment variable (cases per
//! campaign; small default keeps tier-1 fast, nightly runs set it
//! high — see DESIGN.md §7). The shim `proptest` has no regression-file
//! persistence, so seeds that ever failed are checked in below in
//! `REGRESSION_SEEDS` and replayed first, deterministically.

use bate_lp::{Problem, Relation, Sense};
use proptest::prelude::*;
use rand::{Rng, SeedableRng, StdRng};

/// Seeds that exposed bugs in the past (none yet). Policy: when a
/// campaign fails, append the printed seed here so the case replays
/// forever, then fix the bug. This substitutes for upstream proptest's
/// `proptest-regressions` files, which the offline shim does not read.
const REGRESSION_SEEDS: &[u64] = &[];

fn fuzz_budget(default_cases: usize) -> usize {
    std::env::var("FUZZ_BUDGET")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(default_cases)
}

fn round2(x: f64) -> f64 {
    (x * 100.0).round() / 100.0
}

/// A coefficient mix that exercises every exporter formatting path:
/// integers (unit coefficients get omitted), exact decimals, non-dyadic
/// decimals (`0.1` prints as a 55-digit-free shortest form), and
/// full-precision floats (~17 significant digits).
fn coeff(rng: &mut StdRng) -> f64 {
    match rng.gen_range(0u32..5) {
        0 => rng.gen_range(-5i32..6) as f64,
        1 => 0.0,
        2 => round2(rng.gen_range(-4.0..4.0)),
        3 => rng.gen_range(-3i32..4) as f64 * 0.1,
        _ => rng.gen_range(-1.0..1.0),
    }
}

/// Deterministic random model: every variable kind, sanitizer-hostile
/// names (brackets, digit-leading), empty and dense rows, all three
/// relations, negative and fractional rhs.
fn random_problem(seed: u64) -> Problem {
    let mut rng = StdRng::seed_from_u64(seed);
    let sense = if rng.gen_bool(0.5) {
        Sense::Maximize
    } else {
        Sense::Minimize
    };
    let mut p = Problem::new(sense);
    let n = rng.gen_range(1usize..=8);
    let mut vars = Vec::with_capacity(n);
    for i in 0..n {
        let name = match rng.gen_range(0u32..4) {
            0 => format!("v{i}"),
            1 => format!("f[{i}][{}]", i + 1),
            2 => format!("{i}lead"),
            _ => format!("q_{i}"),
        };
        let v = match rng.gen_range(0u32..4) {
            0 => p.add_var(&name),
            1 => p.add_bounded_var(&name, round2(rng.gen_range(0.0..20.0))),
            2 => p.add_binary_var(&name),
            _ => p.add_integer_var(&name, rng.gen_range(0u32..9) as f64),
        };
        vars.push(v);
    }
    for &v in &vars {
        if rng.gen_bool(0.7) {
            p.set_objective(v, coeff(&mut rng));
        }
    }
    for _ in 0..rng.gen_range(0usize..=6) {
        let k = rng.gen_range(1usize..=n);
        let terms: Vec<_> = (0..k)
            .map(|_| (vars[rng.gen_range(0usize..n)], coeff(&mut rng)))
            .collect();
        let rel = match rng.gen_range(0u32..3) {
            0 => Relation::Le,
            1 => Relation::Ge,
            _ => Relation::Eq,
        };
        p.add_constraint(&terms, rel, coeff(&mut rng));
    }
    p
}

/// The round-trip property for one seed; shared by the regression
/// replay and the random campaign.
fn check_roundtrip(seed: u64) -> Result<(), String> {
    let p = random_problem(seed);
    let text = p.to_lp_format();
    let q = Problem::from_lp_format(&text)
        .map_err(|e| format!("seed {seed}: reparse failed: {e}\n{text}"))?;
    let again = q.to_lp_format();
    if again != text {
        return Err(format!(
            "seed {seed}: export→parse→export not a fixed point\n--- first ---\n{text}\n--- second ---\n{again}"
        ));
    }
    if q.num_vars() != p.num_vars() || q.num_constraints() != p.num_constraints() {
        return Err(format!("seed {seed}: shape changed on round trip"));
    }
    // Semantics survive, not just syntax: both models optimize alike.
    match (p.solve(), q.solve()) {
        (Ok(a), Ok(b)) => {
            if (a.objective - b.objective).abs() > 1e-9 * (1.0 + a.objective.abs()) {
                return Err(format!(
                    "seed {seed}: objectives diverged {} vs {}",
                    a.objective, b.objective
                ));
            }
        }
        (Err(a), Err(b)) => {
            if a != b {
                return Err(format!("seed {seed}: solve errors diverged {a:?} vs {b:?}"));
            }
        }
        (a, b) => {
            return Err(format!(
                "seed {seed}: one model solved, the other did not: {a:?} vs {b:?}"
            ))
        }
    }
    Ok(())
}

#[test]
fn regression_seeds_round_trip() {
    for &seed in REGRESSION_SEEDS {
        if let Err(msg) = check_roundtrip(seed) {
            panic!("{msg}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(fuzz_budget(128) as u32))]

    #[test]
    fn export_parse_export_is_identity(seed in any::<u64>()) {
        if let Err(msg) = check_roundtrip(seed) {
            prop_assert!(false, "{}", msg);
        }
    }
}

#[test]
fn one_byte_mutations_yield_typed_errors_not_panics() {
    let budget = fuzz_budget(300);
    let mut rng = StdRng::seed_from_u64(0xBA7E_F022);
    for case in 0..budget {
        let p = random_problem(0x5EED ^ (case as u64).wrapping_mul(0x9E37_79B9));
        let text = p.to_lp_format();
        let mut bytes = text.clone().into_bytes();
        let pos = rng.gen_range(0usize..bytes.len());
        match case % 3 {
            0 => bytes[pos] = rng.gen_range(0u8..=255),
            1 => bytes.insert(pos, rng.gen_range(0u8..=255)),
            _ => {
                bytes.remove(pos);
            }
        }
        // Mutations can break UTF-8; the parser takes &str, so only
        // valid strings reach it (the CLI path would fail at read).
        if let Ok(s) = std::str::from_utf8(&bytes) {
            // Returning Ok (benign mutation, e.g. whitespace) or any
            // typed LpParseError is fine; a panic fails the test.
            let _ = Problem::from_lp_format(s);
        }
    }
}
