//! Golden equivalence: the sparse pivot kernel must reproduce the original
//! dense kernel's objectives and duals to within 1e-6.
//!
//! The corpus is BATE-shaped: scheduling LPs (flow variables per tunnel,
//! bounded availability variables per failure scenario, delivery and
//! availability rows — the structure of the paper's Eq. 1–7) and
//! admission-shaped LPs (fractional multi-knapsacks over candidate
//! demands). Coefficients are randomized per instance so optimal bases —
//! and therefore duals — are generically unique, which is what makes the
//! dual comparison meaningful.
//!
//! Every pinned solution is additionally run through the exact
//! certificate layer (`verify_certificate`, rational KKT re-evaluation)
//! and differenced against the exact oracle's objective, so the corpus
//! guards the *answers*, not just kernel-vs-kernel agreement.

use bate_lp::dense_reference::solve_relaxation_dense;
use bate_lp::exact::{solve_exact, verify_certificate};
use bate_lp::simplex::solve_relaxation;
use bate_lp::{Problem, Relation, Sense};
use rand::{rngs::StdRng, Rng, SeedableRng};

/// Build a scheduling-shaped LP: minimize provisioned tunnel bandwidth
/// subject to demand delivery, per-scenario delivered-fraction coupling,
/// and a bandwidth-availability floor.
fn scheduling_instance(seed: u64, tunnels: usize, scenarios: usize) -> Problem {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut p = Problem::new(Sense::Minimize);
    let demand = rng.gen_range(5.0..20.0);

    let f: Vec<_> = (0..tunnels)
        .map(|t| {
            let v = p.add_var(&format!("f{t}"));
            // Distinct random costs keep the optimum unique.
            p.set_objective(v, rng.gen_range(1.0..3.0));
            v
        })
        .collect();
    // Slightly jittered delivery coefficients keep constraint rows in
    // general position: the dense and sparse kernels may reach different
    // optimal bases, and only generically-unique duals make the 1e-6 dual
    // comparison meaningful.
    p.add_constraint(
        &f.iter()
            .map(|&v| (v, rng.gen_range(0.9..1.1)))
            .collect::<Vec<_>>(),
        Relation::Ge,
        demand,
    );

    let mut avail_terms = Vec::with_capacity(scenarios);
    let mut prob_left = 1.0f64;
    for s in 0..scenarios {
        let b = p.add_bounded_var(&format!("B{s}"), 1.0);
        // Scenario survival sets: each tunnel independently alive, with
        // jittered per-tunnel delivery efficiency (general position again).
        let mut terms = vec![(b, demand)];
        let mut any = false;
        for &fv in &f {
            if rng.gen_bool(0.7) {
                let eff: f64 = rng.gen_range(0.8..1.2);
                terms.push((fv, -eff));
                any = true;
            }
        }
        if !any {
            terms.push((f[0], -1.0));
        }
        p.add_constraint(&terms, Relation::Le, 0.0);
        let ps = if s + 1 == scenarios {
            prob_left
        } else {
            let ps = prob_left * rng.gen_range(0.3..0.7);
            prob_left -= ps;
            ps
        };
        avail_terms.push((b, ps));
    }
    p.add_constraint(&avail_terms, Relation::Ge, rng.gen_range(0.6..0.9));
    p
}

/// Build an admission-shaped LP: maximize weighted admitted (fractional)
/// demands subject to a handful of shared capacity rows.
fn admission_instance(seed: u64, demands: usize, links: usize) -> Problem {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut p = Problem::new(Sense::Maximize);
    let x: Vec<_> = (0..demands)
        .map(|d| {
            let v = p.add_bounded_var(&format!("x{d}"), 1.0);
            p.set_objective(v, rng.gen_range(0.5..5.0));
            v
        })
        .collect();
    for l in 0..links {
        let mut terms = Vec::new();
        for &xv in &x {
            if rng.gen_bool(0.5) {
                terms.push((xv, rng.gen_range(0.5..4.0)));
            }
        }
        if terms.is_empty() {
            terms.push((x[l % demands], 1.0));
        }
        let cap = rng.gen_range(2.0..8.0);
        p.add_constraint(&terms, Relation::Le, cap);
    }
    p
}

fn assert_kernels_agree(p: &Problem, label: &str) {
    let dense = solve_relaxation_dense(p, &[]).unwrap_or_else(|e| {
        panic!("{label}: dense kernel failed: {e:?}");
    });
    let sparse = solve_relaxation(p, &[]).unwrap_or_else(|e| {
        panic!("{label}: sparse kernel failed: {e:?}");
    });
    assert!(
        (dense.objective - sparse.objective).abs() < 1e-6,
        "{label}: objective mismatch: dense {} vs sparse {}",
        dense.objective,
        sparse.objective
    );
    let dd = dense.duals.as_ref().expect("dense duals");
    let sd = sparse.duals.as_ref().expect("sparse duals");
    assert_eq!(dd.len(), sd.len(), "{label}: dual count mismatch");
    for (i, (a, b)) in dd.iter().zip(sd).enumerate() {
        assert!(
            (a - b).abs() < 1e-6,
            "{label}: dual {i} mismatch: dense {a} vs sparse {b}"
        );
    }
    // Both solutions must satisfy the problem they claim to solve.
    assert!(p.is_feasible(&sparse.values, 1e-6), "{label}: sparse infeasible");
    // Exact KKT certification of both kernels' answers — cheap (one
    // rational pass over the nonzeros), so it runs on every instance.
    verify_certificate(p, &dense)
        .unwrap_or_else(|e| panic!("{label}: dense certificate rejected: {e}"));
    verify_certificate(p, &sparse)
        .unwrap_or_else(|e| panic!("{label}: sparse certificate rejected: {e}"));
    // Exact *re-solves* cost rational pivots, so only the small corpus
    // instances get ground-truth differencing; the certificate above
    // already pins optimality of the rest via the duality gap.
    if p.num_vars() + p.num_constraints() <= 30 {
        let exact = solve_exact(p).unwrap_or_else(|e| panic!("{label}: exact solve failed: {e:?}"));
        let eo = exact.objective.to_f64();
        assert!(
            (sparse.objective - eo).abs() <= 1e-6 * (1.0 + eo.abs()),
            "{label}: sparse objective {} vs exact {}",
            sparse.objective,
            eo
        );
    }
}

#[test]
fn golden_scheduling_instances() {
    // 8 scheduling-shaped instances across sizes.
    let shapes = [(3, 4), (4, 6), (5, 8), (6, 10), (8, 12), (10, 16), (12, 20), (6, 24)];
    for (k, &(tunnels, scenarios)) in shapes.iter().enumerate() {
        let p = scheduling_instance(0x5EED_0000 + k as u64, tunnels, scenarios);
        assert_kernels_agree(&p, &format!("scheduling[{k}] t={tunnels} s={scenarios}"));
    }
}

#[test]
fn golden_admission_instances() {
    // 6 admission-shaped instances across sizes.
    let shapes = [(6, 3), (10, 4), (14, 5), (20, 6), (28, 8), (40, 10)];
    for (k, &(demands, links)) in shapes.iter().enumerate() {
        let p = admission_instance(0xADA1_0000 + k as u64, demands, links);
        assert_kernels_agree(&p, &format!("admission[{k}] d={demands} l={links}"));
    }
}

#[test]
fn golden_under_bound_overrides() {
    // Branch-and-bound style tightened re-solves agree between kernels.
    let p = scheduling_instance(0xB0B0_5EED, 6, 8);
    for j in 0..3 {
        let overrides = [(j, 0.0, 2.0)];
        let dense = solve_relaxation_dense(&p, &overrides);
        let sparse = solve_relaxation(&p, &overrides);
        match (dense, sparse) {
            (Ok(d), Ok(s)) => assert!(
                (d.objective - s.objective).abs() < 1e-6,
                "override {j}: {} vs {}",
                d.objective,
                s.objective
            ),
            (Err(de), Err(se)) => assert_eq!(de, se, "override {j}: error mismatch"),
            (d, s) => panic!("override {j}: kernel disagreement: {d:?} vs {s:?}"),
        }
    }
}
