//! Branch-and-bound MILP solver on top of the simplex core.
//!
//! Depth-first search with best-bound pruning. Each node tightens variable
//! bounds (never adds rows), so the LP relaxations stay the same size as the
//! root problem. Branching picks the integer variable whose relaxation value
//! is most fractional.
//!
//! ## Parallel node evaluation
//!
//! Relaxations are evaluated in **fixed-size batches** ([`NODE_BATCH`] nodes
//! popped per round, independent of thread count) fanned out over
//! [`crate::par::par_map_with`], then processed strictly in batch order:
//! node accounting, incumbent updates, pruning, and branching all happen
//! sequentially. Because each node's relaxation depends only on the problem
//! and its bound overrides (properties of the search tree, never of worker
//! scheduling — every node solves cold), the solver returns
//! **byte-identical results for any thread count** — including 1. The cost
//! is bounded speculation: an incumbent found at position `i` of a batch
//! cannot cancel the (already evaluated) relaxations at positions `> i`, so
//! up to `NODE_BATCH - 1` solves per improvement are wasted relative to pure
//! sequential DFS.
//!
//! Each worker thread owns a [`simplex::Workspace`], so tableau buffers and
//! the prepared sparse rows are reused across the nodes of its chunk; each
//! node explicitly clears the workspace's warm state, so workspace history
//! never leaks into results.

use crate::error::SolveError;
use crate::par::par_map_with;
use crate::problem::{Problem, Relation, Sense, VarId, VarKind};
use crate::simplex::{self, BoundOverride};
use crate::solution::Solution;
use crate::stats::{IncumbentPoint, MilpStats};
use crate::INT_EPS;

/// Nodes evaluated per parallel batch. Fixed (not derived from the thread
/// count) so search behavior is reproducible on any machine.
const NODE_BATCH: usize = 8;

/// Search limits for branch-and-bound.
#[derive(Debug, Clone, Copy)]
pub struct BnbConfig {
    /// Maximum number of LP relaxations to solve before giving up.
    pub max_nodes: usize,
    /// Absolute optimality gap: incumbent within `gap` of the best bound is
    /// accepted as optimal.
    pub gap: f64,
}

impl Default for BnbConfig {
    fn default() -> Self {
        BnbConfig {
            max_nodes: 200_000,
            gap: 1e-6,
        }
    }
}

/// Solve a mixed-integer problem by branch-and-bound.
pub fn solve(problem: &Problem, config: BnbConfig) -> Result<Solution, SolveError> {
    solve_traced(problem, config).map(|(s, _)| s)
}

/// A constraint row produced by a separation oracle during lazy
/// (cutting-plane) branch-and-bound — a row of the *full* formulation that
/// the master problem omitted and the candidate solution violates.
#[derive(Debug, Clone)]
pub struct LazyRow {
    pub terms: Vec<(VarId, f64)>,
    pub relation: Relation,
    pub rhs: f64,
}

/// [`solve_traced_lazy`] without the stats.
pub fn solve_lazy(
    problem: &mut Problem,
    config: BnbConfig,
    separate: impl FnMut(&Solution) -> Vec<LazyRow>,
) -> Result<Solution, SolveError> {
    solve_traced_lazy(problem, config, separate).map(|(s, _)| s)
}

/// Branch-and-cut: branch-and-bound over a master problem that holds only
/// a subset of the full formulation's rows, with `separate` called on
/// every surviving node relaxation to report violated full-formulation
/// rows.
///
/// Reported rows are appended to the shared `problem` — the global lazy
/// row pool — and the node is re-queued against the tightened master, so
/// every node (and in particular every child of the node that triggered
/// the separation) inherits all rows active anywhere in the tree so far.
/// Because the master is always a row-subset of the full formulation,
/// node relaxations stay valid lower bounds and pruning is exact; because
/// an incumbent is only accepted after `separate` returns no violations,
/// accepted incumbents are feasible for the full formulation. Together
/// that makes the search exactly equivalent to branch-and-bound on the
/// full problem: same optimal objective, same feasible/infeasible
/// verdict. `separate` must be deterministic (a pure function of the
/// candidate solution and the rows appended so far) for solves to stay
/// byte-identical across thread counts; it is only ever called from the
/// sequential batch-processing loop.
///
/// Two guards close gaps in that argument that `separate` alone cannot:
///
/// * **Stale batch-mates.** All relaxations of a batch are solved against
///   the master as it stood before the batch, but rows append mid-batch
///   (while earlier batch-mates are processed sequentially). An oracle is
///   allowed to skip rows already in the master ("the LP enforces them"),
///   which is false for a batch-mate solved before the row existed — so
///   every node is first checked directly against the rows appended since
///   its relaxation was solved, and a violator is re-queued against the
///   tightened master exactly like the cuts-nonempty path.
/// * **Rounding slip.** Integer values are snapped to `round()` before a
///   candidate becomes the incumbent; a binary rounded *up* by INT_EPS
///   tightens a lazy row `flow >= b·q` by `b·INT_EPS`, which can exceed
///   the oracle's separation tolerance. The rounded point is therefore
///   re-separated (and re-checked against mid-batch rows) and only
///   accepted when clean; otherwise the node re-queues with the fresh
///   rows appended.
///
/// Each re-queued evaluation counts against `config.max_nodes`. A re-queue
/// either appends at least one previously-missing row, or (the stale
/// batch-mate case) re-solves against rows some batch-mate just appended —
/// at most `NODE_BATCH - 1` such re-queues per append event, and once
/// re-solved the rows are enforced, so termination is inherited from the
/// finiteness of the full row set.
pub fn solve_traced_lazy(
    problem: &mut Problem,
    config: BnbConfig,
    mut separate: impl FnMut(&Solution) -> Vec<LazyRow>,
) -> Result<(Solution, MilpStats), SolveError> {
    let int_vars: Vec<usize> = problem
        .vars
        .iter()
        .enumerate()
        .filter(|(_, v)| v.kind == VarKind::Integer)
        .map(|(i, _)| i)
        .collect();
    let mut stats = MilpStats::default();
    if int_vars.is_empty() {
        // Pure LP: a plain cutting-plane loop over one workspace, each
        // round warm-started from the previous basis via `append_rows`.
        let mut ws = simplex::Workspace::new();
        // A warm-started solve can degenerate-cycle into the simplex
        // guards on an LP that solves cleanly from scratch; any error on
        // a warm attempt is retried cold once before being propagated.
        let mut ws_cold = true;
        let sol = loop {
            let sol = match simplex::solve_with(problem, &[], &mut ws) {
                Ok(sol) => sol,
                Err(_) if !ws_cold => {
                    ws = simplex::Workspace::new();
                    simplex::solve_with(problem, &[], &mut ws)?
                }
                Err(e) => return Err(e),
            };
            ws_cold = false;
            stats.nodes += 1;
            stats.lp_iterations += sol.stats.iterations();
            stats.lp_pivots += sol.stats.pivots;
            stats.separation_calls += 1;
            let cuts = separate(&sol);
            if cuts.is_empty() {
                // Only accept an optimum from a cold solve: warm installs
                // repair violated appended rows through phase-1 tolerances,
                // which on ill-conditioned rows can shift the claimed
                // optimum beyond the exact-equivalence guarantee. A clean
                // pass on a warm solve triggers one cold re-solve of the
                // same master; its (exact) optimum is then re-separated.
                if !sol.stats.warm_start {
                    break sol;
                }
                ws = simplex::Workspace::new();
                ws_cold = true;
                continue;
            }
            stats.lazy_rows_added += cuts.len() as u64;
            for cut in &cuts {
                problem.add_constraint(&cut.terms, cut.relation, cut.rhs);
            }
            ws.append_rows(problem);
        };
        stats.incumbents.push(IncumbentPoint {
            node: stats.nodes,
            objective: sol.objective,
        });
        return Ok((sol, stats));
    }

    // Internally treat everything as minimization.
    let sign = match problem.sense {
        Sense::Minimize => 1.0,
        Sense::Maximize => -1.0,
    };

    let mut incumbent: Option<Solution> = None;
    let mut incumbent_cost = f64::INFINITY; // sign * objective
    let mut nodes = 0usize;
    struct Node {
        bounds: Vec<BoundOverride>,
    }
    let mut stack: Vec<Node> = vec![Node { bounds: Vec::new() }];
    let mut batch: Vec<Node> = Vec::with_capacity(NODE_BATCH);

    while !stack.is_empty() {
        batch.clear();
        let take = if stack.len() >= NODE_BATCH {
            NODE_BATCH
        } else {
            1
        };
        while batch.len() < take {
            match stack.pop() {
                Some(node) => batch.push(node),
                None => break,
            }
        }
        // Every relaxation in this batch is solved against the master as
        // of this row count; rows appended while processing earlier
        // batch-mates are re-checked explicitly below.
        let rows_at_solve = problem.num_constraints();
        let evaluated: Vec<Result<Solution, SolveError>> = {
            let prob: &Problem = problem;
            par_map_with(&batch, simplex::Workspace::new, |ws, node: &Node| {
                // Cold per node: a reused workspace re-arms its own final
                // basis after every solve, and honoring it here would make
                // the relaxation's vertex (and hence branching) depend on
                // which chunk-mate ran before — see `par_map_with`'s
                // determinism caveat. Clearing keeps every node on the
                // cold pivot path the node budgets were sized against;
                // warm starts live in the round-to-round scheduling flow
                // ([`crate::warm`]), not inside the tree search.
                ws.set_warm(None);
                simplex::solve_with(prob, &node.bounds, ws)
            })
        };

        // Process strictly in batch order (see [`solve_traced`]); the
        // separation oracle runs here, sequentially, so the row pool grows
        // in a thread-count-independent order.
        for (node, relax) in batch.drain(..).zip(evaluated) {
            if nodes >= config.max_nodes {
                return incumbent
                    .map(|s| (s, stats))
                    .ok_or(SolveError::NodeLimit);
            }
            nodes += 1;
            stats.nodes = nodes as u64;
            stats.max_depth = stats.max_depth.max(node.bounds.len() as u32);

            let relax = match relax {
                Ok(s) => s,
                Err(SolveError::Infeasible) => continue,
                Err(e) => return Err(e),
            };
            stats.lp_iterations += relax.stats.iterations();
            stats.lp_pivots += relax.stats.pivots;
            let relax_cost = sign * relax.objective;
            if relax_cost >= incumbent_cost - config.gap {
                continue; // valid even on the row-subset: it's a relaxation
            }

            // A batch-mate processed earlier may have appended rows this
            // relaxation was solved without. The oracle may legitimately
            // skip rows already in the master, so they are checked here
            // directly; a violator is re-queued against the tightened
            // master (its stale objective is still a valid bound, so the
            // pruning test above stays exact).
            if violates_rows_since(problem, rows_at_solve, &relax.values) {
                stack.push(Node { bounds: node.bounds });
                continue;
            }

            stats.separation_calls += 1;
            let cuts = separate(&relax);
            if !cuts.is_empty() {
                stats.lazy_rows_added += cuts.len() as u64;
                for cut in &cuts {
                    problem.add_constraint(&cut.terms, cut.relation, cut.rhs);
                }
                // Re-queue against the tightened master. Later batches
                // re-prepare their workspaces against the grown row set
                // automatically.
                stack.push(Node { bounds: node.bounds });
                continue;
            }

            // Most fractional integer variable.
            let mut branch_var = None;
            let mut best_frac = INT_EPS;
            for &j in &int_vars {
                let v = relax.values[j];
                let frac = (v - v.round()).abs();
                if frac > best_frac {
                    best_frac = frac;
                    branch_var = Some(j);
                }
            }

            match branch_var {
                None => {
                    // Integral and cleanly separated — but separation ran
                    // on the *unrounded* relaxation, and snapping a binary
                    // up by INT_EPS can push a lazy row past the oracle's
                    // tolerance. Re-check the rounded point (mid-batch rows
                    // directly, the rest via the oracle) before accepting.
                    let mut vals = relax.values.clone();
                    for &j in &int_vars {
                        vals[j] = vals[j].round();
                    }
                    let obj = problem.objective_value(&vals);
                    let cost = sign * obj;
                    if cost >= incumbent_cost {
                        continue;
                    }
                    if violates_rows_since(problem, rows_at_solve, &vals) {
                        stack.push(Node { bounds: node.bounds });
                        continue;
                    }
                    let cand = Solution {
                        objective: obj,
                        values: vals,
                        duals: None,
                        stats: relax.stats.clone(),
                    };
                    stats.separation_calls += 1;
                    let cuts = separate(&cand);
                    if !cuts.is_empty() {
                        stats.lazy_rows_added += cuts.len() as u64;
                        for cut in &cuts {
                            problem.add_constraint(&cut.terms, cut.relation, cut.rhs);
                        }
                        stack.push(Node { bounds: node.bounds });
                        continue;
                    }
                    incumbent_cost = cost;
                    stats.incumbents.push(IncumbentPoint {
                        node: nodes as u64,
                        objective: obj,
                    });
                    incumbent = Some(cand);
                }
                Some(j) => {
                    let v = relax.values[j];
                    let floor = v.floor();
                    let down: BoundOverride = (j, 0.0, floor);
                    let up: BoundOverride = (j, floor + 1.0, f64::INFINITY);
                    let (first, second) = if v - floor > 0.5 {
                        (down, up)
                    } else {
                        (up, down)
                    };
                    let mut b1 = node.bounds.clone();
                    b1.push(first);
                    stack.push(Node { bounds: b1 });
                    let mut b2 = node.bounds;
                    b2.push(second);
                    stack.push(Node { bounds: b2 });
                }
            }
        }
    }

    incumbent.map(|s| (s, stats)).ok_or(SolveError::Infeasible)
}

/// True when `values` violates any master row from index `from` on.
/// Branch-and-cut uses this to re-check candidates against rows their
/// relaxation was solved without (stale batch-mates, rounded incumbent
/// candidates). The rows checked were never in the solved LP, so a
/// tolerance tighter than the simplex's is safe: a flagged node simply
/// re-solves with the row enforced, after which it is never re-checked.
fn violates_rows_since(problem: &Problem, from: usize, values: &[f64]) -> bool {
    problem.constraints[from..].iter().any(|c| {
        let lhs: f64 = c.terms.iter().map(|&(i, coef)| coef * values[i]).sum();
        let tol = 1e-9 * (1.0 + c.rhs.abs());
        match c.relation {
            Relation::Le => lhs > c.rhs + tol,
            Relation::Ge => lhs < c.rhs - tol,
            Relation::Eq => (lhs - c.rhs).abs() > tol,
        }
    })
}

/// [`solve`], additionally returning the search statistics — node count,
/// maximum depth, aggregate LP work, and the incumbent trajectory. All
/// accounting happens in the sequential batch-processing loop, so the
/// stats are byte-identical across thread counts.
pub fn solve_traced(
    problem: &Problem,
    config: BnbConfig,
) -> Result<(Solution, MilpStats), SolveError> {
    let int_vars: Vec<usize> = problem
        .vars
        .iter()
        .enumerate()
        .filter(|(_, v)| v.kind == VarKind::Integer)
        .map(|(i, _)| i)
        .collect();
    if int_vars.is_empty() {
        let sol = simplex::solve_relaxation(problem, &[])?;
        let stats = MilpStats {
            nodes: 1,
            max_depth: 0,
            lp_iterations: sol.stats.iterations(),
            lp_pivots: sol.stats.pivots,
            incumbents: vec![IncumbentPoint {
                node: 1,
                objective: sol.objective,
            }],
            ..MilpStats::default()
        };
        return Ok((sol, stats));
    }

    // Internally treat everything as minimization.
    let sign = match problem.sense {
        Sense::Minimize => 1.0,
        Sense::Maximize => -1.0,
    };

    let mut incumbent: Option<Solution> = None;
    let mut incumbent_cost = f64::INFINITY; // sign * objective
    let mut nodes = 0usize;
    let mut stats = MilpStats::default();
    // DFS stack of nodes: the tightened bounds fully describe a node.
    struct Node {
        bounds: Vec<BoundOverride>,
    }
    let mut stack: Vec<Node> = vec![Node { bounds: Vec::new() }];
    let mut batch: Vec<Node> = Vec::with_capacity(NODE_BATCH);

    while !stack.is_empty() {
        // Pop a batch (stack order) and evaluate the relaxations in
        // parallel, one workspace per worker thread. While the frontier is
        // thin, pop a single node — that is exactly sequential DFS, which
        // dives to an incumbent fast; only a frontier at least NODE_BATCH
        // deep fans out, bounding how much the batch can speculate past a
        // yet-undiscovered incumbent. The ramp rule depends only on the
        // stack (search state), never the thread count, so determinism is
        // preserved.
        batch.clear();
        let take = if stack.len() >= NODE_BATCH {
            NODE_BATCH
        } else {
            1
        };
        while batch.len() < take {
            match stack.pop() {
                Some(node) => batch.push(node),
                None => break,
            }
        }
        let evaluated: Vec<Result<Solution, SolveError>> = par_map_with(
            &batch,
            simplex::Workspace::new,
            |ws, node: &Node| {
                // Cold per node (matching [`solve_traced_lazy`]): clearing
                // the workspace's re-armed basis keeps each relaxation's
                // vertex a function of the node alone, never of which
                // chunk-mate ran before it on this worker.
                ws.set_warm(None);
                simplex::solve_with(problem, &node.bounds, ws)
            },
        );

        // Process strictly in batch order: this loop is the only place
        // search state (incumbent, node budget, stack) changes, so results
        // do not depend on how the batch was scheduled over threads.
        for (node, relax) in batch.drain(..).zip(evaluated) {
            if nodes >= config.max_nodes {
                // Out of budget: report the incumbent if we have one.
                return incumbent
                    .map(|s| (s, stats))
                    .ok_or(SolveError::NodeLimit);
            }
            nodes += 1;
            stats.nodes = nodes as u64;
            stats.max_depth = stats.max_depth.max(node.bounds.len() as u32);

            let relax = match relax {
                Ok(s) => s,
                Err(SolveError::Infeasible) => continue,
                Err(e) => return Err(e),
            };
            stats.lp_iterations += relax.stats.iterations();
            stats.lp_pivots += relax.stats.pivots;
            let relax_cost = sign * relax.objective;
            if relax_cost >= incumbent_cost - config.gap {
                continue; // cannot beat the incumbent
            }

            // Most fractional integer variable.
            let mut branch_var = None;
            let mut best_frac = INT_EPS;
            for &j in &int_vars {
                let v = relax.values[j];
                let frac = (v - v.round()).abs();
                if frac > best_frac {
                    best_frac = frac;
                    branch_var = Some(j);
                }
            }

            match branch_var {
                None => {
                    // Integral: snap values exactly and accept as incumbent.
                    let mut vals = relax.values.clone();
                    for &j in &int_vars {
                        vals[j] = vals[j].round();
                    }
                    let obj = problem.objective_value(&vals);
                    let cost = sign * obj;
                    if cost < incumbent_cost {
                        incumbent_cost = cost;
                        stats.incumbents.push(IncumbentPoint {
                            node: nodes as u64,
                            objective: obj,
                        });
                        incumbent = Some(Solution {
                            objective: obj,
                            values: vals,
                            duals: None,
                            // The incumbent inherits the kernel counters of
                            // the node relaxation that produced it.
                            stats: relax.stats.clone(),
                        });
                    }
                }
                Some(j) => {
                    let v = relax.values[j];
                    let floor = v.floor();
                    // Explore the "round toward relaxation" side last so it
                    // pops first (DFS), which tends to find good incumbents
                    // early.
                    let down: BoundOverride = (j, 0.0, floor);
                    let up: BoundOverride = (j, floor + 1.0, f64::INFINITY);
                    let (first, second) = if v - floor > 0.5 {
                        (down, up)
                    } else {
                        (up, down)
                    };
                    let mut b1 = node.bounds.clone();
                    b1.push(first);
                    stack.push(Node { bounds: b1 });
                    let mut b2 = node.bounds;
                    b2.push(second);
                    stack.push(Node { bounds: b2 });
                }
            }
        }
    }

    incumbent.map(|s| (s, stats)).ok_or(SolveError::Infeasible)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Problem, Relation, Sense};

    fn approx(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} != {b}");
    }

    #[test]
    fn knapsack_binary() {
        // max 10a + 13b + 7c, 3a + 4b + 2c <= 6, binary -> a=1, c=1 (17)
        // vs b+c (20)? b+c weight 6 value 20. Check: a+c weight 5 value 17;
        // b+c weight 6 value 20 -> optimal 20.
        let mut p = Problem::new(Sense::Maximize);
        let a = p.add_binary_var("a");
        let b = p.add_binary_var("b");
        let c = p.add_binary_var("c");
        p.set_objective(a, 10.0);
        p.set_objective(b, 13.0);
        p.set_objective(c, 7.0);
        p.add_constraint(&[(a, 3.0), (b, 4.0), (c, 2.0)], Relation::Le, 6.0);
        let s = solve(&p, BnbConfig::default()).unwrap();
        approx(s.objective, 20.0);
        assert_eq!(s.int_value(b), 1);
        assert_eq!(s.int_value(c), 1);
        assert_eq!(s.int_value(a), 0);
    }

    #[test]
    fn integer_rounding_matters() {
        // max x + y, 2x + 2y <= 5, integers -> LP gives 2.5, MILP gives 2.
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_integer_var("x", f64::INFINITY);
        let y = p.add_integer_var("y", f64::INFINITY);
        p.set_objective(x, 1.0);
        p.set_objective(y, 1.0);
        p.add_constraint(&[(x, 2.0), (y, 2.0)], Relation::Le, 5.0);
        let relax = p.solve_relaxation().unwrap();
        approx(relax.objective, 2.5);
        let s = p.solve().unwrap();
        approx(s.objective, 2.0);
    }

    #[test]
    fn mixed_integer_continuous() {
        // max 2x + 3z with x integer, z continuous <= 1.2, x + z <= 4.8.
        // Candidates: x=3, z=1.2 (obj 9.6) vs x=4, z=0.8 (obj 10.4).
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_integer_var("x", f64::INFINITY);
        let z = p.add_bounded_var("z", 1.2);
        p.set_objective(x, 2.0);
        p.set_objective(z, 3.0);
        p.add_constraint(&[(x, 1.0), (z, 1.0)], Relation::Le, 4.8);
        let s = p.solve().unwrap();
        approx(s.objective, 10.4);
        assert_eq!(s.int_value(x), 4);
    }

    #[test]
    fn infeasible_milp() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_binary_var("x");
        p.set_objective(x, 1.0);
        p.add_constraint(&[(x, 2.0)], Relation::Eq, 1.0); // x = 0.5 impossible
        assert_eq!(p.solve().unwrap_err(), SolveError::Infeasible);
    }

    #[test]
    fn big_m_indicator_pattern() {
        // The indicator pattern used by BATE's failure recovery:
        // y binary, R continuous; R >= y, R < M*y + 1 - y.
        // If R can reach 1, profit prefers y = 1.
        let m = 100.0;
        let mut p = Problem::new(Sense::Maximize);
        let y = p.add_binary_var("y");
        let r = p.add_bounded_var("r", 2.0);
        p.set_objective(y, 10.0);
        p.add_constraint(&[(r, 1.0), (y, -1.0)], Relation::Ge, 0.0);
        p.add_constraint(&[(r, 1.0), (y, -(m - 1.0))], Relation::Le, 1.0);
        p.add_constraint(&[(r, 1.0)], Relation::Le, 1.5); // capacity allows R = 1.5
        let s = p.solve().unwrap();
        assert_eq!(s.int_value(y), 1);
    }

    #[test]
    fn byte_identical_across_thread_counts() {
        // A MILP big enough to branch repeatedly: a 12-item knapsack with
        // two capacity rows. Every thread count must produce bit-identical
        // objective and values (node evaluation is batch-synchronous and
        // every relaxation solves cold, independent of worker chunking).
        let mut p = Problem::new(Sense::Maximize);
        let items: Vec<_> = (0..12).map(|i| p.add_binary_var(&format!("x{i}"))).collect();
        for (i, &x) in items.iter().enumerate() {
            p.set_objective(x, 3.0 + (i as f64 * 1.7).sin().abs() * 9.0);
            p.add_constraint(&[(x, 1.0)], Relation::Le, 1.0);
        }
        let w1: Vec<_> = items
            .iter()
            .enumerate()
            .map(|(i, &x)| (x, 1.0 + (i as f64 * 0.9).cos().abs() * 4.0))
            .collect();
        let w2: Vec<_> = items
            .iter()
            .enumerate()
            .map(|(i, &x)| (x, 1.0 + (i as f64 * 1.3).sin().abs() * 3.0))
            .collect();
        p.add_constraint(&w1, Relation::Le, 14.0);
        p.add_constraint(&w2, Relation::Le, 11.0);

        let solve_at = |threads: usize| {
            crate::par::with_thread_count(threads, || {
                solve_traced(&p, BnbConfig::default()).unwrap()
            })
        };
        let (base, base_stats) = solve_at(1);
        assert!(base_stats.nodes > 1, "instance must branch");
        assert!(base_stats.max_depth > 0);
        assert_eq!(
            base_stats.incumbents.last().map(|i| i.objective),
            Some(base.objective),
            "the incumbent trajectory must end at the returned optimum"
        );
        for threads in [2, 3, 8] {
            let (s, stats) = solve_at(threads);
            assert_eq!(
                base.objective.to_bits(),
                s.objective.to_bits(),
                "objective differs at {threads} threads"
            );
            assert_eq!(base.values.len(), s.values.len());
            for (a, b) in base.values.iter().zip(&s.values) {
                assert_eq!(a.to_bits(), b.to_bits(), "values differ at {threads} threads");
            }
            // Node accounting is sequential, so stats are identical too.
            assert_eq!(base_stats, stats, "search stats differ at {threads} threads");
        }
    }

    #[test]
    fn lazy_rows_match_full_formulation() {
        // The 12-item double-knapsack from the determinism test, but with
        // the second capacity row revealed lazily by a separation oracle.
        // Branch-and-cut must land on the same optimum as the full solve.
        let build = |with_w2: bool| {
            let mut p = Problem::new(Sense::Maximize);
            let items: Vec<_> = (0..12).map(|i| p.add_binary_var(&format!("x{i}"))).collect();
            for (i, &x) in items.iter().enumerate() {
                p.set_objective(x, 3.0 + (i as f64 * 1.7).sin().abs() * 9.0);
                p.add_constraint(&[(x, 1.0)], Relation::Le, 1.0);
            }
            let w1: Vec<_> = items
                .iter()
                .enumerate()
                .map(|(i, &x)| (x, 1.0 + (i as f64 * 0.9).cos().abs() * 4.0))
                .collect();
            let w2: Vec<_> = items
                .iter()
                .enumerate()
                .map(|(i, &x)| (x, 1.0 + (i as f64 * 1.3).sin().abs() * 3.0))
                .collect();
            p.add_constraint(&w1, Relation::Le, 14.0);
            if with_w2 {
                p.add_constraint(&w2, Relation::Le, 11.0);
            }
            (p, w2)
        };

        let (full, _) = build(true);
        let want = solve(&full, BnbConfig::default()).unwrap();

        let (mut master, w2) = build(false);
        let mut active = false;
        let (sol, stats) = solve_traced_lazy(&mut master, BnbConfig::default(), |cand| {
            let lhs: f64 = w2.iter().map(|&(x, c)| c * cand[x]).sum();
            if !active && lhs > 11.0 + 1e-9 {
                active = true;
                vec![LazyRow {
                    terms: w2.clone(),
                    relation: Relation::Le,
                    rhs: 11.0,
                }]
            } else {
                Vec::new()
            }
        })
        .unwrap();
        approx(sol.objective, want.objective);
        assert!(stats.separation_calls > 0);
        // The hidden row matters for this instance, so it must have been
        // pulled in (otherwise the LP bound would overshoot the optimum).
        assert_eq!(stats.lazy_rows_added, 1);

        // Determinism across thread counts, oracle included.
        let solve_at = |threads: usize| {
            crate::par::with_thread_count(threads, || {
                let (mut master, w2) = build(false);
                let mut appended = false;
                solve_traced_lazy(&mut master, BnbConfig::default(), |cand| {
                    let lhs: f64 = w2.iter().map(|&(x, c)| c * cand[x]).sum();
                    if !appended && lhs > 11.0 + 1e-9 {
                        appended = true;
                        vec![LazyRow {
                            terms: w2.clone(),
                            relation: Relation::Le,
                            rhs: 11.0,
                        }]
                    } else {
                        Vec::new()
                    }
                })
                .unwrap()
            })
        };
        let (base, base_stats) = solve_at(1);
        for threads in [2, 3, 8] {
            let (s, stats) = solve_at(threads);
            assert_eq!(base.objective.to_bits(), s.objective.to_bits());
            for (a, b) in base.values.iter().zip(&s.values) {
                assert_eq!(a.to_bits(), b.to_bits(), "values differ at {threads} threads");
            }
            assert_eq!(base_stats, stats, "stats differ at {threads} threads");
        }
    }

    #[test]
    fn stale_batch_mates_cannot_become_incumbents() {
        // Regression for the batch-staleness hole: all relaxations of a
        // batch are solved against the pre-batch master, and an oracle
        // that skips rows already in the master (the `added`-tracking
        // pattern the admission MILP uses) will not re-report a row some
        // earlier batch-mate just appended — so a stale batch-mate whose
        // integral relaxation violates that row used to be accepted as an
        // incumbent infeasible for the full formulation.
        //
        // The instance forces that interleaving deterministically:
        //
        // * `nj` junk gadgets — binary `j`, continuous `j' <= min(j, 1-j)`
        //   with reward on `j'` — each relax at j = j' = 0.5, and both
        //   branches of `j` stay feasible, so the DFS frontier grows past
        //   NODE_BATCH and batches genuinely fan out.
        // * a z-gadget — `r <= 2z`, `r <= 2 - 2z`, and the reward on `r`
        //   (15) exceeding the combined a/b reward slack — pins z = 0.5
        //   and r = 1 in every relaxation, which through the shared gate
        //   `a + b + r <= 2` holds a + b = 1. z has the highest variable
        //   index, so every junk gadget branches before it.
        // * branching z kills r on BOTH sides, so both z-children relax
        //   to the integral point a = b = 1 — violating the hidden row
        //   `a + b <= 1` — and sit adjacent on the stack, landing in the
        //   same batch. The first one separates and appends the row; the
        //   second used to sail through `cuts.is_empty()` and become a
        //   bogus incumbent at objective 20 (true optimum: 10).
        let nj = 8;
        let build = |with_hidden: bool| {
            let mut p = Problem::new(Sense::Maximize);
            for k in 0..nj {
                let j = p.add_binary_var(&format!("j{k}"));
                let jp = p.add_bounded_var(&format!("jp{k}"), 1.0);
                p.set_objective(jp, 1.0);
                p.add_constraint(&[(jp, 1.0), (j, -1.0)], Relation::Le, 0.0);
                p.add_constraint(&[(jp, 1.0), (j, 1.0)], Relation::Le, 1.0);
            }
            let z = p.add_binary_var("z");
            let r = p.add_bounded_var("r", 1.0);
            let a = p.add_binary_var("a");
            let b = p.add_binary_var("b");
            p.set_objective(r, 15.0);
            p.set_objective(a, 10.0);
            p.set_objective(b, 10.0);
            p.add_constraint(&[(r, 1.0), (z, -2.0)], Relation::Le, 0.0);
            p.add_constraint(&[(r, 1.0), (z, 2.0)], Relation::Le, 2.0);
            p.add_constraint(&[(a, 1.0), (b, 1.0), (r, 1.0)], Relation::Le, 2.0);
            let hidden = vec![(vec![(a, 1.0), (b, 1.0)], 1.0)];
            if with_hidden {
                for (t, rhs) in &hidden {
                    p.add_constraint(t, Relation::Le, *rhs);
                }
            }
            (p, hidden)
        };

        let (full, _) = build(true);
        let want = solve(&full, BnbConfig::default()).unwrap();
        approx(want.objective, 10.0);

        let solve_at = |threads: usize| {
            crate::par::with_thread_count(threads, || {
                let (mut master, hidden) = build(false);
                let mut added = vec![false; hidden.len()];
                solve_traced_lazy(&mut master, BnbConfig::default(), |cand| {
                    let mut cuts = Vec::new();
                    for (ri, (terms, rhs)) in hidden.iter().enumerate() {
                        if added[ri] {
                            continue; // "the LP enforces it already"
                        }
                        let lhs: f64 = terms.iter().map(|&(x, c)| c * cand[x]).sum();
                        if lhs > rhs + 1e-9 {
                            added[ri] = true;
                            cuts.push(LazyRow {
                                terms: terms.clone(),
                                relation: Relation::Le,
                                rhs: *rhs,
                            });
                        }
                    }
                    cuts
                })
                .unwrap()
            })
        };
        let (base, base_stats) = solve_at(1);
        approx(base.objective, want.objective);
        assert!(
            full.is_feasible(&base.values, 1e-6),
            "lazy incumbent violates the hidden row"
        );
        assert_eq!(base_stats.lazy_rows_added, 1);
        for threads in [2, 4, 8] {
            let (s, stats) = solve_at(threads);
            assert_eq!(
                base.objective.to_bits(),
                s.objective.to_bits(),
                "objective differs at {threads} threads"
            );
            for (va, vb) in base.values.iter().zip(&s.values) {
                assert_eq!(va.to_bits(), vb.to_bits(), "values differ at {threads} threads");
            }
            assert_eq!(base_stats, stats, "stats differ at {threads} threads");
        }
    }

    #[test]
    fn node_limit_reports_error_without_incumbent() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_integer_var("x", 10.0);
        p.set_objective(x, 1.0);
        p.add_constraint(&[(x, 2.0)], Relation::Le, 9.0);
        let cfg = BnbConfig {
            max_nodes: 0,
            gap: 1e-6,
        };
        assert_eq!(solve(&p, cfg).unwrap_err(), SolveError::NodeLimit);
    }
}
