//! Branch-and-bound MILP solver on top of the simplex core.
//!
//! Depth-first search with best-bound pruning. Each node tightens variable
//! bounds (never adds rows), so the LP relaxations stay the same size as the
//! root problem. Branching picks the integer variable whose relaxation value
//! is most fractional.

use crate::error::SolveError;
use crate::problem::{Problem, Sense, VarKind};
use crate::simplex::{self, BoundOverride};
use crate::solution::Solution;
use crate::INT_EPS;

/// Search limits for branch-and-bound.
#[derive(Debug, Clone, Copy)]
pub struct BnbConfig {
    /// Maximum number of LP relaxations to solve before giving up.
    pub max_nodes: usize,
    /// Absolute optimality gap: incumbent within `gap` of the best bound is
    /// accepted as optimal.
    pub gap: f64,
}

impl Default for BnbConfig {
    fn default() -> Self {
        BnbConfig {
            max_nodes: 200_000,
            gap: 1e-6,
        }
    }
}

/// Solve a mixed-integer problem by branch-and-bound.
pub fn solve(problem: &Problem, config: BnbConfig) -> Result<Solution, SolveError> {
    let int_vars: Vec<usize> = problem
        .vars
        .iter()
        .enumerate()
        .filter(|(_, v)| v.kind == VarKind::Integer)
        .map(|(i, _)| i)
        .collect();
    if int_vars.is_empty() {
        return simplex::solve_relaxation(problem, &[]);
    }

    // Internally treat everything as minimization.
    let sign = match problem.sense {
        Sense::Minimize => 1.0,
        Sense::Maximize => -1.0,
    };

    let mut incumbent: Option<Solution> = None;
    let mut incumbent_cost = f64::INFINITY; // sign * objective
    let mut nodes = 0usize;
    // DFS stack of bound-override sets.
    let mut stack: Vec<Vec<BoundOverride>> = vec![Vec::new()];

    while let Some(bounds) = stack.pop() {
        if nodes >= config.max_nodes {
            // Out of budget: report the incumbent if we have one.
            return incumbent.ok_or(SolveError::NodeLimit);
        }
        nodes += 1;

        let relax = match simplex::solve_relaxation(problem, &bounds) {
            Ok(s) => s,
            Err(SolveError::Infeasible) => continue,
            Err(e) => return Err(e),
        };
        let relax_cost = sign * relax.objective;
        if relax_cost >= incumbent_cost - config.gap {
            continue; // cannot beat the incumbent
        }

        // Most fractional integer variable.
        let mut branch_var = None;
        let mut best_frac = INT_EPS;
        for &j in &int_vars {
            let v = relax.values[j];
            let frac = (v - v.round()).abs();
            if frac > best_frac {
                best_frac = frac;
                branch_var = Some(j);
            }
        }

        match branch_var {
            None => {
                // Integral: snap values exactly and accept as incumbent.
                let mut vals = relax.values.clone();
                for &j in &int_vars {
                    vals[j] = vals[j].round();
                }
                let obj = problem.objective_value(&vals);
                let cost = sign * obj;
                if cost < incumbent_cost {
                    incumbent_cost = cost;
                    incumbent = Some(Solution {
                        objective: obj,
                        values: vals,
                        duals: None,
                    });
                }
            }
            Some(j) => {
                let v = relax.values[j];
                let floor = v.floor();
                // Explore the "round toward relaxation" side last so it pops
                // first (DFS), which tends to find good incumbents early.
                let down: BoundOverride = (j, 0.0, floor);
                let up: BoundOverride = (j, floor + 1.0, f64::INFINITY);
                let (first, second) = if v - floor > 0.5 {
                    (down, up)
                } else {
                    (up, down)
                };
                let mut b1 = bounds.clone();
                b1.push(first);
                stack.push(b1);
                let mut b2 = bounds;
                b2.push(second);
                stack.push(b2);
            }
        }
    }

    incumbent.ok_or(SolveError::Infeasible)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Problem, Relation, Sense};

    fn approx(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} != {b}");
    }

    #[test]
    fn knapsack_binary() {
        // max 10a + 13b + 7c, 3a + 4b + 2c <= 6, binary -> a=1, c=1 (17)
        // vs b+c (20)? b+c weight 6 value 20. Check: a+c weight 5 value 17;
        // b+c weight 6 value 20 -> optimal 20.
        let mut p = Problem::new(Sense::Maximize);
        let a = p.add_binary_var("a");
        let b = p.add_binary_var("b");
        let c = p.add_binary_var("c");
        p.set_objective(a, 10.0);
        p.set_objective(b, 13.0);
        p.set_objective(c, 7.0);
        p.add_constraint(&[(a, 3.0), (b, 4.0), (c, 2.0)], Relation::Le, 6.0);
        let s = solve(&p, BnbConfig::default()).unwrap();
        approx(s.objective, 20.0);
        assert_eq!(s.int_value(b), 1);
        assert_eq!(s.int_value(c), 1);
        assert_eq!(s.int_value(a), 0);
    }

    #[test]
    fn integer_rounding_matters() {
        // max x + y, 2x + 2y <= 5, integers -> LP gives 2.5, MILP gives 2.
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_integer_var("x", f64::INFINITY);
        let y = p.add_integer_var("y", f64::INFINITY);
        p.set_objective(x, 1.0);
        p.set_objective(y, 1.0);
        p.add_constraint(&[(x, 2.0), (y, 2.0)], Relation::Le, 5.0);
        let relax = p.solve_relaxation().unwrap();
        approx(relax.objective, 2.5);
        let s = p.solve().unwrap();
        approx(s.objective, 2.0);
    }

    #[test]
    fn mixed_integer_continuous() {
        // max 2x + 3z with x integer, z continuous <= 1.2, x + z <= 4.8.
        // Candidates: x=3, z=1.2 (obj 9.6) vs x=4, z=0.8 (obj 10.4).
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_integer_var("x", f64::INFINITY);
        let z = p.add_bounded_var("z", 1.2);
        p.set_objective(x, 2.0);
        p.set_objective(z, 3.0);
        p.add_constraint(&[(x, 1.0), (z, 1.0)], Relation::Le, 4.8);
        let s = p.solve().unwrap();
        approx(s.objective, 10.4);
        assert_eq!(s.int_value(x), 4);
    }

    #[test]
    fn infeasible_milp() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_binary_var("x");
        p.set_objective(x, 1.0);
        p.add_constraint(&[(x, 2.0)], Relation::Eq, 1.0); // x = 0.5 impossible
        assert_eq!(p.solve().unwrap_err(), SolveError::Infeasible);
    }

    #[test]
    fn big_m_indicator_pattern() {
        // The indicator pattern used by BATE's failure recovery:
        // y binary, R continuous; R >= y, R < M*y + 1 - y.
        // If R can reach 1, profit prefers y = 1.
        let m = 100.0;
        let mut p = Problem::new(Sense::Maximize);
        let y = p.add_binary_var("y");
        let r = p.add_bounded_var("r", 2.0);
        p.set_objective(y, 10.0);
        p.add_constraint(&[(r, 1.0), (y, -1.0)], Relation::Ge, 0.0);
        p.add_constraint(&[(r, 1.0), (y, -(m - 1.0))], Relation::Le, 1.0);
        p.add_constraint(&[(r, 1.0)], Relation::Le, 1.5); // capacity allows R = 1.5
        let s = p.solve().unwrap();
        assert_eq!(s.int_value(y), 1);
    }

    #[test]
    fn node_limit_reports_error_without_incumbent() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_integer_var("x", 10.0);
        p.set_objective(x, 1.0);
        p.add_constraint(&[(x, 2.0)], Relation::Le, 9.0);
        let cfg = BnbConfig {
            max_nodes: 0,
            gap: 1e-6,
        };
        assert_eq!(solve(&p, cfg).unwrap_err(), SolveError::NodeLimit);
    }
}
