//! Error types reported by the LP and MILP solvers.

use std::fmt;

/// Reasons a solve can fail to produce an optimal solution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolveError {
    /// The constraint set admits no feasible point.
    Infeasible,
    /// The objective is unbounded in the optimization direction.
    Unbounded,
    /// The simplex iteration limit was exceeded (possible cycling or an
    /// ill-conditioned model).
    IterationLimit,
    /// The branch-and-bound node limit was exceeded before proving
    /// optimality.
    NodeLimit,
    /// A model-construction error, e.g. a constraint referencing a variable
    /// from a different problem.
    BadModel(String),
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::Infeasible => write!(f, "problem is infeasible"),
            SolveError::Unbounded => write!(f, "problem is unbounded"),
            SolveError::IterationLimit => write!(f, "simplex iteration limit exceeded"),
            SolveError::NodeLimit => write!(f, "branch-and-bound node limit exceeded"),
            SolveError::BadModel(msg) => write!(f, "bad model: {msg}"),
        }
    }
}

impl std::error::Error for SolveError {}
