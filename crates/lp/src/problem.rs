//! Problem builder: variables, linear constraints, and an objective.
//!
//! All variables have an implicit lower bound of zero (every model in BATE
//! is naturally formulated over non-negative quantities — bandwidths, ratios
//! and indicator variables). Upper bounds and integrality are per-variable
//! attributes; the simplex backend materializes bounds as internal rows, so
//! they never appear in [`Problem::num_constraints`].

use crate::error::SolveError;
use crate::milp;
use crate::simplex;
use crate::solution::Solution;

/// Handle to a decision variable within a [`Problem`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub(crate) usize);

impl VarId {
    /// Index of the variable in the problem's variable list (also its index
    /// into [`Solution::values`]).
    pub fn index(self) -> usize {
        self.0
    }
}

/// Optimization direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sense {
    Minimize,
    Maximize,
}

/// Constraint relation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Relation {
    /// `expr <= rhs`
    Le,
    /// `expr >= rhs`
    Ge,
    /// `expr == rhs`
    Eq,
}

/// Continuity class of a variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VarKind {
    /// Ordinary continuous variable.
    Continuous,
    /// Integer-valued variable (branch-and-bound enforces integrality).
    Integer,
}

#[derive(Debug, Clone)]
pub(crate) struct VarDef {
    pub name: String,
    pub kind: VarKind,
    /// Upper bound; `f64::INFINITY` when unbounded above.
    pub upper: f64,
}

#[derive(Debug, Clone)]
pub(crate) struct Constraint {
    /// Sparse row: `(variable, coefficient)` pairs.
    pub terms: Vec<(usize, f64)>,
    pub relation: Relation,
    pub rhs: f64,
}

/// A linear (or mixed-integer linear) optimization problem under
/// construction.
#[derive(Debug, Clone)]
pub struct Problem {
    pub(crate) sense: Sense,
    pub(crate) vars: Vec<VarDef>,
    pub(crate) objective: Vec<f64>,
    pub(crate) constraints: Vec<Constraint>,
}

impl Problem {
    /// Create an empty problem with the given optimization direction.
    pub fn new(sense: Sense) -> Self {
        Problem {
            sense,
            vars: Vec::new(),
            objective: Vec::new(),
            constraints: Vec::new(),
        }
    }

    /// Add a continuous variable `>= 0` with no upper bound.
    pub fn add_var(&mut self, name: &str) -> VarId {
        self.add_var_full(name, VarKind::Continuous, f64::INFINITY)
    }

    /// Add a continuous variable `0 <= x <= upper`.
    pub fn add_bounded_var(&mut self, name: &str, upper: f64) -> VarId {
        self.add_var_full(name, VarKind::Continuous, upper)
    }

    /// Add a binary variable (`x ∈ {0, 1}`).
    pub fn add_binary_var(&mut self, name: &str) -> VarId {
        self.add_var_full(name, VarKind::Integer, 1.0)
    }

    /// Add an integer variable `0 <= x <= upper` (use `f64::INFINITY` for no
    /// upper bound).
    pub fn add_integer_var(&mut self, name: &str, upper: f64) -> VarId {
        self.add_var_full(name, VarKind::Integer, upper)
    }

    fn add_var_full(&mut self, name: &str, kind: VarKind, upper: f64) -> VarId {
        assert!(upper >= 0.0, "upper bound must be non-negative");
        let id = VarId(self.vars.len());
        self.vars.push(VarDef {
            name: name.to_string(),
            kind,
            upper,
        });
        self.objective.push(0.0);
        id
    }

    /// Set the objective coefficient of `var` (replaces any previous value).
    pub fn set_objective(&mut self, var: VarId, coeff: f64) {
        self.objective[var.0] = coeff;
    }

    /// Add `coeff` to the objective coefficient of `var`.
    pub fn add_objective(&mut self, var: VarId, coeff: f64) {
        self.objective[var.0] += coeff;
    }

    /// Add a linear constraint `Σ coeff·var  (relation)  rhs`.
    ///
    /// Duplicate variables in `terms` are accumulated. Returns the
    /// constraint's row index.
    pub fn add_constraint(
        &mut self,
        terms: &[(VarId, f64)],
        relation: Relation,
        rhs: f64,
    ) -> usize {
        let mut row: Vec<(usize, f64)> = Vec::with_capacity(terms.len());
        for &(v, c) in terms {
            assert!(v.0 < self.vars.len(), "variable from another problem");
            if c == 0.0 {
                continue;
            }
            match row.iter_mut().find(|(i, _)| *i == v.0) {
                Some((_, acc)) => *acc += c,
                None => row.push((v.0, c)),
            }
        }
        self.constraints.push(Constraint {
            terms: row,
            relation,
            rhs,
        });
        self.constraints.len() - 1
    }

    /// Replace the right-hand side of constraint `row`.
    ///
    /// The row's coefficients and relation are untouched, so a cached
    /// [`Workspace`](crate::Workspace) layout stays valid — callers only
    /// need to re-sync the rhs (see `Workspace::sync_rhs`).
    pub fn set_rhs(&mut self, row: usize, rhs: f64) {
        self.constraints[row].rhs = rhs;
    }

    /// Right-hand side of constraint `row`.
    pub fn rhs(&self, row: usize) -> f64 {
        self.constraints[row].rhs
    }

    /// Replace the upper bound of `var` (`f64::INFINITY` for unbounded).
    ///
    /// Bounds are variable attributes, not rows, so tightening or relaxing
    /// one never changes a cached workspace layout. Setting the bound to
    /// zero is the warm-start idiom for retiring a column in place.
    pub fn set_var_upper(&mut self, var: VarId, upper: f64) {
        assert!(upper >= 0.0, "upper bound must be non-negative");
        self.vars[var.0].upper = upper;
    }

    /// Upper bound of `var`.
    pub fn var_upper(&self, var: VarId) -> f64 {
        self.vars[var.0].upper
    }

    /// Append extra terms to an existing constraint row.
    ///
    /// Every appended term must reference a variable **not already present**
    /// in the row: the existing terms stay a frozen prefix, which is what
    /// lets a cached workspace treat the old row as unchanged and splice in
    /// only the new columns (see `Workspace::append_cols`). Zero
    /// coefficients are dropped.
    pub fn extend_constraint(&mut self, row: usize, terms: &[(VarId, f64)]) {
        let c = &mut self.constraints[row];
        for &(v, coef) in terms {
            assert!(v.0 < self.vars.len(), "variable from another problem");
            if coef == 0.0 {
                continue;
            }
            assert!(
                !c.terms.iter().any(|&(i, _)| i == v.0),
                "extend_constraint: variable {} already in row {row}",
                v.0
            );
            c.terms.push((v.0, coef));
        }
    }

    /// Number of decision variables.
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// Number of constraints (upper bounds excluded — they are variable
    /// attributes, not rows).
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Name of a variable (for diagnostics).
    pub fn var_name(&self, var: VarId) -> &str {
        &self.vars[var.0].name
    }

    /// True when at least one variable is integer-constrained.
    pub fn has_integers(&self) -> bool {
        self.vars.iter().any(|v| v.kind == VarKind::Integer)
    }

    /// Solve the problem.
    ///
    /// Continuous problems go straight to the simplex method; problems with
    /// integer variables are solved by branch-and-bound. Returns the optimal
    /// solution or a [`SolveError`] describing why none exists.
    pub fn solve(&self) -> Result<Solution, SolveError> {
        if self.has_integers() {
            milp::solve(self, milp::BnbConfig::default())
        } else {
            simplex::solve_relaxation(self, &[])
        }
    }

    /// Solve the LP relaxation (integrality dropped). Mostly useful for
    /// comparing relaxation bounds against MILP optima.
    pub fn solve_relaxation(&self) -> Result<Solution, SolveError> {
        simplex::solve_relaxation(self, &[])
    }

    /// Solve the LP relaxation reusing `ws` across calls: tableau buffers
    /// and the prepared sparse rows are cached, and each solve warm-starts
    /// from the previous solution's basis when it is still feasible. This
    /// is the fast path for repeated re-solves of the same problem under
    /// shifting bound overrides (branch-and-bound, hardening re-placement).
    pub fn solve_relaxation_with(
        &self,
        overrides: &[simplex::BoundOverride],
        ws: &mut simplex::Workspace,
    ) -> Result<Solution, SolveError> {
        simplex::solve_with(self, overrides, ws)
    }

    /// Evaluate the objective at a candidate point (no feasibility check).
    pub fn objective_value(&self, values: &[f64]) -> f64 {
        self.objective.iter().zip(values).map(|(c, x)| c * x).sum()
    }

    /// Check whether `values` satisfies every constraint and bound to within
    /// `tol`. Used by tests and by callers that cross-validate solutions.
    pub fn is_feasible(&self, values: &[f64], tol: f64) -> bool {
        if values.len() != self.vars.len() {
            return false;
        }
        for (v, def) in values.iter().zip(&self.vars) {
            if *v < -tol || *v > def.upper + tol {
                return false;
            }
        }
        for c in &self.constraints {
            let lhs: f64 = c.terms.iter().map(|&(i, coef)| coef * values[i]).sum();
            let ok = match c.relation {
                Relation::Le => lhs <= c.rhs + tol,
                Relation::Ge => lhs >= c.rhs - tol,
                Relation::Eq => (lhs - c.rhs).abs() <= tol,
            };
            if !ok {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accumulates_duplicate_terms() {
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_var("x");
        p.add_constraint(&[(x, 1.0), (x, 2.0)], Relation::Le, 5.0);
        assert_eq!(p.constraints[0].terms, vec![(0, 3.0)]);
    }

    #[test]
    fn builder_drops_zero_coefficients() {
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_var("x");
        let y = p.add_var("y");
        p.add_constraint(&[(x, 0.0), (y, 1.0)], Relation::Ge, 1.0);
        assert_eq!(p.constraints[0].terms, vec![(1, 1.0)]);
    }

    #[test]
    fn feasibility_check_respects_bounds() {
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_bounded_var("x", 2.0);
        p.add_constraint(&[(x, 1.0)], Relation::Ge, 1.0);
        assert!(p.is_feasible(&[1.5], 1e-9));
        assert!(!p.is_feasible(&[2.5], 1e-9)); // violates upper bound
        assert!(!p.is_feasible(&[0.5], 1e-9)); // violates constraint
        assert!(!p.is_feasible(&[-0.1], 1e-9)); // violates lower bound
    }

    #[test]
    fn objective_value_is_dot_product() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var("x");
        let y = p.add_var("y");
        p.set_objective(x, 2.0);
        p.set_objective(y, -1.0);
        assert_eq!(p.objective_value(&[3.0, 4.0]), 2.0);
    }
}
