//! Exact rational-arithmetic certifying oracle (DESIGN.md §5d).
//!
//! Three layers, smallest to largest:
//!
//! * [`rational`] — exact fractions: `i128` fast path, overflow-checked
//!   promotion to an in-crate big integer (no external dependencies).
//! * [`simplex`] / [`milp`] — an exact two-phase bounded-variable simplex
//!   with Bland's rule, plus deterministic branch-and-bound over it.
//!   These *re-solve* harness-sized instances to give ground truth.
//! * [`certificate`] — KKT certificates evaluated exactly on float
//!   solver output, so instances too big to re-solve exactly still get
//!   their answers *certified* against documented tolerances.

pub mod certificate;
pub mod milp;
pub mod rational;
pub mod simplex;

pub use certificate::{
    verify_certificate, verify_certificate_with, verify_exact, verify_milp_certificate,
    verify_milp_certificate_with, verify_parts, CertTolerances, CertificateError,
};
pub use milp::{solve_exact_milp, ExactMilpSolution};
pub use rational::Rational;
pub use simplex::{solve_exact, solve_exact_with, ExactSolution};
