//! Exact rational arithmetic for the certifying oracle.
//!
//! [`Rational`] is an always-reduced fraction whose numerator and
//! denominator live in `i128` on the fast path and promote — via
//! overflow-*checked* operations, never wrapping — to a small in-crate
//! big-integer ([`Big`]) when a product or sum no longer fits. No external
//! crates (matching the workspace's offline compat-shim policy): the big
//! path needs only magnitude add/sub/mul, comparison, shifts, and binary
//! GCD, all of which fit in a few hundred lines. Division of big integers
//! is deliberately *not* implemented — rational division is
//! multiply-by-reciprocal, reduction uses binary GCD, and `floor` (needed
//! by exact branch-and-bound) is recovered from a float approximation
//! that is then *verified* exactly and nudged, so it is never trusted.
//!
//! Every finite `f64` is a dyadic rational (`m · 2^e` with integer `m`),
//! so [`Rational::from_f64`] is exact: float solver output converts into
//! this type without any rounding, which is what makes the certificate
//! layer's "evaluate exactly, compare against a documented tolerance"
//! contract meaningful.

use std::cmp::Ordering;
use std::fmt;

// ---------------------------------------------------------------------------
// Big: sign + little-endian u64 magnitude
// ---------------------------------------------------------------------------

/// Arbitrary-precision signed integer. Magnitude is little-endian `u64`
/// limbs with no trailing zero limbs; zero is the empty magnitude with
/// `neg == false`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) struct Big {
    neg: bool,
    mag: Vec<u64>,
}

impl Big {
    fn zero() -> Big {
        Big { neg: false, mag: Vec::new() }
    }

    fn from_i128(v: i128) -> Big {
        let neg = v < 0;
        let m = v.unsigned_abs();
        let mut mag = vec![m as u64, (m >> 64) as u64];
        while mag.last() == Some(&0) {
            mag.pop();
        }
        Big { neg: neg && !mag.is_empty(), mag }
    }

    fn is_zero(&self) -> bool {
        self.mag.is_empty()
    }

    /// `Some(v)` when the value fits an `i128` (used to demote back to the
    /// fast path after a big-path operation).
    fn to_i128(&self) -> Option<i128> {
        match self.mag.len() {
            0 => Some(0),
            1 => {
                let m = self.mag[0] as i128;
                Some(if self.neg { -m } else { m })
            }
            2 => {
                let m = (self.mag[0] as u128) | ((self.mag[1] as u128) << 64);
                if self.neg {
                    (m <= 1u128 << 127).then(|| (m as i128).wrapping_neg())
                } else {
                    (m < 1u128 << 127).then_some(m as i128)
                }
            }
            _ => None,
        }
    }

    fn bits(&self) -> u64 {
        match self.mag.last() {
            None => 0,
            Some(&top) => (self.mag.len() as u64 - 1) * 64 + (64 - top.leading_zeros() as u64),
        }
    }

    fn cmp_mag(a: &[u64], b: &[u64]) -> Ordering {
        if a.len() != b.len() {
            return a.len().cmp(&b.len());
        }
        for i in (0..a.len()).rev() {
            if a[i] != b[i] {
                return a[i].cmp(&b[i]);
            }
        }
        Ordering::Equal
    }

    fn add_mag(a: &[u64], b: &[u64]) -> Vec<u64> {
        let (long, short) = if a.len() >= b.len() { (a, b) } else { (b, a) };
        let mut out = Vec::with_capacity(long.len() + 1);
        let mut carry = 0u64;
        for (i, &limb) in long.iter().enumerate() {
            let s = limb as u128 + *short.get(i).unwrap_or(&0) as u128 + carry as u128;
            out.push(s as u64);
            carry = (s >> 64) as u64;
        }
        if carry != 0 {
            out.push(carry);
        }
        out
    }

    /// `a - b`, requiring `a >= b` in magnitude.
    fn sub_mag(a: &[u64], b: &[u64]) -> Vec<u64> {
        debug_assert!(Big::cmp_mag(a, b) != Ordering::Less);
        let mut out = Vec::with_capacity(a.len());
        let mut borrow = 0i128;
        for (i, &limb) in a.iter().enumerate() {
            let d = limb as i128 - *b.get(i).unwrap_or(&0) as i128 - borrow;
            if d < 0 {
                out.push((d + (1i128 << 64)) as u64);
                borrow = 1;
            } else {
                out.push(d as u64);
                borrow = 0;
            }
        }
        while out.last() == Some(&0) {
            out.pop();
        }
        out
    }

    fn mul_mag(a: &[u64], b: &[u64]) -> Vec<u64> {
        if a.is_empty() || b.is_empty() {
            return Vec::new();
        }
        let mut out = vec![0u64; a.len() + b.len()];
        for (i, &ai) in a.iter().enumerate() {
            let mut carry = 0u128;
            for (j, &bj) in b.iter().enumerate() {
                let cur = out[i + j] as u128 + ai as u128 * bj as u128 + carry;
                out[i + j] = cur as u64;
                carry = cur >> 64;
            }
            let mut k = i + b.len();
            while carry != 0 {
                let cur = out[k] as u128 + carry;
                out[k] = cur as u64;
                carry = cur >> 64;
                k += 1;
            }
        }
        while out.last() == Some(&0) {
            out.pop();
        }
        out
    }

    fn shr1_mag(mag: &mut Vec<u64>) {
        let mut carry = 0u64;
        for limb in mag.iter_mut().rev() {
            let new_carry = *limb & 1;
            *limb = (*limb >> 1) | (carry << 63);
            carry = new_carry;
        }
        while mag.last() == Some(&0) {
            mag.pop();
        }
    }

    fn shl_bits_mag(mag: &[u64], bits: u64) -> Vec<u64> {
        if mag.is_empty() {
            return Vec::new();
        }
        let limbs = (bits / 64) as usize;
        let rem = bits % 64;
        let mut out = vec![0u64; limbs];
        if rem == 0 {
            out.extend_from_slice(mag);
        } else {
            let mut carry = 0u64;
            for &limb in mag {
                out.push((limb << rem) | carry);
                carry = limb >> (64 - rem);
            }
            if carry != 0 {
                out.push(carry);
            }
        }
        out
    }

    fn trailing_zeros_mag(mag: &[u64]) -> u64 {
        for (i, &limb) in mag.iter().enumerate() {
            if limb != 0 {
                return i as u64 * 64 + limb.trailing_zeros() as u64;
            }
        }
        0
    }

    fn add(&self, other: &Big) -> Big {
        if self.neg == other.neg {
            let mag = Big::add_mag(&self.mag, &other.mag);
            Big { neg: self.neg && !mag.is_empty(), mag }
        } else {
            match Big::cmp_mag(&self.mag, &other.mag) {
                Ordering::Equal => Big::zero(),
                Ordering::Greater => {
                    let mag = Big::sub_mag(&self.mag, &other.mag);
                    Big { neg: self.neg && !mag.is_empty(), mag }
                }
                Ordering::Less => {
                    let mag = Big::sub_mag(&other.mag, &self.mag);
                    Big { neg: other.neg && !mag.is_empty(), mag }
                }
            }
        }
    }

    fn mul(&self, other: &Big) -> Big {
        let mag = Big::mul_mag(&self.mag, &other.mag);
        Big { neg: (self.neg != other.neg) && !mag.is_empty(), mag }
    }

    fn neg(&self) -> Big {
        Big { neg: !self.neg && !self.is_zero(), mag: self.mag.clone() }
    }

    fn cmp(&self, other: &Big) -> Ordering {
        match (self.neg, other.neg) {
            (false, true) => Ordering::Greater,
            (true, false) => Ordering::Less,
            (false, false) => Big::cmp_mag(&self.mag, &other.mag),
            (true, true) => Big::cmp_mag(&other.mag, &self.mag),
        }
    }

    /// Binary GCD on magnitudes (no division needed anywhere).
    fn gcd_mag(a: &[u64], b: &[u64]) -> Vec<u64> {
        if a.is_empty() {
            return b.to_vec();
        }
        if b.is_empty() {
            return a.to_vec();
        }
        let za = Big::trailing_zeros_mag(a);
        let zb = Big::trailing_zeros_mag(b);
        let shift = za.min(zb);
        let mut u = a.to_vec();
        let mut v = b.to_vec();
        for _ in 0..za {
            Big::shr1_mag(&mut u);
        }
        for _ in 0..zb {
            Big::shr1_mag(&mut v);
        }
        loop {
            match Big::cmp_mag(&u, &v) {
                Ordering::Equal => break,
                Ordering::Less => std::mem::swap(&mut u, &mut v),
                Ordering::Greater => {}
            }
            u = Big::sub_mag(&u, &v);
            let tz = Big::trailing_zeros_mag(&u);
            for _ in 0..tz {
                Big::shr1_mag(&mut u);
            }
            if u.is_empty() {
                u = v.clone();
                break;
            }
        }
        Big::shl_bits_mag(&u, shift)
    }

    /// Approximate value as `(m, e)` with the magnitude's top 64 bits in
    /// `m` and the discarded low-bit count in `e`: value ≈ `m · 2^e`.
    /// Splitting mantissa and exponent keeps ratios of huge integers
    /// computable without overflowing `f64` range.
    fn to_f64_exp(&self) -> (f64, i64) {
        let bits = self.bits();
        if bits == 0 {
            return (0.0, 0);
        }
        let take = bits.min(64);
        let shift = bits - take; // bits discarded from the bottom
        let mut top = 0u64;
        for k in 0..take {
            let bit_index = shift + k;
            let limb = (bit_index / 64) as usize;
            let off = bit_index % 64;
            if self.mag[limb] >> off & 1 == 1 {
                top |= 1 << k;
            }
        }
        let val = if self.neg { -(top as f64) } else { top as f64 };
        (val, shift as i64)
    }

    fn to_f64(&self) -> f64 {
        let (m, e) = self.to_f64_exp();
        m * pow2(e)
    }
}

// ---------------------------------------------------------------------------
// Int: i128 fast path with checked promotion
// ---------------------------------------------------------------------------

/// Integer that is an `i128` until a checked operation overflows, then a
/// [`Big`]. Operations demote back when the result fits, so a transient
/// blow-up (common mid-reduction) does not poison later arithmetic.
#[derive(Clone, Debug)]
pub(crate) enum Int {
    S(i128),
    B(Big),
}

impl Int {
    fn big(&self) -> Big {
        match self {
            Int::S(v) => Big::from_i128(*v),
            Int::B(b) => b.clone(),
        }
    }

    fn normalize(b: Big) -> Int {
        match b.to_i128() {
            Some(v) => Int::S(v),
            None => Int::B(b),
        }
    }

    fn is_zero(&self) -> bool {
        match self {
            Int::S(v) => *v == 0,
            Int::B(b) => b.is_zero(),
        }
    }

    fn is_negative(&self) -> bool {
        match self {
            Int::S(v) => *v < 0,
            Int::B(b) => b.neg,
        }
    }

    fn add(&self, other: &Int) -> Int {
        if let (Int::S(a), Int::S(b)) = (self, other) {
            if let Some(s) = a.checked_add(*b) {
                return Int::S(s);
            }
        }
        Int::normalize(self.big().add(&other.big()))
    }

    fn sub(&self, other: &Int) -> Int {
        if let (Int::S(a), Int::S(b)) = (self, other) {
            if let Some(s) = a.checked_sub(*b) {
                return Int::S(s);
            }
        }
        Int::normalize(self.big().add(&other.big().neg()))
    }

    fn mul(&self, other: &Int) -> Int {
        if let (Int::S(a), Int::S(b)) = (self, other) {
            if let Some(s) = a.checked_mul(*b) {
                return Int::S(s);
            }
        }
        Int::normalize(self.big().mul(&other.big()))
    }

    fn neg(&self) -> Int {
        match self {
            Int::S(v) => match v.checked_neg() {
                Some(n) => Int::S(n),
                None => Int::normalize(Big::from_i128(*v).neg()),
            },
            Int::B(b) => Int::normalize(b.neg()),
        }
    }

    fn cmp(&self, other: &Int) -> Ordering {
        if let (Int::S(a), Int::S(b)) = (self, other) {
            return a.cmp(b);
        }
        self.big().cmp(&other.big())
    }

    fn gcd(&self, other: &Int) -> Int {
        if let (Int::S(a), Int::S(b)) = (self, other) {
            let (mut x, mut y) = (a.unsigned_abs(), b.unsigned_abs());
            while y != 0 {
                let t = x % y;
                x = y;
                y = t;
            }
            if x <= i128::MAX as u128 {
                return Int::S(x as i128);
            }
        }
        Int::normalize(Big {
            neg: false,
            mag: Big::gcd_mag(&self.big().mag, &other.big().mag),
        })
    }

    /// Exact division by a known divisor (`other` divides `self` exactly —
    /// only ever called with a GCD of `self`). On the big path this is a
    /// bit-at-a-time reconstruction to avoid implementing long division.
    fn div_exact(&self, other: &Int) -> Int {
        if let (Int::S(a), Int::S(b)) = (self, other) {
            debug_assert!(*b != 0 && a % b == 0);
            return Int::S(a / b);
        }
        let a = self.big();
        let b = other.big();
        debug_assert!(!b.is_zero());
        // Binary long division on magnitudes: standard shift-and-subtract.
        let mut quotient = vec![0u64; a.mag.len()];
        let mut rem: Vec<u64> = Vec::new();
        let total_bits = a.bits();
        for bit in (0..total_bits).rev() {
            // rem = rem * 2 + bit(a, bit)
            rem = Big::shl_bits_mag(&rem, 1);
            let limb = (bit / 64) as usize;
            if a.mag[limb] >> (bit % 64) & 1 == 1 {
                if rem.is_empty() {
                    rem.push(1);
                } else {
                    rem[0] |= 1;
                }
            }
            if Big::cmp_mag(&rem, &b.mag) != Ordering::Less {
                rem = Big::sub_mag(&rem, &b.mag);
                quotient[(bit / 64) as usize] |= 1 << (bit % 64);
            }
        }
        debug_assert!(rem.is_empty(), "div_exact called with non-divisor");
        while quotient.last() == Some(&0) {
            quotient.pop();
        }
        let neg = (a.neg != b.neg) && !quotient.is_empty();
        Int::normalize(Big { neg, mag: quotient })
    }

}

// ---------------------------------------------------------------------------
// Rational
// ---------------------------------------------------------------------------

/// An exact rational number: reduced fraction, positive denominator.
#[derive(Clone, Debug)]
pub struct Rational {
    num: Int,
    den: Int,
}

impl Rational {
    pub const ZERO: Rational = Rational { num: Int::S(0), den: Int::S(1) };
    pub const ONE: Rational = Rational { num: Int::S(1), den: Int::S(1) };

    pub fn from_int(v: i64) -> Rational {
        Rational { num: Int::S(v as i128), den: Int::S(1) }
    }

    /// `n / d`; panics on `d == 0`.
    pub fn ratio(n: i64, d: i64) -> Rational {
        assert!(d != 0, "zero denominator");
        Rational::reduced(Int::S(n as i128), Int::S(d as i128))
    }

    /// Exact conversion of a finite float (every finite `f64` is a dyadic
    /// rational). Returns `None` for NaN / infinities.
    pub fn from_f64(v: f64) -> Option<Rational> {
        if !v.is_finite() {
            return None;
        }
        if v == 0.0 {
            return Some(Rational::ZERO);
        }
        // v = m * 2^e exactly, with |m| < 2^53.
        let bits = v.to_bits();
        let sign = if bits >> 63 == 1 { -1i128 } else { 1 };
        let exp_field = ((bits >> 52) & 0x7ff) as i64;
        let frac = (bits & ((1u64 << 52) - 1)) as i128;
        let (m, e) = if exp_field == 0 {
            (frac, -1074i64) // subnormal
        } else {
            (frac | (1 << 52), exp_field - 1075)
        };
        let m = sign * m;
        Some(if e >= 0 {
            if e < 74 {
                // 53 significant bits + up to 74 shift fits i128.
                Rational { num: Int::S(m << e), den: Int::S(1) }
            } else {
                let mag = Big::shl_bits_mag(&Big::from_i128(m).mag, e as u64);
                Rational {
                    num: Int::normalize(Big { neg: m < 0, mag }),
                    den: Int::S(1),
                }
            }
        } else {
            let shift = -e;
            let den = if shift < 127 {
                Int::S(1i128 << shift)
            } else {
                Int::normalize(Big {
                    neg: false,
                    mag: Big::shl_bits_mag(&[1], shift as u64),
                })
            };
            // m is odd or reduction handles shared powers of two.
            Rational::reduced(Int::S(m), den)
        })
    }

    fn reduced(mut num: Int, mut den: Int) -> Rational {
        if num.is_zero() {
            return Rational::ZERO;
        }
        if den.is_negative() {
            num = num.neg();
            den = den.neg();
        }
        let g = num.gcd(&den);
        if g.cmp(&Int::S(1)) == Ordering::Greater {
            num = num.div_exact(&g);
            den = den.div_exact(&g);
        }
        Rational { num, den }
    }

    pub fn is_zero(&self) -> bool {
        self.num.is_zero()
    }

    pub fn is_negative(&self) -> bool {
        self.num.is_negative()
    }

    pub fn is_positive(&self) -> bool {
        !self.num.is_zero() && !self.num.is_negative()
    }

    /// True when the value is an integer (denominator 1).
    pub fn is_integer(&self) -> bool {
        matches!(self.den, Int::S(1))
    }

    pub fn abs(&self) -> Rational {
        if self.is_negative() {
            self.neg_ref()
        } else {
            self.clone()
        }
    }

    fn neg_ref(&self) -> Rational {
        Rational { num: self.num.neg(), den: self.den.clone() }
    }

    pub fn add_ref(&self, other: &Rational) -> Rational {
        // a/b + c/d = (ad + cb) / bd
        let num = self.num.mul(&other.den).add(&other.num.mul(&self.den));
        let den = self.den.mul(&other.den);
        Rational::reduced(num, den)
    }

    pub fn sub_ref(&self, other: &Rational) -> Rational {
        let num = self.num.mul(&other.den).sub(&other.num.mul(&self.den));
        let den = self.den.mul(&other.den);
        Rational::reduced(num, den)
    }

    pub fn mul_ref(&self, other: &Rational) -> Rational {
        Rational::reduced(self.num.mul(&other.num), self.den.mul(&other.den))
    }

    pub fn div_ref(&self, other: &Rational) -> Rational {
        assert!(!other.is_zero(), "division by zero rational");
        Rational::reduced(self.num.mul(&other.den), self.den.mul(&other.num))
    }

    pub fn recip(&self) -> Rational {
        assert!(!self.is_zero(), "reciprocal of zero");
        Rational::reduced(self.den.clone(), self.num.clone())
    }

    /// Approximate float value (exact when both parts fit `f64` exactly).
    pub fn to_f64(&self) -> f64 {
        match (&self.num, &self.den) {
            (Int::S(n), Int::S(d)) => {
                let (nf, df) = (*n as f64, *d as f64);
                if nf.is_finite() && df.is_finite() && df != 0.0 {
                    return nf / df;
                }
                // i128 values beyond f64 range: fall through to the
                // exponent-tracked path.
                Big::from_i128(*n).to_f64() / Big::from_i128(*d).to_f64()
            }
            _ => {
                // (nm·2^ne) / (dm·2^de) = (nm/dm)·2^(ne−de); mantissas are
                // 64-bit scale so the ratio never over/underflows, only
                // the final power-of-two scaling can (correctly) saturate.
                let (nm, ne) = self.num.big().to_f64_exp();
                let (dm, de) = self.den.big().to_f64_exp();
                if dm == 0.0 {
                    return 0.0; // unreachable: denominators are positive
                }
                (nm / dm) * pow2(ne - de)
            }
        }
    }

    /// Largest integer `k` with `k <= self`, as a `Rational`. Uses the
    /// float approximation as a *candidate* and verifies/nudges exactly,
    /// so the result is always correct even when `to_f64` rounded.
    pub fn floor(&self) -> Rational {
        if self.is_integer() {
            return self.clone();
        }
        let mut k = self.to_f64().floor();
        if !k.is_finite() {
            k = 0.0;
        }
        let mut cand = Rational::from_f64(k).expect("finite floor candidate");
        // cand must satisfy cand <= self < cand + 1; nudge until it does.
        let one = Rational::ONE;
        while cand.cmp_ref(self) == Ordering::Greater {
            cand = cand.sub_ref(&one);
        }
        while cand.add_ref(&one).cmp_ref(self) != Ordering::Greater {
            cand = cand.add_ref(&one);
        }
        cand
    }

    pub fn ceil(&self) -> Rational {
        if self.is_integer() {
            return self.clone();
        }
        self.floor().add_ref(&Rational::ONE)
    }

    pub fn cmp_ref(&self, other: &Rational) -> Ordering {
        // a/b vs c/d  <=>  ad vs cb (b, d > 0).
        self.num.mul(&other.den).cmp(&other.num.mul(&self.den))
    }

    pub fn min_ref(&self, other: &Rational) -> Rational {
        if self.cmp_ref(other) == Ordering::Greater {
            other.clone()
        } else {
            self.clone()
        }
    }

    /// True when the fast `i128` representation is in use for both parts.
    pub fn is_small(&self) -> bool {
        matches!((&self.num, &self.den), (Int::S(_), Int::S(_)))
    }
}

/// `2^e` as `f64`, saturating to 0 / ±∞ outside the representable range
/// (`exp2` handles that; the clamp just avoids precision loss in the
/// `i64 → f64` cast for absurd exponents).
fn pow2(e: i64) -> f64 {
    (e.clamp(-1_100, 1_100) as f64).exp2()
}

impl PartialEq for Rational {
    fn eq(&self, other: &Self) -> bool {
        self.cmp_ref(other) == Ordering::Equal
    }
}
impl Eq for Rational {}

impl PartialOrd for Rational {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Rational {
    fn cmp(&self, other: &Self) -> Ordering {
        self.cmp_ref(other)
    }
}

impl fmt::Display for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (&self.num, &self.den) {
            (Int::S(n), Int::S(1)) => write!(f, "{n}"),
            (Int::S(n), Int::S(d)) => write!(f, "{n}/{d}"),
            _ => write!(f, "{:.6e} (big)", self.to_f64()),
        }
    }
}

macro_rules! impl_binop {
    ($trait:ident, $method:ident, $inner:ident) => {
        impl std::ops::$trait for &Rational {
            type Output = Rational;
            fn $method(self, rhs: &Rational) -> Rational {
                self.$inner(rhs)
            }
        }
        impl std::ops::$trait for Rational {
            type Output = Rational;
            fn $method(self, rhs: Rational) -> Rational {
                self.$inner(&rhs)
            }
        }
    };
}
impl_binop!(Add, add, add_ref);
impl_binop!(Sub, sub, sub_ref);
impl_binop!(Mul, mul, mul_ref);
impl_binop!(Div, div, div_ref);

impl std::ops::Neg for &Rational {
    type Output = Rational;
    fn neg(self) -> Rational {
        self.neg_ref()
    }
}
impl std::ops::Neg for Rational {
    type Output = Rational;
    fn neg(self) -> Rational {
        self.neg_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i64, d: i64) -> Rational {
        Rational::ratio(n, d)
    }

    #[test]
    fn basic_arithmetic_reduces() {
        assert_eq!(r(1, 2).add_ref(&r(1, 3)), r(5, 6));
        assert_eq!(r(2, 4), r(1, 2));
        assert_eq!(r(1, 2).mul_ref(&r(2, 3)), r(1, 3));
        assert_eq!(r(1, 2).sub_ref(&r(1, 2)), Rational::ZERO);
        assert_eq!(r(3, 4).div_ref(&r(3, 2)), r(1, 2));
        assert_eq!(r(-2, -4), r(1, 2));
        assert_eq!(r(2, -4), r(-1, 2));
    }

    #[test]
    fn ordering() {
        assert!(r(1, 3) < r(1, 2));
        assert!(r(-1, 2) < r(1, 1_000_000));
        assert_eq!(r(7, 7).cmp_ref(&Rational::ONE), Ordering::Equal);
    }

    #[test]
    fn from_f64_is_exact() {
        for v in [0.5, 0.1, 1e-9, 123456.789, -3.25, 1e300, 5e-324, -0.0] {
            let q = Rational::from_f64(v).unwrap();
            assert_eq!(q.to_f64(), v, "round trip through rational must be exact for {v}");
        }
        assert_eq!(Rational::from_f64(0.25).unwrap(), r(1, 4));
        assert_eq!(Rational::from_f64(-1.5).unwrap(), r(-3, 2));
        assert!(Rational::from_f64(f64::NAN).is_none());
        assert!(Rational::from_f64(f64::INFINITY).is_none());
    }

    #[test]
    fn overflow_promotes_and_stays_correct() {
        // (2^100 / 3) * 3 == 2^100, forced through the big path.
        let big = Rational::from_f64((2.0f64).powi(100)).unwrap();
        let third = big.div_ref(&Rational::from_int(3));
        assert!(!third.is_small() || third.is_small()); // just exercise it
        let back = third.mul_ref(&Rational::from_int(3));
        assert_eq!(back, big);

        // Repeated squaring overflows i128 quickly; equality must hold
        // exactly against the f64 powers (which are exact powers of two).
        let mut q = Rational::from_f64(2.0f64.powi(60)).unwrap();
        q = q.mul_ref(&q); // 2^120, still small
        assert!(q.is_small());
        q = q.mul_ref(&q); // 2^240, must promote
        assert!(!q.is_small());
        assert_eq!(q.to_f64(), 2.0f64.powi(240));
        // And demotion: dividing back down returns to the fast path.
        let down = q.div_ref(&Rational::from_f64(2.0f64.powi(200)).unwrap());
        assert!(down.is_small());
        assert_eq!(down, Rational::from_f64(2.0f64.powi(40)).unwrap());
    }

    #[test]
    fn big_addition_with_mixed_signs() {
        let a = Rational::from_f64(2.0f64.powi(200)).unwrap();
        let b = Rational::from_f64(2.0f64.powi(199)).unwrap();
        let d = a.sub_ref(&b);
        assert_eq!(d, b);
        assert_eq!(b.sub_ref(&a), b.neg_ref());
        assert_eq!(a.add_ref(&a.neg_ref()), Rational::ZERO);
    }

    #[test]
    fn floor_and_ceil() {
        assert_eq!(r(7, 2).floor(), Rational::from_int(3));
        assert_eq!(r(7, 2).ceil(), Rational::from_int(4));
        assert_eq!(r(-7, 2).floor(), Rational::from_int(-4));
        assert_eq!(r(-7, 2).ceil(), Rational::from_int(-3));
        assert_eq!(Rational::from_int(5).floor(), Rational::from_int(5));
        // A value whose float image rounds: (2^60 + 1) / 1 is integral,
        // but (2^60+1)/2 floors to 2^59 exactly despite float rounding.
        let v = Rational::from_f64(2.0f64.powi(60)).unwrap()
            .add_ref(&Rational::ONE)
            .div_ref(&Rational::from_int(2));
        assert_eq!(v.floor(), Rational::from_f64(2.0f64.powi(59)).unwrap());
    }

    #[test]
    fn gcd_on_big_path() {
        // gcd(2^130 * 3, 2^130 * 5) reduction: (3·2^130)/(5·2^130) = 3/5.
        let p130 = {
            let mut q = Rational::from_f64(2.0f64.powi(65)).unwrap();
            q = q.mul_ref(&q);
            q
        };
        let n = p130.mul_ref(&Rational::from_int(3));
        let d = p130.mul_ref(&Rational::from_int(5));
        assert_eq!(n.div_ref(&d), r(3, 5));
    }
}
