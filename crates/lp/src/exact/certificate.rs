//! Optimality certificates, evaluated in exact arithmetic.
//!
//! The float kernels emit `(primal values, dual values)` pairs; this
//! module re-derives every optimality condition from those floats using
//! [`Rational`] arithmetic — the *evaluation* carries zero round-off, so
//! the only slack anywhere is the documented tolerances the float data is
//! allowed (see [`CertTolerances`]). A passing certificate upgrades
//! "the two float kernels agree" to "this answer satisfies the KKT
//! conditions of the model as written, within τ".
//!
//! For LPs the certificate is the classic triple:
//!
//! 1. **Primal feasibility** — bounds and rows hold within
//!    `τ_feas · (1 + |rhs|)`.
//! 2. **Dual feasibility** — row duals carry the sign their relation
//!    demands (in minimize form: `Le ⇒ y ≤ 0`, `Ge ⇒ y ≥ 0`, `Eq` free),
//!    and reduced costs of variables with *no* upper bound are
//!    nonnegative within a scaled `τ_dual`.
//! 3. **Complementary slackness / zero gap** — the duality gap
//!    `c·x − (y·b + Σ_j min(0, z_j)·u_j)` is a sum of products that are
//!    individually nonnegative under (1) and (2), so a single check
//!    `|gap| ≤ τ_gap · (1 + |c·x|)` bounds every slackness product at
//!    once.
//!
//! For MILPs the incumbent is certified (integrality + feasibility +
//! objective consistency) and its optimality is *bounded* against a
//! caller-supplied relaxation bound — typically the exact simplex's
//! rational root objective, which is a valid bound by construction. Big
//! instances thus get their float answers certified without an exact
//! re-solve, exactly as the differential harness needs.

use super::rational::Rational;
use super::simplex::{exact, ExactSolution};
use crate::problem::Problem;
use crate::solution::Solution;
use crate::{Relation, Sense, VarKind};
use std::cmp::Ordering;
use std::fmt;

/// Why a certificate was rejected. Values are reported as floats for
/// display; the comparisons that produced them were exact.
#[derive(Debug, Clone, PartialEq)]
pub enum CertificateError {
    /// The solution carries no duals (MILP solutions don't) but an LP
    /// certificate was requested.
    MissingDuals,
    /// Primal / dual vector length does not match the model.
    WrongShape { expected: usize, got: usize },
    /// A value in the certificate data is NaN or infinite.
    NonFinite { what: &'static str, index: usize },
    /// `x_j` outside `[0, u_j]` beyond tolerance.
    BoundViolation { var: usize, value: f64, bound: f64 },
    /// Row residual beyond `τ_feas · (1 + |rhs|)`.
    RowViolation { row: usize, violation: f64 },
    /// A row dual with the wrong sign for its relation.
    DualSignViolation { row: usize, dual: f64 },
    /// Negative reduced cost on a variable with no upper bound.
    ReducedCostViolation { var: usize, reduced_cost: f64 },
    /// `|primal − dual objective|` beyond `τ_gap · (1 + |primal|)`.
    DualityGap { primal: f64, dual_bound: f64 },
    /// An integer variable's value is fractional beyond `τ_int`.
    NonIntegral { var: usize, value: f64 },
    /// Reported objective disagrees with `c·x` recomputed exactly.
    ObjectiveMismatch { reported: f64, computed: f64 },
    /// Incumbent objective beats the claimed relaxation bound.
    BoundProofViolation { incumbent: f64, bound: f64 },
}

impl fmt::Display for CertificateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CertificateError::MissingDuals => write!(f, "solution has no duals"),
            CertificateError::WrongShape { expected, got } => {
                write!(f, "certificate vector has length {got}, model wants {expected}")
            }
            CertificateError::NonFinite { what, index } => {
                write!(f, "non-finite {what} at index {index}")
            }
            CertificateError::BoundViolation { var, value, bound } => {
                write!(f, "var {var} = {value} violates bound {bound}")
            }
            CertificateError::RowViolation { row, violation } => {
                write!(f, "row {row} violated by {violation}")
            }
            CertificateError::DualSignViolation { row, dual } => {
                write!(f, "row {row} dual {dual} has the wrong sign")
            }
            CertificateError::ReducedCostViolation { var, reduced_cost } => {
                write!(f, "var {var} (no upper bound) has reduced cost {reduced_cost} < 0")
            }
            CertificateError::DualityGap { primal, dual_bound } => {
                write!(f, "duality gap: primal {primal} vs dual bound {dual_bound}")
            }
            CertificateError::NonIntegral { var, value } => {
                write!(f, "integer var {var} = {value} is fractional")
            }
            CertificateError::ObjectiveMismatch { reported, computed } => {
                write!(f, "reported objective {reported} != computed {computed}")
            }
            CertificateError::BoundProofViolation { incumbent, bound } => {
                write!(f, "incumbent {incumbent} beats relaxation bound {bound}")
            }
        }
    }
}

impl std::error::Error for CertificateError {}

/// Documented tolerances the float certificate data is allowed. All
/// comparisons happen in exact arithmetic against these values; the
/// defaults are the ones the differential campaign and the golden suites
/// pin (`τ_feas = 1e-6`, `τ_dual = 1e-7`, `τ_gap = 1e-6`,
/// `τ_int = 1e-6` — the kernel's own `INT_EPS`).
#[derive(Debug, Clone)]
pub struct CertTolerances {
    /// Row / bound violation, scaled by `1 + |rhs|` (resp. `1 + u`).
    pub feas: f64,
    /// Dual sign slack and reduced-cost slack, scaled by the term's
    /// magnitude sum.
    pub dual: f64,
    /// Duality-gap slack, scaled by `1 + |objective|`.
    pub gap: f64,
    /// Integrality slack for MILP incumbents.
    pub int: f64,
}

impl Default for CertTolerances {
    fn default() -> Self {
        CertTolerances {
            feas: 1e-6,
            dual: 1e-7,
            gap: 1e-6,
            int: 1e-6,
        }
    }
}

/// Zero tolerance everywhere: what the exact oracle's own output must
/// satisfy.
impl CertTolerances {
    pub fn strict() -> Self {
        CertTolerances { feas: 0.0, dual: 0.0, gap: 0.0, int: 0.0 }
    }
}

/// Verify an LP optimality certificate (see module docs) with default
/// tolerances. `solution` must carry duals.
pub fn verify_certificate(problem: &Problem, solution: &Solution) -> Result<(), CertificateError> {
    verify_certificate_with(problem, solution, &CertTolerances::default())
}

/// [`verify_certificate`] with explicit tolerances.
pub fn verify_certificate_with(
    problem: &Problem,
    solution: &Solution,
    tol: &CertTolerances,
) -> Result<(), CertificateError> {
    let duals = solution.duals.as_ref().ok_or(CertificateError::MissingDuals)?;
    verify_parts(problem, &solution.values, duals, tol)
}

/// Verify a certificate given as raw primal/dual slices (the
/// `(problem, primal, dual)` form).
pub fn verify_parts(
    problem: &Problem,
    primal: &[f64],
    dual: &[f64],
    tol: &CertTolerances,
) -> Result<(), CertificateError> {
    let n = problem.vars.len();
    let m = problem.constraints.len();
    if primal.len() != n {
        return Err(CertificateError::WrongShape { expected: n, got: primal.len() });
    }
    if dual.len() != m {
        return Err(CertificateError::WrongShape { expected: m, got: dual.len() });
    }
    let x = rationalize(primal, "primal value")?;
    let y_rep = rationalize(dual, "dual value")?;

    let sigma = match problem.sense {
        Sense::Minimize => Rational::ONE,
        Sense::Maximize => -Rational::ONE,
    };
    // Minimize-form duals and costs.
    let y: Vec<Rational> = y_rep.iter().map(|v| sigma.mul_ref(v)).collect();

    let t_feas = Rational::from_f64(tol.feas).expect("finite tolerance");
    let t_dual = Rational::from_f64(tol.dual).expect("finite tolerance");
    let t_gap = Rational::from_f64(tol.gap).expect("finite tolerance");

    check_primal(problem, &x, &t_feas)?;

    // Dual sign feasibility per relation (minimize form).
    for (i, c) in problem.constraints.iter().enumerate() {
        let ok = match c.relation {
            Relation::Le => y[i].cmp_ref(&t_feas_scale(&t_dual, &y[i])) != Ordering::Greater,
            Relation::Ge => (-&y[i]).cmp_ref(&t_feas_scale(&t_dual, &y[i])) != Ordering::Greater,
            Relation::Eq => true,
        };
        if !ok {
            return Err(CertificateError::DualSignViolation { row: i, dual: dual[i] });
        }
    }

    // Reduced costs z_j = σc_j − Σ_i y_i a_ij, with the per-variable
    // magnitude scale Σ|y_i a_ij| for the tolerance.
    let mut z = Vec::with_capacity(n);
    let mut z_scale = Vec::with_capacity(n);
    let mut col_terms: Vec<Vec<(usize, Rational)>> = vec![Vec::new(); n];
    for (i, c) in problem.constraints.iter().enumerate() {
        for &(j, coeff) in &c.terms {
            col_terms[j].push((i, exact_or(coeff)?));
        }
    }
    for (j, terms) in col_terms.iter().enumerate() {
        let cj = sigma.mul_ref(&exact_or(problem.objective[j])?);
        let mut zj = cj.clone();
        let mut scale = cj.abs();
        for (i, a) in terms {
            let prod = y[*i].mul_ref(a);
            scale = scale.add_ref(&prod.abs());
            zj = zj.sub_ref(&prod);
        }
        z.push(zj);
        z_scale.push(scale);
    }

    // Dual feasibility for box-free variables: z_j ≥ −τ·(1 + scale).
    for j in 0..n {
        if problem.vars[j].upper.is_finite() {
            continue;
        }
        let eps = t_dual.mul_ref(&Rational::ONE.add_ref(&z_scale[j]));
        if (-&z[j]).cmp_ref(&eps) == Ordering::Greater {
            return Err(CertificateError::ReducedCostViolation {
                var: j,
                reduced_cost: z[j].to_f64(),
            });
        }
    }

    // Duality gap. dual_obj = y·b + Σ_{u_j finite} min(0, z_j)·u_j;
    // box-free variables contribute nothing (their z was just checked
    // ≥ −ε, and a valid bound treats the ε as part of the gap slack).
    let mut primal_obj = Rational::ZERO;
    for (j, xj) in x.iter().enumerate() {
        let cj = sigma.mul_ref(&exact_or(problem.objective[j])?);
        if !cj.is_zero() {
            primal_obj = primal_obj.add_ref(&cj.mul_ref(xj));
        }
    }
    let mut dual_obj = Rational::ZERO;
    for (i, c) in problem.constraints.iter().enumerate() {
        if !y[i].is_zero() {
            dual_obj = dual_obj.add_ref(&y[i].mul_ref(&exact_or(c.rhs)?));
        }
    }
    for (j, zj) in z.iter().enumerate() {
        if problem.vars[j].upper.is_finite() && zj.is_negative() {
            let u = exact_or(problem.vars[j].upper)?;
            dual_obj = dual_obj.add_ref(&zj.mul_ref(&u));
        }
    }
    let gap = primal_obj.sub_ref(&dual_obj).abs();
    let allowed = t_gap.mul_ref(&Rational::ONE.add_ref(&primal_obj.abs()));
    if gap.cmp_ref(&allowed) == Ordering::Greater {
        return Err(CertificateError::DualityGap {
            primal: sigma.mul_ref(&primal_obj).to_f64(),
            dual_bound: sigma.mul_ref(&dual_obj).to_f64(),
        });
    }
    Ok(())
}

/// Certify an exact solution against its own problem with zero
/// tolerance — the oracle self-check the adversarial families pin.
pub fn verify_exact(problem: &Problem, solution: &ExactSolution) -> Result<(), CertificateError> {
    let n = problem.vars.len();
    let m = problem.constraints.len();
    if solution.values.len() != n {
        return Err(CertificateError::WrongShape { expected: n, got: solution.values.len() });
    }
    if solution.duals.len() != m {
        return Err(CertificateError::WrongShape { expected: m, got: solution.duals.len() });
    }
    verify_rational(problem, &solution.values, &solution.duals)
}

fn verify_rational(
    problem: &Problem,
    x: &[Rational],
    y_rep: &[Rational],
) -> Result<(), CertificateError> {
    check_primal(problem, x, &Rational::ZERO)?;
    let sigma = match problem.sense {
        Sense::Minimize => Rational::ONE,
        Sense::Maximize => -Rational::ONE,
    };
    let y: Vec<Rational> = y_rep.iter().map(|v| sigma.mul_ref(v)).collect();
    for (i, c) in problem.constraints.iter().enumerate() {
        let ok = match c.relation {
            Relation::Le => !y[i].is_positive(),
            Relation::Ge => !y[i].is_negative(),
            Relation::Eq => true,
        };
        if !ok {
            return Err(CertificateError::DualSignViolation { row: i, dual: y_rep[i].to_f64() });
        }
    }
    let n = problem.vars.len();
    let mut z: Vec<Rational> = Vec::with_capacity(n);
    for j in 0..n {
        z.push(sigma.mul_ref(&exact_or(problem.objective[j])?));
    }
    for (i, c) in problem.constraints.iter().enumerate() {
        if y[i].is_zero() {
            continue;
        }
        for &(j, coeff) in &c.terms {
            let delta = y[i].mul_ref(&exact_or(coeff)?);
            z[j] = z[j].sub_ref(&delta);
        }
    }
    for (j, zj) in z.iter().enumerate() {
        if !problem.vars[j].upper.is_finite() && zj.is_negative() {
            return Err(CertificateError::ReducedCostViolation {
                var: j,
                reduced_cost: zj.to_f64(),
            });
        }
    }
    let mut primal_obj = Rational::ZERO;
    for (j, xj) in x.iter().enumerate() {
        let cj = sigma.mul_ref(&exact_or(problem.objective[j])?);
        if !cj.is_zero() {
            primal_obj = primal_obj.add_ref(&cj.mul_ref(xj));
        }
    }
    let mut dual_obj = Rational::ZERO;
    for (i, c) in problem.constraints.iter().enumerate() {
        if !y[i].is_zero() {
            dual_obj = dual_obj.add_ref(&y[i].mul_ref(&exact_or(c.rhs)?));
        }
    }
    for (j, zj) in z.iter().enumerate() {
        if problem.vars[j].upper.is_finite() && zj.is_negative() {
            dual_obj = dual_obj.add_ref(&zj.mul_ref(&exact_or(problem.vars[j].upper)?));
        }
    }
    if primal_obj != dual_obj {
        return Err(CertificateError::DualityGap {
            primal: sigma.mul_ref(&primal_obj).to_f64(),
            dual_bound: sigma.mul_ref(&dual_obj).to_f64(),
        });
    }
    Ok(())
}

/// Certify a MILP incumbent: integrality, feasibility, objective
/// consistency, and — when a relaxation bound is supplied — the
/// branch-and-bound bound proof (`incumbent` cannot beat a valid
/// relaxation bound). Pass the *exact* root relaxation objective (from
/// [`super::simplex::solve_exact`]) for an airtight proof, or a float
/// bound for big instances.
pub fn verify_milp_certificate(
    problem: &Problem,
    solution: &Solution,
    relaxation_bound: Option<f64>,
) -> Result<(), CertificateError> {
    verify_milp_certificate_with(problem, solution, relaxation_bound, &CertTolerances::default())
}

/// [`verify_milp_certificate`] with explicit tolerances.
pub fn verify_milp_certificate_with(
    problem: &Problem,
    solution: &Solution,
    relaxation_bound: Option<f64>,
    tol: &CertTolerances,
) -> Result<(), CertificateError> {
    let n = problem.vars.len();
    if solution.values.len() != n {
        return Err(CertificateError::WrongShape { expected: n, got: solution.values.len() });
    }
    let x = rationalize(&solution.values, "primal value")?;
    let t_feas = Rational::from_f64(tol.feas).expect("finite tolerance");
    let t_int = Rational::from_f64(tol.int).expect("finite tolerance");
    check_primal(problem, &x, &t_feas)?;

    for (j, v) in problem.vars.iter().enumerate() {
        if v.kind != VarKind::Integer {
            continue;
        }
        let rounded = Rational::from_f64(solution.values[j].round()).expect("finite rounded");
        if x[j].sub_ref(&rounded).abs().cmp_ref(&t_int) == Ordering::Greater {
            return Err(CertificateError::NonIntegral { var: j, value: solution.values[j] });
        }
    }

    let mut computed = Rational::ZERO;
    for (j, xj) in x.iter().enumerate() {
        let cj = exact_or(problem.objective[j])?;
        if !cj.is_zero() {
            computed = computed.add_ref(&cj.mul_ref(xj));
        }
    }
    let reported = Rational::from_f64(solution.objective)
        .ok_or(CertificateError::NonFinite { what: "objective", index: 0 })?;
    let allowed = Rational::from_f64(tol.gap)
        .expect("finite tolerance")
        .mul_ref(&Rational::ONE.add_ref(&computed.abs()));
    if reported.sub_ref(&computed).abs().cmp_ref(&allowed) == Ordering::Greater {
        return Err(CertificateError::ObjectiveMismatch {
            reported: solution.objective,
            computed: computed.to_f64(),
        });
    }

    if let Some(bound) = relaxation_bound {
        let bound_q = Rational::from_f64(bound)
            .ok_or(CertificateError::NonFinite { what: "relaxation bound", index: 0 })?;
        let slack = Rational::from_f64(tol.gap)
            .expect("finite tolerance")
            .mul_ref(&Rational::ONE.add_ref(&bound_q.abs()));
        let ok = match problem.sense {
            // Maximize: incumbent ≤ bound + slack.
            Sense::Maximize => {
                computed.cmp_ref(&bound_q.add_ref(&slack)) != Ordering::Greater
            }
            // Minimize: incumbent ≥ bound − slack.
            Sense::Minimize => {
                computed.add_ref(&slack).cmp_ref(&bound_q) != Ordering::Less
            }
        };
        if !ok {
            return Err(CertificateError::BoundProofViolation {
                incumbent: computed.to_f64(),
                bound,
            });
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------

fn rationalize(vals: &[f64], what: &'static str) -> Result<Vec<Rational>, CertificateError> {
    vals.iter()
        .enumerate()
        .map(|(i, &v)| {
            Rational::from_f64(v).ok_or(CertificateError::NonFinite { what, index: i })
        })
        .collect()
}

fn exact_or(v: f64) -> Result<Rational, CertificateError> {
    exact(v).map_err(|_| CertificateError::NonFinite { what: "model coefficient", index: 0 })
}

fn t_feas_scale(tol: &Rational, y: &Rational) -> Rational {
    tol.mul_ref(&Rational::ONE.add_ref(&y.abs()))
}

/// Bounds + rows, with violations scaled by `1 + |reference|`.
fn check_primal(
    problem: &Problem,
    x: &[Rational],
    tol: &Rational,
) -> Result<(), CertificateError> {
    for (j, v) in problem.vars.iter().enumerate() {
        let lo_slack = tol.clone();
        if (-&x[j]).cmp_ref(&lo_slack) == Ordering::Greater {
            return Err(CertificateError::BoundViolation {
                var: j,
                value: x[j].to_f64(),
                bound: 0.0,
            });
        }
        if v.upper.is_finite() {
            let u = exact_or(v.upper)?;
            let slack = tol.mul_ref(&Rational::ONE.add_ref(&u.abs()));
            if x[j].sub_ref(&u).cmp_ref(&slack) == Ordering::Greater {
                return Err(CertificateError::BoundViolation {
                    var: j,
                    value: x[j].to_f64(),
                    bound: v.upper,
                });
            }
        }
    }
    for (i, c) in problem.constraints.iter().enumerate() {
        let mut lhs = Rational::ZERO;
        for &(j, coeff) in &c.terms {
            let q = exact_or(coeff)?;
            lhs = lhs.add_ref(&q.mul_ref(&x[j]));
        }
        let rhs = exact_or(c.rhs)?;
        let slack = tol.mul_ref(&Rational::ONE.add_ref(&rhs.abs()));
        let violation = match c.relation {
            Relation::Le => lhs.sub_ref(&rhs),
            Relation::Ge => rhs.sub_ref(&lhs),
            Relation::Eq => lhs.sub_ref(&rhs).abs(),
        };
        if violation.cmp_ref(&slack) == Ordering::Greater {
            return Err(CertificateError::RowViolation {
                row: i,
                violation: violation.to_f64(),
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::super::simplex::solve_exact;
    use super::*;
    use crate::{milp, Problem, Relation, Sense};

    fn scheduling_miniature() -> Problem {
        let mut p = Problem::new(Sense::Minimize);
        let f1 = p.add_var("f1");
        let f2 = p.add_var("f2");
        p.set_objective(f1, 1.0);
        p.set_objective(f2, 1.0);
        let b = 10.0;
        p.add_constraint(&[(f1, 1.0), (f2, 1.0)], Relation::Ge, b);
        let states = [(0.9f64, true, true), (0.06, false, true), (0.03, true, false)];
        let mut avail = Vec::new();
        for (i, &(prob, v1, v2)) in states.iter().enumerate() {
            let bv = p.add_bounded_var(&format!("B{i}"), 1.0);
            let mut terms = vec![(bv, b)];
            if v1 {
                terms.push((f1, -1.0));
            }
            if v2 {
                terms.push((f2, -1.0));
            }
            p.add_constraint(&terms, Relation::Le, 0.0);
            avail.push((bv, prob));
        }
        p.add_constraint(&avail, Relation::Ge, 0.95);
        p
    }

    #[test]
    fn float_solution_passes() {
        let p = scheduling_miniature();
        let sol = p.solve_relaxation().unwrap();
        verify_certificate(&p, &sol).unwrap();
    }

    #[test]
    fn exact_solution_passes_strict() {
        let p = scheduling_miniature();
        let ex = solve_exact(&p).unwrap();
        verify_exact(&p, &ex).unwrap();
    }

    #[test]
    fn corrupted_primal_rejected() {
        let p = scheduling_miniature();
        let mut sol = p.solve_relaxation().unwrap();
        sol.values[0] -= 1.0; // breaks the Ge coverage row
        assert!(matches!(
            verify_certificate(&p, &sol),
            Err(CertificateError::RowViolation { .. })
        ));
    }

    #[test]
    fn suboptimal_primal_rejected_by_gap() {
        let p = scheduling_miniature();
        let mut sol = p.solve_relaxation().unwrap();
        // Push a variable up: still feasible (Ge rows only get looser,
        // there is no capacity row), but objective is now suboptimal.
        sol.values[0] += 1.0;
        assert!(matches!(
            verify_certificate(&p, &sol),
            Err(CertificateError::DualityGap { .. })
        ));
    }

    #[test]
    fn wrong_sign_dual_rejected() {
        let p = scheduling_miniature();
        let mut sol = p.solve_relaxation().unwrap();
        if let Some(d) = sol.duals.as_mut() {
            d[0] = -5.0; // Ge row in a minimize: dual must be ≥ 0
        }
        assert!(matches!(
            verify_certificate(&p, &sol),
            Err(CertificateError::DualSignViolation { .. })
        ));
    }

    #[test]
    fn milp_incumbent_certifies_with_exact_bound() {
        let mut p = Problem::new(Sense::Maximize);
        let a = p.add_binary_var("a");
        let b = p.add_binary_var("b");
        let c = p.add_binary_var("c");
        p.set_objective(a, 5.0);
        p.set_objective(b, 4.0);
        p.set_objective(c, 3.0);
        p.add_constraint(&[(a, 2.0), (b, 3.0), (c, 1.0)], Relation::Le, 5.0);
        let sol = milp::solve(&p, milp::BnbConfig::default()).unwrap();
        let root = solve_exact(&p).unwrap();
        verify_milp_certificate(&p, &sol, Some(root.objective.to_f64())).unwrap();

        // Claiming a better objective than the relaxation allows fails.
        let mut fake = sol.clone();
        fake.values = sol.values.clone();
        fake.objective = 99.0;
        assert!(verify_milp_certificate(&p, &fake, Some(root.objective.to_f64())).is_err());
    }

    #[test]
    fn milp_fractional_incumbent_rejected() {
        let mut p = Problem::new(Sense::Maximize);
        let a = p.add_binary_var("a");
        p.set_objective(a, 1.0);
        p.add_constraint(&[(a, 1.0)], Relation::Le, 1.0);
        let mut sol = milp::solve(&p, milp::BnbConfig::default()).unwrap();
        sol.values[0] = 0.5;
        sol.objective = 0.5;
        assert!(matches!(
            verify_milp_certificate(&p, &sol, None),
            Err(CertificateError::NonIntegral { .. })
        ));
    }
}
