//! Exact branch-and-bound over the exact simplex — the MILP side of the
//! certifying oracle.
//!
//! Deliberately sequential and deterministic (DFS, branch on the lowest
//! fractional integer index, floor branch first): its job is to produce
//! the provably-optimal objective for harness-sized MILPs so the float
//! branch-and-cut's answers can be differenced against it. Branch bounds
//! are integers, which `f64` represents exactly far beyond any instance
//! the harness generates, so the float-typed override channel shared with
//! the float kernel loses nothing.

use super::rational::Rational;
use super::simplex::solve_exact_with;
use crate::error::SolveError;
use crate::problem::Problem;
use crate::{Sense, VarKind};
use std::cmp::Ordering;

/// An exactly-optimal MILP solution.
#[derive(Clone, Debug)]
pub struct ExactMilpSolution {
    pub objective: Rational,
    pub values: Vec<Rational>,
    /// Branch-and-bound nodes solved (root included).
    pub nodes: usize,
}

/// Solve a MILP exactly by DFS branch-and-bound. `max_nodes` bounds the
/// tree ([`SolveError::NodeLimit`] past it); pruning compares bounds
/// exactly, so the returned incumbent is *the* optimum, not an
/// approximation.
pub fn solve_exact_milp(
    problem: &Problem,
    max_nodes: usize,
) -> Result<ExactMilpSolution, SolveError> {
    let int_vars: Vec<usize> = problem
        .vars
        .iter()
        .enumerate()
        .filter(|(_, v)| v.kind == VarKind::Integer)
        .map(|(j, _)| j)
        .collect();

    let better = |a: &Rational, b: &Rational| match problem.sense {
        Sense::Maximize => a.cmp_ref(b) == Ordering::Greater,
        Sense::Minimize => a.cmp_ref(b) == Ordering::Less,
    };

    let mut incumbent: Option<ExactMilpSolution> = None;
    let mut stack: Vec<Vec<(usize, f64, f64)>> = vec![Vec::new()];
    let mut nodes = 0usize;

    while let Some(overrides) = stack.pop() {
        if nodes >= max_nodes {
            return Err(SolveError::NodeLimit);
        }
        nodes += 1;
        let relax = match solve_exact_with(problem, &overrides) {
            Ok(s) => s,
            Err(SolveError::Infeasible) => continue,
            Err(e) => return Err(e),
        };
        // Bound pruning: a node whose relaxation cannot beat the incumbent
        // is dead (ties included — one optimum suffices).
        if let Some(inc) = &incumbent {
            if !better(&relax.objective, &inc.objective) {
                continue;
            }
        }
        // Lowest-index fractional integer variable.
        let frac = int_vars
            .iter()
            .copied()
            .find(|&j| !relax.values[j].is_integer());
        match frac {
            None => {
                if incumbent
                    .as_ref()
                    .is_none_or(|inc| better(&relax.objective, &inc.objective))
                {
                    incumbent = Some(ExactMilpSolution {
                        objective: relax.objective,
                        values: relax.values,
                        nodes,
                    });
                }
            }
            Some(j) => {
                let floor = relax.values[j].floor().to_f64();
                let (cur_lo, cur_hi) = overrides
                    .iter()
                    .find(|&&(v, _, _)| v == j)
                    .map(|&(_, l, h)| (l, h))
                    .unwrap_or((0.0, problem.vars[j].upper));
                let mut up = overrides.clone();
                set_override(&mut up, j, floor + 1.0, cur_hi);
                let mut down = overrides;
                set_override(&mut down, j, cur_lo, floor);
                // DFS pops the floor branch first (deterministic order).
                stack.push(up);
                stack.push(down);
            }
        }
    }

    match incumbent {
        Some(mut inc) => {
            inc.nodes = nodes;
            Ok(inc)
        }
        None => Err(SolveError::Infeasible),
    }
}

fn set_override(overrides: &mut Vec<(usize, f64, f64)>, var: usize, lo: f64, hi: f64) {
    match overrides.iter_mut().find(|(v, _, _)| *v == var) {
        Some(entry) => {
            entry.1 = lo;
            entry.2 = hi;
        }
        None => overrides.push((var, lo, hi)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{milp, Problem, Relation, Sense, SolveError};

    #[test]
    fn knapsack_matches_float_bnb() {
        // max 5a + 4b + 3c, 2a + 3b + c <= 5, binaries.
        let mut p = Problem::new(Sense::Maximize);
        let a = p.add_binary_var("a");
        let b = p.add_binary_var("b");
        let c = p.add_binary_var("c");
        p.set_objective(a, 5.0);
        p.set_objective(b, 4.0);
        p.set_objective(c, 3.0);
        p.add_constraint(&[(a, 2.0), (b, 3.0), (c, 1.0)], Relation::Le, 5.0);
        let ex = solve_exact_milp(&p, 1000).unwrap();
        assert_eq!(ex.objective, super::super::rational::Rational::from_int(9));
        let fl = milp::solve(&p, milp::BnbConfig::default()).unwrap();
        assert!((fl.objective - ex.objective.to_f64()).abs() < 1e-9);
    }

    #[test]
    fn general_integers_and_infeasibility() {
        // min x + y, 2x + 2y >= 7, integers -> 4 (x+y must reach 4).
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_integer_var("x", f64::INFINITY);
        let y = p.add_integer_var("y", f64::INFINITY);
        p.set_objective(x, 1.0);
        p.set_objective(y, 1.0);
        p.add_constraint(&[(x, 2.0), (y, 2.0)], Relation::Ge, 7.0);
        let ex = solve_exact_milp(&p, 1000).unwrap();
        assert_eq!(ex.objective.to_f64(), 4.0);

        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_binary_var("x");
        p.set_objective(x, 1.0);
        p.add_constraint(&[(x, 2.0)], Relation::Ge, 1.0);
        p.add_constraint(&[(x, 2.0)], Relation::Le, 1.0);
        assert_eq!(solve_exact_milp(&p, 1000).unwrap_err(), SolveError::Infeasible);
    }

    #[test]
    fn node_limit_reports() {
        let mut p = Problem::new(Sense::Maximize);
        let mut terms = Vec::new();
        for i in 0..6 {
            let v = p.add_binary_var(&format!("x{i}"));
            p.set_objective(v, 1.0);
            terms.push((v, 1.0));
        }
        p.add_constraint(&terms, Relation::Le, 2.5);
        assert_eq!(solve_exact_milp(&p, 1).unwrap_err(), SolveError::NodeLimit);
    }
}
