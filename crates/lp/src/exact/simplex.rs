//! Exact two-phase bounded-variable primal simplex over [`Rational`],
//! with Bland's rule.
//!
//! This is the reference oracle the float kernels are differenced
//! against: a deliberately simple dense tableau whose every entry is an
//! exact rational, so its verdicts (optimal value, feasibility,
//! unboundedness, duals) carry no round-off at all. Bland's smallest-index
//! rule for both the entering and the leaving variable guarantees
//! termination even on the degenerate families the fuzz fleet feeds it —
//! speed is a non-goal; instances are kept small by the harness.
//!
//! Standard form mirrors the float kernel (`crate::simplex`): variables
//! are shifted to `y = x - lo ∈ [0, u]`, every row gains a slack
//! (`+1` for `Le`, `-1` for `Ge`, none for `Eq`) and an artificial whose
//! sign matches the shifted rhs so the all-artificial basis is feasible.
//! Phase 1 minimizes the artificial sum; phase 2 pins artificials to
//! `[0, 0]` (redundant rows keep theirs basic at zero, harmlessly) and
//! minimizes `σ·c`. Reported duals use the same convention as the float
//! kernel: marginal change of the optimum per unit of rhs *in the
//! problem's own sense*.

use super::rational::Rational;
use crate::error::SolveError;
use crate::problem::Problem;
use crate::{Relation, Sense};
use std::cmp::Ordering;

/// An exact LP optimum: objective in the problem's own sense, one value
/// per structural variable, one dual per constraint row.
#[derive(Clone, Debug)]
pub struct ExactSolution {
    pub objective: Rational,
    pub values: Vec<Rational>,
    pub duals: Vec<Rational>,
    /// Simplex pivots across both phases (bound flips included).
    pub pivots: usize,
}

/// Hard stop far beyond what Bland's rule needs on harness-sized
/// instances; hitting it reports [`SolveError::IterationLimit`] instead
/// of spinning.
const MAX_PIVOTS: usize = 500_000;

/// Solve the LP relaxation of `problem` exactly (integrality is ignored,
/// as in [`Problem::solve_relaxation`]).
pub fn solve_exact(problem: &Problem) -> Result<ExactSolution, SolveError> {
    solve_exact_with(problem, &[])
}

/// [`solve_exact`] with per-variable `(index, lo, hi)` bound overrides —
/// the same contract as the float kernel's branch-and-bound hook, so
/// exact branch-and-bound can reuse it.
pub fn solve_exact_with(
    problem: &Problem,
    overrides: &[(usize, f64, f64)],
) -> Result<ExactSolution, SolveError> {
    Tableau::build(problem, overrides)?.solve(problem)
}

/// Upper bound of a shifted variable: finite rational or +∞.
#[derive(Clone, Debug)]
enum Upper {
    Finite(Rational),
    Inf,
}

impl Upper {
    fn is_zero(&self) -> bool {
        matches!(self, Upper::Finite(u) if u.is_zero())
    }
}

struct Tableau {
    /// `rows × cols` dense matrix, currently `B⁻¹A`.
    a: Vec<Vec<Rational>>,
    /// Values of the basic variables (`B⁻¹(b − N·x_N)`).
    xb: Vec<Rational>,
    /// Reduced-cost row for the current phase.
    rc: Vec<Rational>,
    basis: Vec<usize>,
    is_basic: Vec<bool>,
    at_upper: Vec<bool>,
    upper: Vec<Upper>,
    /// Shift applied per structural variable (`x = lo + y`).
    lo: Vec<Rational>,
    rows: usize,
    cols: usize,
    n_struct: usize,
    /// Column of row `i`'s artificial and the `±1` sign it was given.
    art_col: Vec<usize>,
    art_sign: Vec<Rational>,
    pivots: usize,
}

impl Tableau {
    fn build(problem: &Problem, overrides: &[(usize, f64, f64)]) -> Result<Tableau, SolveError> {
        let n = problem.vars.len();
        let m = problem.constraints.len();

        let mut lo = vec![Rational::ZERO; n];
        let mut hi: Vec<Upper> = Vec::with_capacity(n);
        for v in &problem.vars {
            hi.push(if v.upper.is_finite() {
                Upper::Finite(exact(v.upper)?)
            } else {
                Upper::Inf
            });
        }
        for &(j, l, h) in overrides {
            if j >= n {
                return Err(SolveError::BadModel(format!("override on unknown var {j}")));
            }
            lo[j] = exact(l)?;
            hi[j] = if h.is_finite() {
                Upper::Finite(exact(h)?)
            } else {
                Upper::Inf
            };
        }
        // Shifted box [0, u]; an empty box is immediate infeasibility.
        let mut upper: Vec<Upper> = Vec::with_capacity(n);
        for j in 0..n {
            match &hi[j] {
                Upper::Inf => upper.push(Upper::Inf),
                Upper::Finite(h) => {
                    let u = h.sub_ref(&lo[j]);
                    if u.is_negative() {
                        return Err(SolveError::Infeasible);
                    }
                    upper.push(Upper::Finite(u));
                }
            }
        }

        // Columns: structural | slack per Le/Ge row | artificial per row.
        let num_slacks = problem
            .constraints
            .iter()
            .filter(|c| c.relation != Relation::Eq)
            .count();
        let cols = n + num_slacks + m;
        let mut a = vec![vec![Rational::ZERO; cols]; m];
        let mut xb = vec![Rational::ZERO; m];
        let mut art_col = Vec::with_capacity(m);
        let mut art_sign = Vec::with_capacity(m);
        let mut upper_ext = upper.clone();

        let mut next_slack = n;
        let first_art = n + num_slacks;
        for (i, c) in problem.constraints.iter().enumerate() {
            // Shifted rhs: b − Σ a_ij lo_j, accumulated exactly.
            let mut rhs = exact(c.rhs)?;
            for &(j, coeff) in &c.terms {
                let q = exact(coeff)?;
                if !lo[j].is_zero() {
                    rhs = rhs.sub_ref(&q.mul_ref(&lo[j]));
                }
                a[i][j] = a[i][j].add_ref(&q);
            }
            match c.relation {
                Relation::Le => {
                    a[i][next_slack] = Rational::ONE;
                    upper_ext.push(Upper::Inf);
                    next_slack += 1;
                }
                Relation::Ge => {
                    a[i][next_slack] = -Rational::ONE;
                    upper_ext.push(Upper::Inf);
                    next_slack += 1;
                }
                Relation::Eq => {}
            }
            let sign = if rhs.is_negative() {
                -Rational::ONE
            } else {
                Rational::ONE
            };
            let col = first_art + i;
            a[i][col] = sign.clone();
            art_col.push(col);
            art_sign.push(sign.clone());
            // Initial basis B = diag(sign): row i of B⁻¹A is sign · A_i,
            // and xb_i = |rhs|.
            if sign.is_negative() {
                for v in a[i].iter_mut() {
                    if !v.is_zero() {
                        *v = -&*v;
                    }
                }
                // The artificial's own entry flipped to +1 — keep it.
            }
            xb[i] = rhs.abs();
        }
        // Artificial bounds: [0, ∞) during phase 1.
        for _ in 0..m {
            upper_ext.push(Upper::Inf);
        }

        let mut is_basic = vec![false; cols];
        let mut basis = Vec::with_capacity(m);
        for i in 0..m {
            basis.push(first_art + i);
            is_basic[first_art + i] = true;
        }

        Ok(Tableau {
            a,
            xb,
            rc: vec![Rational::ZERO; cols],
            basis,
            is_basic,
            at_upper: vec![false; cols],
            upper: upper_ext,
            lo,
            rows: m,
            cols,
            n_struct: n,
            art_col,
            art_sign,
            pivots: 0,
        })
    }

    /// Reduced costs `c_j − c_B·(B⁻¹A)_j` for an explicit cost vector.
    fn rebuild_rc(&mut self, cost: &[Rational]) {
        for j in 0..self.cols {
            let mut rc = cost[j].clone();
            for i in 0..self.rows {
                let cb = &cost[self.basis[i]];
                if !cb.is_zero() && !self.a[i][j].is_zero() {
                    rc = rc.sub_ref(&cb.mul_ref(&self.a[i][j]));
                }
            }
            self.rc[j] = rc;
        }
    }

    /// One Bland iteration: returns `false` at optimality.
    fn iterate(&mut self) -> Result<bool, SolveError> {
        // Entering: smallest-index nonbasic with an improving direction.
        let mut entering = None;
        for j in 0..self.cols {
            if self.is_basic[j] || self.upper[j].is_zero() {
                continue;
            }
            let rc = &self.rc[j];
            let improving = if self.at_upper[j] {
                rc.is_positive()
            } else {
                rc.is_negative()
            };
            if improving {
                entering = Some(j);
                break;
            }
        }
        let Some(e) = entering else { return Ok(false) };
        self.pivots += 1;
        if self.pivots > MAX_PIVOTS {
            return Err(SolveError::IterationLimit);
        }

        let from_upper = self.at_upper[e];
        // Ratio test. `t` is how far the entering variable travels from
        // its current bound (increase from lower / decrease from upper).
        let mut best_t: Option<Rational> = match &self.upper[e] {
            Upper::Finite(u) => Some(u.clone()),
            Upper::Inf => None,
        };
        let mut leave_row: Option<usize> = None;
        let mut leave_to_upper = false;
        for i in 0..self.rows {
            let d = &self.a[i][e];
            if d.is_zero() {
                continue;
            }
            // Direction the basic variable moves as t grows.
            let decreasing = if from_upper {
                d.is_negative()
            } else {
                d.is_positive()
            };
            let (limit, to_upper) = if decreasing {
                // Basic i falls toward 0.
                (self.xb[i].div_ref(&d.abs()), false)
            } else {
                match &self.upper[self.basis[i]] {
                    Upper::Inf => continue,
                    Upper::Finite(u) => (u.sub_ref(&self.xb[i]).div_ref(&d.abs()), true),
                }
            };
            let tighter = match &best_t {
                None => true,
                Some(t) => match limit.cmp_ref(t) {
                    Ordering::Less => true,
                    Ordering::Greater => false,
                    // Bland tie-break: smallest leaving variable index.
                    Ordering::Equal => match leave_row {
                        None => false, // entering's own bound wins ties
                        Some(r) => self.basis[i] < self.basis[r],
                    },
                },
            };
            if tighter {
                best_t = Some(limit);
                leave_row = Some(i);
                leave_to_upper = to_upper;
            }
        }

        let Some(t) = best_t else {
            return Err(SolveError::Unbounded);
        };

        match leave_row {
            None => {
                // Bound flip: the entering variable crosses its own box.
                for i in 0..self.rows {
                    let d = &self.a[i][e];
                    if d.is_zero() {
                        continue;
                    }
                    let delta = t.mul_ref(d);
                    self.xb[i] = if from_upper {
                        self.xb[i].add_ref(&delta)
                    } else {
                        self.xb[i].sub_ref(&delta)
                    };
                }
                self.at_upper[e] = !from_upper;
            }
            Some(r) => {
                // Update basic values along the step, then pivot.
                for i in 0..self.rows {
                    if i == r {
                        continue;
                    }
                    let d = &self.a[i][e];
                    if d.is_zero() {
                        continue;
                    }
                    let delta = t.mul_ref(d);
                    self.xb[i] = if from_upper {
                        self.xb[i].add_ref(&delta)
                    } else {
                        self.xb[i].sub_ref(&delta)
                    };
                }
                let entering_value = if from_upper {
                    match &self.upper[e] {
                        Upper::Finite(u) => u.sub_ref(&t),
                        Upper::Inf => unreachable!("from_upper implies finite bound"),
                    }
                } else {
                    t
                };
                let leaving = self.basis[r];
                self.is_basic[leaving] = false;
                self.at_upper[leaving] = leave_to_upper;
                // Row-reduce on the pivot element.
                let pivot = self.a[r][e].clone();
                for v in self.a[r].iter_mut() {
                    if !v.is_zero() {
                        *v = v.div_ref(&pivot);
                    }
                }
                for i in 0..self.rows {
                    if i == r {
                        continue;
                    }
                    let f = self.a[i][e].clone();
                    if f.is_zero() {
                        continue;
                    }
                    for j in 0..self.cols {
                        if !self.a[r][j].is_zero() {
                            let delta = f.mul_ref(&self.a[r][j]);
                            self.a[i][j] = self.a[i][j].sub_ref(&delta);
                        }
                    }
                    self.a[i][e] = Rational::ZERO;
                }
                let f = self.rc[e].clone();
                if !f.is_zero() {
                    for j in 0..self.cols {
                        if !self.a[r][j].is_zero() {
                            let delta = f.mul_ref(&self.a[r][j]);
                            self.rc[j] = self.rc[j].sub_ref(&delta);
                        }
                    }
                    self.rc[e] = Rational::ZERO;
                }
                self.basis[r] = e;
                self.is_basic[e] = true;
                self.at_upper[e] = false;
                self.xb[r] = entering_value;
            }
        }
        Ok(true)
    }

    fn solve(mut self, problem: &Problem) -> Result<ExactSolution, SolveError> {
        // --- Phase 1: minimize the artificial sum --------------------------
        let mut cost = vec![Rational::ZERO; self.cols];
        for &c in &self.art_col {
            cost[c] = Rational::ONE;
        }
        self.rebuild_rc(&cost);
        while self.iterate()? {}
        let mut infeas = Rational::ZERO;
        for i in 0..self.rows {
            if self.basis[i] >= self.n_struct && self.art_col.contains(&self.basis[i]) {
                infeas = infeas.add_ref(&self.xb[i]);
            }
        }
        // Nonbasic artificials sit at a bound; at_upper is impossible
        // (their upper is ∞), so they contribute zero.
        if infeas.is_positive() {
            return Err(SolveError::Infeasible);
        }

        // --- Phase 2: artificials pinned, real costs -----------------------
        for &c in &self.art_col {
            self.upper[c] = Upper::Finite(Rational::ZERO);
        }
        let sigma = match problem.sense {
            Sense::Minimize => Rational::ONE,
            Sense::Maximize => -Rational::ONE,
        };
        let mut cost = vec![Rational::ZERO; self.cols];
        for (j, &c) in problem.objective.iter().enumerate() {
            if c != 0.0 {
                cost[j] = sigma.mul_ref(&exact(c)?);
            }
        }
        self.rebuild_rc(&cost);
        while self.iterate()? {}

        // --- Extraction ----------------------------------------------------
        let mut values = vec![Rational::ZERO; self.n_struct];
        for (j, v) in values.iter_mut().enumerate() {
            if !self.is_basic[j] && self.at_upper[j] {
                if let Upper::Finite(u) = &self.upper[j] {
                    *v = u.clone();
                }
            }
        }
        for i in 0..self.rows {
            let b = self.basis[i];
            if b < self.n_struct {
                values[b] = self.xb[i].clone();
            }
        }
        for (j, v) in values.iter_mut().enumerate() {
            if !self.lo[j].is_zero() {
                *v = v.add_ref(&self.lo[j]);
            }
        }
        let mut objective = Rational::ZERO;
        for (j, &c) in problem.objective.iter().enumerate() {
            if c != 0.0 {
                objective = objective.add_ref(&exact(c)?.mul_ref(&values[j]));
            }
        }
        // Duals: y_int = c_B B⁻¹ read from the artificial columns
        // (art col = s·e_i ⇒ rc_art = −s·y_int_i), reported in the
        // problem's own sense via σ.
        let mut duals = Vec::with_capacity(self.rows);
        for i in 0..self.rows {
            let y_int = -self.rc[self.art_col[i]].mul_ref(&self.art_sign[i]);
            duals.push(sigma.mul_ref(&y_int));
        }
        Ok(ExactSolution {
            objective,
            values,
            duals,
            pivots: self.pivots,
        })
    }
}

/// Exact conversion with a typed error on non-finite model data.
pub(crate) fn exact(v: f64) -> Result<Rational, SolveError> {
    Rational::from_f64(v).ok_or_else(|| SolveError::BadModel(format!("non-finite coefficient {v}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Problem, Relation, Sense, SolveError};

    fn exactly(q: &Rational, v: f64) {
        assert_eq!(q, &Rational::from_f64(v).unwrap(), "{} != {v}", q.to_f64());
    }

    #[test]
    fn textbook_maximize() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var("x");
        let y = p.add_var("y");
        p.set_objective(x, 3.0);
        p.set_objective(y, 2.0);
        p.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Le, 4.0);
        p.add_constraint(&[(x, 1.0), (y, 3.0)], Relation::Le, 6.0);
        let s = solve_exact(&p).unwrap();
        exactly(&s.objective, 12.0);
        exactly(&s.values[0], 4.0);
        exactly(&s.values[1], 0.0);
        // Duals: row 0 binds with price 3, row 1 is slack.
        exactly(&s.duals[0], 3.0);
        exactly(&s.duals[1], 0.0);
    }

    #[test]
    fn two_phase_with_ge_rows() {
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_var("x");
        let y = p.add_var("y");
        p.set_objective(x, 2.0);
        p.set_objective(y, 3.0);
        p.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Ge, 10.0);
        p.add_constraint(&[(x, 1.0)], Relation::Ge, 2.0);
        p.add_constraint(&[(y, 1.0)], Relation::Ge, 3.0);
        let s = solve_exact(&p).unwrap();
        exactly(&s.objective, 23.0);
        exactly(&s.values[0], 7.0);
        exactly(&s.values[1], 3.0);
    }

    #[test]
    fn equality_and_negative_rhs() {
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_var("x");
        let y = p.add_var("y");
        p.set_objective(x, 1.0);
        p.set_objective(y, 1.0);
        p.add_constraint(&[(x, 1.0), (y, 2.0)], Relation::Eq, 4.0);
        p.add_constraint(&[(x, -1.0), (y, 1.0)], Relation::Ge, -1.0);
        let s = solve_exact(&p).unwrap();
        exactly(&s.objective, 2.0);
    }

    #[test]
    fn infeasible_and_unbounded() {
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_var("x");
        p.add_constraint(&[(x, 1.0)], Relation::Le, 1.0);
        p.add_constraint(&[(x, 1.0)], Relation::Ge, 2.0);
        assert_eq!(solve_exact(&p).unwrap_err(), SolveError::Infeasible);

        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var("x");
        p.set_objective(x, 1.0);
        p.add_constraint(&[(x, 1.0)], Relation::Ge, 0.0);
        assert_eq!(solve_exact(&p).unwrap_err(), SolveError::Unbounded);
    }

    #[test]
    fn bounded_variables_and_bound_flips() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_bounded_var("x", 1.0);
        let y = p.add_bounded_var("y", 1.0);
        p.set_objective(x, 1.0);
        p.set_objective(y, 1.0);
        p.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Le, 1.5);
        let s = solve_exact(&p).unwrap();
        exactly(&s.objective, 1.5);

        // Pure box problem, no rows at all.
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_bounded_var("x", 3.0);
        let y = p.add_bounded_var("y", 4.0);
        p.set_objective(x, 1.0);
        p.set_objective(y, 2.0);
        let s = solve_exact(&p).unwrap();
        exactly(&s.objective, 11.0);
    }

    #[test]
    fn degenerate_beale_terminates_via_bland() {
        let mut p = Problem::new(Sense::Minimize);
        let x1 = p.add_var("x1");
        let x2 = p.add_var("x2");
        let x3 = p.add_var("x3");
        let x4 = p.add_var("x4");
        p.set_objective(x1, -0.75);
        p.set_objective(x2, 150.0);
        p.set_objective(x3, -0.02);
        p.set_objective(x4, 6.0);
        p.add_constraint(
            &[(x1, 0.25), (x2, -60.0), (x3, -0.04), (x4, 9.0)],
            Relation::Le,
            0.0,
        );
        p.add_constraint(
            &[(x1, 0.5), (x2, -90.0), (x3, -0.02), (x4, 3.0)],
            Relation::Le,
            0.0,
        );
        p.add_constraint(&[(x3, 1.0)], Relation::Le, 1.0);
        let s = solve_exact(&p).unwrap();
        // The decimal data (-0.04, -0.02, ...) is not dyadic, so the exact
        // optimum of the float-converted model is only *near* -0.05.
        assert!((s.objective.to_f64() + 0.05).abs() < 1e-12);
    }

    #[test]
    fn bound_overrides_shift_the_box() {
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_var("x");
        p.set_objective(x, 1.0);
        p.add_constraint(&[(x, 1.0)], Relation::Le, 10.0);
        let s = solve_exact_with(&p, &[(0, 3.0, 10.0)]).unwrap();
        exactly(&s.objective, 3.0);
        exactly(&s.values[0], 3.0);
        assert_eq!(
            solve_exact_with(&p, &[(0, 11.0, 20.0)]).unwrap_err(),
            SolveError::Infeasible
        );
    }

    #[test]
    fn agrees_with_float_kernel_on_duals() {
        // A scheduling-shaped miniature; duals must match the float
        // kernel's reported convention.
        let mut p = Problem::new(Sense::Minimize);
        let f1 = p.add_var("f1");
        let f2 = p.add_var("f2");
        p.set_objective(f1, 1.0);
        p.set_objective(f2, 1.0);
        p.add_constraint(&[(f1, 1.0), (f2, 1.0)], Relation::Ge, 10.0);
        p.add_constraint(&[(f1, 1.0)], Relation::Le, 4.0);
        let float = p.solve_relaxation().unwrap();
        let ex = solve_exact(&p).unwrap();
        assert!((float.objective - ex.objective.to_f64()).abs() < 1e-9);
        let duals = float.duals.as_ref().unwrap();
        for (i, d) in ex.duals.iter().enumerate() {
            assert!(
                (duals[i] - d.to_f64()).abs() < 1e-9,
                "dual {i}: float {} vs exact {}",
                duals[i],
                d.to_f64()
            );
        }
    }
}
