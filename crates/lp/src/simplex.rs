//! Two-phase **sparse-aware** primal simplex with bounded variables.
//!
//! The solver works on the bounded standard form
//!
//! ```text
//! minimize c'y   s.t.  Ay = b,  0 <= y <= w   (w_j may be +inf)
//! ```
//!
//! produced from a [`Problem`] by (1) shifting each variable by its lower
//! bound and (2) adding slack/surplus variables for `<=` / `>=` rows and
//! artificial variables for `>=` / `==` rows. Upper bounds are handled
//! *natively*: a nonbasic variable may rest at its lower **or** upper
//! bound, the ratio test considers bound flips and basics hitting their own
//! upper bounds, and no extra constraint rows are materialized. For BATE's
//! scheduling LPs — hundreds of `B ∈ [0,1]` availability variables — this
//! halves the row count compared to the textbook formulation.
//!
//! Phase 1 minimizes the sum of artificials to find a basic feasible
//! solution; phase 2 optimizes the real objective.
//!
//! ## What is different from the original dense kernel
//!
//! The original kernel (preserved in [`crate::dense_reference`]) paid
//! `O(rows × cols)` per pivot and allocated fresh scratch vectors every
//! iteration. This kernel keeps the same tableau semantics (`B⁻¹A` with
//! folded basic values in the last column) but:
//!
//! * **Sparse pivots** — the nonzero columns of the pivot row are gathered
//!   into a reusable scratch buffer once per pivot, and row/objective
//!   eliminations touch only those columns. BATE's scheduling and
//!   admission LPs are very sparse (each `B ≤ f/b` row touches a handful
//!   of variables), so most pivots update a small fraction of the matrix.
//!   The arithmetic on touched columns is identical to the dense kernel:
//!   untouched columns would only ever have received `x -= f · 0`.
//! * **Candidate-list partial pricing** — Dantzig pricing scanned every
//!   column every iteration. Here a bounded candidate list of attractive
//!   columns is priced instead, with a periodic (and on-exhaustion)
//!   full-scan refresh. Optimality is only ever declared by a full scan,
//!   and Bland's anti-cycling fallback always scans fully, so termination
//!   guarantees are unchanged. All tie-breaks are index-ordered, keeping
//!   pivot sequences deterministic.
//! * **No per-iteration allocation** — the basic-column marker (previously
//!   a fresh `Vec<bool>` per iteration plus a `HashSet` in phase 2) is
//!   tableau state maintained across pivots; pricing and pivot scratch
//!   buffers live in the tableau and are reused.
//! * **Warm starts** — a [`Workspace`] caches the prepared sparse rows and
//!   every tableau buffer across solves of the same problem (only bound
//!   overrides changing), and can reinstall a saved [`Basis`] to skip
//!   phase 1 entirely. Branch-and-bound warm-starts each child node from
//!   its parent's optimal basis.

use crate::error::SolveError;
use crate::problem::{Problem, Relation, Sense};
use crate::solution::Solution;
use crate::stats::SolveStats;
use crate::EPS;
use std::sync::{Arc, OnceLock};

/// Registry handles for the solver phase-attribution family
/// (`bate_solve_phase_*`): where each solve's wall-clock went. The
/// histograms are observed once per solve — negligible against even the
/// smallest branch-and-bound node relaxation.
struct PhaseMetrics {
    phase1: Arc<bate_obs::Histogram>,
    phase2: Arc<bate_obs::Histogram>,
    pricing: Arc<bate_obs::Histogram>,
    pivot: Arc<bate_obs::Histogram>,
    dual_repair: Arc<bate_obs::Histogram>,
    warm_fallbacks: Arc<bate_obs::Counter>,
}

fn phase_metrics() -> &'static PhaseMetrics {
    static M: OnceLock<PhaseMetrics> = OnceLock::new();
    M.get_or_init(|| {
        let r = bate_obs::Registry::global();
        r.describe(
            "bate_solve_phase_phase1_ns",
            "Wall-clock ns per solve spent in simplex phase 1 (feasibility)",
        );
        r.describe(
            "bate_solve_phase_phase2_ns",
            "Wall-clock ns per solve spent in simplex phase 2 (optimization)",
        );
        r.describe(
            "bate_solve_phase_pricing_ns",
            "Wall-clock ns per solve spent pricing entering columns (sampled)",
        );
        r.describe(
            "bate_solve_phase_pivot_ns",
            "Wall-clock ns per solve spent in ratio tests and pivots (sampled)",
        );
        r.describe(
            "bate_solve_phase_dual_repair_ns",
            "Wall-clock ns per solve spent in dual-simplex warm-start repair",
        );
        r.describe(
            "bate_solve_warm_fallbacks_total",
            "Warm-started solves that fell back to a cold start (repair failure or residual backstop)",
        );
        PhaseMetrics {
            phase1: r.histogram("bate_solve_phase_phase1_ns"),
            phase2: r.histogram("bate_solve_phase_phase2_ns"),
            pricing: r.histogram("bate_solve_phase_pricing_ns"),
            pivot: r.histogram("bate_solve_phase_pivot_ns"),
            dual_repair: r.histogram("bate_solve_phase_dual_repair_ns"),
            warm_fallbacks: r.counter("bate_solve_warm_fallbacks_total"),
        }
    })
}

/// Pre-register the `bate_solve_phase_*` family (plus the two members
/// observed from `bate-core`: separation and certificate checking) so
/// exposition renders them at zero before the first solve.
pub fn register_phase_metrics() {
    let _ = phase_metrics();
    let r = bate_obs::Registry::global();
    r.describe(
        "bate_solve_phase_separation_ns",
        "Wall-clock ns per row-generation separation round (observed by the scheduler)",
    );
    r.describe(
        "bate_solve_phase_cert_check_ns",
        "Wall-clock ns per warm-solution certificate check (observed by the cert gate)",
    );
    let _ = r.histogram("bate_solve_phase_separation_ns");
    let _ = r.histogram("bate_solve_phase_cert_check_ns");
}

/// Feasibility tolerance for phase-1 termination.
const PHASE1_TOL: f64 = 1e-7;
/// Number of non-improving iterations tolerated before switching to Bland's
/// rule.
const STALL_LIMIT: usize = 64;
/// Pivots between full pricing scans; between refreshes only the candidate
/// list is priced.
const PRICE_REFRESH: usize = 48;

/// Tableaus at or below this column count price with a full Dantzig scan
/// every iteration (see `Tableau::partial`).
const PARTIAL_PRICING_MIN_COLS: usize = 256;

/// Tableaus with at most this many columns skip per-column row files
/// (see [`Tableau::track_cols`]).
const COL_FILE_MIN_COLS: usize = 256;

/// Phase-attribution sampling stride: one pivot-loop iteration in this
/// many is wall-clock timed (pricing vs pivot split) and the sampled
/// totals are scaled back up. Keeps the two `Instant::now()` reads off
/// the other iterations — tiny branch-and-bound node solves would
/// otherwise pay a measurable tax for informational timings.
const TIME_SAMPLE: usize = 8;

/// Per-variable bound override used by branch-and-bound: `(var index,
/// lower, upper)`.
pub type BoundOverride = (usize, f64, f64);

/// A snapshot of a simplex basis: which variable is basic in each row and
/// which nonbasic columns rest at their upper bound. Opaque to callers;
/// obtained from [`Workspace::final_basis`] and fed back through
/// [`Workspace::set_warm`] to warm-start a related solve (same problem,
/// different bound overrides).
#[derive(Debug, Clone)]
pub struct Basis {
    rows: Vec<usize>,
    at_upper: Vec<bool>,
}

/// Outcome of a warm-basis installation attempt (see
/// [`Tableau::install_basis`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Install {
    /// The saved basis is primal feasible; phase 1 is skipped.
    Feasible,
    /// The basis was installed but some rows were repaired into
    /// artificial-basic form (appended rows the warm point violates);
    /// phase 1 runs from the warm point and only drives those out.
    NeedsPhase1,
    /// The basis was installed but some basic variables sit outside their
    /// box (the rhs/bound-edit pattern: a shrunk upper bound or tightened
    /// rhs pushed them out). The dual simplex repairs exactly those rows
    /// from the still-dual-feasible warm point (see
    /// [`Tableau::dual_iterate`]) instead of restarting phase 1.
    NeedsDualRepair,
    /// The basis no longer fits; the caller rebuilds and solves cold.
    Reject,
}

/// Reusable solver state: prepared sparse problem rows, tableau buffers,
/// and an optional warm-start basis.
///
/// A workspace amortizes, across repeated solves of the *same* problem
/// with different bound overrides (the branch-and-bound access pattern):
///
/// * the sparse row preparation (constraint terms are cloned out of the
///   [`Problem`] once, not per solve),
/// * every tableau allocation (the dense matrix, pricing buffers, pivot
///   scratch — all reused), and
/// * optionally phase 1, by reinstalling a saved basis (see
///   [`Workspace::set_warm`]); if the saved basis is not primal feasible
///   under the new bounds the solve silently falls back to a cold start.
///
/// After every successful solve the workspace re-arms its warm basis with
/// that solve's final basis, so plain sequential re-solving warm-starts
/// automatically. Callers that need schedule-independent determinism (the
/// parallel branch-and-bound) override this via [`Workspace::set_warm`] /
/// [`Workspace::clear_warm`] before each solve.
#[derive(Debug, Default)]
pub struct Workspace {
    tab: Tableau,
    prepared: Option<Prepared>,
    warm: Option<Basis>,
}

impl Workspace {
    pub fn new() -> Self {
        Workspace::default()
    }

    /// Install `basis` as the warm start for the next solve. `None` forces
    /// the next solve cold.
    pub fn set_warm(&mut self, basis: Option<Basis>) {
        self.warm = basis;
    }

    /// Drop any warm-start state (next solve runs phase 1 from scratch).
    pub fn clear_warm(&mut self) {
        self.warm = None;
    }

    /// The final basis of the most recent successful solve, if any.
    pub fn final_basis(&self) -> Option<Basis> {
        self.warm.clone()
    }

    /// Extend the prepared row set with the constraints appended to
    /// `problem` since this workspace last solved it — the incremental
    /// mutation behind cutting-plane row generation.
    ///
    /// Cost is O(nnz of the appended rows) for the sparse row clones plus
    /// O(rows) column-layout bookkeeping; nothing about the existing rows
    /// is re-prepared. Slack columns extend the existing slack block, so
    /// structural and pre-existing slack indices are untouched and only
    /// the artificial block shifts up — the saved warm basis is remapped
    /// in place under that shift (**re-armed, not rebuilt**), and each
    /// appended row enters it with its own slack basic (artificial for
    /// `Eq` rows). The next [`solve_with`] then reinstalls the remapped
    /// basis: appended rows the warm point already satisfies cost nothing,
    /// and violated ones are repaired by a short phase 1 confined to their
    /// artificials (see [`Tableau::install_basis`]) instead of restarting
    /// from the slack basis.
    ///
    /// Returns `false` — leaving the workspace untouched, the caller just
    /// solves cold and re-prepares — when the workspace holds no prepared
    /// state for a prefix of `problem` (different variable count, fewer
    /// constraints than prepared, or a mismatched prefix term count).
    ///
    /// ## Caller contract: append-only
    ///
    /// Between the solve that prepared this workspace and this call, the
    /// caller must only have **appended** constraints to `problem` — never
    /// edited an existing row's coefficients, relation, or rhs in place.
    /// The prefix check above is a cheap fingerprint (variable count, row
    /// count, total prefix term count), deliberately not a content hash:
    /// an in-place mutation that preserves the term count passes it, and
    /// the workspace would then silently solve against the stale prepared
    /// copy of that row — an answer to the wrong problem. Every in-tree
    /// caller (the cutting-plane loops in [`crate::milp`]) only ever
    /// appends; uphold the same contract or rebuild the workspace.
    pub fn append_rows(&mut self, problem: &Problem) -> bool {
        let Some(prepared) = self.prepared.as_mut() else {
            return false;
        };
        let (n, m_old, nnz_old) = prepared.fingerprint;
        let m_new = problem.constraints.len();
        if problem.num_vars() != n || m_new < m_old {
            return false;
        }
        let prefix_terms: usize = problem.constraints[..m_old]
            .iter()
            .map(|c| c.terms.len())
            .sum();
        if prefix_terms != nnz_old {
            return false;
        }
        if m_new == m_old {
            return true; // nothing appended
        }

        let first_art_old = prepared.first_artificial;
        let mut nnz_new = nnz_old;
        let mut next_slack = first_art_old; // extend the slack block
        for c in &problem.constraints[m_old..] {
            nnz_new += c.terms.len();
            prepared.terms.push(c.terms.clone());
            prepared.relations.push(c.relation);
            prepared.rhs.push(c.rhs);
            if matches!(c.relation, Relation::Eq) {
                prepared.slack_col.push(usize::MAX);
            } else {
                prepared.slack_col.push(next_slack);
                next_slack += 1;
            }
        }
        let added_slacks = next_slack - first_art_old;
        let first_art_new = first_art_old + added_slacks;
        prepared.first_artificial = first_art_new;
        prepared.cols = first_art_new + m_new;
        prepared.art_col.clear();
        prepared.art_col.extend((0..m_new).map(|i| first_art_new + i));
        prepared.fingerprint = (n, m_new, nnz_new);

        // Remap the warm basis into the widened column layout: structural
        // and old slack columns keep their indices; artificial columns
        // shift up past the slacks inserted before them.
        let mut keep = false;
        if let Some(basis) = self.warm.as_mut() {
            if basis.rows.len() == m_old && basis.at_upper.len() == first_art_old + m_old {
                let remap = |c: usize| {
                    if c < first_art_old {
                        c
                    } else {
                        c + added_slacks
                    }
                };
                for b in basis.rows.iter_mut() {
                    *b = remap(*b);
                }
                let mut at_upper = vec![false; prepared.cols];
                for (c, &up) in basis.at_upper.iter().enumerate() {
                    if up {
                        at_upper[remap(c)] = true;
                    }
                }
                basis.at_upper = at_upper;
                for i in m_old..m_new {
                    let slack = prepared.slack_col[i];
                    basis.rows.push(if slack != usize::MAX {
                        slack
                    } else {
                        first_art_new + i
                    });
                }
                keep = true;
            }
        }
        if !keep {
            self.warm = None; // basis from some other layout: solve cold
        }
        true
    }

    /// Extend the prepared column set with the variables appended to
    /// `problem` since this workspace last solved it — the dual of
    /// [`Workspace::append_rows`], used by the incremental scheduling path
    /// when a demand *add* widens existing capacity rows with new flow
    /// columns.
    ///
    /// Only the first `m_old` (already-prepared) rows are spliced here;
    /// rows appended alongside the new columns are handled by a following
    /// [`Workspace::append_rows`] call, which is why the sync order is
    /// always columns-then-rows. Existing rows may only have *grown*: their
    /// old terms stay a frozen prefix (see [`Problem::extend_constraint`])
    /// and every suffix term references a newly appended variable. Slack
    /// and artificial columns shift up by the number of new structural
    /// columns; the saved warm basis is remapped in place under that shift,
    /// and the new columns enter nonbasic at their lower bound — the next
    /// solve prices them into the existing basis instead of starting cold.
    ///
    /// Returns `false` — leaving the workspace untouched, the caller
    /// rebuilds and solves cold — when the workspace holds no prepared
    /// state for a column-prefix of `problem` (fewer variables or rows than
    /// prepared, or a suffix term referencing a pre-existing variable).
    /// Like [`Workspace::append_rows`] this is a structural fingerprint,
    /// not a content hash: in-place edits of existing coefficients are the
    /// caller's contract to avoid.
    pub fn append_cols(&mut self, problem: &Problem) -> bool {
        let Some(prepared) = self.prepared.as_mut() else {
            return false;
        };
        let (n_old, m_old, _) = prepared.fingerprint;
        let n_new = problem.num_vars();
        if n_new < n_old || problem.constraints.len() < m_old {
            return false;
        }
        for (i, c) in problem.constraints[..m_old].iter().enumerate() {
            let old_len = prepared.terms[i].len();
            if c.terms.len() < old_len {
                return false;
            }
            if c.terms[old_len..].iter().any(|&(j, _)| j < n_old) {
                return false;
            }
        }
        let k = n_new - n_old;
        if k == 0 {
            return true; // no columns appended (suffix check forces extra == 0)
        }
        for (i, c) in problem.constraints[..m_old].iter().enumerate() {
            let old_len = prepared.terms[i].len();
            prepared.terms[i].extend_from_slice(&c.terms[old_len..]);
        }
        for sc in prepared.slack_col.iter_mut() {
            if *sc != usize::MAX {
                *sc += k;
            }
        }
        for ac in prepared.art_col.iter_mut() {
            *ac += k;
        }
        prepared.first_artificial += k;
        let cols_old = prepared.cols;
        prepared.cols += k;
        let nnz: usize = prepared.terms.iter().map(|t| t.len()).sum();
        prepared.fingerprint = (n_new, m_old, nnz);

        // Remap the warm basis: structural columns keep their indices, the
        // slack/artificial blocks shift past the appended columns, and the
        // new columns rest nonbasic at their lower bound.
        let mut keep = false;
        if let Some(basis) = self.warm.as_mut() {
            if basis.rows.len() == m_old && basis.at_upper.len() == cols_old {
                for b in basis.rows.iter_mut() {
                    if *b >= n_old {
                        *b += k;
                    }
                }
                let mut at_upper = vec![false; prepared.cols];
                for (c, &up) in basis.at_upper.iter().enumerate() {
                    if up {
                        at_upper[if c >= n_old { c + k } else { c }] = true;
                    }
                }
                basis.at_upper = at_upper;
                keep = true;
            }
        }
        if !keep {
            self.warm = None; // basis from some other layout: solve cold
        }
        true
    }

    /// Re-copy every constraint rhs out of `problem` into the prepared
    /// rows — the sync step after in-place [`Problem::set_rhs`] edits
    /// (retiring a demand zeroes its rows' rhs rather than deleting them).
    /// Coefficients, relations, and the column layout are untouched, so
    /// the saved warm basis stays installable; a basic pushed out of its
    /// box by the new rhs is repaired by the dual simplex at the next
    /// solve. Returns `false` (workspace untouched) when the prepared
    /// fingerprint does not match `problem`.
    pub fn sync_rhs(&mut self, problem: &Problem) -> bool {
        let Some(prepared) = self.prepared.as_mut() else {
            return false;
        };
        if !prepared.matches(problem) {
            return false;
        }
        for (dst, c) in prepared.rhs.iter_mut().zip(&problem.constraints) {
            *dst = c.rhs;
        }
        true
    }
}

/// Problem structure shared by every solve in a workspace: sparse rows
/// plus the (override-independent) column layout.
///
/// The layout assigns every row its slack/surplus column (non-`Eq` rows)
/// and an artificial column (every row, used or not depending on the
/// per-solve rhs normalization), so column indices — and therefore saved
/// bases — stay valid when only bounds change between solves.
#[derive(Debug)]
struct Prepared {
    /// Guards against a workspace being reused across different problems:
    /// (num_vars, num_constraints, total term count).
    fingerprint: (usize, usize, usize),
    terms: Vec<Vec<(usize, f64)>>,
    relations: Vec<Relation>,
    rhs: Vec<f64>,
    /// Slack/surplus column per row (`usize::MAX` for `Eq` rows).
    slack_col: Vec<usize>,
    /// Artificial column per row (always allocated; unused ones stay
    /// all-zero and blocked).
    art_col: Vec<usize>,
    cols: usize,
    first_artificial: usize,
}

impl Prepared {
    fn build(problem: &Problem) -> Prepared {
        let n = problem.num_vars();
        let m = problem.constraints.len();
        let mut terms = Vec::with_capacity(m);
        let mut relations = Vec::with_capacity(m);
        let mut rhs = Vec::with_capacity(m);
        let mut total_terms = 0usize;
        for c in &problem.constraints {
            total_terms += c.terms.len();
            terms.push(c.terms.clone());
            relations.push(c.relation);
            rhs.push(c.rhs);
        }
        let mut slack_col = vec![usize::MAX; m];
        let mut next = n;
        for i in 0..m {
            if !matches!(relations[i], Relation::Eq) {
                slack_col[i] = next;
                next += 1;
            }
        }
        let first_artificial = next;
        let art_col: Vec<usize> = (0..m).map(|i| first_artificial + i).collect();
        Prepared {
            fingerprint: (n, m, total_terms),
            terms,
            relations,
            rhs,
            slack_col,
            art_col,
            cols: first_artificial + m,
            first_artificial,
        }
    }

    fn matches(&self, problem: &Problem) -> bool {
        let total: usize = problem.constraints.iter().map(|c| c.terms.len()).sum();
        self.fingerprint == (problem.num_vars(), problem.constraints.len(), total)
    }
}

/// Solve the LP relaxation of `problem` with additional bound overrides.
///
/// `overrides` tightens variable bounds (used by branch-and-bound); the
/// effective bounds are the intersection of the problem's own bounds and all
/// overrides for that variable.
pub fn solve_relaxation(
    problem: &Problem,
    overrides: &[BoundOverride],
) -> Result<Solution, SolveError> {
    let mut ws = Workspace::new();
    solve_with(problem, overrides, &mut ws)
}

/// Solve the LP relaxation reusing (and updating) `ws`.
///
/// Identical results to [`solve_relaxation`] on a fresh workspace; with a
/// used workspace, buffer reuse changes no arithmetic and a warm basis is
/// accepted only when primal feasible (otherwise the solve restarts cold),
/// so objectives remain optimal either way.
pub fn solve_with(
    problem: &Problem,
    overrides: &[BoundOverride],
    ws: &mut Workspace,
) -> Result<Solution, SolveError> {
    let n = problem.num_vars();

    // Effective bounds per variable.
    let mut lo = vec![0.0f64; n];
    let mut hi: Vec<f64> = problem.vars.iter().map(|v| v.upper).collect();
    for &(j, l, h) in overrides {
        lo[j] = lo[j].max(l);
        hi[j] = hi[j].min(h);
    }
    for j in 0..n {
        if lo[j] > hi[j] + EPS {
            return Err(SolveError::Infeasible);
        }
        // Guard against a tiny negative width from rounding.
        if hi[j] < lo[j] {
            hi[j] = lo[j];
        }
    }

    // (Re)prepare the sparse rows if this workspace saw a different
    // problem. The warm basis deliberately survives: callers install one
    // explicitly per solve (see `par_map_with`'s determinism contract),
    // and a fresh workspace must treat it exactly like a used one or
    // results become thread-assignment-dependent in the parallel
    // branch-and-bound. A basis that does not fit the prepared layout is
    // rejected by `install_basis`'s dimension check.
    if !ws.prepared.as_ref().is_some_and(|p| p.matches(problem)) {
        ws.prepared = Some(Prepared::build(problem));
    }
    let prepared = ws.prepared.as_ref().expect("prepared above");

    // Shift x = lo + y. Constraint rhs absorbs the shift.
    ws.tab.build(prepared, &lo, &hi);
    let mut install = Install::Reject;
    if let Some(basis) = ws.warm.as_ref() {
        install = ws.tab.install_basis(basis);
        if install == Install::Reject {
            // The install pivots mutated the tableau; rebuild for phase 1.
            ws.tab.build(prepared, &lo, &hi);
        }
    }
    ws.tab.stats = SolveStats {
        rows: ws.tab.rows as u32,
        cols: ws.tab.cols as u32,
        // A basis was accepted — either immediately feasible or repaired
        // into a short artificial-only phase 1 (the append_rows path).
        warm_start: install != Install::Reject,
        ..SolveStats::default()
    };
    // Only solves running inside an active trace get a span: the
    // parallel hardening sweep calls in here from `par_map` workers with
    // no context, and emitting from those threads would interleave
    // nondeterministically (see the determinism contract in `bate_obs`).
    let traced = bate_obs::context::current().is_some();
    let mut solve_span = traced.then(|| {
        bate_obs::span!(
            "lp.solve",
            rows = ws.tab.rows as u64,
            cols = ws.tab.cols as u64,
            warm_start = install != Install::Reject,
        )
    });
    let run = (|| {
        match install {
            Install::Feasible => ws.tab.phase2(problem, false),
            // Basics pushed outside their box by a bound/rhs edit: dual
            // repair from the warm point, then the usual primal polish.
            Install::NeedsDualRepair => ws.tab.phase2(problem, true),
            _ => {
                // Cold start, or a warm install that left artificials basic
                // (phase1 early-returns when the slack basis is feasible).
                ws.tab.phase1()?;
                ws.tab.phase2(problem, false)
            }
        }
    })();
    if let Err(e) = run {
        // Dual repair is best-effort: an exhausted or stuck repair says
        // nothing about the problem itself, so retry once from a cold
        // start before reporting an error (mirrors the caller-side cold
        // retries around row generation). Genuine infeasibility from the
        // cold path propagates as usual.
        if install == Install::NeedsDualRepair {
            phase_metrics().warm_fallbacks.inc();
            if traced {
                // The event's ctx stamp carries the triggering trace id.
                bate_obs::warn!("lp.warm_fallback", reason = "dual_repair_failed");
            }
            ws.tab.build(prepared, &lo, &hi);
            ws.tab.stats = SolveStats {
                rows: ws.tab.rows as u32,
                cols: ws.tab.cols as u32,
                warm_start: false,
                ..SolveStats::default()
            };
            let retry = (|| {
                ws.tab.phase1()?;
                ws.tab.phase2(problem, false)
            })();
            if let Err(e2) = retry {
                ws.warm = None;
                return Err(e2);
            }
        } else {
            ws.warm = None;
            return Err(e);
        }
    }

    let extract_values = |tab: &Tableau| {
        let y = tab.extract();
        let mut values = vec![0.0f64; n];
        for j in 0..n {
            let v = lo[j] + y[j];
            // Clamp solver noise back into the box.
            values[j] = v.clamp(lo[j], hi[j]);
        }
        values
    };
    let mut values = extract_values(&ws.tab);

    // Backstop for every warm path: the repaired/polished point must
    // actually satisfy the rows. A warm install starts from a tableau the
    // saved basis reshaped, so any numerical damage along the repair
    // (near-singular install pivot chains, dual-repair round-off) would
    // otherwise surface as a silently wrong "optimum" — one cheap residual
    // scan converts that into a cold re-solve instead.
    if ws.tab.stats.warm_start && primal_violation(problem, &values) > 1e-6 {
        phase_metrics().warm_fallbacks.inc();
        if traced {
            bate_obs::warn!("lp.warm_fallback", reason = "residual_backstop");
        }
        ws.tab.build(prepared, &lo, &hi);
        let warm_stats = ws.tab.stats.clone();
        ws.tab.stats = SolveStats {
            rows: ws.tab.rows as u32,
            cols: ws.tab.cols as u32,
            warm_start: false,
            // Keep the wasted warm work on the books.
            pivots: warm_stats.pivots,
            dual_pivots: warm_stats.dual_pivots,
            bound_flips: warm_stats.bound_flips,
            ..SolveStats::default()
        };
        let redo = (|| {
            ws.tab.phase1()?;
            ws.tab.phase2(problem, false)
        })();
        if let Err(e) = redo {
            ws.warm = None;
            return Err(e);
        }
        values = extract_values(&ws.tab);
    }

    // Re-arm the warm basis with this solve's final basis.
    ws.warm = Some(Basis {
        rows: ws.tab.basis.clone(),
        at_upper: ws.tab.at_upper.clone(),
    });

    // Phase attribution: one observation per completed solve.
    {
        let s = &ws.tab.stats;
        let pm = phase_metrics();
        pm.phase1.observe(s.phase1_secs * 1e9);
        pm.phase2.observe(s.phase2_secs * 1e9);
        pm.pricing.observe(s.pricing_secs * 1e9);
        pm.pivot.observe(s.pivot_secs * 1e9);
        if s.dual_repair_secs > 0.0 {
            pm.dual_repair.observe(s.dual_repair_secs * 1e9);
        }
        if let Some(sp) = solve_span.as_mut() {
            sp.record("iterations", s.iterations());
            sp.record("pivots", s.pivots);
            sp.record("dual_pivots", s.dual_pivots);
        }
    }
    drop(solve_span);

    let tab = &ws.tab;
    let objective = problem.objective_value(&values);
    Ok(Solution {
        objective,
        values,
        duals: Some(tab.duals(problem.sense)),
        stats: tab.stats.clone(),
    })
}

/// Largest relative row residual of `values` over the problem's own
/// constraints (0.0 when every row holds). Bound-override feasibility is
/// the caller's concern — extracted values are already clamped into the
/// effective box.
fn primal_violation(problem: &Problem, values: &[f64]) -> f64 {
    let mut worst = 0.0f64;
    for c in &problem.constraints {
        let lhs: f64 = c.terms.iter().map(|&(j, coef)| coef * values[j]).sum();
        let scale = 1.0 + c.rhs.abs();
        let v = match c.relation {
            Relation::Le => (lhs - c.rhs) / scale,
            Relation::Ge => (c.rhs - lhs) / scale,
            Relation::Eq => (lhs - c.rhs).abs() / scale,
        };
        worst = worst.max(v);
    }
    worst
}

/// Bounded-variable simplex tableau with sparse pivot application.
///
/// The matrix part holds `B^{-1} A`; the last column holds the *current
/// values of the basic variables* (with nonbasic-at-upper contributions
/// folded in), which is what the ratio test needs directly. Storage is
/// dense row-major, but pivots only touch the nonzero columns of the pivot
/// row (gathered once per pivot into `scratch`).
#[derive(Debug, Default)]
struct Tableau {
    /// Row-major, `rows x (cols + 1)`; last column = basic values.
    a: Vec<f64>,
    rows: usize,
    cols: usize,
    /// Basis variable of each row.
    basis: Vec<usize>,
    /// `is_basic[c]` ⇔ some row has `basis[r] == c`. Maintained across
    /// pivots (the dense kernel rebuilt this every iteration).
    is_basic: Vec<bool>,
    /// Reduced-cost row, length `cols` (no rhs cell — the objective value
    /// is tracked separately in `objval`).
    obj: Vec<f64>,
    /// Current objective value of the internal minimization.
    objval: f64,
    /// Upper bound (width after shifting) per column; `INFINITY` when
    /// unbounded above.
    ub: Vec<f64>,
    /// For nonbasic columns: is the variable sitting at its upper bound?
    at_upper: Vec<bool>,
    /// Columns that may enter the basis (artificials are blocked in
    /// phase 2; zero-width columns are always blocked).
    allowed: Vec<bool>,
    /// Index of the first artificial column.
    first_artificial: usize,
    /// Number of structural (shifted user) variables.
    n_struct: usize,
    /// Per original constraint: the marker column (slack/surplus/
    /// artificial) and the sign mapping its reduced cost to the row's dual
    /// value, used by [`Tableau::duals`].
    row_meta: Vec<(usize, f64)>,
    /// Pivot scratch: nonzero column indices of the current pivot row,
    /// with the (scaled) values gathered into `scratch_val` so the
    /// elimination inner loop reads them contiguously.
    scratch: Vec<usize>,
    scratch_val: Vec<f64>,
    /// Per-column row *files*: `col_rows[c]` is a superset of the rows
    /// where column `c` is nonzero (entries may be stale-zero or
    /// duplicated; they are sorted + deduped lazily when the column is
    /// priced in). The tableau is row-major, so reading one column
    /// strides across the whole matrix — one TLB/cache miss per row —
    /// and on block-sparse scheduling LPs only a handful of rows per
    /// column are actually nonzero. The lists confine the per-iteration
    /// entering-column gather, ratio test, and elimination to those rows.
    /// Maintained incrementally: a pivot creates nonzeros only at
    /// (eliminated row, pivot-row-nonzero column) pairs, which
    /// [`Tableau::note_fill_in`] records.
    col_rows: Vec<Vec<u32>>,
    /// Columns whose row list outgrew `rows / 2`: not worth tracking,
    /// fall back to a full column scan for these.
    col_dense: Vec<bool>,
    /// Whether row files are maintained at all. Small tableaus skip them
    /// (every column dense-flagged): the full column scan is cheap at
    /// that size and the bookkeeping would only add overhead — the same
    /// reasoning as the `partial` pricing gate.
    track_cols: bool,
    /// The current entering column, gathered sparsely: ascending rows
    /// with their (nonzero) coefficients in parallel. The ratio test,
    /// folded-rhs update, and elimination factors all read this.
    ecol_rows: Vec<u32>,
    ecol_vals: Vec<f64>,
    /// Partial-pricing candidate columns and their last full-scan
    /// violations (parallel vectors).
    candidates: Vec<usize>,
    cand_v: Vec<f64>,
    /// Pivots remaining before the next forced full pricing scan.
    refresh_in: usize,
    /// Candidate-list capacity.
    price_cap: usize,
    /// Whether partial pricing is active. Small tableaus full-scan every
    /// iteration instead: the scan is cheap at that size, and it keeps the
    /// entering rule identical to classic Dantzig pricing, so small LPs
    /// land on the same optimal vertex the original dense kernel chose
    /// (degenerate optima are common in the scheduling LPs, and callers
    /// observe which vertex they get through the extracted allocation).
    partial: bool,
    /// Kernel counters for the solve in progress (reset per solve by
    /// [`solve_with`], attached to the returned [`Solution`]).
    stats: SolveStats,
}

/// Hint the CPU to start loading the cache line holding `p`. The
/// entering-column gather reads the row-major tableau at a
/// `(cols+1) * 8`-byte stride — beyond the page-bounded reach of
/// hardware stride prefetchers — so without an explicit hint each row
/// read serialises on a full memory-latency miss. Prefetching a fixed
/// distance ahead overlaps those misses. `wrapping_add` keeps the
/// address computation defined even past the end of the buffer; a
/// prefetch of an unmapped address is architecturally a no-op.
#[inline(always)]
fn prefetch_read(p: *const f64) {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: prefetch instructions never fault; any address is allowed.
    unsafe {
        use std::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
        _mm_prefetch::<_MM_HINT_T0>(p as *const i8);
    }
    #[cfg(target_arch = "aarch64")]
    // SAFETY: `prfm pldl1keep` never faults; any address is allowed.
    unsafe {
        std::arch::asm!("prfm pldl1keep, [{0}]", in(reg) p, options(nostack, preserves_flags));
    }
    #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
    let _ = p;
}

/// How many rows ahead the column gather prefetches. Large enough to
/// cover DRAM latency at one tableau row per loop step, small enough
/// not to thrash L1.
const GATHER_PREFETCH_DIST: usize = 8;

impl Tableau {
    #[inline]
    fn at(&self, r: usize, c: usize) -> f64 {
        self.a[r * (self.cols + 1) + c]
    }

    #[inline]
    fn set(&mut self, r: usize, c: usize, v: f64) {
        self.a[r * (self.cols + 1) + c] = v;
    }

    #[inline]
    fn xb(&self, r: usize) -> f64 {
        self.at(r, self.cols)
    }

    /// Fill the tableau from `prepared` with variables shifted by `lo`;
    /// `hi` are the (pre-shift) upper bounds. Reuses every buffer.
    fn build(&mut self, prepared: &Prepared, lo: &[f64], hi: &[f64]) {
        let n = lo.len();
        let m = prepared.relations.len();
        let cols = prepared.cols;

        // Zero the matrix. When the workspace is rebuilt on the same
        // layout (the warm-start paths: branch-and-bound bound overrides,
        // hardening re-solves, rejected basis installs), the row files
        // say exactly which cells can be nonzero, so zeroing those plus
        // the rhs column is O(nnz) instead of a matrix-sized memset —
        // at scheduling scale the memset alone costs as much as the
        // whole pivot loop.
        let stride = cols + 1;
        let same_layout = self.track_cols
            && self.rows == m
            && self.cols == cols
            && self.a.len() == m * stride
            && self.col_rows.len() == cols;
        if same_layout {
            for c in 0..cols {
                if self.col_dense[c] {
                    for r in 0..m {
                        self.a[r * stride + c] = 0.0;
                    }
                } else {
                    for &r in &self.col_rows[c] {
                        self.a[r as usize * stride + c] = 0.0;
                    }
                }
            }
            for r in 0..m {
                self.a[r * stride + cols] = 0.0;
            }
        } else {
            self.a.clear();
            self.a.resize(m * stride, 0.0);
        }

        self.rows = m;
        self.cols = cols;
        self.n_struct = n;
        self.first_artificial = prepared.first_artificial;
        self.objval = 0.0;
        self.track_cols = cols > COL_FILE_MIN_COLS;

        self.basis.clear();
        self.basis.resize(m, usize::MAX);
        self.is_basic.clear();
        self.is_basic.resize(cols, false);
        self.obj.clear();
        self.obj.resize(cols, 0.0);
        self.ub.clear();
        self.ub.resize(cols, f64::INFINITY);
        self.at_upper.clear();
        self.at_upper.resize(cols, false);
        self.allowed.clear();
        self.allowed.resize(cols, true);
        self.row_meta.clear();
        for list in self.col_rows.iter_mut() {
            list.clear(); // keep inner allocations for warm rebuilds
        }
        if self.col_rows.len() > cols {
            self.col_rows.truncate(cols);
        } else {
            self.col_rows.resize_with(cols, Vec::new);
        }
        self.col_dense.clear();
        self.col_dense.resize(cols, !self.track_cols);
        self.ecol_rows.clear();
        self.ecol_vals.clear();
        self.candidates.clear();
        self.cand_v.clear();
        self.refresh_in = 0;
        self.price_cap = (cols / 8).clamp(16, 256);
        self.partial = cols > PARTIAL_PRICING_MIN_COLS;

        for j in 0..n {
            self.ub[j] = hi[j] - lo[j];
            if self.ub[j] < EPS {
                self.allowed[j] = false; // fixed variable, can never move
            }
        }

        let track = self.track_cols;
        for i in 0..m {
            // Shifted rhs; a negative one flips the whole row so phase 1
            // starts from rhs >= 0 (flipped rows report sign-flipped duals).
            let shift: f64 = prepared.terms[i]
                .iter()
                .map(|&(j, coef)| coef * lo[j])
                .sum();
            let rhs = prepared.rhs[i] - shift;
            let (sign, flip) = if rhs < 0.0 { (-1.0, -1.0) } else { (1.0, 1.0) };
            for &(j, coef) in &prepared.terms[i] {
                self.set(i, j, sign * coef);
                if track {
                    self.col_rows[j].push(i as u32);
                }
            }
            self.set(i, cols, sign * rhs);
            let relation = if sign < 0.0 {
                match prepared.relations[i] {
                    Relation::Le => Relation::Ge,
                    Relation::Ge => Relation::Le,
                    Relation::Eq => Relation::Eq,
                }
            } else {
                prepared.relations[i]
            };
            let slack = prepared.slack_col[i];
            let art = prepared.art_col[i];
            match relation {
                Relation::Le => {
                    self.set(i, slack, 1.0);
                    if track {
                        self.col_rows[slack].push(i as u32);
                    }
                    self.basis[i] = slack;
                    // d_slack = -y_i  →  y_i = -d_slack.
                    self.row_meta.push((slack, -flip));
                    // This row's artificial column stays all-zero.
                    self.allowed[art] = false;
                }
                Relation::Ge => {
                    self.set(i, slack, -1.0);
                    if track {
                        self.col_rows[slack].push(i as u32);
                    }
                    // d_surplus = +y_i.
                    self.row_meta.push((slack, flip));
                    self.set(i, art, 1.0);
                    if track {
                        self.col_rows[art].push(i as u32);
                    }
                    self.basis[i] = art;
                }
                Relation::Eq => {
                    self.set(i, art, 1.0);
                    if track {
                        self.col_rows[art].push(i as u32);
                    }
                    self.basis[i] = art;
                    // d_artificial = c_art - y_i = -y_i in phase 2.
                    self.row_meta.push((art, -flip));
                }
            }
            self.is_basic[self.basis[i]] = true;
        }
    }

    /// Try to reinstall `saved` as the starting basis, skipping phase 1.
    ///
    /// Pivots the freshly built tableau onto the saved basis (transforming
    /// the rhs to `B⁻¹b` along the way), folds nonbasic-at-upper
    /// contributions back in, and inspects primal feasibility:
    ///
    /// * every basic inside its box → [`Install::Feasible`], phase 1 is
    ///   skipped entirely;
    /// * a slack-basic row driven negative (the row-generation pattern:
    ///   [`Workspace::append_rows`] marks each appended row's slack basic,
    ///   and the warm point violates exactly the rows the separation
    ///   oracle just appended) is converted **in place** — the row is
    ///   sign-flipped and its (still all-zero) artificial column made
    ///   basic at the violation amount — and a basic artificial resting
    ///   at a positive value is kept as-is; both yield
    ///   [`Install::NeedsPhase1`], where phase 1 starts from the warm
    ///   point and only has to drive out the handful of artificials
    ///   measuring the new violations instead of rebuilding feasibility
    ///   from the slack basis;
    /// * basics outside their box that the conversion above cannot absorb
    ///   (beyond a shrunk upper bound, or negative without the row's own
    ///   slack basic — the bound/rhs-edit pattern) are left installed and
    ///   reported as [`Install::NeedsDualRepair`]: the dual simplex drives
    ///   them back to a bound from the still-dual-feasible warm point;
    /// * anything unrepairable (layout mismatch, singular pivot, a
    ///   negative basic artificial, positive artificials mixed with
    ///   out-of-box basics) → [`Install::Reject`], with the tableau left
    ///   dirty; the caller rebuilds and solves cold.
    fn install_basis(&mut self, saved: &Basis) -> Install {
        if saved.rows.len() != self.rows || saved.at_upper.len() != self.cols {
            return Install::Reject;
        }
        // The solution point a basis describes depends only on the *set*
        // of basic columns (plus the at-upper rests), not on which row
        // each one is associated with — so the install realizes the set:
        // wanted columns that are already basic stay where they are, and
        // each remaining one is pivoted into the first row whose current
        // basic is not wanted. This accepts saved bases whose row
        // assignment got permuted by pivoting history (the strict
        // row-by-row install rejected those and forced a cold restart).
        let mut wanted = vec![false; self.cols];
        for &j in &saved.rows {
            if j >= self.cols || wanted[j] {
                return Install::Reject;
            }
            wanted[j] = true;
        }
        for idx in 0..self.rows {
            let j = saved.rows[idx];
            if self.is_basic[j] {
                continue; // already basic; keep in place
            }
            let mut target = None;
            for r in 0..self.rows {
                if !wanted[self.basis[r]] && self.at(r, j).abs() >= 1e-8 {
                    target = Some(r);
                    break;
                }
            }
            let Some(r) = target else {
                return Install::Reject; // singular: no admissible pivot row
            };
            let old = self.basis[r];
            self.pivot_matrix_ext(r, j, true);
            self.is_basic[old] = false;
            self.is_basic[j] = true;
            self.basis[r] = j;
        }
        // Restore nonbasic-at-upper rests and fold their contribution into
        // the rhs (which currently holds B⁻¹b).
        for j in 0..self.cols {
            self.at_upper[j] = false;
            if saved.at_upper[j] && !self.is_basic[j] && self.ub[j].is_finite() && self.ub[j] > 0.0
            {
                self.at_upper[j] = true;
                let w = self.ub[j];
                for r in 0..self.rows {
                    let alpha = self.at(r, j);
                    if alpha != 0.0 {
                        let nv = self.xb(r) - alpha * w;
                        self.set(r, self.cols, nv);
                    }
                }
            }
        }
        // Primal feasibility of the installed point, with repair. A first
        // read-only pass classifies every row so one repair strategy can
        // be committed for the whole tableau: converting a row to
        // artificial form pins it to a phase-1 run, while dual repair
        // needs the infeasible rows left exactly as installed.
        let mut has_pos_art = false;
        let mut has_above_ub = false;
        let mut all_convertible = true;
        let mut neg_rows: Vec<usize> = Vec::new();
        for r in 0..self.rows {
            let v = self.xb(r);
            let b = self.basis[r];
            if b >= self.first_artificial {
                if v < -PHASE1_TOL {
                    return Install::Reject; // artificials cannot go negative
                }
                if v > PHASE1_TOL {
                    // A basic artificial at a positive value is a valid
                    // phase-1 starting point (its column is still the unit
                    // vector for this row — install pivots never touched
                    // it, see `convert_row_to_artificial`).
                    has_pos_art = true;
                }
                continue;
            }
            if v > self.ub[b] + PHASE1_TOL {
                has_above_ub = true;
            }
            if v < -PHASE1_TOL {
                neg_rows.push(r);
                if !self.can_convert_row(r) {
                    all_convertible = false;
                }
            }
        }

        if !has_pos_art && !has_above_ub && neg_rows.is_empty() {
            self.clamp_negative_noise();
            return Install::Feasible;
        }
        if !has_above_ub && all_convertible {
            // The append_rows pattern: every violated row is a freshly
            // appended one whose slack went negative (plus possibly basic
            // artificials the saved basis kept). Convert in place and run
            // a short phase 1 confined to those artificials.
            for &r in &neg_rows {
                let ok = self.convert_row_to_artificial(r);
                debug_assert!(ok, "can_convert_row admitted an unconvertible row");
                if !ok {
                    return Install::Reject;
                }
            }
            self.clamp_negative_noise();
            return Install::NeedsPhase1;
        }
        if !has_pos_art {
            // The bound/rhs-edit pattern: basics pushed below zero or above
            // a (shrunk) upper bound. Leave the rows as installed — the
            // dual simplex drives each one back to a bound while keeping
            // reduced costs optimal.
            return Install::NeedsDualRepair;
        }
        // Positive artificials mixed with out-of-box basics: neither a
        // confined phase 1 nor a pure dual repair applies.
        Install::Reject
    }

    /// Clamp sub-tolerance negative basic values (solver noise on a basis
    /// accepted as feasible) back to zero.
    fn clamp_negative_noise(&mut self) {
        for r in 0..self.rows {
            if self.xb(r) < 0.0 {
                self.set(r, self.cols, 0.0);
            }
        }
    }

    /// Read-only preconditions of [`Tableau::convert_row_to_artificial`]:
    /// would the conversion succeed on row `r`?
    fn can_convert_row(&self, r: usize) -> bool {
        let slack = self.basis[r];
        if self.row_meta[r].0 != slack || slack >= self.first_artificial {
            return false;
        }
        let art = self.first_artificial + r;
        if self.is_basic[art] {
            return false;
        }
        let stride = self.cols + 1;
        for r2 in 0..self.rows {
            if r2 != r && self.a[r2 * stride + art] != 0.0 {
                return false;
            }
        }
        let own = self.a[r * stride + art];
        own == 0.0 || own == -1.0
    }

    /// Repair a row whose basic slack sits at a negative value by swapping
    /// the row's artificial in as the basic measuring the violation.
    ///
    /// Preconditions (checked; `false` on failure, caller rejects the
    /// install): the row's basic must be its own slack/surplus marker, and
    /// the row's artificial column must be zero outside row `r` and `0` or
    /// `-1` in it — true for appended rows: a `Le` artificial is never
    /// populated by `build`, a `Ge` artificial holds exactly `-1` after
    /// the surplus pivot (the row was scaled by `1/(-1)`), and install
    /// pivots cannot create fill-in elsewhere (every pivot row carries a
    /// zero in appended-row marker columns).
    ///
    /// The row `a·x + s = rhs` with basic `s = v < 0` is sign-flipped to
    /// `-a·x - s + art = -rhs` with `s` nonbasic at its lower bound and
    /// `art = -v > 0` basic: the artificial's value is exactly the
    /// violation, and driving it to zero in phase 1 restores the original
    /// inequality. The row's `row_meta` dual sign is untouched: the flip
    /// negates the marker column's coefficient along with the row, and the
    /// two cancel in the marker's reduced cost, keeping [`Tableau::duals`]
    /// exact for the final solve.
    fn convert_row_to_artificial(&mut self, r: usize) -> bool {
        let slack = self.basis[r];
        if self.row_meta[r].0 != slack || slack >= self.first_artificial {
            return false;
        }
        // build() always lays artificials out as first_artificial + row.
        let art = self.first_artificial + r;
        if self.is_basic[art] {
            return false;
        }
        let stride = self.cols + 1;
        for r2 in 0..self.rows {
            if r2 != r && self.a[r2 * stride + art] != 0.0 {
                return false;
            }
        }
        let base = r * stride;
        let own = self.a[base + art];
        if own != 0.0 && own != -1.0 {
            return false;
        }
        // Flip the whole row, rhs included (xb(r) = v becomes -v > 0).
        // `row_meta` keeps its sign: the flip negates both the row's dual
        // and the marker column's tableau coefficient, and the two cancel
        // in the marker's reduced cost (verified against cold duals by
        // `converted_row_duals_match_cold` for both relations).
        for c in 0..=self.cols {
            let v = self.a[base + c];
            if v != 0.0 {
                self.a[base + c] = -v;
            }
        }
        if own == 0.0 {
            self.a[base + art] = 1.0;
            if self.track_cols && !self.col_dense[art] {
                self.col_rows[art].push(r as u32);
            }
        }
        self.is_basic[slack] = false;
        self.at_upper[slack] = false; // rests at its lower bound (0)
        self.is_basic[art] = true;
        self.basis[r] = art;
        true
    }

    /// Phase 1: minimize the sum of artificial variables.
    fn phase1(&mut self) -> Result<(), SolveError> {
        let any_artificial_basic = self
            .basis
            .iter()
            .any(|&b| b >= self.first_artificial);
        if !any_artificial_basic {
            return Ok(()); // slack basis is already feasible
        }
        // Reduced costs for cost e_{artificials}: basics must have zero
        // reduced cost, so subtract each artificial-basic row.
        for v in self.obj.iter_mut() {
            *v = 0.0;
        }
        for c in self.first_artificial..self.cols {
            self.obj[c] = 1.0;
        }
        self.objval = 0.0;
        for i in 0..self.rows {
            if self.basis[i] >= self.first_artificial {
                for c in 0..self.cols {
                    let v = self.at(i, c);
                    if v != 0.0 {
                        self.obj[c] -= v;
                    }
                }
                self.objval += self.xb(i);
            }
        }

        self.reset_pricing();
        let t0 = std::time::Instant::now();
        let run = self.iterate();
        self.stats.phase1_secs += t0.elapsed().as_secs_f64();
        self.stats.phase1_iterations += run?;

        if self.objval > PHASE1_TOL {
            return Err(SolveError::Infeasible);
        }

        // Drive any artificial still in the basis out (it sits at zero, so
        // this is a degenerate pivot).
        for r in 0..self.rows {
            if self.basis[r] >= self.first_artificial {
                let col = (0..self.first_artificial).find(|&c| self.at(r, c).abs() > 1e-8);
                if let Some(c) = col {
                    self.degenerate_swap(r, c);
                }
                // No pivot column: the row is redundant; the artificial
                // stays basic at zero and its column is blocked in phase 2.
            }
        }
        Ok(())
    }

    /// Phase 2: optimize the real (internally minimized) objective.
    ///
    /// With `dual_repair` set (a warm install left basics outside their
    /// box), a dual-simplex pass restores primal feasibility *after* the
    /// reduced costs are rebuilt — the dual ratio test needs them — and
    /// before the primal pivot loop polishes to optimality.
    fn phase2(&mut self, problem: &Problem, dual_repair: bool) -> Result<(), SolveError> {
        let sign = match problem.sense {
            Sense::Minimize => 1.0,
            Sense::Maximize => -1.0,
        };
        for c in self.first_artificial..self.cols {
            self.allowed[c] = false;
        }
        // Rebuild reduced costs: d_j = c_j - c_B' (B^{-1} A_j).
        for c in 0..self.cols {
            self.obj[c] = if c < self.n_struct {
                sign * problem.objective[c]
            } else {
                0.0
            };
        }
        for i in 0..self.rows {
            let b = self.basis[i];
            let cb = if b < self.n_struct {
                sign * problem.objective[b]
            } else {
                0.0
            };
            if cb != 0.0 {
                for c in 0..self.cols {
                    let v = self.at(i, c);
                    if v != 0.0 {
                        self.obj[c] -= cb * v;
                    }
                }
            }
        }
        // Current objective value: c_B' x_B + Σ_{nonbasic at upper} c_j w_j.
        let mut val = 0.0;
        for i in 0..self.rows {
            let b = self.basis[i];
            if b < self.n_struct {
                val += sign * problem.objective[b] * self.xb(i);
            }
        }
        for j in 0..self.n_struct {
            if !self.is_basic[j] && self.at_upper[j] {
                val += sign * problem.objective[j] * self.ub[j];
            }
        }
        self.objval = val;

        if dual_repair {
            let t0 = std::time::Instant::now();
            let run = self.dual_iterate();
            let secs = t0.elapsed().as_secs_f64();
            self.stats.phase1_secs += secs;
            self.stats.dual_repair_secs += secs;
            self.stats.phase1_iterations += run?;
        }

        self.reset_pricing();
        let t0 = std::time::Instant::now();
        let run = self.iterate();
        self.stats.phase2_secs += t0.elapsed().as_secs_f64();
        self.stats.phase2_iterations += run?;
        Ok(())
    }

    /// Dual-simplex repair loop: while some basic variable sits outside
    /// its box (below zero or above its upper bound), pivot it out to the
    /// violated bound and bring in the nonbasic column with the smallest
    /// dual ratio `|d_c / α_rc|` among those that move in a
    /// feasibility-restoring direction — the classic dual ratio test,
    /// which keeps the reduced costs (near-)optimal so the primal polish
    /// afterwards converges in a handful of pivots.
    ///
    /// The folded-rhs invariant (`xb(r)` = current value of row `r`'s
    /// basic) makes the pivot mechanics identical to the primal loop's:
    /// the entering variable moves by `step = (v - target) / α_re` from
    /// its rest, every other gathered row's value shifts by `-α · step`,
    /// and the leaving variable lands exactly on the violated bound (its
    /// at-upper rest is recorded before the pivot). The entering step is
    /// always kept inside the entering column's own box: a candidate whose
    /// box is too narrow to absorb the full repair is **bound-flipped**
    /// across it instead (shrinking the violation by `|α|·width`) and the
    /// scan repeats — the bounded-variable dual ratio test. An unclamped
    /// overshoot would leave the entering basic far outside its box, and
    /// chasing that new worst violation diverges (observed on
    /// branch-and-bound chains before flips were introduced).
    ///
    /// Candidates also need `|α| > 1e-7` — a repair pivot on a tiny
    /// element scales the tableau by `1/α` and wrecks it numerically;
    /// abandoning the repair instead is safe because the caller retries
    /// the whole solve cold on any dual-repair error.
    ///
    /// Tie-breaks (most-infeasible row, first column at the minimum
    /// ratio) are index-ordered, keeping pivot sequences deterministic.
    fn dual_iterate(&mut self) -> Result<u64, SolveError> {
        /// Minimum pivot-element magnitude; below this the repair is
        /// abandoned rather than risk a `1/α` blow-up.
        const DUAL_PIVOT_TOL: f64 = 1e-7;
        let max_iters = 50 * self.rows + 1_000;
        let stride = self.cols + 1;
        let mut iters = 0u64;
        'outer: loop {
            if iters as usize >= max_iters {
                return Err(SolveError::IterationLimit);
            }
            // Leaving row: the most infeasible basic; strict comparisons
            // keep ties on the smallest row index.
            let mut leave: Option<(usize, f64, bool)> = None; // (row, target, to_upper)
            let mut worst = PHASE1_TOL;
            for r in 0..self.rows {
                let v = self.xb(r);
                let b = self.basis[r];
                if v < -worst {
                    worst = -v;
                    leave = Some((r, 0.0, false));
                } else if self.ub[b].is_finite() && v - self.ub[b] > worst {
                    worst = v - self.ub[b];
                    leave = Some((r, self.ub[b], true));
                }
            }
            let Some((r, target, to_upper)) = leave else {
                return Ok(iters); // every basic back inside its box
            };
            let base = r * stride;
            // Inner loop: flip too-narrow candidates until one can absorb
            // the remaining violation, then pivot it in. Each flip strictly
            // shrinks `diff` and reverses the flipped column's admissible
            // direction, so the scan cannot revisit it for this row.
            loop {
                if iters as usize >= max_iters {
                    return Err(SolveError::IterationLimit);
                }
                let diff = self.xb(r) - target;
                if diff.abs() <= PHASE1_TOL {
                    // Flips alone repaired the row.
                    continue 'outer;
                }
                // Entering column: admissible direction (the entering
                // variable can only rise from its lower rest / fall from
                // its upper rest, and must push the leaving basic toward
                // `target`), minimum dual ratio.
                let mut best: Option<(usize, f64)> = None; // (col, alpha)
                let mut best_ratio = f64::INFINITY;
                for c in 0..self.cols {
                    if self.is_basic[c] || !self.allowed[c] {
                        continue;
                    }
                    let alpha = self.a[base + c];
                    if alpha.abs() <= DUAL_PIVOT_TOL {
                        continue;
                    }
                    // step = diff / alpha; at-lower columns need step > 0,
                    // at-upper columns step < 0.
                    let admissible = if self.at_upper[c] {
                        diff * alpha < 0.0
                    } else {
                        diff * alpha > 0.0
                    };
                    if !admissible {
                        continue;
                    }
                    let ratio = (self.obj[c] / alpha).abs();
                    if ratio < best_ratio - EPS {
                        best_ratio = ratio;
                        best = Some((c, alpha));
                    }
                }
                let Some((e, alpha)) = best else {
                    // No column can restore this row: the box constraints
                    // are inconsistent with the row system (or only
                    // numerically-unsafe pivots remain — the caller's cold
                    // retry settles which).
                    return Err(SolveError::Infeasible);
                };

                let step = diff / alpha;
                let width = self.ub[e];
                if width.is_finite() && step.abs() > width + EPS {
                    // Too narrow: move `e` across its whole box. `diff`
                    // shrinks by `|α|·width` and keeps its sign (the full
                    // pivot would have needed more than the width).
                    let delta = if self.at_upper[e] { -width } else { width };
                    self.gather_entering(e);
                    for k in 0..self.ecol_rows.len() {
                        let i = self.ecol_rows[k] as usize;
                        let nv = self.xb(i) - self.ecol_vals[k] * delta;
                        self.set(i, self.cols, nv);
                    }
                    self.objval += self.obj[e] * delta;
                    self.at_upper[e] = !self.at_upper[e];
                    self.stats.bound_flips += 1;
                    iters += 1;
                    continue;
                }

                self.gather_entering(e);
                let pk = self
                    .ecol_rows
                    .iter()
                    .position(|&g| g as usize == r)
                    .expect("pivot row missing from entering-column gather");
                let rest = if self.at_upper[e] { self.ub[e] } else { 0.0 };
                self.objval += self.obj[e] * step;
                let old_basic = self.basis[r];
                self.at_upper[old_basic] = to_upper;
                self.pivot_with_rhs_update(r, e, step, pk);
                self.at_upper[e] = false;
                self.is_basic[old_basic] = false;
                self.is_basic[e] = true;
                self.basis[r] = e;
                // In-box by the width test above; clamp the epsilon slack.
                let nv = (rest + step).clamp(0.0, if width.is_finite() { width } else { f64::MAX });
                self.set(r, self.cols, if nv.abs() < EPS { 0.0 } else { nv });
                self.stats.pivots += 1;
                self.stats.dual_pivots += 1;
                iters += 1;
                continue 'outer;
            }
        }
    }

    /// Main pivot loop. Returns the number of iterations performed (the
    /// caller attributes them to its phase). Wraps [`Self::iterate_inner`]
    /// to fold the sampled pricing/pivot timings into the stats exactly
    /// once per call, whatever exit path the loop takes.
    fn iterate(&mut self) -> Result<u64, SolveError> {
        let mut pricing_ns = 0u64;
        let mut pivot_ns = 0u64;
        let out = self.iterate_inner(&mut pricing_ns, &mut pivot_ns);
        self.stats.pricing_secs += (pricing_ns * TIME_SAMPLE as u64) as f64 * 1e-9;
        self.stats.pivot_secs += (pivot_ns * TIME_SAMPLE as u64) as f64 * 1e-9;
        out
    }

    fn iterate_inner(
        &mut self,
        pricing_ns: &mut u64,
        pivot_ns: &mut u64,
    ) -> Result<u64, SolveError> {
        let max_iters = 400 * (self.rows + self.cols) + 20_000;
        let mut bland = false;
        let mut stall = 0usize;
        let mut last_obj = f64::INFINITY;
        // Wall-clock guard: healthy solves of the model sizes BATE builds
        // finish in well under a second; a solve running for tens of
        // seconds is degenerate-cycling under Bland's slow-but-safe rule
        // and will not produce a better answer. The cap keeps online
        // components responsive (callers treat IterationLimit like
        // Infeasible: reject / fall back).
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);

        for it in 0..max_iters {
            if it % 256 == 0 && std::time::Instant::now() > deadline {
                return Err(SolveError::IterationLimit);
            }
            // Phase-attribution sampling: every TIME_SAMPLE-th iteration is
            // timed (pricing vs pivot work) and the caller scales up.
            let t_iter = (it % TIME_SAMPLE == 0).then(std::time::Instant::now);
            let entering = self.choose_entering(bland);
            let t_pivot = t_iter.map(|t| {
                *pricing_ns += t.elapsed().as_nanos() as u64;
                std::time::Instant::now()
            });
            let Some(e) = entering else {
                return Ok(it as u64); // optimal (verified by a full pricing scan)
            };
            if bland {
                self.stats.bland_iterations += 1;
            }
            // Direction: +1 if entering rises from its lower bound, -1 if
            // it falls from its upper bound.
            let delta = if self.at_upper[e] { -1.0 } else { 1.0 };

            // Gather the entering column sparsely (ascending rows with
            // nonzero coefficients); the ratio test, rhs update, and
            // elimination below all iterate this instead of every row.
            self.gather_entering(e);

            // Ratio test: the entering step is limited by the entering
            // variable's own bound width (flip) and by every basic variable
            // hitting one of its bounds. Ties between rows break toward the
            // smallest basis index (Bland-compatible); a row beats a
            // same-sized bound flip. Rows absent from the gather have a
            // zero coefficient, i.e. never limit the step — visiting only
            // the gathered rows (in ascending order, like the full scan
            // this replaces) is exact.
            let mut t = self.ub[e]; // bound-flip limit (may be inf)
            let mut leave: Option<(usize, bool)> = None; // (gather index, leaves_at_upper)
            for k in 0..self.ecol_rows.len() {
                let i = self.ecol_rows[k] as usize;
                let alpha = self.ecol_vals[k];
                let rate = delta * alpha; // basic i changes at -rate per unit
                let candidate = if rate > EPS {
                    // Basic decreases toward 0.
                    Some((self.xb(i) / rate, false))
                } else if rate < -EPS && self.ub[self.basis[i]].is_finite() {
                    // Basic increases toward its own upper bound.
                    Some(((self.ub[self.basis[i]] - self.xb(i)) / (-rate), true))
                } else {
                    None
                };
                let Some((ti, at_up)) = candidate else { continue };
                let ti = ti.max(0.0);
                let take = match leave {
                    _ if ti < t - EPS => true,
                    None if ti <= t + EPS => true, // row beats a tied flip
                    Some((pk, _)) if ti <= t + EPS => {
                        self.basis[i] < self.basis[self.ecol_rows[pk] as usize]
                    }
                    _ => false,
                };
                if take {
                    t = t.min(ti);
                    leave = Some((k, at_up));
                }
            }

            if t.is_infinite() {
                return Err(SolveError::Unbounded);
            }

            // Objective improvement bookkeeping (d_e · Δx_e, Δx_e = δ·t).
            self.objval += self.obj[e] * delta * t;

            match leave {
                None => {
                    // Bound flip: entering moves across its whole range.
                    for k in 0..self.ecol_rows.len() {
                        let i = self.ecol_rows[k] as usize;
                        let nv = self.xb(i) - delta * self.ecol_vals[k] * t;
                        self.set(i, self.cols, nv);
                    }
                    self.at_upper[e] = !self.at_upper[e];
                    self.stats.bound_flips += 1;
                }
                Some((pk, leaves_at_upper)) => {
                    let r = self.ecol_rows[pk] as usize;
                    let new_value = if self.at_upper[e] {
                        self.ub[e] - t
                    } else {
                        t
                    };
                    let old_basic = self.basis[r];
                    self.at_upper[old_basic] = leaves_at_upper;
                    self.pivot_with_rhs_update(r, e, delta * t, pk);
                    self.at_upper[e] = false;
                    self.is_basic[old_basic] = false;
                    self.is_basic[e] = true;
                    self.basis[r] = e;
                    self.set(r, self.cols, new_value.max(0.0));
                    self.stats.pivots += 1;
                }
            }

            if let Some(t) = t_pivot {
                *pivot_ns += t.elapsed().as_nanos() as u64;
            }

            if self.objval < last_obj - 1e-12 {
                stall = 0;
            } else {
                stall += 1;
                if stall > STALL_LIMIT {
                    bland = true;
                }
            }
            last_obj = self.objval;
        }
        Err(SolveError::IterationLimit)
    }

    /// Pricing violation of column `c`: how strongly its reduced cost
    /// invites it into the basis (0.0 = not eligible).
    #[inline]
    fn violation(&self, c: usize) -> f64 {
        if self.is_basic[c] || !self.allowed[c] {
            return 0.0;
        }
        let d = self.obj[c];
        if self.at_upper[c] {
            if d > EPS {
                d
            } else {
                0.0
            }
        } else if d < -EPS {
            -d
        } else {
            0.0
        }
    }

    /// Forget the candidate list (phase transitions change the cost row
    /// wholesale, invalidating cached attractiveness).
    fn reset_pricing(&mut self) {
        self.candidates.clear();
        self.cand_v.clear();
        self.refresh_in = 0;
    }

    /// Entering column: nonbasic at lower with `d < 0`, or nonbasic at
    /// upper with `d > 0`.
    ///
    /// Partial pricing: between full scans only the candidate list is
    /// priced (stale entries are dropped in place). A full scan — which is
    /// the only way `None` (optimality) is returned — refills the list with
    /// the `price_cap` most attractive columns. Bland mode always scans
    /// fully and takes the first eligible index.
    fn choose_entering(&mut self, bland: bool) -> Option<usize> {
        if bland {
            return (0..self.cols).find(|&c| self.violation(c) > 0.0);
        }
        if self.partial && self.refresh_in > 0 && !self.candidates.is_empty() {
            self.refresh_in -= 1;
            let mut best: Option<usize> = None;
            let mut best_v = 0.0;
            let mut w = 0usize;
            for k in 0..self.candidates.len() {
                let c = self.candidates[k];
                let v = self.violation(c);
                if v > 0.0 {
                    self.candidates[w] = c;
                    self.cand_v[w] = v;
                    w += 1;
                    if v > best_v {
                        best_v = v;
                        best = Some(c);
                    }
                }
            }
            self.candidates.truncate(w);
            self.cand_v.truncate(w);
            if best.is_some() {
                self.stats.candidate_hits += 1;
                return best;
            }
        }
        self.full_price()
    }

    /// Full Dantzig scan; rebuilds the candidate list as a side effect.
    fn full_price(&mut self) -> Option<usize> {
        self.stats.full_price_scans += 1;
        self.refresh_in = PRICE_REFRESH;
        self.candidates.clear();
        self.cand_v.clear();
        let cap = self.price_cap;
        let mut best: Option<usize> = None;
        let mut best_v = 0.0;
        for c in 0..self.cols {
            let v = self.violation(c);
            if v <= 0.0 {
                continue;
            }
            if v > best_v {
                best_v = v;
                best = Some(c);
            }
            if !self.partial {
                continue; // pure Dantzig: no candidate list to maintain
            }
            if self.candidates.len() < cap {
                self.candidates.push(c);
                self.cand_v.push(v);
            } else {
                // Replace the weakest cached candidate (first-min on ties,
                // so the outcome is index-deterministic).
                let mut mi = 0usize;
                for k in 1..cap {
                    if self.cand_v[k] < self.cand_v[mi] {
                        mi = k;
                    }
                }
                if v > self.cand_v[mi] {
                    self.candidates[mi] = c;
                    self.cand_v[mi] = v;
                }
            }
        }
        best
    }

    /// Gather the entering column `e` into `ecol_rows` / `ecol_vals`:
    /// ascending rows, nonzero coefficients only. Uses the column's row
    /// file when one is tracked (sorting + deduping it in place, and
    /// compacting out entries that have gone stale-zero — safe because
    /// any pivot that re-creates a nonzero re-records the row); falls
    /// back to a full strided scan for dense-flagged columns.
    fn gather_entering(&mut self, e: usize) {
        self.ecol_rows.clear();
        self.ecol_vals.clear();
        let stride = self.cols + 1;
        if !self.col_dense[e] {
            let mut list = std::mem::take(&mut self.col_rows[e]);
            list.sort_unstable();
            list.dedup();
            if list.len() <= self.rows / 2 {
                for idx in 0..list.len() {
                    if let Some(&r) = list.get(idx + GATHER_PREFETCH_DIST) {
                        prefetch_read(self.a.as_ptr().wrapping_add(r as usize * stride + e));
                    }
                    let r = list[idx];
                    let v = self.a[r as usize * stride + e];
                    if v != 0.0 {
                        self.ecol_rows.push(r);
                        self.ecol_vals.push(v);
                    }
                }
                list.clear();
                list.extend_from_slice(&self.ecol_rows);
                self.col_rows[e] = list;
                return;
            }
            // Outgrew the tracking threshold: a full scan is no slower
            // than walking the list, so stop maintaining it.
            self.col_dense[e] = true;
        }
        for r in 0..self.rows {
            prefetch_read(
                self.a
                    .as_ptr()
                    .wrapping_add((r + GATHER_PREFETCH_DIST) * stride + e),
            );
            let v = self.a[r * stride + e];
            if v != 0.0 {
                self.ecol_rows.push(r as u32);
                self.ecol_vals.push(v);
            }
        }
    }

    /// Record the fill-in of a pivot at (`row`, `col`) in the per-column
    /// row files. The elimination wrote to (eliminated row, pivot-row
    /// nonzero column) pairs — the eliminated rows are exactly the
    /// gathered `ecol_rows` minus the pivot row, and the pivot-row
    /// nonzeros are `scratch` — and collapsed the entering column to a
    /// unit vector. Raw lists that outgrow `rows` entries are deduped in
    /// place and dense-flagged if still oversized, bounding both memory
    /// and the sort cost at the next gather.
    fn note_fill_in(&mut self, row: usize, col: usize) {
        if !self.track_cols {
            return;
        }
        for idx in 0..self.scratch.len() {
            let c = self.scratch[idx];
            if c == col || c >= self.cols || self.col_dense[c] {
                continue;
            }
            for k in 0..self.ecol_rows.len() {
                let r = self.ecol_rows[k];
                if r as usize != row {
                    self.col_rows[c].push(r);
                }
            }
            if self.col_rows[c].len() > self.rows {
                let list = &mut self.col_rows[c];
                list.sort_unstable();
                list.dedup();
                if list.len() > self.rows / 2 {
                    self.col_dense[c] = true;
                    *list = Vec::new();
                }
            }
        }
        // Column `col` is now exactly the unit vector for `row`.
        self.col_dense[col] = false;
        self.col_rows[col].clear();
        self.col_rows[col].push(row as u32);
    }

    /// Gauss-Jordan pivot restricted to the nonzero columns of the pivot
    /// row (the folded rhs is maintained by the caller).
    fn pivot_matrix(&mut self, row: usize, col: usize) {
        self.pivot_matrix_ext(row, col, false);
    }

    /// The main-loop pivot: Gauss-Jordan on the nonzero pivot-row columns,
    /// with the folded-rhs update (`xb -= α · step`) fused into the same
    /// row pass. Requires the entering column `col` to be gathered in
    /// `ecol_rows` / `ecol_vals` (with `pk` indexing the pivot row), which
    /// lets rows with a zero elimination factor be skipped without
    /// touching the matrix at all — on block-sparse scheduling LPs that is
    /// most of them. Arithmetic on touched cells is identical to
    /// `pivot_matrix` plus the caller-side rhs loop it replaces.
    fn pivot_with_rhs_update(&mut self, row: usize, col: usize, step: f64, pk: usize) {
        let stride = self.cols + 1;
        let base = row * stride;
        let p = self.ecol_vals[pk];
        debug_assert!(p.abs() > 1e-12, "pivot on (near-)zero element");
        let inv = 1.0 / p;
        self.scratch.clear();
        self.scratch_val.clear();
        for c in 0..self.cols {
            let v = self.a[base + c];
            if v != 0.0 {
                let sv = if c == col { 1.0 } else { v * inv };
                self.a[base + c] = sv;
                self.scratch.push(c);
                self.scratch_val.push(sv);
            }
        }
        self.a[base + col] = 1.0;

        for k in 0..self.ecol_rows.len() {
            if k == pk {
                continue;
            }
            let r = self.ecol_rows[k] as usize;
            let f = self.ecol_vals[k];
            let rbase = r * stride;
            self.a[rbase + self.cols] -= f * step;
            for k2 in 0..self.scratch.len() {
                self.a[rbase + self.scratch[k2]] -= f * self.scratch_val[k2];
            }
            self.a[rbase + col] = 0.0;
        }
        let f = self.obj[col];
        if f != 0.0 {
            for k in 0..self.scratch.len() {
                self.obj[self.scratch[k]] -= f * self.scratch_val[k];
            }
            self.obj[col] = 0.0;
        }
        self.note_fill_in(row, col);
    }

    /// Pivot implementation; `include_rhs` additionally transforms the rhs
    /// column (wanted when the rhs holds `B⁻¹b` during basis installation,
    /// NOT during the main loop where the caller maintains folded values).
    fn pivot_matrix_ext(&mut self, row: usize, col: usize, include_rhs: bool) {
        let stride = self.cols + 1;
        let base = row * stride;
        let p = self.a[base + col];
        debug_assert!(p.abs() > 1e-12, "pivot on (near-)zero element");
        let inv = 1.0 / p;
        // Gather the pivot row's nonzero columns once; scaling and all row
        // eliminations below touch only these. Untouched columns would
        // only ever receive `x -= f * 0`, so skipping them is exact.
        self.scratch.clear();
        let limit = if include_rhs { self.cols + 1 } else { self.cols };
        for c in 0..limit {
            let v = self.a[base + c];
            if v != 0.0 {
                self.a[base + c] = v * inv;
                self.scratch.push(c);
            }
        }
        self.a[base + col] = 1.0;

        // Track which rows get eliminated so the per-column row files can
        // record the fill-in afterwards (this path reads the entering
        // column with a strided scan — it only runs during warm-start
        // basis installation and artificial drive-out, never in the main
        // pivot loop).
        self.ecol_rows.clear();
        self.ecol_vals.clear();
        for r in 0..self.rows {
            if r == row {
                continue;
            }
            let f = self.a[r * stride + col];
            if f != 0.0 {
                self.ecol_rows.push(r as u32);
                let rbase = r * stride;
                for k in 0..self.scratch.len() {
                    let c = self.scratch[k];
                    self.a[rbase + c] -= f * self.a[base + c];
                }
                self.a[rbase + col] = 0.0;
            }
        }
        let f = self.obj[col];
        if f != 0.0 {
            for k in 0..self.scratch.len() {
                let c = self.scratch[k];
                if c < self.cols {
                    self.obj[c] -= f * self.a[base + c];
                }
            }
            self.obj[col] = 0.0;
        }
        self.note_fill_in(row, col);
    }

    /// Swap a zero-valued basic (artificial) out for column `c` without
    /// changing any variable values.
    fn degenerate_swap(&mut self, row: usize, col: usize) {
        let entering_value = if self.at_upper[col] { self.ub[col] } else { 0.0 };
        // The leaving artificial sits at 0 and goes to its lower bound.
        let old = self.basis[row];
        self.at_upper[old] = false;
        self.pivot_matrix(row, col);
        self.at_upper[col] = false;
        self.is_basic[old] = false;
        self.is_basic[col] = true;
        self.basis[row] = col;
        self.set(row, self.cols, entering_value);
        // Other basic values are unchanged (t = 0 step) — but the entering
        // column may have had a nonzero value at its upper bound, which was
        // already folded into every row's rhs, and remains correct because
        // the variable's value did not change.
    }

    /// Dual value (shadow price) of every original constraint, in the
    /// problem's own optimization sense: the marginal change of the
    /// optimal objective per unit of constraint rhs.
    fn duals(&self, sense: Sense) -> Vec<f64> {
        let sense_factor = match sense {
            Sense::Minimize => 1.0,
            Sense::Maximize => -1.0,
        };
        self.row_meta
            .iter()
            .map(|&(col, sign)| sense_factor * sign * self.obj[col])
            .collect()
    }

    /// Read the structural-variable values out of the final tableau.
    fn extract(&self) -> Vec<f64> {
        let mut y = vec![0.0f64; self.n_struct];
        for (j, yj) in y.iter_mut().enumerate() {
            if !self.is_basic[j] && self.at_upper[j] {
                *yj = self.ub[j];
            }
        }
        for i in 0..self.rows {
            let b = self.basis[i];
            if b < self.n_struct {
                y[b] = self.xb(i).max(0.0);
            }
        }
        y
    }
}

#[cfg(test)]
mod tests {
    use crate::{Problem, Relation, Sense, SolveError};

    fn approx(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} != {b}");
    }

    #[test]
    fn solve_emits_phase_span_only_inside_a_trace() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var("x");
        let y = p.add_var("y");
        p.set_objective(x, 3.0);
        p.set_objective(y, 2.0);
        p.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Le, 4.0);
        p.add_constraint(&[(x, 1.0), (y, 3.0)], Relation::Le, 6.0);

        let ring = bate_obs::trace::RingBufferSubscriber::new(64);
        bate_obs::trace::install(ring.clone(), bate_obs::SimClock::shared());
        // Untraced solve: no context on this thread, so the solver stays
        // silent (the par_map determinism contract).
        p.solve().unwrap();
        assert!(ring.events().is_empty());
        // Traced solve: one lp.solve close-event, parented on the root
        // span and carrying the attribution counters.
        {
            let root = bate_obs::context::root("test", 7);
            p.solve().unwrap();
            let events = ring.events();
            let solve: Vec<_> = events.iter().filter(|e| e.name == "lp.solve").collect();
            assert_eq!(solve.len(), 1);
            assert_eq!(solve[0].ctx.trace_id, root.ctx.trace_id);
            assert_eq!(solve[0].ctx.parent_span_id, root.ctx.span_id);
            let keys: Vec<&str> = solve[0].fields.iter().map(|(k, _)| *k).collect();
            for key in ["rows", "cols", "warm_start", "iterations", "pivots", "dur_ns"] {
                assert!(keys.contains(&key), "missing {key} in {keys:?}");
            }
        }
        bate_obs::trace::uninstall();
    }

    #[test]
    fn textbook_maximize() {
        // max 3x+2y, x+y<=4, x+3y<=6 -> x=4, y=0, obj=12.
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var("x");
        let y = p.add_var("y");
        p.set_objective(x, 3.0);
        p.set_objective(y, 2.0);
        p.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Le, 4.0);
        p.add_constraint(&[(x, 1.0), (y, 3.0)], Relation::Le, 6.0);
        let s = p.solve().unwrap();
        approx(s.objective, 12.0);
        approx(s[x], 4.0);
        approx(s[y], 0.0);
    }

    #[test]
    fn minimize_with_ge_rows_needs_phase1() {
        // min 2x+3y, x+y>=10, x>=2, y>=3 -> x=7,y=3 obj=23.
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_var("x");
        let y = p.add_var("y");
        p.set_objective(x, 2.0);
        p.set_objective(y, 3.0);
        p.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Ge, 10.0);
        p.add_constraint(&[(x, 1.0)], Relation::Ge, 2.0);
        p.add_constraint(&[(y, 1.0)], Relation::Ge, 3.0);
        let s = p.solve().unwrap();
        approx(s.objective, 23.0);
        approx(s[x], 7.0);
        approx(s[y], 3.0);
    }

    #[test]
    fn equality_constraints() {
        // min x+y, x+2y=4, x-y=1 -> x=2, y=1, obj=3.
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_var("x");
        let y = p.add_var("y");
        p.set_objective(x, 1.0);
        p.set_objective(y, 1.0);
        p.add_constraint(&[(x, 1.0), (y, 2.0)], Relation::Eq, 4.0);
        p.add_constraint(&[(x, 1.0), (y, -1.0)], Relation::Eq, 1.0);
        let s = p.solve().unwrap();
        approx(s[x], 2.0);
        approx(s[y], 1.0);
        approx(s.objective, 3.0);
    }

    #[test]
    fn detects_infeasible() {
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_var("x");
        p.add_constraint(&[(x, 1.0)], Relation::Le, 1.0);
        p.add_constraint(&[(x, 1.0)], Relation::Ge, 2.0);
        assert_eq!(p.solve().unwrap_err(), SolveError::Infeasible);
    }

    #[test]
    fn detects_unbounded() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var("x");
        p.set_objective(x, 1.0);
        p.add_constraint(&[(x, 1.0)], Relation::Ge, 0.0);
        assert_eq!(p.solve().unwrap_err(), SolveError::Unbounded);
    }

    #[test]
    fn upper_bounds_respected() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_bounded_var("x", 2.5);
        p.set_objective(x, 1.0);
        let s = p.solve().unwrap();
        approx(s.objective, 2.5);
    }

    #[test]
    fn bounded_vars_without_any_rows() {
        // Pure box problem: max x + 2y with x<=3, y<=4 and no constraints.
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_bounded_var("x", 3.0);
        let y = p.add_bounded_var("y", 4.0);
        p.set_objective(x, 1.0);
        p.set_objective(y, 2.0);
        let s = p.solve().unwrap();
        approx(s.objective, 11.0);
        approx(s[x], 3.0);
        approx(s[y], 4.0);
    }

    #[test]
    fn bound_flip_interacts_with_rows() {
        // max x + y, x <= 1 (bound), y <= 1 (bound), x + y <= 1.5.
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_bounded_var("x", 1.0);
        let y = p.add_bounded_var("y", 1.0);
        p.set_objective(x, 1.0);
        p.set_objective(y, 1.0);
        p.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Le, 1.5);
        let s = p.solve().unwrap();
        approx(s.objective, 1.5);
    }

    #[test]
    fn basic_variable_hits_its_upper_bound() {
        // min -x  s.t.  x - y <= 0, y <= 2 (bound), x <= 5 (bound).
        // Optimal: y = 2, x = 2.
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_bounded_var("x", 5.0);
        let y = p.add_bounded_var("y", 2.0);
        p.set_objective(x, -1.0);
        p.add_constraint(&[(x, 1.0), (y, -1.0)], Relation::Le, 0.0);
        let s = p.solve().unwrap();
        approx(s[x], 2.0);
        approx(s.objective, -2.0);
    }

    #[test]
    fn negative_rhs_is_normalized() {
        // x - y <= -1 with min x+y means y >= x+1; optimum x=0, y=1.
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_var("x");
        let y = p.add_var("y");
        p.set_objective(x, 1.0);
        p.set_objective(y, 1.0);
        p.add_constraint(&[(x, 1.0), (y, -1.0)], Relation::Le, -1.0);
        let s = p.solve().unwrap();
        approx(s.objective, 1.0);
        approx(s[y], 1.0);
    }

    #[test]
    fn degenerate_problem_terminates() {
        // Classic degenerate LP (Beale-like); require termination and the
        // correct optimum.
        let mut p = Problem::new(Sense::Minimize);
        let x1 = p.add_var("x1");
        let x2 = p.add_var("x2");
        let x3 = p.add_var("x3");
        let x4 = p.add_var("x4");
        p.set_objective(x1, -0.75);
        p.set_objective(x2, 150.0);
        p.set_objective(x3, -0.02);
        p.set_objective(x4, 6.0);
        p.add_constraint(
            &[(x1, 0.25), (x2, -60.0), (x3, -0.04), (x4, 9.0)],
            Relation::Le,
            0.0,
        );
        p.add_constraint(
            &[(x1, 0.5), (x2, -90.0), (x3, -0.02), (x4, 3.0)],
            Relation::Le,
            0.0,
        );
        p.add_constraint(&[(x3, 1.0)], Relation::Le, 1.0);
        let s = p.solve().unwrap();
        approx(s.objective, -0.05);
    }

    #[test]
    fn redundant_equalities_are_handled() {
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_var("x");
        let y = p.add_var("y");
        p.set_objective(x, 1.0);
        p.set_objective(y, 2.0);
        p.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Eq, 3.0);
        p.add_constraint(&[(x, 2.0), (y, 2.0)], Relation::Eq, 6.0);
        let s = p.solve().unwrap();
        approx(s.objective, 3.0);
        approx(s[x], 3.0);
    }

    #[test]
    fn zero_variable_problem() {
        let p = Problem::new(Sense::Minimize);
        let s = p.solve().unwrap();
        approx(s.objective, 0.0);
        assert!(s.values.is_empty());
    }

    #[test]
    fn fixed_variable_via_bounds() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_bounded_var("x", 0.0); // fixed to 0
        let y = p.add_bounded_var("y", 1.0);
        p.set_objective(x, 100.0);
        p.set_objective(y, 1.0);
        let s = p.solve().unwrap();
        approx(s.objective, 1.0);
        approx(s[x], 0.0);
    }

    #[test]
    fn bounded_vars_in_ge_rows() {
        // min u (bounded [0,1]) s.t. u >= 0.6 — phase 1 must place a
        // bounded variable correctly.
        let mut p = Problem::new(Sense::Minimize);
        let u = p.add_bounded_var("u", 1.0);
        p.set_objective(u, 1.0);
        p.add_constraint(&[(u, 1.0)], Relation::Ge, 0.6);
        let s = p.solve().unwrap();
        approx(s[u], 0.6);
    }

    #[test]
    fn infeasible_due_to_upper_bounds() {
        // x <= 1 (bound) but x >= 2 (row): phase 1 must fail.
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_bounded_var("x", 1.0);
        p.add_constraint(&[(x, 1.0)], Relation::Ge, 2.0);
        assert_eq!(p.solve().unwrap_err(), SolveError::Infeasible);
    }

    #[test]
    fn many_bounded_availability_vars() {
        // A miniature of BATE's scheduling structure: f variables plus
        // bounded B variables tied by B <= f/b rows and an availability
        // row Σ p B >= β.
        let mut p = Problem::new(Sense::Minimize);
        let f1 = p.add_var("f1");
        let f2 = p.add_var("f2");
        p.set_objective(f1, 1.0);
        p.set_objective(f2, 1.0);
        let b = 10.0;
        p.add_constraint(&[(f1, 1.0), (f2, 1.0)], Relation::Ge, b);
        let states = [(0.9f64, true, true), (0.06, false, true), (0.03, true, false)];
        let mut avail = Vec::new();
        for (i, &(prob, v1, v2)) in states.iter().enumerate() {
            let bv = p.add_bounded_var(&format!("B{i}"), 1.0);
            let mut terms = vec![(bv, b)];
            if v1 {
                terms.push((f1, -1.0));
            }
            if v2 {
                terms.push((f2, -1.0));
            }
            p.add_constraint(&terms, Relation::Le, 0.0);
            avail.push((bv, prob));
        }
        p.add_constraint(&avail, Relation::Ge, 0.95);
        let s = p.solve().unwrap();
        // Needs full delivery in state 0 plus one of the partial states.
        assert!(s.objective >= b - 1e-6);
        assert!(p.is_feasible(&s.values, 1e-6));
    }
}

#[cfg(test)]
mod workspace_tests {
    use super::{solve_with, Workspace};
    use crate::{Problem, Relation, Sense};

    fn approx(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} != {b}");
    }

    /// A small scheduling-shaped LP with `>=` rows (so a cold solve needs
    /// phase 1, making the warm path observable).
    fn demo_problem() -> Problem {
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_var("x");
        let y = p.add_var("y");
        let z = p.add_bounded_var("z", 2.0);
        p.set_objective(x, 2.0);
        p.set_objective(y, 3.0);
        p.set_objective(z, 1.0);
        p.add_constraint(&[(x, 1.0), (y, 1.0), (z, 1.0)], Relation::Ge, 10.0);
        p.add_constraint(&[(x, 1.0), (y, -1.0)], Relation::Le, 4.0);
        p.add_constraint(&[(y, 1.0), (z, 1.0)], Relation::Ge, 3.0);
        p
    }

    #[test]
    fn warm_resolve_matches_cold() {
        let p = demo_problem();
        let mut ws = Workspace::new();
        let cold = solve_with(&p, &[], &mut ws).unwrap();
        assert!(ws.final_basis().is_some());
        // Second solve warm-starts from the first solve's basis.
        let warm = solve_with(&p, &[], &mut ws).unwrap();
        approx(cold.objective, warm.objective);
        for (a, b) in cold.values.iter().zip(&warm.values) {
            approx(*a, *b);
        }
    }

    #[test]
    fn warm_start_with_changed_bounds_matches_cold() {
        let p = demo_problem();
        let mut ws = Workspace::new();
        solve_with(&p, &[], &mut ws).unwrap();
        // Branch-and-bound-style tightenings, solved warm and cold.
        let tighten: &[&[super::BoundOverride]] = &[
            &[(0, 0.0, 3.0)],
            &[(1, 2.0, f64::INFINITY)],
            &[(0, 1.0, 6.0), (2, 0.0, 1.0)],
        ];
        for bounds in tighten {
            let warm = solve_with(&p, bounds, &mut ws).unwrap();
            let cold = super::solve_relaxation(&p, bounds).unwrap();
            approx(warm.objective, cold.objective);
        }
    }

    #[test]
    fn workspace_survives_infeasible_overrides() {
        let p = demo_problem();
        let mut ws = Workspace::new();
        solve_with(&p, &[], &mut ws).unwrap();
        // Force x to a range that contradicts row 2 (x - y <= 4 is fine;
        // make lower > upper instead for a straight bounds conflict).
        assert!(solve_with(&p, &[(0, 5.0, 2.0)], &mut ws).is_err());
        // Workspace remains usable afterwards.
        let again = solve_with(&p, &[], &mut ws).unwrap();
        let fresh = super::solve_relaxation(&p, &[]).unwrap();
        approx(again.objective, fresh.objective);
    }

    #[test]
    fn workspace_reused_across_different_problems_detects_mismatch() {
        let p1 = demo_problem();
        let mut ws = Workspace::new();
        let a = solve_with(&p1, &[], &mut ws).unwrap();
        approx(a.objective, super::solve_relaxation(&p1, &[]).unwrap().objective);

        // A different problem through the same workspace must re-prepare.
        let mut p2 = Problem::new(Sense::Maximize);
        let x = p2.add_var("x");
        let y = p2.add_var("y");
        p2.set_objective(x, 3.0);
        p2.set_objective(y, 2.0);
        p2.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Le, 4.0);
        p2.add_constraint(&[(x, 1.0), (y, 3.0)], Relation::Le, 6.0);
        let b = solve_with(&p2, &[], &mut ws).unwrap();
        approx(b.objective, 12.0);
    }

    #[test]
    fn append_rows_requires_prepared_prefix() {
        let p = demo_problem();
        let mut ws = Workspace::new();
        // Nothing prepared yet: nothing to extend.
        assert!(!ws.append_rows(&p));
        solve_with(&p, &[], &mut ws).unwrap();
        // No new rows is a (trivially successful) no-op.
        assert!(ws.append_rows(&p));
        // A different problem is not an extension.
        let mut other = Problem::new(Sense::Minimize);
        other.add_var("q");
        assert!(!ws.append_rows(&other));
        // The workspace still solves the original problem correctly.
        let again = solve_with(&p, &[], &mut ws).unwrap();
        approx(again.objective, super::solve_relaxation(&p, &[]).unwrap().objective);
    }

    #[test]
    fn append_violated_row_matches_cold_extended_solve() {
        // Solve, append a row the optimum violates, re-solve warm; the
        // result must match a cold solve of the extended problem, and the
        // install must count as a warm start (short phase 1, not a cold
        // rebuild).
        let mut p = demo_problem();
        let x = crate::VarId(0);
        let mut ws = Workspace::new();
        let first = solve_with(&p, &[], &mut ws).unwrap();
        // demo optimum has x = 7: cut it off.
        assert!(first.values[0] > 5.0);
        p.add_constraint(&[(x, 1.0)], Relation::Le, 5.0);
        assert!(ws.append_rows(&p));
        let warm = solve_with(&p, &[], &mut ws).unwrap();
        assert!(warm.stats.warm_start, "append re-solve should stay warm");
        let cold = super::solve_relaxation(&p, &[]).unwrap();
        approx(warm.objective, cold.objective);
        for (a, b) in warm.values.iter().zip(&cold.values) {
            approx(*a, *b);
        }
        assert!(p.is_feasible(&warm.values, 1e-6));
    }

    #[test]
    fn converted_row_duals_match_cold() {
        // An appended violated row is installed by sign-flipping it onto
        // its artificial (convert_row_to_artificial). The flip must leave
        // the row's reported dual identical to a cold solve — for both
        // relations (the row-generation path only ever appends Le cuts,
        // so the Ge case is otherwise uncovered).
        for relation in [Relation::Le, Relation::Ge] {
            let mut p = Problem::new(Sense::Minimize);
            let x = p.add_var("x");
            let y = p.add_var("y");
            p.set_objective(x, 2.0);
            p.set_objective(y, 3.0);
            p.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Ge, 10.0);
            let mut ws = Workspace::new();
            solve_with(&p, &[], &mut ws).unwrap(); // optimum x=10, y=0
            match relation {
                Relation::Le => p.add_constraint(&[(x, 1.0)], Relation::Le, 3.0),
                _ => p.add_constraint(&[(y, 1.0)], Relation::Ge, 5.0),
            };
            assert!(ws.append_rows(&p));
            let warm = solve_with(&p, &[], &mut ws).unwrap();
            assert!(warm.stats.warm_start, "{relation:?} re-solve should stay warm");
            let cold = super::solve_relaxation(&p, &[]).unwrap();
            approx(warm.objective, cold.objective);
            let wd = warm.duals.as_ref().unwrap();
            let cd = cold.duals.as_ref().unwrap();
            for (i, (a, b)) in wd.iter().zip(cd).enumerate() {
                assert!(
                    (a - b).abs() < 1e-6,
                    "{relation:?} dual {i}: warm {a} vs cold {b}"
                );
            }
        }
    }

    #[test]
    fn append_satisfied_row_skips_phase1() {
        let mut p = demo_problem();
        let (x, y) = (crate::VarId(0), crate::VarId(1));
        let mut ws = Workspace::new();
        let first = solve_with(&p, &[], &mut ws).unwrap();
        // A row the optimum already satisfies strictly.
        p.add_constraint(
            &[(x, 1.0), (y, 1.0)],
            Relation::Le,
            first.values[0] + first.values[1] + 100.0,
        );
        assert!(ws.append_rows(&p));
        let warm = solve_with(&p, &[], &mut ws).unwrap();
        assert!(warm.stats.warm_start);
        assert_eq!(warm.stats.phase1_iterations, 0);
        approx(warm.objective, first.objective);
    }

    #[test]
    fn append_rows_iterated_cutting_plane_loop() {
        // A miniature cutting-plane loop: min x+y over x,y >= 0 with the
        // cuts x + y >= k/4 (k = 1..=8) revealed one at a time. Each round
        // appends the single most-violated row and re-solves warm; the
        // final objective must equal the full formulation's.
        let mut master = Problem::new(Sense::Minimize);
        let x = master.add_var("x");
        let y = master.add_var("y");
        master.set_objective(x, 1.0);
        master.set_objective(y, 1.0);
        master.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Ge, 0.25);
        let mut full = master.clone();
        for k in 2..=8 {
            full.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Ge, k as f64 / 4.0);
        }
        let want = full.solve().unwrap().objective;

        let mut ws = Workspace::new();
        let mut sol = solve_with(&master, &[], &mut ws).unwrap();
        let mut rounds = 0;
        loop {
            // Separation: most-violated of the hidden cuts.
            let lhs = sol[x] + sol[y];
            let viol = (2..=8)
                .map(|k| k as f64 / 4.0)
                .filter(|rhs| lhs < rhs - 1e-9)
                .fold(None::<f64>, |acc, rhs| Some(acc.map_or(rhs, |a: f64| a.max(rhs))));
            let Some(rhs) = viol else { break };
            master.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Ge, rhs);
            assert!(ws.append_rows(&master));
            sol = solve_with(&master, &[], &mut ws).unwrap();
            rounds += 1;
            assert!(rounds < 10, "cutting-plane loop failed to converge");
        }
        approx(sol.objective, want);
        // Adding the deepest cut first converges in one round.
        assert_eq!(rounds, 1);
    }

    #[test]
    fn append_cols_prices_new_column_into_basis() {
        // Solve, append a cheaper column into the binding row, re-solve
        // warm; must match a cold solve of the widened problem.
        let mut p = demo_problem();
        let mut ws = Workspace::new();
        let first = solve_with(&p, &[], &mut ws).unwrap();
        let w = p.add_var("w");
        p.set_objective(w, 0.5);
        p.extend_constraint(0, &[(w, 1.0)]);
        assert!(ws.append_cols(&p));
        let warm = solve_with(&p, &[], &mut ws).unwrap();
        assert!(warm.stats.warm_start, "column append should stay warm");
        let cold = super::solve_relaxation(&p, &[]).unwrap();
        approx(warm.objective, cold.objective);
        assert!(warm.objective < first.objective - 1e-6);
        assert!(p.is_feasible(&warm.values, 1e-6));
    }

    #[test]
    fn append_cols_then_rows_combined() {
        // The incremental-scheduler sync order: widen existing rows with
        // new columns, then append rows referencing them.
        let mut p = demo_problem();
        let mut ws = Workspace::new();
        solve_with(&p, &[], &mut ws).unwrap();
        let w = p.add_bounded_var("w", 5.0);
        p.set_objective(w, 0.25);
        p.extend_constraint(0, &[(w, 1.0)]);
        p.add_constraint(&[(w, 1.0), (crate::VarId(0), 1.0)], Relation::Ge, 2.0);
        assert!(ws.append_cols(&p));
        assert!(ws.append_rows(&p));
        assert!(ws.sync_rhs(&p));
        let warm = solve_with(&p, &[], &mut ws).unwrap();
        let cold = super::solve_relaxation(&p, &[]).unwrap();
        approx(warm.objective, cold.objective);
        for (a, b) in warm.values.iter().zip(&cold.values) {
            approx(*a, *b);
        }
    }

    #[test]
    fn append_cols_rejects_out_of_contract_shapes() {
        let p = demo_problem();
        let mut ws = Workspace::new();
        // Nothing prepared yet.
        assert!(!ws.append_cols(&p));
        solve_with(&p, &[], &mut ws).unwrap();
        // No new columns is a no-op success.
        assert!(ws.append_cols(&p));
        // Fewer variables than prepared: not an extension.
        let mut narrow = Problem::new(Sense::Minimize);
        narrow.add_var("q");
        assert!(!ws.append_cols(&narrow));
        // Still solves the original problem correctly afterwards.
        let again = solve_with(&p, &[], &mut ws).unwrap();
        approx(again.objective, super::solve_relaxation(&p, &[]).unwrap().objective);
    }

    #[test]
    fn sync_rhs_propagates_in_place_edits() {
        let mut p = demo_problem();
        let mut ws = Workspace::new();
        solve_with(&p, &[], &mut ws).unwrap();
        p.set_rhs(0, 12.0);
        assert!(ws.sync_rhs(&p));
        let warm = solve_with(&p, &[], &mut ws).unwrap();
        let cold = super::solve_relaxation(&p, &[]).unwrap();
        approx(warm.objective, cold.objective);
        // A mismatched problem refuses the sync.
        let mut other = Problem::new(Sense::Minimize);
        other.add_var("q");
        assert!(!ws.sync_rhs(&other));
    }

    #[test]
    fn explicit_warm_basis_transfer() {
        let p = demo_problem();
        let mut ws1 = Workspace::new();
        solve_with(&p, &[], &mut ws1).unwrap();
        let basis = ws1.final_basis().unwrap();

        // A second workspace warm-started from the first one's basis.
        let mut ws2 = Workspace::new();
        solve_with(&p, &[], &mut ws2).unwrap(); // prepare structures
        ws2.set_warm(Some(basis));
        let warm = solve_with(&p, &[(1, 0.5, f64::INFINITY)], &mut ws2).unwrap();
        let cold = super::solve_relaxation(&p, &[(1, 0.5, f64::INFINITY)]).unwrap();
        approx(warm.objective, cold.objective);
    }
}

#[cfg(test)]
mod dual_tests {
    use crate::{Problem, Relation, Sense};

    fn approx(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} != {b}");
    }

    #[test]
    fn duals_of_binding_le_rows() {
        // max 3x + 2y, x + y <= 4, x + 3y <= 6: optimum x=4 (row 0 binds,
        // row 1 slack). Dual of row 0 = 3 (relaxing the cut admits more x),
        // dual of row 1 = 0.
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var("x");
        let y = p.add_var("y");
        p.set_objective(x, 3.0);
        p.set_objective(y, 2.0);
        p.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Le, 4.0);
        p.add_constraint(&[(x, 1.0), (y, 3.0)], Relation::Le, 6.0);
        let s = p.solve().unwrap();
        let duals = s.duals.as_ref().unwrap();
        approx(duals[0], 3.0);
        approx(duals[1], 0.0);
    }

    #[test]
    fn duals_match_finite_difference() {
        // Generic check: perturb each rhs by ε and compare objective delta
        // against the reported dual.
        let base = |r0: f64, r1: f64| -> f64 {
            let mut p = Problem::new(Sense::Minimize);
            let x = p.add_var("x");
            let y = p.add_var("y");
            p.set_objective(x, 2.0);
            p.set_objective(y, 3.0);
            p.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Ge, r0);
            p.add_constraint(&[(x, 1.0), (y, -1.0)], Relation::Le, r1);
            p.solve().unwrap().objective
        };
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_var("x");
        let y = p.add_var("y");
        p.set_objective(x, 2.0);
        p.set_objective(y, 3.0);
        p.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Ge, 10.0);
        p.add_constraint(&[(x, 1.0), (y, -1.0)], Relation::Le, 2.0);
        let s = p.solve().unwrap();
        let duals = s.duals.as_ref().unwrap();
        let eps = 1e-4;
        let d0 = (base(10.0 + eps, 2.0) - base(10.0, 2.0)) / eps;
        let d1 = (base(10.0, 2.0 + eps) - base(10.0, 2.0)) / eps;
        assert!((duals[0] - d0).abs() < 1e-3, "{} vs {}", duals[0], d0);
        assert!((duals[1] - d1).abs() < 1e-3, "{} vs {}", duals[1], d1);
    }

    #[test]
    fn equality_duals() {
        // min x + y, x + 2y = 4, x - y = 1: duals via finite differences.
        let base = |r0: f64| -> f64 {
            let mut p = Problem::new(Sense::Minimize);
            let x = p.add_var("x");
            let y = p.add_var("y");
            p.set_objective(x, 1.0);
            p.set_objective(y, 1.0);
            p.add_constraint(&[(x, 1.0), (y, 2.0)], Relation::Eq, r0);
            p.add_constraint(&[(x, 1.0), (y, -1.0)], Relation::Eq, 1.0);
            p.solve().unwrap().objective
        };
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_var("x");
        let y = p.add_var("y");
        p.set_objective(x, 1.0);
        p.set_objective(y, 1.0);
        p.add_constraint(&[(x, 1.0), (y, 2.0)], Relation::Eq, 4.0);
        p.add_constraint(&[(x, 1.0), (y, -1.0)], Relation::Eq, 1.0);
        let s = p.solve().unwrap();
        let duals = s.duals.as_ref().unwrap();
        let eps = 1e-4;
        let fd = (base(4.0 + eps) - base(4.0)) / eps;
        assert!((duals[0] - fd).abs() < 1e-3, "{} vs {fd}", duals[0]);
    }

    #[test]
    fn negative_rhs_rows_report_correct_dual_sign() {
        // min x + y with x - y <= -1 (row gets normalized internally).
        let base = |r: f64| -> f64 {
            let mut p = Problem::new(Sense::Minimize);
            let x = p.add_var("x");
            let y = p.add_var("y");
            p.set_objective(x, 1.0);
            p.set_objective(y, 1.0);
            p.add_constraint(&[(x, 1.0), (y, -1.0)], Relation::Le, r);
            p.solve().unwrap().objective
        };
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_var("x");
        let y = p.add_var("y");
        p.set_objective(x, 1.0);
        p.set_objective(y, 1.0);
        p.add_constraint(&[(x, 1.0), (y, -1.0)], Relation::Le, -1.0);
        let s = p.solve().unwrap();
        let duals = s.duals.as_ref().unwrap();
        let eps = 1e-4;
        let fd = (base(-1.0 + eps) - base(-1.0)) / eps;
        assert!((duals[0] - fd).abs() < 1e-3, "{} vs {fd}", duals[0]);
    }
}

#[cfg(test)]
mod dual_repair_tests {
    use super::{solve_relaxation, solve_with, Workspace};
    use crate::{Problem, Relation, Sense, VarId};

    fn approx(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} != {b}");
    }

    /// Shrinking a bound below the warm optimum forces the basic variable
    /// out of its box; the repair must be dual pivots, not a cold restart.
    #[test]
    fn shrunk_upper_bound_repairs_dually() {
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_bounded_var("x", 20.0);
        let y = p.add_var("y");
        p.set_objective(x, 1.0);
        p.set_objective(y, 3.0);
        p.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Ge, 10.0);
        let mut ws = Workspace::new();
        let first = solve_with(&p, &[], &mut ws).unwrap();
        approx(first.values[0], 10.0); // cheap x carries everything
        p.set_var_upper(x, 4.0);
        let warm = solve_with(&p, &[], &mut ws).unwrap();
        assert!(warm.stats.warm_start, "bound edit should stay warm");
        assert!(warm.stats.dual_pivots > 0, "expected dual repair pivots");
        assert_eq!(warm.stats.phase2_iterations, 0, "repair should land optimal");
        let cold = solve_relaxation(&p, &[]).unwrap();
        approx(warm.objective, cold.objective);
        approx(warm.values[0], 4.0);
        approx(warm.values[1], 6.0);
    }

    /// Degenerate dual pivot: the entering column has a zero reduced cost
    /// (alternative optima), so the repair pivot moves the basis without
    /// changing the objective — the classic degenerate case the ratio
    /// test must handle without stalling.
    #[test]
    fn degenerate_dual_pivot_terminates() {
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_bounded_var("x", 20.0);
        let y = p.add_var("y");
        p.set_objective(x, 1.0);
        p.set_objective(y, 1.0); // equal costs: z_y = 0 at the optimum
        p.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Ge, 10.0);
        let mut ws = Workspace::new();
        let first = solve_with(&p, &[], &mut ws).unwrap();
        approx(first.objective, 10.0);
        let x_at = first.values[0];
        assert!(x_at > 1.0, "optimum should use x");
        p.set_var_upper(x, x_at / 2.0);
        let warm = solve_with(&p, &[], &mut ws).unwrap();
        assert!(warm.stats.warm_start);
        assert!(warm.stats.dual_pivots > 0);
        // Objective unchanged: the repair pivot was degenerate in cost.
        approx(warm.objective, 10.0);
        approx(warm.values[0] + warm.values[1], 10.0);
        assert!(warm.values[0] <= x_at / 2.0 + 1e-9);
    }

    /// rhs tightening through sync_rhs repairs dually and matches cold.
    #[test]
    fn rhs_tightening_repairs_dually() {
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_var("x");
        let y = p.add_var("y");
        p.set_objective(x, 2.0);
        p.set_objective(y, 3.0);
        p.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Ge, 10.0);
        p.add_constraint(&[(x, 1.0)], Relation::Le, 6.0);
        let mut ws = Workspace::new();
        solve_with(&p, &[], &mut ws).unwrap();
        // Tighten the cap below the warm point (x = 6).
        p.set_rhs(1, 2.0);
        assert!(ws.sync_rhs(&p));
        let warm = solve_with(&p, &[], &mut ws).unwrap();
        assert!(warm.stats.warm_start);
        let cold = solve_relaxation(&p, &[]).unwrap();
        approx(warm.objective, cold.objective);
        approx(warm.values[0], 2.0);
        approx(warm.values[1], 8.0);
    }

    /// Retiring a variable in place (upper bound to zero) must evict it
    /// from the basis and re-route — the demand-removal idiom.
    #[test]
    fn retire_variable_via_zero_bound() {
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_bounded_var("x", 20.0);
        let y = p.add_bounded_var("y", 20.0);
        let z = p.add_var("z");
        p.set_objective(x, 1.0);
        p.set_objective(y, 2.0);
        p.set_objective(z, 5.0);
        p.add_constraint(&[(x, 1.0), (y, 1.0), (z, 1.0)], Relation::Ge, 8.0);
        let mut ws = Workspace::new();
        let first = solve_with(&p, &[], &mut ws).unwrap();
        approx(first.values[0], 8.0);
        p.set_var_upper(x, 0.0);
        let warm = solve_with(&p, &[], &mut ws).unwrap();
        let cold = solve_relaxation(&p, &[]).unwrap();
        approx(warm.objective, cold.objective);
        approx(warm.values[0], 0.0);
        approx(warm.values[1], 8.0);
    }

    /// A bound edit that makes the problem infeasible must be reported as
    /// such (the dual repair finds no entering column, or the cold retry
    /// confirms), and the workspace must stay usable.
    #[test]
    fn infeasible_after_bound_edit_is_detected() {
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_bounded_var("x", 10.0);
        let y = p.add_bounded_var("y", 10.0);
        p.set_objective(x, 1.0);
        p.set_objective(y, 1.0);
        p.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Ge, 12.0);
        let mut ws = Workspace::new();
        solve_with(&p, &[], &mut ws).unwrap();
        p.set_var_upper(x, 1.0);
        p.set_var_upper(y, 1.0);
        assert!(solve_with(&p, &[], &mut ws).is_err());
        // Relax again: the workspace recovers.
        p.set_var_upper(x, 10.0);
        p.set_var_upper(y, 10.0);
        let again = solve_with(&p, &[], &mut ws).unwrap();
        approx(again.objective, 12.0);
    }

    /// Random-ish battery: repeated bound/rhs edits re-solved warm must
    /// track cold solves exactly (objective and point, via feasibility).
    #[test]
    fn repair_battery_matches_cold_across_edits() {
        let mut p = Problem::new(Sense::Minimize);
        let vars: Vec<VarId> = (0..6).map(|i| p.add_bounded_var(&format!("v{i}"), 10.0)).collect();
        for (i, &v) in vars.iter().enumerate() {
            p.set_objective(v, 1.0 + i as f64 * 0.37);
        }
        p.add_constraint(
            &vars.iter().map(|&v| (v, 1.0)).collect::<Vec<_>>(),
            Relation::Ge,
            20.0,
        );
        p.add_constraint(&[(vars[0], 1.0), (vars[1], 1.0)], Relation::Le, 9.0);
        p.add_constraint(&[(vars[2], 1.0), (vars[3], 1.0)], Relation::Ge, 3.0);
        let mut ws = Workspace::new();
        solve_with(&p, &[], &mut ws).unwrap();
        // A deterministic edit schedule mixing shrinks, relaxes, and rhs.
        let edits: &[(usize, f64)] = &[(0, 2.0), (1, 5.0), (0, 10.0), (4, 1.5), (2, 0.0), (2, 7.0)];
        for (step, &(vi, ub)) in edits.iter().enumerate() {
            p.set_var_upper(vars[vi], ub);
            p.set_rhs(0, 20.0 - step as f64 * 0.5);
            assert!(ws.sync_rhs(&p));
            let warm = solve_with(&p, &[], &mut ws).unwrap();
            let cold = solve_relaxation(&p, &[]).unwrap();
            approx(warm.objective, cold.objective);
            assert!(p.is_feasible(&warm.values, 1e-6), "step {step}");
        }
    }

    /// A repair whose cheapest entering column is too narrow to absorb the
    /// violation must bound-flip it and continue, not overshoot its box.
    /// max y + x/2 with x ∈ [0,1], x + y ≤ 5 optimizes to (0, 5); the
    /// override y ≤ 2 forces a 3-unit repair whose best dual ratio is x
    /// (width 1): one flip, then the slack absorbs the rest.
    #[test]
    fn dual_repair_flips_narrow_column() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_bounded_var("x", 1.0);
        let y = p.add_var("y");
        p.set_objective(x, 0.5);
        p.set_objective(y, 1.0);
        p.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Le, 5.0);
        let mut ws = Workspace::new();
        let first = solve_with(&p, &[], &mut ws).unwrap();
        approx(first.values[0], 0.0);
        approx(first.values[1], 5.0);
        let warm = solve_with(&p, &[(1, 0.0, 2.0)], &mut ws).unwrap();
        assert!(warm.stats.warm_start, "override edit should stay warm");
        assert!(warm.stats.bound_flips > 0, "expected a dual bound flip");
        assert!(warm.stats.dual_pivots > 0, "expected a dual repair pivot");
        let cold = solve_relaxation(&p, &[(1, 0.0, 2.0)]).unwrap();
        approx(warm.objective, cold.objective);
        approx(warm.objective, 2.5);
        approx(warm.values[0], 1.0);
        approx(warm.values[1], 2.0);
    }

    /// Randomized branch-and-bound-shaped chains: stack tightening
    /// overrides (often pinning a variable, the binary-branching case)
    /// while warm solving through one workspace, and compare every level
    /// against a cold solve. This is the access pattern that exposed the
    /// unclamped dual-repair overshoot: a diverging repair leaves the
    /// tableau numerically inconsistent and the "optimum" off by whole
    /// units, which any level's comparison here catches.
    #[test]
    fn chained_override_warm_matches_cold() {
        // splitmix64: deterministic, dependency-free.
        fn next(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
        fn unit(state: &mut u64) -> f64 {
            (next(state) >> 11) as f64 / (1u64 << 53) as f64
        }
        for seed in 0..400u64 {
            let mut s = seed.wrapping_mul(0x5851_f42d_4c95_7f2d) + 1;
            let n = 3 + (next(&mut s) % 6) as usize;
            let m = 2 + (next(&mut s) % 5) as usize;
            let sense = if seed % 2 == 0 { Sense::Minimize } else { Sense::Maximize };
            let mut p = Problem::new(sense);
            let vars: Vec<VarId> = (0..n)
                .map(|_| {
                    let ub = if unit(&mut s) < 0.3 { f64::INFINITY } else { 0.5 + 3.0 * unit(&mut s) };
                    p.add_bounded_var("v", ub)
                })
                .collect();
            for &v in &vars {
                p.set_objective(v, 2.0 * unit(&mut s) - 1.0);
            }
            for _ in 0..m {
                let rel = match next(&mut s) % 3 {
                    0 => Relation::Le,
                    1 => Relation::Ge,
                    _ => Relation::Eq,
                };
                let mut terms: Vec<(VarId, f64)> = Vec::new();
                for _ in 0..1 + (next(&mut s) % 4) as usize {
                    let v = vars[(next(&mut s) % n as u64) as usize];
                    if !terms.iter().any(|&(w, _)| w == v) {
                        terms.push((v, (2.0 * unit(&mut s) - 1.0) * 2.0));
                    }
                }
                let rhs = match rel {
                    Relation::Ge => unit(&mut s) * 1.5,
                    _ => 0.5 + unit(&mut s) * 3.0,
                };
                p.add_constraint(&terms, rel, rhs);
            }
            let mut ws = Workspace::new();
            if solve_with(&p, &[], &mut ws).is_err() {
                continue;
            }
            let mut overrides: Vec<super::BoundOverride> = Vec::new();
            for _level in 0..8 {
                let j = (next(&mut s) % n as u64) as usize;
                overrides.push(match next(&mut s) % 4 {
                    0 => (j, 0.0, 0.0),
                    1 => (j, 1.0, f64::INFINITY),
                    2 => (j, 0.0, unit(&mut s) * 2.0),
                    _ => (j, unit(&mut s) * 1.5, f64::INFINITY),
                });
                let warm = solve_with(&p, &overrides, &mut ws);
                let cold = solve_relaxation(&p, &overrides);
                match (&warm, &cold) {
                    (Ok(w), Ok(c)) => {
                        let d = (w.objective - c.objective).abs() / (1.0 + c.objective.abs());
                        assert!(d <= 1e-6, "seed {seed}: warm {} vs cold {}", w.objective, c.objective);
                    }
                    (Err(we), Err(ce)) => assert_eq!(we, ce, "seed {seed}"),
                    (w, c) => panic!(
                        "seed {seed}: verdict mismatch warm {:?} cold {:?}",
                        w.as_ref().map(|r| r.objective),
                        c.as_ref().map(|r| r.objective)
                    ),
                }
                if warm.is_err() {
                    break; // subtree dead, as in branch-and-bound
                }
            }
        }
    }
}
