//! Model export and re-import in the CPLEX LP text format.
//!
//! Useful for debugging BATE's optimization models and for cross-checking
//! against external solvers: `problem.to_lp_format()` produces a file any
//! of Gurobi/CPLEX/HiGHS/glpsol can read, and
//! [`Problem::from_lp_format`] parses the same dialect back into a
//! [`Problem`]. The parser accepts exactly the dialect the exporter
//! emits (one row per line, `Bounds` listing every variable in index
//! order); on malformed input it returns a typed [`LpParseError`] — it
//! never panics, which the fuzz harness in
//! `crates/lp/tests/export_roundtrip.rs` exercises byte by byte.
//!
//! Round-trip caveat: variable names are [`sanitize`]d on export, so the
//! reparsed problem carries the sanitized names. Sanitization is
//! idempotent, hence `export → parse → export` is a fixed point after
//! one trip.

use crate::problem::{Problem, Relation, Sense, VarKind};
use std::fmt::Write as _;

/// Sanitize a variable name into LP-format-safe identifiers.
fn sanitize(name: &str, index: usize) -> String {
    let mut out: String = name
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() || c == '_' { c } else { '_' })
        .collect();
    if out.is_empty() || out.chars().next().unwrap().is_ascii_digit() {
        out = format!("x{index}_{out}");
    }
    out
}

fn write_terms(buf: &mut String, terms: &[(usize, f64)], names: &[String]) {
    let mut first = true;
    for &(j, c) in terms {
        if c == 0.0 {
            continue;
        }
        if first {
            if c < 0.0 {
                let _ = write!(buf, "- ");
            }
            first = false;
        } else if c < 0.0 {
            let _ = write!(buf, " - ");
        } else {
            let _ = write!(buf, " + ");
        }
        let a = c.abs();
        if (a - 1.0).abs() < 1e-15 {
            let _ = write!(buf, "{}", names[j]);
        } else {
            let _ = write!(buf, "{a} {}", names[j]);
        }
    }
    if first {
        let _ = write!(buf, "0");
    }
}

impl Problem {
    /// Render the model in CPLEX LP format.
    pub fn to_lp_format(&self) -> String {
        let names: Vec<String> = self
            .vars
            .iter()
            .enumerate()
            .map(|(i, v)| sanitize(&v.name, i))
            .collect();

        let mut out = String::new();
        out.push_str(match self.sense {
            Sense::Minimize => "Minimize\n obj: ",
            Sense::Maximize => "Maximize\n obj: ",
        });
        let obj_terms: Vec<(usize, f64)> = self
            .objective
            .iter()
            .enumerate()
            .filter(|(_, &c)| c != 0.0)
            .map(|(j, &c)| (j, c))
            .collect();
        write_terms(&mut out, &obj_terms, &names);
        out.push_str("\nSubject To\n");
        for (i, c) in self.constraints.iter().enumerate() {
            let _ = write!(out, " c{i}: ");
            write_terms(&mut out, &c.terms, &names);
            let op = match c.relation {
                Relation::Le => "<=",
                Relation::Ge => ">=",
                Relation::Eq => "=",
            };
            let _ = writeln!(out, " {op} {}", c.rhs);
        }
        out.push_str("Bounds\n");
        for (j, v) in self.vars.iter().enumerate() {
            if v.upper.is_finite() {
                let _ = writeln!(out, " 0 <= {} <= {}", names[j], v.upper);
            } else {
                let _ = writeln!(out, " 0 <= {}", names[j]);
            }
        }
        let integers: Vec<&String> = self
            .vars
            .iter()
            .zip(&names)
            .filter(|(v, _)| v.kind == VarKind::Integer)
            .map(|(_, n)| n)
            .collect();
        if !integers.is_empty() {
            out.push_str("General\n");
            for n in integers {
                let _ = writeln!(out, " {n}");
            }
        }
        out.push_str("End\n");
        out
    }
}

/// Typed parse failure from [`Problem::from_lp_format`].
///
/// Every variant carries the 1-based line number where parsing stopped,
/// so fuzz findings point straight at the offending byte's line.
#[derive(Debug, Clone, PartialEq)]
pub enum LpParseError {
    /// The first non-blank line was not `Minimize` or `Maximize`.
    BadHeader { line: usize, text: String },
    /// A required section header never appeared.
    MissingSection { expected: &'static str, line: usize },
    /// A token that should be a numeric literal failed to parse.
    BadNumber { line: usize, token: String },
    /// A term or `General` entry referenced a name absent from `Bounds`.
    UnknownVariable { line: usize, name: String },
    /// The same name appeared twice in the `Bounds` section.
    DuplicateVariable { line: usize, name: String },
    /// A `Bounds` line had the wrong shape, a nonzero lower bound, or a
    /// negative/NaN upper bound.
    BadBound { line: usize, reason: &'static str },
    /// An objective or constraint row had the wrong shape.
    BadRow { line: usize, reason: &'static str },
    /// Non-blank content after the `End` marker.
    TrailingContent { line: usize },
    /// The input ended before the `End` marker.
    UnexpectedEof,
}

impl std::fmt::Display for LpParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LpParseError::BadHeader { line, text } => {
                write!(f, "line {line}: expected Minimize/Maximize, found {text:?}")
            }
            LpParseError::MissingSection { expected, line } => {
                write!(f, "line {line}: expected {expected:?} section header")
            }
            LpParseError::BadNumber { line, token } => {
                write!(f, "line {line}: bad numeric literal {token:?}")
            }
            LpParseError::UnknownVariable { line, name } => {
                write!(f, "line {line}: unknown variable {name:?}")
            }
            LpParseError::DuplicateVariable { line, name } => {
                write!(f, "line {line}: duplicate variable {name:?}")
            }
            LpParseError::BadBound { line, reason } => {
                write!(f, "line {line}: bad bound ({reason})")
            }
            LpParseError::BadRow { line, reason } => {
                write!(f, "line {line}: bad row ({reason})")
            }
            LpParseError::TrailingContent { line } => {
                write!(f, "line {line}: content after End")
            }
            LpParseError::UnexpectedEof => write!(f, "input ended before End marker"),
        }
    }
}

impl std::error::Error for LpParseError {}

/// One lexed token of an LP-format line.
#[derive(Debug, Clone)]
enum Tok {
    Num(f64),
    Name(String),
    Plus,
    Minus,
    Rel(Relation),
}

fn lex_line(line: &str, line_no: usize) -> Result<Vec<Tok>, LpParseError> {
    line.split_whitespace()
        .map(|t| match t {
            "+" => Ok(Tok::Plus),
            "-" => Ok(Tok::Minus),
            "<=" => Ok(Tok::Rel(Relation::Le)),
            ">=" => Ok(Tok::Rel(Relation::Ge)),
            "=" => Ok(Tok::Rel(Relation::Eq)),
            _ => {
                let head = t.as_bytes()[0];
                let numeric = head.is_ascii_digit()
                    || head == b'.'
                    || ((head == b'-' || head == b'+') && t.len() > 1);
                if numeric {
                    t.parse::<f64>().map(Tok::Num).map_err(|_| {
                        LpParseError::BadNumber {
                            line: line_no,
                            token: t.to_string(),
                        }
                    })
                } else {
                    Ok(Tok::Name(t.to_string()))
                }
            }
        })
        .collect()
}

/// Parse a `±c name ± c name …` term list (the exporter's `write_terms`
/// output, where a lone `0` means "no terms").
fn parse_terms(
    toks: &[Tok],
    lookup: &dyn Fn(&str) -> Option<usize>,
    line_no: usize,
) -> Result<Vec<(usize, f64)>, LpParseError> {
    if let [Tok::Num(v)] = toks {
        if *v == 0.0 {
            return Ok(Vec::new());
        }
        return Err(LpParseError::BadRow {
            line: line_no,
            reason: "dangling coefficient",
        });
    }
    let mut terms = Vec::new();
    let mut i = 0;
    let mut first = true;
    while i < toks.len() {
        let mut sign = 1.0;
        match toks[i] {
            Tok::Plus => {
                i += 1;
            }
            Tok::Minus => {
                sign = -1.0;
                i += 1;
            }
            _ if first => {}
            _ => {
                return Err(LpParseError::BadRow {
                    line: line_no,
                    reason: "missing +/- between terms",
                })
            }
        }
        first = false;
        let mut mag = 1.0;
        if let Some(Tok::Num(v)) = toks.get(i) {
            mag = *v;
            i += 1;
        }
        match toks.get(i) {
            Some(Tok::Name(n)) => {
                let idx = lookup(n).ok_or_else(|| LpParseError::UnknownVariable {
                    line: line_no,
                    name: n.clone(),
                })?;
                terms.push((idx, sign * mag));
                i += 1;
            }
            _ => {
                return Err(LpParseError::BadRow {
                    line: line_no,
                    reason: "expected variable name",
                })
            }
        }
    }
    Ok(terms)
}

/// Strip a leading `label:` token (`obj:` / `c3:`) if present.
fn strip_label(toks: &mut Vec<Tok>) {
    if let Some(Tok::Name(n)) = toks.first() {
        if n.ends_with(':') {
            toks.remove(0);
        }
    }
}

impl Problem {
    /// Parse LP-format text produced by [`Problem::to_lp_format`] back
    /// into a [`Problem`].
    ///
    /// Variables are created in `Bounds`-section order, which is variable
    /// index order on export, so indices round-trip. Malformed input
    /// yields a typed [`LpParseError`]; this function never panics.
    pub fn from_lp_format(text: &str) -> Result<Problem, LpParseError> {
        #[derive(PartialEq)]
        enum Section {
            Header,
            Objective,
            Rows,
            Bounds,
            General,
            Done,
        }

        let mut sense = Sense::Minimize;
        let mut section = Section::Header;
        // Deferred bodies: term parsing needs the name table, which the
        // Bounds section defines *after* the rows appear in the file.
        let mut obj_lines: Vec<(usize, String)> = Vec::new();
        let mut row_lines: Vec<(usize, String)> = Vec::new();
        let mut bounds: Vec<(String, f64)> = Vec::new();
        let mut integers: Vec<String> = Vec::new();
        let mut last_line = 0usize;

        for (idx, raw) in text.lines().enumerate() {
            let line_no = idx + 1;
            last_line = line_no;
            let line = raw.trim();
            if line.is_empty() {
                continue;
            }
            match section {
                Section::Header => match line {
                    "Minimize" => {
                        sense = Sense::Minimize;
                        section = Section::Objective;
                    }
                    "Maximize" => {
                        sense = Sense::Maximize;
                        section = Section::Objective;
                    }
                    _ => {
                        return Err(LpParseError::BadHeader {
                            line: line_no,
                            text: line.to_string(),
                        })
                    }
                },
                Section::Objective => match line {
                    "Subject To" => section = Section::Rows,
                    "Bounds" | "General" | "End" => {
                        return Err(LpParseError::MissingSection {
                            expected: "Subject To",
                            line: line_no,
                        })
                    }
                    _ => obj_lines.push((line_no, line.to_string())),
                },
                Section::Rows => match line {
                    "Bounds" => section = Section::Bounds,
                    "General" | "End" => {
                        return Err(LpParseError::MissingSection {
                            expected: "Bounds",
                            line: line_no,
                        })
                    }
                    _ => row_lines.push((line_no, line.to_string())),
                },
                Section::Bounds => match line {
                    "General" => section = Section::General,
                    "End" => section = Section::Done,
                    _ => {
                        let toks = lex_line(line, line_no)?;
                        let (name, upper) = match toks.as_slice() {
                            [Tok::Num(lo), Tok::Rel(Relation::Le), Tok::Name(n)] => {
                                if *lo != 0.0 {
                                    return Err(LpParseError::BadBound {
                                        line: line_no,
                                        reason: "lower bound must be 0",
                                    });
                                }
                                (n.clone(), f64::INFINITY)
                            }
                            [Tok::Num(lo), Tok::Rel(Relation::Le), Tok::Name(n), Tok::Rel(Relation::Le), Tok::Num(up)] =>
                            {
                                if *lo != 0.0 {
                                    return Err(LpParseError::BadBound {
                                        line: line_no,
                                        reason: "lower bound must be 0",
                                    });
                                }
                                if up.is_nan() || *up < 0.0 {
                                    return Err(LpParseError::BadBound {
                                        line: line_no,
                                        reason: "upper bound must be non-negative",
                                    });
                                }
                                (n.clone(), *up)
                            }
                            _ => {
                                return Err(LpParseError::BadBound {
                                    line: line_no,
                                    reason: "expected `0 <= name [<= upper]`",
                                })
                            }
                        };
                        if bounds.iter().any(|(n, _)| *n == name) {
                            return Err(LpParseError::DuplicateVariable {
                                line: line_no,
                                name,
                            });
                        }
                        bounds.push((name, upper));
                    }
                },
                Section::General => match line {
                    "End" => section = Section::Done,
                    _ => {
                        let toks = lex_line(line, line_no)?;
                        match toks.as_slice() {
                            [Tok::Name(n)] => integers.push(n.clone()),
                            _ => {
                                return Err(LpParseError::BadRow {
                                    line: line_no,
                                    reason: "expected a single variable name",
                                })
                            }
                        }
                    }
                },
                Section::Done => return Err(LpParseError::TrailingContent { line: line_no }),
            }
        }
        if section != Section::Done {
            return Err(LpParseError::UnexpectedEof);
        }

        // Every General entry must name a declared variable.
        for n in &integers {
            if !bounds.iter().any(|(b, _)| b == n) {
                return Err(LpParseError::UnknownVariable {
                    line: last_line,
                    name: n.clone(),
                });
            }
        }

        let mut problem = Problem::new(sense);
        let mut ids = Vec::with_capacity(bounds.len());
        for (name, upper) in &bounds {
            let id = if integers.iter().any(|n| n == name) {
                problem.add_integer_var(name, *upper)
            } else {
                problem.add_bounded_var(name, *upper)
            };
            ids.push(id);
        }
        let lookup = |n: &str| bounds.iter().position(|(b, _)| b == n);

        // Objective: all lines between the sense header and Subject To
        // form one term list (the exporter emits exactly one line).
        let obj_line_no = obj_lines.first().map(|(l, _)| *l).unwrap_or(last_line);
        let obj_text: String = obj_lines
            .iter()
            .map(|(_, s)| s.as_str())
            .collect::<Vec<_>>()
            .join(" ");
        let mut obj_toks = lex_line(&obj_text, obj_line_no)?;
        strip_label(&mut obj_toks);
        for (j, c) in parse_terms(&obj_toks, &lookup, obj_line_no)? {
            problem.add_objective(ids[j], c);
        }

        for (line_no, row) in &row_lines {
            let mut toks = lex_line(row, *line_no)?;
            strip_label(&mut toks);
            if toks.len() < 2 {
                return Err(LpParseError::BadRow {
                    line: *line_no,
                    reason: "expected `terms <op> rhs`",
                });
            }
            let rhs = match toks[toks.len() - 1] {
                Tok::Num(v) => v,
                _ => {
                    return Err(LpParseError::BadRow {
                        line: *line_no,
                        reason: "expected numeric rhs",
                    })
                }
            };
            let rel = match toks[toks.len() - 2] {
                Tok::Rel(r) => r,
                _ => {
                    return Err(LpParseError::BadRow {
                        line: *line_no,
                        reason: "expected <=, >= or = before rhs",
                    })
                }
            };
            let terms = parse_terms(&toks[..toks.len() - 2], &lookup, *line_no)?;
            let id_terms: Vec<(crate::problem::VarId, f64)> =
                terms.into_iter().map(|(j, c)| (ids[j], c)).collect();
            problem.add_constraint(&id_terms, rel, rhs);
        }

        Ok(problem)
    }
}

#[cfg(test)]
mod tests {
    use super::LpParseError;
    use crate::{Problem, Relation, Sense};

    #[test]
    fn renders_a_small_model() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var("x");
        let y = p.add_bounded_var("f[1][2]", 5.0);
        let z = p.add_binary_var("q");
        p.set_objective(x, 3.0);
        p.set_objective(y, -2.0);
        p.set_objective(z, 1.0);
        p.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Le, 4.0);
        p.add_constraint(&[(x, -1.0), (z, 2.5)], Relation::Ge, -1.0);
        p.add_constraint(&[(y, 1.0)], Relation::Eq, 2.0);
        let text = p.to_lp_format();
        assert!(text.starts_with("Maximize"));
        assert!(text.contains("3 x - 2 f_1__2_ + q"));
        assert!(text.contains("c0: x + f_1__2_ <= 4"));
        assert!(text.contains("c1: - x + 2.5 q >= -1"));
        assert!(text.contains("c2: f_1__2_ = 2"));
        assert!(text.contains("0 <= f_1__2_ <= 5"));
        assert!(text.contains("General\n q"));
        assert!(text.ends_with("End\n"));
    }

    #[test]
    fn empty_objective_renders_zero() {
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_var("x");
        p.add_constraint(&[(x, 1.0)], Relation::Ge, 1.0);
        let text = p.to_lp_format();
        assert!(text.contains("obj: 0"));
    }

    #[test]
    fn numeric_leading_names_are_fixed() {
        let mut p = Problem::new(Sense::Minimize);
        let v = p.add_var("1bad");
        p.set_objective(v, 1.0);
        let text = p.to_lp_format();
        assert!(!text.contains(" 1bad"), "{text}");
        assert!(text.contains("x0_1bad"));
    }

    #[test]
    fn parse_round_trips_a_mixed_model() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var("x");
        let y = p.add_bounded_var("f[1][2]", 5.0);
        let z = p.add_binary_var("q");
        p.set_objective(x, 3.0);
        p.set_objective(y, -2.0);
        p.set_objective(z, 1.0);
        p.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Le, 4.0);
        p.add_constraint(&[(x, -1.0), (z, 2.5)], Relation::Ge, -1.0);
        p.add_constraint(&[(y, 1.0)], Relation::Eq, 2.0);
        let text = p.to_lp_format();
        let q = Problem::from_lp_format(&text).unwrap();
        // Exporting the reparse reproduces the text byte for byte: the
        // whole structure (sense, var order, kinds, bounds, rows) made
        // the round trip.
        assert_eq!(q.to_lp_format(), text);
        assert_eq!(q.num_vars(), 3);
        assert_eq!(q.num_constraints(), 3);
        assert!(q.has_integers());
        let s1 = p.solve().unwrap();
        let s2 = q.solve().unwrap();
        assert!((s1.objective - s2.objective).abs() < 1e-9);
    }

    #[test]
    fn parse_handles_empty_objective_and_empty_rows() {
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_var("x");
        p.add_constraint(&[(x, 0.0)], Relation::Le, 1.0); // renders as `0 <= 1`
        p.add_constraint(&[(x, 1.0)], Relation::Ge, 1.0);
        let text = p.to_lp_format();
        let q = Problem::from_lp_format(&text).unwrap();
        assert_eq!(q.to_lp_format(), text);
    }

    #[test]
    fn parse_rejects_malformed_input_with_typed_errors() {
        let cases: Vec<(&str, LpParseError)> = vec![
            (
                "Maximize\n obj: x\nSubject To\nBounds\n 0 <= x\nEnd\nextra\n",
                LpParseError::TrailingContent { line: 7 },
            ),
            (
                "Minimiz\n obj: 0\nSubject To\nBounds\nEnd\n",
                LpParseError::BadHeader {
                    line: 1,
                    text: "Minimiz".into(),
                },
            ),
            (
                "Minimize\n obj: 0\nBounds\nEnd\n",
                LpParseError::MissingSection {
                    expected: "Subject To",
                    line: 3,
                },
            ),
            (
                "Minimize\n obj: y\nSubject To\nBounds\n 0 <= x\nEnd\n",
                LpParseError::UnknownVariable {
                    line: 2,
                    name: "y".into(),
                },
            ),
            (
                "Minimize\n obj: 2..5 x\nSubject To\nBounds\n 0 <= x\nEnd\n",
                LpParseError::BadNumber {
                    line: 2,
                    token: "2..5".into(),
                },
            ),
            (
                "Minimize\n obj: 0\nSubject To\nBounds\n 0 <= x\n 0 <= x\nEnd\n",
                LpParseError::DuplicateVariable {
                    line: 6,
                    name: "x".into(),
                },
            ),
            (
                "Minimize\n obj: 0\nSubject To\nBounds\n 0 <= x <= -3\nEnd\n",
                LpParseError::BadBound {
                    line: 5,
                    reason: "upper bound must be non-negative",
                },
            ),
            (
                "Minimize\n obj: 0\nSubject To\n c0: x + <= 1\nBounds\n 0 <= x\nEnd\n",
                LpParseError::BadRow {
                    line: 4,
                    reason: "expected variable name",
                },
            ),
            (
                "Minimize\n obj: 0\nSubject To\nBounds\n",
                LpParseError::UnexpectedEof,
            ),
        ];
        for (text, want) in cases {
            let got = Problem::from_lp_format(text).expect_err("parse should fail");
            assert_eq!(got, want, "input: {text:?}");
        }
    }
}
