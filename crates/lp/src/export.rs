//! Model export in the CPLEX LP text format.
//!
//! Useful for debugging BATE's optimization models and for cross-checking
//! against external solvers: `problem.to_lp_format()` produces a file any
//! of Gurobi/CPLEX/HiGHS/glpsol can read.

use crate::problem::{Problem, Relation, Sense, VarKind};
use std::fmt::Write as _;

/// Sanitize a variable name into LP-format-safe identifiers.
fn sanitize(name: &str, index: usize) -> String {
    let mut out: String = name
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() || c == '_' { c } else { '_' })
        .collect();
    if out.is_empty() || out.chars().next().unwrap().is_ascii_digit() {
        out = format!("x{index}_{out}");
    }
    out
}

fn write_terms(buf: &mut String, terms: &[(usize, f64)], names: &[String]) {
    let mut first = true;
    for &(j, c) in terms {
        if c == 0.0 {
            continue;
        }
        if first {
            if c < 0.0 {
                let _ = write!(buf, "- ");
            }
            first = false;
        } else if c < 0.0 {
            let _ = write!(buf, " - ");
        } else {
            let _ = write!(buf, " + ");
        }
        let a = c.abs();
        if (a - 1.0).abs() < 1e-15 {
            let _ = write!(buf, "{}", names[j]);
        } else {
            let _ = write!(buf, "{a} {}", names[j]);
        }
    }
    if first {
        let _ = write!(buf, "0");
    }
}

impl Problem {
    /// Render the model in CPLEX LP format.
    pub fn to_lp_format(&self) -> String {
        let names: Vec<String> = self
            .vars
            .iter()
            .enumerate()
            .map(|(i, v)| sanitize(&v.name, i))
            .collect();

        let mut out = String::new();
        out.push_str(match self.sense {
            Sense::Minimize => "Minimize\n obj: ",
            Sense::Maximize => "Maximize\n obj: ",
        });
        let obj_terms: Vec<(usize, f64)> = self
            .objective
            .iter()
            .enumerate()
            .filter(|(_, &c)| c != 0.0)
            .map(|(j, &c)| (j, c))
            .collect();
        write_terms(&mut out, &obj_terms, &names);
        out.push_str("\nSubject To\n");
        for (i, c) in self.constraints.iter().enumerate() {
            let _ = write!(out, " c{i}: ");
            write_terms(&mut out, &c.terms, &names);
            let op = match c.relation {
                Relation::Le => "<=",
                Relation::Ge => ">=",
                Relation::Eq => "=",
            };
            let _ = writeln!(out, " {op} {}", c.rhs);
        }
        out.push_str("Bounds\n");
        for (j, v) in self.vars.iter().enumerate() {
            if v.upper.is_finite() {
                let _ = writeln!(out, " 0 <= {} <= {}", names[j], v.upper);
            } else {
                let _ = writeln!(out, " 0 <= {}", names[j]);
            }
        }
        let integers: Vec<&String> = self
            .vars
            .iter()
            .zip(&names)
            .filter(|(v, _)| v.kind == VarKind::Integer)
            .map(|(_, n)| n)
            .collect();
        if !integers.is_empty() {
            out.push_str("General\n");
            for n in integers {
                let _ = writeln!(out, " {n}");
            }
        }
        out.push_str("End\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::{Problem, Relation, Sense};

    #[test]
    fn renders_a_small_model() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var("x");
        let y = p.add_bounded_var("f[1][2]", 5.0);
        let z = p.add_binary_var("q");
        p.set_objective(x, 3.0);
        p.set_objective(y, -2.0);
        p.set_objective(z, 1.0);
        p.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Le, 4.0);
        p.add_constraint(&[(x, -1.0), (z, 2.5)], Relation::Ge, -1.0);
        p.add_constraint(&[(y, 1.0)], Relation::Eq, 2.0);
        let text = p.to_lp_format();
        assert!(text.starts_with("Maximize"));
        assert!(text.contains("3 x - 2 f_1__2_ + q"));
        assert!(text.contains("c0: x + f_1__2_ <= 4"));
        assert!(text.contains("c1: - x + 2.5 q >= -1"));
        assert!(text.contains("c2: f_1__2_ = 2"));
        assert!(text.contains("0 <= f_1__2_ <= 5"));
        assert!(text.contains("General\n q"));
        assert!(text.ends_with("End\n"));
    }

    #[test]
    fn empty_objective_renders_zero() {
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_var("x");
        p.add_constraint(&[(x, 1.0)], Relation::Ge, 1.0);
        let text = p.to_lp_format();
        assert!(text.contains("obj: 0"));
    }

    #[test]
    fn numeric_leading_names_are_fixed() {
        let mut p = Problem::new(Sense::Minimize);
        let v = p.add_var("1bad");
        p.set_objective(v, 1.0);
        let text = p.to_lp_format();
        assert!(!text.contains(" 1bad"), "{text}");
        assert!(text.contains("x0_1bad"));
    }
}
