//! Per-solve instrumentation: kernel counters the simplex and
//! branch-and-bound solvers fill in as they run.
//!
//! [`SolveStats`] rides on every [`Solution`](crate::Solution) — the
//! counters (iterations, pivots, pricing activity) are exact and
//! deterministic for a given problem, so golden tests pin them to make
//! pivot-behavior changes explicit; the phase timings are wall-clock and
//! informational only (excluded from equality and goldens).

/// Counters and timings from one simplex solve.
///
/// All counts are deterministic for a given `(problem, overrides,
/// warm-basis)` input; `phase1_secs` / `phase2_secs` are wall-clock and
/// vary run to run. [`Solution`](crate::Solution) equality deliberately
/// ignores this struct.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SolveStats {
    /// Constraint rows of the tableau.
    pub rows: u32,
    /// Columns (structural + slack/surplus + artificial).
    pub cols: u32,
    /// Pivot-loop iterations spent driving artificials out (0 when the
    /// slack basis or a warm basis was already feasible).
    pub phase1_iterations: u64,
    /// Pivot-loop iterations optimizing the real objective.
    pub phase2_iterations: u64,
    /// Basis-change pivots (a row left the basis).
    pub pivots: u64,
    /// Bound flips (the entering variable crossed its box without a basis
    /// change).
    pub bound_flips: u64,
    /// Iterations taken under Bland's anti-cycling rule.
    pub bland_iterations: u64,
    /// Full Dantzig pricing scans (candidate-list refills).
    pub full_price_scans: u64,
    /// Iterations served from the partial-pricing candidate list without
    /// a full scan.
    pub candidate_hits: u64,
    /// Whether a warm basis was installed and accepted as primal feasible.
    pub warm_start: bool,
    /// Dual-simplex repair pivots (warm bases left primal-infeasible by a
    /// rhs/bound edit are repaired row-first instead of re-solved cold).
    pub dual_pivots: u64,
    /// Wall-clock seconds in phase 1 (informational; nondeterministic).
    pub phase1_secs: f64,
    /// Wall-clock seconds in phase 2 (informational; nondeterministic).
    pub phase2_secs: f64,
    /// Wall-clock seconds spent pricing (entering-column selection),
    /// across both phases. Estimated by deterministic 1-in-8 iteration
    /// sampling and scaled up, so per-iteration timer reads stay off the
    /// hot path (informational; nondeterministic).
    pub pricing_secs: f64,
    /// Wall-clock seconds spent in the ratio test + pivot/elimination
    /// work, across both phases. Sampled like `pricing_secs`
    /// (informational; nondeterministic).
    pub pivot_secs: f64,
    /// Wall-clock seconds in the dual-simplex warm-start repair loop
    /// (also included in `phase1_secs`, which it historically fed;
    /// informational; nondeterministic).
    pub dual_repair_secs: f64,
}

impl SolveStats {
    /// Total pivot-loop iterations across both phases.
    pub fn iterations(&self) -> u64 {
        self.phase1_iterations + self.phase2_iterations
    }

    /// Total wall-clock seconds across both phases (informational).
    pub fn total_secs(&self) -> f64 {
        self.phase1_secs + self.phase2_secs
    }
}

/// One incumbent improvement during branch-and-bound.
#[derive(Debug, Clone, PartialEq)]
pub struct IncumbentPoint {
    /// Nodes processed when the incumbent was found (1-based: the node
    /// that produced it counts).
    pub node: u64,
    /// The incumbent's objective, in the problem's own sense.
    pub objective: f64,
}

/// Search statistics from one branch-and-bound solve.
///
/// Node accounting happens in the sequential batch-processing loop, so
/// every field is byte-identical across thread counts (the same property
/// the solver itself guarantees for its solutions).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MilpStats {
    /// LP relaxations processed (includes pruned and infeasible nodes).
    pub nodes: u64,
    /// Deepest node processed (bound overrides stacked = tree depth).
    pub max_depth: u32,
    /// Σ simplex iterations over all node relaxations.
    pub lp_iterations: u64,
    /// Σ basis-change pivots over all node relaxations.
    pub lp_pivots: u64,
    /// Every incumbent improvement, in discovery order — the trajectory
    /// from first feasible point to the returned optimum.
    pub incumbents: Vec<IncumbentPoint>,
    /// Lazy-constraint rows appended by the separation oracle (always 0
    /// for plain [`solve_traced`](crate::milp::solve_traced); see
    /// [`solve_traced_lazy`](crate::milp::solve_traced_lazy)).
    pub lazy_rows_added: u64,
    /// Separation-oracle invocations during lazy branch-and-cut.
    pub separation_calls: u64,
}
