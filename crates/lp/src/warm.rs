//! Persistent warm-start state across solve rounds.
//!
//! The row-generation loops in `bate-core` rebuild their master LP from
//! scratch every scheduling round, even when the demand set changed by a
//! few percent. [`WarmState`] owns the master [`Problem`] and its
//! [`Workspace`] *between* rounds: the caller mutates the problem
//! incrementally (append variables/rows, extend rows with new columns,
//! edit rhs values and variable bounds in place) and [`WarmState::solve`]
//! re-syncs the prepared workspace — columns, then rows, then rhs — so the
//! saved simplex basis survives the edit and the next solve is a basis
//! repair instead of a cold two-phase run.
//!
//! ## Mutation contract
//!
//! Between solves the caller may only:
//!
//! * append variables and constraints ([`Problem::add_var`] /
//!   [`Problem::add_constraint`]),
//! * extend existing rows with terms over **newly appended** variables
//!   ([`Problem::extend_constraint`]),
//! * edit rhs values in place ([`Problem::set_rhs`]), and
//! * edit variable upper bounds ([`Problem::set_var_upper`]).
//!
//! Editing an existing coefficient, relation, or objective entry in place
//! is outside the contract (the workspace fingerprints structure, not
//! content); callers needing that rebuild via [`WarmState::rebuild_cold`].
//!
//! [`quick_check`] is the float mirror of the exact KKT certificate in
//! [`crate::exact`]: a microsecond-scale gate the incremental scheduler
//! runs on every warm answer before trusting it, with the rational
//! certificate reserved for offline verification (tests, fuzz campaign).

use crate::error::SolveError;
use crate::problem::{Problem, Relation, Sense};
use crate::simplex::{self, Workspace};
use crate::solution::Solution;

/// Warm-start survival counters, exposed for metrics/benchmark reporting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WarmStats {
    /// Solves where the saved basis was installed (feasible directly,
    /// short phase 1, or dual repair).
    pub warm_solves: u64,
    /// Solves that ran cold (first solve, failed sync, rejected basis, or
    /// an explicit [`WarmState::rebuild_cold`]).
    pub cold_solves: u64,
    /// Total dual-simplex repair pivots across all solves.
    pub dual_pivots: u64,
}

/// A master problem plus the solver workspace that outlives each solve.
#[derive(Debug)]
pub struct WarmState {
    problem: Problem,
    ws: Workspace,
    stats: WarmStats,
}

impl WarmState {
    /// Wrap `problem`; the first [`WarmState::solve`] runs cold and arms
    /// the basis for every following one.
    pub fn new(problem: Problem) -> Self {
        WarmState {
            problem,
            ws: Workspace::new(),
            stats: WarmStats::default(),
        }
    }

    /// The master problem (read-only).
    pub fn problem(&self) -> &Problem {
        &self.problem
    }

    /// Mutable access to the master problem, under the module-level
    /// mutation contract (append-only structure; in-place rhs/bound edits).
    pub fn problem_mut(&mut self) -> &mut Problem {
        &mut self.problem
    }

    /// Counters accumulated since construction.
    pub fn stats(&self) -> WarmStats {
        self.stats
    }

    /// Drop all cached solver state; the next solve runs cold. The safety
    /// valve for certificate failures and out-of-contract mutations.
    pub fn rebuild_cold(&mut self) {
        self.ws = Workspace::new();
    }

    /// Re-sync the workspace to the problem's current shape and solve.
    ///
    /// Sync order is columns → rows → rhs: appended columns must widen the
    /// prepared rows before appended rows (whose terms may reference the
    /// new columns) are cloned, and the rhs copy-through requires the
    /// final fingerprint. Any sync step refusing (out-of-contract shape)
    /// falls back to a cold rebuild — correctness never depends on the
    /// warm path being taken. `stats.warm_start` on the returned solution
    /// says which path actually ran.
    pub fn solve(&mut self) -> Result<Solution, SolveError> {
        let synced = self.ws.append_cols(&self.problem)
            && self.ws.append_rows(&self.problem)
            && self.ws.sync_rhs(&self.problem);
        if !synced {
            self.ws = Workspace::new();
        }
        let sol = simplex::solve_with(&self.problem, &[], &mut self.ws)?;
        if sol.stats.warm_start {
            self.stats.warm_solves += 1;
        } else {
            self.stats.cold_solves += 1;
        }
        self.stats.dual_pivots += sol.stats.dual_pivots;
        Ok(sol)
    }
}

/// Float KKT gate for a warm solution: primal feasibility, dual sign
/// feasibility, reduced-cost sign for box-free variables, and the duality
/// gap, all in `f64` with the same scaling conventions as the exact
/// certificate ([`crate::exact::verify_parts`]). `tol` plays the roles of
/// `τ_feas`/`τ_dual`/`τ_gap` at once.
///
/// A `true` verdict is *not* a proof (that is the rational certificate's
/// job); a `false` verdict is a cheap, reliable signal to retry cold.
pub fn quick_check(problem: &Problem, sol: &Solution, tol: f64) -> bool {
    quick_check_why(problem, sol, tol).is_none()
}

/// [`quick_check`] with a human-readable reason for the first failing
/// condition (`None` when the check passes). Diagnostic aid for tests and
/// fallback logging.
#[doc(hidden)]
pub fn quick_check_why(problem: &Problem, sol: &Solution, tol: f64) -> Option<String> {
    let n = problem.num_vars();
    let m = problem.num_constraints();
    if sol.values.len() != n {
        return Some(format!("value count {} != vars {n}", sol.values.len()));
    }
    let Some(duals) = sol.duals.as_ref() else {
        return Some("no duals".into());
    };
    if duals.len() != m {
        return Some(format!("dual count {} != rows {m}", duals.len()));
    }
    if !problem.is_feasible(&sol.values, tol) {
        return Some("primal infeasible".into());
    }

    let sigma = match problem.sense {
        Sense::Minimize => 1.0,
        Sense::Maximize => -1.0,
    };
    // Minimize-form duals; dual sign feasibility per relation.
    let y: Vec<f64> = duals.iter().map(|&v| sigma * v).collect();
    for (i, c) in problem.constraints.iter().enumerate() {
        let eps = tol * (1.0 + y[i].abs());
        let ok = match c.relation {
            Relation::Le => y[i] <= eps,
            Relation::Ge => y[i] >= -eps,
            Relation::Eq => true,
        };
        if !ok {
            return Some(format!("dual sign of row {i}: y = {}", y[i]));
        }
    }

    // Reduced costs z_j = σc_j − Σ_i y_i a_ij with per-column magnitude
    // scales, accumulated row-wise over the sparse constraint terms.
    let mut z: Vec<f64> = (0..n).map(|j| sigma * problem.objective[j]).collect();
    let mut scale: Vec<f64> = z.iter().map(|c| c.abs()).collect();
    for (i, c) in problem.constraints.iter().enumerate() {
        if y[i] == 0.0 {
            continue;
        }
        for &(j, a) in &c.terms {
            let prod = y[i] * a;
            z[j] -= prod;
            scale[j] += prod.abs();
        }
    }

    // Box-free variables must price out non-negative; bounded ones may
    // carry negative reduced costs, which enter the dual objective below.
    let mut dual_obj: f64 = problem
        .constraints
        .iter()
        .enumerate()
        .map(|(i, c)| y[i] * c.rhs)
        .sum();
    for j in 0..n {
        let upper = problem.vars[j].upper;
        if upper.is_finite() {
            if z[j] < 0.0 {
                dual_obj += z[j] * upper;
            }
        } else if z[j] < -tol * (1.0 + scale[j]) {
            return Some(format!("reduced cost of free var {j}: z = {}", z[j]));
        }
    }

    let primal_obj = sigma * sol.objective;
    if (primal_obj - dual_obj).abs() > tol * (1.0 + primal_obj.abs()) {
        return Some(format!(
            "duality gap: primal {primal_obj} vs dual {dual_obj}"
        ));
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Relation, Sense, VarId};

    fn approx(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} != {b}");
    }

    fn demo() -> Problem {
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_var("x");
        let y = p.add_var("y");
        let z = p.add_bounded_var("z", 2.0);
        p.set_objective(x, 2.0);
        p.set_objective(y, 3.0);
        p.set_objective(z, 1.0);
        p.add_constraint(&[(x, 1.0), (y, 1.0), (z, 1.0)], Relation::Ge, 10.0);
        p.add_constraint(&[(x, 1.0), (y, -1.0)], Relation::Le, 4.0);
        p
    }

    #[test]
    fn warm_state_round_trip_matches_cold() {
        let mut warm = WarmState::new(demo());
        let first = warm.solve().unwrap();
        assert!(!first.stats.warm_start);
        let second = warm.solve().unwrap();
        assert!(second.stats.warm_start);
        approx(first.objective, second.objective);
        assert_eq!(warm.stats().warm_solves, 1);
        assert_eq!(warm.stats().cold_solves, 1);
    }

    #[test]
    fn rhs_edit_resolves_warm_and_matches_cold() {
        let mut warm = WarmState::new(demo());
        warm.solve().unwrap();
        warm.problem_mut().set_rhs(0, 14.0);
        let sol = warm.solve().unwrap();
        assert!(sol.stats.warm_start);
        let cold = warm.problem().clone().solve().unwrap();
        approx(sol.objective, cold.objective);
    }

    #[test]
    fn bound_edit_triggers_dual_repair() {
        let mut warm = WarmState::new(demo());
        let first = warm.solve().unwrap();
        // The optimum uses x heavily; fencing x below its current value
        // pushes the basic out of its box, which only dual repair fixes.
        let x_at = first.values[0];
        assert!(x_at > 1.0, "demo optimum should route through x");
        warm.problem_mut().set_var_upper(VarId(0), x_at / 2.0);
        let sol = warm.solve().unwrap();
        assert!(sol.stats.warm_start);
        assert!(sol.stats.dual_pivots > 0, "expected dual repair pivots");
        let cold = warm.problem().clone().solve().unwrap();
        approx(sol.objective, cold.objective);
        assert!(warm.stats().dual_pivots > 0);
    }

    #[test]
    fn column_append_prices_into_existing_basis() {
        let mut warm = WarmState::new(demo());
        let first = warm.solve().unwrap();
        // A cheaper route: new variable entering row 0 with cost 0.5.
        let w = warm.problem_mut().add_var("w");
        warm.problem_mut().set_objective(w, 0.5);
        warm.problem_mut().extend_constraint(0, &[(w, 1.0)]);
        let sol = warm.solve().unwrap();
        assert!(sol.stats.warm_start);
        let cold = warm.problem().clone().solve().unwrap();
        approx(sol.objective, cold.objective);
        assert!(sol.objective < first.objective - 1.0);
    }

    #[test]
    fn rebuild_cold_forces_cold_solve() {
        let mut warm = WarmState::new(demo());
        warm.solve().unwrap();
        warm.rebuild_cold();
        let sol = warm.solve().unwrap();
        assert!(!sol.stats.warm_start);
        assert_eq!(warm.stats().cold_solves, 2);
    }

    #[test]
    fn quick_check_accepts_optimal_rejects_corrupted() {
        let p = demo();
        let sol = p.solve().unwrap();
        assert!(quick_check(&p, &sol, 1e-6));
        let mut bad = sol.clone();
        bad.values[0] += 1.0; // breaks feasibility/gap
        assert!(!quick_check(&p, &bad, 1e-6));
        let mut no_duals = sol.clone();
        no_duals.duals = None;
        assert!(!quick_check(&p, &no_duals, 1e-6));
    }

    #[test]
    fn quick_check_matches_exact_certificate_on_maximize() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var("x");
        let y = p.add_var("y");
        p.set_objective(x, 3.0);
        p.set_objective(y, 2.0);
        p.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Le, 4.0);
        p.add_constraint(&[(x, 1.0), (y, 3.0)], Relation::Le, 6.0);
        let sol = p.solve().unwrap();
        assert!(quick_check(&p, &sol, 1e-6));
        crate::exact::verify_certificate(&p, &sol).unwrap();
    }
}
