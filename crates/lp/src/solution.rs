//! Optimal solutions returned by the solvers.

use crate::problem::VarId;
use crate::stats::SolveStats;
use std::ops::Index;

/// An optimal solution: the objective value (in the problem's own sense) and
/// one value per variable, indexed by [`VarId`].
#[derive(Debug, Clone)]
pub struct Solution {
    /// Optimal objective value.
    pub objective: f64,
    /// Value of each variable, ordered by creation.
    pub values: Vec<f64>,
    /// Dual value (shadow price) per constraint, in the problem's own
    /// optimization sense. `Some` for pure LP solves; `None` for MILP
    /// solutions (duals are not defined at integer optima).
    pub duals: Option<Vec<f64>>,
    /// Kernel counters from the solve that produced this solution (for a
    /// MILP, from the node relaxation that became the incumbent).
    /// Excluded from equality: stats describe *how* the optimum was
    /// reached, not *what* it is.
    pub stats: SolveStats,
}

impl PartialEq for Solution {
    fn eq(&self, other: &Solution) -> bool {
        self.objective == other.objective
            && self.values == other.values
            && self.duals == other.duals
    }
}

impl Solution {
    /// Value of a variable.
    pub fn value(&self, var: VarId) -> f64 {
        self.values[var.index()]
    }

    /// Value of a variable rounded to the nearest integer — convenient for
    /// reading MILP indicator variables.
    pub fn int_value(&self, var: VarId) -> i64 {
        self.values[var.index()].round() as i64
    }
}

impl Index<VarId> for Solution {
    type Output = f64;

    fn index(&self, var: VarId) -> &f64 {
        &self.values[var.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{Problem, Sense};

    #[test]
    fn indexing_and_rounding() {
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_var("x");
        let s = Solution {
            objective: 1.0,
            values: vec![0.999_999_9],
            duals: None,
            stats: SolveStats::default(),
        };
        assert_eq!(s.int_value(x), 1);
        assert!((s[x] - 0.999_999_9).abs() < 1e-12);
    }
}
