//! Deterministic fork-join parallelism for solver fan-out.
//!
//! [`par_map`] / [`par_map_with`] evaluate a pure function over a slice on
//! scoped worker threads and return results **in input order**. Items are
//! split into contiguous chunks, each worker fills its own disjoint region
//! of the output, and the merge is positional — no channels, no
//! completion-order dependence. Because each result depends only on its
//! input (never on scheduling), output is byte-identical for any thread
//! count, which is what lets `schedule_hardened`, branch-and-bound, and
//! the experiment sweeps parallelize without giving up reproducibility.
//!
//! The worker count comes from the `BATE_THREADS` environment variable
//! when set (a value of `1` disables threading entirely), otherwise from
//! [`std::thread::available_parallelism`].

use std::cell::Cell;

thread_local! {
    /// Per-thread override installed by [`with_thread_count`]; takes
    /// precedence over `BATE_THREADS`.
    static THREAD_OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Number of worker threads fan-out points should use.
pub fn thread_count() -> usize {
    if let Some(n) = THREAD_OVERRIDE.with(|o| o.get()) {
        return n.max(1);
    }
    if let Ok(v) = std::env::var("BATE_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Run `f` with [`thread_count`] pinned to `n` on the current thread.
///
/// Exists so determinism tests can execute the same computation at
/// different thread counts within one process and compare results bit for
/// bit; also handy for temporarily serializing a fan-out in a debugger.
pub fn with_thread_count<R>(n: usize, f: impl FnOnce() -> R) -> R {
    let prev = THREAD_OVERRIDE.with(|o| o.replace(Some(n)));
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            THREAD_OVERRIDE.with(|o| o.set(self.0));
        }
    }
    let _restore = Restore(prev);
    f()
}

/// Map `f` over `items` in parallel, returning results in input order.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_with(items, || (), |(), item| f(item))
}

/// Like [`par_map`] but with per-worker state: each worker thread builds
/// one `S` via `init` and threads it through every item of its chunk.
///
/// Used to give each worker a private solver [`crate::simplex::Workspace`]
/// so buffer reuse carries across that worker's items. Determinism caveat
/// for callers: `f` must produce the same `R` for an item regardless of
/// the state's history (reusing *allocations* is fine; leaking warm-start
/// *decisions* between items is not — set or clear warm state explicitly
/// per item).
pub fn par_map_with<T, R, S, I, F>(items: &[T], init: I, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, &T) -> R + Sync,
{
    let n = items.len();
    let workers = thread_count().min(n);
    if workers <= 1 {
        let mut state = init();
        return items.iter().map(|item| f(&mut state, item)).collect();
    }

    let chunk = n.div_ceil(workers);
    let mut out: Vec<Option<R>> = Vec::with_capacity(n);
    out.resize_with(n, || None);
    let (init, f) = (&init, &f);
    std::thread::scope(|scope| {
        for (islice, oslice) in items.chunks(chunk).zip(out.chunks_mut(chunk)) {
            scope.spawn(move || {
                let mut state = init();
                for (item, slot) in islice.iter().zip(oslice.iter_mut()) {
                    *slot = Some(f(&mut state, item));
                }
            });
        }
    });
    out.into_iter()
        .map(|slot| slot.expect("worker filled every slot"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<usize> = (0..1000).collect();
        let out = par_map(&items, |&x| x * 2);
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single() {
        let none: Vec<u32> = Vec::new();
        assert!(par_map(&none, |&x| x).is_empty());
        assert_eq!(par_map(&[7u32], |&x| x + 1), vec![8]);
    }

    #[test]
    fn per_worker_state_is_isolated() {
        // Each worker counts its own items; totals must cover all items
        // exactly once.
        let items: Vec<usize> = (0..257).collect();
        let out = par_map_with(
            &items,
            || 0usize,
            |seen, &x| {
                *seen += 1;
                x
            },
        );
        assert_eq!(out, items);
    }

    #[test]
    fn matches_sequential_for_any_chunking() {
        // The same computation through the sequential path (empty slice
        // forces workers=0 -> sequential) and the parallel path.
        let items: Vec<f64> = (0..100).map(|i| i as f64 * 0.5).collect();
        let seq: Vec<f64> = items.iter().map(|x| x.sqrt()).collect();
        let par = par_map(&items, |x| x.sqrt());
        assert_eq!(seq, par); // byte-identical, not just approximately
    }
}
