//! The original dense two-phase simplex kernel, preserved verbatim.
//!
//! [`crate::simplex`] replaced this implementation with a sparse-aware,
//! allocation-free pivot kernel. This module keeps the old dense kernel
//! around for two purposes:
//!
//! * **golden tests** (`tests/golden.rs`) assert that the sparse kernel
//!   reproduces the dense kernel's objectives and duals to within 1e-6 on a
//!   corpus of scheduling- and admission-shaped instances, and
//! * **benchmarks** (`crates/bench/benches/lp.rs`) report dense-vs-sparse
//!   wall-clock numbers side by side.
//!
//! It is not used on any production path and intentionally receives no
//! further optimization work.

use crate::error::SolveError;
use crate::problem::{Problem, Relation, Sense};
use crate::simplex::BoundOverride;
use crate::solution::Solution;
use crate::EPS;

/// Feasibility tolerance for phase-1 termination.
const PHASE1_TOL: f64 = 1e-7;
/// Number of non-improving iterations tolerated before switching to Bland's
/// rule.
const STALL_LIMIT: usize = 64;

/// Solve the LP relaxation of `problem` with the original dense kernel.
pub fn solve_relaxation_dense(
    problem: &Problem,
    overrides: &[BoundOverride],
) -> Result<Solution, SolveError> {
    let n = problem.num_vars();

    // Effective bounds per variable.
    let mut lo = vec![0.0f64; n];
    let mut hi: Vec<f64> = problem.vars.iter().map(|v| v.upper).collect();
    for &(j, l, h) in overrides {
        lo[j] = lo[j].max(l);
        hi[j] = hi[j].min(h);
    }
    for j in 0..n {
        if lo[j] > hi[j] + EPS {
            return Err(SolveError::Infeasible);
        }
        // Guard against a tiny negative width from rounding.
        if hi[j] < lo[j] {
            hi[j] = lo[j];
        }
    }

    // Shift x = lo + y. Constraint rhs absorbs the shift.
    let mut tab = Tableau::build(problem, &lo, &hi)?;
    tab.phase1()?;
    tab.phase2(problem)?;

    let y = tab.extract();
    let mut values = vec![0.0f64; n];
    for j in 0..n {
        let v = lo[j] + y[j];
        // Clamp solver noise back into the box.
        values[j] = v.clamp(lo[j], hi[j]);
    }
    let objective = problem.objective_value(&values);
    Ok(Solution {
        objective,
        values,
        duals: Some(tab.duals(problem.sense)),
        // The reference kernel is uninstrumented by design (it exists to
        // cross-check arithmetic, not to be observed).
        stats: crate::stats::SolveStats::default(),
    })
}

/// Dense bounded-variable simplex tableau.
///
/// The matrix part holds `B^{-1} A`; the last column holds the *current
/// values of the basic variables* (with nonbasic-at-upper contributions
/// folded in), which is what the ratio test needs directly.
struct Tableau {
    /// Row-major, `rows x (cols + 1)`; last column = basic values.
    a: Vec<f64>,
    rows: usize,
    cols: usize,
    /// Basis variable of each row.
    basis: Vec<usize>,
    /// Reduced-cost row, length `cols` (no rhs cell — the objective value
    /// is tracked separately in `objval`).
    obj: Vec<f64>,
    /// Current objective value of the internal minimization.
    objval: f64,
    /// Upper bound (width after shifting) per column; `INFINITY` when
    /// unbounded above.
    ub: Vec<f64>,
    /// For nonbasic columns: is the variable sitting at its upper bound?
    at_upper: Vec<bool>,
    /// Columns that may enter the basis (artificials are blocked in
    /// phase 2; zero-width columns are always blocked).
    allowed: Vec<bool>,
    /// Index of the first artificial column.
    first_artificial: usize,
    /// Number of structural (shifted user) variables.
    n_struct: usize,
    /// Per original constraint: the marker column (slack/surplus/
    /// artificial) and the sign mapping its reduced cost to the row's dual
    /// value, used by [`Tableau::duals`].
    row_meta: Vec<(usize, f64)>,
}

impl Tableau {
    #[inline]
    fn at(&self, r: usize, c: usize) -> f64 {
        self.a[r * (self.cols + 1) + c]
    }

    #[inline]
    fn set(&mut self, r: usize, c: usize, v: f64) {
        self.a[r * (self.cols + 1) + c] = v;
    }

    #[inline]
    fn xb(&self, r: usize) -> f64 {
        self.at(r, self.cols)
    }

    /// Build the bounded standard form for `problem` with variables shifted
    /// by `lo`; `hi` are the (pre-shift) upper bounds.
    fn build(problem: &Problem, lo: &[f64], hi: &[f64]) -> Result<Tableau, SolveError> {
        let n = problem.num_vars();

        struct Row {
            terms: Vec<(usize, f64)>,
            relation: Relation,
            rhs: f64,
        }
        let mut rows: Vec<Row> = Vec::with_capacity(problem.constraints.len());
        for c in &problem.constraints {
            let shift: f64 = c.terms.iter().map(|&(j, coef)| coef * lo[j]).sum();
            rows.push(Row {
                terms: c.terms.clone(),
                relation: c.relation,
                rhs: c.rhs - shift,
            });
        }
        // Normalize rhs >= 0, remembering which rows were negated (their
        // dual values flip sign).
        let mut flipped = vec![false; rows.len()];
        for (i, row) in rows.iter_mut().enumerate() {
            if row.rhs < 0.0 {
                flipped[i] = true;
                row.rhs = -row.rhs;
                for t in &mut row.terms {
                    t.1 = -t.1;
                }
                row.relation = match row.relation {
                    Relation::Le => Relation::Ge,
                    Relation::Ge => Relation::Le,
                    Relation::Eq => Relation::Eq,
                };
            }
        }

        let m = rows.len();
        let n_slack = rows
            .iter()
            .filter(|r| !matches!(r.relation, Relation::Eq))
            .count();
        let n_art = rows
            .iter()
            .filter(|r| !matches!(r.relation, Relation::Le))
            .count();
        let cols = n + n_slack + n_art;
        let first_artificial = n + n_slack;

        let mut ub = vec![f64::INFINITY; cols];
        for j in 0..n {
            ub[j] = hi[j] - lo[j];
        }
        let mut allowed = vec![true; cols];
        for j in 0..n {
            if ub[j] < EPS {
                allowed[j] = false; // fixed variable, can never move
            }
        }

        let mut tab = Tableau {
            a: vec![0.0; m * (cols + 1)],
            rows: m,
            cols,
            basis: vec![usize::MAX; m],
            obj: vec![0.0; cols],
            objval: 0.0,
            ub,
            at_upper: vec![false; cols],
            allowed,
            first_artificial,
            n_struct: n,
            row_meta: Vec::with_capacity(m),
        };

        let mut slack_next = n;
        let mut art_next = first_artificial;
        for (i, row) in rows.iter().enumerate() {
            for &(j, coef) in &row.terms {
                tab.set(i, j, coef);
            }
            tab.set(i, cols, row.rhs);
            let flip = if flipped[i] { -1.0 } else { 1.0 };
            match row.relation {
                Relation::Le => {
                    tab.set(i, slack_next, 1.0);
                    tab.basis[i] = slack_next;
                    // d_slack = -y_i  →  y_i = -d_slack.
                    tab.row_meta.push((slack_next, -flip));
                    slack_next += 1;
                }
                Relation::Ge => {
                    tab.set(i, slack_next, -1.0);
                    // d_surplus = +y_i.
                    tab.row_meta.push((slack_next, flip));
                    slack_next += 1;
                    tab.set(i, art_next, 1.0);
                    tab.basis[i] = art_next;
                    art_next += 1;
                }
                Relation::Eq => {
                    tab.set(i, art_next, 1.0);
                    tab.basis[i] = art_next;
                    // d_artificial = c_art - y_i = -y_i in phase 2.
                    tab.row_meta.push((art_next, -flip));
                    art_next += 1;
                }
            }
        }
        Ok(tab)
    }

    /// Phase 1: minimize the sum of artificial variables.
    fn phase1(&mut self) -> Result<(), SolveError> {
        if self.first_artificial == self.cols {
            return Ok(()); // all-slack basis is already feasible
        }
        // Reduced costs for cost e_{artificials}: basics must have zero
        // reduced cost, so subtract each artificial-basic row.
        for v in self.obj.iter_mut() {
            *v = 0.0;
        }
        for c in self.first_artificial..self.cols {
            self.obj[c] = 1.0;
        }
        self.objval = 0.0;
        for i in 0..self.rows {
            if self.basis[i] >= self.first_artificial {
                for c in 0..self.cols {
                    self.obj[c] -= self.at(i, c);
                }
                self.objval += self.xb(i);
            }
        }

        self.iterate()?;

        if self.objval > PHASE1_TOL {
            return Err(SolveError::Infeasible);
        }

        // Drive any artificial still in the basis out (it sits at zero, so
        // this is a degenerate pivot).
        for r in 0..self.rows {
            if self.basis[r] >= self.first_artificial {
                let col = (0..self.first_artificial).find(|&c| self.at(r, c).abs() > 1e-8);
                if let Some(c) = col {
                    self.degenerate_swap(r, c);
                }
                // No pivot column: the row is redundant; the artificial
                // stays basic at zero and its column is blocked in phase 2.
            }
        }
        Ok(())
    }

    /// Phase 2: optimize the real (internally minimized) objective.
    fn phase2(&mut self, problem: &Problem) -> Result<(), SolveError> {
        let sign = match problem.sense {
            Sense::Minimize => 1.0,
            Sense::Maximize => -1.0,
        };
        for c in self.first_artificial..self.cols {
            self.allowed[c] = false;
        }
        // Rebuild reduced costs: d_j = c_j - c_B' (B^{-1} A_j).
        for c in 0..self.cols {
            self.obj[c] = if c < self.n_struct {
                sign * problem.objective[c]
            } else {
                0.0
            };
        }
        for i in 0..self.rows {
            let b = self.basis[i];
            let cb = if b < self.n_struct {
                sign * problem.objective[b]
            } else {
                0.0
            };
            if cb != 0.0 {
                for c in 0..self.cols {
                    let v = self.obj[c] - cb * self.at(i, c);
                    self.obj[c] = v;
                }
            }
        }
        // Current objective value: c_B' x_B + Σ_{nonbasic at upper} c_j w_j.
        let mut val = 0.0;
        for i in 0..self.rows {
            let b = self.basis[i];
            if b < self.n_struct {
                val += sign * problem.objective[b] * self.xb(i);
            }
        }
        let basic: std::collections::HashSet<usize> = self.basis.iter().copied().collect();
        for j in 0..self.n_struct {
            if !basic.contains(&j) && self.at_upper[j] {
                val += sign * problem.objective[j] * self.ub[j];
            }
        }
        self.objval = val;

        self.iterate()
    }

    /// Main pivot loop.
    fn iterate(&mut self) -> Result<(), SolveError> {
        let max_iters = 400 * (self.rows + self.cols) + 20_000;
        let mut bland = false;
        let mut stall = 0usize;
        let mut last_obj = f64::INFINITY;
        // Wall-clock guard: healthy solves of the model sizes BATE builds
        // finish in well under a second; a solve running for tens of
        // seconds is degenerate-cycling under Bland's slow-but-safe rule
        // and will not produce a better answer. The cap keeps online
        // components responsive (callers treat IterationLimit like
        // Infeasible: reject / fall back).
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);

        for it in 0..max_iters {
            if it % 256 == 0 && std::time::Instant::now() > deadline {
                return Err(SolveError::IterationLimit);
            }
            let basic_mark = self.basic_mark();
            let Some(e) = self.choose_entering(bland, &basic_mark) else {
                return Ok(()); // optimal
            };
            // Direction: +1 if entering rises from its lower bound, -1 if
            // it falls from its upper bound.
            let delta = if self.at_upper[e] { -1.0 } else { 1.0 };

            // Ratio test: the entering step is limited by the entering
            // variable's own bound width (flip) and by every basic variable
            // hitting one of its bounds. Ties between rows break toward the
            // smallest basis index (Bland-compatible); a row beats a
            // same-sized bound flip.
            let mut t = self.ub[e]; // bound-flip limit (may be inf)
            let mut leave: Option<(usize, bool)> = None; // (row, leaves_at_upper)
            for i in 0..self.rows {
                let alpha = self.at(i, e);
                let rate = delta * alpha; // basic i changes at -rate per unit
                let candidate = if rate > EPS {
                    // Basic decreases toward 0.
                    Some((self.xb(i) / rate, false))
                } else if rate < -EPS && self.ub[self.basis[i]].is_finite() {
                    // Basic increases toward its own upper bound.
                    Some(((self.ub[self.basis[i]] - self.xb(i)) / (-rate), true))
                } else {
                    None
                };
                let Some((ti, at_up)) = candidate else { continue };
                let ti = ti.max(0.0);
                let take = match leave {
                    _ if ti < t - EPS => true,
                    None if ti <= t + EPS => true, // row beats a tied flip
                    Some((r, _)) if ti <= t + EPS => self.basis[i] < self.basis[r],
                    _ => false,
                };
                if take {
                    t = t.min(ti);
                    leave = Some((i, at_up));
                }
            }

            if t.is_infinite() {
                return Err(SolveError::Unbounded);
            }

            // Objective improvement bookkeeping (d_e · Δx_e, Δx_e = δ·t).
            self.objval += self.obj[e] * delta * t;

            match leave {
                None => {
                    // Bound flip: entering moves across its whole range.
                    for i in 0..self.rows {
                        let alpha = self.at(i, e);
                        if alpha != 0.0 {
                            let nv = self.xb(i) - delta * alpha * t;
                            self.set(i, self.cols, nv);
                        }
                    }
                    self.at_upper[e] = !self.at_upper[e];
                }
                Some((r, leaves_at_upper)) => {
                    // Update folded basic values for all rows except r.
                    for i in 0..self.rows {
                        if i != r {
                            let alpha = self.at(i, e);
                            if alpha != 0.0 {
                                let nv = self.xb(i) - delta * alpha * t;
                                self.set(i, self.cols, nv);
                            }
                        }
                    }
                    let new_value = if self.at_upper[e] {
                        self.ub[e] - t
                    } else {
                        t
                    };
                    let old_basic = self.basis[r];
                    self.at_upper[old_basic] = leaves_at_upper;
                    self.pivot_matrix(r, e);
                    self.at_upper[e] = false;
                    self.basis[r] = e;
                    self.set(r, self.cols, new_value.max(0.0));
                }
            }

            if self.objval < last_obj - 1e-12 {
                stall = 0;
            } else {
                stall += 1;
                if stall > STALL_LIMIT {
                    bland = true;
                }
            }
            last_obj = self.objval;
        }
        Err(SolveError::IterationLimit)
    }

    fn basic_mark(&self) -> Vec<bool> {
        let mut mark = vec![false; self.cols];
        for &b in &self.basis {
            if b < self.cols {
                mark[b] = true;
            }
        }
        mark
    }

    /// Entering column: nonbasic at lower with `d < 0`, or nonbasic at
    /// upper with `d > 0`.
    fn choose_entering(&self, bland: bool, basic: &[bool]) -> Option<usize> {
        let violation = |c: usize| -> f64 {
            if basic[c] || !self.allowed[c] {
                return 0.0;
            }
            let d = self.obj[c];
            if self.at_upper[c] {
                if d > EPS {
                    d
                } else {
                    0.0
                }
            } else if d < -EPS {
                -d
            } else {
                0.0
            }
        };
        if bland {
            (0..self.cols).find(|&c| violation(c) > 0.0)
        } else {
            let mut best = None;
            let mut best_v = 0.0;
            for c in 0..self.cols {
                let v = violation(c);
                if v > best_v {
                    best_v = v;
                    best = Some(c);
                }
            }
            best
        }
    }

    /// Gauss-Jordan pivot on the matrix part only (the folded rhs is
    /// maintained by the caller).
    fn pivot_matrix(&mut self, row: usize, col: usize) {
        let stride = self.cols + 1;
        let p = self.a[row * stride + col];
        debug_assert!(p.abs() > 1e-12, "pivot on (near-)zero element");
        let inv = 1.0 / p;
        for c in 0..self.cols {
            self.a[row * stride + c] *= inv;
        }
        self.a[row * stride + col] = 1.0;

        for r in 0..self.rows {
            if r == row {
                continue;
            }
            let f = self.a[r * stride + col];
            if f != 0.0 {
                for c in 0..self.cols {
                    let v = self.a[row * stride + c];
                    self.a[r * stride + c] -= f * v;
                }
                self.a[r * stride + col] = 0.0;
            }
        }
        let f = self.obj[col];
        if f != 0.0 {
            for c in 0..self.cols {
                self.obj[c] -= f * self.a[row * stride + c];
            }
            self.obj[col] = 0.0;
        }
    }

    /// Swap a zero-valued basic (artificial) out for column `c` without
    /// changing any variable values.
    fn degenerate_swap(&mut self, row: usize, col: usize) {
        let entering_value = if self.at_upper[col] { self.ub[col] } else { 0.0 };
        // The leaving artificial sits at 0 and goes to its lower bound.
        let old = self.basis[row];
        self.at_upper[old] = false;
        self.pivot_matrix(row, col);
        self.at_upper[col] = false;
        self.basis[row] = col;
        self.set(row, self.cols, entering_value);
        // Other basic values are unchanged (t = 0 step) — but the entering
        // column may have had a nonzero value at its upper bound, which was
        // already folded into every row's rhs, and remains correct because
        // the variable's value did not change.
    }

    /// Dual value (shadow price) of every original constraint, in the
    /// problem's own optimization sense: the marginal change of the
    /// optimal objective per unit of constraint rhs.
    fn duals(&self, sense: Sense) -> Vec<f64> {
        let sense_factor = match sense {
            Sense::Minimize => 1.0,
            Sense::Maximize => -1.0,
        };
        self.row_meta
            .iter()
            .map(|&(col, sign)| sense_factor * sign * self.obj[col])
            .collect()
    }

    /// Read the structural-variable values out of the final tableau.
    fn extract(&self) -> Vec<f64> {
        let mut y = vec![0.0f64; self.n_struct];
        let basic = self.basic_mark();
        for j in 0..self.n_struct {
            if !basic[j] && self.at_upper[j] {
                y[j] = self.ub[j];
            }
        }
        for i in 0..self.rows {
            let b = self.basis[i];
            if b < self.n_struct {
                y[b] = self.xb(i).max(0.0);
            }
        }
        y
    }
}
