//! # bate-lp — linear and mixed-integer programming for BATE
//!
//! A self-contained LP/MILP solver used by every optimization model in the
//! BATE traffic-engineering framework (admission control, traffic scheduling,
//! failure recovery, and the baseline TE algorithms).
//!
//! The paper solves its models with Gurobi; the Rust ecosystem has no
//! comparable offline solver, so this crate implements:
//!
//! * a **sparse-aware two-phase primal simplex** method with candidate-list
//!   partial pricing, warm starts, and a Bland's-rule fallback for
//!   anti-cycling ([`simplex`]; the original dense kernel is preserved in
//!   [`dense_reference`] for golden tests and benchmarks), and
//! * a **branch-and-bound** MILP solver layered on top of it ([`milp`]),
//!   supporting binary and general integer variables, with deterministic
//!   batch-parallel node evaluation ([`par`]).
//!
//! Both are exact methods, so optimization results match what the paper's
//! solver would produce (up to numerical tolerance); only absolute solve
//! times differ.
//!
//! ## Example
//!
//! ```
//! use bate_lp::{Problem, Sense, Relation};
//!
//! // maximize 3x + 2y  s.t.  x + y <= 4,  x + 3y <= 6,  x,y >= 0
//! let mut p = Problem::new(Sense::Maximize);
//! let x = p.add_var("x");
//! let y = p.add_var("y");
//! p.set_objective(x, 3.0);
//! p.set_objective(y, 2.0);
//! p.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Le, 4.0);
//! p.add_constraint(&[(x, 1.0), (y, 3.0)], Relation::Le, 6.0);
//! let sol = p.solve().unwrap();
//! assert!((sol.objective - 12.0).abs() < 1e-6);
//! assert!((sol[x] - 4.0).abs() < 1e-6);
//! ```

pub mod dense_reference;
pub mod error;
pub mod exact;
pub mod export;
pub mod milp;
pub mod par;
pub mod problem;
pub mod simplex;
pub mod solution;
pub mod stats;
pub mod warm;

pub use error::SolveError;
pub use export::LpParseError;
pub use par::{par_map, par_map_with, thread_count};
pub use problem::{Problem, Relation, Sense, VarId, VarKind};
pub use milp::{solve_lazy, solve_traced_lazy, LazyRow};
pub use simplex::{register_phase_metrics, Basis, Workspace};
pub use solution::Solution;
pub use stats::{IncumbentPoint, MilpStats, SolveStats};
pub use warm::{quick_check, WarmState, WarmStats};

/// Default numerical tolerance used across the solver for feasibility and
/// optimality tests.
pub const EPS: f64 = 1e-9;

/// Tolerance used when deciding whether a relaxation value is integral.
pub const INT_EPS: f64 = 1e-6;
