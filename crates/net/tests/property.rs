//! Property-based validation of the scenario model and samplers.

use bate_net::{scenario, GroupId, LinkSet, Scenario, ScenarioSet, SrlgSet, Topology};
use proptest::prelude::*;

/// Build a random connected topology from a ring plus extra chords, with
/// bounded failure probabilities.
fn random_topology() -> impl Strategy<Value = Topology> {
    (3usize..8, prop::collection::vec((0usize..8, 0usize..8, 1e-6f64..0.05), 0..6)).prop_map(
        |(n, chords)| {
            let mut t = Topology::new("prop");
            let ids: Vec<_> = (0..n).map(|i| t.add_node(&format!("N{i}"))).collect();
            for i in 0..n {
                t.add_duplex_link(ids[i], ids[(i + 1) % n], 100.0, 0.001 * (i + 1) as f64);
            }
            for (a, b, p) in chords {
                let (a, b) = (a % n, b % n);
                if a != b && t.find_link(ids[a], ids[b]).is_none() {
                    t.add_duplex_link(ids[a], ids[b], 100.0, p);
                }
            }
            t
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Enumerated + residual probability is exactly 1, and deeper pruning
    /// covers monotonically more mass.
    #[test]
    fn scenario_mass_conservation(topo in random_topology(), y in 0usize..4) {
        let set = ScenarioSet::enumerate(&topo, y);
        let total: f64 = set.scenarios.iter().map(|s| s.probability).sum();
        prop_assert!((total + set.residual_probability - 1.0).abs() < 1e-9);
        if y > 0 {
            let shallower = ScenarioSet::enumerate(&topo, y - 1);
            prop_assert!(set.covered_probability() >= shallower.covered_probability() - 1e-12);
            prop_assert!(set.len() >= shallower.len());
        }
        // Every enumerated scenario respects the depth bound and has the
        // exact product probability.
        for s in &set.scenarios {
            prop_assert!(s.num_failures() <= y);
            let p = scenario::scenario_probability(&topo, &s.failed);
            prop_assert!((p - s.probability).abs() < 1e-12);
        }
    }

    /// Full enumeration sums to 1 with zero residual.
    #[test]
    fn full_enumeration_is_exhaustive(topo in random_topology()) {
        // Cap the group count so 2^n stays tiny.
        prop_assume!(topo.num_groups() <= 10);
        let set = ScenarioSet::enumerate(&topo, topo.num_groups());
        prop_assert_eq!(set.len(), 1usize << topo.num_groups());
        prop_assert!(set.residual_probability < 1e-9);
    }

    /// Fate sharing: a failed group takes down exactly its directed links.
    #[test]
    fn fate_sharing(topo in random_topology(), idx in 0usize..32) {
        let g = bate_net::GroupId(idx % topo.num_groups());
        let sc = Scenario::with_failures(&topo, &[g]);
        for (l, link) in topo.links() {
            prop_assert_eq!(sc.link_up(&topo, l), link.group != g);
        }
    }

    /// LinkSet behaves like a set of usize.
    #[test]
    fn linkset_model(
        len in 1usize..200,
        ops in prop::collection::vec((0usize..200, any::<bool>()), 0..64),
    ) {
        let mut set = LinkSet::new(len);
        let mut model = std::collections::BTreeSet::new();
        for (i, insert) in ops {
            let i = i % len;
            if insert {
                set.insert(i);
                model.insert(i);
            } else {
                set.remove(i);
                model.remove(&i);
            }
        }
        prop_assert_eq!(set.count(), model.len());
        let items: Vec<usize> = set.iter().collect();
        let expected: Vec<usize> = model.iter().copied().collect();
        prop_assert_eq!(items, expected);
    }

    /// Correlated enumeration conserves probability mass: the joint
    /// probabilities sum to ≤ 1 (with the residual as exact complement)
    /// and `covered_probability` is monotone in the event-depth bound.
    #[test]
    fn srlg_mass_conservation(topo in random_topology(), seed in any::<u64>(), y in 0usize..4) {
        let srlgs = SrlgSet::generate(&topo, seed);
        let set = srlgs.enumerate(&topo, y);
        let total: f64 = set.scenarios.iter().map(|s| s.probability).sum();
        prop_assert!(total <= 1.0 + 1e-9);
        prop_assert!((total + set.residual_probability - 1.0).abs() < 1e-9);
        if y > 0 {
            let shallower = srlgs.enumerate(&topo, y - 1);
            prop_assert!(set.covered_probability() >= shallower.covered_probability() - 1e-12);
            prop_assert!(set.len() >= shallower.len());
        }
        // Each state's merged probability is the exact joint probability,
        // whenever every event subset confined to the down-set fits within
        // the enumeration depth (then nothing reaching this state was
        // pruned).
        let events = srlgs.events(&topo);
        for s in set.scenarios.iter().take(64) {
            let inside = events.iter().filter(|e| e.cover.is_subset(&s.failed)).count();
            if inside <= y {
                let p = srlgs.state_probability(&topo, &s.failed);
                prop_assert!((p - s.probability).abs() < 1e-9,
                    "merged {} vs exact {p}", s.probability);
            }
        }
    }

    /// The SRLG generator is deterministic per seed and well-formed.
    #[test]
    fn srlg_generator_deterministic(topo in random_topology(), seed in any::<u64>()) {
        let a = SrlgSet::generate(&topo, seed);
        let b = SrlgSet::generate(&topo, seed);
        prop_assert_eq!(a.len(), b.len());
        for ((ia, sa), (ib, sb)) in a.iter().zip(b.iter()) {
            prop_assert_eq!(ia, ib);
            prop_assert_eq!(&sa.name, &sb.name);
            prop_assert_eq!(sa.failure_prob, sb.failure_prob);
            prop_assert_eq!(&sa.groups, &sb.groups);
            prop_assert!(sa.groups.count() >= 2);
            prop_assert!((1e-4..=1e-2).contains(&sa.failure_prob));
        }
        // Enumeration of equal sets is identical (bitwise).
        let ea = a.enumerate(&topo, 2);
        let eb = b.enumerate(&topo, 2);
        prop_assert_eq!(ea.len(), eb.len());
        for (x, z) in ea.iter().zip(eb.iter()) {
            prop_assert_eq!(&x.failed, &z.failed);
            prop_assert_eq!(x.probability, z.probability);
        }
    }

    /// Link/group state consistency: in every enumerated correlated
    /// scenario, a directed link is down iff its fate group is covered by
    /// some *failed* event whose whole cover is down — i.e. every down-set
    /// is a union of event covers, and fate-sharing holds inside it.
    #[test]
    fn srlg_link_state_consistent_with_groups(
        topo in random_topology(),
        seed in any::<u64>(),
    ) {
        let srlgs = SrlgSet::generate(&topo, seed);
        let events = srlgs.events(&topo);
        let set = srlgs.enumerate(&topo, 2);
        for s in set.scenarios.iter().take(128) {
            // Union of the covers contained in the down-set reconstructs it
            // exactly: each failed group is explained by a failed event.
            let mut covered = LinkSet::new(topo.num_groups());
            for e in &events {
                if e.cover.is_subset(&s.failed) {
                    for g in e.cover.iter() {
                        covered.insert(g);
                    }
                }
            }
            prop_assert_eq!(&covered, &s.failed);
            // Directed-link view agrees with the group view.
            for (l, link) in topo.links() {
                prop_assert_eq!(
                    s.link_up(&topo, l),
                    !s.failed.contains(link.group.index())
                );
            }
        }
        // Firing one SRLG takes down exactly its covered groups.
        for (id, srlg) in srlgs.iter() {
            let fired = srlgs.down_groups(&topo, &[topo.num_groups() + id.index()]);
            prop_assert_eq!(&fired, &srlg.groups);
            for g in srlg.groups.iter() {
                prop_assert!(srlgs.covering(GroupId(g)).contains(&id));
            }
        }
    }

    /// The distribution samplers stay in range and are deterministic per
    /// seed.
    #[test]
    fn samplers_are_sane(seed in any::<u64>()) {
        use bate_net::distributions::*;
        use rand::{rngs::StdRng, SeedableRng};
        let mut a = StdRng::seed_from_u64(seed);
        let mut b = StdRng::seed_from_u64(seed);
        for _ in 0..50 {
            let wa = weibull(&mut a, 2.0, 1.5);
            let wb = weibull(&mut b, 2.0, 1.5);
            prop_assert!(wa >= 0.0 && wa.is_finite());
            prop_assert_eq!(wa, wb);
        }
        let ea = exponential(&mut a, 3.0);
        prop_assert!(ea >= 0.0);
        let pa = poisson(&mut a, 2.5);
        prop_assert!(pa < 1000);
    }
}
