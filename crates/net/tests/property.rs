//! Property-based validation of the scenario model and samplers.

use bate_net::{scenario, LinkSet, Scenario, ScenarioSet, Topology};
use proptest::prelude::*;

/// Build a random connected topology from a ring plus extra chords, with
/// bounded failure probabilities.
fn random_topology() -> impl Strategy<Value = Topology> {
    (3usize..8, prop::collection::vec((0usize..8, 0usize..8, 1e-6f64..0.05), 0..6)).prop_map(
        |(n, chords)| {
            let mut t = Topology::new("prop");
            let ids: Vec<_> = (0..n).map(|i| t.add_node(&format!("N{i}"))).collect();
            for i in 0..n {
                t.add_duplex_link(ids[i], ids[(i + 1) % n], 100.0, 0.001 * (i + 1) as f64);
            }
            for (a, b, p) in chords {
                let (a, b) = (a % n, b % n);
                if a != b && t.find_link(ids[a], ids[b]).is_none() {
                    t.add_duplex_link(ids[a], ids[b], 100.0, p);
                }
            }
            t
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Enumerated + residual probability is exactly 1, and deeper pruning
    /// covers monotonically more mass.
    #[test]
    fn scenario_mass_conservation(topo in random_topology(), y in 0usize..4) {
        let set = ScenarioSet::enumerate(&topo, y);
        let total: f64 = set.scenarios.iter().map(|s| s.probability).sum();
        prop_assert!((total + set.residual_probability - 1.0).abs() < 1e-9);
        if y > 0 {
            let shallower = ScenarioSet::enumerate(&topo, y - 1);
            prop_assert!(set.covered_probability() >= shallower.covered_probability() - 1e-12);
            prop_assert!(set.len() >= shallower.len());
        }
        // Every enumerated scenario respects the depth bound and has the
        // exact product probability.
        for s in &set.scenarios {
            prop_assert!(s.num_failures() <= y);
            let p = scenario::scenario_probability(&topo, &s.failed);
            prop_assert!((p - s.probability).abs() < 1e-12);
        }
    }

    /// Full enumeration sums to 1 with zero residual.
    #[test]
    fn full_enumeration_is_exhaustive(topo in random_topology()) {
        // Cap the group count so 2^n stays tiny.
        prop_assume!(topo.num_groups() <= 10);
        let set = ScenarioSet::enumerate(&topo, topo.num_groups());
        prop_assert_eq!(set.len(), 1usize << topo.num_groups());
        prop_assert!(set.residual_probability < 1e-9);
    }

    /// Fate sharing: a failed group takes down exactly its directed links.
    #[test]
    fn fate_sharing(topo in random_topology(), idx in 0usize..32) {
        let g = bate_net::GroupId(idx % topo.num_groups());
        let sc = Scenario::with_failures(&topo, &[g]);
        for (l, link) in topo.links() {
            prop_assert_eq!(sc.link_up(&topo, l), link.group != g);
        }
    }

    /// LinkSet behaves like a set of usize.
    #[test]
    fn linkset_model(
        len in 1usize..200,
        ops in prop::collection::vec((0usize..200, any::<bool>()), 0..64),
    ) {
        let mut set = LinkSet::new(len);
        let mut model = std::collections::BTreeSet::new();
        for (i, insert) in ops {
            let i = i % len;
            if insert {
                set.insert(i);
                model.insert(i);
            } else {
                set.remove(i);
                model.remove(&i);
            }
        }
        prop_assert_eq!(set.count(), model.len());
        let items: Vec<usize> = set.iter().collect();
        let expected: Vec<usize> = model.iter().copied().collect();
        prop_assert_eq!(items, expected);
    }

    /// The distribution samplers stay in range and are deterministic per
    /// seed.
    #[test]
    fn samplers_are_sane(seed in any::<u64>()) {
        use bate_net::distributions::*;
        use rand::{rngs::StdRng, SeedableRng};
        let mut a = StdRng::seed_from_u64(seed);
        let mut b = StdRng::seed_from_u64(seed);
        for _ in 0..50 {
            let wa = weibull(&mut a, 2.0, 1.5);
            let wb = weibull(&mut b, 2.0, 1.5);
            prop_assert!(wa >= 0.0 && wa.is_finite());
            prop_assert_eq!(wa, wb);
        }
        let ea = exponential(&mut a, 3.0);
        prop_assert!(ea >= 0.0);
        let pa = poisson(&mut a, 2.5);
        prop_assert!(pa < 1000);
    }
}
