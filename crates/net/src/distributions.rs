//! Random samplers used across the reproduction.
//!
//! Implemented from first principles (inverse-CDF and classic algorithms) so
//! the workspace needs only the `rand` core crate and not `rand_distr`:
//!
//! * **Weibull** — per-link failure probabilities; the paper fits its
//!   measured failure distribution (Fig. 1(b)) with a Weibull and simulates
//!   links from Weibull(k = 8, λ = 0.6) (§5.2).
//! * **Exponential** — demand life durations.
//! * **Poisson** — number of demand arrivals per minute.
//! * **Normal / log-normal** — gravity-model node weights for synthetic
//!   traffic matrices.

use rand::Rng;

/// Weibull(shape k, scale λ) sample via inverse CDF:
/// `λ · (-ln(1-u))^(1/k)`.
pub fn weibull<R: Rng + ?Sized>(rng: &mut R, shape: f64, scale: f64) -> f64 {
    assert!(shape > 0.0 && scale > 0.0);
    let u: f64 = rng.gen_range(0.0..1.0);
    scale * (-(1.0 - u).ln()).powf(1.0 / shape)
}

/// Exponential sample with the given mean (inverse CDF).
pub fn exponential<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> f64 {
    assert!(mean > 0.0);
    let u: f64 = rng.gen_range(0.0f64..1.0);
    -mean * (1.0 - u).ln()
}

/// Poisson sample with rate `lambda` (Knuth's algorithm; fine for the
/// λ ≤ ~30 used by the workload generator).
pub fn poisson<R: Rng + ?Sized>(rng: &mut R, lambda: f64) -> u64 {
    assert!(lambda >= 0.0);
    if lambda == 0.0 {
        return 0;
    }
    let l = (-lambda).exp();
    let mut k = 0u64;
    let mut p = 1.0f64;
    loop {
        p *= rng.gen_range(0.0f64..1.0);
        if p <= l {
            return k;
        }
        k += 1;
        if k > 10_000 {
            // Numerical safety valve for extreme λ; callers never get here
            // with the workloads we generate.
            return k;
        }
    }
}

/// Standard normal sample via Box-Muller.
pub fn normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0f64..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Log-normal sample: `exp(mu + sigma · N(0,1))`.
pub fn lognormal<R: Rng + ?Sized>(rng: &mut R, mu: f64, sigma: f64) -> f64 {
    (mu + sigma * normal(rng)).exp()
}

/// The paper's link-failure-probability model: Weibull(k = 8, λ = 0.6)
/// samples scaled into absolute probabilities.
///
/// Fig. 1(b) plots empirical per-link failure probabilities between 1e-4 %
/// and 1e-2 % — i.e. 1e-6 to 1e-4 absolute — so the Weibull sample (which
/// concentrates around 0.6) is interpreted as a *percent of a percent*:
/// `prob = sample / 1000` percent, clamped to a sane range. The clamp also
/// keeps synthetic topologies usable when callers pick heavier tails.
#[derive(Debug, Clone, Copy)]
pub struct FailureModel {
    pub shape: f64,
    pub scale: f64,
    /// Multiplier mapping a raw Weibull sample to an absolute probability.
    pub prob_scale: f64,
}

impl FailureModel {
    /// The §5.2 parameters: Weibull(8, 0.6) scaled by 1e-3.
    pub fn paper() -> Self {
        FailureModel {
            shape: 8.0,
            scale: 0.6,
            prob_scale: 1e-3,
        }
    }

    /// A heavy-tailed variant (shape < 1) matching the *qualitative* claim
    /// of §2.1 that a small fraction of links contributes most failures and
    /// failure rates vary by over two orders of magnitude.
    pub fn heavy_tailed() -> Self {
        FailureModel {
            shape: 0.8,
            scale: 0.6,
            prob_scale: 1e-3,
        }
    }

    /// Sample one absolute failure probability.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let raw = weibull(rng, self.shape, self.scale);
        (raw * self.prob_scale).clamp(1e-7, 0.05)
    }

    /// Sample `n` failure probabilities.
    pub fn sample_n<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> Vec<f64> {
        (0..n).map(|_| self.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn weibull_mean_matches_theory() {
        // Mean of Weibull(k, λ) is λ Γ(1 + 1/k); for k=1 it's exponential
        // with mean λ.
        let mut r = rng();
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| weibull(&mut r, 1.0, 2.0)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.03, "{mean}");
    }

    #[test]
    fn weibull_high_shape_concentrates() {
        let mut r = rng();
        let xs: Vec<f64> = (0..10_000).map(|_| weibull(&mut r, 8.0, 0.6)).collect();
        let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = xs.iter().cloned().fold(0.0f64, f64::max);
        assert!(min > 0.1 && max < 1.0, "range [{min}, {max}]");
    }

    #[test]
    fn exponential_mean() {
        let mut r = rng();
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| exponential(&mut r, 5.0)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.05, "{mean}");
    }

    #[test]
    fn poisson_mean_and_variance() {
        let mut r = rng();
        let n = 100_000;
        let xs: Vec<f64> = (0..n).map(|_| poisson(&mut r, 4.0) as f64).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 4.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.15, "var {var}");
    }

    #[test]
    fn poisson_zero_rate() {
        let mut r = rng();
        assert_eq!(poisson(&mut r, 0.0), 0);
    }

    #[test]
    fn normal_moments() {
        let mut r = rng();
        let n = 200_000;
        let xs: Vec<f64> = (0..n).map(|_| normal(&mut r)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn failure_model_samples_in_clamped_range() {
        let mut r = rng();
        for model in [FailureModel::paper(), FailureModel::heavy_tailed()] {
            for p in model.sample_n(&mut r, 1000) {
                assert!((1e-7..=0.05).contains(&p), "{p}");
            }
        }
    }

    #[test]
    fn heavy_tail_spans_orders_of_magnitude() {
        let mut r = rng();
        let ps = FailureModel::heavy_tailed().sample_n(&mut r, 5000);
        let min = ps.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = ps.iter().cloned().fold(0.0f64, f64::max);
        assert!(max / min > 100.0, "ratio {}", max / min);
    }

    #[test]
    fn deterministic_under_seed() {
        let a = FailureModel::paper().sample_n(&mut StdRng::seed_from_u64(7), 10);
        let b = FailureModel::paper().sample_n(&mut StdRng::seed_from_u64(7), 10);
        assert_eq!(a, b);
    }
}
