//! Network failure scenarios and their pruned enumeration (§3.1, §3.3).
//!
//! A scenario `z` assigns up/down to every fate group; its probability is
//! `p_z = Π_i (z_i (1-x_i) + (1-z_i) x_i)` under the paper's independence
//! assumption. Enumerating all `2^|E|` scenarios is intractable, so BATE
//! prunes: scenarios with at most `y` concurrent failures are enumerated
//! exactly (layers 0..=y of the lattice in Fig. 3) and every deeper scenario
//! is aggregated into one **residual** scenario whose probability is the
//! complement. The residual is treated as *never qualified*, which makes the
//! pruned availability estimate a lower bound on the true availability — the
//! scheduler can only over-provision, never silently under-provision.

use crate::graph::{GroupId, LinkId, Topology};
use crate::linkset::LinkSet;

/// One enumerated failure scenario.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Fate groups that are down in this scenario.
    pub failed: LinkSet,
    /// `p_z`.
    pub probability: f64,
}

impl Scenario {
    /// The no-failure scenario for `topo`.
    pub fn all_up(topo: &Topology) -> Scenario {
        Scenario {
            failed: LinkSet::new(topo.num_groups()),
            probability: topo.all_up_probability(),
        }
    }

    /// Scenario with exactly the given fate groups failed, probability
    /// computed from the topology's per-group failure probabilities
    /// **under independence**. When links share risk (fiber conduits), use
    /// [`crate::srlg::SrlgSet::scenario`] instead — the independence
    /// product can understate joint failures by orders of magnitude.
    pub fn with_failures(topo: &Topology, groups: &[GroupId]) -> Scenario {
        let mut failed = LinkSet::new(topo.num_groups());
        for g in groups {
            failed.insert(g.index());
        }
        let probability = scenario_probability(topo, &failed);
        Scenario {
            failed,
            probability,
        }
    }

    /// Is the fate group up in this scenario?
    pub fn group_up(&self, g: GroupId) -> bool {
        !self.failed.contains(g.index())
    }

    /// Is the directed link up in this scenario?
    pub fn link_up(&self, topo: &Topology, l: LinkId) -> bool {
        self.group_up(topo.link(l).group)
    }

    /// Number of concurrent failures.
    pub fn num_failures(&self) -> usize {
        self.failed.count()
    }
}

/// Exact probability of a scenario given which fate groups failed,
/// **assuming fate groups fail independently** (the paper's §3.1 model).
///
/// This is only correct when no shared-risk structure exists. With SRLGs
/// the per-group probabilities are *marginals* of a correlated joint
/// distribution and their product is wrong — see
/// [`crate::srlg::SrlgSet::state_probability`] for the exact correlated
/// form, and the `independent_marginals_overstate_two_path_availability`
/// test below for how far off the product gets on a 2-link SRLG.
pub fn scenario_probability(topo: &Topology, failed: &LinkSet) -> f64 {
    topo.groups()
        .map(|(g, def)| {
            if failed.contains(g.index()) {
                def.failure_prob
            } else {
                1.0 - def.failure_prob
            }
        })
        .product()
}

/// The pruned scenario set of §3.3.
#[derive(Debug, Clone)]
pub struct ScenarioSet {
    /// Enumerated scenarios in DFS emission order ({}, {0}, {0,1}, …);
    /// index 0 is always the all-up scenario.
    pub scenarios: Vec<Scenario>,
    /// Total probability of all pruned (deeper) scenarios, treated as
    /// unqualified.
    pub residual_probability: f64,
    /// The pruning depth `y` used.
    pub max_failures: usize,
}

impl ScenarioSet {
    /// Enumerate all scenarios with at most `max_failures` concurrent
    /// fate-group failures.
    ///
    /// # Panics
    ///
    /// Panics if the enumeration would exceed 20 million scenarios — that is
    /// beyond anything the scheduler can use and indicates a mis-chosen
    /// pruning depth.
    pub fn enumerate(topo: &Topology, max_failures: usize) -> ScenarioSet {
        let n = topo.num_groups();
        let expected = count_scenarios(n, max_failures);
        assert!(
            expected <= 20_000_000,
            "pruning depth {max_failures} on {n} fate groups yields {expected} scenarios"
        );

        let probs: Vec<f64> = topo.groups().map(|(_, g)| g.failure_prob).collect();
        let all_up_p: f64 = probs.iter().map(|p| 1.0 - p).product();

        let mut scenarios = Vec::with_capacity(expected);
        scenarios.push(Scenario {
            failed: LinkSet::new(n),
            probability: all_up_p,
        });

        // Enumerate combinations layer by layer. Each failed group i swaps a
        // factor (1-x_i) for x_i, i.e. multiplies by x_i / (1-x_i).
        let ratio: Vec<f64> = probs.iter().map(|&p| p / (1.0 - p)).collect();
        let mut failed = LinkSet::new(n);
        enumerate_combos(
            n,
            max_failures,
            0,
            all_up_p,
            &ratio,
            &mut failed,
            &mut scenarios,
        );

        let enumerated: f64 = scenarios.iter().map(|s| s.probability).sum();
        let residual_probability = (1.0 - enumerated).max(0.0);
        ScenarioSet {
            scenarios,
            residual_probability,
            max_failures,
        }
    }

    /// Total probability mass of the enumerated scenarios.
    pub fn covered_probability(&self) -> f64 {
        1.0 - self.residual_probability
    }

    /// Number of enumerated scenarios.
    pub fn len(&self) -> usize {
        self.scenarios.len()
    }

    pub fn is_empty(&self) -> bool {
        self.scenarios.is_empty()
    }

    /// Iterate `(scenario, probability)`.
    pub fn iter(&self) -> impl Iterator<Item = &Scenario> {
        self.scenarios.iter()
    }

    /// Indices of the `k` most probable single-failure scenarios, most
    /// probable first (ties broken by enumeration index so the selection
    /// is deterministic). Used to seed the row-generation master LP with
    /// the failure states most likely to bind.
    pub fn most_probable_singles(&self, k: usize) -> Vec<usize> {
        let mut singles: Vec<usize> = (0..self.scenarios.len())
            .filter(|&i| self.scenarios[i].num_failures() == 1)
            .collect();
        singles.sort_by(|&a, &b| {
            self.scenarios[b]
                .probability
                .partial_cmp(&self.scenarios[a].probability)
                .unwrap()
                .then(a.cmp(&b))
        });
        singles.truncate(k);
        singles
    }
}

/// Recursive layer-by-layer combination walk. `failed` is the parent
/// scenario's group set, maintained incrementally: each child inserts one
/// group, clones the set for the emitted scenario (a flat word copy), and
/// removes the group on backtrack — O(words) per scenario instead of
/// re-inserting the whole combo at every node.
fn enumerate_combos(
    n: usize,
    depth_left: usize,
    start: usize,
    prob: f64,
    ratio: &[f64],
    failed: &mut LinkSet,
    out: &mut Vec<Scenario>,
) {
    if depth_left == 0 {
        return;
    }
    for i in start..n {
        failed.insert(i);
        let p = prob * ratio[i];
        out.push(Scenario {
            failed: failed.clone(),
            probability: p,
        });
        enumerate_combos(n, depth_left - 1, i + 1, p, ratio, failed, out);
        failed.remove(i);
    }
}

/// Number of scenarios with at most `y` of `n` failures: `Σ_{k<=y} C(n, k)`.
pub fn count_scenarios(n: usize, y: usize) -> usize {
    let mut total = 0usize;
    let mut c = 1usize; // C(n, 0)
    for k in 0..=y.min(n) {
        total = total.saturating_add(c);
        // C(n, k+1) = C(n, k) * (n - k) / (k + 1)
        c = c.saturating_mul(n - k) / (k + 1);
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topologies;

    #[test]
    fn paper_example_probability() {
        // §3.1: availabilities 96%, 99.9999%, 99.9%, 99.9999% and scenario
        // z = {1,1,0,1} (e3 down) has p ≈ 0.000959998.
        let mut t = Topology::new("paper");
        let a = t.add_node("DC1");
        let b = t.add_node("DC2");
        let c = t.add_node("DC3");
        let d = t.add_node("DC4");
        t.add_link(a, b, 10.0, 0.04);
        let _e2 = t.add_link(b, d, 10.0, 0.000001);
        let e3 = t.add_link(a, c, 10.0, 0.001);
        t.add_link(c, d, 10.0, 0.000001);
        let s = Scenario::with_failures(&t, &[t.link(e3).group]);
        assert!(
            (s.probability - 0.000959998).abs() < 1e-8,
            "{}",
            s.probability
        );
    }

    #[test]
    fn count_scenarios_formula() {
        assert_eq!(count_scenarios(4, 0), 1);
        assert_eq!(count_scenarios(4, 1), 5);
        assert_eq!(count_scenarios(4, 2), 11);
        assert_eq!(count_scenarios(4, 4), 16);
        assert_eq!(count_scenarios(38, 2), 1 + 38 + 703);
    }

    #[test]
    fn enumeration_matches_count_and_orders_all_up_first() {
        let t = topologies::toy4();
        for y in 0..=4 {
            let set = ScenarioSet::enumerate(&t, y);
            assert_eq!(set.len(), count_scenarios(t.num_groups(), y));
            assert!(set.scenarios[0].failed.is_empty());
        }
    }

    #[test]
    fn full_enumeration_probabilities_sum_to_one() {
        let t = topologies::toy4();
        let set = ScenarioSet::enumerate(&t, t.num_groups());
        let total: f64 = set.scenarios.iter().map(|s| s.probability).sum();
        assert!((total - 1.0).abs() < 1e-12, "{total}");
        assert!(set.residual_probability < 1e-12);
    }

    #[test]
    fn pruning_residual_is_complement() {
        let t = topologies::testbed6();
        let set = ScenarioSet::enumerate(&t, 2);
        let total: f64 = set.scenarios.iter().map(|s| s.probability).sum();
        assert!((total + set.residual_probability - 1.0).abs() < 1e-12);
        assert!(set.residual_probability > 0.0);
        // Deeper pruning covers more probability.
        let set3 = ScenarioSet::enumerate(&t, 3);
        assert!(set3.covered_probability() >= set.covered_probability());
    }

    #[test]
    fn scenario_respects_fate_groups() {
        let mut t = Topology::new("t");
        let a = t.add_node("A");
        let b = t.add_node("B");
        let (f, r) = t.add_duplex_link(a, b, 1.0, 0.1);
        let s = Scenario::with_failures(&t, &[t.link(f).group]);
        assert!(!s.link_up(&t, f));
        assert!(!s.link_up(&t, r)); // shared fate: reverse is down too
        assert_eq!(s.num_failures(), 1);
    }

    #[test]
    fn most_probable_singles_orders_by_probability() {
        // toy4 failure probs: e1 4%, e2 0.0001%, e3 0.1%, e4 0.0001%.
        let t = topologies::toy4();
        let set = ScenarioSet::enumerate(&t, 2);
        let picks = set.most_probable_singles(2);
        assert_eq!(picks.len(), 2);
        let groups: Vec<usize> = picks
            .iter()
            .map(|&i| {
                assert_eq!(set.scenarios[i].num_failures(), 1);
                set.scenarios[i].failed.iter().next().unwrap()
            })
            .collect();
        assert_eq!(groups, vec![0, 2], "expected e1 (4%) then e3 (0.1%)");
        // Asking for more singles than exist returns them all.
        assert_eq!(set.most_probable_singles(100).len(), t.num_groups());
        // Probabilities are non-increasing along the selection.
        let all = set.most_probable_singles(100);
        for w in all.windows(2) {
            assert!(set.scenarios[w[0]].probability >= set.scenarios[w[1]].probability);
        }
    }

    /// Negative test for the independence bake-in: on toy4 with e2 and e4
    /// riding one 1% conduit, the independence product over the *marginal*
    /// probabilities says "some path DC2→DC4-or-DC3→DC4 survives" with
    /// 99.99%+ availability, while the correlated model says at most ~99%.
    /// A BA guarantee of 99.9% priced from independent probabilities
    /// accepts; the correlated model correctly rejects.
    #[test]
    fn independent_marginals_overstate_two_path_availability() {
        use crate::srlg::SrlgSet;
        let t = topologies::toy4();
        let mut srlgs = SrlgSet::new(&t);
        srlgs.add("conduit", 0.01, &[GroupId(1), GroupId(3)]);
        let beta = 0.999;

        // Availability of "e2 up or e4 up" = 1 - P(both down), exact under
        // each model (full enumeration, no pruning residual).
        let avail = |set: &ScenarioSet| -> f64 {
            set.iter()
                .filter(|s| !(s.failed.contains(1) && s.failed.contains(3)))
                .map(|s| s.probability)
                .sum()
        };

        let marginal = srlgs.marginal_topology(&t);
        let indep = ScenarioSet::enumerate(&marginal, marginal.num_groups());
        let corr = srlgs.enumerate(&t, t.num_groups() + srlgs.len());

        let a_indep = avail(&indep);
        let a_corr = avail(&corr);
        assert!(a_indep >= beta, "independence accepts: {a_indep}");
        assert!(a_corr < beta, "correlated rejects: {a_corr}");
        // The gap is the conduit probability, not rounding noise.
        assert!(a_indep - a_corr > 0.009, "gap {}", a_indep - a_corr);
    }

    #[test]
    fn max_failures_beyond_groups_is_full_enumeration() {
        let t = topologies::toy4();
        let set = ScenarioSet::enumerate(&t, 100);
        assert_eq!(set.len(), 16);
    }
}
