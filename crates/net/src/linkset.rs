//! A compact bit-set over fate groups (or links), used to describe which
//! parts of the network are down in a failure scenario.

/// Fixed-capacity bit set. The capacity is chosen at construction from the
/// topology size; all set operations are O(words).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct LinkSet {
    bits: Vec<u64>,
    len: usize,
}

impl LinkSet {
    /// Empty set able to hold `len` elements (indices `0..len`).
    pub fn new(len: usize) -> Self {
        LinkSet {
            bits: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Build a set from explicit indices.
    pub fn from_indices(len: usize, indices: &[usize]) -> Self {
        let mut s = LinkSet::new(len);
        for &i in indices {
            s.insert(i);
        }
        s
    }

    /// Capacity (number of addressable elements).
    pub fn capacity(&self) -> usize {
        self.len
    }

    pub fn insert(&mut self, i: usize) {
        assert!(i < self.len, "index {i} out of range {}", self.len);
        self.bits[i / 64] |= 1 << (i % 64);
    }

    pub fn remove(&mut self, i: usize) {
        assert!(i < self.len, "index {i} out of range {}", self.len);
        self.bits[i / 64] &= !(1 << (i % 64));
    }

    pub fn contains(&self, i: usize) -> bool {
        i < self.len && self.bits[i / 64] & (1 << (i % 64)) != 0
    }

    /// Number of elements in the set.
    pub fn count(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.bits.iter().all(|&w| w == 0)
    }

    /// Iterate set elements in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.bits.iter().enumerate().flat_map(|(wi, &w)| {
            let mut word = w;
            std::iter::from_fn(move || {
                if word == 0 {
                    None
                } else {
                    let bit = word.trailing_zeros() as usize;
                    word &= word - 1;
                    Some(wi * 64 + bit)
                }
            })
        })
    }

    /// True if `self` and `other` share any element.
    pub fn intersects(&self, other: &LinkSet) -> bool {
        self.bits.iter().zip(&other.bits).any(|(a, b)| a & b != 0)
    }

    /// True if every element of `self` is in `other`.
    pub fn is_subset(&self, other: &LinkSet) -> bool {
        self.bits.iter().zip(&other.bits).all(|(a, b)| a & !b == 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains() {
        let mut s = LinkSet::new(130);
        s.insert(0);
        s.insert(64);
        s.insert(129);
        assert!(s.contains(0) && s.contains(64) && s.contains(129));
        assert_eq!(s.count(), 3);
        s.remove(64);
        assert!(!s.contains(64));
        assert_eq!(s.count(), 2);
    }

    #[test]
    fn iter_is_sorted_and_complete() {
        let s = LinkSet::from_indices(100, &[7, 3, 99, 63, 64]);
        let v: Vec<usize> = s.iter().collect();
        assert_eq!(v, vec![3, 7, 63, 64, 99]);
    }

    #[test]
    fn intersects_and_subset() {
        let a = LinkSet::from_indices(10, &[1, 2]);
        let b = LinkSet::from_indices(10, &[2, 3]);
        let c = LinkSet::from_indices(10, &[1, 2, 5]);
        assert!(a.intersects(&b));
        assert!(!a.intersects(&LinkSet::from_indices(10, &[4])));
        assert!(a.is_subset(&c));
        assert!(!c.is_subset(&a));
    }

    #[test]
    fn empty_set() {
        let s = LinkSet::new(0);
        assert!(s.is_empty());
        assert_eq!(s.iter().count(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_insert_panics() {
        let mut s = LinkSet::new(5);
        s.insert(5);
    }
}
