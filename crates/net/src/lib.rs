//! # bate-net — inter-DC WAN model for BATE
//!
//! The network substrate of the BATE reproduction:
//!
//! * [`graph`] — the WAN as a directed graph of data centers and capacitated
//!   links. Physical (bidirectional) links are modeled as *fate groups*: two
//!   directed links sharing one failure state, matching how a fiber cut takes
//!   out both directions.
//! * [`scenario`] — network failure scenarios `z` and the pruned enumeration
//!   of §3.3: all scenarios with at most `y` concurrent fate-group failures
//!   are enumerated exactly, everything deeper is folded into a single
//!   *residual* scenario that is conservatively treated as never qualified.
//! * [`distributions`] — the random samplers the evaluation needs (Weibull
//!   link-failure probabilities as in Fig. 1(b), exponential demand
//!   durations, Poisson arrivals) implemented from first principles so the
//!   dependency set stays within the approved list.
//! * [`srlg`] — shared-risk link groups: named fiber-cut events spanning
//!   several fate groups, correlated scenario enumeration with exact joint
//!   probabilities, and a seeded conduit-heuristic generator for the
//!   synthetic topologies.
//! * [`topologies`] — the six topologies of the paper: the 4-DC motivating
//!   example (Fig. 2), the 6-DC testbed (Fig. 6), and B4 / IBM / ATT / FITI
//!   (Table 4) with synthetic capacities and Weibull-sampled failure
//!   probabilities (see DESIGN.md, substitutions).
//! * [`traffic`] — gravity-model traffic matrices standing in for the
//!   paper's collected matrices.
//! * [`fileio`] — a plain-text topology format so operators can load
//!   their own WANs.

pub mod distributions;
pub mod fileio;
pub mod graph;
pub mod linkset;
pub mod metrics;
pub mod scenario;
pub mod srlg;
pub mod topologies;
pub mod traffic;

pub use graph::{GroupId, Link, LinkId, NodeId, Topology};
pub use linkset::LinkSet;
pub use scenario::{Scenario, ScenarioSet};
pub use srlg::{Srlg, SrlgId, SrlgSet};
pub use traffic::TrafficMatrix;
