//! Plain-text topology files.
//!
//! The paper's simulation topologies come from files shared by the TEAVAR
//! authors; operators of this library will similarly want to load their
//! own WANs. The format is line-oriented:
//!
//! ```text
//! # comments and blank lines are ignored
//! topology MyWAN
//! node DC1
//! node DC2
//! node DC3
//! duplex DC1 DC2 1000 0.0001    # capacity Mbps, failure probability
//! link   DC2 DC3 2000 0.001     # one-directional link
//! ```

use crate::graph::Topology;
use std::fmt;

/// Errors from [`parse_topology`].
#[derive(Debug, Clone, PartialEq)]
pub enum ParseError {
    /// `(line number, message)`.
    Line(usize, String),
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ParseError::Line(n, msg) = self;
        write!(f, "line {n}: {msg}")
    }
}

impl std::error::Error for ParseError {}

/// Parse a topology from its text form.
pub fn parse_topology(text: &str) -> Result<Topology, ParseError> {
    let mut topo = Topology::new("unnamed");
    let err = |n: usize, msg: String| Err(ParseError::Line(n, msg));

    for (idx, raw) in text.lines().enumerate() {
        let n = idx + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        let keyword = parts.next().unwrap();
        let rest: Vec<&str> = parts.collect();
        match keyword {
            "topology" => {
                let [name] = rest.as_slice() else {
                    return err(n, "topology takes exactly one name".into());
                };
                // Name must come before any structure.
                if topo.num_nodes() > 0 {
                    return err(n, "topology line must come first".into());
                }
                topo = Topology::new(name);
            }
            "node" => {
                let [name] = rest.as_slice() else {
                    return err(n, "node takes exactly one name".into());
                };
                if topo.find_node(name).is_some() {
                    return err(n, format!("duplicate node {name}"));
                }
                topo.add_node(name);
            }
            "duplex" | "link" => {
                let [a, b, cap, prob] = rest.as_slice() else {
                    return err(n, format!("{keyword} takes: src dst capacity failure_prob"));
                };
                let Some(na) = topo.find_node(a) else {
                    return err(n, format!("unknown node {a}"));
                };
                let Some(nb) = topo.find_node(b) else {
                    return err(n, format!("unknown node {b}"));
                };
                let capacity: f64 = cap
                    .parse()
                    .map_err(|_| ParseError::Line(n, format!("bad capacity {cap}")))?;
                let p: f64 = prob
                    .parse()
                    .map_err(|_| ParseError::Line(n, format!("bad probability {prob}")))?;
                if capacity <= 0.0 {
                    return err(n, "capacity must be positive".into());
                }
                if !(0.0..1.0).contains(&p) {
                    return err(n, "failure probability must be in [0, 1)".into());
                }
                if keyword == "duplex" {
                    topo.add_duplex_link(na, nb, capacity, p);
                } else {
                    topo.add_link(na, nb, capacity, p);
                }
            }
            other => return err(n, format!("unknown keyword {other}")),
        }
    }
    Ok(topo)
}

/// Serialize a topology to the text form. Duplex pairs (two directed links
/// sharing a fate group with mirrored endpoints) are written as one
/// `duplex` line.
pub fn format_topology(topo: &Topology) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "topology {}", topo.name());
    for node in topo.nodes() {
        let _ = writeln!(out, "node {}", topo.node_name(node));
    }
    for (gid, group) in topo.groups() {
        let links = &group.links;
        match links.as_slice() {
            [a, b]
                if topo.link(*a).src == topo.link(*b).dst
                    && topo.link(*a).dst == topo.link(*b).src
                    && topo.link(*a).capacity == topo.link(*b).capacity =>
            {
                let l = topo.link(*a);
                let _ = writeln!(
                    out,
                    "duplex {} {} {} {}",
                    topo.node_name(l.src),
                    topo.node_name(l.dst),
                    l.capacity,
                    group.failure_prob
                );
            }
            _ => {
                for &lid in links {
                    let l = topo.link(lid);
                    let _ = writeln!(
                        out,
                        "link {} {} {} {}",
                        topo.node_name(l.src),
                        topo.node_name(l.dst),
                        l.capacity,
                        group.failure_prob
                    );
                }
            }
        }
        let _ = gid;
    }
    out
}

/// Load a topology from a file path.
pub fn load_topology(path: &std::path::Path) -> Result<Topology, Box<dyn std::error::Error>> {
    let text = std::fs::read_to_string(path)?;
    Ok(parse_topology(&text)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topologies;

    #[test]
    fn parse_basic() {
        let text = r"
            # a tiny WAN
            topology Tiny
            node A
            node B
            node C
            duplex A B 1000 0.001
            link B C 500 0.0002  # one way only
        ";
        let t = parse_topology(text).unwrap();
        assert_eq!(t.name(), "Tiny");
        assert_eq!(t.num_nodes(), 3);
        assert_eq!(t.num_links(), 3);
        assert_eq!(t.num_groups(), 2);
    }

    #[test]
    fn roundtrip_every_builtin_topology() {
        for topo in [
            topologies::toy4(),
            topologies::testbed6(),
            topologies::b4(),
            topologies::ibm(),
            topologies::att(),
            topologies::fiti(),
        ] {
            let text = format_topology(&topo);
            let back = parse_topology(&text).unwrap();
            assert_eq!(back.name(), topo.name());
            assert_eq!(back.num_nodes(), topo.num_nodes());
            assert_eq!(back.num_links(), topo.num_links());
            assert_eq!(back.num_groups(), topo.num_groups());
            for ((_, a), (_, b)) in topo.links().zip(back.links()) {
                assert_eq!(a.src, b.src);
                assert_eq!(a.dst, b.dst);
                assert_eq!(a.capacity, b.capacity);
            }
            for ((_, a), (_, b)) in topo.groups().zip(back.groups()) {
                assert!((a.failure_prob - b.failure_prob).abs() < 1e-15);
            }
        }
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let cases = [
            ("node A\nnode A", 2, "duplicate"),
            ("duplex A B 10 0.1", 1, "unknown node"),
            ("node A\nnode B\nduplex A B -5 0.1", 3, "capacity"),
            ("node A\nnode B\nduplex A B 10 1.5", 3, "probability"),
            ("frobnicate", 1, "unknown keyword"),
            ("node A\ntopology Late", 2, "must come first"),
            ("node A\nnode B\nduplex A B 10", 3, "takes"),
        ];
        for (text, line, needle) in cases {
            match parse_topology(text) {
                Err(ParseError::Line(n, msg)) => {
                    assert_eq!(n, line, "{text}");
                    assert!(msg.contains(needle), "{msg} should mention {needle}");
                }
                Ok(_) => panic!("{text} should fail"),
            }
        }
    }

    #[test]
    fn load_from_disk() {
        let dir = std::env::temp_dir().join("bate-net-fileio-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.topo");
        std::fs::write(&path, format_topology(&topologies::toy4())).unwrap();
        let t = load_topology(&path).unwrap();
        assert_eq!(t.num_nodes(), 4);
        std::fs::remove_file(&path).ok();
    }
}
