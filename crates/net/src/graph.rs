//! The inter-DC WAN as a directed graph `G(V, E)` (§3.1).
//!
//! Nodes are data centers; links are directed and capacitated. Failures are
//! modeled per *fate group*: a physical bidirectional link contributes two
//! directed links that fail together. The paper's scenario vector `z` then
//! ranges over fate groups rather than directed links, which halves the
//! scenario space and captures shared-fiber fate.

use std::fmt;

/// Identifier of a data-center node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

/// Identifier of a directed link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LinkId(pub usize);

/// Identifier of a failure fate group (one per physical link).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GroupId(pub usize);

impl NodeId {
    pub fn index(self) -> usize {
        self.0
    }
}

impl LinkId {
    pub fn index(self) -> usize {
        self.0
    }
}

impl GroupId {
    pub fn index(self) -> usize {
        self.0
    }
}

/// A directed, capacitated link between two data centers.
#[derive(Debug, Clone)]
pub struct Link {
    pub src: NodeId,
    pub dst: NodeId,
    /// Capacity in bandwidth units (the reproduction uses Mbps throughout).
    pub capacity: f64,
    /// Failure fate group this link belongs to.
    pub group: GroupId,
}

/// A failure fate group: the set of directed links brought down together by
/// one physical failure, with the estimated failure probability `x_i`.
#[derive(Debug, Clone)]
pub struct FateGroup {
    /// Probability that this group is down at any given moment (`x_i`).
    pub failure_prob: f64,
    /// Directed links in the group.
    pub links: Vec<LinkId>,
}

/// An inter-DC WAN topology.
#[derive(Debug, Clone)]
pub struct Topology {
    name: String,
    nodes: Vec<String>,
    links: Vec<Link>,
    groups: Vec<FateGroup>,
    /// Outgoing links per node.
    out_adj: Vec<Vec<LinkId>>,
}

impl Topology {
    /// Create an empty topology.
    pub fn new(name: &str) -> Self {
        Topology {
            name: name.to_string(),
            nodes: Vec::new(),
            links: Vec::new(),
            groups: Vec::new(),
            out_adj: Vec::new(),
        }
    }

    /// Human-readable topology name (e.g. "B4").
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Add a data center.
    pub fn add_node(&mut self, name: &str) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(name.to_string());
        self.out_adj.push(Vec::new());
        id
    }

    /// Add a single directed link with its own fate group.
    pub fn add_link(
        &mut self,
        src: NodeId,
        dst: NodeId,
        capacity: f64,
        failure_prob: f64,
    ) -> LinkId {
        assert!(src != dst, "self-loop links are not allowed");
        assert!(capacity > 0.0, "capacity must be positive");
        assert!(
            (0.0..1.0).contains(&failure_prob),
            "failure probability must be in [0, 1)"
        );
        let group = GroupId(self.groups.len());
        self.groups.push(FateGroup {
            failure_prob,
            links: Vec::new(),
        });
        self.add_link_in_group(src, dst, capacity, group)
    }

    /// Add a bidirectional physical link: two directed links sharing one
    /// fate group. Returns `(forward, reverse)` link ids.
    pub fn add_duplex_link(
        &mut self,
        a: NodeId,
        b: NodeId,
        capacity: f64,
        failure_prob: f64,
    ) -> (LinkId, LinkId) {
        let group = GroupId(self.groups.len());
        self.groups.push(FateGroup {
            failure_prob,
            links: Vec::new(),
        });
        let fwd = self.add_link_in_group(a, b, capacity, group);
        let rev = self.add_link_in_group(b, a, capacity, group);
        (fwd, rev)
    }

    fn add_link_in_group(
        &mut self,
        src: NodeId,
        dst: NodeId,
        capacity: f64,
        group: GroupId,
    ) -> LinkId {
        assert!(src != dst, "self-loop links are not allowed");
        assert!(capacity > 0.0, "capacity must be positive");
        let id = LinkId(self.links.len());
        self.links.push(Link {
            src,
            dst,
            capacity,
            group,
        });
        self.groups[group.0].links.push(id);
        self.out_adj[src.0].push(id);
        id
    }

    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    pub fn num_links(&self) -> usize {
        self.links.len()
    }

    /// Number of failure fate groups (physical links).
    pub fn num_groups(&self) -> usize {
        self.groups.len()
    }

    pub fn link(&self, id: LinkId) -> &Link {
        &self.links[id.0]
    }

    pub fn group(&self, id: GroupId) -> &FateGroup {
        &self.groups[id.0]
    }

    pub fn links(&self) -> impl Iterator<Item = (LinkId, &Link)> {
        self.links.iter().enumerate().map(|(i, l)| (LinkId(i), l))
    }

    pub fn groups(&self) -> impl Iterator<Item = (GroupId, &FateGroup)> {
        self.groups.iter().enumerate().map(|(i, g)| (GroupId(i), g))
    }

    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.nodes.len()).map(NodeId)
    }

    pub fn node_name(&self, id: NodeId) -> &str {
        &self.nodes[id.0]
    }

    /// Find a node by name.
    pub fn find_node(&self, name: &str) -> Option<NodeId> {
        self.nodes.iter().position(|n| n == name).map(NodeId)
    }

    /// Outgoing links of a node.
    pub fn out_links(&self, node: NodeId) -> &[LinkId] {
        &self.out_adj[node.0]
    }

    /// Find a directed link from `src` to `dst`, if any.
    pub fn find_link(&self, src: NodeId, dst: NodeId) -> Option<LinkId> {
        self.out_adj[src.0]
            .iter()
            .copied()
            .find(|&l| self.links[l.0].dst == dst)
    }

    /// Override a fate group's failure probability. Used to build the
    /// independent-*marginal* baseline of a correlated model (see
    /// [`crate::srlg::SrlgSet::marginal_topology`]).
    pub fn set_group_failure_prob(&mut self, g: GroupId, p: f64) {
        assert!(
            (0.0..1.0).contains(&p),
            "failure probability must be in [0, 1)"
        );
        self.groups[g.0].failure_prob = p;
    }

    /// Availability (`1 - x_i`) of a link's fate group.
    pub fn link_availability(&self, id: LinkId) -> f64 {
        1.0 - self.groups[self.links[id.0].group.0].failure_prob
    }

    /// Failure probability of a link's fate group.
    pub fn link_failure_prob(&self, id: LinkId) -> f64 {
        self.groups[self.links[id.0].group.0].failure_prob
    }

    /// Probability that *no* failure is present anywhere in the network
    /// (`Π_i (1 - x_i)` over fate groups).
    pub fn all_up_probability(&self) -> f64 {
        self.groups.iter().map(|g| 1.0 - g.failure_prob).product()
    }

    /// All ordered source-destination pairs `K` (§3.1).
    pub fn sd_pairs(&self) -> Vec<(NodeId, NodeId)> {
        let mut out = Vec::new();
        for s in 0..self.nodes.len() {
            for d in 0..self.nodes.len() {
                if s != d {
                    out.push((NodeId(s), NodeId(d)));
                }
            }
        }
        out
    }

    /// Check that every node can reach every other node (over up links).
    pub fn is_strongly_connected(&self) -> bool {
        let n = self.num_nodes();
        if n == 0 {
            return true;
        }
        // BFS from node 0 forward and backward.
        let reach_fwd = self.bfs_reach(NodeId(0), false);
        let reach_bwd = self.bfs_reach(NodeId(0), true);
        reach_fwd.iter().all(|&r| r) && reach_bwd.iter().all(|&r| r)
    }

    fn bfs_reach(&self, start: NodeId, reverse: bool) -> Vec<bool> {
        let mut seen = vec![false; self.num_nodes()];
        let mut queue = vec![start];
        seen[start.0] = true;
        while let Some(u) = queue.pop() {
            for (_, l) in self.links() {
                let (from, to) = if reverse {
                    (l.dst, l.src)
                } else {
                    (l.src, l.dst)
                };
                if from == u && !seen[to.0] {
                    seen[to.0] = true;
                    queue.push(to);
                }
            }
        }
        seen
    }
}

impl fmt::Display for Topology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} nodes, {} links, {} fate groups)",
            self.name,
            self.num_nodes(),
            self.num_links(),
            self.num_groups()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_node() -> (Topology, NodeId, NodeId) {
        let mut t = Topology::new("t");
        let a = t.add_node("A");
        let b = t.add_node("B");
        (t, a, b)
    }

    #[test]
    fn duplex_links_share_a_fate_group() {
        let (mut t, a, b) = two_node();
        let (f, r) = t.add_duplex_link(a, b, 10.0, 0.01);
        assert_eq!(t.num_links(), 2);
        assert_eq!(t.num_groups(), 1);
        assert_eq!(t.link(f).group, t.link(r).group);
        assert_eq!(t.link(f).src, a);
        assert_eq!(t.link(r).src, b);
    }

    #[test]
    fn directed_links_get_own_groups() {
        let (mut t, a, b) = two_node();
        t.add_link(a, b, 10.0, 0.01);
        t.add_link(b, a, 10.0, 0.02);
        assert_eq!(t.num_groups(), 2);
    }

    #[test]
    fn adjacency_and_lookup() {
        let (mut t, a, b) = two_node();
        let c = t.add_node("C");
        let l1 = t.add_link(a, b, 10.0, 0.0);
        let l2 = t.add_link(a, c, 5.0, 0.0);
        assert_eq!(t.out_links(a), &[l1, l2]);
        assert_eq!(t.find_link(a, c), Some(l2));
        assert_eq!(t.find_link(b, c), None);
        assert_eq!(t.find_node("C"), Some(c));
        assert_eq!(t.find_node("Z"), None);
    }

    #[test]
    fn availability_and_all_up_probability() {
        let (mut t, a, b) = two_node();
        let (f, _) = t.add_duplex_link(a, b, 1.0, 0.04);
        assert!((t.link_availability(f) - 0.96).abs() < 1e-12);
        assert!((t.all_up_probability() - 0.96).abs() < 1e-12);
    }

    #[test]
    fn sd_pairs_are_all_ordered_pairs() {
        let (mut t, _, _) = two_node();
        t.add_node("C");
        assert_eq!(t.sd_pairs().len(), 6);
    }

    #[test]
    fn strong_connectivity() {
        let (mut t, a, b) = two_node();
        t.add_link(a, b, 1.0, 0.0);
        assert!(!t.is_strongly_connected());
        t.add_link(b, a, 1.0, 0.0);
        assert!(t.is_strongly_connected());
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn rejects_self_loops() {
        let (mut t, a, _) = two_node();
        t.add_link(a, a, 1.0, 0.0);
    }
}
