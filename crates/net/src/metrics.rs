//! Structural metrics of a WAN topology — the numbers operators quote when
//! sizing tunnels and pruning depths (diameter bounds KSP hop counts;
//! min-cut bounds protection degree; failure-probability spread justifies
//! probability-aware TE over FFC-style worst-case TE).

use crate::graph::{NodeId, Topology};

/// Summary statistics of a topology.
#[derive(Debug, Clone, PartialEq)]
pub struct TopologyMetrics {
    pub nodes: usize,
    pub links: usize,
    pub fate_groups: usize,
    /// Longest shortest-path hop count over all ordered pairs.
    pub diameter: usize,
    /// Smallest out-degree (directed links) over all nodes — an upper
    /// bound on the number of fate-disjoint paths from that node.
    pub min_degree: usize,
    /// max/min per-group failure probability (the "orders of magnitude"
    /// spread of §2.1).
    pub failure_spread: f64,
    /// Total directed link capacity.
    pub total_capacity: f64,
}

/// Hop distances from `src` to every node (usize::MAX when unreachable).
pub fn hop_distances(topo: &Topology, src: NodeId) -> Vec<usize> {
    let mut dist = vec![usize::MAX; topo.num_nodes()];
    let mut queue = std::collections::VecDeque::new();
    dist[src.index()] = 0;
    queue.push_back(src);
    while let Some(u) = queue.pop_front() {
        for &l in topo.out_links(u) {
            let v = topo.link(l).dst;
            if dist[v.index()] == usize::MAX {
                dist[v.index()] = dist[u.index()] + 1;
                queue.push_back(v);
            }
        }
    }
    dist
}

/// Compute the summary metrics.
pub fn analyze(topo: &Topology) -> TopologyMetrics {
    let mut diameter = 0usize;
    for src in topo.nodes() {
        for d in hop_distances(topo, src) {
            if d != usize::MAX {
                diameter = diameter.max(d);
            }
        }
    }
    let min_degree = topo
        .nodes()
        .map(|n| topo.out_links(n).len())
        .min()
        .unwrap_or(0);
    let probs: Vec<f64> = topo.groups().map(|(_, g)| g.failure_prob).collect();
    let pmin = probs.iter().cloned().fold(f64::INFINITY, f64::min);
    let pmax = probs.iter().cloned().fold(0.0f64, f64::max);
    let failure_spread = if pmin > 0.0 && pmin.is_finite() {
        pmax / pmin
    } else {
        f64::INFINITY
    };
    TopologyMetrics {
        nodes: topo.num_nodes(),
        links: topo.num_links(),
        fate_groups: topo.num_groups(),
        diameter,
        min_degree,
        failure_spread,
        total_capacity: topo.links().map(|(_, l)| l.capacity).sum(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topologies;

    #[test]
    fn toy4_metrics() {
        let m = analyze(&topologies::toy4());
        assert_eq!(m.nodes, 4);
        assert_eq!(m.links, 8);
        assert_eq!(m.fate_groups, 4);
        assert_eq!(m.diameter, 2);
        assert_eq!(m.min_degree, 2);
        // 4% vs 0.0001%: > 4 orders of magnitude.
        assert!(m.failure_spread > 1e4);
    }

    #[test]
    fn hop_distances_on_testbed() {
        let t = topologies::testbed6();
        let n = |s: &str| t.find_node(s).unwrap();
        let d = hop_distances(&t, n("DC1"));
        assert_eq!(d[n("DC1").index()], 0);
        assert_eq!(d[n("DC2").index()], 1);
        assert_eq!(d[n("DC5").index()], 2);
        assert_eq!(d[n("DC3").index()], 2);
    }

    #[test]
    fn heavy_tail_spread_on_simulation_topologies() {
        // §2.1: failure rates differ by more than two orders of magnitude;
        // the synthetic topologies must reproduce that spread.
        for t in topologies::simulation_topologies() {
            let m = analyze(&t);
            // With only 16-56 sampled links per topology the realized
            // spread varies; an order of magnitude is the robust floor
            // (the full trace of Fig. 1(b) spans two+).
            assert!(
                m.failure_spread > 10.0,
                "{}: spread {}",
                t.name(),
                m.failure_spread
            );
            assert!(m.diameter >= 2);
            assert!(m.min_degree >= 2);
        }
    }
}
