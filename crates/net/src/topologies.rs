//! The topologies used in the paper's evaluation.
//!
//! * [`toy4`] — the 4-DC motivating example of Fig. 2 with its exact
//!   capacities and failure probabilities.
//! * [`testbed6`] — the 6-DC / 8-link testbed of Fig. 6 (L1..L8 with the
//!   failure probabilities printed in the figure).
//! * [`b4`], [`ibm`], [`att`], [`fiti`] — the four simulation topologies of
//!   Table 4 with the paper's exact node/link counts. The paper obtained the
//!   real capacities and matrices from the TEAVAR authors (not public); we
//!   synthesize connected graphs with matching counts, capacities from a
//!   small discrete set, and failure probabilities sampled from the §5.2
//!   Weibull model under a fixed seed (see DESIGN.md, substitutions).

use crate::distributions::FailureModel;
use crate::graph::Topology;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Fig. 2 topology: 4 DCs, 4 unidirectional-use links (built duplex so both
/// directions exist, sharing fate).
///
/// Capacities 10 Gbps expressed in Mbps; failure probabilities 4%, 0.0001%,
/// 0.1%, 0.0001% as printed in the figure.
pub fn toy4() -> Topology {
    let mut t = Topology::new("toy4");
    let dc1 = t.add_node("DC1");
    let dc2 = t.add_node("DC2");
    let dc3 = t.add_node("DC3");
    let dc4 = t.add_node("DC4");
    t.add_duplex_link(dc1, dc2, 10_000.0, 0.04); // e1: DC1-DC2, 4%
    t.add_duplex_link(dc2, dc4, 10_000.0, 0.000001); // e2: DC2-DC4, 0.0001%
    t.add_duplex_link(dc1, dc3, 10_000.0, 0.001); // e3: DC1-DC3, 0.1%
    t.add_duplex_link(dc3, dc4, 10_000.0, 0.000001); // e4: DC3-DC4, 0.0001%
    t
}

/// Fig. 6 testbed: 6 DCs, 8 physical links at 1 Gbps (1000 Mbps), failure
/// probabilities as printed (L4 = DC4-DC5 is the 1% outlier the evaluation
/// keys on).
pub fn testbed6() -> Topology {
    let mut t = Topology::new("testbed6");
    let dc: Vec<_> = (1..=6).map(|i| t.add_node(&format!("DC{i}"))).collect();
    let cap = 1000.0;
    // (a, b, failure probability)
    let links = [
        (0, 1, 0.00001), // L1: DC1-DC2 0.001%
        (1, 2, 0.00002), // L2: DC2-DC3 0.002%
        (2, 3, 0.00001), // L3: DC3-DC4 0.001%
        (3, 4, 0.01),    // L4: DC4-DC5 1%
        (4, 5, 0.0002),  // L5: DC5-DC6 0.02%
        (0, 5, 0.0001),  // L6: DC1-DC6 0.01%
        (1, 4, 0.0002),  // L7: DC2-DC5 0.02%
        (0, 3, 0.0001),  // L8: DC1-DC4 0.01%
    ];
    for (a, b, p) in links {
        t.add_duplex_link(dc[a], dc[b], cap, p);
    }
    t
}

/// Table 4: B4, 12 nodes, 38 directed links (19 physical).
pub fn b4() -> Topology {
    synthetic("B4", 12, 19, 101)
}

/// Table 4: IBM, 18 nodes, 48 directed links (24 physical).
pub fn ibm() -> Topology {
    synthetic("IBM", 18, 24, 102)
}

/// Table 4: ATT, 25 nodes, 112 directed links (56 physical).
pub fn att() -> Topology {
    synthetic("ATT", 25, 56, 103)
}

/// Table 4: FITI, 14 nodes, 32 directed links (16 physical).
pub fn fiti() -> Topology {
    synthetic("FITI", 14, 16, 104)
}

/// All four simulation topologies of Table 4, in paper order.
pub fn simulation_topologies() -> Vec<Topology> {
    vec![b4(), ibm(), att(), fiti()]
}

/// Deterministic synthetic WAN: a ring (guaranteeing strong connectivity)
/// plus seeded random chords up to `physical_links` total, capacities from
/// {1000, 2000, 4000} Mbps, failure probabilities from the paper's Weibull
/// model.
fn synthetic(name: &str, nodes: usize, physical_links: usize, seed: u64) -> Topology {
    assert!(
        physical_links >= nodes,
        "need at least a ring: {physical_links} < {nodes}"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    // Heavy-tailed per-link failure probabilities: §2.1 reports a small
    // portion of links contributing most failures, with rates varying by
    // more than two orders of magnitude. (The Weibull(8, 0.6) of §5.2
    // concentrates within one decade; the heavy-tailed variant reproduces
    // the spread Fig. 1(b) actually shows.)
    let failure = FailureModel::heavy_tailed();
    let caps = [1000.0, 2000.0, 4000.0];

    let mut t = Topology::new(name);
    let ids: Vec<_> = (0..nodes)
        .map(|i| t.add_node(&format!("{name}-{i}")))
        .collect();

    let mut edges: Vec<(usize, usize)> = (0..nodes).map(|i| (i, (i + 1) % nodes)).collect();
    let mut used: std::collections::HashSet<(usize, usize)> =
        edges.iter().map(|&(a, b)| (a.min(b), a.max(b))).collect();
    while edges.len() < physical_links {
        let a = rng.gen_range(0..nodes);
        let b = rng.gen_range(0..nodes);
        if a == b {
            continue;
        }
        let key = (a.min(b), a.max(b));
        if used.insert(key) {
            edges.push((a, b));
        }
    }

    for (a, b) in edges {
        let cap = caps[rng.gen_range(0..caps.len())];
        let p = failure.sample(&mut rng);
        t.add_duplex_link(ids[a], ids[b], cap, p);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn toy4_matches_fig2() {
        let t = toy4();
        assert_eq!(t.num_nodes(), 4);
        assert_eq!(t.num_groups(), 4);
        let dc1 = t.find_node("DC1").unwrap();
        let dc2 = t.find_node("DC2").unwrap();
        let l = t.find_link(dc1, dc2).unwrap();
        assert!((t.link_failure_prob(l) - 0.04).abs() < 1e-12);
        // Path availabilities from §2.2.
        let dc4 = t.find_node("DC4").unwrap();
        let e1 = t.link_availability(t.find_link(dc1, dc2).unwrap());
        let e2 = t.link_availability(t.find_link(dc2, dc4).unwrap());
        assert!((e1 * e2 - 0.95999904).abs() < 1e-9);
        let dc3 = t.find_node("DC3").unwrap();
        let e3 = t.link_availability(t.find_link(dc1, dc3).unwrap());
        let e4 = t.link_availability(t.find_link(dc3, dc4).unwrap());
        assert!((e3 * e4 - 0.998999001).abs() < 1e-9);
    }

    #[test]
    fn testbed6_matches_fig6() {
        let t = testbed6();
        assert_eq!(t.num_nodes(), 6);
        assert_eq!(t.num_groups(), 8);
        assert!(t.is_strongly_connected());
        // L4 (DC4-DC5) is the 1% outlier.
        let dc4 = t.find_node("DC4").unwrap();
        let dc5 = t.find_node("DC5").unwrap();
        let l4 = t.find_link(dc4, dc5).unwrap();
        assert!((t.link_failure_prob(l4) - 0.01).abs() < 1e-12);
    }

    #[test]
    fn table4_counts() {
        for (topo, nodes, links) in [
            (b4(), 12, 38),
            (ibm(), 18, 48),
            (att(), 25, 112),
            (fiti(), 14, 32),
        ] {
            assert_eq!(topo.num_nodes(), nodes, "{}", topo.name());
            assert_eq!(topo.num_links(), links, "{}", topo.name());
            assert!(topo.is_strongly_connected(), "{}", topo.name());
        }
    }

    #[test]
    fn synthetic_topologies_are_deterministic() {
        let a = b4();
        let b = b4();
        for ((_, la), (_, lb)) in a.links().zip(b.links()) {
            assert_eq!(la.src, lb.src);
            assert_eq!(la.capacity, lb.capacity);
        }
        for ((_, ga), (_, gb)) in a.groups().zip(b.groups()) {
            assert_eq!(ga.failure_prob, gb.failure_prob);
        }
    }

    #[test]
    fn synthetic_failure_probs_within_model_range() {
        for topo in simulation_topologies() {
            for (_, g) in topo.groups() {
                assert!((1e-7..=0.05).contains(&g.failure_prob));
            }
        }
    }
}
