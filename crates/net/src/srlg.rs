//! Shared-risk link groups (SRLGs) and correlated failure scenarios.
//!
//! The paper's availability guarantee (§3.1) prices scenarios under
//! per-fate-group independence. Real inter-DC WANs also fail in *shared
//! risk link groups*: several physical links ride one conduit, line card,
//! or geographic corridor, and a single fiber cut takes all of them down
//! together. This module extends the fate-group idea one level up — from
//! "two directed links share a physical fiber" to "several physical links
//! share a conduit" — without giving up exact probabilities.
//!
//! ## Event model
//!
//! Failures are driven by independent Bernoulli *events*:
//!
//! * one **residual** event per fate group `i`, firing with the group's own
//!   probability `x_i` from the [`Topology`] (lightning on that one span,
//!   optics, per-link maintenance), and
//! * one event per SRLG `j`, firing with probability `q_j` and covering a
//!   set of fate groups `C_j` (the conduit cut).
//!
//! A fate group is down iff at least one event covering it fired. With no
//! SRLGs this reduces *exactly* to the paper's independence model, so every
//! downstream consumer ([`ScenarioSet`], the Eq. 4 availability rows, the
//! separation oracle) keeps its semantics. With SRLGs, distinct event
//! subsets can induce the same down-set; [`SrlgSet::enumerate`] merges them
//! so each emitted [`Scenario`] carries the exact joint probability of its
//! down-set (restricted to at most `max_events` fired events — the same
//! pruning-by-depth idea as §3.3, with the residual mass again treated as
//! never qualified, keeping the availability estimate a lower bound).

use crate::graph::{GroupId, NodeId, Topology};
use crate::linkset::LinkSet;
use crate::scenario::{count_scenarios, Scenario, ScenarioSet};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Identifier of a shared-risk link group.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SrlgId(pub usize);

impl SrlgId {
    pub fn index(self) -> usize {
        self.0
    }
}

/// A named fiber-cut group: fate groups that go down together when the
/// shared event (conduit cut, line-card loss) fires.
#[derive(Debug, Clone)]
pub struct Srlg {
    pub name: String,
    /// Probability `q_j` that the shared event is active at any moment.
    pub failure_prob: f64,
    /// Fate groups covered by the event (indices into the topology's
    /// groups).
    pub groups: LinkSet,
}

/// One independent Bernoulli failure event: its probability and the fate
/// groups it takes down. Events `0..num_groups` are the per-group residual
/// events; events `num_groups..` are the SRLGs, in insertion order.
#[derive(Debug, Clone)]
pub struct FailureEvent {
    pub prob: f64,
    pub cover: LinkSet,
}

/// A set of SRLGs layered over one topology's fate groups.
#[derive(Debug, Clone)]
pub struct SrlgSet {
    num_groups: usize,
    srlgs: Vec<Srlg>,
}

impl SrlgSet {
    /// Empty SRLG set for `topo` (pure independence until groups are added).
    pub fn new(topo: &Topology) -> SrlgSet {
        SrlgSet {
            num_groups: topo.num_groups(),
            srlgs: Vec::new(),
        }
    }

    /// Add a named SRLG over the given fate groups.
    pub fn add(&mut self, name: &str, failure_prob: f64, groups: &[GroupId]) -> SrlgId {
        assert!(
            (0.0..1.0).contains(&failure_prob),
            "SRLG failure probability must be in [0, 1)"
        );
        assert!(!groups.is_empty(), "SRLG must cover at least one fate group");
        let mut set = LinkSet::new(self.num_groups);
        for g in groups {
            set.insert(g.index());
        }
        let id = SrlgId(self.srlgs.len());
        self.srlgs.push(Srlg {
            name: name.to_string(),
            failure_prob,
            groups: set,
        });
        id
    }

    pub fn len(&self) -> usize {
        self.srlgs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.srlgs.is_empty()
    }

    /// Number of fate groups in the underlying topology.
    pub fn num_groups(&self) -> usize {
        self.num_groups
    }

    pub fn get(&self, id: SrlgId) -> &Srlg {
        &self.srlgs[id.0]
    }

    pub fn iter(&self) -> impl Iterator<Item = (SrlgId, &Srlg)> {
        self.srlgs.iter().enumerate().map(|(i, s)| (SrlgId(i), s))
    }

    /// SRLGs whose cover contains the fate group.
    pub fn covering(&self, g: GroupId) -> Vec<SrlgId> {
        (0..self.srlgs.len())
            .filter(|&j| self.srlgs[j].groups.contains(g.index()))
            .map(SrlgId)
            .collect()
    }

    /// The full independent-event list: residual per-group events first
    /// (probabilities from `topo`), then one event per SRLG.
    pub fn events(&self, topo: &Topology) -> Vec<FailureEvent> {
        assert_eq!(
            topo.num_groups(),
            self.num_groups,
            "SRLG set built for a different topology"
        );
        let mut out: Vec<FailureEvent> = topo
            .groups()
            .map(|(g, def)| FailureEvent {
                prob: def.failure_prob,
                cover: LinkSet::from_indices(self.num_groups, &[g.index()]),
            })
            .collect();
        out.extend(self.srlgs.iter().map(|s| FailureEvent {
            prob: s.failure_prob,
            cover: s.groups.clone(),
        }));
        out
    }

    /// Probability that *no* event fires anywhere (`Π_e (1 - q_e)`). Equals
    /// [`Topology::all_up_probability`] when the set is empty.
    pub fn all_up_probability(&self, topo: &Topology) -> f64 {
        self.events(topo).iter().map(|e| 1.0 - e.prob).product()
    }

    /// Marginal failure probability of one fate group:
    /// `1 - Π_{e ∋ g} (1 - q_e)`. This is what an observer estimating
    /// per-link probabilities from uptime logs would measure — and what an
    /// independence-assuming model would (wrongly) multiply.
    pub fn marginal_failure_prob(&self, topo: &Topology, g: GroupId) -> f64 {
        let mut up = 1.0 - topo.group(g).failure_prob;
        for s in &self.srlgs {
            if s.groups.contains(g.index()) {
                up *= 1.0 - s.failure_prob;
            }
        }
        1.0 - up
    }

    /// A copy of `topo` whose per-group failure probabilities are the
    /// correlated model's *marginals*. Enumerating this copy independently
    /// is the "what a correlation-blind operator would compute" baseline
    /// that the negative tests difference against.
    pub fn marginal_topology(&self, topo: &Topology) -> Topology {
        let mut t = topo.clone();
        for (g, _) in topo.groups() {
            t.set_group_failure_prob(g, self.marginal_failure_prob(topo, g));
        }
        t
    }

    /// The fate groups taken down by a set of fired events (union of their
    /// covers). A group is down iff some fired event covers it.
    pub fn down_groups(&self, topo: &Topology, fired: &[usize]) -> LinkSet {
        let events = self.events(topo);
        let mut down = LinkSet::new(self.num_groups);
        for &e in fired {
            for g in events[e].cover.iter() {
                down.insert(g);
            }
        }
        down
    }

    /// Exact probability that the down-set is *exactly* `failed`: every
    /// event not confined to `failed` stays quiet, and the events confined
    /// to `failed` fire in some combination whose covers union to `failed`.
    ///
    /// # Panics
    ///
    /// Panics if more than 22 events are confined to `failed` (the inner
    /// sum is exponential in that count; real down-sets are small).
    pub fn state_probability(&self, topo: &Topology, failed: &LinkSet) -> f64 {
        let events = self.events(topo);
        let mut outside = 1.0;
        let mut inside: Vec<&FailureEvent> = Vec::new();
        for e in &events {
            if e.cover.is_subset(failed) {
                inside.push(e);
            } else {
                outside *= 1.0 - e.prob;
            }
        }
        assert!(
            inside.len() <= 22,
            "state_probability: {} events inside the down-set",
            inside.len()
        );
        let need = failed.count();
        let mut counts = vec![0u32; self.num_groups];
        let mut total = 0.0;
        sum_exact_covers(&inside, 0, 1.0, &mut counts, 0, need, &mut total);
        outside * total
    }

    /// A [`Scenario`] for the given failed fate groups with the exact
    /// correlated state probability (the SRLG-aware counterpart of
    /// [`Scenario::with_failures`]).
    pub fn scenario(&self, topo: &Topology, groups: &[GroupId]) -> Scenario {
        let mut failed = LinkSet::new(self.num_groups);
        for g in groups {
            failed.insert(g.index());
        }
        let probability = self.state_probability(topo, &failed);
        Scenario {
            failed,
            probability,
        }
    }

    /// Enumerate all down-sets reachable by at most `max_events` fired
    /// events, with exact joint probabilities.
    ///
    /// Event subsets inducing the same down-set are merged (their
    /// probabilities add), so each returned [`Scenario`] carries the full
    /// probability of its down-set within the enumerated depth. The
    /// residual is the mass of subsets with more than `max_events` fired
    /// events — treated as never qualified downstream, exactly like the
    /// §3.3 pruning, so availability stays a lower bound.
    ///
    /// Invariants shared with [`ScenarioSet::enumerate`]: index 0 is the
    /// all-up scenario, ordering is the deterministic depth-first
    /// enumeration order (each down-set sits at the position of the first
    /// event subset that reaches it), and `covered_probability()` is
    /// monotone in `max_events`.
    ///
    /// # Panics
    ///
    /// Panics if the event-subset enumeration would exceed 20 million
    /// states.
    pub fn enumerate(&self, topo: &Topology, max_events: usize) -> ScenarioSet {
        let events = self.events(topo);
        let ne = events.len();
        let expected = count_scenarios(ne, max_events);
        assert!(
            expected <= 20_000_000,
            "pruning depth {max_events} on {ne} failure events yields {expected} subsets"
        );

        let all_up_p: f64 = events.iter().map(|e| 1.0 - e.prob).product();
        let ratio: Vec<f64> = events.iter().map(|e| e.prob / (1.0 - e.prob)).collect();

        let mut scenarios = vec![Scenario {
            failed: LinkSet::new(self.num_groups),
            probability: all_up_p,
        }];
        let mut index: HashMap<LinkSet, usize> = HashMap::new();
        index.insert(scenarios[0].failed.clone(), 0);

        // States appear in the same depth-first order as the independent
        // `enumerate_combos` walk (first event subset to reach each
        // down-set wins the slot; later duplicates add in place), so with
        // zero SRLGs the result is identical to `ScenarioSet::enumerate`
        // and the ordering is deterministic per `(topo, srlgs)`.
        let mut walk = EventWalk {
            events: &events,
            ratio: &ratio,
            counts: vec![0u32; self.num_groups],
            down: LinkSet::new(self.num_groups),
            index: &mut index,
            out: &mut scenarios,
        };
        walk.recurse(max_events, 0, all_up_p);

        let enumerated: f64 = scenarios.iter().map(|s| s.probability).sum();
        let residual_probability = (1.0 - enumerated).max(0.0);
        ScenarioSet {
            scenarios,
            residual_probability,
            max_failures: max_events,
        }
    }

    /// Seeded SRLG generator for the synthetic topologies (B4/IBM/ATT/…).
    ///
    /// Conduit heuristic: physical links leaving the same data center share
    /// ducts out of the building, so each node with at least two incident
    /// fate groups may contribute one SRLG bundling 2–3 of them. Roughly a
    /// third of eligible nodes get a conduit; event probabilities are
    /// log-uniform in `[1e-4, 1e-2]` (fiber-cut scale — rarer than optics
    /// flaps, far more damaging). Deterministic per `(topo, seed)`.
    pub fn generate(topo: &Topology, seed: u64) -> SrlgSet {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut set = SrlgSet::new(topo);

        // Fate groups incident to each node (via either directed link).
        let mut incident: Vec<Vec<GroupId>> = vec![Vec::new(); topo.num_nodes()];
        for (g, def) in topo.groups() {
            let mut nodes: Vec<NodeId> = Vec::new();
            for &l in &def.links {
                let link = topo.link(l);
                for n in [link.src, link.dst] {
                    if !nodes.contains(&n) {
                        nodes.push(n);
                    }
                }
            }
            for n in nodes {
                incident[n.index()].push(g);
            }
        }

        for node in topo.nodes() {
            let groups = &incident[node.index()];
            if groups.len() < 2 || !rng.gen_bool(0.35) {
                continue;
            }
            let take = rng.gen_range(2..=groups.len().min(3));
            // Seeded choice of `take` distinct incident groups.
            let mut pool: Vec<GroupId> = groups.clone();
            let mut chosen = Vec::with_capacity(take);
            for _ in 0..take {
                let k = rng.gen_range(0..pool.len());
                chosen.push(pool.swap_remove(k));
            }
            // Log-uniform in [1e-4, 1e-2].
            let exp = rng.gen_range(-4.0..=-2.0f64);
            let q = 10f64.powf(exp);
            let name = format!("conduit-{}", topo.node_name(node));
            set.add(&name, q, &chosen);
        }
        set
    }
}

/// Sum over subsets of `inside` events whose covers union to the full
/// down-set (all `need` groups touched). `prob` carries `Π q` / `Π (1-q)`
/// factors of the decided prefix; `counts` ref-counts group coverage so
/// overlapping covers backtrack cleanly.
fn sum_exact_covers(
    inside: &[&FailureEvent],
    i: usize,
    prob: f64,
    counts: &mut [u32],
    covered: usize,
    need: usize,
    total: &mut f64,
) {
    if i == inside.len() {
        if covered == need {
            *total += prob;
        }
        return;
    }
    let e = inside[i];
    // Event off.
    sum_exact_covers(inside, i + 1, prob * (1.0 - e.prob), counts, covered, need, total);
    // Event on.
    let mut newly = 0;
    for g in e.cover.iter() {
        counts[g] += 1;
        if counts[g] == 1 {
            newly += 1;
        }
    }
    sum_exact_covers(
        inside,
        i + 1,
        prob * e.prob,
        counts,
        covered + newly,
        need,
        total,
    );
    for g in e.cover.iter() {
        counts[g] -= 1;
    }
}

/// Recursive event-subset walk for [`SrlgSet::enumerate`]: the same
/// ratio-trick combination walk as the independent enumeration, with the
/// down-set maintained incrementally via per-group cover counts and merged
/// into `out` through `index`.
struct EventWalk<'a> {
    events: &'a [FailureEvent],
    ratio: &'a [f64],
    counts: Vec<u32>,
    down: LinkSet,
    index: &'a mut HashMap<LinkSet, usize>,
    out: &'a mut Vec<Scenario>,
}

impl EventWalk<'_> {
    fn recurse(&mut self, depth_left: usize, start: usize, prob: f64) {
        if depth_left == 0 {
            return;
        }
        for e in start..self.events.len() {
            for g in self.events[e].cover.iter() {
                self.counts[g] += 1;
                if self.counts[g] == 1 {
                    self.down.insert(g);
                }
            }
            let p = prob * self.ratio[e];
            if let Some(&i) = self.index.get(&self.down) {
                self.out[i].probability += p;
            } else {
                self.index.insert(self.down.clone(), self.out.len());
                self.out.push(Scenario {
                    failed: self.down.clone(),
                    probability: p,
                });
            }
            self.recurse(depth_left - 1, e + 1, p);
            for g in self.events[e].cover.iter() {
                self.counts[g] -= 1;
                if self.counts[g] == 0 {
                    self.down.remove(g);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioSet;
    use crate::topologies;

    #[test]
    fn empty_srlg_set_matches_independent_enumeration() {
        let t = topologies::toy4();
        let set = SrlgSet::new(&t);
        for y in 0..=3 {
            let corr = set.enumerate(&t, y);
            let indep = ScenarioSet::enumerate(&t, y);
            assert_eq!(corr.len(), indep.len(), "y={y}");
            for (a, b) in corr.iter().zip(indep.iter()) {
                assert_eq!(a.failed, b.failed);
                assert!((a.probability - b.probability).abs() < 1e-15);
            }
            assert!((corr.residual_probability - indep.residual_probability).abs() < 1e-12);
        }
    }

    #[test]
    fn full_correlated_enumeration_sums_to_one() {
        let t = topologies::toy4();
        let mut set = SrlgSet::new(&t);
        set.add("cut", 0.01, &[GroupId(1), GroupId(3)]);
        let n_events = t.num_groups() + 1;
        let full = set.enumerate(&t, n_events);
        let total: f64 = full.iter().map(|s| s.probability).sum();
        assert!((total - 1.0).abs() < 1e-12, "{total}");
        assert!(full.residual_probability < 1e-12);
        // All-up first; every down-set appears exactly once.
        assert!(full.scenarios[0].failed.is_empty());
        let mut seen = std::collections::HashSet::new();
        for s in full.iter() {
            assert!(seen.insert(s.failed.clone()), "duplicate down-set");
        }
    }

    #[test]
    fn merged_state_probability_matches_exact() {
        let t = topologies::toy4();
        let mut set = SrlgSet::new(&t);
        set.add("cut", 0.01, &[GroupId(1), GroupId(3)]);
        let full = set.enumerate(&t, t.num_groups() + 1);
        for s in full.iter() {
            let exact = set.state_probability(&t, &s.failed);
            assert!(
                (s.probability - exact).abs() < 1e-14,
                "state {:?}: merged {} vs exact {}",
                s.failed.iter().collect::<Vec<_>>(),
                s.probability,
                exact
            );
        }
    }

    #[test]
    fn srlg_pair_fails_together_far_more_often_than_independence_predicts() {
        let t = topologies::toy4();
        let mut set = SrlgSet::new(&t);
        // e2 and e4 (the two 0.0001% links) ride one conduit cut at 1%.
        set.add("conduit", 0.01, &[GroupId(1), GroupId(3)]);
        let both = LinkSet::from_indices(4, &[1, 3]);

        // Correlated: the pair goes down with ~the conduit probability.
        let corr = set.state_probability(&t, &both);
        assert!(corr > 0.009, "correlated joint {corr}");

        // Independence over the *marginals* (what a correlation-blind
        // observer would compute) underestimates by orders of magnitude.
        let marginal = set.marginal_topology(&t);
        let indep = crate::scenario::scenario_probability(&marginal, &both);
        assert!(indep < 1e-3, "independent joint {indep}");
        assert!(corr / indep > 50.0, "corr {corr} vs indep {indep}");
    }

    #[test]
    fn marginals_match_event_model() {
        let t = topologies::testbed6();
        let mut set = SrlgSet::new(&t);
        set.add("west", 0.005, &[GroupId(0), GroupId(5)]);
        set.add("east", 0.002, &[GroupId(2), GroupId(3), GroupId(7)]);
        // Marginal of group 0: 1 - (1-x_0)(1-0.005).
        let x0 = t.group(GroupId(0)).failure_prob;
        let want = 1.0 - (1.0 - x0) * (1.0 - 0.005);
        let got = set.marginal_failure_prob(&t, GroupId(0));
        assert!((got - want).abs() < 1e-15);
        // Uncovered group keeps its own probability.
        let x1 = t.group(GroupId(1)).failure_prob;
        assert!((set.marginal_failure_prob(&t, GroupId(1)) - x1).abs() < 1e-15);
        // Full correlated enumeration's per-group marginal agrees.
        let full = set.enumerate(&t, t.num_groups() + 2);
        let m0: f64 = full
            .iter()
            .filter(|s| s.failed.contains(0))
            .map(|s| s.probability)
            .sum();
        assert!((m0 - want).abs() < 1e-9, "{m0} vs {want}");
    }

    #[test]
    fn covered_probability_monotone_in_depth() {
        let t = topologies::testbed6();
        let mut set = SrlgSet::new(&t);
        set.add("a", 0.004, &[GroupId(0), GroupId(1)]);
        set.add("b", 0.003, &[GroupId(4), GroupId(5), GroupId(6)]);
        let mut prev = 0.0;
        for y in 0..=4 {
            let s = set.enumerate(&t, y);
            assert!(
                s.covered_probability() >= prev - 1e-15,
                "y={y}: {} < {prev}",
                s.covered_probability()
            );
            prev = s.covered_probability();
        }
    }

    #[test]
    fn generator_is_deterministic_and_well_formed() {
        for topo in [topologies::b4(), topologies::ibm(), topologies::att()] {
            let a = SrlgSet::generate(&topo, 7);
            let b = SrlgSet::generate(&topo, 7);
            assert_eq!(a.len(), b.len(), "{}", topo.name());
            assert!(!a.is_empty(), "{} should get conduits", topo.name());
            for ((_, x), (_, y)) in a.iter().zip(b.iter()) {
                assert_eq!(x.name, y.name);
                assert_eq!(x.failure_prob, y.failure_prob);
                assert_eq!(x.groups, y.groups);
            }
            for (_, s) in a.iter() {
                let k = s.groups.count();
                assert!((2..=3).contains(&k), "conduit of {k} groups");
                assert!((1e-4..=1e-2).contains(&s.failure_prob));
            }
            // A different seed moves the conduits.
            let c = SrlgSet::generate(&topo, 8);
            let same = a.len() == c.len()
                && a.iter().zip(c.iter()).all(|((_, x), (_, y))| x.groups == y.groups);
            assert!(!same, "{}: seed had no effect", topo.name());
        }
    }

    #[test]
    fn down_groups_is_union_of_covers() {
        let t = topologies::toy4();
        let mut set = SrlgSet::new(&t);
        set.add("cut", 0.01, &[GroupId(0), GroupId(2)]);
        // Residual event 1 + SRLG event 4 (= num_groups + 0).
        let down = set.down_groups(&t, &[1, 4]);
        let want: Vec<usize> = vec![0, 1, 2];
        assert_eq!(down.iter().collect::<Vec<_>>(), want);
    }
}
