//! Synthetic traffic matrices (gravity model).
//!
//! The paper draws each demand's bandwidth "randomly from the traffic
//! matrices (we have collected 200 matrices for each topology) with a proper
//! scale-down factor" (§5.2). Those matrices are not public, so we generate
//! gravity-model matrices: each node gets a log-normal weight `w_i`, and the
//! flow from `s` to `d` is proportional to `w_s · w_d`. This reproduces the
//! skew of real inter-DC matrices (a few hot pairs, a long tail), which is
//! the property the evaluation actually depends on.

use crate::distributions::lognormal;
use crate::graph::{NodeId, Topology};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A single traffic matrix: a demand rate for every ordered node pair.
#[derive(Debug, Clone)]
pub struct TrafficMatrix {
    n: usize,
    /// Row-major `n x n`; the diagonal is zero.
    demands: Vec<f64>,
}

impl TrafficMatrix {
    /// Demand rate from `s` to `d` (zero on the diagonal).
    pub fn demand(&self, s: NodeId, d: NodeId) -> f64 {
        self.demands[s.index() * self.n + d.index()]
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Sum over all pairs.
    pub fn total(&self) -> f64 {
        self.demands.iter().sum()
    }

    /// Multiply every entry by `factor` (the paper's scale-down factor is a
    /// division by 5, i.e. `scale(1.0 / 5.0)`).
    pub fn scale(&self, factor: f64) -> TrafficMatrix {
        TrafficMatrix {
            n: self.n,
            demands: self.demands.iter().map(|d| d * factor).collect(),
        }
    }

    /// Iterate non-zero `(src, dst, rate)` entries.
    pub fn entries(&self) -> impl Iterator<Item = (NodeId, NodeId, f64)> + '_ {
        (0..self.n).flat_map(move |s| {
            (0..self.n).filter_map(move |d| {
                let v = self.demands[s * self.n + d];
                if v > 0.0 {
                    Some((NodeId(s), NodeId(d), v))
                } else {
                    None
                }
            })
        })
    }
}

/// Generate `count` gravity-model matrices for `topo`, each with total
/// demand `mean_total` (in the same units as link capacities).
///
/// Matrices differ between indices (diurnal-like variation is modeled by
/// re-sampling weights), but the whole set is deterministic in `seed`.
pub fn generate_matrices(
    topo: &Topology,
    count: usize,
    mean_total: f64,
    seed: u64,
) -> Vec<TrafficMatrix> {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = topo.num_nodes();
    (0..count)
        .map(|_| {
            let weights: Vec<f64> = (0..n).map(|_| lognormal(&mut rng, 0.0, 1.0)).collect();
            let mut demands = vec![0.0f64; n * n];
            let mut sum = 0.0;
            for s in 0..n {
                for d in 0..n {
                    if s != d {
                        let v = weights[s] * weights[d];
                        demands[s * n + d] = v;
                        sum += v;
                    }
                }
            }
            if sum > 0.0 {
                for v in &mut demands {
                    *v *= mean_total / sum;
                }
            }
            TrafficMatrix { n, demands }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topologies;

    #[test]
    fn gravity_matrix_shape() {
        let t = topologies::b4();
        let ms = generate_matrices(&t, 5, 10_000.0, 1);
        assert_eq!(ms.len(), 5);
        for m in &ms {
            assert_eq!(m.num_nodes(), 12);
            assert!((m.total() - 10_000.0).abs() < 1e-6);
            for s in t.nodes() {
                assert_eq!(m.demand(s, s), 0.0);
            }
        }
    }

    #[test]
    fn matrices_vary_but_are_seeded() {
        let t = topologies::toy4();
        let a = generate_matrices(&t, 2, 100.0, 7);
        let b = generate_matrices(&t, 2, 100.0, 7);
        let n0 = t.nodes().next().unwrap();
        let n1 = t.nodes().nth(1).unwrap();
        assert_eq!(a[0].demand(n0, n1), b[0].demand(n0, n1));
        assert_ne!(a[0].demand(n0, n1), a[1].demand(n0, n1));
    }

    #[test]
    fn scaling() {
        let t = topologies::toy4();
        let m = &generate_matrices(&t, 1, 500.0, 3)[0];
        let half = m.scale(0.5);
        assert!((half.total() - 250.0).abs() < 1e-9);
    }

    #[test]
    fn entries_iterates_off_diagonal() {
        let t = topologies::toy4();
        let m = &generate_matrices(&t, 1, 500.0, 3)[0];
        let entries: Vec<_> = m.entries().collect();
        assert_eq!(entries.len(), 12); // 4*3 ordered pairs
        let sum: f64 = entries.iter().map(|(_, _, v)| v).sum();
        assert!((sum - 500.0).abs() < 1e-9);
    }
}
