//! Golden traces for the shaped workloads and the recovery storm
//! (solve_stats_golden.rs style): seeded runs are pinned bit-for-bit, so
//! any drift in the RNG streams, the diurnal/flash shaping, the SRLG event
//! model, or the storm timeline shows up as a diff, not a flake. All
//! latencies are pinned to zero (`measure_time = false`, the
//! `TimingMode::Fixed` analogue), which makes every pinned string a pure
//! function of the seed.
//!
//! To regenerate after an intentional change:
//! `cargo test -p bate-sim --test golden_traces -- --ignored --nocapture`

use bate_core::TeContext;
use bate_net::{topologies, GroupId, ScenarioSet, Topology};
use bate_routing::{RoutingScheme, TunnelSet};
use bate_sim::storm::{self, StormConfig};
use bate_sim::workload::{self, WorkloadConfig};
use std::fmt::Write as _;

/// First arrivals of the seeded diurnal/flash workload, one line per
/// demand: `t=<s> pair=<p> bw=<Mbps> beta=<target> dur=<s>`.
fn demand_trace(topo: &Topology, seed: u64, minutes: usize, take: usize) -> String {
    let tunnels = TunnelSet::compute(topo, RoutingScheme::Ksp(2));
    let cfg = WorkloadConfig::diurnal_flash(vec![0, 1, 2], seed);
    let arrivals = workload::generate(&cfg, &tunnels, minutes as f64 * 60.0);
    let mut out = String::new();
    let _ = writeln!(out, "arrivals={}", arrivals.len());
    for a in arrivals.iter().take(take) {
        let (pair, bw) = a.demand.bandwidth[0];
        let _ = writeln!(
            out,
            "t={:.3} pair={} bw={:.3} beta={} dur={:.3}",
            a.arrival_time, pair, bw, a.demand.beta, a.duration
        );
    }
    out
}

fn storm_timeline(topo: &Topology, y: usize, groups: Vec<GroupId>, seed: u64) -> String {
    let tunnels = TunnelSet::compute(topo, RoutingScheme::Ksp(2));
    let scenarios = ScenarioSet::enumerate(topo, y);
    let ctx = TeContext::new(topo, &tunnels, &scenarios);
    let pairs: Vec<usize> = (0..tunnels.num_pairs())
        .filter(|&p| !tunnels.tunnels(p).is_empty())
        .take(4)
        .collect();
    let cfg = StormConfig::regional(pairs, 6, groups, seed);
    let report = storm::run(&ctx, &cfg).unwrap();
    storm::timeline_csv(&report)
}

const TOY4_DEMAND_TRACE: &str = "arrivals=161\n\
t=37.206 pair=1 bw=37.479 beta=0.999 dur=260.249\n\
t=104.409 pair=1 bw=20.217 beta=0.9995 dur=90.487\n\
t=127.602 pair=2 bw=16.029 beta=0.9999 dur=249.207\n\
t=134.545 pair=1 bw=22.963 beta=0.9995 dur=180.195\n\
t=136.891 pair=2 bw=44.453 beta=0.9995 dur=219.095\n\
t=181.879 pair=0 bw=18.701 beta=0.99 dur=339.370\n\
t=182.657 pair=2 bw=43.212 beta=0.999 dur=244.068\n\
t=192.941 pair=0 bw=10.250 beta=0.95 dur=590.439\n\
t=197.719 pair=2 bw=25.033 beta=0.99 dur=358.421\n\
t=199.798 pair=1 bw=40.491 beta=0.9995 dur=247.630\n";
const TESTBED6_DEMAND_TRACE: &str = "arrivals=269\n\
t=20.651 pair=1 bw=44.729 beta=0.95 dur=124.623\n\
t=89.579 pair=2 bw=30.801 beta=0.99 dur=32.802\n\
t=161.337 pair=0 bw=12.922 beta=0.95 dur=23.116\n\
t=183.781 pair=2 bw=40.448 beta=0.9999 dur=51.969\n\
t=196.384 pair=1 bw=36.732 beta=0.95 dur=46.121\n\
t=210.292 pair=2 bw=24.727 beta=0.9995 dur=115.766\n\
t=227.394 pair=1 bw=35.884 beta=0.9995 dur=143.422\n\
t=300.848 pair=0 bw=19.912 beta=0.95 dur=68.497\n\
t=302.573 pair=1 bw=40.569 beta=0.9995 dur=59.469\n\
t=307.812 pair=0 bw=21.156 beta=0.95 dur=145.307\n";
const TOY4_STORM_TIMELINE: &str = "round,phase,deltas,live,warm,objective,baseline_profit,greedy_satisfied,greedy_profit,greedy_ms,milp_satisfied,milp_profit,milp_ms\n\
0,pre,0,6,false,205.895,205.895,0,205.895,0.000,-,-,0.000\n\
1,pre,1,6,true,220.983,220.983,0,220.983,0.000,-,-,0.000\n\
2,pre,1,7,true,257.179,257.179,0,257.179,0.000,-,-,0.000\n\
3,pre,1,8,true,306.656,282.714,0,282.714,0.000,-,-,0.000\n\
4,storm,1,8,true,309.041,285.099,2,230.724,0.000,5,261.203,0.000\n\
5,storm,1,9,true,355.974,331.983,2,265.887,0.000,5,296.366,0.000\n\
6,storm,1,8,true,309.041,285.099,2,230.724,0.000,5,261.203,0.000\n\
7,storm,1,9,true,319.407,295.465,2,238.499,0.000,6,271.569,0.000\n\
8,post,1,8,true,280.826,256.884,0,256.884,0.000,-,-,0.000\n\
9,post,1,7,true,248.749,224.807,0,224.807,0.000,-,-,0.000\n";
const TESTBED6_STORM_TIMELINE: &str = "round,phase,deltas,live,warm,objective,baseline_profit,greedy_satisfied,greedy_profit,greedy_ms,milp_satisfied,milp_profit,milp_ms\n\
0,pre,0,6,false,169.737,169.737,0,169.737,0.000,-,-,0.000\n\
1,pre,1,7,true,219.435,219.435,0,219.435,0.000,-,-,0.000\n\
2,pre,1,8,true,243.873,243.873,0,243.873,0.000,-,-,0.000\n\
3,pre,1,9,true,277.269,277.269,0,277.269,0.000,-,-,0.000\n\
4,storm,1,9,true,285.535,285.535,0,214.151,0.000,0,214.151,0.000\n\
5,storm,1,9,true,296.400,296.400,0,222.300,0.000,0,222.300,0.000\n\
6,storm,1,9,true,301.686,301.686,0,226.264,0.000,0,226.264,0.000\n\
7,storm,1,10,true,341.408,341.408,0,256.056,0.000,0,256.056,0.000\n\
8,post,1,10,true,338.728,338.728,0,338.728,0.000,-,-,0.000\n\
9,post,1,11,true,381.281,381.281,0,381.281,0.000,-,-,0.000\n";

#[test]
fn diurnal_flash_trace_toy4_pinned() {
    let got = demand_trace(&topologies::toy4(), 41, 60, 10);
    assert_eq!(got, TOY4_DEMAND_TRACE, "got:\n{got}");
}

#[test]
fn diurnal_flash_trace_testbed6_pinned() {
    let got = demand_trace(&topologies::testbed6(), 42, 60, 10);
    assert_eq!(got, TESTBED6_DEMAND_TRACE, "got:\n{got}");
}

#[test]
fn storm_timeline_toy4_pinned() {
    let got = storm_timeline(&topologies::toy4(), 2, vec![GroupId(1), GroupId(3)], 11);
    assert_eq!(got, TOY4_STORM_TIMELINE, "got:\n{got}");
}

#[test]
fn storm_timeline_testbed6_pinned() {
    let got = storm_timeline(&topologies::testbed6(), 1, vec![GroupId(0), GroupId(5), GroupId(7)], 12);
    assert_eq!(got, TESTBED6_STORM_TIMELINE, "got:\n{got}");
}

/// Prints the current golden strings for manual re-pinning.
#[test]
#[ignore]
fn regenerate_golden_traces() {
    println!(
        "TOY4_DEMAND_TRACE:\n{}",
        demand_trace(&topologies::toy4(), 41, 60, 10)
    );
    println!(
        "TESTBED6_DEMAND_TRACE:\n{}",
        demand_trace(&topologies::testbed6(), 42, 60, 10)
    );
    println!(
        "TOY4_STORM_TIMELINE:\n{}",
        storm_timeline(&topologies::toy4(), 2, vec![GroupId(1), GroupId(3)], 11)
    );
    println!(
        "TESTBED6_STORM_TIMELINE:\n{}",
        storm_timeline(&topologies::testbed6(), 1, vec![GroupId(0), GroupId(5), GroupId(7)], 12)
    );
}
