//! Measurements collected by a simulation run.

use bate_core::pricing::SlaSchedule;
use bate_core::DemandId;
use serde::Serialize;

/// Lifetime record of one demand.
#[derive(Debug, Clone, Serialize)]
pub struct DemandRecord {
    pub id: u64,
    /// Availability target β.
    pub beta: f64,
    /// Charge g_d.
    pub price: f64,
    /// Index into the workload's refund pool.
    pub schedule: usize,
    /// Total demanded bandwidth.
    pub bandwidth: f64,
    pub admitted: bool,
    /// Admission decision latency in milliseconds, measured on the
    /// engine's [`Clock`](bate_core::clock::Clock): real wall time under
    /// [`TimingMode::Measured`](crate::engine::TimingMode), the charged
    /// deterministic constant under `TimingMode::Fixed` (the sim clock
    /// does not advance inside a solver call).
    pub admission_delay_ms: f64,
    /// Seconds the demand was active.
    pub total_secs: f64,
    /// Seconds its full bandwidth (within 1 %) was delivered.
    pub satisfied_secs: f64,
}

impl DemandRecord {
    /// Measured availability: satisfied time over lifetime.
    pub fn achieved_availability(&self) -> f64 {
        if self.total_secs <= 0.0 {
            1.0
        } else {
            self.satisfied_secs / self.total_secs
        }
    }

    /// Did the demand meet its BA target over its lifetime?
    pub fn met_target(&self) -> bool {
        self.achieved_availability() >= self.beta - 1e-9
    }
}

/// Everything a run produces.
#[derive(Debug, Clone, Default, Serialize)]
pub struct SimReport {
    pub arrived: usize,
    pub admitted: usize,
    pub rejected: usize,
    /// Rejections that the optimal (Appendix A) check would have admitted —
    /// only populated when the run measures false rejections (Fig. 12(d)).
    pub false_rejections: usize,
    pub demands: Vec<DemandRecord>,
    /// Delivered/demanded samples taken at scheduling rounds (Fig. 8).
    pub bw_ratio_samples: Vec<f64>,
    /// Failure count per fate group (Fig. 10).
    pub failure_counts: Vec<usize>,
    /// Time-averaged mean link utilization (Fig. 12(b)).
    pub mean_link_utilization: f64,
    /// Time-integrated undelivered bandwidth over demanded bandwidth
    /// (Fig. 11's data-loss ratio for this run).
    pub data_loss_ratio: f64,
    /// Simulated horizon, seconds.
    pub horizon_secs: f64,
}

impl SimReport {
    /// Fraction of arrivals rejected (Fig. 7(a), 12(a)).
    pub fn rejection_ratio(&self) -> f64 {
        if self.arrived == 0 {
            0.0
        } else {
            self.rejected as f64 / self.arrived as f64
        }
    }

    /// Mean admission decision latency in milliseconds (Fig. 12(c)).
    pub fn mean_admission_delay_ms(&self) -> f64 {
        let decided: Vec<&DemandRecord> = self.demands.iter().collect();
        if decided.is_empty() {
            return 0.0;
        }
        decided.iter().map(|d| d.admission_delay_ms).sum::<f64>() / decided.len() as f64
    }

    /// Fraction of admitted demands meeting their BA target (Fig. 7(b),
    /// 9, 13, 14).
    pub fn satisfaction_fraction(&self) -> f64 {
        let admitted: Vec<&DemandRecord> = self
            .demands
            .iter()
            .filter(|d| d.admitted && d.total_secs > 0.0)
            .collect();
        if admitted.is_empty() {
            return 1.0;
        }
        admitted.iter().filter(|d| d.met_target()).count() as f64 / admitted.len() as f64
    }

    /// Satisfaction restricted to demands with a given availability target
    /// (Fig. 7(b) buckets).
    pub fn satisfaction_for_target(&self, beta: f64) -> f64 {
        let subset: Vec<&DemandRecord> = self
            .demands
            .iter()
            .filter(|d| d.admitted && d.total_secs > 0.0 && (d.beta - beta).abs() < 1e-9)
            .collect();
        if subset.is_empty() {
            return 1.0;
        }
        subset.iter().filter(|d| d.met_target()).count() as f64 / subset.len() as f64
    }

    /// Total profit after tiered refunds (Fig. 7(c)/(d), 15), using the
    /// run's refund pool.
    pub fn profit(&self, pool: &[SlaSchedule]) -> f64 {
        self.demands
            .iter()
            .filter(|d| d.admitted)
            .map(|d| {
                let refund = pool
                    .get(d.schedule)
                    .map(|s| s.refund_fraction(d.achieved_availability()))
                    .unwrap_or(0.0);
                d.price * (1.0 - refund)
            })
            .sum()
    }

    /// The profit if every admitted demand had met its SLA.
    pub fn baseline_profit(&self) -> f64 {
        self.demands
            .iter()
            .filter(|d| d.admitted)
            .map(|d| d.price)
            .sum()
    }

    /// Profit after refunds relative to the no-violation baseline.
    pub fn profit_gain(&self, pool: &[SlaSchedule]) -> f64 {
        let base = self.baseline_profit();
        if base <= 0.0 {
            1.0
        } else {
            self.profit(pool) / base
        }
    }

    /// Record lookup by id.
    pub fn record(&self, id: DemandId) -> Option<&DemandRecord> {
        self.demands.iter().find(|d| d.id == id.0)
    }
}

/// Empirical CDF helper for the figure harness: returns `(value, cdf)`
/// points of the sorted samples.
pub fn ecdf(samples: &[f64]) -> Vec<(f64, f64)> {
    let mut sorted: Vec<f64> = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let n = sorted.len();
    sorted
        .into_iter()
        .enumerate()
        .map(|(i, v)| (v, (i + 1) as f64 / n as f64))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bate_core::pricing::azure_services;

    fn record(beta: f64, satisfied: f64, total: f64, price: f64) -> DemandRecord {
        DemandRecord {
            id: 0,
            beta,
            price,
            schedule: 0,
            bandwidth: 10.0,
            admitted: true,
            admission_delay_ms: 1.0,
            total_secs: total,
            satisfied_secs: satisfied,
        }
    }

    #[test]
    fn availability_and_satisfaction() {
        let r = record(0.99, 995.0, 1000.0, 10.0);
        assert!((r.achieved_availability() - 0.995).abs() < 1e-12);
        assert!(r.met_target());
        let bad = record(0.999, 995.0, 1000.0, 10.0);
        assert!(!bad.met_target());
    }

    #[test]
    fn report_aggregates() {
        let mut rep = SimReport {
            arrived: 10,
            admitted: 8,
            rejected: 2,
            ..Default::default()
        };
        rep.demands.push(record(0.99, 1000.0, 1000.0, 100.0));
        rep.demands.push(record(0.99, 900.0, 1000.0, 100.0));
        assert!((rep.rejection_ratio() - 0.2).abs() < 1e-12);
        assert!((rep.satisfaction_fraction() - 0.5).abs() < 1e-12);
        assert!((rep.satisfaction_for_target(0.99) - 0.5).abs() < 1e-12);
        assert_eq!(rep.satisfaction_for_target(0.95), 1.0);
        let pool = azure_services();
        // First record: no refund; second (achieved 0.9): deep violation.
        let profit = rep.profit(&pool);
        assert!(profit < rep.baseline_profit());
        assert!(rep.profit_gain(&pool) < 1.0);
    }

    #[test]
    fn ecdf_monotone() {
        let points = ecdf(&[3.0, 1.0, 2.0]);
        assert_eq!(points[0], (1.0, 1.0 / 3.0));
        assert_eq!(points[2], (3.0, 1.0));
    }
}
