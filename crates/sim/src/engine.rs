//! The simulation engine: admission + scheduling + failures + recovery.

use crate::dataplane::deliveries;
use crate::events::{Event, EventQueue};
use crate::failures::FailureProcess;
use crate::metrics::{DemandRecord, SimReport};
use crate::workload::GeneratedDemand;
use bate_baselines::TeAlgorithm;
use bate_core::admission::{self, optimal::optimal_feasible, AdmissionOutcome};
use bate_core::recovery::backup::BackupPlan;
use bate_core::recovery::greedy::greedy_recovery;
use bate_core::recovery::milp::optimal_recovery;
use bate_core::clock::{Clock, SimClock, SystemClock};
use bate_core::{Allocation, BaDemand, TeContext};
use bate_net::GroupId;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

/// Which admission strategy the run uses (Fig. 7(a)/12 compare all three).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionStrategy {
    /// Step 1 only (the paper's "Fixed" baseline).
    Fixed,
    /// BATE's full pipeline (fixed check + Algorithm-1 conjecture).
    Bate,
    /// The Appendix-A MILP ("OPT").
    Optimal,
    /// Admit everything (baseline TE algorithms have no admission control;
    /// used when comparing raw TE behaviour).
    AcceptAll,
}

/// What happens right after a link fails.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryPolicy {
    /// Nothing until the next scheduling round (how the plain baselines
    /// behave).
    NextRound,
    /// Run Algorithm 2 on the spot; its (measured) computation time is the
    /// outage window.
    Greedy,
    /// Use the backup allocation precomputed at the last scheduling round
    /// (§3.4); near-instant activation.
    Backup,
    /// Solve the recovery MILP on the spot (slow — Fig. 21's 50× baseline).
    Optimal,
}

/// How computation delays (admission latency, recovery outage windows)
/// enter the simulation.
///
/// `Measured` samples real wall-clock elapsed time around the solver
/// calls — faithful to a live deployment, but it makes the *simulated
/// event schedule* depend on host speed: the recovery outage window is
/// pushed into the event queue, so a loaded machine simulates longer
/// outages. `Fixed` charges deterministic costs instead, so the same
/// seed yields the same event schedule (and byte-identical reports) on
/// any machine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TimingMode {
    /// Measure real elapsed wall-clock time (floored at 50 ms for
    /// recovery, as the paper's testbed does).
    Measured,
    /// Charge fixed costs: `admission_ms` per admission decision (report
    /// only) and `recovery_secs` per on-the-spot recovery computation
    /// (drives the outage window).
    Fixed { admission_ms: f64, recovery_secs: f64 },
}

/// Simulation parameters.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Scheduling period in seconds (testbed: 60 s).
    pub schedule_interval_secs: f64,
    /// Link repair time in seconds (default 3 s, swept in Fig. 20).
    pub repair_time_secs: f64,
    /// Simulated horizon in seconds.
    pub horizon_secs: f64,
    pub admission: AdmissionStrategy,
    pub recovery: RecoveryPolicy,
    /// When true, every rejection is double-checked against the optimal
    /// MILP to count false rejections (Fig. 12(d)). Expensive.
    pub measure_false_rejections: bool,
    /// Seed for the failure process.
    pub seed: u64,
    /// How solver computation time is charged (see [`TimingMode`]).
    pub timing: TimingMode,
}

impl SimConfig {
    /// The §5.1 testbed defaults: 1-minute scheduling, 3-second repairs.
    pub fn testbed(horizon_secs: f64, seed: u64) -> SimConfig {
        SimConfig {
            schedule_interval_secs: 60.0,
            repair_time_secs: 3.0,
            horizon_secs,
            admission: AdmissionStrategy::Bate,
            recovery: RecoveryPolicy::Backup,
            measure_false_rejections: false,
            seed,
            // Deterministic by default: the greedy solver's measured cost
            // on the testbed topologies sits under the 50 ms floor anyway,
            // so Fixed(50 ms) matches Measured's schedule while making it
            // reproducible across hosts.
            timing: TimingMode::Fixed {
                admission_ms: 0.5,
                recovery_secs: 0.05,
            },
        }
    }
}

/// One simulation run binding a context, a TE algorithm, a config, and a
/// pre-generated workload.
pub struct Simulation<'a> {
    pub ctx: TeContext<'a>,
    pub te: &'a dyn TeAlgorithm,
    pub config: SimConfig,
    pub workload: &'a [GeneratedDemand],
}

struct State<'a> {
    ctx: TeContext<'a>,
    active: Vec<BaDemand>,
    base_alloc: Allocation,
    /// Recovery allocation in force while failures are present.
    overlay: Option<Allocation>,
    /// Recovery computed but not yet activated: (sequence, allocation).
    pending: Option<(u64, Allocation)>,
    recovery_seq: u64,
    fp: FailureProcess,
    records: HashMap<u64, usize>,
    report: SimReport,
    last_time: f64,
    util_integral: f64,
    loss_integral: f64,
    demand_integral: f64,
    backup: Option<BackupPlan>,
    /// Demand ids the current backup plan was computed for; arrivals after
    /// the last round make the plan stale.
    backup_for: Vec<u64>,
    /// The engine's time source for solver-latency measurements
    /// ([`TimingMode::Measured`] → system clock; `Fixed` → a [`SimClock`]
    /// driven to event times, so measured deltas are exactly zero and the
    /// charged constants are the whole delay — making
    /// [`DemandRecord::admission_delay_ms`] a pure function of the seed).
    clock: Arc<dyn Clock>,
}

impl<'a> State<'a> {
    fn effective_alloc(&self) -> &Allocation {
        match (&self.overlay, self.fp.any_down()) {
            (Some(o), true) => o,
            _ => &self.base_alloc,
        }
    }

    /// Integrate satisfaction/loss/utilization from `last_time` to `t`.
    fn accrue(&mut self, t: f64) {
        let dt = t - self.last_time;
        if dt <= 0.0 {
            return;
        }
        self.last_time = t;
        let scenario = self.fp.current_scenario(self.ctx.topo);
        let alloc = match (&self.overlay, self.fp.any_down()) {
            (Some(o), true) => o.clone(),
            _ => self.base_alloc.clone(),
        };
        if !self.active.is_empty() {
            let dels = deliveries(&self.ctx, &alloc, &self.active, &scenario);
            for (demand, del) in self.active.iter().zip(&dels) {
                if let Some(&ri) = self.records.get(&demand.id.0) {
                    let rec = &mut self.report.demands[ri];
                    rec.total_secs += dt;
                    if del.satisfied() {
                        rec.satisfied_secs += dt;
                    }
                }
                for &(_, b, got) in &del.per_pair {
                    self.loss_integral += (b - got) * dt;
                    self.demand_integral += b * dt;
                }
            }
        }
        self.util_integral += alloc.mean_utilization(&self.ctx) * dt;
    }
}

impl<'a> Simulation<'a> {
    /// Run to the horizon and produce the report.
    pub fn run(&self) -> SimReport {
        let cfg = &self.config;
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut queue = EventQueue::new();
        // Internal time source: under Fixed timing a SimClock is driven to
        // each event's time below, so the run never reads the wall clock.
        let sim_clock: Option<Arc<SimClock>> = match cfg.timing {
            TimingMode::Measured => None,
            TimingMode::Fixed { .. } => Some(SimClock::shared()),
        };
        let clock: Arc<dyn Clock> = match &sim_clock {
            Some(sc) => Arc::clone(sc) as Arc<dyn Clock>,
            None => SystemClock::shared(),
        };
        let mut st = State {
            ctx: self.ctx,
            active: Vec::new(),
            base_alloc: Allocation::new(),
            overlay: None,
            pending: None,
            recovery_seq: 0,
            fp: FailureProcess::new(self.ctx.topo, cfg.repair_time_secs),
            records: HashMap::new(),
            report: SimReport {
                failure_counts: vec![0; self.ctx.topo.num_groups()],
                horizon_secs: cfg.horizon_secs,
                ..Default::default()
            },
            last_time: 0.0,
            util_integral: 0.0,
            loss_integral: 0.0,
            demand_integral: 0.0,
            backup: None,
            backup_for: Vec::new(),
            clock,
        };

        // Seed events: arrivals, schedule rounds, first failure per group.
        for g in self.workload {
            if g.arrival_time < cfg.horizon_secs {
                queue.push(g.arrival_time, Event::Arrival(g.demand.clone()));
            }
        }
        let mut t = cfg.schedule_interval_secs;
        while t < cfg.horizon_secs {
            queue.push(t, Event::ScheduleRound);
            t += cfg.schedule_interval_secs;
        }
        for (g, _) in self.ctx.topo.groups() {
            let gap = st.fp.sample_gap(&mut rng, g);
            if gap < cfg.horizon_secs {
                queue.push(gap, Event::LinkFailure(g));
            }
        }

        // Map workload metadata for record creation.
        let meta: HashMap<u64, &GeneratedDemand> =
            self.workload.iter().map(|g| (g.demand.id.0, g)).collect();

        while let Some((time, event)) = queue.pop() {
            if time > cfg.horizon_secs {
                break;
            }
            if let Some(sc) = &sim_clock {
                sc.advance_to(Duration::from_secs_f64(time));
            }
            st.accrue(time);
            match event {
                Event::Arrival(demand) => {
                    self.handle_arrival(&mut st, &mut queue, &meta, time, demand)
                }
                Event::Departure(id) => {
                    st.active.retain(|d| d.id != id);
                    st.base_alloc.remove_demand(id);
                    if let Some(o) = &mut st.overlay {
                        o.remove_demand(id);
                    }
                }
                Event::ScheduleRound => self.handle_schedule_round(&mut st, time),
                Event::LinkFailure(g) => {
                    self.handle_failure(&mut st, &mut queue, &mut rng, time, g)
                }
                Event::LinkRepair(g) => {
                    st.fp.repair(g);
                    if !st.fp.any_down() {
                        st.overlay = None;
                        st.pending = None;
                    }
                }
                Event::ApplyRecovery(seq) => {
                    if let Some((pseq, alloc)) = st.pending.take() {
                        if pseq == seq && st.fp.any_down() {
                            st.overlay = Some(alloc);
                        } else if pseq != seq {
                            st.pending = Some((pseq, alloc));
                        }
                    }
                }
            }
        }
        st.accrue(cfg.horizon_secs);

        let mut report = st.report;
        report.mean_link_utilization = st.util_integral / cfg.horizon_secs;
        report.data_loss_ratio = if st.demand_integral > 0.0 {
            st.loss_integral / st.demand_integral
        } else {
            0.0
        };
        report
    }

    fn handle_arrival(
        &self,
        st: &mut State,
        queue: &mut EventQueue,
        meta: &HashMap<u64, &GeneratedDemand>,
        time: f64,
        demand: BaDemand,
    ) {
        st.report.arrived += 1;
        // Decision latency on the engine's clock: wall time under Measured,
        // zero virtual elapsed plus the charged constant under Fixed (the
        // SimClock only moves between events), so Fixed-mode records are
        // identical across hosts and runs.
        let started = st.clock.now();
        let clock = Arc::clone(&st.clock);
        let admission_cost_ms = move |started: Duration| match self.config.timing {
            TimingMode::Measured => {
                clock.now().saturating_sub(started).as_secs_f64() * 1000.0
            }
            TimingMode::Fixed { admission_ms, .. } => admission_ms,
        };
        let outcome = match self.config.admission {
            AdmissionStrategy::Fixed => {
                match admission::fixed::fixed_admission(&st.ctx, &st.base_alloc, &demand) {
                    Some(allocation) => AdmissionOutcome::Admitted {
                        path: admission::AdmitPath::Fixed,
                        allocation,
                    },
                    None => AdmissionOutcome::Rejected,
                }
            }
            AdmissionStrategy::Bate => {
                admission::admit(&st.ctx, &st.active, &st.base_alloc, &demand)
            }
            AdmissionStrategy::Optimal => {
                let mut all = st.active.clone();
                all.push(demand.clone());
                match optimal_feasible(&st.ctx, &all) {
                    Ok(true) => {
                        // Take the newcomer's allocation from a reschedule.
                        match bate_core::scheduling::schedule_hardened(&st.ctx, &all) {
                            Ok(res) => AdmissionOutcome::Admitted {
                                path: admission::AdmitPath::Conjecture,
                                allocation: res.allocation,
                            },
                            Err(_) => AdmissionOutcome::Rejected,
                        }
                    }
                    _ => AdmissionOutcome::Rejected,
                }
            }
            AdmissionStrategy::AcceptAll => AdmissionOutcome::Admitted {
                path: admission::AdmitPath::Fixed,
                // Best-effort immediate placement so the demand isn't
                // starved until the next TE round (baselines install the
                // newcomer right away on whatever capacity remains).
                allocation: admission::greedy::best_effort_allocation(
                    &st.ctx,
                    &st.base_alloc,
                    &demand,
                ),
            },
        };
        let delay_ms = admission_cost_ms(started);

        let g = meta.get(&demand.id.0).expect("workload metadata");
        let mut record = DemandRecord {
            id: demand.id.0,
            beta: demand.beta,
            price: demand.price,
            schedule: g.schedule,
            bandwidth: demand.total_bandwidth(),
            admitted: false,
            admission_delay_ms: delay_ms,
            total_secs: 0.0,
            satisfied_secs: 0.0,
        };

        match outcome {
            AdmissionOutcome::Admitted { allocation, .. } => {
                st.report.admitted += 1;
                record.admitted = true;
                for (tid, f) in allocation.flows_of(demand.id) {
                    st.base_alloc.set(demand.id, tid, f);
                }
                queue.push(time + g.duration, Event::Departure(demand.id));
                st.active.push(demand.clone());
            }
            AdmissionOutcome::Rejected => {
                st.report.rejected += 1;
                if self.config.measure_false_rejections {
                    let mut all = st.active.clone();
                    all.push(demand.clone());
                    if optimal_feasible(&st.ctx, &all).unwrap_or(false) {
                        st.report.false_rejections += 1;
                    }
                }
            }
        }
        st.records.insert(demand.id.0, st.report.demands.len());
        st.report.demands.push(record);
    }

    fn handle_schedule_round(&self, st: &mut State, time: f64) {
        if st.active.is_empty() {
            return;
        }
        if let Ok(alloc) = self.te.allocate(&st.ctx, &st.active) {
            st.base_alloc = alloc;
        }
        // Sample delivered/demanded ratios for Fig. 8 under the current
        // link state.
        let scenario = st.fp.current_scenario(self.ctx.topo);
        let eff = st.effective_alloc().clone();
        let mut satisfied = 0usize;
        for del in deliveries(&st.ctx, &eff, &st.active, &scenario) {
            if del.satisfied() {
                satisfied += 1;
            }
            st.report.bw_ratio_samples.push(del.ratio());
        }
        // Sequential context, deterministic fields only: the sim time is
        // event time, never the wall clock.
        bate_obs::info!(
            "sim.round",
            sim_time = time,
            active = st.active.len(),
            satisfied = satisfied,
            failed_groups = st.fp.failed_groups().len(),
        );
        // Refresh backup plans (§3.4: the online scheduler precomputes
        // backups each round).
        if self.config.recovery == RecoveryPolicy::Backup {
            st.backup = Some(BackupPlan::compute(&st.ctx, &st.active));
            st.backup_for = st.active.iter().map(|d| d.id.0).collect();
        }
        // Failures in progress: recompute the overlay against the new base.
        if st.fp.any_down() && self.config.recovery != RecoveryPolicy::NextRound {
            let scenario = st.fp.current_scenario(self.ctx.topo);
            let out = greedy_recovery(&st.ctx, &st.active, &scenario);
            st.overlay = Some(out.allocation);
        }
    }

    fn handle_failure(
        &self,
        st: &mut State,
        queue: &mut EventQueue,
        rng: &mut StdRng,
        time: f64,
        g: GroupId,
    ) {
        // Schedule this group's next failure after the repair completes.
        let gap = st.fp.sample_gap(rng, g);
        let next = time + self.config.repair_time_secs + gap;
        if next < self.config.horizon_secs {
            queue.push(next, Event::LinkFailure(g));
        }
        if !st.fp.fail(g) {
            return; // already down
        }
        st.report.failure_counts[g.index()] += 1;
        queue.push(time + self.config.repair_time_secs, Event::LinkRepair(g));

        if st.active.is_empty() {
            return;
        }
        let scenario = st.fp.current_scenario(self.ctx.topo);
        // The outage window charged for an on-the-spot recovery solve,
        // measured on the engine's clock (zero virtual elapsed under Fixed
        // timing, so the charged constant is the whole window).
        let clock = Arc::clone(&st.clock);
        let recovery_cost = move |started: Duration| match self.config.timing {
            TimingMode::Measured => clock
                .now()
                .saturating_sub(started)
                .as_secs_f64()
                .max(0.05),
            TimingMode::Fixed { recovery_secs, .. } => recovery_secs,
        };
        let (outcome, compute_secs) = match self.config.recovery {
            RecoveryPolicy::NextRound => return,
            RecoveryPolicy::Backup => {
                let failed = st.fp.failed_groups();
                // A plan is only usable if it covers every currently
                // active demand (arrivals after the last round stale it).
                let fresh = st
                    .active
                    .iter()
                    .all(|d| st.backup_for.contains(&d.id.0));
                if let (Some(plan), true) = (&st.backup, fresh) {
                    if let Some(out) = plan.lookup(&failed) {
                        // Precomputed: activation is near-instant.
                        (out.clone(), 0.1)
                    } else {
                        let started = st.clock.now();
                        let out = greedy_recovery(&st.ctx, &st.active, &scenario);
                        (out, recovery_cost(started))
                    }
                } else {
                    let started = st.clock.now();
                    let out = greedy_recovery(&st.ctx, &st.active, &scenario);
                    (out, recovery_cost(started))
                }
            }
            RecoveryPolicy::Greedy => {
                let started = st.clock.now();
                let out = greedy_recovery(&st.ctx, &st.active, &scenario);
                (out, recovery_cost(started))
            }
            RecoveryPolicy::Optimal => {
                let started = st.clock.now();
                match optimal_recovery(&st.ctx, &st.active, &scenario) {
                    Ok(out) => (out, recovery_cost(started)),
                    Err(_) => {
                        let out = greedy_recovery(&st.ctx, &st.active, &scenario);
                        (out, recovery_cost(started))
                    }
                }
            }
        };
        st.recovery_seq += 1;
        // Per-failure recovery convergence: how many demands survive the
        // reroute and how long the outage window is, keyed by sim time.
        bate_obs::warn!(
            "sim.recovery",
            sim_time = time,
            group = g.index(),
            active = st.active.len(),
            survivors = outcome.satisfied.len(),
            outage_secs = compute_secs,
        );
        st.pending = Some((st.recovery_seq, outcome.allocation));
        queue.push(time + compute_secs, Event::ApplyRecovery(st.recovery_seq));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{generate, WorkloadConfig};
    use bate_baselines::traits::Bate;
    use bate_net::{topologies, ScenarioSet};
    use bate_routing::{RoutingScheme, TunnelSet};

    fn run_small(admission: AdmissionStrategy, recovery: RecoveryPolicy, seed: u64) -> SimReport {
        let topo = topologies::testbed6();
        let tunnels = TunnelSet::compute(&topo, RoutingScheme::Ksp(3));
        let scenarios = ScenarioSet::enumerate(&topo, 2);
        let ctx = TeContext::new(&topo, &tunnels, &scenarios);
        let n = |s: &str| topo.find_node(s).unwrap();
        let pairs = vec![
            tunnels.pair_index(n("DC1"), n("DC3")).unwrap(),
            tunnels.pair_index(n("DC1"), n("DC4")).unwrap(),
            tunnels.pair_index(n("DC2"), n("DC6")).unwrap(),
        ];
        let wl_cfg = WorkloadConfig::testbed(pairs, seed);
        let horizon = 10.0 * 60.0;
        let workload = generate(&wl_cfg, &tunnels, horizon);
        let mut cfg = SimConfig::testbed(horizon, seed);
        cfg.admission = admission;
        cfg.recovery = recovery;
        let te = Bate;
        Simulation {
            ctx,
            te: &te,
            config: cfg,
            workload: &workload,
        }
        .run()
    }

    #[test]
    fn bookkeeping_is_consistent() {
        let rep = run_small(AdmissionStrategy::Bate, RecoveryPolicy::Backup, 1);
        assert_eq!(rep.arrived, rep.admitted + rep.rejected);
        assert_eq!(rep.demands.len(), rep.arrived);
        assert!(rep.admitted > 0, "some demands must be admitted");
        for d in &rep.demands {
            assert!(d.satisfied_secs <= d.total_secs + 1e-6);
            if !d.admitted {
                assert_eq!(d.total_secs, 0.0);
            }
        }
        assert!((0.0..=1.0).contains(&rep.data_loss_ratio));
        assert!(rep.mean_link_utilization >= 0.0);
    }

    #[test]
    fn fixed_rejects_at_least_as_much_as_bate() {
        let fixed = run_small(AdmissionStrategy::Fixed, RecoveryPolicy::NextRound, 3);
        let bate = run_small(AdmissionStrategy::Bate, RecoveryPolicy::NextRound, 3);
        assert!(
            fixed.rejection_ratio() >= bate.rejection_ratio() - 1e-9,
            "fixed {} vs bate {}",
            fixed.rejection_ratio(),
            bate.rejection_ratio()
        );
    }

    #[test]
    fn accept_all_admits_everything() {
        let rep = run_small(AdmissionStrategy::AcceptAll, RecoveryPolicy::NextRound, 5);
        assert_eq!(rep.rejected, 0);
        assert_eq!(rep.admitted, rep.arrived);
    }

    /// With `TimingMode::Fixed` (the `testbed` default) the whole run is a
    /// pure function of the seed: two runs must agree bitwise on every
    /// counter, every per-demand record, and every integral — nothing in
    /// the event schedule may depend on host speed.
    #[test]
    fn fixed_timing_makes_runs_bitwise_deterministic() {
        let a = run_small(AdmissionStrategy::Bate, RecoveryPolicy::Greedy, 11);
        let b = run_small(AdmissionStrategy::Bate, RecoveryPolicy::Greedy, 11);
        assert_eq!(a.arrived, b.arrived);
        assert_eq!(a.admitted, b.admitted);
        assert_eq!(a.rejected, b.rejected);
        assert_eq!(a.failure_counts, b.failure_counts);
        assert_eq!(a.data_loss_ratio.to_bits(), b.data_loss_ratio.to_bits());
        assert_eq!(
            a.mean_link_utilization.to_bits(),
            b.mean_link_utilization.to_bits()
        );
        assert_eq!(a.demands.len(), b.demands.len());
        for (x, y) in a.demands.iter().zip(&b.demands) {
            assert_eq!(x.id, y.id);
            assert_eq!(x.admitted, y.admitted);
            assert_eq!(x.admission_delay_ms.to_bits(), y.admission_delay_ms.to_bits());
            assert_eq!(x.total_secs.to_bits(), y.total_secs.to_bits());
            assert_eq!(x.satisfied_secs.to_bits(), y.satisfied_secs.to_bits());
        }
        assert_eq!(a.bw_ratio_samples.len(), b.bw_ratio_samples.len());
    }

    /// Satellite regression for the admission-latency fix: under
    /// `TimingMode::Fixed` the per-demand records — including
    /// `admission_delay_ms`, which used to read the host wall clock — are
    /// identical between same-seed runs, and the delay is exactly the
    /// charged constant.
    #[test]
    fn fixed_timing_admission_delay_is_deterministic() {
        let a = run_small(AdmissionStrategy::Bate, RecoveryPolicy::Backup, 23);
        let b = run_small(AdmissionStrategy::Bate, RecoveryPolicy::Backup, 23);
        assert_eq!(
            format!("{:?}", a.demands),
            format!("{:?}", b.demands),
            "same-seed Fixed-timing runs must produce identical records"
        );
        let charged = match SimConfig::testbed(1.0, 0).timing {
            TimingMode::Fixed { admission_ms, .. } => admission_ms,
            TimingMode::Measured => unreachable!("testbed default is Fixed"),
        };
        for d in &a.demands {
            assert_eq!(
                d.admission_delay_ms.to_bits(),
                charged.to_bits(),
                "Fixed timing must charge exactly the configured constant"
            );
        }
    }

    #[test]
    fn satisfaction_is_high_under_bate_with_backup() {
        let rep = run_small(AdmissionStrategy::Bate, RecoveryPolicy::Backup, 7);
        assert!(
            rep.satisfaction_fraction() > 0.7,
            "satisfaction {}",
            rep.satisfaction_fraction()
        );
    }
}
