//! CSV export of simulation reports — the glue between the reproduction
//! and external plotting (the paper's figures are gnuplot/matplotlib over
//! exactly these columns).

use crate::metrics::SimReport;
use std::fmt::Write as _;

/// Per-demand records as CSV (`id,beta,price,bandwidth,admitted,
/// delay_ms,total_secs,satisfied_secs,achieved,met`).
pub fn demands_csv(report: &SimReport) -> String {
    let mut out = String::from(
        "id,beta,price,bandwidth,admitted,delay_ms,total_secs,satisfied_secs,achieved,met\n",
    );
    for d in &report.demands {
        let _ = writeln!(
            out,
            "{},{},{},{},{},{:.3},{:.1},{:.1},{:.6},{}",
            d.id,
            d.beta,
            d.price,
            d.bandwidth,
            d.admitted,
            d.admission_delay_ms,
            d.total_secs,
            d.satisfied_secs,
            d.achieved_availability(),
            d.met_target()
        );
    }
    out
}

/// Run-level summary as a single CSV row (with header).
pub fn summary_csv(report: &SimReport) -> String {
    let mut out = String::from(
        "arrived,admitted,rejected,rejection_ratio,satisfaction,mean_delay_ms,\
         mean_utilization,data_loss_ratio,failures\n",
    );
    let failures: usize = report.failure_counts.iter().sum();
    let _ = writeln!(
        out,
        "{},{},{},{:.4},{:.4},{:.3},{:.4},{:.6},{}",
        report.arrived,
        report.admitted,
        report.rejected,
        report.rejection_ratio(),
        report.satisfaction_fraction(),
        report.mean_admission_delay_ms(),
        report.mean_link_utilization,
        report.data_loss_ratio,
        failures
    );
    out
}

/// An empirical CDF as CSV (`value,cdf`).
pub fn cdf_csv(samples: &[f64]) -> String {
    let mut out = String::from("value,cdf\n");
    for (v, c) in crate::metrics::ecdf(samples) {
        let _ = writeln!(out, "{v:.6},{c:.6}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::DemandRecord;

    fn report() -> SimReport {
        SimReport {
            arrived: 2,
            admitted: 1,
            rejected: 1,
            demands: vec![DemandRecord {
                id: 7,
                beta: 0.99,
                price: 42.0,
                schedule: 0,
                bandwidth: 100.0,
                admitted: true,
                admission_delay_ms: 1.25,
                total_secs: 100.0,
                satisfied_secs: 99.5,
                }],
            ..Default::default()
        }
    }

    #[test]
    fn demand_rows() {
        let csv = demands_csv(&report());
        let mut lines = csv.lines();
        assert!(lines.next().unwrap().starts_with("id,beta"));
        let row = lines.next().unwrap();
        assert!(row.starts_with("7,0.99,42,100,true,1.250,100.0,99.5,0.995000,true"));
        assert!(lines.next().is_none());
    }

    #[test]
    fn summary_row_parses_back() {
        let csv = summary_csv(&report());
        let row = csv.lines().nth(1).unwrap();
        let fields: Vec<&str> = row.split(',').collect();
        assert_eq!(fields.len(), 9);
        assert_eq!(fields[0], "2");
        let rr: f64 = fields[3].parse().unwrap();
        assert!((rr - 0.5).abs() < 1e-9);
    }

    #[test]
    fn cdf_is_monotone_csv() {
        let csv = cdf_csv(&[0.2, 0.1, 0.3]);
        let rows: Vec<&str> = csv.lines().skip(1).collect();
        assert_eq!(rows.len(), 3);
        assert!(rows[0].starts_with("0.1"));
        assert!(rows[2].ends_with("1.000000"));
    }
}
