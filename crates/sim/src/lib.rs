//! # bate-sim — discrete-event inter-DC WAN simulator
//!
//! Replaces both halves of the paper's evaluation substrate: the 6-server
//! testbed (§5.1) and the trace-driven large-scale simulator (§5.2).
//!
//! * [`events`] — the event queue: demand arrivals/departures, link
//!   failures/repairs, periodic TE rounds.
//! * [`workload`] — Poisson arrivals, exponential durations, demand sizes
//!   from gravity-model traffic matrices or uniform ranges, availability
//!   targets and Azure refund ratios drawn per §5.1/§5.2.
//! * [`failures`] — the link failure/repair process: each fate group fails
//!   per second with its probability `x_i` (exactly the testbed's
//!   per-second dice roll, realized event-driven via geometric gaps) and
//!   repairs after a configurable hold time (3 s default, swept in
//!   Fig. 20).
//! * [`dataplane`] — delivered-bandwidth model: flows on failed tunnels are
//!   lost; overloaded links (rescaled traffic after failures) degrade every
//!   flow crossing them proportionally, which is how TEAVAR's aggressive
//!   allocations turn failures into congestion loss (Fig. 11).
//! * [`engine`] — the simulation loop binding admission control, the TE
//!   algorithm, and failure recovery together.
//! * [`metrics`] — per-run measurements: rejection ratio, admission delay,
//!   link utilization, per-demand achieved availability, profit after
//!   refunds, delivered/demanded ratios, data-loss ratios.
//! * [`analysis`] — the §5.2 "post-processing" methodology: evaluate an
//!   allocation analytically against the scenario distribution instead of
//!   rolling dice (used for Fig. 13/14/18).
//! * [`montecarlo`] — raw-state sampling that cross-validates the analytic
//!   availability calculus.
//! * [`churn`] — seeded demand-churn workloads (1–5% add/remove/resize per
//!   round) driving the incremental warm-start scheduler, with per-round
//!   solve-latency CSV export (DESIGN.md §5e).
//! * [`loadgen`] — mgen-style seeded submission schedules (steady +
//!   bursty) for driving the real control plane over sockets: the fan-in
//!   workload behind the `loadgen` bench and `scripts/loadcheck.sh`.
//! * [`storm`] — recovery storms: a region SRLG cut held across several
//!   rounds of concurrent churn, with per-round Algorithm-2/exact-MILP
//!   recovery deltas and latency (DESIGN.md §6x).

pub mod analysis;
pub mod churn;
pub mod csv;
pub mod dataplane;
pub mod engine;
pub mod events;
pub mod failures;
pub mod loadgen;
pub mod metrics;
pub mod montecarlo;
pub mod storm;
pub mod workload;

pub use engine::{AdmissionStrategy, RecoveryPolicy, SimConfig, Simulation, TimingMode};
pub use metrics::SimReport;
pub use workload::WorkloadConfig;
