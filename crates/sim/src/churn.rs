//! Seeded demand-churn workloads for the incremental TE path
//! (DESIGN.md §5e).
//!
//! Between scheduling rounds the admitted demand set drifts by a few
//! percent — arrivals, departures, and rescaled reservations. This module
//! generates that drift deterministically (a seeded stream of
//! [`DemandDelta`] batches at a configurable churn fraction) and drives an
//! [`IncrementalScheduler`] through it, recording per-round solve latency
//! so the warm path's speedup over cold re-solves can be measured and
//! plotted (the `solve_ms` CSV column).

use bate_core::incremental::{DemandDelta, IncrementalScheduler, IncrementalStats};
use bate_core::{BaDemand, DemandId, TeContext};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write as _;
use std::time::Instant;

/// Parameters of a churn workload.
#[derive(Debug, Clone)]
pub struct ChurnConfig {
    /// Demands admitted before round 0 (the steady-state pool).
    pub initial_demands: usize,
    /// Scheduling rounds to run after the initial fill.
    pub rounds: usize,
    /// Fraction of the live pool churned per round (the paper's regime is
    /// 1–5%); at least one delta is always generated.
    pub churn_fraction: f64,
    /// s-d pairs (tunnel-set indices) demands may request.
    pub pairs: Vec<usize>,
    /// Distinct pairs per demand (1 = point-to-point; >1 spans several
    /// site pairs, which is what makes the scenario profiles — and the
    /// from-scratch re-solve the warm path avoids — expensive).
    pub pairs_per_demand: usize,
    /// Uniform bandwidth range in Mbps.
    pub bandwidth: (f64, f64),
    /// Availability targets to draw from, uniformly.
    pub availability_targets: Vec<f64>,
    /// Refund ratio `μ` stamped on every generated demand (a fixed value,
    /// not an RNG draw, so changing it never perturbs the delta stream).
    /// Zero keeps recovery profit-neutral; storms set it positive so
    /// forfeited demands actually cost money.
    pub refund_ratio: f64,
    pub seed: u64,
}

impl ChurnConfig {
    /// A small steady pool with the paper's 1–5% churn regime (3%).
    pub fn steady(pairs: Vec<usize>, initial_demands: usize, rounds: usize, seed: u64) -> Self {
        ChurnConfig {
            initial_demands,
            rounds,
            churn_fraction: 0.03,
            pairs,
            pairs_per_demand: 1,
            bandwidth: (10.0, 50.0),
            availability_targets: bate_core::AvailabilityClass::testbed_targets().to_vec(),
            refund_ratio: 0.0,
            seed,
        }
    }
}

/// A generated workload: the initial pool plus one delta batch per round.
#[derive(Debug, Clone)]
pub struct ChurnWorkload {
    pub initial: Vec<BaDemand>,
    pub rounds: Vec<Vec<DemandDelta>>,
}

fn draw_demand(rng: &mut StdRng, config: &ChurnConfig, id: u64) -> BaDemand {
    let k = config.pairs_per_demand.max(1).min(config.pairs.len());
    let mut chosen = Vec::with_capacity(k);
    while chosen.len() < k {
        let pair = config.pairs[rng.gen_range(0..config.pairs.len())];
        if !chosen.contains(&pair) {
            chosen.push(pair);
        }
    }
    let (lo, hi) = config.bandwidth;
    let bandwidth: Vec<(usize, f64)> =
        chosen.into_iter().map(|p| (p, rng.gen_range(lo..=hi))).collect();
    let beta = config.availability_targets[rng.gen_range(0..config.availability_targets.len())];
    let price = bandwidth.iter().map(|&(_, b)| b).sum();
    BaDemand {
        id: DemandId(id),
        bandwidth,
        beta,
        price,
        refund_ratio: config.refund_ratio,
    }
}

/// Generate the workload deterministically from `config.seed`. Removes and
/// resizes always reference a demand that is live at that point in the
/// stream, so the batches replay cleanly against any scheduler.
pub fn generate(config: &ChurnConfig) -> ChurnWorkload {
    assert!(!config.pairs.is_empty(), "churn workload needs pairs");
    assert!(config.churn_fraction > 0.0);
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut next_id = 0u64;
    let mut live: Vec<BaDemand> = Vec::new();

    let initial: Vec<BaDemand> = (0..config.initial_demands)
        .map(|_| {
            next_id += 1;
            let d = draw_demand(&mut rng, config, next_id);
            live.push(d.clone());
            d
        })
        .collect();

    let mut rounds = Vec::with_capacity(config.rounds);
    for _ in 0..config.rounds {
        let ops = ((live.len() as f64 * config.churn_fraction).round() as usize).max(1);
        let mut batch = Vec::with_capacity(ops);
        for _ in 0..ops {
            let kind = rng.gen_range(0..3u8);
            match kind {
                1 if !live.is_empty() => {
                    let k = rng.gen_range(0..live.len());
                    batch.push(DemandDelta::Remove(live.swap_remove(k).id));
                }
                2 if !live.is_empty() => {
                    let k = rng.gen_range(0..live.len());
                    let factor = rng.gen_range(0.5..=1.5);
                    let id = live[k].id;
                    for (_, b) in &mut live[k].bandwidth {
                        *b *= factor;
                    }
                    batch.push(DemandDelta::Resize { id, factor });
                }
                _ => {
                    next_id += 1;
                    let d = draw_demand(&mut rng, config, next_id);
                    live.push(d.clone());
                    batch.push(DemandDelta::Add(d));
                }
            }
        }
        rounds.push(batch);
    }
    ChurnWorkload { initial, rounds }
}

/// Per-round measurements from a churn run.
#[derive(Debug, Clone)]
pub struct ChurnRound {
    pub round: usize,
    /// Deltas applied this round (0 for the initial fill).
    pub deltas: usize,
    /// Live demands after the deltas.
    pub live: usize,
    /// Wall-clock of the full `apply` (deltas + warm row-generation loop).
    pub solve_ms: f64,
    /// Did the accepted master optimum ride a saved basis?
    pub warm: bool,
    /// Dual-simplex repair pivots spent this round.
    pub dual_pivots: u64,
    pub objective: f64,
}

/// A completed churn run.
#[derive(Debug, Clone)]
pub struct ChurnReport {
    pub rounds: Vec<ChurnRound>,
    pub stats: IncrementalStats,
}

impl ChurnReport {
    /// Mean `solve_ms` over the churn rounds (excludes the initial fill).
    pub fn mean_round_ms(&self) -> f64 {
        let churn: Vec<&ChurnRound> = self.rounds.iter().filter(|r| r.round > 0).collect();
        if churn.is_empty() {
            return 0.0;
        }
        churn.iter().map(|r| r.solve_ms).sum::<f64>() / churn.len() as f64
    }
}

/// Drive an [`IncrementalScheduler`] through the workload: round 0 admits
/// the initial pool, every later round applies one delta batch, and each
/// round's solve latency is recorded.
pub fn run(
    ctx: &TeContext,
    workload: &ChurnWorkload,
) -> Result<ChurnReport, bate_core::SolveError> {
    let mut sched = IncrementalScheduler::new(ctx);
    let mut rounds = Vec::with_capacity(workload.rounds.len() + 1);

    let initial: Vec<DemandDelta> = workload
        .initial
        .iter()
        .map(|d| DemandDelta::Add(d.clone()))
        .collect();
    let mut prev_pivots = 0u64;
    for (round, batch) in std::iter::once(&initial)
        .chain(workload.rounds.iter())
        .enumerate()
    {
        let t0 = Instant::now();
        let result = sched.apply(ctx, batch)?;
        let solve_ms = t0.elapsed().as_secs_f64() * 1e3;
        let stats = sched.stats();
        rounds.push(ChurnRound {
            round,
            deltas: if round == 0 { 0 } else { batch.len() },
            live: sched.demands().len(),
            solve_ms,
            warm: result.solve_stats.warm_start,
            dual_pivots: stats.dual_pivots - prev_pivots,
            objective: result.total_bandwidth,
        });
        prev_pivots = stats.dual_pivots;
    }
    Ok(ChurnReport {
        rounds,
        stats: sched.stats(),
    })
}

/// Per-round records as CSV
/// (`round,deltas,live,solve_ms,warm,dual_pivots,objective`).
pub fn rounds_csv(report: &ChurnReport) -> String {
    let mut out = String::from("round,deltas,live,solve_ms,warm,dual_pivots,objective\n");
    for r in &report.rounds {
        let _ = writeln!(
            out,
            "{},{},{},{:.3},{},{},{:.3}",
            r.round, r.deltas, r.live, r.solve_ms, r.warm, r.dual_pivots, r.objective
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use bate_net::{topologies, ScenarioSet};
    use bate_routing::{RoutingScheme, TunnelSet};

    fn ctx_parts() -> (bate_net::Topology, TunnelSet, ScenarioSet) {
        let topo = topologies::toy4();
        let tunnels = TunnelSet::compute(&topo, RoutingScheme::Ksp(2));
        let scenarios = ScenarioSet::enumerate(&topo, 2);
        (topo, tunnels, scenarios)
    }

    #[test]
    fn workload_is_deterministic_and_replayable() {
        let cfg = ChurnConfig::steady(vec![0, 1], 8, 6, 17);
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(a.initial.len(), b.initial.len());
        assert_eq!(a.rounds.len(), 6);
        for (x, y) in a.rounds.iter().zip(&b.rounds) {
            assert_eq!(x.len(), y.len());
            for (dx, dy) in x.iter().zip(y) {
                assert_eq!(format!("{dx:?}"), format!("{dy:?}"));
            }
        }
        // Every Remove/Resize targets a demand live at that point.
        let mut live: std::collections::HashSet<u64> =
            a.initial.iter().map(|d| d.id.0).collect();
        for batch in &a.rounds {
            for delta in batch {
                match delta {
                    DemandDelta::Add(d) => assert!(live.insert(d.id.0)),
                    DemandDelta::Remove(id) => assert!(live.remove(&id.0)),
                    DemandDelta::Resize { id, .. } => assert!(live.contains(&id.0)),
                }
            }
        }
    }

    #[test]
    fn churn_run_warms_and_reports_latency() {
        let (topo, tunnels, scenarios) = ctx_parts();
        let ctx = TeContext::new(&topo, &tunnels, &scenarios);
        let pairs: Vec<usize> = (0..tunnels.num_pairs())
            .filter(|&p| !tunnels.tunnels(p).is_empty())
            .take(4)
            .collect();
        let cfg = ChurnConfig::steady(pairs, 6, 5, 23);
        let workload = generate(&cfg);
        let report = run(&ctx, &workload).unwrap();
        assert_eq!(report.rounds.len(), 6);
        assert!(report.rounds.iter().all(|r| r.solve_ms >= 0.0));
        assert!(
            report.stats.warm_rounds > 0,
            "churn rounds should warm-start: {:?}",
            report.stats
        );
        assert!(report.mean_round_ms() >= 0.0);
    }

    #[test]
    fn csv_has_solve_latency_column() {
        let (topo, tunnels, scenarios) = ctx_parts();
        let ctx = TeContext::new(&topo, &tunnels, &scenarios);
        let cfg = ChurnConfig::steady(vec![0], 2, 3, 5);
        let report = run(&ctx, &generate(&cfg)).unwrap();
        let csv = rounds_csv(&report);
        let mut lines = csv.lines();
        let header = lines.next().unwrap();
        assert_eq!(
            header,
            "round,deltas,live,solve_ms,warm,dual_pivots,objective"
        );
        assert_eq!(lines.count(), 4);
    }
}
