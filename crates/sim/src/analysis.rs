//! Analytic ("post-processing") evaluation — the §5.2 methodology.
//!
//! "We simulate different failure scenarios according to their
//! probabilities, and in each scenario we record the demands that can be
//! satisfied. If the achieved availability — the total posterior
//! probability of qualified scenarios — is larger than the user's target,
//! the BA demand is satisfied."
//!
//! Given an allocation, that quantity is exactly
//! [`Allocation::achieved_availability`], so Figs. 13/14/18 reduce to:
//! allocate with each TE scheme, then count demands whose achieved
//! availability meets their target.

use bate_baselines::TeAlgorithm;
use bate_core::{Allocation, BaDemand, TeContext};

/// Per-demand analytic outcome for one TE allocation.
#[derive(Debug, Clone)]
pub struct DemandOutcome {
    pub id: u64,
    pub beta: f64,
    pub achieved: f64,
    pub satisfied: bool,
}

/// Evaluate a TE algorithm on a static demand set: allocate once, then
/// score every demand against the scenario distribution.
pub fn evaluate_te(
    ctx: &TeContext,
    te: &dyn TeAlgorithm,
    demands: &[BaDemand],
) -> Vec<DemandOutcome> {
    let allocation = te
        .allocate(ctx, demands)
        .unwrap_or_else(|_| Allocation::new());
    evaluate_allocation(ctx, &allocation, demands)
}

/// Score an existing allocation.
pub fn evaluate_allocation(
    ctx: &TeContext,
    allocation: &Allocation,
    demands: &[BaDemand],
) -> Vec<DemandOutcome> {
    demands
        .iter()
        .map(|d| {
            let achieved = allocation.achieved_availability(ctx, d);
            DemandOutcome {
                id: d.id.0,
                beta: d.beta,
                achieved,
                satisfied: achieved >= d.beta - 1e-9,
            }
        })
        .collect()
}

/// Fraction of demands satisfied (the y-axis of Figs. 13/14/18).
pub fn satisfaction_fraction(outcomes: &[DemandOutcome]) -> f64 {
    if outcomes.is_empty() {
        return 1.0;
    }
    outcomes.iter().filter(|o| o.satisfied).count() as f64 / outcomes.len() as f64
}

/// Analytic profit after refunds for one concrete failure scenario: run
/// the TE allocation, apply the failure, apply each demand's flat refund
/// ratio if its bandwidth no longer fits (used for Fig. 15-style sweeps
/// when the full event simulation is overkill).
pub fn profit_under_scenario(
    ctx: &TeContext,
    allocation: &Allocation,
    demands: &[BaDemand],
    scenario: &bate_net::Scenario,
) -> f64 {
    demands
        .iter()
        .map(|d| {
            if allocation.satisfied_under(ctx, d, scenario) {
                d.price
            } else {
                (1.0 - d.refund_ratio) * d.price
            }
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bate_baselines::{traits::Bate, Swan};
    use bate_core::BaDemand;
    use bate_net::{topologies, Scenario, ScenarioSet};
    use bate_routing::{RoutingScheme, TunnelSet};

    #[test]
    fn bate_beats_teavar_on_heterogeneous_targets() {
        // The motivating example as an analytic experiment: BATE satisfies
        // both users; TEAVAR's CVaR-driven splitting strands part of
        // user1's traffic on the risky path (§2.2 / Fig. 2).
        let topo = topologies::toy4();
        let tunnels = TunnelSet::compute(&topo, RoutingScheme::Ksp(2));
        let scenarios = ScenarioSet::enumerate(&topo, topo.num_groups());
        let ctx = TeContext::new(&topo, &tunnels, &scenarios);
        let n = |s: &str| topo.find_node(s).unwrap();
        let pair = tunnels.pair_index(n("DC1"), n("DC4")).unwrap();
        let demands = vec![
            BaDemand::single(1, pair, 6000.0, 0.99),
            BaDemand::single(2, pair, 12_000.0, 0.90),
        ];
        let bate = satisfaction_fraction(&evaluate_te(&ctx, &Bate, &demands));
        let teavar = satisfaction_fraction(&evaluate_te(
            &ctx,
            &bate_baselines::Teavar::new(0.999),
            &demands,
        ));
        let swan = satisfaction_fraction(&evaluate_te(&ctx, &Swan::new(), &demands));
        assert_eq!(bate, 1.0);
        assert!(
            teavar < 1.0,
            "TEAVAR misses a heterogeneous target: {teavar}"
        );
        assert!(swan <= 1.0);
    }

    #[test]
    fn profit_under_failure_scenario() {
        let topo = topologies::toy4();
        let tunnels = TunnelSet::compute(&topo, RoutingScheme::Ksp(2));
        let scenarios = ScenarioSet::enumerate(&topo, 2);
        let ctx = TeContext::new(&topo, &tunnels, &scenarios);
        let n = |s: &str| topo.find_node(s).unwrap();
        let pair = tunnels.pair_index(n("DC1"), n("DC4")).unwrap();
        let d = BaDemand::single(1, pair, 6000.0, 0.9)
            .with_price(100.0)
            .with_refund(0.25);
        let mut alloc = Allocation::new();
        alloc.set(d.id, bate_routing::TunnelId { pair, tunnel: 0 }, 6000.0);
        let all_up = Scenario::all_up(&topo);
        assert_eq!(
            profit_under_scenario(&ctx, &alloc, std::slice::from_ref(&d), &all_up),
            100.0
        );
        let g = topo
            .link(
                tunnels
                    .path(bate_routing::TunnelId { pair, tunnel: 0 })
                    .links[0],
            )
            .group;
        let sc = Scenario::with_failures(&topo, &[g]);
        assert_eq!(profit_under_scenario(&ctx, &alloc, &[d], &sc), 75.0);
    }
}
