//! Recovery-storm workloads: a region SRLG cut during demand churn.
//!
//! The hard case for the incremental TE path (DESIGN.md §5e) is a
//! correlated failure landing *while* the demand set is drifting: a fiber
//! conduit takes several fate groups down at once, every affected demand
//! needs Algorithm-2 (and optionally exact-MILP) recovery, and the 1–5%
//! per-round churn keeps flowing through the [`IncrementalScheduler`] at
//! the same time. This module generates that timeline deterministically
//! and reports per-round profit, recovery quality, and recovery latency so
//! the greedy-vs-optimal gap under storms can be plotted.
//!
//! Timeline: `pre_rounds` of churn on a healthy network, then the SRLG
//! event fires ([`FailureProcess::fail_event`]) and stays active for
//! `storm_rounds` of concurrent churn + recovery, then the conduit is
//! repaired for `post_rounds` of churn. Everything is seeded; with
//! `measure_time = false` (the [`TimingMode::Fixed`](crate::TimingMode)
//! analogue) latencies are pinned to zero and a run is bitwise
//! reproducible.

use crate::churn::{self, ChurnConfig};
use bate_core::incremental::{DemandDelta, IncrementalScheduler};
use bate_core::recovery::{greedy::greedy_recovery, milp::optimal_recovery, storm_metrics};
use bate_core::recovery::RecoveryOutcome;
use bate_core::{BaDemand, TeContext};
use bate_net::{GroupId, SrlgSet};
use std::fmt::Write as _;
use std::time::Instant;

/// Parameters of a recovery storm.
#[derive(Debug, Clone)]
pub struct StormConfig {
    /// The churn stream (pool size, fraction, pairs, seed). Its `rounds`
    /// field is ignored; the storm derives the round count below.
    pub churn: ChurnConfig,
    /// Churn-only rounds before the cut.
    pub pre_rounds: usize,
    /// Rounds with the SRLG event active (churn + recovery each round).
    pub storm_rounds: usize,
    /// Churn-only rounds after repair.
    pub post_rounds: usize,
    /// Fate groups severed together by the region event.
    pub srlg_groups: Vec<GroupId>,
    /// The event's failure probability (prices the storm scenario).
    pub srlg_prob: f64,
    /// Also solve the exact recovery MILP each storm round (the
    /// greedy-vs-optimal delta; skip on large instances).
    pub run_milp: bool,
    /// Record wall-clock recovery/solve latencies. `false` pins every
    /// latency to zero so reports are bitwise deterministic.
    pub measure_time: bool,
    /// Flight-recorder trigger: a storm round whose Algorithm-2 recovery
    /// exceeds this bound (ms, measured even when `measure_time` is off)
    /// dumps the ring via [`bate_obs::flight::trigger`]. `None` disables.
    pub latency_bound_ms: Option<f64>,
}

impl StormConfig {
    /// A small deterministic storm: 3 healthy rounds, 4 storm rounds, 2
    /// recovery rounds, 3% churn, MILP deltas on, latencies pinned.
    pub fn regional(
        pairs: Vec<usize>,
        initial_demands: usize,
        srlg_groups: Vec<GroupId>,
        seed: u64,
    ) -> StormConfig {
        let mut churn = ChurnConfig::steady(pairs, initial_demands, 0, seed);
        // Azure-scale refunds so forfeiting a demand costs real profit.
        churn.refund_ratio = 0.25;
        StormConfig {
            churn,
            pre_rounds: 3,
            storm_rounds: 4,
            post_rounds: 2,
            srlg_groups,
            srlg_prob: 0.01,
            run_milp: true,
            measure_time: false,
            latency_bound_ms: None,
        }
    }
}

/// Which part of the timeline a round belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Healthy network, churn only.
    Pre,
    /// SRLG event active: churn + recovery.
    Storm,
    /// Conduit repaired, churn only.
    Post,
}

impl Phase {
    pub fn as_str(self) -> &'static str {
        match self {
            Phase::Pre => "pre",
            Phase::Storm => "storm",
            Phase::Post => "post",
        }
    }
}

/// One round of the storm timeline.
#[derive(Debug, Clone)]
pub struct StormRound {
    pub round: usize,
    pub phase: Phase,
    /// Churn deltas applied this round (0 for the initial fill).
    pub deltas: usize,
    /// Live demands after the deltas.
    pub live: usize,
    /// Did the scheduler's accepted optimum ride a saved basis?
    pub warm: bool,
    /// Scheduling objective (total allocated bandwidth).
    pub objective: f64,
    /// Profit had no failure occurred (every live demand satisfied).
    pub baseline_profit: f64,
    /// Algorithm-2 outcome, storm rounds only.
    pub greedy_satisfied: usize,
    pub greedy_profit: f64,
    pub greedy_ms: f64,
    /// Exact-MILP outcome, storm rounds with `run_milp` only.
    pub milp_satisfied: Option<usize>,
    pub milp_profit: Option<f64>,
    pub milp_ms: f64,
}

/// A completed storm run.
#[derive(Debug, Clone)]
pub struct StormReport {
    pub rounds: Vec<StormRound>,
    /// Exact joint probability of the storm scenario under the SRLG model.
    pub scenario_probability: f64,
    /// The same state priced by the raw per-group independence product —
    /// the availability overstatement a correlation-blind model commits.
    pub independent_probability: f64,
}

impl StormReport {
    fn storm_rounds(&self) -> impl Iterator<Item = &StormRound> {
        self.rounds.iter().filter(|r| r.phase == Phase::Storm)
    }

    /// Mean fraction of baseline profit retained by Algorithm 2 across the
    /// storm rounds.
    pub fn greedy_profit_retention(&self) -> f64 {
        let (mut sum, mut n) = (0.0, 0);
        for r in self.storm_rounds() {
            if r.baseline_profit > 0.0 {
                sum += r.greedy_profit / r.baseline_profit;
                n += 1;
            }
        }
        if n == 0 {
            1.0
        } else {
            sum / n as f64
        }
    }

    /// Mean greedy-vs-optimal profit gap fraction over storm rounds (0 when
    /// the MILP was not run).
    pub fn milp_profit_gap(&self) -> f64 {
        let (mut sum, mut n) = (0.0, 0);
        for r in self.storm_rounds() {
            if let Some(m) = r.milp_profit {
                if m > 0.0 {
                    sum += (m - r.greedy_profit) / m;
                    n += 1;
                }
            }
        }
        if n == 0 {
            0.0
        } else {
            sum / n as f64
        }
    }

    /// Mean Algorithm-2 latency over storm rounds, ms.
    pub fn mean_greedy_ms(&self) -> f64 {
        let v: Vec<f64> = self.storm_rounds().map(|r| r.greedy_ms).collect();
        if v.is_empty() {
            0.0
        } else {
            v.iter().sum::<f64>() / v.len() as f64
        }
    }

    /// Mean exact-MILP latency over storm rounds, ms.
    pub fn mean_milp_ms(&self) -> f64 {
        let v: Vec<f64> = self
            .storm_rounds()
            .filter(|r| r.milp_profit.is_some())
            .map(|r| r.milp_ms)
            .collect();
        if v.is_empty() {
            0.0
        } else {
            v.iter().sum::<f64>() / v.len() as f64
        }
    }
}

/// Run the storm timeline against `ctx` (whose scenario set prices the
/// scheduler; the storm scenario itself is priced by the SRLG model).
pub fn run(ctx: &TeContext, config: &StormConfig) -> Result<StormReport, bate_core::SolveError> {
    let total_rounds = config.pre_rounds + config.storm_rounds + config.post_rounds;
    let mut churn_cfg = config.churn.clone();
    churn_cfg.rounds = total_rounds;
    let workload = churn::generate(&churn_cfg);

    // The SRLG layer: one region event over the configured groups.
    let mut srlgs = SrlgSet::new(ctx.topo);
    srlgs.add("storm-region", config.srlg_prob, &config.srlg_groups);
    let mut fp = crate::failures::FailureProcess::with_srlgs(ctx.topo, &srlgs, 3.0);
    let storm_event = ctx.topo.num_groups(); // first (only) SRLG event

    let m = storm_metrics();
    let mut sched = IncrementalScheduler::new(ctx);
    let mut rounds = Vec::with_capacity(total_rounds + 1);
    let mut scenario_probability = 0.0;
    let mut independent_probability = 0.0;

    let initial: Vec<DemandDelta> = workload
        .initial
        .iter()
        .map(|d| DemandDelta::Add(d.clone()))
        .collect();
    for (round, batch) in std::iter::once(&initial)
        .chain(workload.rounds.iter())
        .enumerate()
    {
        // Phase transitions happen before the round's churn: the cut lands
        // at the start of the first storm round, the repair at the start
        // of the first post round. Round 0 is the initial fill.
        let phase = if round == 0 || round <= config.pre_rounds {
            Phase::Pre
        } else if round <= config.pre_rounds + config.storm_rounds {
            Phase::Storm
        } else {
            Phase::Post
        };
        match phase {
            Phase::Storm if !fp.event_active(storm_event) => {
                fp.fail_event(storm_event);
                m.events.inc();
                let sc = fp.current_scenario(ctx.topo);
                scenario_probability = sc.probability;
                independent_probability =
                    bate_net::scenario::scenario_probability(ctx.topo, &sc.failed);
            }
            Phase::Post if fp.event_active(storm_event) => {
                fp.repair_event(storm_event);
            }
            _ => {}
        }

        let result = sched.apply(ctx, batch)?;
        if phase == Phase::Storm {
            m.churn_deltas.add(batch.len() as u64);
        }
        let demands: Vec<BaDemand> = sched.demands().into_iter().cloned().collect();
        let baseline_profit = RecoveryOutcome::baseline_profit(&demands);

        let mut record = StormRound {
            round,
            phase,
            deltas: if round == 0 { 0 } else { batch.len() },
            live: demands.len(),
            warm: result.solve_stats.warm_start,
            objective: result.total_bandwidth,
            baseline_profit,
            greedy_satisfied: 0,
            greedy_profit: baseline_profit,
            greedy_ms: 0.0,
            milp_satisfied: None,
            milp_profit: None,
            milp_ms: 0.0,
        };

        if phase == Phase::Storm {
            let scenario = fp.current_scenario(ctx.topo);

            let t0 = Instant::now();
            let greedy = greedy_recovery(ctx, &demands, &scenario);
            let greedy_ms = if config.measure_time {
                t0.elapsed().as_secs_f64() * 1e3
            } else {
                0.0
            };
            m.recovery_runs.inc();
            m.recovered.add(greedy.satisfied.len() as u64);
            m.forfeited
                .add(demands.len().saturating_sub(greedy.satisfied.len()) as u64);
            m.recovery_ms.observe_ms(t0.elapsed());
            record.greedy_satisfied = greedy.satisfied.len();
            record.greedy_profit = greedy.profit;
            record.greedy_ms = greedy_ms;
            // A recovery round blowing its latency budget is a flight
            // trigger — the measured elapsed time is used even when the
            // *report* pins latencies to zero, so the deterministic CSV
            // stays byte-stable while the breach still dumps.
            if let Some(bound) = config.latency_bound_ms {
                let measured_ms = t0.elapsed().as_secs_f64() * 1e3;
                if measured_ms > bound {
                    bate_obs::warn!(
                        "storm.latency_breach",
                        round = round,
                        bound_ms = bound,
                    );
                    bate_obs::flight::trigger(
                        "storm_latency_breach",
                        bate_obs::context::current().trace_id,
                    );
                }
            }

            if config.run_milp {
                let t1 = Instant::now();
                let milp = optimal_recovery(ctx, &demands, &scenario)?;
                record.milp_ms = if config.measure_time {
                    t1.elapsed().as_secs_f64() * 1e3
                } else {
                    0.0
                };
                m.recovery_runs.inc();
                record.milp_satisfied = Some(milp.satisfied.len());
                record.milp_profit = Some(milp.profit);
            }
        }
        rounds.push(record);
    }

    Ok(StormReport {
        rounds,
        scenario_probability,
        independent_probability,
    })
}

/// The storm timeline as CSV (`round,phase,deltas,live,warm,objective,`
/// `baseline_profit,greedy_satisfied,greedy_profit,greedy_ms,`
/// `milp_satisfied,milp_profit,milp_ms`).
pub fn timeline_csv(report: &StormReport) -> String {
    let mut out = String::from(
        "round,phase,deltas,live,warm,objective,baseline_profit,\
         greedy_satisfied,greedy_profit,greedy_ms,milp_satisfied,milp_profit,milp_ms\n",
    );
    for r in &report.rounds {
        let _ = writeln!(
            out,
            "{},{},{},{},{},{:.3},{:.3},{},{:.3},{:.3},{},{},{:.3}",
            r.round,
            r.phase.as_str(),
            r.deltas,
            r.live,
            r.warm,
            r.objective,
            r.baseline_profit,
            r.greedy_satisfied,
            r.greedy_profit,
            r.greedy_ms,
            r.milp_satisfied
                .map_or_else(|| "-".to_string(), |v| v.to_string()),
            r.milp_profit
                .map_or_else(|| "-".to_string(), |v| format!("{v:.3}")),
            r.milp_ms
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use bate_net::{topologies, ScenarioSet};
    use bate_routing::{RoutingScheme, TunnelSet};

    fn ctx_parts() -> (bate_net::Topology, TunnelSet, ScenarioSet) {
        let topo = topologies::toy4();
        let tunnels = TunnelSet::compute(&topo, RoutingScheme::Ksp(2));
        let scenarios = ScenarioSet::enumerate(&topo, 2);
        (topo, tunnels, scenarios)
    }

    #[test]
    fn storm_runs_end_to_end_with_phases() {
        let (topo, tunnels, scenarios) = ctx_parts();
        let ctx = TeContext::new(&topo, &tunnels, &scenarios);
        let pairs: Vec<usize> = (0..tunnels.num_pairs())
            .filter(|&p| !tunnels.tunnels(p).is_empty())
            .take(4)
            .collect();
        let cfg = StormConfig::regional(pairs, 6, vec![GroupId(1), GroupId(3)], 11);
        let report = run(&ctx, &cfg).unwrap();
        assert_eq!(report.rounds.len(), 1 + 3 + 4 + 2);
        let phases: Vec<Phase> = report.rounds.iter().map(|r| r.phase).collect();
        assert_eq!(&phases[..4], &[Phase::Pre; 4]);
        assert_eq!(&phases[4..8], &[Phase::Storm; 4]);
        assert_eq!(&phases[8..], &[Phase::Post; 2]);
        // Storm rounds ran both recovery paths; greedy never beats the
        // exact MILP.
        for r in report.rounds.iter().filter(|r| r.phase == Phase::Storm) {
            assert!(r.greedy_profit <= r.milp_profit.unwrap() + 1e-9);
            assert!(r.milp_profit.unwrap() <= r.baseline_profit + 1e-9);
        }
        // The storm scenario's correlated probability dwarfs the
        // independence product (two 1e-6 links vs a 1% conduit).
        assert!(report.scenario_probability > 100.0 * report.independent_probability);
    }

    #[test]
    fn storm_report_is_deterministic_without_timing() {
        let (topo, tunnels, scenarios) = ctx_parts();
        let ctx = TeContext::new(&topo, &tunnels, &scenarios);
        let cfg = StormConfig::regional(vec![0, 1], 5, vec![GroupId(0)], 23);
        let a = run(&ctx, &cfg).unwrap();
        let b = run(&ctx, &cfg).unwrap();
        assert_eq!(timeline_csv(&a), timeline_csv(&b));
    }
}
